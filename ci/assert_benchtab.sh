#!/usr/bin/env bash
# assert_benchtab.sh SUITE REPORT.json
#
# Shared jq assertions over a `benchtab -json` report, used by the CI
# smoke matrix (one suite per matrix cell) and runnable locally:
#
#   go run ./cmd/benchtab ... -json > report.json
#   ci/assert_benchtab.sh quantum report.json
#
# Suites:
#   base       — obs counters present on every run; scheme-specific
#                counters on the right schemes
#   percpu     — per-CPU driver counters present, non-zero, and
#                reconciling with the aggregates (needs -cpus 2)
#   transports — per-transport counters for every swept backend
#                (set TRANSPORTS, default "tcp unix ring")
#   dmi        — DMI/coalesce ablation: hits iff granted, message
#                reduction, per-CPU reconciliation, identical
#                functional outcome across cells
#   quantum    — quantum ablation: syncs iff decoupled, identical
#                forwarded/message totals across cells, per-CPU
#                reconciliation
set -euo pipefail

suite=${1:?usage: assert_benchtab.sh SUITE REPORT.json}
report=${2:?usage: assert_benchtab.sh SUITE REPORT.json}

fail() {
  echo "assert_benchtab[$suite]: $*" >&2
  exit 1
}

# jqe EXPR MESSAGE — assert that EXPR evaluates truthy over the report.
jqe() {
  jq -e "$1" "$report" > /dev/null || fail "$2"
}

case $suite in
base)
  jqe '.runs | length > 0' "report has no runs"
  for key in iss.instructions iss.cycles iss.decode_cache_hits \
    iss.decode_cache_misses iss.decode_cache_invalidations \
    sim.cycles sim.activations sim.cycle_hook_ns.count; do
    jqe "[.runs[].counters | has(\"$key\")] | all" \
      "counter $key missing from a run snapshot"
  done
  jqe '[.runs[].counters["iss.decode_cache_hits"]] | add > 0' \
    "iss.decode_cache_hits is zero across all runs"
  jqe '[.runs[] | select(.scheme == "Driver-Kernel")]
       | length > 0 and ([.[].counters | has("driver.messages")] | all)' \
    "driver.messages missing from Driver-Kernel snapshots"
  jqe '[.runs[] | select(.scheme != "Driver-Kernel")]
       | length > 0 and ([.[].counters | has("rsp.round_trips")] | all)' \
    "rsp.round_trips missing from GDB-scheme snapshots"
  ;;

percpu)
  jqe '.runs | length > 0 and ([.[].cpus == 2] | all)' \
    "report missing runs or not a 2-CPU sweep"
  for key in driver.cpu0.messages driver.cpu1.messages \
    driver.cpu0.interrupts driver.cpu1.interrupts; do
    jqe "[.runs[].counters | has(\"$key\")] | all" \
      "per-CPU counter $key missing from a run snapshot"
  done
  for key in driver.cpu0.messages driver.cpu1.messages; do
    jqe "[.runs[].counters[\"$key\"]] | add > 0" \
      "per-CPU counter $key is zero across all runs"
  done
  jqe '[.runs[].counters
        | .["driver.messages"] == .["driver.cpu0.messages"] + .["driver.cpu1.messages"]]
       | all' \
    "aggregate driver.messages does not equal the per-CPU sum"
  ;;

transports)
  want=${TRANSPORTS:-tcp unix ring}
  jqe '.runs | length > 0' "report has no runs"
  # shellcheck disable=SC2086  # word splitting over the transport list is the point
  for tr in $want; do
    jqe "[.runs[] | select(.transport == \"$tr\")] | length > 0" \
      "no runs recorded for transport $tr"
    for suffix in pairs tx_bytes rx_bytes; do
      jqe "[.runs[] | select(.transport == \"$tr\")
            | .counters[\"transport.$tr.$suffix\"] > 0] | all" \
        "counter transport.$tr.$suffix missing or zero for transport $tr"
    done
  done
  ;;

dmi)
  # Four cells: the off/on cross product of the two axes.
  jqe '.runs | length == 4' "ablation sweep did not produce four cells"
  # Windows actually serve traffic when granted...
  jqe '[.runs[] | select(.dmi)]
       | length > 0 and ([.[].counters["driver.dmi_hits"] > 0] | all)' \
    "dmi cells recorded no window hits"
  # ...never when not granted...
  jqe '[.runs[] | select(.dmi | not) | .counters["driver.dmi_hits"] == 0] | all' \
    "non-dmi cells recorded window hits"
  # ...and they take messages off the wire.
  jqe '([.runs[] | select(.dmi)       | .counters["driver.messages"]] | add) <
       ([.runs[] | select(.dmi | not) | .counters["driver.messages"]] | add)' \
    "dmi cells did not reduce driver.messages"
  # Per-CPU DMI counters reconcile with the aggregates.
  for metric in dmi_hits dmi_misses dmi_revocations; do
    jqe "[.runs[].counters
          | .[\"driver.$metric\"] == .[\"driver.cpu0.$metric\"] + .[\"driver.cpu1.$metric\"]]
         | all" \
      "aggregate driver.$metric does not equal the per-CPU sum"
  done
  # Every cell agrees on the functional outcome.
  jqe '[.runs[].forwarded] | unique | length == 1' \
    "ablation cells disagree on forwarded packets"
  ;;

quantum)
  # Three cells: lock-step plus the 1x/10x CPU-period quanta.
  jqe '.runs | length == 3' "quantum sweep did not produce three cells"
  jqe '[.runs[] | select(.quantum == null)] | length == 1' \
    "quantum sweep has no lock-step cell"
  # Boundary syncs fire iff the run is temporally decoupled.
  jqe '[.runs[] | select(.quantum != null)]
       | length == 2 and ([.[].quantum_syncs > 0] | all)' \
    "decoupled cells counted no quantum syncs"
  jqe '[.runs[] | select(.quantum == null) | (.quantum_syncs // 0) == 0] | all' \
    "lock-step cell counted quantum syncs"
  # The quantum changes only the synchronization cadence: forwarded
  # packets and driver message totals are identical across cells.
  jqe '[.runs[].forwarded] | unique | length == 1' \
    "quantum cells disagree on forwarded packets"
  jqe '[.runs[].counters["driver.messages"]] | unique | length == 1' \
    "quantum cells disagree on driver message totals"
  # Per-CPU quantum counters reconcile with the aggregates.
  for metric in quantum_syncs quantum_breaks; do
    jqe "[.runs[].counters
          | (.[\"driver.$metric\"] // 0) == (.[\"driver.cpu0.$metric\"] // 0) + (.[\"driver.cpu1.$metric\"] // 0)]
         | all" \
      "aggregate driver.$metric does not equal the per-CPU sum"
  done
  # Decoupling enables sharded cluster evaluation, and the method-style
  # forwarding engines give it a multi-cluster topology to engage on:
  # every decoupled cell must have executed sharded rounds.
  jqe '[.runs[] | select(.quantum != null)
        | (.counters["sim.cluster_merges"] // 0) > 0] | all' \
    "decoupled cells recorded no sharded cluster merges"
  jqe '[.runs[] | select(.quantum == null)
        | (.counters["sim.cluster_merges"] // 0) == 0] | all' \
    "lock-step cell recorded sharded cluster merges"
  ;;

*)
  fail "unknown suite (want base, percpu, transports, dmi, quantum)"
  ;;
esac

echo "assert_benchtab[$suite]: ok ($report)"
