// Package cosim is a reproduction of "Native ISS-SystemC Integration
// for the Co-Simulation of Multi-Processor SoC" (Fummi, Martini,
// Perbellini, Poncino — DATE 2004), built entirely in Go.
//
// The repository contains a SystemC-like discrete-event simulation
// kernel (internal/sim), a complete FV32 RISC instruction-set simulator
// with assembler and GDB remote-serial-protocol stub (internal/isa,
// internal/asm, internal/iss, internal/gdb), the μKOS RTOS with a
// co-simulation device driver (internal/rtos, internal/dev), and the
// paper's three co-simulation schemes (internal/core): the GDB-Wrapper
// baseline, GDB-Kernel, and Driver-Kernel. The router case study of §5
// lives in internal/router and the experiment harness reproducing
// Table 1 and Figure 7 in internal/harness.
//
// See README.md for a guided tour, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for paper-vs-measured results.
package cosim
