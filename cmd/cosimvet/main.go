// Command cosimvet runs the repository's domain-specific static
// analyzers (poolsafe, timesafe, obsnames, schemeerr, lockedfield,
// transportclose, ctxfirst, and the interprocedural lockorder, shardfx,
// detsafe) over module packages and exits non-zero if any rule fires.
//
// Usage:
//
//	go run ./cmd/cosimvet [flags] [packages]
//
// Packages are directories or the literal pattern ./... (the default),
// which expands to every package of the enclosing module. The tool must
// run from inside the module: the loader type-checks dependencies from
// source and resolves module-local import paths through the go command.
//
// Flags:
//
//	-list          print the analyzers and their docs, then exit
//	-run name,...  run only the named analyzers
//	-json          print findings as a JSON array on stdout
//
// In -json mode every finding becomes an object with file, line, col,
// message, analyzer, and package fields; the array is printed even when
// empty so consumers can parse unconditionally. Exit codes are the same
// as in plain mode (1 = findings, 2 = usage or load error).
//
// Individual findings can be suppressed with a trailing or preceding
// comment:
//
//	//cosimvet:ignore <rule> <reason>
//	//lint:ignore cosimvet/<rule> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cosim/internal/analysis"
	"cosim/internal/analysis/suite"
)

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	Analyzer string `json:"analyzer"`
	Package  string `json:"package"`
}

func main() {
	listFlag := flag.Bool("list", false, "print the analyzers and their docs, then exit")
	runFlag := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	jsonFlag := flag.Bool("json", false, "print findings as a JSON array on stdout")
	flag.Parse()

	analyzers := suite.Analyzers()
	if *listFlag {
		for _, a := range analyzers {
			fmt.Printf("%s: %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runFlag != "" {
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(*runFlag, ",") {
			name = strings.TrimSpace(name)
			a := suite.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "cosimvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	pkgs, err := resolvePackages(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "cosimvet: %v\n", err)
		os.Exit(2)
	}

	findings := []finding{}
	for _, p := range pkgs {
		loaded, err := analysis.LoadDir(p.Dir, p.ImportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosimvet: %v\n", err)
			os.Exit(2)
		}
		diags, err := analysis.Run(loaded, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cosimvet: %v\n", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := loaded.Fset.Position(d.Pos)
			findings = append(findings, finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
				Analyzer: d.Analyzer,
				Package:  p.ImportPath,
			})
			if !*jsonFlag {
				fmt.Printf("%s: %s (%s)\n", pos, d.Message, d.Analyzer)
			}
		}
	}
	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "cosimvet: %v\n", err)
			os.Exit(2)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cosimvet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// resolvePackages expands the command-line package arguments. "./..."
// (or no arguments) means every package in the enclosing module; other
// arguments name package directories relative to the working directory.
func resolvePackages(args []string) ([]analysis.PackageDir, error) {
	wd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, modPath, err := analysis.ModuleRoot(wd)
	if err != nil {
		return nil, err
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var out []analysis.PackageDir
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			pkgs, err := analysis.ModulePackages(root, modPath)
			if err != nil {
				return nil, err
			}
			out = append(out, pkgs...)
			continue
		}
		dir, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %s is outside module %s", arg, modPath)
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, analysis.PackageDir{Dir: dir, ImportPath: ip})
	}
	return out, nil
}
