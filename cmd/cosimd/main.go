// cosimd serves co-simulation as a service: an HTTP/JSON daemon that
// admits harness.Spec session requests onto a bounded worker pool,
// exposes per-session lifecycle and live metrics, and drains gracefully
// on SIGTERM (in-flight sessions finish; new ones get 503).
//
// Usage:
//
//	cosimd [-addr :8344] [-workers N] [-queue N] [-max-cpus N]
//	       [-max-simtime 1s] [-session-wall 0] [-retry-after 1s]
//	       [-drain-timeout 60s]
//
// API (see internal/server):
//
//	POST   /v1/sessions              admit a spec (429 + Retry-After on saturation)
//	GET    /v1/sessions              list sessions
//	GET    /v1/sessions/{id}         session status (+ metrics when done)
//	DELETE /v1/sessions/{id}         cancel a session
//	GET    /v1/sessions/{id}/metrics stream live obs counters (NDJSON)
//	GET    /healthz                  liveness (503 while draining)
//	GET    /varz                     server-wide counters
//
// Exit status: 0 after a clean drain, 1 on listener/serve errors or a
// drain that exceeds -drain-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cosim/internal/server"
	"cosim/internal/sim"
)

func main() {
	addr := flag.String("addr", ":8344", "HTTP listen address")
	workers := flag.Int("workers", 0, "session worker-pool size (default GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth beyond running sessions (default 2x workers)")
	maxCPUs := flag.Int("max-cpus", 8, "per-session guest-CPU quota")
	maxSimTime := flag.String("max-simtime", "1s", "per-session simulated-time quota")
	sessionWall := flag.Duration("session-wall", 0, "per-session wall-clock deadline (0 = none)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max wait for in-flight sessions at shutdown")
	flag.Parse()

	mst, err := sim.ParseTime(*maxSimTime)
	if err != nil {
		fatal(err)
	}
	srv := server.New(server.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		MaxCPUs:     *maxCPUs,
		MaxSimTime:  mst,
		SessionWall: *sessionWall,
		RetryAfter:  *retryAfter,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "cosimd: serving on http://%s\n", ln.Addr())

	sigCtx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		fatal(err)
	case <-sigCtx.Done():
	}
	stop() // a second signal kills the process the default way

	fmt.Fprintln(os.Stderr, "cosimd: draining (in-flight sessions finishing, new ones refused)")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "cosimd: drain timed out; canceling in-flight sessions")
		_ = srv.Close()
		_ = hs.Close()
		os.Exit(1)
	}
	if err := hs.Shutdown(ctx); err != nil {
		_ = hs.Close()
	}
	fmt.Fprintln(os.Stderr, "cosimd: drained cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cosimd:", err)
	os.Exit(1)
}
