package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cosim/internal/core"
	"cosim/internal/harness"
	"cosim/internal/server"
	"cosim/internal/sim"
)

// Server-load mode: `benchtab -server URL` turns benchtab into a load
// driver for a running cosimd. It builds the same scenario matrix the
// local sweep would run (scheme × transport × duration / delay), POSTs
// every scenario as a session spec with -parallel concurrent clients,
// polls each session to a terminal state, and reports client-observed
// submit/total latency next to the daemon-reported queue wait and run
// wall — the BENCH_*_cosimd.json trajectory record.

// serverSession is one driven session's record.
type serverSession struct {
	Name  string `json:"name"`
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
	// Retries429 counts admission rejections absorbed before the POST
	// was accepted.
	Retries429 int `json:"retries_429,omitempty"`
	// SubmitNS is the accepted POST's round trip; QueueNS and RunNS are
	// the daemon's queue-wait and run-wall measurements; TotalNS is the
	// client-observed submit-to-terminal latency.
	SubmitNS int64            `json:"submit_ns"`
	QueueNS  int64            `json:"queue_ns"`
	RunNS    int64            `json:"run_ns"`
	TotalNS  int64            `json:"total_ns"`
	Metrics  *harness.Metrics `json:"metrics,omitempty"`
}

// serverSummary aggregates one load run.
type serverSummary struct {
	Server         string  `json:"server"`
	Concurrency    int     `json:"concurrency"`
	Sessions       int     `json:"sessions"`
	Done           int     `json:"done"`
	Failed         int     `json:"failed"`
	Canceled       int     `json:"canceled"`
	Retries429     int     `json:"retries_429"`
	WallNS         int64   `json:"wall_ns"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	MeanTotalNS    int64   `json:"mean_total_ns"`
	MaxTotalNS     int64   `json:"max_total_ns"`
}

// serverScenarios builds the load matrix: the experiment's scenario
// list per transport, scheme-filtered, every entry tagged with its
// transport so records from the sweep stay distinguishable.
func serverScenarios(exp string, simTimes []sim.Time, base harness.Params, sel harness.Scheme, trs []core.Transport) ([]harness.Scenario, error) {
	delays := []sim.Time{5 * sim.US, 20 * sim.US, 100 * sim.US}
	var all []harness.Scenario
	for _, tr := range trs {
		b := base
		b.Transport = tr
		var scens []harness.Scenario
		switch exp {
		case "table1":
			scens = harness.Table1Scenarios(simTimes, b)
		case "figure7":
			b.SimTime = 2 * sim.MS
			scens = harness.Figure7Scenarios(delays, b)
		case "all":
			scens = harness.Table1Scenarios(simTimes, b)
			fb := b
			fb.SimTime = 2 * sim.MS
			scens = append(scens, harness.Figure7Scenarios(delays, fb)...)
		default:
			return nil, fmt.Errorf("experiment %q not available in -server mode (table1, figure7, all)", exp)
		}
		scens = filterScenarios(scens, sel)
		scens = filterMultiCPU(scens, b.CPUs)
		all = append(all, tagTransport(scens, tr)...)
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("scenario matrix is empty after filtering")
	}
	return all, nil
}

// runServerLoad drives the daemon across the selected experiment's
// scenario matrix with `workers` concurrent clients.
func runServerLoad(rep *report, baseURL, exp string, simTimes []sim.Time, base harness.Params, sel harness.Scheme, trs []core.Transport, workers int, jsonOut bool) error {
	scens, err := serverScenarios(exp, simTimes, base, sel, trs)
	if err != nil {
		return err
	}
	if workers < 1 {
		workers = 1
	}
	cl := &loadClient{base: baseURL, http: &http.Client{Timeout: 30 * time.Second}}

	records := make([]serverSession, len(scens))
	idx := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				records[i] = cl.drive(scens[i])
			}
		}()
	}
	for i := range scens {
		idx <- i
	}
	close(idx)
	wg.Wait()
	wall := time.Since(start)

	sum := serverSummary{
		Server:      baseURL,
		Concurrency: workers,
		Sessions:    len(records),
		WallNS:      wall.Nanoseconds(),
	}
	var totalNS int64
	for _, r := range records {
		sum.Retries429 += r.Retries429
		totalNS += r.TotalNS
		if r.TotalNS > sum.MaxTotalNS {
			sum.MaxTotalNS = r.TotalNS
		}
		switch server.State(r.State) {
		case server.StateDone:
			sum.Done++
		case server.StateCanceled:
			sum.Canceled++
		default:
			sum.Failed++
		}
	}
	if len(records) > 0 {
		sum.MeanTotalNS = totalNS / int64(len(records))
	}
	if secs := wall.Seconds(); secs > 0 {
		sum.SessionsPerSec = float64(sum.Done) / secs
	}
	rep.Sessions = records
	rep.ServerLoad = &sum

	if !jsonOut {
		for _, r := range records {
			fmt.Printf("%-40s state=%-8s submit=%-10v queue=%-10v run=%-12v total=%v\n",
				r.Name, r.State,
				time.Duration(r.SubmitNS), time.Duration(r.QueueNS),
				time.Duration(r.RunNS), time.Duration(r.TotalNS))
		}
		fmt.Printf("\n%d sessions (%d done, %d failed, %d canceled), %d retries after 429\n",
			sum.Sessions, sum.Done, sum.Failed, sum.Canceled, sum.Retries429)
		fmt.Printf("wall %v, %.2f sessions/s, mean latency %v, max %v\n",
			wall, sum.SessionsPerSec, time.Duration(sum.MeanTotalNS), time.Duration(sum.MaxTotalNS))
	}
	if sum.Failed > 0 {
		return fmt.Errorf("%d of %d sessions failed", sum.Failed, sum.Sessions)
	}
	return nil
}

// loadClient is one cosimd HTTP client shared by the driver workers.
type loadClient struct {
	base string
	http *http.Client
}

// drive runs one scenario to a terminal state and records it.
func (c *loadClient) drive(sc harness.Scenario) serverSession {
	rec := serverSession{Name: sc.Name, State: "failed"}
	spec := harness.SpecFromParams(sc.Params)
	body, err := json.Marshal(spec)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}

	start := time.Now()
	st, err := c.submit(body, &rec)
	if err != nil {
		rec.Error = err.Error()
		return rec
	}
	rec.ID = st.ID

	for !st.State.Terminal() {
		time.Sleep(50 * time.Millisecond)
		st, err = c.status(st.ID)
		if err != nil {
			rec.Error = err.Error()
			return rec
		}
	}
	rec.State = string(st.State)
	rec.Error = st.Error
	rec.QueueNS = st.QueueWaitNS
	rec.RunNS = st.WallNS
	rec.TotalNS = time.Since(start).Nanoseconds()
	rec.Metrics = st.Metrics
	return rec
}

// submit POSTs the spec, absorbing 429s by honouring Retry-After (the
// admission-control backpressure contract) and counting the retries.
func (c *loadClient) submit(body []byte, rec *serverSession) (server.Status, error) {
	deadline := time.Now().Add(5 * time.Minute)
	for {
		postStart := time.Now()
		resp, err := c.http.Post(c.base+"/v1/sessions", "application/json", bytes.NewReader(body))
		if err != nil {
			return server.Status{}, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return server.Status{}, err
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
			rec.SubmitNS = time.Since(postStart).Nanoseconds()
			var st server.Status
			if err := json.Unmarshal(data, &st); err != nil {
				return server.Status{}, err
			}
			return st, nil
		case http.StatusTooManyRequests:
			rec.Retries429++
			if time.Now().After(deadline) {
				return server.Status{}, fmt.Errorf("still saturated after %d retries: %s", rec.Retries429, data)
			}
			time.Sleep(retryAfterDelay(resp))
		default:
			return server.Status{}, fmt.Errorf("POST /v1/sessions: %s: %s", resp.Status, data)
		}
	}
}

// retryAfterDelay reads the 429's Retry-After hint, clamped so a load
// test with a coarse server hint still saturates the pool promptly.
func retryAfterDelay(resp *http.Response) time.Duration {
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		d := time.Duration(secs) * time.Second
		if d > time.Second {
			d = time.Second
		}
		return d
	}
	return 100 * time.Millisecond
}

// status GETs one session.
func (c *loadClient) status(id string) (server.Status, error) {
	resp, err := c.http.Get(c.base + "/v1/sessions/" + id)
	if err != nil {
		return server.Status{}, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return server.Status{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return server.Status{}, fmt.Errorf("GET /v1/sessions/%s: %s: %s", id, resp.Status, data)
	}
	var st server.Status
	if err := json.Unmarshal(data, &st); err != nil {
		return server.Status{}, err
	}
	return st, nil
}
