// benchtab regenerates the paper's evaluation artifacts: Table 1
// (co-simulation wall-clock time per scheme), Figure 7 (% packets
// forwarded vs inter-packet delay), and the §5 code-size comparison.
//
// Usage:
//
//	benchtab -exp table1|figure7|loc|all [-full] [-transport tcp|pipe]
//
// -full uses the paper-scale simulated durations (slow); the default
// uses scaled-down durations with identical workload structure.
package main

import (
	"flag"
	"fmt"
	"os"

	"cosim/internal/core"
	"cosim/internal/harness"
	"cosim/internal/sim"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, figure7, loc, all")
	full := flag.Bool("full", false, "paper-scale simulated durations (slow)")
	transport := flag.String("transport", "tcp", "IPC transport: tcp or pipe")
	delay := flag.String("delay", "20us", "inter-packet delay for Table 1")
	seed := flag.Int64("seed", 1, "traffic seed")
	flag.Parse()

	tr := core.TransportTCP
	if *transport == "pipe" {
		tr = core.TransportPipe
	}
	d, err := sim.ParseTime(*delay)
	if err != nil {
		fatal(err)
	}
	base := harness.Params{Transport: tr, Delay: d, Seed: *seed}

	simTimes := []sim.Time{2 * sim.MS, 10 * sim.MS, 50 * sim.MS}
	if *full {
		// The paper's Table 1 columns: 1000, 10000, 100000 ms simulated.
		simTimes = []sim.Time{1000 * sim.MS, 10000 * sim.MS, 100000 * sim.MS}
	}

	switch *exp {
	case "table1":
		runTable1(simTimes, base)
	case "figure7":
		runFigure7(base)
	case "loc":
		harness.PrintLoC(os.Stdout, harness.CountLoC())
	case "all":
		runTable1(simTimes, base)
		fmt.Println()
		runFigure7(base)
		fmt.Println()
		harness.PrintLoC(os.Stdout, harness.CountLoC())
	default:
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}
}

func runTable1(simTimes []sim.Time, base harness.Params) {
	rows, err := harness.Table1(simTimes, base)
	if err != nil {
		fatal(err)
	}
	harness.PrintTable1(os.Stdout, simTimes, rows)
}

func runFigure7(base harness.Params) {
	delays := []sim.Time{5 * sim.US, 10 * sim.US, 20 * sim.US, 30 * sim.US, 50 * sim.US, 100 * sim.US}
	base.SimTime = 2 * sim.MS
	points, err := harness.Figure7(delays, base)
	if err != nil {
		fatal(err)
	}
	harness.PrintFigure7(os.Stdout, points)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
