// benchtab regenerates the paper's evaluation artifacts: Table 1
// (co-simulation wall-clock time per scheme), Figure 7 (% packets
// forwarded vs inter-packet delay), and the §5 code-size comparison.
//
// Usage:
//
//	benchtab -exp table1|figure7|loc|all [-full] [-times 1ms,5ms]
//	         [-scheme NAME] [-cpus N] [-transport tcp|unix|ring|pipe]
//	         [-dmi] [-coalesce] [-quantum DUR] [-ablate dmi,coalesce,quantum]
//	         [-parallel N] [-json] [-server URL]
//
// -full uses the paper-scale simulated durations (slow); the default
// uses scaled-down durations with identical workload structure, and
// -times overrides them outright (CI smoke runs use -times 1ms).
// -scheme restricts the sweep to a single scheme; the folded
// table/figure artifacts need the full sweep, so a filtered run emits
// only the per-run records.
// -transport selects the IPC backend; a comma list (or "all") sweeps
// several backends in one invocation, tagging each scenario with
// /tr=NAME and emitting per-run records only (the folded artifacts are
// single-transport by construction).
// -cpus sweeps a multi-processor SoC: the router's checksum work is
// partitioned across N guest CPUs. Only gdb-kernel and driver-kernel
// drive more than one CPU, so a multi-CPU Table 1 sweep drops the
// GDB-Wrapper baseline and reports per-run records.
// -dmi and -coalesce turn on the Driver-Kernel memory fast path (direct
// memory windows / per-flush message batching; see the README's "Memory
// fast path" section). -quantum sets the Driver-Kernel
// temporal-decoupling quantum (see the README's "Temporal decoupling"
// section); empty or zero keeps per-cycle lock-step. -ablate
// cross-sweeps those axes instead: every driver-kernel scenario runs
// once per cell of the cross product, tagged /dmi=0|1, /co=0|1 and
// /q=DUR, and the report carries per-run records only — the
// BENCH_*_dmi.json evidence comes from `-ablate dmi,coalesce -json`,
// the BENCH_*_quantum.json evidence from `-ablate quantum -json`. The
// quantum axis sweeps {0, -quantum} when -quantum is set, and a default
// {0, 1x, 10x} of the 10ns default CPU period otherwise.
// -parallel runs the experiment sweep on N workers: every run owns its
// kernel, ISS and sockets, so scheme results are identical to the
// sequential sweep — only total wall time drops. -json replaces the
// human-readable tables with a machine-readable metrics report (one
// record per run, plus the folded table/figure data).
// -server URL switches benchtab into a load driver for a running
// cosimd: the same scenario matrix is POSTed as session specs with
// -parallel concurrent clients (absorbing 429 backpressure via
// Retry-After), each session is polled to a terminal state, and the
// report carries per-session submit/queue/run/total latencies plus a
// throughput summary — the BENCH_*_cosimd.json baseline.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cosim/internal/core"
	"cosim/internal/harness"
	"cosim/internal/sim"
)

// report is the -json output schema.
type report struct {
	Experiment  string             `json:"experiment"`
	Transport   string             `json:"transport"`
	Parallel    int                `json:"parallel"`
	GeneratedAt string             `json:"generated_at"`
	Table1      []table1JSON       `json:"table1,omitempty"`
	Figure7     []figure7JSON      `json:"figure7,omitempty"`
	Runs        []harness.Metrics  `json:"runs,omitempty"`
	LoC         *harness.LoCReport `json:"loc,omitempty"`

	// Server-load mode (-server URL): per-session records and the
	// aggregate throughput/latency summary.
	Server     string          `json:"server,omitempty"`
	Sessions   []serverSession `json:"sessions,omitempty"`
	ServerLoad *serverSummary  `json:"server_load,omitempty"`
}

type table1JSON struct {
	Scheme string  `json:"scheme"`
	WallNS []int64 `json:"wall_ns"` // one per simulated duration
}

type figure7JSON struct {
	Delay        string  `json:"delay"`
	GDBKernelPct float64 `json:"gdb_kernel_pct"`
	DriverPct    float64 `json:"driver_kernel_pct"`
	GDBLatPS     uint64  `json:"gdb_kernel_latency_ps"`
	DriverLatPS  uint64  `json:"driver_kernel_latency_ps"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: table1, figure7, loc, all")
	full := flag.Bool("full", false, "paper-scale simulated durations (slow)")
	times := flag.String("times", "", "comma-separated simulated durations for Table 1 (overrides -full)")
	sel := harness.Scheme(-1) // sentinel: no filter
	flag.Var(&sel, "scheme", "restrict the sweep to one scheme (default: all)")
	transport := flag.String("transport", "tcp", `IPC transport: tcp, unix, ring or pipe; a comma list or "all" sweeps several`)
	delay := flag.String("delay", "20us", "inter-packet delay for Table 1")
	seed := flag.Int64("seed", 1, "traffic seed")
	cpus := flag.Int("cpus", 1, "checksum CPUs servicing the router (gdb-kernel and driver-kernel)")
	parallel := flag.Int("parallel", 1, "experiment sweep workers (1 = sequential)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable metrics report")
	noDC := flag.Bool("nodecodecache", false, "disable the ISS predecoded-instruction cache (ablation baseline)")
	dmi := flag.Bool("dmi", false, "grant driver-kernel guests direct memory windows (memory fast path)")
	coalesce := flag.Bool("coalesce", false, "batch driver-kernel kernel->guest messages into one frame per flush")
	quantum := flag.String("quantum", "", "driver-kernel temporal-decoupling quantum (duration; empty or 0 = per-cycle lock-step)")
	ablate := flag.String("ablate", "", `cross-sweep driver-kernel axes: comma list of "dmi", "coalesce", "quantum"`)
	serverURL := flag.String("server", "", "drive a running cosimd at this base URL instead of simulating in-process")
	flag.Parse()

	trs, err := parseTransports(*transport)
	if err != nil {
		fatal(err)
	}
	// The scalar flags funnel through the wire-form Spec — the same
	// validated request shape a cosimd session POST carries. benchtab
	// sweeps schemes itself, so the base spec carries a placeholder
	// scheme that every scenario overwrites.
	baseSpec := harness.Spec{Scheme: "gdb-kernel", Delay: *delay, Seed: *seed, CPUs: *cpus, NoDecodeCache: *noDC, DMI: *dmi, Coalesce: *coalesce, Quantum: *quantum}
	base, err := baseSpec.Params()
	if err != nil {
		fatal(err)
	}
	// The quantum ablation axis sweeps {lock-step, -quantum} when a
	// quantum was given, so the flag and the axis compose.
	abl, err := parseAblate(*ablate, base.Quantum)
	if err != nil {
		fatal(err)
	}
	if *cpus > 1 {
		if sel >= 0 && !sel.SupportsMultiCPU() {
			fatal(fmt.Errorf("scheme %v drives a single CPU; -cpus %d needs gdb-kernel or driver-kernel", sel, *cpus))
		}
	}

	simTimes := []sim.Time{2 * sim.MS, 10 * sim.MS, 50 * sim.MS}
	if *full {
		// The paper's Table 1 columns: 1000, 10000, 100000 ms simulated.
		simTimes = []sim.Time{1000 * sim.MS, 10000 * sim.MS, 100000 * sim.MS}
	}
	if *times != "" {
		simTimes = nil
		for _, s := range strings.Split(*times, ",") {
			st, err := sim.ParseTime(strings.TrimSpace(s))
			if err != nil {
				fatal(err)
			}
			simTimes = append(simTimes, st)
		}
	}

	names := make([]string, len(trs))
	for i, tr := range trs {
		names[i] = core.TransportName(tr)
	}
	rep := &report{
		Experiment:  *exp,
		Transport:   strings.Join(names, ","),
		Parallel:    *parallel,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}

	if *serverURL != "" {
		rep.Server = *serverURL
		if err := runServerLoad(rep, *serverURL, *exp, simTimes, base, sel, trs, *parallel, *jsonOut); err != nil {
			// Emit the partial report before dying so a failed load run
			// still leaves its evidence.
			if *jsonOut {
				enc := json.NewEncoder(os.Stdout)
				enc.SetIndent("", "  ")
				_ = enc.Encode(rep)
			}
			fatal(err)
		}
	} else {
		switch *exp {
		case "table1":
			runTable1(rep, simTimes, base, sel, trs, abl, *parallel, *jsonOut)
		case "figure7":
			runFigure7(rep, base, sel, trs, abl, *parallel, *jsonOut)
		case "loc":
			runLoC(rep, *jsonOut)
		case "all":
			runTable1(rep, simTimes, base, sel, trs, abl, *parallel, *jsonOut)
			sep(*jsonOut)
			runFigure7(rep, base, sel, trs, abl, *parallel, *jsonOut)
			sep(*jsonOut)
			runLoC(rep, *jsonOut)
		default:
			fatal(fmt.Errorf("unknown experiment %q", *exp))
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}
}

func sep(jsonOut bool) {
	if !jsonOut {
		fmt.Println()
	}
}

// parseTransports resolves the -transport flag value: one backend name,
// a comma list, or "all".
func parseTransports(arg string) ([]core.Transport, error) {
	if strings.TrimSpace(strings.ToLower(arg)) == "all" {
		return core.Transports(), nil
	}
	var trs []core.Transport
	for _, name := range strings.Split(arg, ",") {
		tr, err := core.ParseTransport(name)
		if err != nil {
			return nil, err
		}
		trs = append(trs, tr)
	}
	if len(trs) == 0 {
		return nil, fmt.Errorf("empty -transport value")
	}
	return trs, nil
}

// ablation names the driver-kernel axes a sweep cross-multiplies (the
// -ablate flag): the memory fast path's dmi/coalesce booleans and the
// temporal-decoupling quantum cells.
type ablation struct {
	dmi, coalesce bool
	quantum       []sim.Time // quantum axis cells; empty = axis off
}

func (a ablation) active() bool { return a.dmi || a.coalesce || len(a.quantum) > 0 }

// parseAblate resolves the -ablate flag value: a comma list of axis
// names ("dmi", "coalesce", "quantum"; "co" and "q" are accepted short
// forms). The quantum axis sweeps {0, quantum} when the -quantum flag
// supplies a non-zero value, and {0, 1x, 10x} of the 10ns default CPU
// period otherwise — the 10x cell is the regime where temporal
// decoupling should pay off.
func parseAblate(arg string, quantum sim.Time) (ablation, error) {
	var a ablation
	if strings.TrimSpace(arg) == "" {
		return a, nil
	}
	for _, f := range strings.Split(arg, ",") {
		switch strings.TrimSpace(strings.ToLower(f)) {
		case "dmi":
			a.dmi = true
		case "coalesce", "co":
			a.coalesce = true
		case "quantum", "q":
			if quantum > 0 {
				a.quantum = []sim.Time{0, quantum}
			} else {
				a.quantum = []sim.Time{0, 10 * sim.NS, 100 * sim.NS}
			}
		default:
			return a, fmt.Errorf("unknown -ablate axis %q (want dmi, coalesce, quantum)", f)
		}
	}
	return a, nil
}

// expand cross-multiplies every driver-kernel scenario over the active
// ablation axes, tagging each cell /dmi=0|1, /co=0|1 and /q=DUR.
// Schemes that ignore the memory fast path and temporal decoupling keep
// their single base cell: re-running them per cell would only duplicate
// identical measurements.
func (a ablation) expand(scens []harness.Scenario) []harness.Scenario {
	if !a.active() {
		return scens
	}
	onOff := func(swept bool, base bool) []bool {
		if swept {
			return []bool{false, true}
		}
		return []bool{base}
	}
	var out []harness.Scenario
	for _, sc := range scens {
		if sc.Params.Scheme != harness.DriverKernel {
			out = append(out, sc)
			continue
		}
		qcells := a.quantum
		if len(qcells) == 0 {
			qcells = []sim.Time{sc.Params.Quantum}
		}
		for _, dv := range onOff(a.dmi, sc.Params.DMI) {
			for _, cv := range onOff(a.coalesce, sc.Params.Coalesce) {
				for _, qv := range qcells {
					cell := sc
					cell.Params.DMI = dv
					cell.Params.Coalesce = cv
					cell.Params.Quantum = qv
					if a.dmi {
						cell.Name += fmt.Sprintf("/dmi=%d", b2i(dv))
					}
					if a.coalesce {
						cell.Name += fmt.Sprintf("/co=%d", b2i(cv))
					}
					if len(a.quantum) > 0 {
						cell.Name += "/q=" + qtag(qv)
					}
					out = append(out, cell)
				}
			}
		}
	}
	return out
}

// qtag renders a quantum cell's duration for the /q=DUR scenario tag;
// the lock-step cell reads /q=0.
func qtag(q sim.Time) string {
	if q == 0 {
		return "0"
	}
	return q.String()
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// tagTransport suffixes scenario names with /tr=NAME so records from a
// multi-transport sweep stay distinguishable.
func tagTransport(scens []harness.Scenario, tr core.Transport) []harness.Scenario {
	for i := range scens {
		scens[i].Name += "/tr=" + core.TransportName(tr)
	}
	return scens
}

func runTable1(rep *report, simTimes []sim.Time, base harness.Params, sel harness.Scheme, trs []core.Transport, abl ablation, workers int, jsonOut bool) {
	multiTr := len(trs) > 1
	for _, tr := range trs {
		b := base
		b.Transport = tr
		scens := filterScenarios(harness.Table1Scenarios(simTimes, b), sel)
		scens = filterMultiCPU(scens, b.CPUs)
		if multiTr {
			scens = tagTransport(scens, tr)
		}
		scens = abl.expand(scens)
		outs := harness.RunAll(scens, workers)
		collectRuns(rep, outs)
		if sel >= 0 || b.CPUs > 1 || multiTr || abl.active() {
			// The folded table needs every scheme's column in exact
			// sweep order; a filtered, multi-CPU (which drops the
			// single-CPU GDB-Wrapper baseline), multi-transport or
			// ablation sweep reports per-run records only.
			if err := harness.FirstError(outs); err != nil {
				fatal(err)
			}
			if !jsonOut {
				printRuns(outs)
			}
			continue
		}
		rows, err := harness.Table1Rows(simTimes, outs)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			tj := table1JSON{Scheme: r.Scheme.String()}
			for _, w := range r.Wall {
				tj.WallNS = append(tj.WallNS, w.Nanoseconds())
			}
			rep.Table1 = append(rep.Table1, tj)
		}
		if !jsonOut {
			harness.PrintTable1(os.Stdout, simTimes, rows)
		}
	}
}

func runFigure7(rep *report, base harness.Params, sel harness.Scheme, trs []core.Transport, abl ablation, workers int, jsonOut bool) {
	delays := []sim.Time{5 * sim.US, 10 * sim.US, 20 * sim.US, 30 * sim.US, 50 * sim.US, 100 * sim.US}
	base.SimTime = 2 * sim.MS
	multiTr := len(trs) > 1
	for _, tr := range trs {
		b := base
		b.Transport = tr
		scens := filterScenarios(harness.Figure7Scenarios(delays, b), sel)
		if multiTr {
			scens = tagTransport(scens, tr)
		}
		scens = abl.expand(scens)
		outs := harness.RunAll(scens, workers)
		collectRuns(rep, outs)
		if sel >= 0 || multiTr || abl.active() {
			if err := harness.FirstError(outs); err != nil {
				fatal(err)
			}
			if !jsonOut {
				printRuns(outs)
			}
			continue
		}
		points, err := harness.Figure7Points(delays, outs)
		if err != nil {
			fatal(err)
		}
		for _, p := range points {
			rep.Figure7 = append(rep.Figure7, figure7JSON{
				Delay:        p.Delay.String(),
				GDBKernelPct: p.GDBKernelPct,
				DriverPct:    p.DriverPct,
				GDBLatPS:     uint64(p.GDBLat),
				DriverLatPS:  uint64(p.DriverLat),
			})
		}
		if !jsonOut {
			harness.PrintFigure7(os.Stdout, points)
		}
	}
}

func runLoC(rep *report, jsonOut bool) {
	loc := harness.CountLoC()
	rep.LoC = &loc
	if !jsonOut {
		harness.PrintLoC(os.Stdout, loc)
	}
}

func collectRuns(rep *report, outs []harness.RunOutcome) {
	for _, o := range outs {
		if o.Result != nil {
			rep.Runs = append(rep.Runs, o.Result.Metrics())
		}
	}
}

// filterScenarios keeps only scenarios of the selected scheme; a
// negative selector (the flag's default) keeps the full sweep.
func filterScenarios(scens []harness.Scenario, sel harness.Scheme) []harness.Scenario {
	if sel < 0 {
		return scens
	}
	var kept []harness.Scenario
	for _, sc := range scens {
		if sc.Params.Scheme == sel {
			kept = append(kept, sc)
		}
	}
	return kept
}

// filterMultiCPU drops schemes that cannot drive a multi-processor
// guest when the sweep asks for more than one CPU.
func filterMultiCPU(scens []harness.Scenario, cpus int) []harness.Scenario {
	if cpus <= 1 {
		return scens
	}
	var kept []harness.Scenario
	for _, sc := range scens {
		if sc.Params.Scheme.SupportsMultiCPU() {
			kept = append(kept, sc)
		}
	}
	return kept
}

// printRuns is the human-readable form of a filtered sweep: one line
// per run instead of the folded table.
func printRuns(outs []harness.RunOutcome) {
	for _, o := range outs {
		if o.Result == nil {
			continue
		}
		fmt.Printf("%-36s wall=%-12v forwarded=%.1f%%\n",
			o.Scenario.Name, o.Result.Wall, o.Result.ForwardedPct())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtab:", err)
	os.Exit(1)
}
