// cosim runs the paper's router case study under a chosen co-simulation
// scheme and prints the run's measurements.
//
// Usage:
//
//	cosim -scheme gdb-wrapper|gdb-kernel|driver-kernel [flags]
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"cosim/internal/core"
	"cosim/internal/harness"
	"cosim/internal/obs"
)

func main() {
	scheme := flag.String("scheme", "gdb-kernel", "co-simulation scheme: gdb-wrapper, gdb-kernel, driver-kernel")
	simTime := flag.String("time", "10ms", "simulated duration")
	delay := flag.String("delay", "20us", "inter-packet delay per source")
	payload := flag.Int("payload", 4, "payload words per packet")
	errRate := flag.Float64("errors", 0.0, "corrupted-packet injection rate [0,1]")
	mcast := flag.Float64("multicast", 0.0, "broadcast packet rate [0,1]")
	fifo := flag.Int("fifo", 8, "router FIFO depth")
	transport := flag.String("transport", "tcp", "IPC transport: tcp, unix, ring or pipe")
	seed := flag.Int64("seed", 1, "traffic seed")
	cpus := flag.Int("cpus", 1, "checksum CPUs servicing the router (gdb-kernel and driver-kernel)")
	dmi := flag.Bool("dmi", false, "grant driver-kernel guests direct memory windows (memory fast path)")
	coalesce := flag.Bool("coalesce", false, "batch driver-kernel kernel->guest messages into one frame per flush")
	quantum := flag.String("quantum", "", "driver-kernel temporal-decoupling quantum (duration; empty or 0 = per-cycle lock-step)")
	vcd := flag.String("vcd", "", "write a VCD trace of queue occupancy to this file")
	journal := flag.String("journal", "", "write a CSV journal of every co-simulation transfer to this file")
	metricsOut := flag.String("metrics", "", "write the run's obs metrics snapshot (JSON) to this file")
	expvarAddr := flag.String("expvar", "", "serve live metrics over HTTP on this address (GET /debug/vars)")
	flag.Parse()

	// The flag surface assembles a wire-form Spec — the same validated
	// request shape a cosimd session POST carries — and materialises
	// Params from it.
	spec := harness.Spec{
		Scheme:        *scheme,
		Transport:     *transport,
		SimTime:       *simTime,
		Delay:         *delay,
		PayloadWords:  *payload,
		ErrorRate:     *errRate,
		MulticastRate: *mcast,
		FifoDepth:     *fifo,
		Seed:          *seed,
		CPUs:          *cpus,
		DMI:           *dmi,
		Coalesce:      *coalesce,
		Quantum:       *quantum,
	}
	p, err := spec.Params()
	if err != nil {
		fatal(err)
	}

	// One registry for the whole run: the schemes count into it live,
	// so the expvar endpoint shows progress while the simulation runs.
	reg := obs.NewRegistry()
	p.Obs = reg
	if *expvarAddr != "" {
		expvar.Publish("cosim", expvar.Func(func() any { return reg.Snapshot().Flatten() }))
		ln, err := net.Listen("tcp", *expvarAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "cosim: live metrics at http://%s/debug/vars\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil {
				fmt.Fprintln(os.Stderr, "cosim: expvar server:", err)
			}
		}()
	}
	if *vcd != "" {
		f, err := os.Create(*vcd)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		p.Trace = f
	}
	var jl *core.Journal
	if *journal != "" {
		jl = core.NewJournal(0)
		p.Journal = jl
	}

	res, err := harness.Run(p)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("scheme:            %v\n", p.Scheme)
	fmt.Printf("simulated time:    %v\n", res.Simulated)
	fmt.Printf("wall-clock time:   %v\n", res.Wall)
	fmt.Printf("packets generated: %d (corrupt injected: %d)\n", res.Generated, res.BadSent)
	fmt.Printf("packets forwarded: %d (%.1f%%), %d output copies\n", res.Forwarded, res.ForwardedPct(), res.Copies)
	fmt.Printf("packets received:  %d (bad content: %d, misrouted: %d)\n", res.Received, res.BadContent, res.Misrouted)
	fmt.Printf("dropped at input:  %d   dropped at output: %d   corrupted: %d\n", res.InDrops, res.OutDrops, res.Corrupted)
	fmt.Printf("mean latency:      %v\n", res.MeanLat)
	fmt.Printf("guest instrs:      %d (cycles %d)\n", res.GuestInstructions, res.GuestCycles)
	fmt.Printf("co-sim activity:   %+v\n", res.CoStats)

	if jl != nil {
		f, err := os.Create(*journal)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := jl.WriteCSV(f); err != nil {
			fatal(err)
		}
		fmt.Printf("journal:           %d transfers -> %s\n", jl.Len(), *journal)
	}
	if res.TraceErr != nil {
		fmt.Fprintln(os.Stderr, "cosim: VCD trace error:", res.TraceErr)
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg.Snapshot()); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics:           %d counters -> %s\n", len(res.Counters), *metricsOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cosim:", err)
	os.Exit(1)
}
