// fvrun assembles and executes a bare-metal FV32 program on the ISS,
// with the standard platform devices mapped (console output goes to
// stdout). An optional GDB stub can be served on a TCP port.
//
// Usage:
//
//	fvrun [-max N] [-gdb :port] [-rtos] prog.s [more.s ...]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"cosim/internal/asm"
	"cosim/internal/dev"
	"cosim/internal/gdb"
	"cosim/internal/iss"
	"cosim/internal/rtos"
)

func main() {
	maxInstr := flag.Uint64("max", 100_000_000, "instruction budget")
	gdbAddr := flag.String("gdb", "", "serve a GDB stub on this TCP address instead of running")
	useRTOS := flag.Bool("rtos", false, "link the uKOS kernel and co-simulation driver")
	stats := flag.Bool("stats", false, "print execution statistics")
	profTop := flag.Int("profile", 0, "print the N hottest instructions after the run")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "fvrun: no input files")
		os.Exit(2)
	}
	var sources []asm.Source
	for _, name := range flag.Args() {
		text, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		sources = append(sources, asm.Source{Name: name, Text: string(text)})
	}

	var im *asm.Image
	var err error
	if *useRTOS {
		im, err = rtos.Build(sources...)
	} else {
		im, err = asm.Assemble(asm.Options{DataBase: 0x00100000}, sources...)
	}
	if err != nil {
		fatal(err)
	}

	plat := dev.NewPlatform(0, os.Stdout)
	if err := im.LoadInto(plat.RAM); err != nil {
		fatal(err)
	}
	plat.CPU.Reset(im.Entry)

	if *gdbAddr != "" {
		ln, err := net.Listen("tcp", *gdbAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fvrun: waiting for debugger on %s\n", ln.Addr())
		conn, err := ln.Accept()
		if err != nil {
			fatal(err)
		}
		stub := gdb.NewStub(plat.CPU, conn)
		if err := stub.Serve(); err != nil {
			fatal(err)
		}
		return
	}

	var prof *iss.Profile
	if *profTop > 0 {
		prof = iss.NewProfile()
		plat.CPU.AttachProfile(prof)
	}

	stop, executed := plat.Run(*maxInstr)
	switch stop {
	case iss.StopHalt:
		// clean exit
	case iss.StopBudget:
		fmt.Fprintf(os.Stderr, "fvrun: instruction budget exhausted (%d)\n", executed)
	default:
		fmt.Fprintf(os.Stderr, "fvrun: stopped: %v at pc=%#08x\n", stop, plat.CPU.PC)
		os.Exit(1)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "instructions: %d\ncycles:       %d\n",
			plat.CPU.Instructions(), plat.CPU.Cycles())
	}
	if prof != nil {
		prof.Report(os.Stderr, *profTop, func(pc uint32) string {
			if f, l, ok := im.LineOfAddr(pc); ok {
				return fmt.Sprintf("%s:%d", f, l)
			}
			return ""
		})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fvrun:", err)
	os.Exit(1)
}
