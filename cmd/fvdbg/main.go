// fvdbg is a minimal interactive remote debugger speaking the GDB
// remote serial protocol — enough to poke at an ISS served by fvrun
// -gdb or by any stub in this repository.
//
// Usage:
//
//	fvdbg -connect host:port
//
// Commands: regs, r <n>, m <addr> <len>, b <addr>, d <addr>, s, c, i
// (interrupt), q.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"

	"cosim/internal/gdb"
	"cosim/internal/isa"
)

func main() {
	addr := flag.String("connect", "", "stub address (host:port)")
	flag.Parse()
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "fvdbg: -connect is required")
		os.Exit(2)
	}
	conn, err := net.Dial("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	cl := gdb.NewClient(conn, gdb.ClientOptions{})
	if feat, err := cl.QuerySupported(); err == nil {
		fmt.Println("connected:", feat)
	}

	in := bufio.NewScanner(os.Stdin)
	fmt.Print("(fvdbg) ")
	for in.Scan() {
		fields := strings.Fields(in.Text())
		if len(fields) == 0 {
			fmt.Print("(fvdbg) ")
			continue
		}
		switch fields[0] {
		case "q", "quit":
			_ = cl.Kill()
			return
		case "regs":
			regs, err := cl.ReadRegisters()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			for i, v := range regs.GPR {
				fmt.Printf("%-5s %08x  ", isa.RegName(uint8(i)), v)
				if i%4 == 3 {
					fmt.Println()
				}
			}
			fmt.Printf("pc    %08x  cycles %d\n", regs.PC, regs.Cycles)
		case "r":
			if len(fields) < 2 {
				fmt.Println("usage: r <n>")
				break
			}
			n, _ := strconv.Atoi(fields[1])
			v, err := cl.ReadRegister(n)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("%08x\n", v)
		case "m":
			if len(fields) < 3 {
				fmt.Println("usage: m <hexaddr> <len>")
				break
			}
			a, _ := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 32)
			n, _ := strconv.Atoi(fields[2])
			data, err := cl.ReadMemory(uint32(a), n)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			fmt.Printf("% x\n", data)
		case "b":
			a, _ := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 32)
			fmt.Println(orOK(cl.SetBreakpoint(uint32(a))))
		case "d":
			a, _ := strconv.ParseUint(strings.TrimPrefix(fields[1], "0x"), 16, 32)
			fmt.Println(orOK(cl.ClearBreakpoint(uint32(a))))
		case "s":
			ev, err := cl.Step()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printStop(cl, ev)
		case "c":
			if err := cl.Continue(); err != nil {
				fmt.Println("error:", err)
				break
			}
			ev, err := cl.WaitStop()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printStop(cl, ev)
		case "i":
			_ = cl.Interrupt()
			ev, err := cl.WaitStop()
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printStop(cl, ev)
		default:
			fmt.Println("commands: regs, r <n>, m <addr> <len>, b <addr>, d <addr>, s, c, i, q")
		}
		fmt.Print("(fvdbg) ")
	}
}

func printStop(cl *gdb.Client, ev *gdb.StopEvent) {
	if ev.Exited {
		fmt.Printf("exited with code %d\n", ev.ExitCode)
		return
	}
	pc, err := cl.ReadPC()
	if err != nil {
		fmt.Println("stopped (sig", ev.Signal, ")")
		return
	}
	word, _ := cl.ReadMemory(pc, 4)
	dis := ""
	if len(word) == 4 {
		w := uint32(word[0]) | uint32(word[1])<<8 | uint32(word[2])<<16 | uint32(word[3])<<24
		dis = isa.Disassemble(w)
	}
	fmt.Printf("stopped at %08x: %s (sig %d)\n", pc, dis, ev.Signal)
}

func orOK(err error) string {
	if err != nil {
		return "error: " + err.Error()
	}
	return "ok"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fvdbg:", err)
	os.Exit(1)
}
