// fvasm assembles FV32 source files into a flat binary plus listing.
//
// Usage:
//
//	fvasm [-o out.bin] [-list] [-symbols] file.s [file2.s ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cosim/internal/asm"
	"cosim/internal/isa"
)

func main() {
	out := flag.String("o", "", "output file for a flat binary (first segment base = lowest address)")
	list := flag.Bool("list", false, "print a disassembly listing")
	symbols := flag.Bool("symbols", false, "print the symbol table")
	textBase := flag.Uint("text", 0, "text base address")
	dataBase := flag.Uint("data", 0x00100000, "data base address")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "fvasm: no input files")
		os.Exit(2)
	}
	var sources []asm.Source
	for _, name := range flag.Args() {
		text, err := os.ReadFile(name)
		if err != nil {
			fatal(err)
		}
		sources = append(sources, asm.Source{Name: name, Text: string(text)})
	}
	im, err := asm.Assemble(asm.Options{
		TextBase: uint32(*textBase),
		DataBase: uint32(*dataBase),
	}, sources...)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("entry %#08x, %d bytes in %d segment(s)\n", im.Entry, im.TotalBytes(), len(im.Segments))

	if *symbols {
		names := make([]string, 0, len(im.Symbols))
		for n := range im.Symbols {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool { return im.Symbols[names[i]] < im.Symbols[names[j]] })
		for _, n := range names {
			fmt.Printf("%08x  %s\n", im.Symbols[n], n)
		}
	}

	if *list {
		for _, seg := range im.Segments {
			for off := 0; off+4 <= len(seg.Data); off += 4 {
				addr := seg.Addr + uint32(off)
				w := uint32(seg.Data[off]) | uint32(seg.Data[off+1])<<8 |
					uint32(seg.Data[off+2])<<16 | uint32(seg.Data[off+3])<<24
				src := ""
				if f, l, ok := im.LineOfAddr(addr); ok {
					src = fmt.Sprintf("%s:%d", f, l)
				}
				fmt.Printf("%08x  %08x  %-30s %s\n", addr, w, isa.Disassemble(w), src)
			}
		}
	}

	if *out != "" {
		if len(im.Segments) == 0 {
			fatal(fmt.Errorf("nothing to write"))
		}
		base := im.Segments[0].Addr
		end := base
		for _, s := range im.Segments {
			if s.Addr+uint32(len(s.Data)) > end {
				end = s.Addr + uint32(len(s.Data))
			}
		}
		flat := make([]byte, end-base)
		for _, s := range im.Segments {
			copy(flat[s.Addr-base:], s.Data)
		}
		if err := os.WriteFile(*out, flat, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes at base %#x)\n", *out, len(flat), base)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fvasm:", err)
	os.Exit(1)
}
