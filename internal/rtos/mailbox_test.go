package rtos

import (
	"testing"
	"time"

	"cosim/internal/asm"
	"cosim/internal/dev"
	"cosim/internal/iss"
)

// TestInterCPUMailbox runs two uKOS instances on two platforms joined
// by the mailbox device: CPU A sends 1,2,3; CPU B's ISR echoes each
// value plus one; A's ISR accumulates the replies — a complete
// dual-processor interrupt-driven exchange.
func TestInterCPUMailbox(t *testing.T) {
	senderSrc := `
.equ MBOX, 0xF0004000
main:
    la   a0, reply_isr
    call k_register_mbox_isr
    addi s0, zero, 1
send_next:
    addi t0, zero, 4
    bge  s0, t0, finished      ; send 1, 2, 3
    la   t1, MBOX
    sw   s0, 0(t1)             ; MBSend -> CPU B
    addi s0, s0, 1
wait_reply:
    di
    la   t0, got_flag
    lw   t1, 0(t0)
    bnez t1, have_reply
    wfi
    ei
    j    wait_reply
have_reply:
    ei
    la   t0, got_flag
    sw   zero, 0(t0)
    j    send_next
finished:
    halt

reply_isr:
    la   t0, MBOX
    lw   t1, 4(t0)             ; MBRecv
    la   t2, sum
    lw   t3, 0(t2)
    add  t3, t3, t1
    sw   t3, 0(t2)
    la   t0, got_flag
    addi t1, zero, 1
    sw   t1, 0(t0)
    ret

.data
.align 4
got_flag: .word 0
sum:      .word 0
`
	echoSrc := `
.equ MBOX, 0xF0004000
main:
    la   a0, echo_isr
    call k_register_mbox_isr
spin:
    wfi
    j    spin

echo_isr:
    la   t0, MBOX
eloop:
    lw   t1, 8(t0)             ; MBAvail
    beqz t1, edone
    lw   t1, 4(t0)             ; MBRecv
    addi t1, t1, 1
    sw   t1, 0(t0)             ; MBSend (reply)
    j    eloop
edone:
    ret
`
	imA, err := Build(asm.Source{Name: "sender.s", Text: senderSrc})
	if err != nil {
		t.Fatal(err)
	}
	imB, err := Build(asm.Source{Name: "echo.s", Text: echoSrc})
	if err != nil {
		t.Fatal(err)
	}

	pa := dev.NewPlatform(0, nil)
	pb := dev.NewPlatform(0, nil)
	ma, mb := dev.NewMailboxPair(pa.PIC, dev.MailboxLine, pb.PIC, dev.MailboxLine)
	pa.AttachMailbox(ma)
	pb.AttachMailbox(mb)

	if err := imA.LoadInto(pa.RAM); err != nil {
		t.Fatal(err)
	}
	if err := imB.LoadInto(pb.RAM); err != nil {
		t.Fatal(err)
	}
	pa.CPU.Reset(imA.Entry)
	pb.CPU.Reset(imB.Entry)

	ra, rb := NewRunner(pa), NewRunner(pb)
	ra.Start()
	rb.Start()
	defer rb.Stop()

	done := make(chan iss.Stop, 1)
	go func() { done <- ra.Wait() }()
	select {
	case stop := <-done:
		if stop != iss.StopHalt {
			t.Fatalf("sender stopped with %v (pc=%#x)", stop, pa.CPU.PC)
		}
	case <-time.After(10 * time.Second):
		ra.Stop()
		sumAddr, _ := imA.Symbol("sum")
		v, _ := pa.RAM.Read(sumAddr, 4)
		t.Fatalf("sender never finished (pc=%#x sleeping=%v sum=%d)", pa.CPU.PC, pa.CPU.Sleeping(), v)
	}

	sum, err := pa.RAM.Read(imA.MustSymbol("sum"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 2+3+4 {
		t.Fatalf("sum = %d, want 9", sum)
	}
}
