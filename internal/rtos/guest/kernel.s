; =====================================================================
; uKOS - a small RTOS kernel for the FV32 platform.
;
; Plays the role of eCos in the paper's Driver-Kernel co-simulation
; scheme: boot, preemptive round-robin threading driven by the platform
; timer, trap/interrupt dispatch with registrable ISRs, and a few
; syscalls. The co-simulation device driver (driver.s) is layered on
; the ISR registration interface defined here.
;
; Register convention: k0/k1 are reserved for the kernel and may be
; clobbered at any interrupt boundary; user code must not keep live
; values there.
; =====================================================================

; ---- platform memory map ----
.equ PIC_BASE,     0xF0000000
.equ TIMER_BASE,   0xF0001000
.equ CONS_BASE,    0xF0002000
.equ COSIM_BASE,   0xF0003000
.equ MBOX_BASE,    0xF0004000

; ---- PIC registers / lines ----
.equ PIC_PENDING,  0x00
.equ PIC_ENABLE,   0x04
.equ PIC_ACK,      0x08
.equ LINE_TIMER,   1          ; bit 0
.equ LINE_COSIM,   2          ; bit 1
.equ LINE_MBOX,    4          ; bit 2

; ---- timer registers ----
.equ TIMER_COUNT,  0x00
.equ TIMER_CMP,    0x04
.equ TIMER_RELOAD, 0x08
.equ TIMER_CTRL,   0x0C
.equ TIMER_ACK,    0x10

; ---- console ----
.equ CONS_TX,      0x00

; ---- syscall numbers ----
.equ SYS_YIELD,    1
.equ SYS_TICKS,    2
.equ SYS_MYTID,    3
.equ SYS_SLEEP,    4

; ---- kernel constants ----
.equ MAX_THREADS,  4
.equ TCB_SIZE,     12         ; {state, saved sp, wake tick}
.equ ST_FREE,      0
.equ ST_READY,     1
.equ ST_SLEEPING,  2
.equ FRAME,        128        ; trap frame size
; frame offsets
.equ F_RA,   0
.equ F_GP,   4
.equ F_S0,   8                ; s0..s5 at 8..28
.equ F_A0,   32               ; a0..a5 at 32..52
.equ F_T0,   56               ; t0..t11 at 56..100
.equ F_FP,   104
.equ F_AT,   108
.equ F_EPC,  112

.text
_start:
    la   sp, k_stack0_top
    la   k0, k_trap_entry
    mtsr ivec, k0
    ; thread 0 (main) is running
    la   k0, k_tcb
    addi k1, zero, 1
    sw   k1, 0(k0)
    ; start the preemption timer if the app configured a tick period
    la   k0, k_tick_period
    lw   k1, 0(k0)
    beqz k1, boot_no_timer
    la   k0, TIMER_BASE
    sw   k1, TIMER_CMP(k0)
    sw   k1, TIMER_RELOAD(k0)
    addi k1, zero, 1
    sw   k1, TIMER_CTRL(k0)
boot_no_timer:
    ; idle thread in the last TCB slot: parks in WFI so SYS_SLEEP can
    ; suspend every user thread without deadlocking the scheduler
    la   k0, k_tcb
    addi k1, zero, TCB_SIZE*(MAX_THREADS-1)
    add  k0, k0, k1
    addi k1, zero, ST_READY
    sw   k1, 0(k0)
    la   k1, k_idle_stack_top-FRAME
    sw   k1, 4(k0)
    la   t0, k_idle_entry
    sw   t0, F_EPC(k1)
    ei
    call main
    halt

k_idle_entry:
    wfi
    j    k_idle_entry

; ---------------------------------------------------------------------
; Trap entry: saves the interrupted context on the current thread's
; stack, dispatches by cause, and resumes (possibly another thread).
; ---------------------------------------------------------------------
k_trap_entry:
    addi sp, sp, -FRAME
    sw   ra, F_RA(sp)
    sw   gp, F_GP(sp)
    sw   s0, F_S0+0(sp)
    sw   s1, F_S0+4(sp)
    sw   s2, F_S0+8(sp)
    sw   s3, F_S0+12(sp)
    sw   s4, F_S0+16(sp)
    sw   s5, F_S0+20(sp)
    sw   a0, F_A0+0(sp)
    sw   a1, F_A0+4(sp)
    sw   a2, F_A0+8(sp)
    sw   a3, F_A0+12(sp)
    sw   a4, F_A0+16(sp)
    sw   a5, F_A0+20(sp)
    sw   t0, F_T0+0(sp)
    sw   t1, F_T0+4(sp)
    sw   t2, F_T0+8(sp)
    sw   t3, F_T0+12(sp)
    sw   t4, F_T0+16(sp)
    sw   t5, F_T0+20(sp)
    sw   t6, F_T0+24(sp)
    sw   t7, F_T0+28(sp)
    sw   t8, F_T0+32(sp)
    sw   t9, F_T0+36(sp)
    sw   t10, F_T0+40(sp)
    sw   t11, F_T0+44(sp)
    sw   fp, F_FP(sp)
    sw   at, F_AT(sp)
    mfsr k0, epc
    sw   k0, F_EPC(sp)

    mfsr k0, cause
    addi k1, zero, 16
    bge  k0, k1, k_irq            ; external interrupt
    addi k1, zero, 1
    beq  k0, k1, k_syscall        ; ecall
    ; unexpected trap: print '!' and halt
    la   k0, CONS_BASE
    addi k1, zero, '!'
    sw   k1, CONS_TX(k0)
    halt

; ---- syscall dispatch (number in saved a0) ----
k_syscall:
    lw   t0, F_A0(sp)
    addi t1, zero, SYS_YIELD
    beq  t0, t1, k_schedule
    addi t1, zero, SYS_TICKS
    beq  t0, t1, k_sys_ticks
    addi t1, zero, SYS_MYTID
    beq  t0, t1, k_sys_mytid
    addi t1, zero, SYS_SLEEP
    beq  t0, t1, k_sys_sleep
    j    k_resume                 ; unknown syscall: no-op

k_sys_ticks:
    la   t0, k_ticks
    lw   t1, 0(t0)
    sw   t1, F_A0(sp)             ; return value in saved a0
    j    k_resume

k_sys_mytid:
    la   t0, k_cur
    lw   t1, 0(t0)
    sw   t1, F_A0(sp)
    j    k_resume

; SYS_SLEEP: suspend the current thread for (saved a1) timer ticks.
k_sys_sleep:
    la   t0, k_cur
    lw   t1, 0(t0)
    la   t2, k_tcb
    addi t3, zero, TCB_SIZE
    mul  t3, t1, t3
    add  t3, t3, t2
    addi t4, zero, ST_SLEEPING
    sw   t4, 0(t3)
    la   t5, k_ticks
    lw   t6, 0(t5)
    lw   t7, F_A0+4(sp)           ; ticks to sleep (a1)
    add  t6, t6, t7
    sw   t6, 8(t3)                ; wake tick
    j    k_schedule

; ---- interrupt dispatch ----
k_irq:
    la   t0, PIC_BASE
    lw   t1, PIC_PENDING(t0)

    andi t2, t1, LINE_TIMER
    beqz t2, k_irq_cosim
    ; timer tick: ack timer + pic, count, reschedule
    la   t3, TIMER_BASE
    sw   zero, TIMER_ACK(t3)
    addi t4, zero, LINE_TIMER
    sw   t4, PIC_ACK(t0)
    la   t3, k_ticks
    lw   t4, 0(t3)
    addi t4, t4, 1
    sw   t4, 0(t3)
    ; wake sleeping threads whose deadline has passed
    la   t5, k_tcb
    addi t6, zero, 0
k_wake_loop:
    lw   t7, 0(t5)                ; state
    addi t8, zero, ST_SLEEPING
    bne  t7, t8, k_wake_next
    lw   t8, 8(t5)                ; wake tick
    blt  t4, t8, k_wake_next
    addi t7, zero, ST_READY
    sw   t7, 0(t5)
k_wake_next:
    addi t5, t5, TCB_SIZE
    addi t6, t6, 1
    addi t7, zero, MAX_THREADS
    blt  t6, t7, k_wake_loop
    j    k_schedule

k_irq_cosim:
    andi t2, t1, LINE_COSIM
    beqz t2, k_irq_mbox
    ; call the registered co-simulation ISR; with no handler yet, mask
    ; the line so the (level-held) interrupt is delivered once a driver
    ; registers, instead of storming or being lost.
    la   t3, k_cosim_isr
    lw   t4, 0(t3)
    beqz t4, k_irq_cosim_mask
    jalr ra, t4, 0
k_irq_cosim_ack:
    la   t0, PIC_BASE
    addi t4, zero, LINE_COSIM
    sw   t4, PIC_ACK(t0)
    j    k_resume
k_irq_cosim_mask:
    la   t0, PIC_BASE
    lw   t4, PIC_ENABLE(t0)
    li   t5, 0xFFFFFFFD          ; ~LINE_COSIM
    and  t4, t4, t5
    sw   t4, PIC_ENABLE(t0)
    j    k_resume

k_irq_mbox:
    andi t2, t1, LINE_MBOX
    beqz t2, k_irq_spurious
    la   t3, k_mbox_isr
    lw   t4, 0(t3)
    beqz t4, k_irq_mbox_mask
    jalr ra, t4, 0
k_irq_mbox_ack:
    la   t0, PIC_BASE
    addi t4, zero, LINE_MBOX
    sw   t4, PIC_ACK(t0)
    j    k_resume
k_irq_mbox_mask:
    la   t0, PIC_BASE
    lw   t4, PIC_ENABLE(t0)
    li   t5, 0xFFFFFFFB          ; ~LINE_MBOX
    and  t4, t4, t5
    sw   t4, PIC_ENABLE(t0)
    j    k_resume

k_irq_spurious:
    ; acknowledge everything pending so we do not livelock
    sw   t1, PIC_ACK(t0)
    j    k_resume

; ---------------------------------------------------------------------
; Round-robin scheduler: save current sp, pick next ready thread.
; ---------------------------------------------------------------------
k_schedule:
    la   t0, k_cur
    lw   t1, 0(t0)                ; cur index
    la   t2, k_tcb
    addi t6, zero, TCB_SIZE
    mul  t3, t1, t6
    add  t3, t3, t2
    sw   sp, 4(t3)                ; tcb[cur].sp = sp
    ; First pass: the next ready USER thread (slots 0..MAX-2), round
    ; robin from cur. The idle thread (last slot) runs only when no
    ; user thread is ready.
    addi t8, zero, MAX_THREADS    ; scan budget
k_sched_next:
    beqz t8, k_sched_idle
    addi t8, t8, -1
    addi t1, t1, 1
    addi t4, zero, MAX_THREADS-1
    blt  t1, t4, k_sched_nowrap
    addi t1, zero, 0
k_sched_nowrap:
    mul  t3, t1, t6
    add  t3, t3, t2
    lw   t5, 0(t3)                ; state
    addi t7, zero, ST_READY
    bne  t5, t7, k_sched_next
    j    k_sched_found
k_sched_idle:
    addi t1, zero, MAX_THREADS-1
    mul  t3, t1, t6
    add  t3, t3, t2
k_sched_found:
    sw   t1, 0(t0)                ; k_cur = next
    lw   sp, 4(t3)

; ---------------------------------------------------------------------
; Resume the context on sp (sets PIE so eret re-enables interrupts).
; ---------------------------------------------------------------------
k_resume:
    lw   k0, F_EPC(sp)
    mtsr epc, k0
    mfsr k0, status
    ori  k0, k0, 2                ; PIE = 1
    mtsr status, k0
    lw   ra, F_RA(sp)
    lw   gp, F_GP(sp)
    lw   s0, F_S0+0(sp)
    lw   s1, F_S0+4(sp)
    lw   s2, F_S0+8(sp)
    lw   s3, F_S0+12(sp)
    lw   s4, F_S0+16(sp)
    lw   s5, F_S0+20(sp)
    lw   a0, F_A0+0(sp)
    lw   a1, F_A0+4(sp)
    lw   a2, F_A0+8(sp)
    lw   a3, F_A0+12(sp)
    lw   a4, F_A0+16(sp)
    lw   a5, F_A0+20(sp)
    lw   t0, F_T0+0(sp)
    lw   t1, F_T0+4(sp)
    lw   t2, F_T0+8(sp)
    lw   t3, F_T0+12(sp)
    lw   t4, F_T0+16(sp)
    lw   t5, F_T0+20(sp)
    lw   t6, F_T0+24(sp)
    lw   t7, F_T0+28(sp)
    lw   t8, F_T0+32(sp)
    lw   t9, F_T0+36(sp)
    lw   t10, F_T0+40(sp)
    lw   t11, F_T0+44(sp)
    lw   fp, F_FP(sp)
    lw   at, F_AT(sp)
    addi sp, sp, FRAME
    eret

; ---------------------------------------------------------------------
; k_thread_create(a0 = entry, a1 = stack_top) -> a0 = tid or -1
; Forges a trap frame on the new stack so the scheduler can switch in.
; ---------------------------------------------------------------------
k_thread_create:
    la   t0, k_tcb
    addi t1, zero, 0              ; index
    addi t6, zero, TCB_SIZE
ktc_loop:
    mul  t2, t1, t6
    add  t2, t2, t0
    lw   t3, 0(t2)
    beqz t3, ktc_found
    addi t1, t1, 1
    addi t4, zero, MAX_THREADS
    blt  t1, t4, ktc_loop
    li   a0, -1
    ret
ktc_found:
    addi t4, a1, -FRAME           ; sp' with forged frame
    sw   a0, F_EPC(t4)            ; resume at entry
    sw   zero, F_RA(t4)
    addi t5, zero, ST_READY
    sw   t5, 0(t2)                ; state = ready
    sw   t4, 4(t2)                ; saved sp
    mv   a0, t1
    ret

; ---------------------------------------------------------------------
; Console helpers.
; k_putc(a0 = char), k_puts(a0 = nul-terminated string)
; ---------------------------------------------------------------------
k_putc:
    la   t0, CONS_BASE
    sw   a0, CONS_TX(t0)
    ret

k_puts:
    la   t0, CONS_BASE
kp_loop:
    lbu  t1, 0(a0)
    beqz t1, kp_done
    sw   t1, CONS_TX(t0)
    addi a0, a0, 1
    j    kp_loop
kp_done:
    ret

; k_yield: cooperative reschedule via syscall
k_yield:
    addi a0, zero, SYS_YIELD
    ecall
    ret

; k_ticks_now() -> a0
k_ticks_now:
    addi a0, zero, SYS_TICKS
    ecall
    ret

; k_sleep(a0 = timer ticks): suspend the calling thread. Requires the
; preemption timer (k_tick_period != 0).
k_sleep:
    mv   a1, a0
    addi a0, zero, SYS_SLEEP
    ecall
    ret

; k_sem_wait(a0 = semaphore word): decrement, yielding while zero.
k_sem_wait:
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   s0, 4(sp)
    mv   s0, a0
ksw_retry:
    di
    lw   t0, 0(s0)
    bnez t0, ksw_take
    ei
    call k_yield
    j    ksw_retry
ksw_take:
    addi t0, t0, -1
    sw   t0, 0(s0)
    ei
    lw   ra, 0(sp)
    lw   s0, 4(sp)
    addi sp, sp, 8
    ret

; k_sem_post(a0 = semaphore word)
k_sem_post:
    di
    lw   t0, 0(a0)
    addi t0, t0, 1
    sw   t0, 0(a0)
    ei
    ret

; k_register_cosim_isr(a0 = handler): install and unmask the line (a
; level-held interrupt that arrived before registration fires now).
k_register_cosim_isr:
    la   t0, k_cosim_isr
    sw   a0, 0(t0)
    la   t0, PIC_BASE
    lw   t1, PIC_ENABLE(t0)
    ori  t1, t1, LINE_COSIM
    sw   t1, PIC_ENABLE(t0)
    ret

; k_register_mbox_isr(a0 = handler)
k_register_mbox_isr:
    la   t0, k_mbox_isr
    sw   a0, 0(t0)
    la   t0, PIC_BASE
    lw   t1, PIC_ENABLE(t0)
    ori  t1, t1, LINE_MBOX
    sw   t1, PIC_ENABLE(t0)
    ret

; ---------------------------------------------------------------------
; Kernel data.
; ---------------------------------------------------------------------
.data
.align 4
k_tcb:         .space 48         ; MAX_THREADS * {state, sp, wake}
k_cur:         .word 0
k_ticks:       .word 0
k_cosim_isr:   .word 0
k_mbox_isr:    .word 0
k_tick_period: .word 0           ; cycles per preemption tick; 0 = off

.align 16
k_stack0:      .space 4096
k_stack0_top:
.align 16
k_stack1:      .space 2048
k_stack1_top:
.align 16
k_stack2:      .space 2048
k_stack2_top:
.align 16
k_idle_stack:  .space 256
k_idle_stack_top:
