; =====================================================================
; uKOS co-simulation device driver (the paper's Driver-Kernel scheme,
; software side).
;
; The driver exchanges the paper's READ/WRITE messages with the SystemC
; kernel through the memory-mapped CosimDev bridge, which forwards them
; on the data socket (port 4444) and queues interrupt notifications
; from the interrupt socket (port 4445).
;
; Wire format (little-endian words):
;   WRITE (driver -> SystemC): [size][type=1][cycles][namelen][name...][datalen][data...]
;   READ  (driver -> SystemC): [size][type=2][cycles][namelen][name...]
;   DATA  (SystemC -> driver): [size][type=3][datalen][data...]
; 'size' counts the bytes that follow the size word. Port names select
; the SystemC iss_in (WRITE) or iss_out (READ) port, as in Figure 4.
; 'cycles' is the guest cycle counter at send time; the SystemC kernel
; uses it to place deliveries on the simulated timeline.
;
; Public API (regular calls, FV32 ABI):
;   cosim_write(a0=name, a1=namelen, a2=data, a3=datalen)
;   cosim_read (a0=name, a1=namelen, a2=buf,  a3=buflen) -> a0 = datalen
;   cosim_register_isr(a0=handler)   handler(a0=interrupt id)
; =====================================================================

; ---- CosimDev registers ----
.equ CS_TXBYTE,  0x00
.equ CS_TXWORD,  0x04
.equ CS_TXFLUSH, 0x08
.equ CS_RXBYTE,  0x0C
.equ CS_RXWORD,  0x10
.equ CS_RXAVAIL, 0x14
.equ CS_INTNUM,  0x18
.equ CS_INTACK,  0x1C
.equ CS_RXIEN,   0x20

; ---- message types ----
.equ MSG_WRITE, 1
.equ MSG_READ,  2
.equ MSG_DATA,  3

; ---- reserved interrupt ids ----
.equ INT_NONE,       0xFFFFFFFF
.equ INT_DATA_READY, 0xFFFFFFF0

.text

; ---------------------------------------------------------------------
; cosim_write(a0=name, a1=namelen, a2=data, a3=datalen)
; ---------------------------------------------------------------------
cosim_write:
    la   t0, COSIM_BASE
    ; size = type(4) + cycles(4) + namelen-field(4) + name + datalen-field(4) + data
    addi t1, a1, 16
    add  t1, t1, a3
    sw   t1, CS_TXWORD(t0)
    addi t2, zero, MSG_WRITE
    sw   t2, CS_TXWORD(t0)
    mfsr t2, cycle
    sw   t2, CS_TXWORD(t0)
    sw   a1, CS_TXWORD(t0)
    mv   t3, a0
    mv   t4, a1
cw_name:
    beqz t4, cw_name_done
    lbu  t5, 0(t3)
    sw   t5, CS_TXBYTE(t0)
    addi t3, t3, 1
    addi t4, t4, -1
    j    cw_name
cw_name_done:
    sw   a3, CS_TXWORD(t0)
    mv   t3, a2
    mv   t4, a3
cw_data:
    beqz t4, cw_data_done
    lbu  t5, 0(t3)
    sw   t5, CS_TXBYTE(t0)
    addi t3, t3, 1
    addi t4, t4, -1
    j    cw_data
cw_data_done:
    sw   zero, CS_TXFLUSH(t0)
    ret

; ---------------------------------------------------------------------
; cosim_read(a0=name, a1=namelen, a2=buf, a3=buflen) -> a0 = datalen
;
; Sends a READ request, then sleeps in WFI until the DATA reply is
; complete. Interrupts are disabled around the availability check so a
; wakeup between check and WFI cannot be lost (WFI falls through when
; an interrupt is pending even with IE=0).
; ---------------------------------------------------------------------
cosim_read:
    la   t0, COSIM_BASE
    addi t1, a1, 12               ; size = type + cycles + namelen-field + name
    sw   t1, CS_TXWORD(t0)
    addi t2, zero, MSG_READ
    sw   t2, CS_TXWORD(t0)
    mfsr t2, cycle
    sw   t2, CS_TXWORD(t0)
    sw   a1, CS_TXWORD(t0)
    mv   t3, a0
    mv   t4, a1
cr_name:
    beqz t4, cr_name_done
    lbu  t5, 0(t3)
    sw   t5, CS_TXBYTE(t0)
    addi t3, t3, 1
    addi t4, t4, -1
    j    cr_name
cr_name_done:
    sw   zero, CS_TXFLUSH(t0)

    ; Wait for the size word of the reply. Each iteration re-arms the
    ; RX-available level interrupt (the dispatcher disarms it when it
    ; fires) so a reply racing ahead of its DATA_READY notification on
    ; the other socket can never be missed, and the level cannot storm.
cr_poll_hdr:
    di
    addi t1, zero, 1
    sw   t1, CS_RXIEN(t0)
    lw   t5, CS_RXAVAIL(t0)
    addi t6, zero, 4
    bge  t5, t6, cr_have_hdr
    wfi
    ei                            ; take + acknowledge the interrupt
    j    cr_poll_hdr
cr_have_hdr:
    sw   zero, CS_RXIEN(t0)
    ei
    lw   t7, CS_RXWORD(t0)        ; size (bytes after this word)

    ; wait for the full reply body
cr_poll_body:
    di
    addi t1, zero, 1
    sw   t1, CS_RXIEN(t0)
    lw   t5, CS_RXAVAIL(t0)
    bge  t5, t7, cr_have_body
    wfi
    ei
    j    cr_poll_body
cr_have_body:
    sw   zero, CS_RXIEN(t0)
    ei
    lw   t6, CS_RXWORD(t0)        ; type (MSG_DATA, unchecked here)
    lw   t8, CS_RXWORD(t0)        ; datalen

    ; copy min(datalen, buflen) into buf, draining the remainder
    mv   t9, a2
    mv   t10, zero
cr_copy:
    bge  t10, t8, cr_done
    lw   t5, CS_RXBYTE(t0)
    bge  t10, a3, cr_skip         ; beyond caller's buffer: drop
    sb   t5, 0(t9)
    addi t9, t9, 1
cr_skip:
    addi t10, t10, 1
    j    cr_copy
cr_done:
    mv   a0, t8
    ret

; ---------------------------------------------------------------------
; cosim_register_isr(a0 = handler): installs the driver's interrupt
; dispatcher on the kernel's co-simulation line and records the user
; handler, which is called with the interrupt id in a0.
; ---------------------------------------------------------------------
cosim_register_isr:
    la   t0, drv_user_isr
    sw   a0, 0(t0)
    la   a0, drv_isr
    j    k_register_cosim_isr     ; tail call; returns to our caller

; ---------------------------------------------------------------------
; drv_isr: kernel-level dispatcher for the co-simulation line. Drains
; all queued interrupt ids: DATA_READY just acknowledges (cosim_read's
; WFI loop rechecks availability); user ids invoke the registered
; handler.
; ---------------------------------------------------------------------
drv_isr:
    addi sp, sp, -16
    sw   ra, 0(sp)
    sw   s0, 4(sp)
    la   s0, COSIM_BASE
di_loop:
    lw   t1, CS_INTNUM(s0)
    li   t2, INT_NONE
    beq  t1, t2, di_done
    li   t2, INT_DATA_READY
    beq  t1, t2, di_ack
    ; user interrupt: dispatch
    la   t3, drv_user_isr
    lw   t4, 0(t3)
    beqz t4, di_ack
    mv   a0, t1
    jalr ra, t4, 0
di_ack:
    sw   zero, CS_INTACK(s0)
    j    di_loop
di_done:
    ; If the wake came from the RX-available level (no queued id),
    ; disarm it so the level cannot re-trap with no forward progress;
    ; the read loop re-arms it on its next iteration.
    sw   zero, CS_RXIEN(s0)
    lw   ra, 0(sp)
    lw   s0, 4(sp)
    addi sp, sp, 16
    ret

.data
drv_user_isr: .word 0
