package rtos

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"cosim/internal/asm"
	"cosim/internal/dev"
	"cosim/internal/iss"
)

// buildPlatform assembles the kernel + app and loads it on a platform.
func buildPlatform(t *testing.T, appSrc string) (*dev.Platform, *asm.Image) {
	t.Helper()
	im, err := Build(asm.Source{Name: "app.s", Text: appSrc})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	p := dev.NewPlatform(0, nil)
	if err := im.LoadInto(p.RAM); err != nil {
		t.Fatal(err)
	}
	p.CPU.Reset(im.Entry)
	return p, im
}

// pokeWord writes a word into guest RAM at a symbol.
func pokeWord(t *testing.T, p *dev.Platform, im *asm.Image, sym string, v uint32) {
	t.Helper()
	addr, ok := im.Symbol(sym)
	if !ok {
		t.Fatalf("symbol %q not found", sym)
	}
	if err := p.RAM.Write(addr, 4, v); err != nil {
		t.Fatal(err)
	}
}

// peekWord reads a word from guest RAM at a symbol.
func peekWord(t *testing.T, p *dev.Platform, im *asm.Image, sym string) uint32 {
	t.Helper()
	addr, ok := im.Symbol(sym)
	if !ok {
		t.Fatalf("symbol %q not found", sym)
	}
	v, err := p.RAM.Read(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestBootAndConsole(t *testing.T) {
	p, _ := buildPlatform(t, `
main:
    la   a0, msg
    call k_puts
    halt
.data
msg: .asciz "hello from uKOS\n"
`)
	stop, _ := p.Run(1_000_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v (pc=%#x)", stop, p.CPU.PC)
	}
	if got := p.Console.Output(); got != "hello from uKOS\n" {
		t.Fatalf("console = %q", got)
	}
}

func TestSyscallTicksAndTid(t *testing.T) {
	p, im := buildPlatform(t, `
main:
    call k_ticks_now
    la   t0, ticks0
    sw   a0, 0(t0)
    addi a0, zero, 3      ; SYS_MYTID
    ecall
    la   t0, mytid
    sw   a0, 0(t0)
    halt
.data
ticks0: .word 0xFFFFFFFF
mytid:  .word 0xFFFFFFFF
`)
	stop, _ := p.Run(1_000_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v", stop)
	}
	if got := peekWord(t, p, im, "ticks0"); got != 0 {
		t.Fatalf("initial ticks = %d", got)
	}
	if got := peekWord(t, p, im, "mytid"); got != 0 {
		t.Fatalf("main tid = %d", got)
	}
}

func TestPreemptiveThreads(t *testing.T) {
	p, im := buildPlatform(t, `
main:
    la   a0, worker
    la   a1, k_stack1_top
    call k_thread_create
    la   t0, created_tid
    sw   a0, 0(t0)
mloop:
    la   t0, counter_a
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
    la   t2, counter_b
    lw   t3, 0(t2)
    addi t4, zero, 3
    blt  t3, t4, mloop
    halt

worker:
wloop:
    la   t0, counter_b
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
    j    wloop

.data
counter_a:   .word 0
counter_b:   .word 0
created_tid: .word 0xFFFFFFFF
`)
	// Enable a 400-cycle preemption tick before boot.
	pokeWord(t, p, im, "k_tick_period", 400)
	stop, _ := p.Run(3_000_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v (pc=%#x, a=%d b=%d)", stop, p.CPU.PC,
			peekWord(t, p, im, "counter_a"), peekWord(t, p, im, "counter_b"))
	}
	if tid := peekWord(t, p, im, "created_tid"); tid != 1 {
		t.Fatalf("created tid = %d", tid)
	}
	a := peekWord(t, p, im, "counter_a")
	b := peekWord(t, p, im, "counter_b")
	if a == 0 || b < 3 {
		t.Fatalf("counters a=%d b=%d: preemption did not interleave threads", a, b)
	}
}

func TestCooperativeYield(t *testing.T) {
	p, im := buildPlatform(t, `
main:
    la   a0, worker
    la   a1, k_stack1_top
    call k_thread_create
    call k_yield           ; hand the CPU to the worker
    la   t0, flag
    lw   t1, 0(t0)
    la   t2, result
    sw   t1, 0(t2)
    halt

worker:
    la   t0, flag
    addi t1, zero, 42
    sw   t1, 0(t0)
wspin:
    call k_yield
    j    wspin

.data
flag:   .word 0
result: .word 0
`)
	stop, _ := p.Run(1_000_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v (pc=%#x)", stop, p.CPU.PC)
	}
	if got := peekWord(t, p, im, "result"); got != 42 {
		t.Fatalf("result = %d: yield did not run the worker", got)
	}
}

// readMessage parses one driver message from the data connection.
func readMessage(t *testing.T, c net.Conn) (msgType uint32, name string, data []byte) {
	t.Helper()
	var sizeBuf [4]byte
	if err := c.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := readFull(c, sizeBuf[:]); err != nil {
		t.Fatalf("read size: %v", err)
	}
	size := binary.LittleEndian.Uint32(sizeBuf[:])
	body := make([]byte, size)
	if _, err := readFull(c, body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	msgType = binary.LittleEndian.Uint32(body[0:4])
	// body[4:8] is the guest cycle stamp.
	nameLen := binary.LittleEndian.Uint32(body[8:12])
	name = string(body[12 : 12+nameLen])
	rest := body[12+nameLen:]
	if msgType == 1 { // WRITE carries data
		dataLen := binary.LittleEndian.Uint32(rest[0:4])
		data = rest[4 : 4+dataLen]
	}
	return
}

func readFull(c net.Conn, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := c.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func TestDriverWriteAndRead(t *testing.T) {
	p, im := buildPlatform(t, `
main:
    ; WRITE 8 bytes to port "csum"
    la   a0, port_w
    addi a1, zero, 4
    la   a2, outdata
    addi a3, zero, 8
    call cosim_write
    ; READ up to 16 bytes from port "pkt"
    la   a0, port_r
    addi a1, zero, 3
    la   a2, inbuf
    addi a3, zero, 16
    call cosim_read
    la   t0, readlen
    sw   a0, 0(t0)
    halt
.data
port_w:  .asciz "csum"
port_r:  .asciz "pkt"
outdata: .byte 1,2,3,4,5,6,7,8
inbuf:   .space 16
.align 4
readlen: .word 0
`)
	hostData, guestData := net.Pipe()
	hostIRQ, guestIRQ := net.Pipe()
	p.Cosim.ConnectData(guestData, guestData)
	p.Cosim.ConnectIRQ(guestIRQ)

	// Host side: expect the WRITE, then the READ; reply with data and a
	// DATA_READY interrupt.
	hostDone := make(chan error, 1)
	go func() {
		mt, name, data := readMessage(t, hostData)
		if mt != 1 || name != "csum" || len(data) != 8 || data[0] != 1 || data[7] != 8 {
			t.Errorf("WRITE message: type=%d name=%q data=% x", mt, name, data)
		}
		mt, name, _ = readMessage(t, hostData)
		if mt != 2 || name != "pkt" {
			t.Errorf("READ message: type=%d name=%q", mt, name)
		}
		// Reply: [size][type=3][datalen][data...]
		payload := []byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE}
		reply := make([]byte, 12+len(payload))
		binary.LittleEndian.PutUint32(reply[0:4], uint32(8+len(payload)))
		binary.LittleEndian.PutUint32(reply[4:8], 3)
		binary.LittleEndian.PutUint32(reply[8:12], uint32(len(payload)))
		copy(reply[12:], payload)
		if _, err := hostData.Write(reply); err != nil {
			hostDone <- err
			return
		}
		var irq [4]byte
		binary.LittleEndian.PutUint32(irq[:], IntDataReady)
		_, err := hostIRQ.Write(irq[:])
		hostDone <- err
	}()

	r := NewRunner(p)
	r.Start()
	select {
	case err := <-hostDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("host protocol exchange timed out")
	}
	if got := r.Wait(); got != iss.StopHalt {
		t.Fatalf("guest stop = %v (pc=%#x)", got, p.CPU.PC)
	}
	if got := peekWord(t, p, im, "readlen"); got != 5 {
		t.Fatalf("readlen = %d, want 5", got)
	}
	buf, _ := p.RAM.ReadBytes(im.MustSymbol("inbuf"), 5)
	want := []byte{0xAA, 0xBB, 0xCC, 0xDD, 0xEE}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("inbuf = % x, want % x", buf, want)
		}
	}
}

func TestDriverUserISR(t *testing.T) {
	p, im := buildPlatform(t, `
main:
    la   a0, my_isr
    call cosim_register_isr
spin:
    la   t0, got
    lw   t1, 0(t0)
    beqz t1, spin
    halt

my_isr:
    la   t0, got
    sw   a0, 0(t0)
    ret

.data
got: .word 0
`)
	r := NewRunner(p)
	r.Start()
	time.Sleep(2 * time.Millisecond) // let the guest install the ISR
	p.Cosim.InjectIRQ(5)
	done := make(chan iss.Stop, 1)
	go func() { done <- r.Wait() }()
	select {
	case stop := <-done:
		if stop != iss.StopHalt {
			t.Fatalf("stop = %v", stop)
		}
	case <-time.After(5 * time.Second):
		r.Stop()
		t.Fatalf("guest never halted (pc=%#x, got=%d)", p.CPU.PC, peekWord(t, p, im, "got"))
	}
	if got := peekWord(t, p, im, "got"); got != 5 {
		t.Fatalf("isr saw id %d, want 5", got)
	}
}

func TestKernelLinesNonzero(t *testing.T) {
	k, d := KernelLines()
	if k < 100 || d < 50 {
		t.Fatalf("kernel=%d driver=%d lines: embed broken?", k, d)
	}
}

func TestRunnerStop(t *testing.T) {
	p, _ := buildPlatform(t, `
main:
spin:
    j spin
`)
	r := NewRunner(p)
	r.Start()
	time.Sleep(time.Millisecond)
	r.Stop()
	if p.CPU.Instructions() == 0 {
		t.Fatal("runner never executed anything")
	}
}

func TestSleepSyscall(t *testing.T) {
	p, im := buildPlatform(t, `
main:
    call k_ticks_now
    la   t0, t_before
    sw   a0, 0(t0)
    addi a0, zero, 5
    call k_sleep
    call k_ticks_now
    la   t0, t_after
    sw   a0, 0(t0)
    halt
.data
.align 4
t_before: .word 0
t_after:  .word 0
`)
	pokeWord(t, p, im, "k_tick_period", 300)
	stop, _ := p.Run(5_000_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v (pc=%#x)", stop, p.CPU.PC)
	}
	before := peekWord(t, p, im, "t_before")
	after := peekWord(t, p, im, "t_after")
	if after < before+5 {
		t.Fatalf("slept from tick %d to %d, want >= +5", before, after)
	}
	if after > before+8 {
		t.Fatalf("overslept: tick %d -> %d", before, after)
	}
}

func TestTwoThreadsSleepInterleaved(t *testing.T) {
	p, im := buildPlatform(t, `
main:
    la   a0, worker
    la   a1, k_stack1_top
    call k_thread_create
    ; main sleeps longer than the worker's first step
    addi a0, zero, 6
    call k_sleep
    ; by now the worker (sleeping 2 ticks at a time) has run
    la   t0, progress
    lw   t1, 0(t0)
    la   t2, observed
    sw   t1, 0(t2)
    halt

worker:
wloop:
    la   t0, progress
    lw   t1, 0(t0)
    addi t1, t1, 1
    sw   t1, 0(t0)
    addi a0, zero, 2
    call k_sleep
    j    wloop

.data
.align 4
progress: .word 0
observed: .word 0
`)
	pokeWord(t, p, im, "k_tick_period", 300)
	stop, _ := p.Run(10_000_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v (pc=%#x)", stop, p.CPU.PC)
	}
	got := peekWord(t, p, im, "observed")
	if got < 2 || got > 5 {
		t.Fatalf("worker progressed %d times during main's 6-tick sleep, want 2..5", got)
	}
}

func TestSemaphoreMutualExclusion(t *testing.T) {
	p, im := buildPlatform(t, `
; Two threads increment a shared counter 100 times each inside a
; semaphore-protected critical section that deliberately opens a
; read-modify-write window (preemption would corrupt it without the
; semaphore).
main:
    la   a0, worker
    la   a1, k_stack1_top
    call k_thread_create
    call body
    la   t0, done_main
    addi t1, zero, 1
    sw   t1, 0(t0)
wait_worker:
    la   t0, done_worker
    lw   t1, 0(t0)
    beqz t1, wait_worker
    halt

worker:
    call body
    la   t0, done_worker
    addi t1, zero, 1
    sw   t1, 0(t0)
wspin:
    call k_yield
    j    wspin

body:
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   s0, 4(sp)
    addi s0, zero, 100
body_loop:
    beqz s0, body_done
    la   a0, sem
    call k_sem_wait
    ; critical section: read, dawdle, write
    la   t0, counter
    lw   t1, 0(t0)
    nop
    nop
    nop
    addi t1, t1, 1
    sw   t1, 0(t0)
    la   a0, sem
    call k_sem_post
    addi s0, s0, -1
    j    body_loop
body_done:
    lw   ra, 0(sp)
    lw   s0, 4(sp)
    addi sp, sp, 8
    ret

.data
.align 4
sem:         .word 1
counter:     .word 0
done_main:   .word 0
done_worker: .word 0
`)
	pokeWord(t, p, im, "k_tick_period", 97) // aggressive preemption
	stop, _ := p.Run(30_000_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v (pc=%#x counter=%d)", stop, p.CPU.PC, peekWord(t, p, im, "counter"))
	}
	if got := peekWord(t, p, im, "counter"); got != 200 {
		t.Fatalf("counter = %d, want 200 (critical section corrupted)", got)
	}
}

func TestIdleThreadWhenAllSleep(t *testing.T) {
	// With every user thread sleeping, the kernel idles in WFI and the
	// timer wakes it back up — no deadlock, no busy spin.
	p, im := buildPlatform(t, `
main:
    addi a0, zero, 3
    call k_sleep
    addi a0, zero, 3
    call k_sleep
    halt
`)
	pokeWord(t, p, im, "k_tick_period", 400)
	stop, _ := p.Run(5_000_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v (pc=%#x)", stop, p.CPU.PC)
	}
}
