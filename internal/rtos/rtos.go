// Package rtos provides μKOS, a small RTOS for the FV32 platform
// written in FV32 assembly, standing in for eCos in the paper's
// Driver-Kernel co-simulation scheme. It offers boot, preemptive
// round-robin threading off the platform timer, trap/interrupt dispatch
// with registrable ISRs, console output, and a co-simulation device
// driver that speaks the paper's READ/WRITE socket message format
// through the CosimDev bridge device.
//
// Guest applications are additional assembly sources defining `main`
// (and optionally extra threads); Build links them with the kernel and
// driver into a loadable image.
package rtos

import (
	_ "embed"
	"sync/atomic"
	"time"

	"cosim/internal/asm"
	"cosim/internal/dev"
	"cosim/internal/iss"
)

//go:embed guest/kernel.s
var kernelSrc string

//go:embed guest/driver.s
var driverSrc string

// Reserved co-simulation interrupt ids (mirrors driver.s).
const (
	IntNone      = 0xffffffff
	IntDataReady = 0xfffffff0
)

// KernelLines returns the source line count of the kernel+driver, used
// by the harness to report the paper's code-size comparison (§5).
func KernelLines() (kernel, driver int) {
	return countLines(kernelSrc), countLines(driverSrc)
}

// DriverSource returns the driver source text (for LoC accounting).
func DriverSource() string { return driverSrc }

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}

// Sources returns the kernel and driver sources, in link order.
func Sources() []asm.Source {
	return []asm.Source{
		{Name: "kernel.s", Text: kernelSrc},
		{Name: "driver.s", Text: driverSrc},
	}
}

// Build assembles the kernel, the co-simulation driver and the given
// application sources into one image. The application must define
// `main`.
func Build(app ...asm.Source) (*asm.Image, error) {
	srcs := append(Sources(), app...)
	return asm.Assemble(asm.Options{TextBase: 0, DataBase: 0x00200000}, srcs...)
}

// Runner drives a platform in a host goroutine: it keeps executing
// until the guest halts or Stop is called, sleeping briefly when the
// CPU is parked in WFI with nothing pending (waiting for an external
// co-simulation interrupt).
type Runner struct {
	P *dev.Platform
	// ID is the guest's CPU index in a multi-processor SoC, inherited
	// from the platform's instance id — it identifies which RTOS
	// instance this runner drives in logs and tests.
	ID int
	// IdleSleep is the host-side wait when the guest is in WFI.
	IdleSleep time.Duration
	// Quantum is the instruction budget per inner run call.
	Quantum uint64

	stop atomic.Bool
	done chan struct{}
	last iss.Stop
}

// NewRunner creates a runner with sensible defaults.
func NewRunner(p *dev.Platform) *Runner {
	return &Runner{P: p, ID: p.ID, IdleSleep: 20 * time.Microsecond, Quantum: 100_000, done: make(chan struct{})}
}

// Start launches the run loop in its own goroutine.
func (r *Runner) Start() {
	go func() {
		defer close(r.done)
		wake := r.P.CPU.WakeChan()
		for !r.stop.Load() {
			stop, _ := r.P.Run(r.Quantum)
			r.last = stop
			switch stop {
			case iss.StopBudget:
				// keep going
			case iss.StopIdle:
				// Parked in WFI: sleep until an interrupt is raised
				// (with a fallback poll for timer-driven wakeups).
				select {
				case <-wake:
				case <-time.After(r.IdleSleep):
				}
			default:
				return // halt, error, ...
			}
		}
	}()
}

// Stop requests termination and waits for the loop to exit.
func (r *Runner) Stop() {
	r.stop.Store(true)
	<-r.done
}

// Wait blocks until the guest halts on its own.
func (r *Runner) Wait() iss.Stop {
	<-r.done
	return r.last
}

// LastStop returns the most recent stop reason.
func (r *Runner) LastStop() iss.Stop { return r.last }
