// Package isa defines FV32, the 32-bit RISC instruction set executed by
// the project's instruction-set simulator (internal/iss).
//
// FV32 stands in for the paper's i386 synthetic target: a fixed-width
// 32-bit load/store architecture with 32 general-purpose registers, a
// small special-register file for trap and interrupt state, and an
// EBREAK instruction used by the GDB stub to plant software breakpoints.
//
// Encoding (all instructions are 32 bits):
//
//	bits 31..26  primary opcode
//	R-type: rd[25:21] rs1[20:16] rs2[15:11] funct[10:0]
//	I-type: rd[25:21] rs1[20:16] imm16[15:0]   (sign-extended)
//	B-type: ra[25:21] rb[20:16]  off16[15:0]   (word offset, pc-relative)
//	J-type: rd[25:21] imm21[20:0]              (word offset, pc-relative)
package isa

import "fmt"

// Word is the architectural word size in bytes.
const Word = 4

// NumRegs is the number of general-purpose registers.
const NumRegs = 32

// Format describes how an instruction's operands are encoded.
type Format uint8

const (
	FmtR Format = iota // rd, rs1, rs2
	FmtI               // rd, rs1, imm16
	FmtB               // ra, rb, offset16 (branches)
	FmtJ               // rd, imm21 (JAL)
	FmtS               // system: imm16 selects operation/special register
)

// Opcode is a mnemonic-level operation.
type Opcode uint8

// The FV32 instruction set.
const (
	BAD Opcode = iota

	// R-type ALU.
	ADD
	SUB
	AND
	OR
	XOR
	NOR
	SLL
	SRL
	SRA
	SLT
	SLTU
	MUL
	MULH
	DIV
	DIVU
	REM
	REMU

	// I-type ALU.
	ADDI
	ANDI
	ORI
	XORI
	SLTI
	SLTIU
	SLLI
	SRLI
	SRAI
	LUI // rd = imm16 << 16

	// Loads (rd = mem[rs1+imm]).
	LW
	LH
	LHU
	LB
	LBU

	// Stores (mem[rs1+imm] = rd).
	SW
	SH
	SB

	// Branches (if ra OP rb: pc += off*4).
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU

	// Jumps.
	JAL  // rd = pc+4; pc += imm*4
	JALR // rd = pc+4; pc = (rs1+imm) &^ 3

	// System.
	ECALL  // environment call (syscall trap)
	EBREAK // software breakpoint (used by the GDB stub)
	ERET   // return from trap/interrupt
	WFI    // wait for interrupt
	HALT   // stop the processor
	MFSR   // rd = SR[imm]
	MTSR   // SR[imm] = rs1

	numOpcodes
)

// Special registers (the SR file accessed by MFSR/MTSR).
const (
	SRStatus  = 0 // bit0 = IE (interrupt enable), bit1 = PIE (previous IE)
	SREPC     = 1 // exception PC
	SRCause   = 2 // trap cause
	SRIVec    = 3 // interrupt/trap vector base
	SRScratch = 4 // kernel scratch
	SRCycle   = 5 // cycle counter, low 32 bits (read-only)
	SRCycleH  = 6 // cycle counter, high 32 bits (read-only)
	NumSRegs  = 8
)

// STATUS register bits.
const (
	StatusIE  = 1 << 0
	StatusPIE = 1 << 1
)

// Trap causes (SRCause values).
const (
	CauseNone    = 0
	CauseECall   = 1
	CauseEBreak  = 2
	CauseIllegal = 3
	CauseAlign   = 4
	CauseBus     = 5  // bus error: access to an unmapped or rejecting address
	CauseIRQBase = 16 // cause for external IRQ n is CauseIRQBase+n
)

// NumIRQ is the number of external interrupt lines.
const NumIRQ = 8

// info captures the encoding of one opcode.
type info struct {
	name   string
	fmt    Format
	op     uint32 // primary opcode (6 bits)
	funct  uint32 // R-type funct / S-type selector
	hasImm bool
}

var opInfo = [numOpcodes]info{
	BAD: {name: "bad"},

	ADD:  {"add", FmtR, 0x00, 0, false},
	SUB:  {"sub", FmtR, 0x00, 1, false},
	AND:  {"and", FmtR, 0x00, 2, false},
	OR:   {"or", FmtR, 0x00, 3, false},
	XOR:  {"xor", FmtR, 0x00, 4, false},
	NOR:  {"nor", FmtR, 0x00, 5, false},
	SLL:  {"sll", FmtR, 0x00, 6, false},
	SRL:  {"srl", FmtR, 0x00, 7, false},
	SRA:  {"sra", FmtR, 0x00, 8, false},
	SLT:  {"slt", FmtR, 0x00, 9, false},
	SLTU: {"sltu", FmtR, 0x00, 10, false},
	MUL:  {"mul", FmtR, 0x00, 11, false},
	MULH: {"mulh", FmtR, 0x00, 12, false},
	DIV:  {"div", FmtR, 0x00, 13, false},
	DIVU: {"divu", FmtR, 0x00, 14, false},
	REM:  {"rem", FmtR, 0x00, 15, false},
	REMU: {"remu", FmtR, 0x00, 16, false},

	ADDI:  {"addi", FmtI, 0x01, 0, true},
	ANDI:  {"andi", FmtI, 0x02, 0, true},
	ORI:   {"ori", FmtI, 0x03, 0, true},
	XORI:  {"xori", FmtI, 0x04, 0, true},
	SLTI:  {"slti", FmtI, 0x05, 0, true},
	SLTIU: {"sltiu", FmtI, 0x06, 0, true},
	SLLI:  {"slli", FmtI, 0x07, 0, true},
	SRLI:  {"srli", FmtI, 0x08, 0, true},
	SRAI:  {"srai", FmtI, 0x09, 0, true},
	LUI:   {"lui", FmtI, 0x0a, 0, true},

	LW:  {"lw", FmtI, 0x10, 0, true},
	LH:  {"lh", FmtI, 0x11, 0, true},
	LHU: {"lhu", FmtI, 0x12, 0, true},
	LB:  {"lb", FmtI, 0x13, 0, true},
	LBU: {"lbu", FmtI, 0x14, 0, true},

	SW: {"sw", FmtI, 0x18, 0, true},
	SH: {"sh", FmtI, 0x19, 0, true},
	SB: {"sb", FmtI, 0x1a, 0, true},

	BEQ:  {"beq", FmtB, 0x20, 0, true},
	BNE:  {"bne", FmtB, 0x21, 0, true},
	BLT:  {"blt", FmtB, 0x22, 0, true},
	BGE:  {"bge", FmtB, 0x23, 0, true},
	BLTU: {"bltu", FmtB, 0x24, 0, true},
	BGEU: {"bgeu", FmtB, 0x25, 0, true},

	JAL:  {"jal", FmtJ, 0x28, 0, true},
	JALR: {"jalr", FmtI, 0x29, 0, true},

	ECALL:  {"ecall", FmtS, 0x30, 0, false},
	EBREAK: {"ebreak", FmtS, 0x30, 1, false},
	ERET:   {"eret", FmtS, 0x30, 2, false},
	WFI:    {"wfi", FmtS, 0x30, 3, false},
	HALT:   {"halt", FmtS, 0x30, 4, false},
	MFSR:   {"mfsr", FmtI, 0x31, 0, true},
	MTSR:   {"mtsr", FmtI, 0x32, 0, true},
}

// Name returns the assembler mnemonic.
func (o Opcode) Name() string {
	if o >= numOpcodes {
		return "bad"
	}
	return opInfo[o].name
}

// Format returns the operand encoding format.
func (o Opcode) Format() Format {
	if o >= numOpcodes {
		return FmtS
	}
	return opInfo[o].fmt
}

// Valid reports whether o is a defined opcode.
func (o Opcode) Valid() bool { return o > BAD && o < numOpcodes }

// String implements fmt.Stringer.
func (o Opcode) String() string { return o.Name() }

// OpcodeByName resolves an assembler mnemonic; BAD if unknown.
func OpcodeByName(name string) Opcode {
	return mnemonics[name]
}

var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, int(numOpcodes))
	for o := Opcode(1); o < numOpcodes; o++ {
		m[opInfo[o].name] = o
	}
	return m
}()

// Inst is a decoded instruction.
type Inst struct {
	Op  Opcode
	Rd  uint8 // destination (or store source, or branch ra)
	Rs1 uint8 // first source (or branch rb)
	Rs2 uint8 // second source (R-type only)
	Imm int32 // immediate / offset, sign-extended
}

// String renders the instruction in assembler syntax.
func (i Inst) String() string {
	switch i.Op.Format() {
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, RegName(i.Rd), RegName(i.Rs1), RegName(i.Rs2))
	case FmtI:
		switch i.Op {
		case LW, LH, LHU, LB, LBU, SW, SH, SB:
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, RegName(i.Rd), i.Imm, RegName(i.Rs1))
		case LUI:
			return fmt.Sprintf("%s %s, %d", i.Op, RegName(i.Rd), uint32(i.Imm)&0xffff)
		case JALR:
			return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rd), RegName(i.Rs1), i.Imm)
		case MFSR:
			return fmt.Sprintf("%s %s, %d", i.Op, RegName(i.Rd), i.Imm)
		case MTSR:
			return fmt.Sprintf("%s %d, %s", i.Op, i.Imm, RegName(i.Rs1))
		default:
			return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rd), RegName(i.Rs1), i.Imm)
		}
	case FmtB:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, RegName(i.Rd), RegName(i.Rs1), i.Imm)
	case FmtJ:
		return fmt.Sprintf("%s %s, %d", i.Op, RegName(i.Rd), i.Imm)
	default:
		return i.Op.Name()
	}
}
