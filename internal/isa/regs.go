package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Register ABI names. r0 is hardwired to zero; the remaining aliases
// follow a conventional embedded ABI used by the assembler and RTOS.
const (
	RegZero = 0  // always reads 0
	RegRA   = 1  // return address
	RegSP   = 2  // stack pointer
	RegGP   = 3  // global pointer
	RegS0   = 4  // saved s0..s5 = r4..r9
	RegA0   = 10 // arguments/returns a0..a5 = r10..r15
	RegT0   = 16 // temporaries t0..t11 = r16..r27
	RegK0   = 28 // kernel scratch k0, k1 = r28, r29
	RegFP   = 30 // frame pointer
	RegAT   = 31 // assembler temporary
)

var regNames = func() [NumRegs]string {
	var n [NumRegs]string
	n[0] = "zero"
	n[1] = "ra"
	n[2] = "sp"
	n[3] = "gp"
	for i := 0; i < 6; i++ {
		n[RegS0+i] = "s" + strconv.Itoa(i)
		n[RegA0+i] = "a" + strconv.Itoa(i)
	}
	for i := 0; i < 12; i++ {
		n[RegT0+i] = "t" + strconv.Itoa(i)
	}
	n[28] = "k0"
	n[29] = "k1"
	n[30] = "fp"
	n[31] = "at"
	return n
}()

// RegName returns the ABI name of register r ("zero", "sp", "a0", ...).
func RegName(r uint8) string {
	if int(r) < NumRegs {
		return regNames[r]
	}
	return fmt.Sprintf("r%d?", r)
}

// RegByName resolves a register by ABI name or by raw "rN" syntax.
func RegByName(name string) (uint8, bool) {
	name = strings.ToLower(name)
	for i, n := range regNames {
		if n == name {
			return uint8(i), true
		}
	}
	if strings.HasPrefix(name, "r") {
		if v, err := strconv.Atoi(name[1:]); err == nil && v >= 0 && v < NumRegs {
			return uint8(v), true
		}
	}
	return 0, false
}
