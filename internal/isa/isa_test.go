package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegNames(t *testing.T) {
	cases := map[uint8]string{
		0: "zero", 1: "ra", 2: "sp", 3: "gp", 4: "s0", 9: "s5",
		10: "a0", 15: "a5", 16: "t0", 27: "t11", 28: "k0", 30: "fp", 31: "at",
	}
	for r, want := range cases {
		if got := RegName(r); got != want {
			t.Errorf("RegName(%d) = %q, want %q", r, got, want)
		}
		if back, ok := RegByName(want); !ok || back != r {
			t.Errorf("RegByName(%q) = %d,%v want %d", want, back, ok, r)
		}
	}
	if r, ok := RegByName("r17"); !ok || r != 17 {
		t.Errorf("RegByName(r17) = %d,%v", r, ok)
	}
	if _, ok := RegByName("bogus"); ok {
		t.Error("RegByName(bogus) succeeded")
	}
	if _, ok := RegByName("r32"); ok {
		t.Error("RegByName(r32) succeeded")
	}
}

func TestOpcodeByName(t *testing.T) {
	for o := Opcode(1); o < numOpcodes; o++ {
		if got := OpcodeByName(o.Name()); got != o {
			t.Errorf("OpcodeByName(%q) = %v, want %v", o.Name(), got, o)
		}
	}
	if OpcodeByName("frobnicate") != BAD {
		t.Error("unknown mnemonic did not map to BAD")
	}
}

func TestEncodeDecodeAllOpcodes(t *testing.T) {
	for o := Opcode(1); o < numOpcodes; o++ {
		i := Inst{Op: o}
		switch o.Format() {
		case FmtR:
			i.Rd, i.Rs1, i.Rs2 = 1, 2, 3
		case FmtI:
			i.Rd, i.Rs1 = 4, 5
			switch o {
			case LUI, ANDI, ORI, XORI:
				i.Imm = 0xbeef
			case SLLI, SRLI, SRAI:
				i.Imm = 13
			case MFSR, MTSR:
				i.Imm = SREPC
			default:
				i.Imm = -42
			}
		case FmtB:
			i.Rd, i.Rs1, i.Imm = 6, 7, -100
		case FmtJ:
			i.Rd, i.Imm = 1, 12345
		}
		w, err := Encode(i)
		if err != nil {
			t.Fatalf("Encode(%v): %v", i, err)
		}
		back, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)): %v", i, err)
		}
		if back != i {
			t.Fatalf("round trip: %+v -> %#x -> %+v", i, w, back)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: ADDI, Imm: 40000},
		{Op: ADDI, Imm: -40000},
		{Op: LUI, Imm: -1},
		{Op: LUI, Imm: 0x10000},
		{Op: SLLI, Imm: 32},
		{Op: SRAI, Imm: -1},
		{Op: MFSR, Imm: NumSRegs},
		{Op: JAL, Imm: 1 << 21},
		{Op: BEQ, Imm: 1 << 16},
		{Op: BAD},
	}
	for _, i := range bad {
		if _, err := Encode(i); err == nil {
			t.Errorf("Encode(%+v) succeeded, want range error", i)
		}
	}
}

func TestDecodeIllegal(t *testing.T) {
	illegal := []uint32{
		0x00000000 | 999,       // R-type with undefined funct
		uint32(0x3f) << 26,     // undefined primary opcode
		uint32(0x30)<<26 | 500, // undefined system funct
	}
	for _, w := range illegal {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(%#08x) succeeded, want error", w)
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		o := Opcode(1 + rng.Intn(int(numOpcodes)-1))
		i := Inst{Op: o}
		switch o.Format() {
		case FmtR:
			i.Rd, i.Rs1, i.Rs2 = uint8(rng.Intn(32)), uint8(rng.Intn(32)), uint8(rng.Intn(32))
		case FmtI:
			i.Rd, i.Rs1 = uint8(rng.Intn(32)), uint8(rng.Intn(32))
			switch o {
			case LUI, ANDI, ORI, XORI:
				i.Imm = int32(rng.Intn(0x10000))
			case SLLI, SRLI, SRAI:
				i.Imm = int32(rng.Intn(32))
			case MFSR, MTSR:
				i.Imm = int32(rng.Intn(NumSRegs))
			default:
				i.Imm = int32(rng.Intn(0x10000)) - 0x8000
			}
		case FmtB:
			i.Rd, i.Rs1 = uint8(rng.Intn(32)), uint8(rng.Intn(32))
			i.Imm = int32(rng.Intn(0x10000)) - 0x8000
		case FmtJ:
			i.Rd = uint8(rng.Intn(32))
			i.Imm = int32(rng.Intn(1<<21)) - 1<<20
		}
		w, err := Encode(i)
		if err != nil {
			return false
		}
		back, err := Decode(w)
		return err == nil && back == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDisassemble(t *testing.T) {
	cases := []struct {
		i    Inst
		want string
	}{
		{Inst{Op: ADD, Rd: 10, Rs1: 11, Rs2: 12}, "add a0, a1, a2"},
		{Inst{Op: ADDI, Rd: 2, Rs1: 2, Imm: -16}, "addi sp, sp, -16"},
		{Inst{Op: LW, Rd: 10, Rs1: 2, Imm: 8}, "lw a0, 8(sp)"},
		{Inst{Op: SW, Rd: 1, Rs1: 2, Imm: 0}, "sw ra, 0(sp)"},
		{Inst{Op: BEQ, Rd: 10, Rs1: 0, Imm: -2}, "beq a0, zero, -2"},
		{Inst{Op: JAL, Rd: 1, Imm: 100}, "jal ra, 100"},
		{Inst{Op: LUI, Rd: 10, Imm: 0x1234}, "lui a0, 4660"},
		{Inst{Op: ECALL}, "ecall"},
		{Inst{Op: MFSR, Rd: 10, Imm: 2}, "mfsr a0, 2"},
		{Inst{Op: MTSR, Rs1: 10, Imm: 3}, "mtsr 3, a0"},
	}
	for _, c := range cases {
		w := EncodeMust(c.i)
		if got := Disassemble(w); got != c.want {
			t.Errorf("Disassemble(%v) = %q, want %q", c.i, got, c.want)
		}
	}
	if got := Disassemble(uint32(0x3f) << 26); !strings.HasPrefix(got, ".word") {
		t.Errorf("illegal word disassembled as %q", got)
	}
}

func TestBreakpointAndNopWords(t *testing.T) {
	i, err := Decode(BreakpointWord)
	if err != nil || i.Op != EBREAK {
		t.Fatalf("BreakpointWord decodes to %v, %v", i, err)
	}
	n, err := Decode(NopWord)
	if err != nil || n.Op != ADDI || n.Rd != 0 || n.Imm != 0 {
		t.Fatalf("NopWord decodes to %v, %v", n, err)
	}
}

func TestSignExtend(t *testing.T) {
	if got := signExtend(0xffff, 16); got != -1 {
		t.Errorf("signExtend(0xffff,16) = %d", got)
	}
	if got := signExtend(0x7fff, 16); got != 32767 {
		t.Errorf("signExtend(0x7fff,16) = %d", got)
	}
	if got := signExtend(0x100000, 21); got != -1048576 {
		t.Errorf("signExtend(min21) = %d", got)
	}
}
