package isa

import "fmt"

// Field extraction helpers.
func bits(w uint32, hi, lo uint) uint32 { return (w >> lo) & (1<<(hi-lo+1) - 1) }

// signExtend sign-extends the low n bits of v.
func signExtend(v uint32, n uint) int32 {
	shift := 32 - n
	return int32(v<<shift) >> shift
}

// immFits reports whether imm is representable in n signed bits.
func immFits(imm int32, n uint) bool {
	min := int32(-1) << (n - 1)
	max := int32(1)<<(n-1) - 1
	return imm >= min && imm <= max
}

// Encode packs a decoded instruction into its 32-bit machine form.
func Encode(i Inst) (uint32, error) {
	if !i.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", i.Op)
	}
	inf := opInfo[i.Op]
	if i.Rd >= NumRegs || i.Rs1 >= NumRegs || i.Rs2 >= NumRegs {
		return 0, fmt.Errorf("isa: %s: register out of range", inf.name)
	}
	w := inf.op << 26
	switch inf.fmt {
	case FmtR:
		w |= uint32(i.Rd)<<21 | uint32(i.Rs1)<<16 | uint32(i.Rs2)<<11 | inf.funct
	case FmtI:
		var imm uint32
		switch i.Op {
		case LUI:
			// LUI takes an unsigned 16-bit upper immediate.
			if i.Imm < 0 || i.Imm > 0xffff {
				return 0, fmt.Errorf("isa: lui: immediate %d out of range [0,65535]", i.Imm)
			}
			imm = uint32(i.Imm)
		case SLLI, SRLI, SRAI:
			if i.Imm < 0 || i.Imm > 31 {
				return 0, fmt.Errorf("isa: %s: shift amount %d out of range [0,31]", inf.name, i.Imm)
			}
			imm = uint32(i.Imm)
		case MFSR, MTSR:
			if i.Imm < 0 || i.Imm >= NumSRegs {
				return 0, fmt.Errorf("isa: %s: special register %d out of range", inf.name, i.Imm)
			}
			imm = uint32(i.Imm)
		case ANDI, ORI, XORI:
			// Logical immediates are zero-extended (MIPS-style), so that
			// lui+ori composes arbitrary 32-bit constants.
			if i.Imm < 0 || i.Imm > 0xffff {
				return 0, fmt.Errorf("isa: %s: immediate %d out of range [0,65535]", inf.name, i.Imm)
			}
			imm = uint32(i.Imm)
		default:
			if !immFits(i.Imm, 16) {
				return 0, fmt.Errorf("isa: %s: immediate %d out of 16-bit range", inf.name, i.Imm)
			}
			imm = uint32(i.Imm) & 0xffff
		}
		w |= uint32(i.Rd)<<21 | uint32(i.Rs1)<<16 | imm
	case FmtB:
		if !immFits(i.Imm, 16) {
			return 0, fmt.Errorf("isa: %s: branch offset %d out of 16-bit range", inf.name, i.Imm)
		}
		w |= uint32(i.Rd)<<21 | uint32(i.Rs1)<<16 | uint32(i.Imm)&0xffff
	case FmtJ:
		if !immFits(i.Imm, 21) {
			return 0, fmt.Errorf("isa: jal: offset %d out of 21-bit range", i.Imm)
		}
		w |= uint32(i.Rd)<<21 | uint32(i.Imm)&0x1fffff
	case FmtS:
		w |= inf.funct
	}
	return w, nil
}

// rTypeByFunct maps funct values back to R-type opcodes.
var rTypeByFunct = func() map[uint32]Opcode {
	m := make(map[uint32]Opcode)
	for o := Opcode(1); o < numOpcodes; o++ {
		if opInfo[o].fmt == FmtR {
			m[opInfo[o].funct] = o
		}
	}
	return m
}()

// sTypeByFunct maps system selector values back to opcodes.
var sTypeByFunct = func() map[uint32]Opcode {
	m := make(map[uint32]Opcode)
	for o := Opcode(1); o < numOpcodes; o++ {
		if opInfo[o].fmt == FmtS {
			m[opInfo[o].funct] = o
		}
	}
	return m
}()

// primaryOp maps primary opcode values to non-R non-S opcodes.
var primaryOp = func() map[uint32]Opcode {
	m := make(map[uint32]Opcode)
	for o := Opcode(1); o < numOpcodes; o++ {
		switch opInfo[o].fmt {
		case FmtR, FmtS:
		default:
			m[opInfo[o].op] = o
		}
	}
	return m
}()

// Decode unpacks a 32-bit machine word. It returns an error for encodings
// that do not correspond to any defined instruction.
func Decode(w uint32) (Inst, error) {
	op := bits(w, 31, 26)
	var i Inst
	switch op {
	case 0x00: // R-type
		funct := bits(w, 10, 0)
		o, ok := rTypeByFunct[funct]
		if !ok {
			return Inst{}, fmt.Errorf("isa: illegal R-type funct %#x", funct)
		}
		i = Inst{Op: o, Rd: uint8(bits(w, 25, 21)), Rs1: uint8(bits(w, 20, 16)), Rs2: uint8(bits(w, 15, 11))}
	case 0x30: // system
		funct := bits(w, 10, 0)
		o, ok := sTypeByFunct[funct]
		if !ok {
			return Inst{}, fmt.Errorf("isa: illegal system funct %#x", funct)
		}
		i = Inst{Op: o}
	default:
		o, ok := primaryOp[op]
		if !ok {
			return Inst{}, fmt.Errorf("isa: illegal opcode %#x", op)
		}
		i = Inst{Op: o, Rd: uint8(bits(w, 25, 21))}
		switch opInfo[o].fmt {
		case FmtI, FmtB:
			i.Rs1 = uint8(bits(w, 20, 16))
			raw := bits(w, 15, 0)
			switch o {
			case LUI, SLLI, SRLI, SRAI, MFSR, MTSR, ANDI, ORI, XORI:
				i.Imm = int32(raw)
			default:
				i.Imm = signExtend(raw, 16)
			}
		case FmtJ:
			i.Imm = signExtend(bits(w, 20, 0), 21)
		}
	}
	return i, nil
}

// Disassemble decodes and formats a machine word; illegal encodings
// render as ".word 0x...".
func Disassemble(w uint32) string {
	i, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word %#08x", w)
	}
	return i.String()
}

// EncodeMust encodes and panics on error; for use in tests and
// generated-code builders where the instruction is known valid.
func EncodeMust(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// BreakpointWord is the machine encoding of EBREAK, planted by the GDB
// stub to implement software breakpoints.
var BreakpointWord = EncodeMust(Inst{Op: EBREAK})

// NopWord is the canonical no-op encoding (addi zero, zero, 0).
var NopWord = EncodeMust(Inst{Op: ADDI})
