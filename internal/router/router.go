package router

import (
	"cosim/internal/sim"
)

// NumPorts is the router radix (4x4, as in the paper).
const NumPorts = 4

// BroadcastDst is the multicast destination address: the router copies
// the packet to every output port, as in the SystemC "Multicast Helix
// Packet Switch" example the case study extends.
const BroadcastDst = 0xff

// Config parameterizes the router model.
type Config struct {
	// FifoDepth is the capacity of each input and output queue.
	FifoDepth int
	// Table maps destination address -> output port. Destinations not
	// present route to dst % NumPorts.
	Table map[uint8]int
}

// Stats are the router's forwarding counters.
type Stats struct {
	Dequeued  uint64 // packets taken from input queues
	Forwarded uint64 // packets passed to at least one output queue
	Corrupted uint64 // packets dropped on checksum mismatch
	OutDrops  uint64 // copies lost to a full output queue
	Copies    uint64 // output-queue entries created (multicast counts each copy)
}

// Engine is one checksum service path: the iss ports of one CPU (plus
// its Driver-Kernel doorbell, nil for the GDB schemes). A router with
// several engines — a multi-processor SoC — services packets on all of
// them concurrently.
type Engine struct {
	Pkt      *sim.IssOut
	Csum     *sim.IssIn
	Doorbell func()
}

// Router is the SystemC hardware model of the case study. The checksum
// of each packet is computed in software on an ISS: a forwarding
// process writes the packet blob to the engine's iss_out port, rings
// the doorbell (Driver-Kernel only), and waits for the result on its
// iss_in port.
type Router struct {
	sim.Module
	cfg Config

	In  [NumPorts]*sim.Fifo[*Packet]
	Out [NumPorts]*sim.Fifo[*Packet]

	engines []Engine

	stats Stats
	rr    int // round-robin input scan position
}

// New builds the router with one forwarding process per engine.
func New(k *sim.Kernel, name string, cfg Config, engines []Engine) *Router {
	if cfg.FifoDepth <= 0 {
		cfg.FifoDepth = 8
	}
	if len(engines) == 0 {
		panic("router: at least one checksum engine is required")
	}
	r := &Router{
		Module:  k.NewModule(name),
		cfg:     cfg,
		engines: engines,
	}
	for i := range r.In {
		r.In[i] = sim.NewFifo[*Packet](k, r.Sub("in")+itoa(i), cfg.FifoDepth)
		r.Out[i] = sim.NewFifo[*Packet](k, r.Sub("out")+itoa(i), cfg.FifoDepth)
	}
	for i := range engines {
		eng := engines[i]
		k.Thread(r.Sub("forward")+itoa(i), func(c *sim.Ctx) { r.forward(c, eng) })
	}
	return r
}

// Stats returns the forwarding counters.
func (r *Router) Stats() Stats { return r.stats }

// Route returns the output port for a destination address (unicast).
func (r *Router) Route(dst uint8) int {
	if p, ok := r.cfg.Table[dst]; ok && p >= 0 && p < NumPorts {
		return p
	}
	return int(dst) % NumPorts
}

// RouteOK reports whether a packet for dst may legitimately appear on
// output port out (any port is legitimate for the broadcast address).
func (r *Router) RouteOK(dst uint8, out int) bool {
	return dst == BroadcastDst || r.Route(dst) == out
}

// nextPacket scans the input queues round-robin.
func (r *Router) nextPacket() *Packet {
	for i := 0; i < NumPorts; i++ {
		idx := (r.rr + i) % NumPorts
		if pkt, ok := r.In[idx].TryRead(); ok {
			r.rr = (idx + 1) % NumPorts
			return pkt
		}
	}
	return nil
}

// forward is one forwarding process: dequeue, verify the checksum in
// software on the engine's CPU, forward by table lookup.
func (r *Router) forward(c *sim.Ctx, eng Engine) {
	waitEvents := make([]*sim.Event, NumPorts)
	for i := range waitEvents {
		waitEvents[i] = r.In[i].DataWritten()
	}
	for {
		pkt := r.nextPacket()
		if pkt == nil {
			c.Wait(waitEvents...)
			continue
		}
		r.stats.Dequeued++

		// Offload checksum verification to the CPU.
		eng.Pkt.Write(pkt.Blob())
		if eng.Doorbell != nil {
			eng.Doorbell()
		}
		c.Wait(eng.Csum.Event())
		csum := uint16(eng.Csum.Uint32())

		if csum != pkt.Checksum {
			r.stats.Corrupted++
			continue
		}
		if pkt.Dst == BroadcastDst {
			delivered := false
			for i := range r.Out {
				if r.Out[i].TryWrite(pkt) {
					r.stats.Copies++
					delivered = true
				} else {
					r.stats.OutDrops++
				}
			}
			if delivered {
				r.stats.Forwarded++
			}
			continue
		}
		if r.Out[r.Route(pkt.Dst)].TryWrite(pkt) {
			r.stats.Forwarded++
			r.stats.Copies++
		} else {
			r.stats.OutDrops++
		}
	}
}

func itoa(i int) string { return string(rune('0' + i)) }
