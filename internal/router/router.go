package router

import (
	"cosim/internal/sim"
)

// NumPorts is the router radix (4x4, as in the paper).
const NumPorts = 4

// BroadcastDst is the multicast destination address: the router copies
// the packet to every output port, as in the SystemC "Multicast Helix
// Packet Switch" example the case study extends.
const BroadcastDst = 0xff

// Config parameterizes the router model.
type Config struct {
	// FifoDepth is the capacity of each input and output queue.
	FifoDepth int
	// Table maps destination address -> output port. Destinations not
	// present route to dst % NumPorts.
	Table map[uint8]int
}

// Stats are the router's forwarding counters.
type Stats struct {
	Dequeued  uint64 // packets taken from input queues
	Forwarded uint64 // packets passed to at least one output queue
	Corrupted uint64 // packets dropped on checksum mismatch
	OutDrops  uint64 // copies lost to a full output queue
	Copies    uint64 // output-queue entries created (multicast counts each copy)
}

// Engine is one checksum service path: the iss ports of one CPU (plus
// its Driver-Kernel doorbell, nil for the GDB schemes). A router with
// several engines — a multi-processor SoC — services packets on all of
// them concurrently.
type Engine struct {
	Pkt      *sim.IssOut
	Csum     *sim.IssIn
	Doorbell func()
}

// Router is the SystemC hardware model of the case study. The checksum
// of each packet is computed in software on an ISS: a forwarding
// process writes the packet blob to the engine's iss_out port, rings
// the doorbell (Driver-Kernel only), and collects the result from its
// iss_in port.
//
// Forwarding is method-style (SC_METHOD) rather than thread-style so
// the engines form disjoint sensitivity clusters and sharded rounds
// (sim/cluster.go) can evaluate them on parallel workers: engine j is
// statically sensitive only to its input-port partition (ports i with
// i % engines == j) and its own csum port, and it stages verified
// packets into a private queue. A single serial-only merger process
// drains the staging queues in fixed engine order and performs the
// table routing into the shared output FIFOs, so output ordering and
// the shared counters stay deterministic regardless of worker
// scheduling.
type Router struct {
	sim.Module
	cfg Config

	In  [NumPorts]*sim.Fifo[*Packet]
	Out [NumPorts]*sim.Fifo[*Packet]

	engines []Engine
	fwd     []*fwdEngine

	merged Stats // merger-owned counters (Forwarded, Copies, OutDrops)
}

// fwdEngine is the per-engine forwarding state machine: the input
// partition it services, the packet awaiting its checksum, and the
// engine-owned counters. Everything it touches during an activation —
// its input FIFOs, its iss ports, its staging queue — belongs to its
// own sensitivity cluster, which is what makes the process shardable.
type fwdEngine struct {
	r       *Router
	eng     Engine
	ins     []int // input port indices this engine services
	rr      int   // round-robin position within ins
	staging *sim.Fifo[*Packet]

	pending  *Packet // offloaded packet awaiting its checksum
	csumSeen uint64  // csum deliveries already consumed

	dequeued   uint64
	corrupted  uint64
	stageDrops uint64 // verified packets lost to a full staging queue
}

// New builds the router with one forwarding process per engine plus the
// serial-only merger.
func New(k *sim.Kernel, name string, cfg Config, engines []Engine) *Router {
	if cfg.FifoDepth <= 0 {
		cfg.FifoDepth = 8
	}
	if len(engines) == 0 {
		panic("router: at least one checksum engine is required")
	}
	r := &Router{
		Module:  k.NewModule(name),
		cfg:     cfg,
		engines: engines,
	}
	for i := range r.In {
		r.In[i] = sim.NewFifo[*Packet](k, r.Sub("in")+itoa(i), cfg.FifoDepth)
		r.Out[i] = sim.NewFifo[*Packet](k, r.Sub("out")+itoa(i), cfg.FifoDepth)
	}
	stagingEvents := make([]*sim.Event, 0, len(engines))
	for j := range engines {
		f := &fwdEngine{
			r:       r,
			eng:     engines[j],
			staging: sim.NewFifo[*Packet](k, r.Sub("stage")+itoa(j), cfg.FifoDepth),
		}
		sens := []*sim.Event{f.eng.Csum.Event()}
		for i := 0; i < NumPorts; i++ {
			if i%len(engines) == j {
				f.ins = append(f.ins, i)
				sens = append(sens, r.In[i].DataWritten())
			}
		}
		k.Method(r.Sub("forward")+itoa(j), f.step, sens...)
		stagingEvents = append(stagingEvents, f.staging.DataWritten())
		r.fwd = append(r.fwd, f)
	}
	// The merger reads every engine's staging queue and writes the
	// shared outputs, so it must never co-run with the engines inside a
	// sharded round.
	k.MethodNoInit(r.Sub("merge"), r.merge, stagingEvents...).MarkSerialOnly()
	return r
}

// Stats returns the forwarding counters, summed over the merger and the
// per-engine state.
func (r *Router) Stats() Stats {
	st := r.merged
	for _, f := range r.fwd {
		st.Dequeued += f.dequeued
		st.Corrupted += f.corrupted
		st.OutDrops += f.stageDrops
	}
	return st
}

// Route returns the output port for a destination address (unicast).
func (r *Router) Route(dst uint8) int {
	if p, ok := r.cfg.Table[dst]; ok && p >= 0 && p < NumPorts {
		return p
	}
	return int(dst) % NumPorts
}

// RouteOK reports whether a packet for dst may legitimately appear on
// output port out (any port is legitimate for the broadcast address).
func (r *Router) RouteOK(dst uint8, out int) bool {
	return dst == BroadcastDst || r.Route(dst) == out
}

// nextPacket scans the engine's input partition round-robin.
func (f *fwdEngine) nextPacket() *Packet {
	for i := 0; i < len(f.ins); i++ {
		slot := (f.rr + i) % len(f.ins)
		if pkt, ok := f.r.In[f.ins[slot]].TryRead(); ok {
			f.rr = (slot + 1) % len(f.ins)
			return pkt
		}
	}
	return nil
}

// step is one forwarding activation: collect a finished checksum if one
// is in, then dequeue and offload the next packet. At most one packet
// is outstanding per engine, exactly like the thread-style predecessor,
// but the blocking Wait is replaced by the delivery counter so the
// method runs to completion every activation.
func (f *fwdEngine) step() {
	for {
		if f.pending != nil {
			if f.eng.Csum.Deliveries() <= f.csumSeen {
				return // result not in yet; woken by an input we can't service
			}
			f.csumSeen = f.eng.Csum.Deliveries()
			pkt := f.pending
			f.pending = nil
			if uint16(f.eng.Csum.Uint32()) != pkt.Checksum {
				f.corrupted++
				continue
			}
			if !f.staging.TryWrite(pkt) {
				f.stageDrops++
			}
			continue
		}
		pkt := f.nextPacket()
		if pkt == nil {
			return
		}
		f.dequeued++
		f.pending = pkt

		// Offload checksum verification to the CPU.
		f.eng.Pkt.Write(pkt.Blob())
		if f.eng.Doorbell != nil {
			f.eng.Doorbell()
		}
		return
	}
}

// merge drains the staging queues in fixed engine order and routes each
// verified packet to the output FIFOs. It runs serially by
// construction (MarkSerialOnly), so the shared outputs and counters see
// one writer.
func (r *Router) merge() {
	for _, f := range r.fwd {
		for {
			pkt, ok := f.staging.TryRead()
			if !ok {
				break
			}
			r.deliver(pkt)
		}
	}
}

// deliver performs the table routing of one verified packet.
func (r *Router) deliver(pkt *Packet) {
	if pkt.Dst == BroadcastDst {
		delivered := false
		for i := range r.Out {
			if r.Out[i].TryWrite(pkt) {
				r.merged.Copies++
				delivered = true
			} else {
				r.merged.OutDrops++
			}
		}
		if delivered {
			r.merged.Forwarded++
		}
		return
	}
	if r.Out[r.Route(pkt.Dst)].TryWrite(pkt) {
		r.merged.Forwarded++
		r.merged.Copies++
	} else {
		r.merged.OutDrops++
	}
}

func itoa(i int) string { return string(rune('0' + i)) }
