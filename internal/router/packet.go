// Package router implements the paper's case study (§5): a 4-input,
// 4-output packet router derived from the SystemC "Multicast Helix
// Packet Switch" example. Incoming packets are buffered in FIFO queues;
// a static routing table selects the output port; before forwarding,
// the packet checksum is verified by a C-equivalent application running
// on the ISS, reached through any of the co-simulation schemes in
// internal/core.
package router

import (
	"encoding/binary"
	"fmt"

	"cosim/internal/sim"
)

// MaxPayloadWords bounds the packet data field; the guest applications
// reserve a receive buffer of the matching size (see guest sources).
const MaxPayloadWords = 60

// HeaderBytes is the size of the checksummed packet header.
const HeaderBytes = 8

// MaxBlobBytes is the largest serialized packet blob (length word +
// header + payload).
const MaxBlobBytes = 4 + HeaderBytes + 4*MaxPayloadWords

// Packet is the router's unit of traffic (§5: source address,
// destination address, packet identifier, data field, checksum).
type Packet struct {
	Src      uint8
	Dst      uint8
	ID       uint32
	Payload  []uint32
	Checksum uint16

	Born sim.Time // creation time, for latency accounting
}

// Region returns the checksummed byte region: header (src, dst, pad,
// id) followed by the payload words, all little-endian.
func (p *Packet) Region() []byte {
	out := make([]byte, HeaderBytes+4*len(p.Payload))
	out[0] = p.Src
	out[1] = p.Dst
	binary.LittleEndian.PutUint32(out[4:8], p.ID)
	for i, w := range p.Payload {
		binary.LittleEndian.PutUint32(out[HeaderBytes+4*i:], w)
	}
	return out
}

// Blob serializes the packet for the guest checksum application: a
// 32-bit region length followed by the region itself.
func (p *Packet) Blob() []byte {
	region := p.Region()
	out := make([]byte, 4+len(region))
	binary.LittleEndian.PutUint32(out, uint32(len(region)))
	copy(out[4:], region)
	return out
}

// Seal computes and stores the correct checksum.
func (p *Packet) Seal() {
	p.Checksum = Checksum16(p.Region())
}

// Valid reports whether the stored checksum matches the content.
func (p *Packet) Valid() bool {
	return p.Checksum == Checksum16(p.Region())
}

// String implements fmt.Stringer.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{id=%d %d->%d len=%d csum=%#04x}", p.ID, p.Src, p.Dst, len(p.Payload), p.Checksum)
}

// Checksum16 computes the 16-bit ones'-complement (Internet-style)
// checksum over b, summing little-endian halfwords. It matches the
// csum16 routine in the guest assembly exactly.
func Checksum16(b []byte) uint16 {
	var sum uint32
	i := 0
	for ; i+1 < len(b); i += 2 {
		sum += uint32(b[i]) | uint32(b[i+1])<<8
	}
	if i < len(b) {
		sum += uint32(b[i])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
