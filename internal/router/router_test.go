package router

import (
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"

	"cosim/internal/asm"
	"cosim/internal/iss"
	"cosim/internal/sim"
)

func TestChecksum16KnownValues(t *testing.T) {
	cases := []struct {
		in   []byte
		want uint16
	}{
		{nil, 0xffff},
		{[]byte{0x01, 0x00}, 0xfffe},
		{[]byte{0xff, 0xff}, 0x0000},
		{[]byte{0x01, 0x02, 0x03, 0x04}, ^uint16(0x0201 + 0x0403)},
		{[]byte{0x01}, 0xfffe}, // odd tail
	}
	for _, c := range cases {
		if got := Checksum16(c.in); got != c.want {
			t.Errorf("Checksum16(% x) = %#04x, want %#04x", c.in, got, c.want)
		}
	}
}

func TestChecksumDetectsBitFlips(t *testing.T) {
	f := func(data []byte, idx int, bit uint8) bool {
		if len(data) == 0 {
			return true
		}
		i := idx % len(data)
		if i < 0 {
			i = -i
		}
		orig := Checksum16(data)
		data[i] ^= 1 << (bit % 8)
		changed := Checksum16(data)
		// Ones'-complement sums detect any single bit flip.
		return orig != changed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestChecksumAsmEquivalence runs the guest csum16 routine on the ISS
// against random buffers and checks it matches the Go reference — the
// core correctness property the whole case study rests on.
func TestChecksumAsmEquivalence(t *testing.T) {
	harnessSrc := `
_start:
    la   a0, buf
    la   t0, buflen
    lw   a1, 0(t0)
    call csum16
    la   t0, result
    sw   a0, 0(t0)
    halt
.data
.align 4
buflen: .word 0
result: .word 0
buf:    .space 512
`
	im, err := asm.Assemble(asm.Options{DataBase: 0x10000},
		asm.Source{Name: "harness.s", Text: harnessSrc},
		asm.Source{Name: "csum.s", Text: csumSrc})
	if err != nil {
		t.Fatal(err)
	}
	bufAddr := im.MustSymbol("buf")
	lenAddr := im.MustSymbol("buflen")
	resAddr := im.MustSymbol("result")

	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(256)
		if n%2 == 1 {
			n++ // the guest buffer is halfword-aligned; keep even+odd mix below
		}
		if trial%3 == 0 {
			n++ // exercise the odd-tail path too
		}
		data := make([]byte, n)
		rng.Read(data)

		ram := iss.NewRAM(1 << 20)
		if err := im.LoadInto(ram); err != nil {
			t.Fatal(err)
		}
		if err := ram.LoadBytes(bufAddr, data); err != nil {
			t.Fatal(err)
		}
		if err := ram.Write(lenAddr, 4, uint32(n)); err != nil {
			t.Fatal(err)
		}
		cpu := iss.New(iss.NewSystemBus(ram))
		cpu.Reset(im.Entry)
		stop, _ := cpu.Run(100_000)
		if stop != iss.StopHalt {
			t.Fatalf("trial %d: guest stopped with %v", trial, stop)
		}
		got, _ := ram.Read(resAddr, 4)
		want := uint32(Checksum16(data))
		if got != want {
			t.Fatalf("trial %d (len %d): asm=%#x go=%#x", trial, n, got, want)
		}
	}
}

func TestPacketBlobLayout(t *testing.T) {
	p := &Packet{Src: 3, Dst: 1, ID: 0x11223344, Payload: []uint32{0xAABBCCDD}}
	p.Seal()
	blob := p.Blob()
	if got := binary.LittleEndian.Uint32(blob[0:4]); got != uint32(HeaderBytes+4) {
		t.Fatalf("region length = %d", got)
	}
	if blob[4] != 3 || blob[5] != 1 {
		t.Fatalf("src/dst = %d/%d", blob[4], blob[5])
	}
	if got := binary.LittleEndian.Uint32(blob[8:12]); got != 0x11223344 {
		t.Fatalf("id = %#x", got)
	}
	if got := binary.LittleEndian.Uint32(blob[12:16]); got != 0xAABBCCDD {
		t.Fatalf("payload = %#x", got)
	}
	if len(blob) > MaxBlobBytes {
		t.Fatalf("blob %d bytes exceeds MaxBlobBytes", len(blob))
	}
}

func TestSealAndValid(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, ID: 7, Payload: []uint32{1, 2, 3}}
	p.Seal()
	if !p.Valid() {
		t.Fatal("sealed packet not valid")
	}
	p.Checksum ^= 1
	if p.Valid() {
		t.Fatal("corrupted packet still valid")
	}
}

// fakeCPU services the router's pkt/csum ports inside the simulation,
// so the router model can be tested without an ISS: an iss_process
// computes the checksum whenever a packet blob is consumed.
func fakeCPU(k *sim.Kernel, corrupt bool) (*sim.IssOut, *sim.IssIn) {
	pkt := k.NewIssOut(PktPortName)
	csum := k.NewIssIn(CsumPortName)
	poll := k.NewEvent("fakecpu.poll")
	served := uint64(0)
	// The poller reads the forwarding engine's ports from its own
	// cluster, so it must never co-run with the engine in a sharded
	// round.
	proc := k.MethodNoInit("fakecpu", func() {
		if pkt.Writes() > served {
			served = pkt.Writes()
			blob := pkt.Bytes()
			n := binary.LittleEndian.Uint32(blob[0:4])
			sum := Checksum16(blob[4 : 4+n])
			if corrupt {
				sum ^= 0xff
			}
			pkt.Consumed()
			// Answer one delta later, like a real (fast) CPU.
			out := make([]byte, 4)
			binary.LittleEndian.PutUint32(out, uint32(sum))
			k.CallAfter(100*sim.NS, func() { csum.Deliver(out) })
		}
		poll.NotifyAfter(50 * sim.NS)
	}, poll)
	proc.MarkSerialOnly()
	poll.NotifyAfter(50 * sim.NS)
	return pkt, csum
}

func TestRouterForwardsByTable(t *testing.T) {
	k := sim.NewKernel("t")
	pkt, csum := fakeCPU(k, false)
	r := New(k, "rt", Config{FifoDepth: 8, Table: map[uint8]int{9: 2}}, []Engine{{Pkt: pkt, Csum: csum}})

	sent := []*Packet{
		{Src: 0, Dst: 0, ID: 1, Payload: []uint32{1}},
		{Src: 0, Dst: 9, ID: 2, Payload: []uint32{2}}, // via table -> port 2
		{Src: 1, Dst: 3, ID: 3, Payload: []uint32{3}},
	}
	for _, p := range sent {
		p.Seal()
	}
	k.Thread("feeder", func(c *sim.Ctx) {
		for _, p := range sent {
			r.In[p.Src].TryWrite(p)
			c.WaitTime(sim.US)
		}
		c.WaitTime(10 * sim.US)
		k.Stop()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()

	if r.Stats().Forwarded != 3 {
		t.Fatalf("forwarded = %d", r.Stats().Forwarded)
	}
	if got, _ := r.Out[0].TryRead(); got == nil || got.ID != 1 {
		t.Fatalf("out0 = %v", got)
	}
	if got, _ := r.Out[2].TryRead(); got == nil || got.ID != 2 {
		t.Fatalf("out2 = %v (table route)", got)
	}
	if got, _ := r.Out[3].TryRead(); got == nil || got.ID != 3 {
		t.Fatalf("out3 = %v", got)
	}
}

func TestRouterDropsCorrupted(t *testing.T) {
	k := sim.NewKernel("t")
	pkt, csum := fakeCPU(k, true) // CPU reports wrong checksums
	r := New(k, "rt", Config{FifoDepth: 8}, []Engine{{Pkt: pkt, Csum: csum}})
	p := &Packet{Src: 0, Dst: 1, ID: 1, Payload: []uint32{5}}
	p.Seal()
	k.Thread("feeder", func(c *sim.Ctx) {
		r.In[0].TryWrite(p)
		c.WaitTime(10 * sim.US)
		k.Stop()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if r.Stats().Corrupted != 1 || r.Stats().Forwarded != 0 {
		t.Fatalf("stats = %+v", r.Stats())
	}
}

func TestProducerConservation(t *testing.T) {
	k := sim.NewKernel("t")
	in := sim.NewFifo[*Packet](k, "in", 4)
	ids := &IDSource{}
	p := NewProducer(k, "prod", 0, in, ids, ProducerConfig{
		Delay: sim.US, Count: 20, Seed: 5,
	})
	// No consumer: the queue fills and drops accumulate.
	k.Thread("stopper", func(c *sim.Ctx) {
		c.WaitTime(100 * sim.US)
		k.Stop()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if p.Generated != 20 {
		t.Fatalf("generated = %d", p.Generated)
	}
	if p.Offered+p.InDrops != p.Generated {
		t.Fatalf("conservation: offered %d + drops %d != generated %d", p.Offered, p.InDrops, p.Generated)
	}
	if p.Offered != 4 {
		t.Fatalf("offered = %d, want fifo depth 4", p.Offered)
	}
	if !p.Done() {
		t.Fatal("bounded producer not done")
	}
}

func TestProducerSealsValidPackets(t *testing.T) {
	k := sim.NewKernel("t")
	in := sim.NewFifo[*Packet](k, "in", 64)
	ids := &IDSource{}
	NewProducer(k, "prod", 2, in, ids, ProducerConfig{Delay: sim.US, Count: 10, Seed: 1})
	k.Thread("stopper", func(c *sim.Ctx) { c.WaitTime(50 * sim.US); k.Stop() })
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	seen := map[uint32]bool{}
	for {
		p, ok := in.TryRead()
		if !ok {
			break
		}
		if !p.Valid() {
			t.Fatalf("producer emitted invalid packet %v", p)
		}
		if p.Src != 2 {
			t.Fatalf("src = %d", p.Src)
		}
		if seen[p.ID] {
			t.Fatalf("duplicate id %d", p.ID)
		}
		seen[p.ID] = true
	}
	if len(seen) != 10 {
		t.Fatalf("got %d packets", len(seen))
	}
}

func TestConsumerVerifies(t *testing.T) {
	k := sim.NewKernel("t")
	q := sim.NewFifo[*Packet](k, "out", 8)
	routeOK := func(dst uint8, out int) bool { return int(dst)%NumPorts == out }
	cons := NewConsumer(k, "cons", 1, q, routeOK)
	k.Thread("feeder", func(c *sim.Ctx) {
		good := &Packet{Src: 0, Dst: 1, ID: 1, Payload: []uint32{1}, Born: c.Now()}
		good.Seal()
		q.TryWrite(good)
		bad := &Packet{Src: 0, Dst: 1, ID: 2, Payload: []uint32{2}, Born: c.Now()}
		bad.Seal()
		bad.Payload[0] = 99 // corrupt after sealing
		q.TryWrite(bad)
		wrong := &Packet{Src: 0, Dst: 2, ID: 3, Payload: []uint32{3}, Born: c.Now()}
		wrong.Seal() // dst 2 should not arrive on out 1
		q.TryWrite(wrong)
		c.WaitTime(10 * sim.US)
		k.Stop()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if cons.Received != 3 || cons.BadContent != 1 || cons.Misrouted != 1 {
		t.Fatalf("consumer: %+v", cons)
	}
}

func TestGuestBuildsAndBindings(t *testing.T) {
	im, err := BuildGDBGuest()
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"pkt_blob", "csum_out", "bp_recv", "bp_send", "csum16"} {
		if _, ok := im.Symbol(sym); !ok {
			t.Errorf("GDB guest missing symbol %q", sym)
		}
	}
	if _, err := BuildDriverGuest(); err != nil {
		t.Fatal(err)
	}
	if len(GDBBindings()) != 2 || len(DriverPorts()) != 2 {
		t.Fatal("binding sets incomplete")
	}
	// The guest's receive buffer must hold the largest blob.
	if MaxBlobBytes > 256 {
		t.Fatalf("MaxBlobBytes %d exceeds the guest's 256-byte buffer", MaxBlobBytes)
	}
}

func TestRouterMulticast(t *testing.T) {
	k := sim.NewKernel("t")
	pkt, csum := fakeCPU(k, false)
	r := New(k, "rt", Config{FifoDepth: 8}, []Engine{{Pkt: pkt, Csum: csum}})
	bc := &Packet{Src: 0, Dst: BroadcastDst, ID: 1, Payload: []uint32{7}}
	bc.Seal()
	k.Thread("feeder", func(c *sim.Ctx) {
		r.In[0].TryWrite(bc)
		c.WaitTime(10 * sim.US)
		k.Stop()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	st := r.Stats()
	if st.Forwarded != 1 || st.Copies != NumPorts {
		t.Fatalf("stats = %+v", st)
	}
	for i := 0; i < NumPorts; i++ {
		got, ok := r.Out[i].TryRead()
		if !ok || got.ID != 1 {
			t.Fatalf("output %d missing the broadcast copy", i)
		}
		if !r.RouteOK(got.Dst, i) {
			t.Fatalf("RouteOK rejects broadcast on port %d", i)
		}
	}
}
