package router

import (
	"math/rand"

	"cosim/internal/sim"
)

// ProducerConfig parameterizes a traffic source.
type ProducerConfig struct {
	// Delay is the inter-packet delay (the x-axis of Figure 7).
	Delay sim.Time
	// PayloadWords is the data field length of generated packets.
	PayloadWords int
	// ErrorRate is the probability of injecting a corrupted packet
	// (wrong checksum), exercising the router's drop path.
	ErrorRate float64
	// MulticastRate is the probability of generating a broadcast packet
	// (Dst = BroadcastDst), copied to every output port.
	MulticastRate float64
	// Count limits the number of packets generated (0 = unlimited).
	Count uint64
	// Seed makes traffic reproducible.
	Seed int64
}

// Producer is the SystemC packet generator attached to one router
// input: "it generates packets with a random destination address".
type Producer struct {
	sim.Module
	cfg ProducerConfig

	Generated uint64 // packets produced
	Offered   uint64 // packets accepted by the input queue
	InDrops   uint64 // packets lost to a full input queue
	BadSent   uint64 // corrupted packets injected
	done      bool
}

// NewProducer attaches a producer to the given input queue. src is the
// source address stamped on packets; ids are drawn from a shared
// sequence so packet identifiers are unique router-wide.
func NewProducer(k *sim.Kernel, name string, src uint8, in *sim.Fifo[*Packet], ids *IDSource, cfg ProducerConfig) *Producer {
	if cfg.Delay == 0 {
		cfg.Delay = sim.US
	}
	if cfg.PayloadWords <= 0 {
		cfg.PayloadWords = 4
	}
	if cfg.PayloadWords > MaxPayloadWords {
		cfg.PayloadWords = MaxPayloadWords
	}
	p := &Producer{Module: k.NewModule(name), cfg: cfg}
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(src)<<32))
	k.Thread(p.Sub("gen"), func(c *sim.Ctx) {
		for cfg.Count == 0 || p.Generated < cfg.Count {
			c.WaitTime(cfg.Delay)
			dst := uint8(rng.Intn(NumPorts))
			if cfg.MulticastRate > 0 && rng.Float64() < cfg.MulticastRate {
				dst = BroadcastDst
			}
			pkt := &Packet{
				Src:     src,
				Dst:     dst,
				ID:      ids.Next(),
				Payload: randomWords(rng, cfg.PayloadWords),
				Born:    c.Now(),
			}
			pkt.Seal()
			if cfg.ErrorRate > 0 && rng.Float64() < cfg.ErrorRate {
				pkt.Checksum ^= 0x0001 // inject a detectable corruption
				p.BadSent++
			}
			p.Generated++
			if in.TryWrite(pkt) {
				p.Offered++
			} else {
				p.InDrops++
			}
		}
		p.done = true
	})
	return p
}

// Done reports whether a bounded producer has finished.
func (p *Producer) Done() bool { return p.done }

func randomWords(rng *rand.Rand, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32()
	}
	return out
}

// IDSource issues unique packet identifiers.
type IDSource struct{ next uint32 }

// Next returns the next identifier.
func (s *IDSource) Next() uint32 { s.next++; return s.next }

// Consumer drains one router output, verifying integrity end-to-end:
// "the consumer ... analyzes the integrity of the received packet".
type Consumer struct {
	sim.Module

	Received   uint64
	BadContent uint64 // checksum mismatch at the consumer (must be 0)
	Misrouted  uint64 // packet arrived on the wrong output (must be 0)
	TotalLat   sim.Time
}

// NewConsumer attaches a consumer to output port index out. routeOK
// reports whether a destination may appear on this output (the router's
// RouteOK, which also accepts broadcast copies).
func NewConsumer(k *sim.Kernel, name string, out int, q *sim.Fifo[*Packet], routeOK func(uint8, int) bool) *Consumer {
	c := &Consumer{Module: k.NewModule(name)}
	k.Thread(c.Sub("sink"), func(ctx *sim.Ctx) {
		for {
			pkt := q.Read(ctx)
			c.Received++
			if !pkt.Valid() {
				c.BadContent++
			}
			if !routeOK(pkt.Dst, out) {
				c.Misrouted++
			}
			c.TotalLat = c.TotalLat.Add(ctx.Now().Sub(pkt.Born))
		}
	})
	return c
}

// MeanLatency returns the average ingress-to-egress packet latency.
func (c *Consumer) MeanLatency() sim.Time {
	if c.Received == 0 {
		return 0
	}
	return c.TotalLat / sim.Time(c.Received)
}
