; Bare-metal checksum application for the GDB-Wrapper and GDB-Kernel
; co-simulation schemes (§3.2 programming model).
;
; The SystemC router pokes a serialized packet into pkt_blob while the
; CPU is stopped at bp_recv (a breakpoint on the very line that reads
; the variable — an iss_out binding); the application computes the
; checksum and stores it to csum_out, and the kernel collects it at
; bp_send (a breakpoint on the line immediately following the store —
; an iss_in binding).
_start:
    la   s0, pkt_blob
    la   s1, csum_out
loop:
bp_recv:
    lw   a1, 0(s0)           ; region length (first blob word)
    addi a0, s0, 4           ; region start
    call csum16
    sw   a0, 0(s1)
bp_send:
    nop
    j    loop

.data
.align 4
pkt_blob: .space 256         ; >= router.MaxBlobBytes
csum_out: .word 0
