; RTOS checksum application for the Driver-Kernel co-simulation scheme
; (§4.1 programming model): a uKOS thread served by the co-simulation
; device driver.
;
; The SystemC router rings interrupt INT_NEW_PKT after writing the
; packet to the "pkt" iss_out port; the ISR sets a flag, the main loop
; READs the packet through the driver, computes the checksum and WRITEs
; it back to the "csum" iss_in port.
.equ INT_NEW_PKT, 1

main:
    la   a0, pkt_isr
    call cosim_register_isr

mloop:
wait_pkt:
    di
    la   t0, pkt_flag
    lw   t1, 0(t0)
    bnez t1, have_pkt
    wfi
    ei
    j    wait_pkt
have_pkt:
    ei
    la   t0, pkt_flag
    lw   t1, 0(t0)
    addi t1, t1, -1          ; consume one doorbell
    sw   t1, 0(t0)

    ; fetch the packet blob from the SystemC router
    la   a0, port_pkt
    addi a1, zero, 3
    la   a2, pkt_blob
    addi a3, zero, 256
    call cosim_read

    ; checksum the region
    la   s0, pkt_blob
    lw   a1, 0(s0)
    addi a0, s0, 4
    call csum16
    la   t0, csum_out
    sw   a0, 0(t0)

    ; return the result
    la   a0, port_csum
    addi a1, zero, 4
    la   a2, csum_out
    addi a3, zero, 4
    call cosim_write
    j    mloop

; pkt_isr(a0 = interrupt id): count doorbells.
pkt_isr:
    addi t1, zero, INT_NEW_PKT
    bne  a0, t1, pkt_isr_done
    la   t0, pkt_flag
    lw   t2, 0(t0)
    addi t2, t2, 1
    sw   t2, 0(t0)
pkt_isr_done:
    ret

.data
port_pkt:  .asciz "pkt"
port_csum: .asciz "csum"
.align 4
pkt_flag:  .word 0
pkt_blob:  .space 256
csum_out:  .word 0
