; csum16(a0 = buf, a1 = len) -> a0
;
; 16-bit ones'-complement (Internet-style) checksum over len bytes,
; summing little-endian halfwords. buf must be halfword-aligned. This is
; the "C/C++ application computing the checksum" of the paper's case
; study (§5), shared by the bare-metal (GDB schemes) and RTOS
; (Driver-Kernel) guest applications. Must match router.Checksum16.
csum16:
    mv   t0, zero            ; running sum
    mv   t1, a0              ; cursor
    mv   t2, a1              ; remaining
cs_words:
    addi t3, zero, 2
    blt  t2, t3, cs_tail
    lhu  t4, 0(t1)
    add  t0, t0, t4
    addi t1, t1, 2
    addi t2, t2, -2
    j    cs_words
cs_tail:
    beqz t2, cs_fold
    lbu  t4, 0(t1)
    add  t0, t0, t4
cs_fold:
    srli t4, t0, 16
    beqz t4, cs_done
    andi t0, t0, 0xFFFF
    add  t0, t0, t4
    j    cs_fold
cs_done:
    xori a0, t0, 0xFFFF
    andi a0, a0, 0xFFFF
    ret
