package router

import (
	_ "embed"

	"cosim/internal/asm"
	"cosim/internal/core"
	"cosim/internal/rtos"
)

//go:embed guest/csum.s
var csumSrc string

//go:embed guest/app_gdb.s
var appGDBSrc string

//go:embed guest/app_drv.s
var appDrvSrc string

// PktPortName and CsumPortName are the ISS port names of the case
// study: the router pushes packets out of "pkt" and receives checksum
// results on "csum".
const (
	PktPortName  = "pkt"
	CsumPortName = "csum"
)

// IntNewPacket is the doorbell interrupt id used by the Driver-Kernel
// scheme (must match INT_NEW_PKT in app_drv.s).
const IntNewPacket = 1

// GDBGuestSources returns the bare-metal guest application for the GDB
// schemes.
func GDBGuestSources() []asm.Source {
	return []asm.Source{
		{Name: "app_gdb.s", Text: appGDBSrc},
		{Name: "csum.s", Text: csumSrc},
	}
}

// BuildGDBGuest assembles the bare-metal checksum application.
func BuildGDBGuest() (*asm.Image, error) {
	return asm.Assemble(asm.Options{DataBase: 0x10000}, GDBGuestSources()...)
}

// GDBBindings returns the variable/port bindings of §3.2 for the
// bare-metal guest.
func GDBBindings() []core.VarBinding { return GDBBindingsPrefixed("") }

// GDBBindingsPrefixed returns the bindings with a port-name prefix, so
// several CPUs can attach to one kernel (multi-processor SoC).
func GDBBindingsPrefixed(prefix string) []core.VarBinding {
	return []core.VarBinding{
		{Port: prefix + PktPortName, Var: "pkt_blob", Size: MaxBlobBytes, Dir: core.ToISS, Label: "bp_recv"},
		{Port: prefix + CsumPortName, Var: "csum_out", Size: 4, Dir: core.ToSystemC, Label: "bp_send"},
	}
}

// DriverGuestSources returns the RTOS guest application for the
// Driver-Kernel scheme (linked after the uKOS kernel and driver).
func DriverGuestSources() []asm.Source {
	return []asm.Source{
		{Name: "app_drv.s", Text: appDrvSrc},
		{Name: "csum.s", Text: csumSrc},
	}
}

// BuildDriverGuest links uKOS, the co-simulation driver and the RTOS
// checksum application.
func BuildDriverGuest() (*asm.Image, error) {
	return rtos.Build(DriverGuestSources()...)
}

// DriverPorts declares the iss ports the driver addresses by name.
func DriverPorts() []core.VarBinding {
	return []core.VarBinding{
		{Port: PktPortName, Dir: core.ToISS},
		{Port: CsumPortName, Dir: core.ToSystemC},
	}
}

// GuestLines reports source line counts for the paper's §5 code-size
// comparison: the software side of the GDB schemes (application only)
// vs the Driver-Kernel scheme (application + driver, the "factor 9x").
func GuestLines() (gdbApp, drvApp, driver int) {
	return countLines(appGDBSrc), countLines(appDrvSrc), countLines(rtos.DriverSource())
}

func countLines(s string) int {
	n := 0
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
