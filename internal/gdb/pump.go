package gdb

import (
	"io"
	"sync"
)

// pumpChunkSize is the read granularity of the pump goroutine.
const pumpChunkSize = 512

// chunkPool recycles pump read buffers: the pump goroutine checks one
// out per Read, and the consumer returns it once fully drained, so a
// long-running connection allocates a bounded number of chunks instead
// of one per read.
var chunkPool = sync.Pool{
	New: func() any { b := make([]byte, pumpChunkSize); return &b },
}

// pumpChunk is one filled buffer in flight from the pump goroutine to
// the consumer. buf points at the pooled array; n is the filled length.
type pumpChunk struct {
	buf *[]byte
	n   int
}

// pumpReader decouples reading from the connection: a goroutine drains
// the underlying reader into a channel, so consumers get both blocking
// reads (io.Reader) and a non-blocking readability check. The stub uses
// it to poll for break-in bytes while the CPU runs without relying on
// platform deadline semantics.
//
// The consumer side (Read/Readable) is not safe for concurrent use.
type pumpReader struct {
	ch     chan pumpChunk
	cur    []byte  // unread remainder of the current chunk
	curBuf *[]byte // pooled backing array of cur, nil if none checked out
	err    error   // set by the pump goroutine before close(ch)
}

func newPumpReader(r io.Reader) *pumpReader {
	p := &pumpReader{ch: make(chan pumpChunk, 16)}
	go func() {
		for {
			bp := chunkPool.Get().(*[]byte)
			n, err := r.Read(*bp)
			if n > 0 {
				p.ch <- pumpChunk{buf: bp, n: n}
			} else {
				chunkPool.Put(bp)
			}
			if err != nil {
				// Publish the real error before closing: the channel
				// close is the happens-before edge consumers rely on.
				if err != io.EOF {
					p.err = err
				}
				close(p.ch)
				return
			}
		}
	}()
	return p
}

// take installs a received chunk as the current read position.
func (p *pumpReader) take(c pumpChunk) {
	p.cur = (*c.buf)[:c.n]
	p.curBuf = c.buf
}

// recycle returns a fully drained chunk to the pool.
func (p *pumpReader) recycle() {
	if p.curBuf != nil && len(p.cur) == 0 {
		chunkPool.Put(p.curBuf)
		p.curBuf = nil
		p.cur = nil
	}
}

// Err returns the underlying reader's terminal error, if the pump has
// stopped on one (nil for a clean EOF or while still running).
func (p *pumpReader) Err() error { return p.err }

// Read implements io.Reader (blocking). When the connection fails, the
// underlying error is propagated instead of being flattened to io.EOF.
func (p *pumpReader) Read(b []byte) (int, error) {
	for len(p.cur) == 0 {
		chunk, ok := <-p.ch
		if !ok {
			if p.err != nil {
				return 0, p.err
			}
			return 0, io.EOF
		}
		p.take(chunk)
	}
	n := copy(b, p.cur)
	p.cur = p.cur[n:]
	p.recycle()
	return n, nil
}

// Readable reports, without blocking, whether a Read would return
// immediately — either with buffered data or with the connection's
// terminal error.
func (p *pumpReader) Readable() bool {
	if len(p.cur) > 0 {
		return true
	}
	select {
	case chunk, ok := <-p.ch:
		if !ok {
			return p.err != nil
		}
		p.take(chunk)
		return len(p.cur) > 0
	default:
		return false
	}
}
