package gdb

import "io"

// pumpReader decouples reading from the connection: a goroutine drains
// the underlying reader into a channel, so consumers get both blocking
// reads (io.Reader) and a non-blocking readability check. The stub uses
// it to poll for break-in bytes while the CPU runs without relying on
// platform deadline semantics.
type pumpReader struct {
	ch  chan []byte
	cur []byte
	err error
}

func newPumpReader(r io.Reader) *pumpReader {
	p := &pumpReader{ch: make(chan []byte, 16)}
	go func() {
		for {
			buf := make([]byte, 512)
			n, err := r.Read(buf)
			if n > 0 {
				p.ch <- buf[:n]
			}
			if err != nil {
				close(p.ch)
				return
			}
		}
	}()
	return p
}

// Read implements io.Reader (blocking).
func (p *pumpReader) Read(b []byte) (int, error) {
	for len(p.cur) == 0 {
		chunk, ok := <-p.ch
		if !ok {
			if p.err == nil {
				p.err = io.EOF
			}
			return 0, p.err
		}
		p.cur = chunk
	}
	n := copy(b, p.cur)
	p.cur = p.cur[n:]
	return n, nil
}

// Readable reports, without blocking, whether a Read would return data
// immediately.
func (p *pumpReader) Readable() bool {
	if len(p.cur) > 0 {
		return true
	}
	select {
	case chunk, ok := <-p.ch:
		if !ok {
			return false
		}
		p.cur = chunk
		return len(p.cur) > 0
	default:
		return false
	}
}
