package gdb

import (
	"bytes"
	"net"
	"testing"
	"testing/quick"
	"time"

	"cosim/internal/asm"
	"cosim/internal/iss"
)

func TestChecksumAndEscape(t *testing.T) {
	if checksum([]byte("OK")) != 0x9a {
		t.Fatalf("checksum(OK) = %#x", checksum([]byte("OK")))
	}
	in := []byte("a$b#c}d*e")
	esc := escape(in)
	for _, forbidden := range []byte{'$', '#', '*'} {
		for i, c := range esc {
			if c == forbidden && (i == 0 || esc[i-1] != 0x7d) {
				t.Fatalf("unescaped %q in %q", string(forbidden), esc)
			}
		}
	}
	if got := unescape(esc); !bytes.Equal(got, in) {
		t.Fatalf("unescape(escape(%q)) = %q", in, got)
	}
}

func TestEscapeRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(unescape(escape(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHexRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		dec, err := hexDecode(hexEncode(data))
		return err == nil && bytes.Equal(dec, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	g := func(v uint32) bool {
		got, err := parseU32LE(hexU32LE(v))
		return err == nil && got == v
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestTransportPacketRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	ta, tb := newTransport(a), newTransport(b)
	go func() {
		_ = ta.sendPacket([]byte("m1000,4"))
	}()
	pkt, err := tb.readPacket()
	if err != nil {
		t.Fatal(err)
	}
	if string(pkt) != "m1000,4" {
		t.Fatalf("pkt = %q", pkt)
	}
	if tb.stats.PacketsRecv != 1 {
		t.Fatalf("stats = %+v", tb.stats)
	}
}

func TestTransportChecksumRejection(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	tb := newTransport(b)
	go func() {
		// Corrupt checksum first, then a valid packet after the NAK.
		_, _ = a.Write([]byte("$OK#00"))
		buf := make([]byte, 1)
		_, _ = a.Read(buf) // expect '-'
		if buf[0] != '-' {
			t.Errorf("expected NAK, got %q", buf)
		}
		_, _ = a.Write([]byte("$OK#9a"))
		_, _ = a.Read(buf) // consume '+'
	}()
	pkt, err := tb.readPacket()
	if err != nil {
		t.Fatal(err)
	}
	if string(pkt) != "OK" {
		t.Fatalf("pkt = %q", pkt)
	}
}

// newTarget assembles a program and serves it over an in-memory pipe,
// returning a connected client.
func newTarget(t *testing.T, src string, buffered bool) (*Client, *iss.CPU, *asm.Image) {
	t.Helper()
	im, err := asm.Assemble(asm.Options{DataBase: 0x10000}, asm.Source{Name: "t.s", Text: src})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ram := iss.NewRAM(1 << 20)
	if err := im.LoadInto(ram); err != nil {
		t.Fatal(err)
	}
	cpu := iss.New(iss.NewSystemBus(ram))
	cpu.Reset(im.Entry)

	host, target := net.Pipe()
	stub := NewStub(cpu, target)
	stub.ChunkBudget = 1000
	go func() {
		_ = stub.Serve()
		target.Close()
	}()
	cl := NewClient(host, ClientOptions{UseReaderGoroutine: buffered})
	t.Cleanup(func() { _ = cl.Kill(); host.Close() })
	return cl, cpu, im
}

const testProg = `
_start:
    addi a0, zero, 1
work:
    addi a0, a0, 10
after:
    addi a0, a0, 100
    halt
.data
var: .word 0xCAFEBABE
`

func TestHandshakeAndHaltReason(t *testing.T) {
	cl, _, _ := newTarget(t, testProg, false)
	feat, err := cl.QuerySupported()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains([]byte(feat), []byte("PacketSize")) {
		t.Fatalf("features = %q", feat)
	}
	ev, err := cl.HaltReason()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Signal != 5 {
		t.Fatalf("signal = %d", ev.Signal)
	}
}

func TestReadWriteRegisters(t *testing.T) {
	cl, cpu, _ := newTarget(t, testProg, false)
	cpu.Regs[10] = 0x12345678
	regs, err := cl.ReadRegisters()
	if err != nil {
		t.Fatal(err)
	}
	if regs.GPR[10] != 0x12345678 {
		t.Fatalf("a0 = %#x", regs.GPR[10])
	}
	if regs.PC != cpu.PC {
		t.Fatalf("pc = %#x, want %#x", regs.PC, cpu.PC)
	}
	if err := cl.WriteRegister(11, 0xdead); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[11] != 0xdead {
		t.Fatalf("a1 = %#x", cpu.Regs[11])
	}
	v, err := cl.ReadRegister(10)
	if err != nil || v != 0x12345678 {
		t.Fatalf("p reply = %#x, %v", v, err)
	}
}

func TestReadWriteMemory(t *testing.T) {
	cl, _, im := newTarget(t, testProg, false)
	addr := im.MustSymbol("var")
	data, err := cl.ReadMemory(addr, 4)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != 0xbe || data[3] != 0xca {
		t.Fatalf("var = % x", data)
	}
	if err := cl.WriteMemory(addr, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	back, _ := cl.ReadMemory(addr, 4)
	if !bytes.Equal(back, []byte{1, 2, 3, 4}) {
		t.Fatalf("after write = % x", back)
	}
}

func TestSoftwareBreakpointRoundTrip(t *testing.T) {
	cl, cpu, im := newTarget(t, testProg, false)
	bp := im.MustSymbol("after")
	if err := cl.SetBreakpoint(bp); err != nil {
		t.Fatal(err)
	}
	// Planted EBREAK must be hidden from memory reads.
	visible, err := cl.ReadMemory(bp, 4)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := cpu.Bus().Read(bp, 4)
	var rawBytes [4]byte
	for i := range rawBytes {
		rawBytes[i] = byte(raw >> (8 * i))
	}
	if bytes.Equal(visible, rawBytes[:]) {
		t.Fatal("planted breakpoint visible in memory read")
	}

	if err := cl.Continue(); err != nil {
		t.Fatal(err)
	}
	ev, err := cl.WaitStop()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Signal != 5 {
		t.Fatalf("signal = %d", ev.Signal)
	}
	pc, _ := cl.ReadPC()
	if pc != bp {
		t.Fatalf("stopped at %#x, want %#x", pc, bp)
	}
	if cpu.Regs[10] != 11 {
		t.Fatalf("a0 = %d at breakpoint", cpu.Regs[10])
	}

	// Resume to completion: stub must step over the planted breakpoint.
	if err := cl.Continue(); err != nil {
		t.Fatal(err)
	}
	ev, err = cl.WaitStop()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Exited || ev.ExitCode != 0 {
		t.Fatalf("final stop = %+v", ev)
	}
	if cpu.Regs[10] != 111 {
		t.Fatalf("final a0 = %d", cpu.Regs[10])
	}
}

func TestClearBreakpoint(t *testing.T) {
	cl, cpu, im := newTarget(t, testProg, false)
	bp := im.MustSymbol("after")
	orig, _ := cpu.Bus().Read(bp, 4)
	if err := cl.SetBreakpoint(bp); err != nil {
		t.Fatal(err)
	}
	if err := cl.ClearBreakpoint(bp); err != nil {
		t.Fatal(err)
	}
	restored, _ := cpu.Bus().Read(bp, 4)
	if restored != orig {
		t.Fatalf("memory not restored: %#x vs %#x", restored, orig)
	}
	_ = cl.Continue()
	ev, _ := cl.WaitStop()
	if !ev.Exited {
		t.Fatalf("stop = %+v", ev)
	}
}

func TestHardwareBreakpoint(t *testing.T) {
	cl, _, im := newTarget(t, testProg, false)
	bp := im.MustSymbol("work")
	if err := cl.SetHWBreakpoint(bp); err != nil {
		t.Fatal(err)
	}
	_ = cl.Continue()
	ev, err := cl.WaitStop()
	if err != nil || ev.Signal != 5 {
		t.Fatalf("stop = %+v, %v", ev, err)
	}
	pc, _ := cl.ReadPC()
	if pc != bp {
		t.Fatalf("pc = %#x", pc)
	}
}

func TestStep(t *testing.T) {
	cl, cpu, _ := newTarget(t, testProg, false)
	ev, err := cl.Step()
	if err != nil || ev.Signal != 5 {
		t.Fatalf("step = %+v, %v", ev, err)
	}
	if cpu.PC != 4 || cpu.Regs[10] != 1 {
		t.Fatalf("pc=%#x a0=%d after one step", cpu.PC, cpu.Regs[10])
	}
}

func TestStepOffPlantedBreakpoint(t *testing.T) {
	cl, cpu, im := newTarget(t, testProg, false)
	bp := im.MustSymbol("work")
	_ = cl.SetBreakpoint(bp)
	_ = cl.Continue()
	if _, err := cl.WaitStop(); err != nil {
		t.Fatal(err)
	}
	ev, err := cl.Step()
	if err != nil || ev.Signal != 5 {
		t.Fatalf("step = %+v, %v", ev, err)
	}
	if cpu.Regs[10] != 11 {
		t.Fatalf("a0 = %d: breakpointed instruction did not execute", cpu.Regs[10])
	}
}

func TestWatchpointReply(t *testing.T) {
	cl, _, im := newTarget(t, `
_start:
    la   gp, target
    addi a0, zero, 9
    sw   a0, 0(gp)
    halt
.data
target: .word 0
`, false)
	wa := im.MustSymbol("target")
	if err := cl.SetWatchpoint(wa, 4); err != nil {
		t.Fatal(err)
	}
	_ = cl.Continue()
	ev, err := cl.WaitStop()
	if err != nil {
		t.Fatal(err)
	}
	if !ev.IsWatch || ev.WatchAddr != wa {
		t.Fatalf("stop = %+v", ev)
	}
	if err := cl.ClearWatchpoint(wa); err != nil {
		t.Fatal(err)
	}
}

func TestInterruptBreakIn(t *testing.T) {
	cl, _, _ := newTarget(t, `
_start:
spin:
    j spin
`, false)
	if err := cl.Continue(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	if err := cl.Interrupt(); err != nil {
		t.Fatal(err)
	}
	ev, err := cl.WaitStop()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Signal != 2 {
		t.Fatalf("signal = %d, want SIGINT", ev.Signal)
	}
}

func TestRunQuantumLockStep(t *testing.T) {
	cl, cpu, im := newTarget(t, testProg, false)
	bp := im.MustSymbol("after")
	_ = cl.SetBreakpoint(bp)
	// Drive the target one instruction per quantum, as the GDB-Wrapper
	// scheme does per clock cycle.
	quanta := 0
	for {
		ev, _, err := cl.RunQuantum(1)
		if err != nil {
			t.Fatal(err)
		}
		quanta++
		if ev != nil {
			if ev.Signal != 5 {
				t.Fatalf("signal = %d", ev.Signal)
			}
			break
		}
		if quanta > 100 {
			t.Fatal("breakpoint never reached")
		}
	}
	pc, _ := cl.ReadPC()
	if pc != bp {
		t.Fatalf("pc = %#x, want %#x", pc, bp)
	}
	if cpu.Regs[10] != 11 {
		t.Fatalf("a0 = %d", cpu.Regs[10])
	}
	// Resuming over the planted breakpoint with further quanta must
	// execute the program to completion.
	for {
		ev, _, err := cl.RunQuantum(10)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			if !ev.Exited {
				t.Fatalf("stop = %+v", ev)
			}
			break
		}
	}
	if cpu.Regs[10] != 111 {
		t.Fatalf("final a0 = %d", cpu.Regs[10])
	}
}

func TestRunQuantumReportsExecuted(t *testing.T) {
	cl, _, _ := newTarget(t, `
_start:
spin:
    j spin
`, false)
	ev, n, err := cl.RunQuantum(25)
	if err != nil {
		t.Fatal(err)
	}
	if ev != nil {
		t.Fatalf("unexpected stop %+v", ev)
	}
	if n != 25 {
		t.Fatalf("executed = %d, want 25", n)
	}
}

func TestBufferedModeFullSession(t *testing.T) {
	cl, cpu, im := newTarget(t, testProg, true)
	bp := im.MustSymbol("after")
	if err := cl.SetBreakpoint(bp); err != nil {
		t.Fatal(err)
	}
	if err := cl.Continue(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		ev, stopped, err := cl.PollStop()
		if err != nil {
			t.Fatal(err)
		}
		if stopped {
			if ev.Signal != 5 {
				t.Fatalf("signal = %d", ev.Signal)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never stopped")
		}
	}
	v, err := cl.ReadMemory(im.MustSymbol("var"), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 0xbe {
		t.Fatalf("var = % x", v)
	}
	_ = cl.Continue()
	ev, err := cl.WaitStop()
	if err != nil || !ev.Exited {
		t.Fatalf("final = %+v, %v", ev, err)
	}
	if cpu.Regs[10] != 111 {
		t.Fatalf("a0 = %d", cpu.Regs[10])
	}
}

func TestOverTCP(t *testing.T) {
	im, err := asm.Assemble(asm.Options{}, asm.Source{Name: "t.s", Text: testProg})
	if err != nil {
		t.Fatal(err)
	}
	ram := iss.NewRAM(1 << 20)
	_ = im.LoadInto(ram)
	cpu := iss.New(iss.NewSystemBus(ram))
	cpu.Reset(im.Entry)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		stub := NewStub(cpu, conn)
		_ = stub.Serve()
		conn.Close()
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClient(conn, ClientOptions{})
	defer func() { _ = cl.Kill(); conn.Close() }()

	bp := im.MustSymbol("after")
	if err := cl.SetBreakpoint(bp); err != nil {
		t.Fatal(err)
	}
	_ = cl.Continue()
	ev, err := cl.WaitStop()
	if err != nil || ev.Signal != 5 {
		t.Fatalf("tcp stop = %+v, %v", ev, err)
	}
	cyc, err := cl.Cycles()
	if err != nil || cyc == 0 {
		t.Fatalf("cycles = %d, %v", cyc, err)
	}
}

func TestParseStop(t *testing.T) {
	cases := []struct {
		in   string
		want StopEvent
	}{
		{"S05", StopEvent{Signal: 5}},
		{"S02", StopEvent{Signal: 2}},
		{"W00", StopEvent{Exited: true}},
		{"W2a", StopEvent{Exited: true, ExitCode: 42}},
		{"T05watch:10004;", StopEvent{Signal: 5, IsWatch: true, WatchAddr: 0x10004}},
		{"T05swbreak:;", StopEvent{Signal: 5}},
	}
	for _, c := range cases {
		got, err := parseStop([]byte(c.in))
		if err != nil {
			t.Errorf("parseStop(%q): %v", c.in, err)
			continue
		}
		if *got != c.want {
			t.Errorf("parseStop(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "S", "Q05", "Sxx"} {
		if _, err := parseStop([]byte(bad)); err == nil {
			t.Errorf("parseStop(%q) succeeded", bad)
		}
	}
}

func TestUnknownPacketGetsEmptyReply(t *testing.T) {
	cl, _, _ := newTarget(t, testProg, false)
	r, err := cl.transact([]byte("vMustReplyEmpty"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 0 {
		t.Fatalf("reply = %q, want empty", r)
	}
}

func TestDetach(t *testing.T) {
	cl, _, _ := newTarget(t, testProg, false)
	if err := cl.Detach(); err != nil {
		t.Fatal(err)
	}
}

func TestExpandRLE(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"abc", "abc"},
		{"0* ", "0000"},                    // ' ' = 32 -> 3 extra zeros
		{"x*!", "xxxxx"},                   // '!' = 33 -> 4 extra
		{"ab*\x1dc", "abc"},                // count 0: no extra repeats
		{"1*&2*&", "11111111112222222222"}, // '&' = 38 -> 9 extra repeats
	}
	for _, c := range cases {
		got, err := expandRLE([]byte(c.in))
		if err != nil {
			t.Errorf("expandRLE(%q): %v", c.in, err)
			continue
		}
		if string(got) != c.want {
			t.Errorf("expandRLE(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"*!", "a*"} {
		if _, err := expandRLE([]byte(bad)); err == nil {
			t.Errorf("expandRLE(%q) accepted", bad)
		}
	}
}

func TestRLEThroughTransport(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	tb := newTransport(b)
	go func() {
		// "g0* " expands to "g0000"; checksum is over the wire form.
		payload := []byte("g0* ")
		frame := append([]byte{'$'}, payload...)
		sum := checksum(payload)
		frame = append(frame, '#', hexDigits[sum>>4], hexDigits[sum&0xf])
		_, _ = a.Write(frame)
		buf := make([]byte, 1)
		_, _ = a.Read(buf) // ack
	}()
	pkt, err := tb.readPacket()
	if err != nil {
		t.Fatal(err)
	}
	if string(pkt) != "g0000" {
		t.Fatalf("pkt = %q", pkt)
	}
}
