package gdb

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// StopEvent is a parsed RSP stop reply.
type StopEvent struct {
	Signal    byte
	IsWatch   bool
	WatchAddr uint32
	Exited    bool
	ExitCode  byte
}

// Regs is the full RSP register file.
type Regs struct {
	GPR    [32]uint32
	PC     uint32
	SR     [5]uint32 // STATUS, EPC, CAUSE, IVEC, SCRATCH
	Cycles uint64
}

// Client is the host side of the RSP connection — the role gdb itself
// plays. It is used by the co-simulation wrapper (GDB-Wrapper scheme)
// and by the modified SystemC kernel (GDB-Kernel scheme).
//
// Two read strategies are offered, mirroring the architectural
// difference the paper measures:
//
//   - Direct mode: replies are read inline from the connection;
//     PollStop issues a zero-deadline read — one host-OS syscall per
//     poll, like the wrapper's per-cycle IPC check.
//   - Buffered mode (UseReaderGoroutine): a background goroutine drains
//     the connection into an in-process queue; PollStop is a lock-free
//     channel check with no OS involvement — the kernel-embedded check.
type Client struct {
	t       *transport
	conn    io.ReadWriter
	running bool

	buffered bool
	packets  chan []byte
	readErr  error
	errMu    sync.Mutex
}

// ClientOptions configures a Client.
type ClientOptions struct {
	// UseReaderGoroutine enables buffered mode (see Client docs).
	UseReaderGoroutine bool
}

// NewClient attaches a client to an RSP connection.
func NewClient(conn io.ReadWriter, opts ClientOptions) *Client {
	c := &Client{t: newTransport(conn), conn: conn, buffered: opts.UseReaderGoroutine}
	if c.buffered {
		c.packets = make(chan []byte, 64)
		go c.readLoop()
	}
	return c
}

// Stats returns protocol traffic counters.
func (c *Client) Stats() Stats { return c.t.stats }

func (c *Client) readLoop() {
	for {
		pkt, err := c.t.readPacket()
		if err != nil {
			c.errMu.Lock()
			c.readErr = err
			c.errMu.Unlock()
			close(c.packets)
			return
		}
		c.packets <- pkt
	}
}

func (c *Client) readError() error {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	if c.readErr == nil {
		return errors.New("gdb: connection closed")
	}
	return c.readErr
}

// send transmits a command packet using the mode-appropriate ack
// strategy.
func (c *Client) send(payload []byte) error {
	if c.buffered {
		// Acks are consumed by the reader goroutine.
		return c.t.sendReplyNoAckWait(payload)
	}
	return c.t.sendPacket(payload)
}

// recv reads one reply packet.
func (c *Client) recv() ([]byte, error) {
	if c.buffered {
		pkt, ok := <-c.packets
		if !ok {
			return nil, c.readError()
		}
		return pkt, nil
	}
	for {
		pkt, err := c.t.readPacket()
		if err == ErrInterrupt {
			continue
		}
		return pkt, err
	}
}

// transact sends a command and returns its reply. It must not be called
// while the target is running.
func (c *Client) transact(payload []byte) ([]byte, error) {
	if c.running {
		return nil, errors.New("gdb: transaction attempted while target is running")
	}
	if err := c.send(payload); err != nil {
		return nil, err
	}
	c.t.stats.RoundTrips++
	return c.recv()
}

// checkOK validates an "OK" reply.
func checkOK(reply []byte, what string) error {
	if string(reply) == "OK" {
		return nil
	}
	return fmt.Errorf("gdb: %s failed: %q", what, reply)
}

// QuerySupported performs the initial feature handshake.
func (c *Client) QuerySupported() (string, error) {
	r, err := c.transact([]byte("qSupported:swbreak+"))
	return string(r), err
}

// HaltReason sends '?' and parses the current stop state.
func (c *Client) HaltReason() (*StopEvent, error) {
	r, err := c.transact([]byte("?"))
	if err != nil {
		return nil, err
	}
	return parseStop(r)
}

// ReadRegisters fetches the whole register file in one 'g' transaction.
func (c *Client) ReadRegisters() (*Regs, error) {
	r, err := c.transact([]byte("g"))
	if err != nil {
		return nil, err
	}
	if len(r) < NumRSPRegs*8 {
		return nil, fmt.Errorf("gdb: short g reply (%d bytes)", len(r))
	}
	var regs Regs
	vals := make([]uint32, NumRSPRegs)
	for i := range vals {
		v, err := parseU32LE(r[i*8 : i*8+8])
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	copy(regs.GPR[:], vals[:32])
	regs.PC = vals[RegPC]
	copy(regs.SR[:], vals[RegStatus:RegStatus+5])
	regs.Cycles = uint64(vals[RegCycle]) | uint64(vals[RegCycleH])<<32
	return &regs, nil
}

// ReadRegister fetches one register by RSP number.
func (c *Client) ReadRegister(n int) (uint32, error) {
	r, err := c.transact([]byte(fmt.Sprintf("p%x", n)))
	if err != nil {
		return 0, err
	}
	return parseU32LE(r)
}

// WriteRegister sets one register by RSP number.
func (c *Client) WriteRegister(n int, v uint32) error {
	r, err := c.transact([]byte(fmt.Sprintf("P%x=%s", n, hexU32LE(v))))
	if err != nil {
		return err
	}
	return checkOK(r, "write register")
}

// ReadPC fetches the program counter.
func (c *Client) ReadPC() (uint32, error) { return c.ReadRegister(RegPC) }

// Cycles fetches the target's cycle counter (used by the co-simulation
// bridge to couple ISS time to SystemC time).
func (c *Client) Cycles() (uint64, error) {
	lo, err := c.ReadRegister(RegCycle)
	if err != nil {
		return 0, err
	}
	hi, err := c.ReadRegister(RegCycleH)
	if err != nil {
		return 0, err
	}
	return uint64(hi)<<32 | uint64(lo), nil
}

// ReadMemory fetches length bytes from the target.
func (c *Client) ReadMemory(addr uint32, length int) ([]byte, error) {
	r, err := c.transact([]byte(fmt.Sprintf("m%x,%x", addr, length)))
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(r, []byte("E")) {
		return nil, fmt.Errorf("gdb: memory read failed: %s", r)
	}
	return hexDecode(r)
}

// WriteMemory stores bytes on the target.
func (c *Client) WriteMemory(addr uint32, data []byte) error {
	r, err := c.transact([]byte(fmt.Sprintf("M%x,%x:%s", addr, len(data), hexEncode(data))))
	if err != nil {
		return err
	}
	return checkOK(r, "write memory")
}

// SetBreakpoint plants a software breakpoint (Z0).
func (c *Client) SetBreakpoint(addr uint32) error {
	r, err := c.transact([]byte(fmt.Sprintf("Z0,%x,4", addr)))
	if err != nil {
		return err
	}
	return checkOK(r, "set breakpoint")
}

// ClearBreakpoint removes a software breakpoint (z0).
func (c *Client) ClearBreakpoint(addr uint32) error {
	r, err := c.transact([]byte(fmt.Sprintf("z0,%x,4", addr)))
	if err != nil {
		return err
	}
	return checkOK(r, "clear breakpoint")
}

// SetHWBreakpoint arms a hardware breakpoint (Z1).
func (c *Client) SetHWBreakpoint(addr uint32) error {
	r, err := c.transact([]byte(fmt.Sprintf("Z1,%x,4", addr)))
	if err != nil {
		return err
	}
	return checkOK(r, "set hw breakpoint")
}

// SetWatchpoint arms a write watchpoint (Z2).
func (c *Client) SetWatchpoint(addr uint32, length int) error {
	r, err := c.transact([]byte(fmt.Sprintf("Z2,%x,%x", addr, length)))
	if err != nil {
		return err
	}
	return checkOK(r, "set watchpoint")
}

// ClearWatchpoint removes a write watchpoint (z2).
func (c *Client) ClearWatchpoint(addr uint32) error {
	r, err := c.transact([]byte(fmt.Sprintf("z2,%x,4", addr)))
	if err != nil {
		return err
	}
	return checkOK(r, "clear watchpoint")
}

// Step executes one instruction and returns the stop event.
func (c *Client) Step() (*StopEvent, error) {
	if err := c.send([]byte("s")); err != nil {
		return nil, err
	}
	c.t.stats.RoundTrips++
	r, err := c.recv()
	if err != nil {
		return nil, err
	}
	return parseStop(r)
}

// Continue resumes the target. The stop reply arrives asynchronously;
// collect it with PollStop or WaitStop.
func (c *Client) Continue() error {
	if c.running {
		return errors.New("gdb: already running")
	}
	if err := c.send([]byte("c")); err != nil {
		return err
	}
	c.running = true
	return nil
}

// Running reports whether a continue is outstanding.
func (c *Client) Running() bool { return c.running }

// PollStop checks non-blockingly whether the running target has
// stopped: an in-process channel check with no OS involvement — the
// kernel-embedded poll of the GDB-Kernel scheme. It requires buffered
// mode; the lock-step GDB-Wrapper scheme uses RunQuantum transactions
// instead and never needs to poll.
func (c *Client) PollStop() (*StopEvent, bool, error) {
	if !c.running {
		return nil, false, errors.New("gdb: PollStop while not running")
	}
	if !c.buffered {
		return nil, false, errors.New("gdb: PollStop requires UseReaderGoroutine")
	}
	select {
	case pkt, ok := <-c.packets:
		if !ok {
			return nil, false, c.readError()
		}
		ev, err := parseStop(pkt)
		if err != nil {
			return nil, false, err
		}
		c.running = false
		return ev, true, nil
	default:
		return nil, false, nil
	}
}

// RunQuantum runs the target for at most budget instructions using the
// qRun extension — one full RSP round trip through the host OS per
// call, which is the per-cycle lock-step synchronization cost the
// GDB-Wrapper scheme pays. It returns (nil, executed) when the budget
// was exhausted with the target still runnable, or the stop event.
func (c *Client) RunQuantum(budget uint64) (*StopEvent, uint64, error) {
	r, err := c.transact([]byte(fmt.Sprintf("qRun,%x", budget)))
	if err != nil {
		return nil, 0, err
	}
	if len(r) > 0 && r[0] == 'B' {
		var executed uint64
		if _, err := fmt.Sscanf(string(r[1:]), "%x", &executed); err != nil {
			return nil, 0, fmt.Errorf("gdb: bad qRun reply %q", r)
		}
		return nil, executed, nil
	}
	ev, err := parseStop(r)
	if err != nil {
		return nil, 0, err
	}
	return ev, 0, nil
}

// WaitStopTimeout blocks until the running target stops or the wall
// timeout elapses (buffered mode only). It returns ok=false on timeout
// with the target still running.
func (c *Client) WaitStopTimeout(d time.Duration) (*StopEvent, bool, error) {
	if !c.running {
		return nil, false, errors.New("gdb: WaitStopTimeout while not running")
	}
	if !c.buffered {
		return nil, false, errors.New("gdb: WaitStopTimeout requires UseReaderGoroutine")
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case pkt, ok := <-c.packets:
		if !ok {
			return nil, false, c.readError()
		}
		ev, err := parseStop(pkt)
		if err != nil {
			return nil, false, err
		}
		c.running = false
		return ev, true, nil
	case <-timer.C:
		return nil, false, nil
	}
}

// WaitStop blocks until the running target stops.
func (c *Client) WaitStop() (*StopEvent, error) {
	if !c.running {
		return nil, errors.New("gdb: WaitStop while not running")
	}
	pkt, err := c.recv()
	if err != nil {
		return nil, err
	}
	c.running = false
	return parseStop(pkt)
}

// Interrupt sends the break-in byte to stop a running target; collect
// the resulting stop with WaitStop.
func (c *Client) Interrupt() error {
	_, err := c.conn.Write([]byte{InterruptByte})
	return err
}

// Kill terminates the stub (no reply is defined for 'k').
func (c *Client) Kill() error {
	return c.send([]byte("k"))
}

// Detach cleanly detaches from the stub.
func (c *Client) Detach() error {
	_, err := c.transact([]byte("D"))
	return err
}

// parseStop decodes S/T/W stop replies.
func parseStop(pkt []byte) (*StopEvent, error) {
	if len(pkt) < 3 {
		return nil, fmt.Errorf("gdb: short stop reply %q", pkt)
	}
	ev := &StopEvent{}
	sig, err := parseHexByte(pkt[1], pkt[2])
	if err != nil {
		return nil, err
	}
	switch pkt[0] {
	case 'S':
		ev.Signal = sig
		return ev, nil
	case 'W':
		ev.Exited = true
		ev.ExitCode = sig
		return ev, nil
	case 'T':
		ev.Signal = sig
		for _, field := range strings.Split(string(pkt[3:]), ";") {
			if v, ok := strings.CutPrefix(field, "watch:"); ok {
				ev.IsWatch = true
				_, _ = fmt.Sscanf(v, "%x", &ev.WatchAddr)
			}
		}
		return ev, nil
	}
	return nil, fmt.Errorf("gdb: unrecognized stop reply %q", pkt)
}

// Buffered reports whether the client uses a reader goroutine.
func (c *Client) Buffered() bool { return c.buffered }
