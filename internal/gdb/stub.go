package gdb

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"cosim/internal/isa"
	"cosim/internal/iss"
)

// Register numbering in the RSP register file ('g'/'p'/'P' packets):
// 0..31 are the GPRs, then PC and the special registers.
const (
	RegPC      = 32
	RegStatus  = 33
	RegEPC     = 34
	RegCause   = 35
	RegIVec    = 36
	RegScratch = 37
	RegCycle   = 38
	RegCycleH  = 39
	NumRSPRegs = 40
)

// stubRW routes transport reads through the pump and writes directly
// to the connection.
type stubRW struct {
	r io.Reader
	w io.Writer
}

func (rw stubRW) Read(b []byte) (int, error)  { return rw.r.Read(b) }
func (rw stubRW) Write(b []byte) (int, error) { return rw.w.Write(b) }

// Stub serves the GDB Remote Serial Protocol for one CPU. It owns the
// CPU while serving: run-control packets execute instructions on the
// caller-provided core, exactly like a gdbserver embedded in an ISS.
//
// Beyond the standard packet set the stub implements "qRun,<n>": run at
// most n instructions and reply either with a stop reply or with
// "B<executed>" if the budget was exhausted. This bounded-run primitive
// is what the GDB-Wrapper co-simulation scheme uses to keep the ISS and
// SystemC in lock-step.
type Stub struct {
	cpu  *iss.CPU
	t    *transport
	pump *pumpReader

	planted map[uint32]uint32 // software breakpoints: addr -> original word

	// ChunkBudget is the number of instructions run between break-in
	// polls while the target is running.
	ChunkBudget uint64
	// IdleSleep is how long the stub sleeps when the CPU is in WFI with
	// no pending interrupt.
	IdleSleep time.Duration

	lastSignal byte

	// Breakpoint-resume tracking: a planted breakpoint is stepped over
	// only when resuming from a stop that was reported at that address,
	// never when merely arriving at it.
	reportedBP   uint32
	haveReported bool
}

// NewStub creates a stub for the CPU over the connection.
func NewStub(cpu *iss.CPU, conn io.ReadWriter) *Stub {
	pump := newPumpReader(conn)
	s := &Stub{
		cpu:         cpu,
		t:           newTransport(stubRW{r: pump, w: conn}),
		pump:        pump,
		planted:     make(map[uint32]uint32),
		ChunkBudget: 50_000,
		IdleSleep:   50 * time.Microsecond,
		lastSignal:  5,
	}
	return s
}

// Stats returns protocol traffic counters.
func (s *Stub) Stats() Stats { return s.t.stats }

// Serve processes packets until kill, detach, or connection close.
func (s *Stub) Serve() error {
	for {
		pkt, err := s.t.readPacket()
		if err == ErrInterrupt {
			continue // already stopped; ignore stray break-ins
		}
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		reply, done := s.dispatch(pkt)
		if reply != nil {
			if err := s.t.sendReplyNoAckWait(reply); err != nil {
				return err
			}
		}
		if done {
			return nil
		}
	}
}

// dispatch handles one command packet.
func (s *Stub) dispatch(pkt []byte) (reply []byte, done bool) {
	if len(pkt) == 0 {
		return []byte{}, false
	}
	switch pkt[0] {
	case '?':
		return []byte(fmt.Sprintf("S%02x", s.lastSignal)), false
	case 'g':
		return s.readAllRegs(), false
	case 'G':
		return s.writeAllRegs(pkt[1:]), false
	case 'p':
		return s.readOneReg(pkt[1:]), false
	case 'P':
		return s.writeOneReg(pkt[1:]), false
	case 'm':
		return s.readMem(pkt[1:]), false
	case 'M':
		return s.writeMemHex(pkt[1:]), false
	case 'X':
		return s.writeMemBin(pkt[1:]), false
	case 'Z':
		return s.setPoint(pkt[1:]), false
	case 'z':
		return s.clearPoint(pkt[1:]), false
	case 'c':
		return s.resume(false, pkt[1:]), false
	case 's':
		return s.resume(true, pkt[1:]), false
	case 'k':
		return nil, true
	case 'D':
		return []byte("OK"), true
	case 'H':
		return []byte("OK"), false
	case 'q':
		return s.query(pkt), false
	default:
		return []byte{}, false // unsupported: empty reply per RSP
	}
}

func (s *Stub) query(pkt []byte) []byte {
	q := string(pkt)
	switch {
	case bytes.HasPrefix(pkt, []byte("qRun,")):
		return s.runQuantum(pkt[len("qRun,"):])
	case bytes.HasPrefix(pkt, []byte("qSupported")):
		return []byte(fmt.Sprintf("PacketSize=%x;swbreak+;hwbreak+;qRun+;qXfer:features:read+", MaxPacketSize))
	case bytes.HasPrefix(pkt, []byte("qXfer:features:read:target.xml:")):
		return s.featuresXML(pkt[len("qXfer:features:read:target.xml:"):])
	case q == "qC":
		return []byte("QC0")
	case q == "qAttached":
		return []byte("1")
	case q == "qfThreadInfo":
		return []byte("m0")
	case q == "qsThreadInfo":
		return []byte("l")
	}
	return []byte{}
}

// targetXML is the gdb target description: 32 GPRs, PC, the special
// registers and the cycle counters, in 'g'-packet order.
var targetXML = func() []byte {
	var b bytes.Buffer
	b.WriteString(`<?xml version="1.0"?>` + "\n")
	b.WriteString(`<target version="1.0"><architecture>fv32</architecture>` + "\n")
	b.WriteString(`<feature name="org.cosim.fv32.core">` + "\n")
	for i := 0; i < 32; i++ {
		fmt.Fprintf(&b, `<reg name="%s" bitsize="32" regnum="%d"/>`+"\n", isa.RegName(uint8(i)), i)
	}
	names := []string{"pc", "status", "epc", "cause", "ivec", "scratch", "cycle", "cycleh"}
	for i, n := range names {
		kind := ""
		if n == "pc" {
			kind = ` type="code_ptr"`
		}
		fmt.Fprintf(&b, `<reg name="%s" bitsize="32" regnum="%d"%s/>`+"\n", n, RegPC+i, kind)
	}
	b.WriteString(`</feature></target>` + "\n")
	return b.Bytes()
}()

// featuresXML serves a window of the target description for a
// qXfer:features:read request ("offset,length" argument).
func (s *Stub) featuresXML(arg []byte) []byte {
	var off, length int
	if _, err := fmt.Sscanf(string(arg), "%x,%x", &off, &length); err != nil {
		return []byte("E01")
	}
	if off >= len(targetXML) {
		return []byte("l") // past the end
	}
	end := off + length
	marker := byte('l')
	if end < len(targetXML) {
		marker = 'm' // more follows
	} else {
		end = len(targetXML)
	}
	return append([]byte{marker}, targetXML[off:end]...)
}

// regValue reads one RSP-numbered register.
func (s *Stub) regValue(n int) uint32 {
	switch {
	case n >= 0 && n < 32:
		return s.cpu.Regs[n]
	case n == RegPC:
		return s.cpu.PC
	case n == RegCycle:
		return uint32(s.cpu.Cycles())
	case n == RegCycleH:
		return uint32(s.cpu.Cycles() >> 32)
	case n >= RegStatus && n <= RegScratch:
		return s.cpu.SR[n-RegStatus]
	}
	return 0
}

// setRegValue writes one RSP-numbered register (cycle counters are RO).
func (s *Stub) setRegValue(n int, v uint32) {
	switch {
	case n > 0 && n < 32:
		s.cpu.Regs[n] = v
	case n == RegPC:
		s.cpu.PC = v
	case n >= RegStatus && n <= RegScratch:
		s.cpu.SR[n-RegStatus] = v
	}
}

func (s *Stub) readAllRegs() []byte {
	out := make([]byte, 0, NumRSPRegs*8)
	for i := 0; i < NumRSPRegs; i++ {
		out = append(out, hexU32LE(s.regValue(i))...)
	}
	return out
}

func (s *Stub) writeAllRegs(hex []byte) []byte {
	if len(hex) < NumRSPRegs*8 {
		return []byte("E01")
	}
	for i := 0; i < NumRSPRegs; i++ {
		v, err := parseU32LE(hex[i*8 : i*8+8])
		if err != nil {
			return []byte("E01")
		}
		s.setRegValue(i, v)
	}
	return []byte("OK")
}

func (s *Stub) readOneReg(arg []byte) []byte {
	var n int
	if _, err := fmt.Sscanf(string(arg), "%x", &n); err != nil || n >= NumRSPRegs {
		return []byte("E01")
	}
	return hexU32LE(s.regValue(n))
}

func (s *Stub) writeOneReg(arg []byte) []byte {
	parts := bytes.SplitN(arg, []byte("="), 2)
	if len(parts) != 2 {
		return []byte("E01")
	}
	var n int
	if _, err := fmt.Sscanf(string(parts[0]), "%x", &n); err != nil || n >= NumRSPRegs {
		return []byte("E01")
	}
	v, err := parseU32LE(parts[1])
	if err != nil {
		return []byte("E01")
	}
	s.setRegValue(n, v)
	return []byte("OK")
}

// parseAddrLen parses "addr,len".
func parseAddrLen(arg []byte) (uint32, int, error) {
	var addr uint32
	var length int
	if _, err := fmt.Sscanf(string(arg), "%x,%x", &addr, &length); err != nil {
		return 0, 0, err
	}
	return addr, length, nil
}

// readMem handles 'm addr,len' with planted-breakpoint overlay so the
// debugger never sees EBREAK words it planted itself.
func (s *Stub) readMem(arg []byte) []byte {
	addr, length, err := parseAddrLen(arg)
	if err != nil || length < 0 || length > MaxPacketSize/2 {
		return []byte("E01")
	}
	buf := make([]byte, length)
	for i := 0; i < length; i++ {
		v, err := s.cpu.Bus().Read(addr+uint32(i), 1)
		if err != nil {
			return []byte("E02")
		}
		buf[i] = byte(v)
	}
	// Overlay original words for planted breakpoints in range.
	for ba, orig := range s.planted {
		for i := 0; i < 4; i++ {
			a := ba + uint32(i)
			if a >= addr && a < addr+uint32(length) {
				buf[a-addr] = byte(orig >> (8 * i))
			}
		}
	}
	return hexEncode(buf)
}

func (s *Stub) writeMemHex(arg []byte) []byte {
	parts := bytes.SplitN(arg, []byte(":"), 2)
	if len(parts) != 2 {
		return []byte("E01")
	}
	addr, length, err := parseAddrLen(parts[0])
	if err != nil {
		return []byte("E01")
	}
	data, err := hexDecode(parts[1])
	if err != nil || len(data) != length {
		return []byte("E01")
	}
	return s.writeMem(addr, data)
}

func (s *Stub) writeMemBin(arg []byte) []byte {
	parts := bytes.SplitN(arg, []byte(":"), 2)
	if len(parts) != 2 {
		return []byte("E01")
	}
	addr, length, err := parseAddrLen(parts[0])
	if err != nil {
		return []byte("E01")
	}
	data := parts[1] // transport already unescaped
	if len(data) != length {
		return []byte("E01")
	}
	return s.writeMem(addr, data)
}

// writeMem stores bytes, keeping software breakpoints planted: writes
// covering a planted word update the saved original instead. The
// written range is invalidated in the ISS's decode cache — a debugger
// patching live code must not leave stale predecoded entries behind.
func (s *Stub) writeMem(addr uint32, data []byte) []byte {
	s.unplantAll()
	var werr error
	for i, b := range data {
		if werr = s.cpu.Bus().Write(addr+uint32(i), 1, uint32(b)); werr != nil {
			break
		}
	}
	s.cpu.InvalidateDecode(addr, uint32(len(data)))
	s.replantAll()
	if werr != nil {
		return []byte("E02")
	}
	return []byte("OK")
}

// pokeWord writes one word of guest memory on the debugger's behalf and
// drops its predecoded entry — EBREAK planting patches code under the
// ISS's feet.
func (s *Stub) pokeWord(addr, v uint32) error {
	err := s.cpu.Bus().Write(addr, 4, v)
	s.cpu.InvalidateDecode(addr, 4)
	return err
}

func (s *Stub) unplantAll() {
	for addr, orig := range s.planted {
		_ = s.pokeWord(addr, orig)
	}
}

func (s *Stub) replantAll() {
	for addr := range s.planted {
		v, _ := s.cpu.Bus().Read(addr, 4)
		s.planted[addr] = v
		_ = s.pokeWord(addr, isa.BreakpointWord)
	}
}

// parsePoint parses "type,addr,kind".
func parsePoint(arg []byte) (ptype int, addr uint32, kind int, err error) {
	_, err = fmt.Sscanf(string(arg), "%d,%x,%x", &ptype, &addr, &kind)
	return
}

// setPoint handles Z packets: Z0 = software breakpoint (EBREAK plant),
// Z1 = hardware breakpoint, Z2 = write watchpoint.
func (s *Stub) setPoint(arg []byte) []byte {
	ptype, addr, kind, err := parsePoint(arg)
	if err != nil {
		return []byte("E01")
	}
	switch ptype {
	case 0:
		if _, dup := s.planted[addr]; dup {
			return []byte("OK")
		}
		orig, err := s.cpu.Bus().Read(addr, 4)
		if err != nil {
			return []byte("E02")
		}
		if err := s.pokeWord(addr, isa.BreakpointWord); err != nil {
			return []byte("E02")
		}
		s.planted[addr] = orig
		return []byte("OK")
	case 1:
		s.cpu.AddBreakpoint(addr)
		return []byte("OK")
	case 2:
		if kind <= 0 {
			kind = 4
		}
		s.cpu.AddWatchpoint(addr, uint32(kind))
		return []byte("OK")
	}
	return []byte{} // unsupported point type
}

func (s *Stub) clearPoint(arg []byte) []byte {
	ptype, addr, _, err := parsePoint(arg)
	if err != nil {
		return []byte("E01")
	}
	switch ptype {
	case 0:
		if orig, ok := s.planted[addr]; ok {
			_ = s.pokeWord(addr, orig)
			delete(s.planted, addr)
		}
		return []byte("OK")
	case 1:
		s.cpu.RemoveBreakpoint(addr)
		return []byte("OK")
	case 2:
		s.cpu.RemoveWatchpoint(addr)
		return []byte("OK")
	}
	return []byte{}
}

// resumingFromBP reports whether the current PC is a breakpoint stop
// that was already reported to the debugger, consuming the flag.
func (s *Stub) resumingFromBP() bool {
	if s.haveReported && s.reportedBP == s.cpu.PC {
		s.haveReported = false
		return true
	}
	return false
}

// stopReply converts a CPU stop into an RSP stop-reply packet, or nil
// if execution should continue (budget exhausted).
func (s *Stub) stopReply(stop iss.Stop) []byte {
	s.haveReported = false
	switch stop {
	case iss.StopEBreak, iss.StopBreak:
		s.lastSignal = 5
		s.reportedBP = s.cpu.PC
		s.haveReported = true
		return []byte("T05swbreak:;")
	case iss.StopWatch:
		s.lastSignal = 5
		return []byte(fmt.Sprintf("T05watch:%x;", s.cpu.WatchHit()))
	case iss.StopHalt:
		return []byte("W00")
	case iss.StopEcall:
		s.lastSignal = 0x1f
		return []byte("S1f")
	case iss.StopError:
		s.lastSignal = 0x0b
		return []byte("S0b")
	}
	return nil
}

// breakInPending polls the connection for the 0x03 break-in byte
// without blocking, via the pump.
func (s *Stub) breakInPending() bool {
	if s.t.br.Buffered() == 0 && !s.pump.Readable() {
		return false
	}
	b, err := s.t.br.Peek(1)
	if err != nil || len(b) == 0 {
		return false
	}
	if b[0] == InterruptByte {
		_, _ = s.t.br.ReadByte()
		return true
	}
	return false
}

// runQuantum implements the qRun,<n> lock-step extension: run up to n
// instructions, replying "B<executed-hex>" when the budget is exhausted
// (target still runnable) or with a normal stop reply.
func (s *Stub) runQuantum(arg []byte) []byte {
	var budget uint64
	if _, err := fmt.Sscanf(string(arg), "%x", &budget); err != nil || budget == 0 {
		return []byte("E01")
	}
	var executed uint64

	// Step over a planted breakpoint only when resuming from its
	// reported stop.
	if orig, ok := s.planted[s.cpu.PC]; ok && s.resumingFromBP() {
		bpAddr := s.cpu.PC
		_ = s.pokeWord(bpAddr, orig)
		s.cpu.StepOverBreakpoint()
		before := s.cpu.Instructions()
		st := s.cpu.Step()
		executed += s.cpu.Instructions() - before
		_ = s.pokeWord(bpAddr, isa.BreakpointWord)
		if r := s.stopReply(st); r != nil && st != iss.StopBreak && st != iss.StopEBreak {
			return r
		}
	}
	if executed < budget {
		stop, n := s.cpu.Run(budget - executed)
		executed += n
		if r := s.stopReply(stop); r != nil {
			return r
		}
		// StopIdle (WFI) also reports as budget-exhausted: in lock-step
		// mode the master advances time and retries.
	}
	return []byte(fmt.Sprintf("B%x", executed))
}

// resume implements 'c' (continue) and 's' (step). An optional resume
// address may be given in arg.
func (s *Stub) resume(step bool, arg []byte) []byte {
	if len(arg) > 0 {
		var addr uint32
		if _, err := fmt.Sscanf(string(arg), "%x", &addr); err == nil {
			s.cpu.PC = addr
		}
	}

	// Stepping off a planted breakpoint: restore, execute one
	// instruction, replant.
	if orig, ok := s.planted[s.cpu.PC]; ok && s.resumingFromBP() {
		bpAddr := s.cpu.PC
		_ = s.pokeWord(bpAddr, orig)
		s.cpu.StepOverBreakpoint()
		st := s.cpu.Step()
		_ = s.pokeWord(bpAddr, isa.BreakpointWord)
		if r := s.stopReply(st); r != nil && st != iss.StopBreak && st != iss.StopEBreak {
			return r
		}
		if step {
			s.lastSignal = 5
			return []byte("S05")
		}
	} else if step {
		s.cpu.StepOverBreakpoint()
		st := s.cpu.Step()
		if r := s.stopReply(st); r != nil {
			return r
		}
		s.lastSignal = 5
		return []byte("S05")
	}

	for {
		stop, _ := s.cpu.Run(s.ChunkBudget)
		if r := s.stopReply(stop); r != nil {
			return r
		}
		switch stop {
		case iss.StopIdle:
			// WFI with nothing pending: wait for an external interrupt,
			// watching for break-in meanwhile.
			if s.breakInPending() {
				s.lastSignal = 2
				return []byte("S02")
			}
			time.Sleep(s.IdleSleep)
		default: // budget exhausted
			if s.breakInPending() {
				s.lastSignal = 2
				return []byte("S02")
			}
		}
	}
}
