package gdb

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"cosim/internal/isa"
)

func netPipe() (net.Conn, net.Conn) { return net.Pipe() }

// BreakWordForTest exposes the EBREAK encoding for shadow tests.
func BreakWordForTest() uint32 { return isa.BreakpointWord }

func TestWriteAllRegisters(t *testing.T) {
	cl, cpu, _ := newTarget(t, testProg, false)
	// Compose a G packet: read, tweak, write back.
	regs, err := cl.ReadRegisters()
	if err != nil {
		t.Fatal(err)
	}
	var payload []byte
	payload = append(payload, 'G')
	for i := 0; i < NumRSPRegs; i++ {
		var v uint32
		switch {
		case i < 32:
			v = uint32(i * 3)
		case i == RegPC:
			v = regs.PC
		}
		payload = append(payload, hexU32LE(v)...)
	}
	r, err := cl.transact(payload)
	if err != nil || string(r) != "OK" {
		t.Fatalf("G reply = %q, %v", r, err)
	}
	if cpu.Regs[5] != 15 || cpu.Regs[31] != 93 {
		t.Fatalf("regs after G: r5=%d r31=%d", cpu.Regs[5], cpu.Regs[31])
	}
	if cpu.Regs[0] != 0 {
		t.Fatal("G packet overwrote the zero register")
	}
}

func TestMemoryWriteOverPlantedBreakpoint(t *testing.T) {
	cl, cpu, im := newTarget(t, testProg, false)
	bp := im.MustSymbol("after")
	orig, _ := cpu.Bus().Read(bp, 4)
	if err := cl.SetBreakpoint(bp); err != nil {
		t.Fatal(err)
	}
	// Writing the same original bytes over the planted word must keep
	// the breakpoint armed and update the shadow.
	var origBytes [4]byte
	for i := range origBytes {
		origBytes[i] = byte(orig >> (8 * i))
	}
	if err := cl.WriteMemory(bp, origBytes[:]); err != nil {
		t.Fatal(err)
	}
	// Memory still holds EBREAK (breakpoint survives the write)...
	raw, _ := cpu.Bus().Read(bp, 4)
	if decoded, err := decodeWord(raw); err != nil || decoded != "ebreak" {
		t.Fatalf("memory at bp = %#x", raw)
	}
	// ...and the breakpoint still fires.
	_ = cl.Continue()
	ev, err := cl.WaitStop()
	if err != nil || ev.Signal != 5 {
		t.Fatalf("stop = %+v, %v", ev, err)
	}
}

func decodeWord(w uint32) (string, error) {
	if w == 0 {
		return "", nil
	}
	// tiny helper via isa through the stub's planted word
	if w == BreakWordForTest() {
		return "ebreak", nil
	}
	return "other", nil
}

func TestHaltReasonAfterStop(t *testing.T) {
	cl, _, im := newTarget(t, testProg, false)
	_ = cl.SetBreakpoint(im.MustSymbol("work"))
	_ = cl.Continue()
	if _, err := cl.WaitStop(); err != nil {
		t.Fatal(err)
	}
	ev, err := cl.HaltReason()
	if err != nil || ev.Signal != 5 {
		t.Fatalf("halt reason = %+v, %v", ev, err)
	}
}

func TestRegisterWriteChangesPC(t *testing.T) {
	cl, cpu, im := newTarget(t, testProg, false)
	target := im.MustSymbol("after")
	if err := cl.WriteRegister(RegPC, target); err != nil {
		t.Fatal(err)
	}
	if cpu.PC != target {
		t.Fatalf("pc = %#x", cpu.PC)
	}
	// Continue from the redirected PC: program runs addi+halt only.
	_ = cl.Continue()
	ev, _ := cl.WaitStop()
	if !ev.Exited {
		t.Fatalf("stop = %+v", ev)
	}
	if cpu.Regs[10] != 100 {
		t.Fatalf("a0 = %d, want 100 (skipped the earlier adds)", cpu.Regs[10])
	}
}

func TestBadPacketsGetErrors(t *testing.T) {
	cl, _, _ := newTarget(t, testProg, false)
	for _, pkt := range []string{"p999", "mzzzz,4", "M100", "Zx", "qRun,0", "P5"} {
		r, err := cl.transact([]byte(pkt))
		if err != nil {
			t.Fatalf("%q: %v", pkt, err)
		}
		if len(r) > 0 && r[0] == 'E' {
			continue // error reply, good
		}
		if len(r) == 0 {
			continue // unsupported, acceptable
		}
		t.Errorf("packet %q got non-error reply %q", pkt, r)
	}
}

func TestStatsCount(t *testing.T) {
	cl, _, _ := newTarget(t, testProg, false)
	before := cl.Stats()
	if _, err := cl.ReadRegisters(); err != nil {
		t.Fatal(err)
	}
	after := cl.Stats()
	if after.PacketsSent != before.PacketsSent+1 || after.PacketsRecv != before.PacketsRecv+1 {
		t.Fatalf("stats did not advance: %+v -> %+v", before, after)
	}
	if after.BytesSent == 0 || after.BytesRecv == 0 {
		t.Fatal("byte counters empty")
	}
}

func TestRetransmitOnNAK(t *testing.T) {
	// A transport facing a peer that NAKs once must retransmit.
	clientEnd, stubEnd := pipePair()
	defer clientEnd.Close()
	defer stubEnd.Close()
	tr := newTransport(clientEnd)
	go func() {
		buf := make([]byte, 256)
		n, _ := stubEnd.Read(buf) // first copy
		_, _ = stubEnd.Write([]byte{'-'})
		n, _ = stubEnd.Read(buf) // retransmission
		_ = n
		_, _ = stubEnd.Write([]byte{'+'})
	}()
	if err := tr.sendPacket([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if tr.stats.Retransmits != 1 {
		t.Fatalf("retransmits = %d", tr.stats.Retransmits)
	}
}

func TestOversizedPacketRejected(t *testing.T) {
	clientEnd, stubEnd := pipePair()
	defer clientEnd.Close()
	defer stubEnd.Close()
	tr := newTransport(clientEnd)
	go func() {
		_, _ = stubEnd.Write([]byte{'$'})
		junk := bytes.Repeat([]byte{'a'}, MaxPacketSize*2+10)
		_, _ = stubEnd.Write(junk)
	}()
	if _, err := tr.readPacket(); err == nil {
		t.Fatal("oversized packet accepted")
	}
}

// pipePair and BreakWordForTest are small indirections so the tests
// avoid extra imports.
func pipePair() (a, b interface {
	Read([]byte) (int, error)
	Write([]byte) (int, error)
	Close() error
}) {
	x, y := netPipe()
	return x, y
}

func TestTargetDescriptionXML(t *testing.T) {
	cl, _, _ := newTarget(t, testProg, false)
	feat, err := cl.QuerySupported()
	if err != nil || !bytes.Contains([]byte(feat), []byte("qXfer:features:read+")) {
		t.Fatalf("features = %q, %v", feat, err)
	}
	// Read the description in two windows and reassemble.
	var xml []byte
	off := 0
	for {
		r, err := cl.transact([]byte(fmt.Sprintf("qXfer:features:read:target.xml:%x,%x", off, 128)))
		if err != nil {
			t.Fatal(err)
		}
		if len(r) == 0 {
			t.Fatal("empty qXfer reply")
		}
		xml = append(xml, r[1:]...)
		off += len(r) - 1
		if r[0] == 'l' {
			break
		}
		if r[0] != 'm' {
			t.Fatalf("bad marker %q", r[0])
		}
	}
	for _, want := range []string{"<architecture>fv32</architecture>", `name="sp"`, `name="pc"`, `name="cycleh"`} {
		if !bytes.Contains(xml, []byte(want)) {
			t.Fatalf("target.xml missing %q:\n%s", want, xml)
		}
	}
	if _, err := cl.transact([]byte("qXfer:features:read:target.xml:zz")); err != nil {
		t.Fatal(err)
	}
}
