// Package gdb implements the GDB Remote Serial Protocol (RSP): the
// "$data#checksum" packet framing, a target-side stub that debugs an
// iss.CPU, and a host-side client offering typed debugging operations.
//
// The paper's GDB-Wrapper and GDB-Kernel co-simulation schemes use this
// interface between the SystemC side and the ISS, exactly as [14]
// proposed gdb's remote debugging primitives as the standard ISS
// integration interface. The protocol is implemented at the wire level
// (escaping, acknowledgements, retransmission) so its costs are real.
package gdb

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"
)

// InterruptByte is the out-of-band break-in character (Ctrl-C).
const InterruptByte = 0x03

// MaxPacketSize is the advertised maximum payload size.
const MaxPacketSize = 4096

// ErrInterrupt is returned by readPacket when the peer sends the
// break-in byte instead of a packet.
var ErrInterrupt = errors.New("gdb: interrupt received")

// checksum computes the RSP modulo-256 sum.
func checksum(b []byte) byte {
	var s byte
	for _, c := range b {
		s += c
	}
	return s
}

// escape applies RSP escaping to the payload ($, #, } and * are
// represented as 0x7d followed by the character xored with 0x20).
func escape(b []byte) []byte {
	var out []byte
	for _, c := range b {
		switch c {
		case '$', '#', '}', '*':
			out = append(out, 0x7d, c^0x20)
		default:
			out = append(out, c)
		}
	}
	return out
}

// unescape reverses escape.
func unescape(b []byte) []byte {
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); i++ {
		if b[i] == 0x7d && i+1 < len(b) {
			i++
			out = append(out, b[i]^0x20)
		} else {
			out = append(out, b[i])
		}
	}
	return out
}

// Stats counts protocol traffic, used by the benchmark harness to
// attribute co-simulation overhead.
type Stats struct {
	PacketsSent uint64
	PacketsRecv uint64
	BytesSent   uint64
	BytesRecv   uint64
	Retransmits uint64
	// RoundTrips counts synchronous command/reply transactions (the
	// blocking IPC exchanges the paper's Table 1 attributes lock-step
	// overhead to). Asynchronous stop replies are not round trips.
	RoundTrips uint64
}

// transport frames packets over an io.ReadWriter with acknowledgement
// handling. It is used by both the stub and the client.
type transport struct {
	rw io.ReadWriter
	br *bufio.Reader

	writeMu   sync.Mutex
	wrScratch []byte // frame build buffer, reused under writeMu
	rdBody    []byte // packet body scratch, reused by the (single) reader
	stats     Stats
}

func newTransport(rw io.ReadWriter) *transport {
	return &transport{rw: rw, br: bufio.NewReaderSize(rw, MaxPacketSize)}
}

// appendFrame appends "$<escaped payload>#<checksum>" to dst. The RSP
// checksum covers the escaped payload bytes.
func appendFrame(dst, payload []byte) []byte {
	dst = append(dst, '$')
	var sum byte
	for _, c := range payload {
		switch c {
		case '$', '#', '}', '*':
			dst = append(dst, 0x7d, c^0x20)
			sum += 0x7d + (c ^ 0x20)
		default:
			dst = append(dst, c)
			sum += c
		}
	}
	return append(dst, '#', hexDigits[sum>>4], hexDigits[sum&0xf])
}

// sendPacket writes one framed packet and waits for the peer's ack.
// On '-' (NAK) it retransmits, up to a small retry bound.
func (t *transport) sendPacket(payload []byte) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	frame := appendFrame(t.wrScratch[:0], payload)
	t.wrScratch = frame[:0]

	for attempt := 0; attempt < 5; attempt++ {
		if _, err := t.rw.Write(frame); err != nil {
			return err
		}
		t.stats.PacketsSent++
		t.stats.BytesSent += uint64(len(frame))
		ack, err := t.br.ReadByte()
		if err != nil {
			return err
		}
		switch ack {
		case '+':
			return nil
		case '-':
			t.stats.Retransmits++
			continue
		default:
			// Not an ack (e.g. an interrupt raced in); push back and
			// treat the packet as delivered.
			_ = t.br.UnreadByte()
			return nil
		}
	}
	return errors.New("gdb: too many retransmissions")
}

// sendReplyNoAckWait writes a packet without waiting for the ack byte;
// the ack is consumed lazily by the next read. Used by the stub for
// asynchronous stop replies so it cannot deadlock against a peer that
// polls.
func (t *transport) sendReplyNoAckWait(payload []byte) error {
	t.writeMu.Lock()
	defer t.writeMu.Unlock()
	frame := appendFrame(t.wrScratch[:0], payload)
	t.wrScratch = frame[:0]
	if _, err := t.rw.Write(frame); err != nil {
		return err
	}
	t.stats.PacketsSent++
	t.stats.BytesSent += uint64(len(frame))
	return nil
}

// readPacket reads one packet payload, acknowledging it. Stray acks are
// skipped. The interrupt byte surfaces as ErrInterrupt. The returned
// payload is freshly allocated (callers may retain it); the raw body is
// accumulated in a reused scratch buffer, so readPacket must not be
// called from two goroutines at once (the stub's serve loop and the
// client's single reader both satisfy this).
func (t *transport) readPacket() ([]byte, error) {
	for {
		c, err := t.br.ReadByte()
		if err != nil {
			return nil, err
		}
		switch c {
		case '+', '-':
			continue // ack for a no-ack-wait send, or line noise
		case InterruptByte:
			return nil, ErrInterrupt
		case '$':
		default:
			continue
		}

		body := t.rdBody[:0]
		for {
			c, err := t.br.ReadByte()
			if err != nil {
				return nil, err
			}
			if c == '#' {
				break
			}
			body = append(body, c)
			if len(body) > MaxPacketSize*2 {
				return nil, errors.New("gdb: oversized packet")
			}
		}
		t.rdBody = body[:0] // keep the grown array for the next packet
		var sum [2]byte
		if _, err := io.ReadFull(t.br, sum[:]); err != nil {
			return nil, err
		}
		want, err := parseHexByte(sum[0], sum[1])
		if err != nil {
			return nil, err
		}
		if checksum(body) != want {
			if _, err := t.rw.Write([]byte{'-'}); err != nil {
				return nil, err
			}
			continue
		}
		if _, err := t.rw.Write([]byte{'+'}); err != nil {
			return nil, err
		}
		t.stats.PacketsRecv++
		t.stats.BytesRecv += uint64(len(body) + 4)
		expanded, err := expandRLE(body)
		if err != nil {
			return nil, err
		}
		return unescape(expanded), nil
	}
}

// expandRLE decodes RSP run-length encoding: "c*N" repeats c a further
// N-29 times (N is a printable byte > 28). Escaped '*' bytes are
// protected by the 0x7d escape, so every raw '*' is an RLE marker.
// This implementation never produces RLE but accepts it, as any RSP
// peer must.
func expandRLE(b []byte) ([]byte, error) {
	if !bytesContains(b, '*') {
		return b, nil
	}
	out := make([]byte, 0, len(b))
	for i := 0; i < len(b); i++ {
		c := b[i]
		if c == 0x7d && i+1 < len(b) {
			out = append(out, c, b[i+1])
			i++
			continue
		}
		if c != '*' {
			out = append(out, c)
			continue
		}
		if len(out) == 0 || i+1 >= len(b) {
			return nil, errors.New("gdb: malformed run-length encoding")
		}
		n := int(b[i+1]) - 29
		i++
		if n < 0 {
			return nil, errors.New("gdb: bad run-length count")
		}
		rep := out[len(out)-1]
		for j := 0; j < n; j++ {
			out = append(out, rep)
		}
		if len(out) > MaxPacketSize*4 {
			return nil, errors.New("gdb: run-length expansion too large")
		}
	}
	return out, nil
}

func bytesContains(b []byte, c byte) bool {
	for _, x := range b {
		if x == c {
			return true
		}
	}
	return false
}

const hexDigits = "0123456789abcdef"

func parseHexByte(hi, lo byte) (byte, error) {
	h, err1 := hexVal(hi)
	l, err2 := hexVal(lo)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("gdb: bad hex byte %c%c", hi, lo)
	}
	return h<<4 | l, nil
}

func hexVal(c byte) (byte, error) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', nil
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, nil
	case c >= 'A' && c <= 'F':
		return c - 'A' + 10, nil
	}
	return 0, fmt.Errorf("gdb: bad hex digit %q", string(c))
}

// hexEncode renders bytes as lowercase hex.
func hexEncode(b []byte) []byte {
	out := make([]byte, 2*len(b))
	for i, c := range b {
		out[2*i] = hexDigits[c>>4]
		out[2*i+1] = hexDigits[c&0xf]
	}
	return out
}

// hexDecode parses hex back to bytes.
func hexDecode(b []byte) ([]byte, error) {
	if len(b)%2 != 0 {
		return nil, errors.New("gdb: odd-length hex")
	}
	out := make([]byte, len(b)/2)
	for i := range out {
		v, err := parseHexByte(b[2*i], b[2*i+1])
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// hexU32 renders a 32-bit value as 8 hex digits (target byte order:
// little-endian, per RSP register conventions).
func hexU32LE(v uint32) []byte {
	return hexEncode([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// parseU32LE decodes 8 hex digits of little-endian register data.
func parseU32LE(b []byte) (uint32, error) {
	raw, err := hexDecode(b)
	if err != nil || len(raw) != 4 {
		return 0, fmt.Errorf("gdb: bad register hex %q", b)
	}
	return uint32(raw[0]) | uint32(raw[1])<<8 | uint32(raw[2])<<16 | uint32(raw[3])<<24, nil
}
