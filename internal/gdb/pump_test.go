package gdb

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// failingReader serves its data, then fails with err.
type failingReader struct {
	data []byte
	err  error
}

func (r *failingReader) Read(b []byte) (int, error) {
	if len(r.data) > 0 {
		n := copy(b, r.data)
		r.data = r.data[n:]
		return n, nil
	}
	return 0, r.err
}

// TestPumpPropagatesReadError is the regression test for the swallowed
// connection error: the pump used to flatten every failure to io.EOF.
func TestPumpPropagatesReadError(t *testing.T) {
	connErr := errors.New("connection reset by peer")
	p := newPumpReader(&failingReader{data: []byte("hello"), err: connErr})

	got, err := io.ReadAll(p)
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("data before the failure lost: %q", got)
	}
	if !errors.Is(err, connErr) {
		t.Fatalf("Read error = %v, want the underlying %v", err, connErr)
	}
	if p.Err() != connErr {
		t.Fatalf("Err() = %v, want %v", p.Err(), connErr)
	}
	// Once failed, a Read keeps reporting the real error, and Readable
	// reports the pending error as readiness.
	if _, err := p.Read(make([]byte, 1)); !errors.Is(err, connErr) {
		t.Fatalf("repeated Read error = %v", err)
	}
	if !p.Readable() {
		t.Error("Readable() should report a pending terminal error")
	}
}

func TestPumpCleanEOF(t *testing.T) {
	p := newPumpReader(&failingReader{data: []byte("bye"), err: io.EOF})
	got, err := io.ReadAll(p)
	if err != nil || !bytes.Equal(got, []byte("bye")) {
		t.Fatalf("ReadAll = %q, %v", got, err)
	}
	if _, err := p.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("Read after close = %v, want io.EOF", err)
	}
	if p.Readable() {
		t.Error("Readable() after clean EOF should be false")
	}
	if p.Err() != nil {
		t.Errorf("Err() after clean EOF = %v, want nil", p.Err())
	}
}

// TestPumpChunkRecyclingIntegrity pushes far more data than the chunk
// pool holds, in awkward read sizes, and checks nothing is corrupted by
// buffer reuse.
func TestPumpChunkRecyclingIntegrity(t *testing.T) {
	src := make([]byte, 64*1024)
	for i := range src {
		src[i] = byte(i * 31)
	}
	p := newPumpReader(bytes.NewReader(src))

	var got []byte
	buf := make([]byte, 7) // deliberately misaligned with the 512-byte chunks
	for {
		n, err := p.Read(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, src) {
		t.Fatal("data corrupted through chunk recycling")
	}
}

// slowReader trickles bytes so Readable has both outcomes to observe.
type slowReader struct {
	ch chan byte
}

func (r *slowReader) Read(b []byte) (int, error) {
	c, ok := <-r.ch
	if !ok {
		return 0, io.EOF
	}
	b[0] = c
	return 1, nil
}

func TestPumpReadable(t *testing.T) {
	ch := make(chan byte)
	p := newPumpReader(&slowReader{ch: ch})
	if p.Readable() {
		t.Fatal("Readable() true with nothing written")
	}
	ch <- 0x2a
	deadline := time.Now().Add(2 * time.Second)
	for !p.Readable() {
		if time.Now().After(deadline) {
			t.Fatal("Readable() never became true")
		}
		time.Sleep(time.Millisecond)
	}
	var b [1]byte
	if n, err := p.Read(b[:]); n != 1 || err != nil || b[0] != 0x2a {
		t.Fatalf("Read = %d, %v, %#x", n, err, b[0])
	}
	close(ch)
}
