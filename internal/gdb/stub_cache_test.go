package gdb

import (
	"fmt"
	"testing"
	"time"

	"cosim/internal/isa"
)

// warmLoopProg spins forever; one iteration is three instructions.
const warmLoopProg = `
_start:
loop:
    addi s0, s0, 1
target:
    addi a0, a0, 5
    j    loop
`

// breakpointWordBytes is isa.BreakpointWord in wire (little-endian)
// byte order, as a debugger writes it into target memory.
func breakpointWordBytes() []byte {
	w := make([]byte, 4)
	for i := range w {
		w[i] = byte(isa.BreakpointWord >> (8 * i))
	}
	return w
}

// runToEBreak resumes the target and requires a SIGTRAP stop at want.
// A stale predecoded entry would keep executing the overwritten
// instruction, so a timeout here means the cache was not invalidated.
func runToEBreak(t *testing.T, cl *Client, want uint32) {
	t.Helper()
	if err := cl.Continue(); err != nil {
		t.Fatal(err)
	}
	ev, ok, err := cl.WaitStopTimeout(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no stop: EBREAK written through the stub never fired")
	}
	if ev.Signal != 5 {
		t.Fatalf("signal = %d, want 5 (SIGTRAP)", ev.Signal)
	}
	pc, err := cl.ReadPC()
	if err != nil {
		t.Fatal(err)
	}
	if pc != want {
		t.Fatalf("stopped at %#x, want %#x", pc, want)
	}
}

// TestSoftwareBreakpointViaMPacket covers debuggers that place
// breakpoints with plain memory writes (M packet) instead of Z0: the
// write lands in code the CPU has already executed and predecoded, so
// the stub must invalidate the decode cache for the EBREAK to fire.
func TestSoftwareBreakpointViaMPacket(t *testing.T) {
	cl, cpu, im := newTarget(t, warmLoopProg, true)
	if !cpu.DecodeCacheEnabled() {
		t.Fatal("decode cache unexpectedly disabled")
	}
	// Execute one full loop iteration so every instruction, including
	// the one at target, is already decoded.
	for i := 0; i < 3; i++ {
		if _, err := cl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	target := im.MustSymbol("target")
	if err := cl.WriteMemory(target, breakpointWordBytes()); err != nil {
		t.Fatal(err)
	}
	runToEBreak(t, cl, target)
	if _, _, inv := cpu.DecodeCacheStats(); inv == 0 {
		t.Error("stub memory write caused no decode invalidation")
	}
}

// TestSoftwareBreakpointViaXPacket is the binary-write twin: the same
// EBREAK patch delivered through an X packet must also invalidate.
func TestSoftwareBreakpointViaXPacket(t *testing.T) {
	cl, _, im := newTarget(t, warmLoopProg, true)
	for i := 0; i < 3; i++ {
		if _, err := cl.Step(); err != nil {
			t.Fatal(err)
		}
	}
	target := im.MustSymbol("target")
	data := escape(breakpointWordBytes())
	pkt := append([]byte(fmt.Sprintf("X%x,%x:", target, 4)), data...)
	r, err := cl.transact(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkOK(r, "X write"); err != nil {
		t.Fatal(err)
	}
	runToEBreak(t, cl, target)
}
