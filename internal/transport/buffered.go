package transport

import "bufio"

// Buffered wraps ep's write side in a bufio.Writer so frame-per-message
// protocols can batch several frames per flush — the optional batched
// frame I/O of the transport layer. The wrapper implements Flusher;
// consumers that batch (the Driver-Kernel scheme) flush at their hook
// boundaries, so a buffered reply is never left unsent past a point the
// guest may block on it. Close flushes before closing ep.
func Buffered(ep Endpoint, size int) Endpoint {
	if size <= 0 {
		size = 4096
	}
	return &bufferedEndpoint{ep: ep, bw: bufio.NewWriterSize(ep, size)}
}

type bufferedEndpoint struct {
	ep Endpoint
	bw *bufio.Writer
}

func (b *bufferedEndpoint) Read(p []byte) (int, error)  { return b.ep.Read(p) }
func (b *bufferedEndpoint) Write(p []byte) (int, error) { return b.bw.Write(p) }
func (b *bufferedEndpoint) Flush() error                { return b.bw.Flush() }

// RecordBatch forwards coalescing reports to the wrapped endpoint, so
// Buffered composes with Observed's batch accounting in either order.
func (b *bufferedEndpoint) RecordBatch(n int) { RecordBatch(b.ep, n) }

func (b *bufferedEndpoint) Close() error {
	flushErr := b.bw.Flush()
	closeErr := b.ep.Close()
	if flushErr != nil {
		return flushErr
	}
	return closeErr
}
