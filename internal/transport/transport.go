// Package transport is the pluggable interconnect between the two
// simulator processes of the paper's co-simulation schemes: the
// SystemC-side kernel and the software simulator (GDB stub or RTOS
// guest). The paper fixes this link as host-OS sockets; here it is a
// first-class abstraction with three socket-free and socket-backed
// backends, so the same scheme code runs over loopback TCP, Unix domain
// sockets, or an in-process ring buffer that skips the kernel socket
// layer entirely for same-process co-simulation.
//
// Teardown ownership rules (the contract every backend honours):
//
//   - Every endpoint a Transport hands out implements io.Closer.
//   - Close unblocks the endpoint's own pending Read and the peer's:
//     a reader goroutine blocked on either end terminates once either
//     end is closed.
//   - After Close, the peer's reads drain buffered data and then see
//     io.EOF; its writes fail.
//   - Close is idempotent.
//
// Consumers therefore register teardown via the io.Closer interface —
// never via a net.Conn type assertion, which would silently skip
// non-socket backends and leak their reader goroutines (the cosimvet
// transportclose rule enforces this outside this package).
package transport

import (
	"fmt"
	"io"
	"strings"
)

// Endpoint is one end of a co-simulation channel. It is an alias, not a
// named interface, so net.Conn values satisfy it directly and endpoints
// flow into io.ReadWriter parameters without conversion.
type Endpoint = io.ReadWriteCloser

// Listener accepts kernel-side endpoints — the listen half of the
// split dial/listen attachment used when the two simulators do not
// share a constructor (a co-simulation server, an external guest).
type Listener interface {
	// Accept blocks until a peer dials and returns the accepted
	// endpoint. After Close it returns an error.
	Accept() (Endpoint, error)
	// Addr is the dialable address of this listener, in the backend's
	// own notation ("127.0.0.1:43713", "/tmp/x/t.sock", "ring:7").
	Addr() string
	// Close releases the listener. Errors are meaningful (a Unix socket
	// file that cannot be removed, for example) and must be propagated,
	// not discarded.
	Close() error
}

// Transport selects how the two simulators are connected and
// constructs the connection — either as a pre-wired pair (both ends in
// one process, the harness's shape) or through dial/listen.
type Transport interface {
	// Name is the backend's flag-surface name ("tcp", "unix", "ring",
	// "pipe").
	Name() string
	// Pair returns a connected endpoint pair: host is the kernel side,
	// guest the simulator side.
	Pair() (host, guest Endpoint, err error)
	// Listen opens a listener at a backend-chosen address.
	Listen() (Listener, error)
	// Dial connects to a listener's Addr.
	Dial(addr string) (Endpoint, error)
}

// Flusher is optionally implemented by endpoints that batch frames
// (Buffered, or any custom buffering channel). Schemes call Flush at
// batch boundaries — end of a cycle hook, before a conservative wait —
// so a buffered reply is never left unsent past a point the guest may
// block on it.
type Flusher interface {
	Flush() error
}

// Flush flushes w if it batches writes, and is a no-op otherwise.
func Flush(w io.Writer) error {
	if f, ok := w.(Flusher); ok {
		return f.Flush()
	}
	return nil
}

// BatchRecorder is optionally implemented by endpoints that account for
// message coalescing (Observed's counted endpoints). A protocol writer
// that packs n>1 messages into one envelope reports it here so the
// transport layer can expose coalescing effectiveness without decoding
// frames itself.
type BatchRecorder interface {
	RecordBatch(msgs int)
}

// RecordBatch reports a coalesced write of msgs messages on w, if w
// accounts for batches; otherwise it is a no-op.
func RecordBatch(w io.Writer, msgs int) {
	if r, ok := w.(BatchRecorder); ok {
		r.RecordBatch(msgs)
	}
}

// The built-in backends. All are stateless handles; the ring backend's
// listener registry is process-global state behind the handle.
var (
	// TCP connects over loopback TCP — the paper's configuration, with
	// genuine syscall and protocol-stack costs.
	TCP Transport = tcpTransport{}
	// Unix connects over a Unix domain socket: host-OS IPC without the
	// TCP/IP stack.
	Unix Transport = unixTransport{}
	// Ring connects through in-process ring buffers: no sockets, no
	// syscalls — the same-process fast path.
	Ring Transport = ringTransport{}
	// Pipe connects through net.Pipe: synchronous, unbuffered
	// in-process channels (every write rendezvouses with a read). Kept
	// for deterministic tests; Ring is the buffered in-process path.
	Pipe Transport = pipeTransport{}
)

// All lists the built-in backends in sweep order.
func All() []Transport { return []Transport{TCP, Unix, Ring, Pipe} }

// Parse resolves a backend by (case-insensitive) flag name.
func Parse(name string) (Transport, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "tcp":
		return TCP, nil
	case "unix":
		return Unix, nil
	case "ring":
		return Ring, nil
	case "pipe":
		return Pipe, nil
	}
	return nil, fmt.Errorf("transport: unknown transport %q (want tcp, unix, ring or pipe)", name)
}
