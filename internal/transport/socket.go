package transport

import (
	"errors"
	"net"
	"os"
	"path/filepath"
)

// tcpTransport is the loopback-TCP backend.
type tcpTransport struct{}

func (tcpTransport) Name() string { return "tcp" }

func (tcpTransport) Listen() (Listener, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	return netListener{ln}, nil
}

func (tcpTransport) Dial(addr string) (Endpoint, error) { return net.Dial("tcp", addr) }

func (t tcpTransport) Pair() (host, guest Endpoint, err error) { return socketPair(t) }

// unixTransport is the Unix-domain-socket backend. Every listener owns
// a private temporary directory for its socket file, removed on Close.
type unixTransport struct{}

func (unixTransport) Name() string { return "unix" }

func (unixTransport) Listen() (Listener, error) {
	dir, err := os.MkdirTemp("", "cosim-uds-")
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("unix", filepath.Join(dir, "cosim.sock"))
	if err != nil {
		_ = os.RemoveAll(dir)
		return nil, err
	}
	return &unixListener{ln: ln, dir: dir}, nil
}

func (unixTransport) Dial(addr string) (Endpoint, error) { return net.Dial("unix", addr) }

func (t unixTransport) Pair() (host, guest Endpoint, err error) { return socketPair(t) }

// netListener adapts a net.Listener to the transport.Listener shape.
type netListener struct{ ln net.Listener }

func (l netListener) Accept() (Endpoint, error) { return l.ln.Accept() }
func (l netListener) Addr() string              { return l.ln.Addr().String() }
func (l netListener) Close() error              { return l.ln.Close() }

// unixListener additionally removes the socket's directory on Close.
// A removal failure is reported, not discarded: a lingering socket file
// would poison a later listener at the same path.
type unixListener struct {
	ln  net.Listener
	dir string
}

func (l *unixListener) Accept() (Endpoint, error) { return l.ln.Accept() }
func (l *unixListener) Addr() string              { return l.ln.Addr().String() }
func (l *unixListener) Close() error {
	return errors.Join(l.ln.Close(), os.RemoveAll(l.dir))
}

// socketPair builds a connected pair with a throwaway listener: listen,
// dial, accept, close the listener. The accept goroutine owns one
// connection end until it is reaped, so every exit path collects it —
// on a dial failure the listener is closed first (unblocking a pending
// Accept) and any connection it nevertheless accepted is closed rather
// than leaked. Listener close errors are propagated: for the Unix
// backend a failed socket-file removal is a real resource leak.
func socketPair(t Transport) (host, guest Endpoint, err error) {
	ln, err := t.Listen()
	if err != nil {
		return nil, nil, err
	}
	type res struct {
		c   Endpoint
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	guest, dialErr := t.Dial(ln.Addr())
	if dialErr != nil {
		closeErr := ln.Close()
		if r := <-ch; r.c != nil {
			_ = r.c.Close()
		}
		return nil, nil, errors.Join(dialErr, closeErr)
	}
	r := <-ch
	closeErr := ln.Close()
	if r.err != nil {
		_ = guest.Close()
		return nil, nil, errors.Join(r.err, closeErr)
	}
	if closeErr != nil {
		_ = guest.Close()
		_ = r.c.Close()
		return nil, nil, closeErr
	}
	return r.c, guest, nil
}

// pipeTransport is the net.Pipe backend: endpoints only exist in
// pre-wired pairs, so the dial/listen half is not available.
type pipeTransport struct{}

func (pipeTransport) Name() string { return "pipe" }

func (pipeTransport) Pair() (host, guest Endpoint, err error) {
	h, g := net.Pipe()
	return h, g, nil
}

// errPipeNoAddress reports the pipe backend's missing address space.
var errPipeNoAddress = errors.New("transport: pipe endpoints have no address space; use Pair, or the ring transport for in-process dial/listen")

func (pipeTransport) Listen() (Listener, error)     { return nil, errPipeNoAddress }
func (pipeTransport) Dial(string) (Endpoint, error) { return nil, errPipeNoAddress }
