package transport

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"cosim/internal/obs"
)

// withEachBackend runs the check once per built-in backend.
func withEachBackend(t *testing.T, fn func(t *testing.T, tr Transport)) {
	t.Helper()
	for _, tr := range All() {
		t.Run(tr.Name(), func(t *testing.T) { fn(t, tr) })
	}
}

// readFull reads exactly len(p) bytes, failing the test on timeout via
// the caller's deadline goroutine.
func readFull(t *testing.T, r io.Reader, p []byte) {
	t.Helper()
	if _, err := io.ReadFull(r, p); err != nil {
		t.Fatalf("read: %v", err)
	}
}

func TestPairRoundTrip(t *testing.T) {
	withEachBackend(t, func(t *testing.T, tr Transport) {
		host, guest, err := tr.Pair()
		if err != nil {
			t.Fatal(err)
		}
		defer host.Close()
		defer guest.Close()

		// Both directions; pipe is synchronous, so writes go in
		// goroutines.
		go func() { _, _ = host.Write([]byte("ping")) }()
		buf := make([]byte, 4)
		readFull(t, guest, buf)
		if string(buf) != "ping" {
			t.Fatalf("guest read %q", buf)
		}
		go func() { _, _ = guest.Write([]byte("pong")) }()
		readFull(t, host, buf)
		if string(buf) != "pong" {
			t.Fatalf("host read %q", buf)
		}
	})
}

// TestCloseUnblocksOwnRead is the teardown property the kernel's
// finalizers rely on: a reader goroutine blocked on an endpoint must
// return once that endpoint is closed.
func TestCloseUnblocksOwnRead(t *testing.T) {
	withEachBackend(t, func(t *testing.T, tr Transport) {
		host, guest, err := tr.Pair()
		if err != nil {
			t.Fatal(err)
		}
		defer guest.Close()
		done := make(chan error, 1)
		go func() {
			_, err := host.Read(make([]byte, 1))
			done <- err
		}()
		time.Sleep(10 * time.Millisecond) // let the read block
		if err := host.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("blocked read returned nil error after close")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("read still blocked 2s after close")
		}
	})
}

// TestPeerCloseEOF: closing one end makes the peer's reads drain and
// terminate, and its writes fail.
func TestPeerCloseEOF(t *testing.T) {
	withEachBackend(t, func(t *testing.T, tr Transport) {
		host, guest, err := tr.Pair()
		if err != nil {
			t.Fatal(err)
		}
		defer guest.Close()
		go func() {
			_, _ = host.Write([]byte("last"))
			_ = host.Close()
		}()
		data, _ := io.ReadAll(guest)
		if !bytes.Equal(data, []byte("last")) {
			t.Fatalf("drained %q, want %q", data, "last")
		}
		// The peer's writes must fail (possibly after a buffered grace
		// window on socket backends — retry briefly).
		deadline := time.Now().Add(2 * time.Second)
		for {
			if _, err := guest.Write([]byte("x")); err != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("writes to a closed peer still succeed after 2s")
			}
			time.Sleep(5 * time.Millisecond)
		}
	})
}

func TestRingWriteAfterCloseFails(t *testing.T) {
	host, guest, err := Ring.Pair()
	if err != nil {
		t.Fatal(err)
	}
	if err := guest.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := host.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("write after close = %v, want io.ErrClosedPipe", err)
	}
	if err := guest.Close(); err != nil { // idempotent
		t.Fatalf("second close: %v", err)
	}
}

// TestRingWrap pushes more data than the buffer holds through a slow
// reader, exercising the wraparound copies in both read and write.
func TestRingWrap(t *testing.T) {
	a := newRingBuf(16)
	const total = 1000
	done := make(chan error, 1)
	go func() {
		for i := 0; i < total; i++ {
			if _, err := a.write([]byte{byte(i)}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	got := make([]byte, 0, total)
	buf := make([]byte, 7)
	for len(got) < total {
		n, err := a.read(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, buf[:n]...)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != byte(i) {
			t.Fatalf("byte %d = %#x, want %#x", i, b, byte(i))
		}
	}
}

func TestListenDial(t *testing.T) {
	for _, tr := range []Transport{TCP, Unix, Ring} {
		t.Run(tr.Name(), func(t *testing.T) {
			ln, err := tr.Listen()
			if err != nil {
				t.Fatal(err)
			}
			type res struct {
				ep  Endpoint
				err error
			}
			ch := make(chan res, 1)
			go func() {
				ep, err := ln.Accept()
				ch <- res{ep, err}
			}()
			guest, err := tr.Dial(ln.Addr())
			if err != nil {
				t.Fatal(err)
			}
			r := <-ch
			if r.err != nil {
				t.Fatal(r.err)
			}
			if err := ln.Close(); err != nil {
				t.Fatalf("listener close: %v", err)
			}
			go func() { _, _ = r.ep.Write([]byte("hi")) }()
			buf := make([]byte, 2)
			readFull(t, guest, buf)
			if string(buf) != "hi" {
				t.Fatalf("read %q", buf)
			}
			_ = r.ep.Close()
			_ = guest.Close()

			// A closed listener rejects both halves.
			if _, err := tr.Dial(ln.Addr()); err == nil {
				t.Fatal("dial after listener close succeeded")
			}
			if _, err := ln.Accept(); err == nil {
				t.Fatal("accept after close succeeded")
			}
		})
	}
}

func TestPipeHasNoAddressSpace(t *testing.T) {
	if _, err := Pipe.Listen(); err == nil {
		t.Fatal("pipe Listen succeeded")
	}
	if _, err := Pipe.Dial("x"); err == nil {
		t.Fatal("pipe Dial succeeded")
	}
}

func TestParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Transport
	}{
		{"tcp", TCP}, {"UNIX", Unix}, {" ring ", Ring}, {"pipe", Pipe},
	} {
		tr, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if tr.Name() != tc.want.Name() {
			t.Fatalf("Parse(%q) = %s", tc.in, tr.Name())
		}
	}
	if _, err := Parse("carrier-pigeon"); err == nil {
		t.Fatal("Parse accepted an unknown backend")
	}
}

func TestBufferedFlushAndClose(t *testing.T) {
	host, guest, err := Ring.Pair()
	if err != nil {
		t.Fatal(err)
	}
	b := Buffered(host, 1<<10)
	if _, err := b.Write([]byte("held")); err != nil {
		t.Fatal(err)
	}
	// Unflushed data must not be visible yet (ring reads don't block
	// when probed via a racing goroutine; use a short poll instead).
	read := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 4)
		if _, err := io.ReadFull(guest, buf); err == nil {
			read <- buf
		}
	}()
	select {
	case <-read:
		t.Fatal("bytes visible before Flush")
	case <-time.After(50 * time.Millisecond):
	}
	if err := Flush(b); err != nil {
		t.Fatal(err)
	}
	select {
	case buf := <-read:
		if string(buf) != "held" {
			t.Fatalf("read %q", buf)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flushed bytes never arrived")
	}

	// Close flushes the residue.
	if _, err := b.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(guest)
	if !bytes.Equal(data, []byte("tail")) {
		t.Fatalf("after close drained %q, want %q", data, "tail")
	}
}

func TestFlushIsNoOpOnPlainWriters(t *testing.T) {
	var sink bytes.Buffer
	if err := Flush(&sink); err != nil {
		t.Fatal(err)
	}
}

func TestObservedCounters(t *testing.T) {
	reg := obs.NewRegistry()
	tr := Observed(Ring, reg)
	host, guest, err := tr.Pair()
	if err != nil {
		t.Fatal(err)
	}
	defer guest.Close()
	defer host.Close()
	go func() { _, _ = host.Write([]byte("abcde")) }()
	buf := make([]byte, 5)
	readFull(t, guest, buf)
	go func() { _, _ = guest.Write([]byte("xyz")) }()
	readFull(t, host, buf[:3])

	if got := reg.Counter("transport.ring.pairs").Load(); got != 1 {
		t.Fatalf("pairs = %d", got)
	}
	if got := reg.Counter("transport.ring.tx_bytes").Load(); got != 5 {
		t.Fatalf("tx_bytes = %d", got)
	}
	if got := reg.Counter("transport.ring.rx_bytes").Load(); got != 3 {
		t.Fatalf("rx_bytes = %d", got)
	}

	// Nil registry and nil transport pass through unchanged.
	if Observed(Ring, nil) != Ring {
		t.Fatal("nil registry did not pass through")
	}
	if Observed(nil, reg) != nil {
		t.Fatal("nil transport did not pass through")
	}
}
