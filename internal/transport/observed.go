package transport

import "cosim/internal/obs"

// Observed wraps tr so every endpoint pair it creates counts into reg:
//
//	transport.<name>.pairs        — endpoint pairs constructed
//	transport.<name>.tx_bytes     — bytes written by the kernel (host) side
//	transport.<name>.rx_bytes     — bytes read by the kernel (host) side
//	transport.<name>.batched_msgs — messages coalesced into BATCH writes
//
// Only the host end is counted — both directions of the channel cross
// it, so guest-side counting would double every byte. The counter
// handles are resolved here, once, so the per-Read/Write cost is one
// atomic add; with a nil registry (or nil transport) the transport is
// returned unchanged.
func Observed(tr Transport, reg *obs.Registry) Transport {
	if tr == nil || reg == nil {
		return tr
	}
	return newObservedTransport(tr, reg)
}

// newObservedTransport resolves the counter handles, once per wrap.
func newObservedTransport(tr Transport, reg *obs.Registry) *observedTransport {
	prefix := "transport." + tr.Name() + "."
	return &observedTransport{
		Transport: tr,
		pairs:     reg.Counter(prefix + "pairs"),
		tx:        reg.Counter(prefix + "tx_bytes"),
		rx:        reg.Counter(prefix + "rx_bytes"),
		batched:   reg.Counter(prefix + "batched_msgs"),
	}
}

type observedTransport struct {
	Transport
	pairs, tx, rx, batched *obs.Counter
}

func (o *observedTransport) Pair() (host, guest Endpoint, err error) {
	host, guest, err = o.Transport.Pair()
	if err != nil {
		return nil, nil, err
	}
	o.pairs.Inc()
	return &countedEndpoint{ep: host, tx: o.tx, rx: o.rx, batched: o.batched}, guest, nil
}

// countedEndpoint counts host-side traffic. It forwards Flush so a
// Buffered underlying endpoint keeps its batch boundaries, and Close so
// teardown ownership is unchanged.
type countedEndpoint struct {
	ep      Endpoint
	tx, rx  *obs.Counter
	batched *obs.Counter
}

func (c *countedEndpoint) Read(p []byte) (int, error) {
	n, err := c.ep.Read(p)
	if n > 0 {
		c.rx.Add(uint64(n))
	}
	return n, err
}

func (c *countedEndpoint) Write(p []byte) (int, error) {
	n, err := c.ep.Write(p)
	if n > 0 {
		c.tx.Add(uint64(n))
	}
	return n, err
}

func (c *countedEndpoint) Close() error { return c.ep.Close() }
func (c *countedEndpoint) Flush() error { return Flush(c.ep) }

// RecordBatch counts a coalesced write of n messages and forwards the
// report, so a Buffered endpoint underneath keeps its own accounting.
func (c *countedEndpoint) RecordBatch(n int) {
	if n > 0 {
		c.batched.Add(uint64(n))
	}
	RecordBatch(c.ep, n)
}
