package transport

import (
	"fmt"
	"io"
	"sync"
)

// ringBufSize is the per-direction buffer capacity. Sized so a burst of
// co-simulation frames (messages are tens of bytes) never blocks the
// writer in practice; a full ring degrades to blocking, not to loss.
const ringBufSize = 64 << 10

// ringBuf is a bounded byte queue with blocking Read/Write — one
// direction of a ring endpoint pair. A mutex plus two condition
// variables keeps it simple and race-free; the win over sockets is
// skipping the syscall and protocol stack, not lock elision.
type ringBuf struct {
	mu       sync.Mutex
	notEmpty sync.Cond // data arrived, or the ring closed
	notFull  sync.Cond // space freed, or the ring closed
	buf      []byte
	r        int // read index
	n        int // bytes buffered
	closed   bool
}

func newRingBuf(size int) *ringBuf {
	rb := &ringBuf{buf: make([]byte, size)}
	rb.notEmpty.L = &rb.mu
	rb.notFull.L = &rb.mu
	return rb
}

// read blocks until data is available or the ring is closed; a closed
// ring drains its buffered bytes and then reports io.EOF.
func (rb *ringBuf) read(p []byte) (int, error) {
	if len(p) == 0 {
		return 0, nil
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	for rb.n == 0 && !rb.closed {
		rb.notEmpty.Wait()
	}
	if rb.n == 0 {
		return 0, io.EOF
	}
	n := min(len(p), rb.n)
	// Up to two copies around the wrap point.
	first := min(n, len(rb.buf)-rb.r)
	copy(p, rb.buf[rb.r:rb.r+first])
	copy(p[first:], rb.buf[:n-first])
	rb.r = (rb.r + n) % len(rb.buf)
	rb.n -= n
	rb.notFull.Broadcast()
	return n, nil
}

// write blocks while the ring is full; writing to a closed ring fails
// with io.ErrClosedPipe (reporting how much was queued first).
func (rb *ringBuf) write(p []byte) (int, error) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	total := 0
	for len(p) > 0 {
		for rb.n == len(rb.buf) && !rb.closed {
			rb.notFull.Wait()
		}
		if rb.closed {
			return total, io.ErrClosedPipe
		}
		n := min(len(p), len(rb.buf)-rb.n)
		w := (rb.r + rb.n) % len(rb.buf)
		first := min(n, len(rb.buf)-w)
		copy(rb.buf[w:], p[:first])
		copy(rb.buf, p[first:n])
		rb.n += n
		total += n
		p = p[n:]
		rb.notEmpty.Broadcast()
	}
	return total, nil
}

// close marks the ring closed and wakes every blocked reader and
// writer. Idempotent.
func (rb *ringBuf) close() {
	rb.mu.Lock()
	rb.closed = true
	rb.notEmpty.Broadcast()
	rb.notFull.Broadcast()
	rb.mu.Unlock()
}

// ringEndpoint is one end of a ring pair: it reads from one direction's
// ring and writes into the other's.
type ringEndpoint struct {
	rd *ringBuf
	wr *ringBuf
}

func (e *ringEndpoint) Read(p []byte) (int, error)  { return e.rd.read(p) }
func (e *ringEndpoint) Write(p []byte) (int, error) { return e.wr.write(p) }

// Close closes both directions: this side's own blocked Read returns,
// the peer's pending reads drain then see io.EOF, and the peer's
// writes fail — the property the kernel's teardown finalizers rely on
// to terminate reader goroutines deterministically.
func (e *ringEndpoint) Close() error {
	e.rd.close()
	e.wr.close()
	return nil
}

// ringTransport is the in-process ring-buffer backend.
type ringTransport struct{}

func (ringTransport) Name() string { return "ring" }

func (ringTransport) Pair() (host, guest Endpoint, err error) {
	toGuest := newRingBuf(ringBufSize)
	toHost := newRingBuf(ringBufSize)
	host = &ringEndpoint{rd: toHost, wr: toGuest}
	guest = &ringEndpoint{rd: toGuest, wr: toHost}
	return host, guest, nil
}

// ringListeners is the process-global address registry behind the ring
// backend's dial/listen half: Listen allocates a "ring:N" address,
// Dial builds a fresh pair and hands the host end to the listener.
var ringListeners struct {
	mu   sync.Mutex
	next int
	open map[string]*ringListener
}

type ringListener struct {
	addr string
	ch   chan Endpoint
	done chan struct{}
	once sync.Once
}

func (ringTransport) Listen() (Listener, error) {
	ringListeners.mu.Lock()
	defer ringListeners.mu.Unlock()
	if ringListeners.open == nil {
		ringListeners.open = make(map[string]*ringListener)
	}
	ringListeners.next++
	l := &ringListener{
		addr: fmt.Sprintf("ring:%d", ringListeners.next),
		ch:   make(chan Endpoint),
		done: make(chan struct{}),
	}
	ringListeners.open[l.addr] = l
	return l, nil
}

func (t ringTransport) Dial(addr string) (Endpoint, error) {
	ringListeners.mu.Lock()
	l := ringListeners.open[addr]
	ringListeners.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: no ring listener at %q", addr)
	}
	host, guest, err := t.Pair()
	if err != nil {
		return nil, err
	}
	select {
	case l.ch <- host:
		return guest, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: ring listener %s closed", addr)
	}
}

func (l *ringListener) Accept() (Endpoint, error) {
	select {
	case ep := <-l.ch:
		return ep, nil
	case <-l.done:
		return nil, fmt.Errorf("transport: ring listener %s closed", l.addr)
	}
}

func (l *ringListener) Addr() string { return l.addr }

func (l *ringListener) Close() error {
	l.once.Do(func() {
		ringListeners.mu.Lock()
		delete(ringListeners.open, l.addr)
		ringListeners.mu.Unlock()
		close(l.done)
	})
	return nil
}
