package bus

import (
	"testing"

	"cosim/internal/sim"
)

func newBus(t *testing.T, masters, cycles int) (*sim.Kernel, *Bus, *Memory) {
	t.Helper()
	k := sim.NewKernel("t")
	clk := sim.NewClock(k, "clk", 10*sim.NS)
	b := New(k, "bus", Config{Clock: clk, Masters: masters, CyclesPerTransaction: cycles})
	mem := NewMemory("mem", 4096)
	if err := b.Map(0x1000, mem); err != nil {
		t.Fatal(err)
	}
	return k, b, mem
}

func TestReadWriteRoundTrip(t *testing.T) {
	k, b, _ := newBus(t, 1, 1)
	var got uint32
	k.Thread("m0", func(c *sim.Ctx) {
		if err := b.Write(c, 0, 0x1010, 0xdeadbeef); err != nil {
			t.Error(err)
		}
		v, err := b.Read(c, 0, 0x1010)
		if err != nil {
			t.Error(err)
		}
		got = v
		k.Stop()
	})
	if err := k.Run(sim.MS); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if got != 0xdeadbeef {
		t.Fatalf("got %#x", got)
	}
	if b.Granted() != 2 {
		t.Fatalf("granted = %d", b.Granted())
	}
}

func TestUnmappedAddressErrors(t *testing.T) {
	k, b, _ := newBus(t, 1, 1)
	var err error
	k.Thread("m0", func(c *sim.Ctx) {
		_, err = b.Read(c, 0, 0x9999_0000)
		k.Stop()
	})
	_ = k.Run(sim.MS)
	k.Shutdown()
	if err == nil {
		t.Fatal("read of unmapped address succeeded")
	}
}

func TestTransactionTiming(t *testing.T) {
	k, b, _ := newBus(t, 1, 3) // 3 cycles x 10ns = 30ns per transaction
	var t0, t1 sim.Time
	k.Thread("m0", func(c *sim.Ctx) {
		t0 = c.Now()
		_ = b.Write(c, 0, 0x1000, 1)
		t1 = c.Now()
		k.Stop()
	})
	_ = k.Run(sim.MS)
	k.Shutdown()
	if t1-t0 != 30*sim.NS {
		t.Fatalf("transaction took %v, want 30ns", t1-t0)
	}
	if b.BusyTime() != 30*sim.NS {
		t.Fatalf("busy = %v", b.BusyTime())
	}
}

func TestContentionSerializes(t *testing.T) {
	k, b, _ := newBus(t, 2, 2) // 20ns per transaction
	var end0, end1 sim.Time
	k.Thread("m0", func(c *sim.Ctx) {
		_ = b.Write(c, 0, 0x1000, 1)
		end0 = c.Now()
	})
	k.Thread("m1", func(c *sim.Ctx) {
		_ = b.Write(c, 1, 0x1004, 2)
		end1 = c.Now()
	})
	k.Thread("stopper", func(c *sim.Ctx) {
		c.WaitTime(sim.US)
		k.Stop()
	})
	_ = k.Run(sim.MS)
	k.Shutdown()
	// Both issued at time 0; the bus serializes them: 20ns and 40ns.
	lo, hi := end0, end1
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo != 20*sim.NS || hi != 40*sim.NS {
		t.Fatalf("completion times %v, %v; want 20ns and 40ns", end0, end1)
	}
}

func TestRoundRobinFairness(t *testing.T) {
	k, b, _ := newBus(t, 2, 1)
	counts := [2]int{}
	for m := 0; m < 2; m++ {
		m := m
		k.Thread("m", func(c *sim.Ctx) {
			for i := 0; i < 50; i++ {
				_ = b.Write(c, m, 0x1000+uint32(4*m), uint32(i))
				counts[m]++
			}
		})
	}
	k.Thread("stopper", func(c *sim.Ctx) {
		c.WaitTime(100 * sim.US)
		k.Stop()
	})
	_ = k.Run(sim.MS)
	k.Shutdown()
	if counts[0] != 50 || counts[1] != 50 {
		t.Fatalf("counts = %v: arbitration starved a master", counts)
	}
}

func TestOverlapRejected(t *testing.T) {
	k := sim.NewKernel("t")
	clk := sim.NewClock(k, "clk", 10*sim.NS)
	b := New(k, "bus", Config{Clock: clk, Masters: 1})
	if err := b.Map(0x1000, NewMemory("a", 256)); err != nil {
		t.Fatal(err)
	}
	if err := b.Map(0x1080, NewMemory("b", 256)); err == nil {
		t.Fatal("overlapping map accepted")
	}
	k.Shutdown()
}

func TestMemoryBounds(t *testing.T) {
	m := NewMemory("m", 8)
	if err := m.Write(6, 4, 1); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if _, err := m.Read(8, 1); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
}

func TestUtilization(t *testing.T) {
	k, b, _ := newBus(t, 1, 1)
	k.Thread("m0", func(c *sim.Ctx) {
		for i := 0; i < 10; i++ {
			_ = b.Write(c, 0, 0x1000, uint32(i))
			c.WaitTime(10 * sim.NS) // idle gap
		}
		k.Stop()
	})
	_ = k.Run(sim.MS)
	k.Shutdown()
	u := b.Utilization()
	if u <= 0.3 || u >= 0.7 {
		t.Fatalf("utilization = %.2f, want ~0.5", u)
	}
}
