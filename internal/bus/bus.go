// Package bus models the shared system bus of the paper's architectural
// template (§3: "several processors interacting with hardware blocks,
// and communicating between them through a common bus"): multiple
// masters issue word transactions, a round-robin arbiter grants the bus
// one transaction at a time, each transaction occupies the bus for a
// configurable number of clock cycles, and an address decoder routes it
// to the mapped slave.
package bus

import (
	"fmt"
	"sort"

	"cosim/internal/sim"
)

// Device is a bus slave: the same shape as iss.Device, so the MMIO
// peripheral models in internal/dev can be mapped on the system bus
// directly.
type Device interface {
	Name() string
	Size() uint32
	Read(off uint32, size int) (uint32, error)
	Write(off uint32, size int, v uint32) error
}

// Transaction is one bus operation.
type Transaction struct {
	Addr  uint32
	Write bool
	Data  uint32 // write data in; read data out

	Err  error
	done *sim.Event
}

// Config parameterizes the bus.
type Config struct {
	// Clock paces transactions.
	Clock *sim.Clock
	// CyclesPerTransaction is the bus occupancy per transaction.
	CyclesPerTransaction int
	// Masters is the number of request ports (for round-robin
	// arbitration).
	Masters int
}

type mapping struct {
	base uint32
	dev  Device
}

// Bus is the arbitrated shared interconnect.
type Bus struct {
	sim.Module
	cfg    Config
	slaves []mapping

	queues  [][]*Transaction // per-master request queues
	pending *sim.Event
	rr      int

	granted  uint64
	busyTime sim.Time
}

// New creates the bus and starts its arbiter process.
func New(k *sim.Kernel, name string, cfg Config) *Bus {
	if cfg.Clock == nil {
		panic("bus: a clock is required")
	}
	if cfg.CyclesPerTransaction <= 0 {
		cfg.CyclesPerTransaction = 1
	}
	if cfg.Masters <= 0 {
		cfg.Masters = 1
	}
	b := &Bus{
		Module:  k.NewModule(name),
		cfg:     cfg,
		queues:  make([][]*Transaction, cfg.Masters),
		pending: k.NewEvent(name + ".pending"),
	}
	k.Thread(b.Sub("arbiter"), b.arbiter)
	return b
}

// Map attaches a slave at a base address; overlaps are rejected.
func (b *Bus) Map(base uint32, dev Device) error {
	end := base + dev.Size()
	if end < base {
		return fmt.Errorf("bus: device %s wraps the address space", dev.Name())
	}
	for _, m := range b.slaves {
		if base < m.base+m.dev.Size() && m.base < end {
			return fmt.Errorf("bus: device %s overlaps %s", dev.Name(), m.dev.Name())
		}
	}
	b.slaves = append(b.slaves, mapping{base, dev})
	sort.Slice(b.slaves, func(i, j int) bool { return b.slaves[i].base < b.slaves[j].base })
	return nil
}

// Granted returns the number of completed transactions.
func (b *Bus) Granted() uint64 { return b.granted }

// BusyTime returns the cumulative simulated time the bus was occupied.
func (b *Bus) BusyTime() sim.Time { return b.busyTime }

// Utilization returns busy time over total time.
func (b *Bus) Utilization() float64 {
	now := b.Kernel().Now()
	if now == 0 {
		return 0
	}
	return float64(b.busyTime) / float64(now)
}

// Submit enqueues a transaction for the given master and returns an
// event notified at completion. Callable from methods and threads.
func (b *Bus) Submit(master int, t *Transaction) *sim.Event {
	if master < 0 || master >= len(b.queues) {
		panic(fmt.Sprintf("bus: bad master index %d", master))
	}
	t.done = b.Kernel().NewEvent(b.Sub("done"))
	b.queues[master] = append(b.queues[master], t)
	b.pending.Notify()
	return t.done
}

// Read performs a blocking word read on behalf of master (thread
// context only).
func (b *Bus) Read(c *sim.Ctx, master int, addr uint32) (uint32, error) {
	t := &Transaction{Addr: addr}
	done := b.Submit(master, t)
	c.Wait(done)
	return t.Data, t.Err
}

// Write performs a blocking word write on behalf of master (thread
// context only).
func (b *Bus) Write(c *sim.Ctx, master int, addr uint32, v uint32) error {
	t := &Transaction{Addr: addr, Write: true, Data: v}
	done := b.Submit(master, t)
	c.Wait(done)
	return t.Err
}

// pick selects the next transaction round-robin; nil if all queues are
// empty.
func (b *Bus) pick() *Transaction {
	n := len(b.queues)
	for i := 0; i < n; i++ {
		m := (b.rr + i) % n
		if len(b.queues[m]) > 0 {
			t := b.queues[m][0]
			b.queues[m] = b.queues[m][1:]
			b.rr = (m + 1) % n
			return t
		}
	}
	return nil
}

// arbiter is the bus process: grant, occupy, decode, complete.
func (b *Bus) arbiter(c *sim.Ctx) {
	period := b.cfg.Clock.Period()
	for {
		t := b.pick()
		if t == nil {
			c.Wait(b.pending)
			continue
		}
		// Bus occupancy: the transaction holds the bus for N cycles.
		occupancy := sim.Time(b.cfg.CyclesPerTransaction) * period
		c.WaitTime(occupancy)
		b.busyTime = b.busyTime.Add(occupancy)

		m, ok := b.decode(t.Addr)
		if !ok {
			t.Err = fmt.Errorf("bus: no slave at %#08x", t.Addr)
		} else if t.Write {
			t.Err = m.dev.Write(t.Addr-m.base, 4, t.Data)
		} else {
			t.Data, t.Err = m.dev.Read(t.Addr-m.base, 4)
		}
		b.granted++
		t.done.Notify()
	}
}

func (b *Bus) decode(addr uint32) (mapping, bool) {
	i := sort.Search(len(b.slaves), func(i int) bool {
		return b.slaves[i].base+b.slaves[i].dev.Size() > addr
	})
	if i < len(b.slaves) && addr >= b.slaves[i].base {
		return b.slaves[i], true
	}
	return mapping{}, false
}

// Memory is a simple word-addressed RAM slave for bus modeling.
type Memory struct {
	name string
	data []byte
}

// NewMemory creates a memory slave of the given byte size.
func NewMemory(name string, size uint32) *Memory {
	return &Memory{name: name, data: make([]byte, size)}
}

// Name implements Device.
func (m *Memory) Name() string { return m.name }

// Size implements Device.
func (m *Memory) Size() uint32 { return uint32(len(m.data)) }

// Read implements Device.
func (m *Memory) Read(off uint32, size int) (uint32, error) {
	if int(off)+size > len(m.data) {
		return 0, fmt.Errorf("%s: read beyond end at %#x", m.name, off)
	}
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(m.data[off+uint32(i)]) << (8 * i)
	}
	return v, nil
}

// Write implements Device.
func (m *Memory) Write(off uint32, size int, v uint32) error {
	if int(off)+size > len(m.data) {
		return fmt.Errorf("%s: write beyond end at %#x", m.name, off)
	}
	for i := 0; i < size; i++ {
		m.data[off+uint32(i)] = byte(v >> (8 * i))
	}
	return nil
}
