// Package iss implements a cycle-based instruction-set simulator for the
// FV32 architecture (internal/isa). It models the processor, a sparse
// RAM, and a memory-mapped I/O bus to which device models
// (internal/dev) attach. The CPU supports hardware breakpoints, write
// watchpoints, external interrupt lines and a configurable CPI table —
// everything the co-simulation schemes of the paper need from an ISS.
package iss

import (
	"fmt"
	"sort"
)

// BusError describes a failed memory access.
type BusError struct {
	Addr  uint32
	Size  int
	Write bool
	Why   string
}

func (e *BusError) Error() string {
	dir := "read"
	if e.Write {
		dir = "write"
	}
	return fmt.Sprintf("iss: bus error: %s of %d bytes at %#08x: %s", dir, e.Size, e.Addr, e.Why)
}

// Bus is the CPU's view of memory: byte-addressed loads and stores of
// 1, 2 or 4 bytes. Values are little-endian.
type Bus interface {
	Read(addr uint32, size int) (uint32, error)
	Write(addr uint32, size int, v uint32) error
}

// pageSize is the RAM allocation granule.
const pageSize = 4096

// RAM is sparse little-endian memory: pages are allocated on first
// touch, so a 4 GiB address space costs only what is used.
type RAM struct {
	pages map[uint32][]byte
	limit uint32 // exclusive upper bound; 0 means no limit
}

// NewRAM creates a RAM covering [0, size). A size of 0 means the full
// 32-bit space.
func NewRAM(size uint32) *RAM {
	return &RAM{pages: make(map[uint32][]byte), limit: size}
}

// Size returns the configured size (0 = unbounded).
func (r *RAM) Size() uint32 { return r.limit }

func (r *RAM) page(addr uint32, alloc bool) []byte {
	key := addr / pageSize
	p := r.pages[key]
	if p == nil && alloc {
		p = make([]byte, pageSize)
		r.pages[key] = p
	}
	return p
}

func (r *RAM) check(addr uint32, size int) error {
	if size != 1 && size != 2 && size != 4 {
		return &BusError{Addr: addr, Size: size, Why: "bad access size"}
	}
	if r.limit != 0 && (addr >= r.limit || addr+uint32(size) > r.limit) {
		return &BusError{Addr: addr, Size: size, Why: "beyond RAM"}
	}
	return nil
}

// Read implements Bus. Accesses may straddle page boundaries.
func (r *RAM) Read(addr uint32, size int) (uint32, error) {
	if err := r.check(addr, size); err != nil {
		return 0, err
	}
	var v uint32
	for i := 0; i < size; i++ {
		a := addr + uint32(i)
		p := r.page(a, false)
		var b byte
		if p != nil {
			b = p[a%pageSize]
		}
		v |= uint32(b) << (8 * i)
	}
	return v, nil
}

// Write implements Bus.
func (r *RAM) Write(addr uint32, size int, v uint32) error {
	if err := r.check(addr, size); err != nil {
		return err
	}
	for i := 0; i < size; i++ {
		a := addr + uint32(i)
		r.page(a, true)[a%pageSize] = byte(v >> (8 * i))
	}
	return nil
}

// LoadBytes copies raw bytes into RAM at addr (program loading).
func (r *RAM) LoadBytes(addr uint32, data []byte) error {
	for i, b := range data {
		if err := r.Write(addr+uint32(i), 1, uint32(b)); err != nil {
			return err
		}
	}
	return nil
}

// ReadBytes copies n bytes out of RAM.
func (r *RAM) ReadBytes(addr uint32, n int) ([]byte, error) {
	out := make([]byte, n)
	for i := range out {
		v, err := r.Read(addr+uint32(i), 1)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// Device is a memory-mapped peripheral model. Offsets are relative to
// the device's mapping base.
type Device interface {
	Name() string
	Size() uint32
	Read(off uint32, size int) (uint32, error)
	Write(off uint32, size int, v uint32) error
}

// mapping binds a device to a base address.
type mapping struct {
	base uint32
	dev  Device
}

// SystemBus routes accesses to RAM or to mapped devices. Device regions
// take precedence over RAM.
type SystemBus struct {
	ram  *RAM
	maps []mapping // sorted by base
}

// NewSystemBus creates a bus backed by the given RAM.
func NewSystemBus(ram *RAM) *SystemBus {
	return &SystemBus{ram: ram}
}

// RAM returns the backing RAM (for program loading and debugger pokes).
func (b *SystemBus) RAM() *RAM { return b.ram }

// Map attaches a device at the given base address. Overlapping regions
// are rejected.
func (b *SystemBus) Map(base uint32, dev Device) error {
	end := base + dev.Size()
	if end < base {
		return fmt.Errorf("iss: device %s wraps the address space", dev.Name())
	}
	for _, m := range b.maps {
		mEnd := m.base + m.dev.Size()
		if base < mEnd && m.base < end {
			return fmt.Errorf("iss: device %s overlaps %s", dev.Name(), m.dev.Name())
		}
	}
	b.maps = append(b.maps, mapping{base, dev})
	sort.Slice(b.maps, func(i, j int) bool { return b.maps[i].base < b.maps[j].base })
	return nil
}

// find returns the device covering addr, if any.
func (b *SystemBus) find(addr uint32) (mapping, bool) {
	i := sort.Search(len(b.maps), func(i int) bool {
		return b.maps[i].base+b.maps[i].dev.Size() > addr
	})
	if i < len(b.maps) && addr >= b.maps[i].base {
		return b.maps[i], true
	}
	return mapping{}, false
}

// Read implements Bus.
func (b *SystemBus) Read(addr uint32, size int) (uint32, error) {
	if m, ok := b.find(addr); ok {
		return m.dev.Read(addr-m.base, size)
	}
	return b.ram.Read(addr, size)
}

// Write implements Bus.
func (b *SystemBus) Write(addr uint32, size int, v uint32) error {
	if m, ok := b.find(addr); ok {
		return m.dev.Write(addr-m.base, size, v)
	}
	return b.ram.Write(addr, size, v)
}
