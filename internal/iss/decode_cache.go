package iss

import "cosim/internal/isa"

// Decode-cache geometry: guest code is cached in pages of 4 KiB (1024
// word-sized entries), allocated on first fetch, so only pages that
// actually hold executed code cost memory.
const (
	dcPageShift = 12
	dcPageWords = 1 << (dcPageShift - 2)

	// maxDecodeCover bounds the address range the cache covers when the
	// backing RAM is unbounded or larger: fetches above the bound simply
	// take the uncached path.
	maxDecodeCover = 16 << 20
)

// dcEntry flag bits.
const (
	dcDecoded uint8 = 1 << iota // inst holds a valid decoded instruction
	dcBP                        // a hardware breakpoint is armed at this PC
)

// dcEntry is one predecoded instruction slot.
type dcEntry struct {
	inst  isa.Inst
	flags uint8
}

// decodeCache memoizes isa.Decode results for the RAM code region so
// the hot loop replaces a bus.Read + isa.Decode per instruction with
// one bounds check and an array load. Breakpoint presence is folded
// into the entry flags, eliminating the per-step map lookup. See
// DESIGN.md §5.5 for the invalidation protocol.
type decodeCache struct {
	limit uint32 // exclusive PC bound covered by the cache
	pages [][]dcEntry
}

func newDecodeCache(limit uint32) *decodeCache {
	if limit == 0 || limit > maxDecodeCover {
		limit = maxDecodeCover
	}
	n := (uint64(limit) + (1 << dcPageShift) - 1) >> dcPageShift
	return &decodeCache{limit: limit, pages: make([][]dcEntry, n)}
}

// entry returns the slot for pc, allocating its page on first touch.
// The caller guarantees pc < limit and word alignment.
func (d *decodeCache) entry(pc uint32) *dcEntry {
	p := d.pages[pc>>dcPageShift]
	if p == nil {
		p = make([]dcEntry, dcPageWords)
		d.pages[pc>>dcPageShift] = p
	}
	return &p[(pc>>2)&(dcPageWords-1)]
}

// peek returns the slot for pc without allocating; nil if the page has
// never been touched.
func (d *decodeCache) peek(pc uint32) *dcEntry {
	p := d.pages[pc>>dcPageShift]
	if p == nil {
		return nil
	}
	return &p[(pc>>2)&(dcPageWords-1)]
}

// invalidate drops decoded entries overlapping [addr, addr+n) and
// returns how many were live. Breakpoint flags survive: they track
// debugger state, not memory contents.
func (d *decodeCache) invalidate(addr, n uint32) uint64 {
	if n == 0 || addr >= d.limit {
		return 0
	}
	end := addr + n
	if end > d.limit || end < addr {
		end = d.limit
	}
	var dropped uint64
	for w := addr &^ 3; w < end; w += isa.Word {
		if e := d.peek(w); e != nil && e.flags&dcDecoded != 0 {
			e.flags &^= dcDecoded
			dropped++
		}
	}
	return dropped
}

// flush drops every decoded entry (breakpoint flags survive).
func (d *decodeCache) flush() {
	for _, p := range d.pages {
		for j := range p {
			p[j].flags &^= dcDecoded
		}
	}
}
