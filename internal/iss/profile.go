package iss

import (
	"fmt"
	"io"
	"sort"
)

// Profile accumulates per-PC execution and cycle counts — a flat
// instruction-level profiler for guest software. Attach with
// CPU.AttachProfile; the ISS then charges every retired instruction to
// its address.
type Profile struct {
	counts map[uint32]uint64
	cycles map[uint32]uint64
}

// NewProfile creates an empty profile.
func NewProfile() *Profile {
	return &Profile{
		counts: make(map[uint32]uint64),
		cycles: make(map[uint32]uint64),
	}
}

// record charges one retired instruction.
func (p *Profile) record(pc uint32, cycles uint64) {
	p.counts[pc]++
	p.cycles[pc] += cycles
}

// Count returns the execution count of the instruction at pc.
func (p *Profile) Count(pc uint32) uint64 { return p.counts[pc] }

// Sites returns the number of distinct instruction addresses executed.
func (p *Profile) Sites() int { return len(p.counts) }

// HotSpot is one entry of a profile report.
type HotSpot struct {
	PC     uint32
	Count  uint64
	Cycles uint64
}

// Top returns the n most executed instruction addresses, by cycle cost.
func (p *Profile) Top(n int) []HotSpot {
	out := make([]HotSpot, 0, len(p.counts))
	for pc, c := range p.counts {
		out = append(out, HotSpot{PC: pc, Count: c, Cycles: p.cycles[pc]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cycles != out[j].Cycles {
			return out[i].Cycles > out[j].Cycles
		}
		return out[i].PC < out[j].PC
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Annotator resolves an address to a human-readable location (the
// assembler image's LineOfAddr fits after adaptation).
type Annotator func(pc uint32) string

// Report writes the top-n table, annotating each address.
func (p *Profile) Report(w io.Writer, n int, annotate Annotator) {
	var total uint64
	for _, c := range p.cycles {
		total += c
	}
	fmt.Fprintf(w, "%-10s %12s %12s %7s  %s\n", "addr", "count", "cycles", "%", "where")
	for _, h := range p.Top(n) {
		where := ""
		if annotate != nil {
			where = annotate(h.PC)
		}
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(h.Cycles) / float64(total)
		}
		fmt.Fprintf(w, "%#010x %12d %12d %6.2f%%  %s\n", h.PC, h.Count, h.Cycles, pct, where)
	}
}

// AttachProfile enables per-instruction profiling (small interpreter
// overhead while attached). Pass nil to detach.
func (c *CPU) AttachProfile(p *Profile) { c.profile = p }
