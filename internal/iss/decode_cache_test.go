package iss

import (
	"testing"

	"cosim/internal/isa"
)

// bothEngines runs fn under the cached and the uncached execution
// engines, pinning every behavioral contract on both paths.
func bothEngines(t *testing.T, fn func(t *testing.T, cached bool)) {
	t.Run("cached", func(t *testing.T) { fn(t, true) })
	t.Run("uncached", func(t *testing.T) { fn(t, false) })
}

// selfModifyProg executes patchme once, overwrites it with the
// instruction stored at newinst, loops back, and halts after the
// second pass. A stale decode would leave a0 == 2.
const selfModifyProg = `
_start:
    addi a2, zero, 0
loop:
patchme:
    addi a0, zero, 2
    addi a2, a2, 1
    addi t3, zero, 2
    beq  a2, t3, done
    la   t0, patchme
    la   t1, newinst
    lw   t2, 0(t1)
    sw   t2, 0(t0)
    j    loop
done:
    halt
newinst:
    addi a0, zero, 101
`

func TestSelfModifyingCode(t *testing.T) {
	bothEngines(t, func(t *testing.T, cached bool) {
		c, _ := buildCPU(t, selfModifyProg)
		c.SetDecodeCacheEnabled(cached)
		runToHalt(t, c, 100)
		if got := c.Regs[10]; got != 101 {
			t.Fatalf("a0 = %d, want 101 (patched instruction not executed)", got)
		}
		hits, _, inv := c.DecodeCacheStats()
		if cached {
			if hits == 0 {
				t.Error("decode cache reported zero hits")
			}
			if inv == 0 {
				t.Error("store into executed code caused no invalidation")
			}
		} else if hits != 0 {
			t.Errorf("uncached engine counted %d hits", hits)
		}
	})
}

func TestSelfModifyingCodeByteStore(t *testing.T) {
	// Patch only the low immediate byte of "addi a0, zero, 2" with a
	// byte store: sub-word writes must invalidate the covering word.
	bothEngines(t, func(t *testing.T, cached bool) {
		c, _ := buildCPU(t, `
_start:
    addi a2, zero, 0
loop:
patchme:
    addi a0, zero, 2
    addi a2, a2, 1
    addi t3, zero, 2
    beq  a2, t3, done
    la   t0, patchme
    addi t1, zero, 101
    sb   t1, 0(t0)
    j    loop
done:
    halt
`)
		c.SetDecodeCacheEnabled(cached)
		runToHalt(t, c, 100)
		if got := c.Regs[10]; got != 101 {
			t.Fatalf("a0 = %d, want 101 (byte patch not executed)", got)
		}
	})
}

func TestMidRunAddBreakpoint(t *testing.T) {
	bothEngines(t, func(t *testing.T, cached bool) {
		c, im := buildCPU(t, `
_start:
loop:
    addi s0, s0, 1
    j    loop
`)
		c.SetDecodeCacheEnabled(cached)
		// Warm the loop so its instructions are decoded before the
		// breakpoint is armed.
		if stop, _ := c.Run(100); stop != StopBudget {
			t.Fatalf("warmup stop = %v", stop)
		}
		bp := im.MustSymbol("loop")
		c.AddBreakpoint(bp)
		stop, _ := c.Run(1000)
		if stop != StopBreak {
			t.Fatalf("stop = %v, want break", stop)
		}
		if c.PC != bp {
			t.Fatalf("stopped at %#x, want %#x", c.PC, bp)
		}
		// Resume: the engine must step over the breakpointed
		// instruction, run one loop iteration, and stop again.
		before := c.Regs[4]
		stop, n := c.Run(1000)
		if stop != StopBreak || c.PC != bp {
			t.Fatalf("resume stop = %v at %#x, want break at %#x", stop, c.PC, bp)
		}
		if n != 2 || c.Regs[4] != before+1 {
			t.Fatalf("resume ran %d steps, s0 %d -> %d; want one iteration", n, before, c.Regs[4])
		}
		// Clearing the breakpoint lets the loop run freely again.
		c.RemoveBreakpoint(bp)
		if stop, _ := c.Run(100); stop != StopBudget {
			t.Fatalf("post-clear stop = %v", stop)
		}
	})
}

func TestFetchBusErrorCause(t *testing.T) {
	bothEngines(t, func(t *testing.T, cached bool) {
		c, _ := buildCPU(t, `
_start:
    li   t0, 0x100
    mtsr ivec, t0
    li   t1, 0x200000    ; aligned, beyond the 1 MiB RAM
    jalr zero, t1, 0
.org 0x100
handler:
    mfsr a0, cause
    halt
`)
		c.SetDecodeCacheEnabled(cached)
		runToHalt(t, c, 100)
		if got := c.Regs[10]; got != isa.CauseBus {
			t.Fatalf("cause = %d, want bus error (%d)", got, isa.CauseBus)
		}
	})
}

func TestLoadStoreBusErrorCause(t *testing.T) {
	for _, tc := range []struct {
		name, access string
		want         uint32
	}{
		{"load-beyond-ram", "lw   a1, 0(t1)", isa.CauseBus},
		{"store-beyond-ram", "sw   a1, 0(t1)", isa.CauseBus},
		{"misaligned-load", "lw   a1, 1(zero)", isa.CauseAlign},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := buildCPU(t, `
_start:
    li   t0, 0x100
    mtsr ivec, t0
    li   t1, 0x200000
    `+tc.access+`
    halt
.org 0x100
handler:
    mfsr a0, cause
    halt
`)
			runToHalt(t, c, 100)
			if got := c.Regs[10]; got != tc.want {
				t.Fatalf("cause = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestDecodeCacheCounters(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    addi t0, zero, 50
loop:
    addi s0, s0, 1
    bne  s0, t0, loop
    halt
`)
	runToHalt(t, c, 1000)
	hits, misses, inv := c.DecodeCacheStats()
	if misses == 0 || hits == 0 {
		t.Fatalf("hits = %d, misses = %d; want both nonzero", hits, misses)
	}
	if hits <= misses {
		t.Fatalf("hits = %d <= misses = %d; loop should be dominated by hits", hits, misses)
	}
	if inv != 0 {
		t.Fatalf("invalidations = %d, want 0 (no code stores)", inv)
	}
}

func TestDecodeCacheToggle(t *testing.T) {
	c, im := buildCPU(t, `
_start:
loop:
    addi s0, s0, 1
    j    loop
`)
	c.SetDecodeCacheEnabled(false)
	if c.DecodeCacheEnabled() {
		t.Fatal("cache still enabled after disable")
	}
	if stop, _ := c.Run(100); stop != StopBudget {
		t.Fatalf("stop = %v", stop)
	}
	if hits, misses, _ := c.DecodeCacheStats(); hits != 0 || misses != 0 {
		t.Fatalf("disabled engine counted hits=%d misses=%d", hits, misses)
	}
	// Breakpoints added while disabled must be honored after re-enable:
	// the flag re-seed in enableDecodeCache covers them.
	bp := im.MustSymbol("loop")
	c.AddBreakpoint(bp)
	c.SetDecodeCacheEnabled(true)
	if !c.DecodeCacheEnabled() {
		t.Fatal("cache not enabled")
	}
	stop, _ := c.Run(1000)
	if stop != StopBreak || c.PC != bp {
		t.Fatalf("stop = %v at %#x, want break at %#x", stop, c.PC, bp)
	}
}
