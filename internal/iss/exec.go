package iss

import (
	"cosim/internal/isa"
)

// setReg writes a register, keeping r0 hardwired to zero.
func (c *CPU) setReg(r uint8, v uint32) {
	if r != 0 {
		c.Regs[r] = v
	}
}

// Step executes one instruction (or takes one pending trap) and returns
// the stop condition. StopBudget means "executed fine, keep going".
func (c *CPU) Step() Stop {
	if c.halted {
		return StopHalt
	}
	if c.sleeping {
		if c.PendingIRQ() == 0 {
			return StopIdle
		}
		c.sleeping = false
	}
	if c.checkIRQ() {
		return StopBudget // trap taken; handler runs on subsequent steps
	}
	if _, bp := c.breakpoints[c.PC]; bp && !c.stepOverBP {
		return StopBreak
	}
	return c.fetchExec()
}

// fetchExec fetches, decodes and executes one instruction, taking the
// predecoded fast path when the PC is covered by the cache.
func (c *CPU) fetchExec() Stop {
	if d := c.dc; d != nil && c.PC < d.limit && c.PC%isa.Word == 0 {
		e := d.entry(c.PC)
		if e.flags&dcDecoded != 0 {
			c.dcHits++
			c.stepOverBP = false
			return c.exec(e.inst)
		}
		return c.fillExec(e)
	}
	return c.fetchExecSlow()
}

// fillExec services a decode miss: fetch the word at PC, decode it into
// the cache slot, and execute it.
func (c *CPU) fillExec(e *dcEntry) Stop {
	w, err := c.bus.Read(c.PC, 4)
	if err != nil {
		return c.fault(isa.CauseBus)
	}
	inst, derr := isa.Decode(w)
	if derr != nil {
		return c.fault(isa.CauseIllegal)
	}
	c.stepOverBP = false
	if !c.busIsRAM(c.PC) {
		// Device-mapped code is never cached: the device may return a
		// different word on the next fetch.
		return c.exec(inst)
	}
	c.dcMisses++
	e.inst = inst
	e.flags |= dcDecoded
	return c.exec(inst)
}

// fetchExecSlow is the uncached engine: one bus fetch and one decode
// per step.
func (c *CPU) fetchExecSlow() Stop {
	if c.PC%isa.Word != 0 {
		return c.fault(isa.CauseAlign)
	}
	w, err := c.bus.Read(c.PC, 4)
	if err != nil {
		return c.fault(isa.CauseBus)
	}
	inst, derr := isa.Decode(w)
	if derr != nil {
		return c.fault(isa.CauseIllegal)
	}
	c.stepOverBP = false
	return c.exec(inst)
}

// busIsRAM reports whether addr is plain RAM (no device overlay) on the
// CPU's bus; plain-RAM buses trivially qualify.
func (c *CPU) busIsRAM(addr uint32) bool {
	if b, ok := c.bus.(*SystemBus); ok {
		_, dev := b.find(addr)
		return !dev
	}
	return true
}

// fault routes a synchronous fault to the trap vector if one is
// installed, else stops the CPU.
func (c *CPU) fault(cause uint32) Stop {
	if c.SR[isa.SRIVec] != 0 {
		c.trap(cause)
		return StopBudget
	}
	return StopError
}

// exec performs one decoded instruction. On return, PC points at the
// next instruction to execute unless the CPU stopped.
func (c *CPU) exec(i isa.Inst) Stop {
	cost := c.cpi.Default
	next := c.PC + isa.Word

	rs1 := c.Regs[i.Rs1]
	rs2 := c.Regs[i.Rs2]
	imm := uint32(i.Imm)

	switch i.Op {
	// --- R-type ALU ---
	case isa.ADD:
		c.setReg(i.Rd, rs1+rs2)
	case isa.SUB:
		c.setReg(i.Rd, rs1-rs2)
	case isa.AND:
		c.setReg(i.Rd, rs1&rs2)
	case isa.OR:
		c.setReg(i.Rd, rs1|rs2)
	case isa.XOR:
		c.setReg(i.Rd, rs1^rs2)
	case isa.NOR:
		c.setReg(i.Rd, ^(rs1 | rs2))
	case isa.SLL:
		c.setReg(i.Rd, rs1<<(rs2&31))
	case isa.SRL:
		c.setReg(i.Rd, rs1>>(rs2&31))
	case isa.SRA:
		c.setReg(i.Rd, uint32(int32(rs1)>>(rs2&31)))
	case isa.SLT:
		c.setReg(i.Rd, boolTo(int32(rs1) < int32(rs2)))
	case isa.SLTU:
		c.setReg(i.Rd, boolTo(rs1 < rs2))
	case isa.MUL:
		cost = c.cpi.Mul
		c.setReg(i.Rd, rs1*rs2)
	case isa.MULH:
		cost = c.cpi.Mul
		c.setReg(i.Rd, uint32(uint64(int64(int32(rs1))*int64(int32(rs2)))>>32))
	case isa.DIV:
		cost = c.cpi.Div
		c.setReg(i.Rd, div32(rs1, rs2))
	case isa.DIVU:
		cost = c.cpi.Div
		if rs2 == 0 {
			c.setReg(i.Rd, ^uint32(0))
		} else {
			c.setReg(i.Rd, rs1/rs2)
		}
	case isa.REM:
		cost = c.cpi.Div
		c.setReg(i.Rd, rem32(rs1, rs2))
	case isa.REMU:
		cost = c.cpi.Div
		if rs2 == 0 {
			c.setReg(i.Rd, rs1)
		} else {
			c.setReg(i.Rd, rs1%rs2)
		}

	// --- I-type ALU ---
	case isa.ADDI:
		c.setReg(i.Rd, rs1+imm)
	case isa.ANDI:
		c.setReg(i.Rd, rs1&imm)
	case isa.ORI:
		c.setReg(i.Rd, rs1|imm)
	case isa.XORI:
		c.setReg(i.Rd, rs1^imm)
	case isa.SLTI:
		c.setReg(i.Rd, boolTo(int32(rs1) < i.Imm))
	case isa.SLTIU:
		c.setReg(i.Rd, boolTo(rs1 < imm))
	case isa.SLLI:
		c.setReg(i.Rd, rs1<<(imm&31))
	case isa.SRLI:
		c.setReg(i.Rd, rs1>>(imm&31))
	case isa.SRAI:
		c.setReg(i.Rd, uint32(int32(rs1)>>(imm&31)))
	case isa.LUI:
		c.setReg(i.Rd, imm<<16)

	// --- loads ---
	case isa.LW, isa.LH, isa.LHU, isa.LB, isa.LBU:
		cost = c.cpi.Load
		addr := rs1 + imm
		size := loadSize(i.Op)
		if addr%uint32(size) != 0 {
			return c.fault(isa.CauseAlign)
		}
		v, err := c.bus.Read(addr, size)
		if err != nil {
			return c.fault(isa.CauseBus)
		}
		switch i.Op {
		case isa.LH:
			v = uint32(int32(int16(v)))
		case isa.LB:
			v = uint32(int32(int8(v)))
		}
		c.setReg(i.Rd, v)

	// --- stores ---
	case isa.SW, isa.SH, isa.SB:
		cost = c.cpi.Store
		addr := rs1 + imm
		size := storeSize(i.Op)
		if addr%uint32(size) != 0 {
			return c.fault(isa.CauseAlign)
		}
		if err := c.bus.Write(addr, size, c.Regs[i.Rd]); err != nil {
			return c.fault(isa.CauseBus)
		}
		if d := c.dc; d != nil && addr < d.limit {
			// Self-modifying code: drop any predecoded entry the store
			// clobbers.
			c.dcInvalidations += d.invalidate(addr, uint32(size))
		}
		if len(c.watchpoints) != 0 && c.watchTriggered(addr, size) {
			if c.profile != nil {
				c.profile.record(c.PC, cost)
			}
			c.PC = next
			c.cycles += cost
			c.icount++
			return StopWatch
		}

	// --- branches ---
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		// For branches the encoder stores ra in the Rd field and rb in Rs1.
		a, b := c.Regs[i.Rd], c.Regs[i.Rs1]
		var taken bool
		switch i.Op {
		case isa.BEQ:
			taken = a == b
		case isa.BNE:
			taken = a != b
		case isa.BLT:
			taken = int32(a) < int32(b)
		case isa.BGE:
			taken = int32(a) >= int32(b)
		case isa.BLTU:
			taken = a < b
		case isa.BGEU:
			taken = a >= b
		}
		if taken {
			cost = c.cpi.Branch
			next = c.PC + uint32(i.Imm)*isa.Word
		}

	// --- jumps ---
	case isa.JAL:
		cost = c.cpi.Branch
		c.setReg(i.Rd, c.PC+isa.Word)
		next = c.PC + uint32(i.Imm)*isa.Word
	case isa.JALR:
		cost = c.cpi.Branch
		target := (rs1 + imm) &^ 3
		c.setReg(i.Rd, c.PC+isa.Word)
		next = target

	// --- system ---
	case isa.ECALL:
		if c.SR[isa.SRIVec] != 0 {
			if c.profile != nil {
				c.profile.record(c.PC, cost)
			}
			c.PC = next
			c.cycles += cost
			c.icount++
			c.trap(isa.CauseECall)
			return StopBudget
		}
		if c.Syscall != nil && c.Syscall(c) {
			break // handled by host; fall through to advance PC
		}
		return StopEcall
	case isa.EBREAK:
		// PC stays at the EBREAK address: GDB expects the stop address
		// to be the planted breakpoint.
		return StopEBreak
	case isa.ERET:
		if c.profile != nil {
			c.profile.record(c.PC, cost)
		}
		c.icount++
		c.cycles += cost
		c.eret()
		return StopBudget
	case isa.WFI:
		if c.profile != nil {
			c.profile.record(c.PC, cost)
		}
		c.PC = next
		c.cycles += cost
		c.icount++
		if c.PendingIRQ() == 0 {
			c.sleeping = true
			return StopIdle
		}
		return StopBudget
	case isa.HALT:
		if c.profile != nil {
			c.profile.record(c.PC, cost)
		}
		c.halted = true
		c.PC = next
		c.icount++
		return StopHalt
	case isa.MFSR:
		c.refreshCycleSRs()
		c.setReg(i.Rd, c.SR[i.Imm&(isa.NumSRegs-1)])
	case isa.MTSR:
		sr := int(i.Imm) & (isa.NumSRegs - 1)
		if sr != isa.SRCycle && sr != isa.SRCycleH {
			c.SR[sr] = rs1
		}

	default:
		return c.fault(isa.CauseIllegal)
	}

	if c.profile != nil {
		c.profile.record(c.PC, cost)
	}
	c.PC = next
	c.cycles += cost
	c.icount++
	return StopBudget
}

// refreshCycleSRs mirrors the cycle counter into the SR file.
func (c *CPU) refreshCycleSRs() {
	c.SR[isa.SRCycle] = uint32(c.cycles)
	c.SR[isa.SRCycleH] = uint32(c.cycles >> 32)
}

// checkInterval is how many instructions the batched hot loop retires
// between re-checks of the halted/sleeping/interrupt conditions. It
// bounds IRQ delivery latency and matches dev.TickQuantum, so platform
// timer jitter is unchanged by batching.
const checkInterval = 64

// Run executes up to budget instructions, returning the stop reason and
// the number of instructions actually executed. When resuming from a
// hardware breakpoint, the instruction at the breakpoint executes first.
//
// On the cached engine the halted/sleeping/IRQ checks are hoisted out
// of the per-instruction path and re-run every checkInterval
// instructions or whenever the inner loop exits on a stop; breakpoints
// still hit exactly (they are folded into the cache entries).
func (c *CPU) Run(budget uint64) (Stop, uint64) {
	start := c.icount
	if c.dc == nil {
		return c.runUncached(budget, start)
	}
	for steps := uint64(0); steps < budget; {
		// Hoisted slow checks: Step's prologue, batched.
		if c.halted {
			return StopHalt, c.icount - start
		}
		if c.sleeping {
			if c.PendingIRQ() == 0 {
				return StopIdle, c.icount - start
			}
			c.sleeping = false
		}
		if c.checkIRQ() {
			steps++ // trap entry consumes a step without retiring
			continue
		}
		batch := budget - steps
		if batch > checkInterval {
			batch = checkInterval
		}
		stop, n := c.runBatch(batch)
		steps += n
		if stop != StopBudget {
			if stop == StopBreak {
				c.stepOverBP = true
			}
			return stop, c.icount - start
		}
	}
	return StopBudget, c.icount - start
}

// runBatch is the predecoded inner loop: up to n instructions with no
// interrupt/halt re-checks (the caller has just done them; exec-side
// stops still exit immediately). Returns the stop and steps consumed.
func (c *CPU) runBatch(n uint64) (Stop, uint64) {
	d := c.dc
	for i := uint64(0); i < n; i++ {
		pc := c.PC
		if pc < d.limit && pc%isa.Word == 0 {
			if e := d.entry(pc); e.flags&dcDecoded != 0 {
				if e.flags&dcBP != 0 && !c.stepOverBP {
					return StopBreak, i
				}
				c.dcHits++
				c.stepOverBP = false
				if s := c.exec(e.inst); s != StopBudget {
					return s, i + 1
				}
				switch e.inst.Op {
				case isa.MTSR, isa.ERET, isa.WFI:
					// Interrupt deliverability may have changed (IE
					// toggled, trap return, wake with pending line):
					// hand control back to the hoisted checks now
					// rather than at the batch boundary.
					return StopBudget, i + 1
				}
				continue
			}
		}
		// Decode miss or uncacheable PC: full per-step semantics minus
		// the hoisted prologue, then back to the outer checks — for an
		// unknown opcode the batch must not outrun an IE change.
		if _, bp := c.breakpoints[pc]; bp && !c.stepOverBP {
			return StopBreak, i
		}
		return c.fetchExec(), i + 1
	}
	return StopBudget, n
}

// runUncached is the legacy engine's run loop: a full Step — with
// per-instruction interrupt and breakpoint checks — every iteration.
func (c *CPU) runUncached(budget, start uint64) (Stop, uint64) {
	// Each Step is at most one instruction; trap entries consume a step
	// without retiring an instruction, which bounds the loop regardless.
	for steps := uint64(0); steps < budget; steps++ {
		s := c.Step()
		switch s {
		case StopBudget:
			continue
		case StopBreak:
			c.stepOverBP = true
			return s, c.icount - start
		default:
			return s, c.icount - start
		}
	}
	return StopBudget, c.icount - start
}

func boolTo(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func div32(a, b uint32) uint32 {
	if b == 0 {
		return ^uint32(0) // -1, RISC-V convention
	}
	if int32(a) == -1<<31 && int32(b) == -1 {
		return a // overflow: result is dividend
	}
	return uint32(int32(a) / int32(b))
}

func rem32(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	if int32(a) == -1<<31 && int32(b) == -1 {
		return 0
	}
	return uint32(int32(a) % int32(b))
}

func loadSize(op isa.Opcode) int {
	switch op {
	case isa.LW:
		return 4
	case isa.LH, isa.LHU:
		return 2
	default:
		return 1
	}
}

func storeSize(op isa.Opcode) int {
	switch op {
	case isa.SW:
		return 4
	case isa.SH:
		return 2
	default:
		return 1
	}
}
