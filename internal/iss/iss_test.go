package iss

import (
	"testing"

	"cosim/internal/asm"
	"cosim/internal/isa"
)

// buildCPU assembles src and loads it into a fresh CPU.
func buildCPU(t *testing.T, src string) (*CPU, *asm.Image) {
	t.Helper()
	im, err := asm.Assemble(asm.Options{DataBase: 0x10000}, asm.Source{Name: "t.s", Text: src})
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	ram := NewRAM(1 << 20)
	if err := im.LoadInto(ram); err != nil {
		t.Fatalf("load: %v", err)
	}
	c := New(NewSystemBus(ram))
	c.Reset(im.Entry)
	return c, im
}

// runToHalt runs the CPU and requires a clean HALT.
func runToHalt(t *testing.T, c *CPU, budget uint64) {
	t.Helper()
	stop, _ := c.Run(budget)
	if stop != StopHalt {
		t.Fatalf("stop = %v (pc=%#x), want halt", stop, c.PC)
	}
}

func TestArithmetic(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    addi a0, zero, 21
    addi a1, zero, 2
    mul  a2, a0, a1     ; 42
    addi a3, zero, 100
    div  a4, a3, a1     ; 50
    rem  a5, a3, a2     ; 100 % 42 = 16
    sub  s0, a3, a0     ; 79
    halt
`)
	runToHalt(t, c, 100)
	if got := c.Regs[12]; got != 42 {
		t.Errorf("a2 = %d, want 42", got)
	}
	if got := c.Regs[14]; got != 50 {
		t.Errorf("a4 = %d, want 50", got)
	}
	if got := c.Regs[15]; got != 16 {
		t.Errorf("a5 = %d, want 16", got)
	}
	if got := c.Regs[4]; got != 79 {
		t.Errorf("s0 = %d, want 79", got)
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    addi zero, zero, 99
    add  a0, zero, zero
    halt
`)
	runToHalt(t, c, 10)
	if c.Regs[0] != 0 || c.Regs[10] != 0 {
		t.Fatalf("zero = %d, a0 = %d", c.Regs[0], c.Regs[10])
	}
}

func TestFibonacciLoop(t *testing.T) {
	c, _ := buildCPU(t, `
; compute fib(12) iteratively into a0
_start:
    addi t0, zero, 12   ; n
    addi a0, zero, 0    ; fib(0)
    addi t1, zero, 1    ; fib(1)
loop:
    beqz t0, done
    add  t2, a0, t1
    mv   a0, t1
    mv   t1, t2
    addi t0, t0, -1
    j    loop
done:
    halt
`)
	runToHalt(t, c, 1000)
	if got := c.Regs[10]; got != 144 {
		t.Fatalf("fib(12) = %d, want 144", got)
	}
}

func TestLoadStoreAllWidths(t *testing.T) {
	c, im := buildCPU(t, `
_start:
    la   gp, buf
    li   a0, 0x12345678
    sw   a0, 0(gp)
    lw   a1, 0(gp)
    lh   a2, 0(gp)      ; 0x5678 sign-extended
    lhu  a3, 2(gp)      ; 0x1234
    lb   a4, 1(gp)      ; 0x56
    lbu  a5, 3(gp)      ; 0x12
    li   t0, 0xFFFF8001
    sh   t0, 4(gp)
    lh   s0, 4(gp)      ; sign-extended 0x8001 = -32767
    lhu  s1, 4(gp)      ; 0x8001
    sb   t0, 6(gp)
    lb   s2, 6(gp)      ; 0x01
    halt
.data
buf: .space 16
`)
	_ = im
	runToHalt(t, c, 100)
	if c.Regs[11] != 0x12345678 {
		t.Errorf("lw = %#x", c.Regs[11])
	}
	if c.Regs[12] != 0x5678 {
		t.Errorf("lh = %#x", c.Regs[12])
	}
	if c.Regs[13] != 0x1234 {
		t.Errorf("lhu = %#x", c.Regs[13])
	}
	if c.Regs[14] != 0x56 {
		t.Errorf("lb = %#x", c.Regs[14])
	}
	if c.Regs[15] != 0x12 {
		t.Errorf("lbu = %#x", c.Regs[15])
	}
	if int32(c.Regs[4]) != -32767 {
		t.Errorf("lh signed = %d", int32(c.Regs[4]))
	}
	if c.Regs[5] != 0x8001 {
		t.Errorf("lhu = %#x", c.Regs[5])
	}
	if c.Regs[6] != 1 {
		t.Errorf("lb low byte = %d", c.Regs[6])
	}
}

func TestFunctionCall(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   sp, 0x8000
    addi a0, zero, 10
    call square
    mv   s0, a0
    addi a0, zero, 7
    call square
    add  a0, a0, s0     ; 100 + 49
    halt
square:
    mul  a0, a0, a0
    ret
`)
	runToHalt(t, c, 1000)
	if got := c.Regs[10]; got != 149 {
		t.Fatalf("result = %d, want 149", got)
	}
}

func TestShifts(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   a0, 0x80000000
    srai a1, a0, 4       ; arithmetic: 0xF8000000
    srli a2, a0, 4       ; logical:    0x08000000
    addi a3, zero, 1
    slli a3, a3, 31      ; 0x80000000
    addi t0, zero, 8
    srl  a4, a0, t0
    sra  a5, a0, t0
    halt
`)
	runToHalt(t, c, 100)
	if c.Regs[11] != 0xf8000000 {
		t.Errorf("srai = %#x", c.Regs[11])
	}
	if c.Regs[12] != 0x08000000 {
		t.Errorf("srli = %#x", c.Regs[12])
	}
	if c.Regs[13] != 0x80000000 {
		t.Errorf("slli = %#x", c.Regs[13])
	}
	if c.Regs[14] != 0x00800000 {
		t.Errorf("srl = %#x", c.Regs[14])
	}
	if c.Regs[15] != 0xff800000 {
		t.Errorf("sra = %#x", c.Regs[15])
	}
}

func TestComparisons(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   a0, -5
    addi a1, zero, 3
    slt  t0, a0, a1      ; -5 < 3 signed -> 1
    sltu t1, a0, a1      ; huge unsigned < 3 -> 0
    slti t2, a1, 10      ; 1
    sltiu t3, a1, 2      ; 0
    halt
`)
	runToHalt(t, c, 100)
	if c.Regs[16] != 1 || c.Regs[17] != 0 || c.Regs[18] != 1 || c.Regs[19] != 0 {
		t.Fatalf("slt results = %d %d %d %d", c.Regs[16], c.Regs[17], c.Regs[18], c.Regs[19])
	}
}

func TestDivByZeroConvention(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    addi a0, zero, 7
    div  a1, a0, zero    ; -1
    divu a2, a0, zero    ; 0xFFFFFFFF
    rem  a3, a0, zero    ; 7
    remu a4, a0, zero    ; 7
    halt
`)
	runToHalt(t, c, 100)
	if c.Regs[11] != 0xffffffff || c.Regs[12] != 0xffffffff {
		t.Errorf("div by zero = %#x %#x", c.Regs[11], c.Regs[12])
	}
	if c.Regs[13] != 7 || c.Regs[14] != 7 {
		t.Errorf("rem by zero = %d %d", c.Regs[13], c.Regs[14])
	}
}

func TestHostSyscall(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    addi a0, zero, 33
    ecall
    addi a1, zero, 1     ; must run after the ecall returns
    halt
`)
	var got uint32
	c.Syscall = func(cpu *CPU) bool {
		got = cpu.Regs[10]
		cpu.Regs[10] = 77
		return true
	}
	runToHalt(t, c, 100)
	if got != 33 {
		t.Fatalf("syscall saw a0 = %d", got)
	}
	if c.Regs[10] != 77 || c.Regs[11] != 1 {
		t.Fatalf("after syscall a0=%d a1=%d", c.Regs[10], c.Regs[11])
	}
}

func TestEcallWithoutHandlerStops(t *testing.T) {
	c, _ := buildCPU(t, "_start:\n    ecall\n    halt\n")
	stop, _ := c.Run(10)
	if stop != StopEcall {
		t.Fatalf("stop = %v, want ecall", stop)
	}
}

func TestTrapVectorEcall(t *testing.T) {
	c, _ := buildCPU(t, `
.equ TRAP_VEC, 0x200
_start:
    li   t0, TRAP_VEC
    mtsr ivec, t0
    addi a0, zero, 5
    ecall                ; vectors to handler
    addi a0, a0, 100     ; resumes here: a0 = 5*2+100
    halt
.org TRAP_VEC
handler:
    mfsr t1, cause
    add  a0, a0, a0      ; double a0
    eret
`)
	runToHalt(t, c, 1000)
	if got := c.Regs[10]; got != 110 {
		t.Fatalf("a0 = %d, want 110", got)
	}
	if got := c.Regs[17]; got != isa.CauseECall {
		t.Fatalf("cause = %d, want %d", got, isa.CauseECall)
	}
}

func TestIllegalInstructionFault(t *testing.T) {
	ram := NewRAM(1 << 16)
	_ = ram.Write(0, 4, uint32(0x3f)<<26) // undefined opcode
	c := New(NewSystemBus(ram))
	c.Reset(0)
	stop, _ := c.Run(10)
	if stop != StopError {
		t.Fatalf("stop = %v, want error", stop)
	}
}

func TestIllegalVectorsWhenHandlerInstalled(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   t0, 0x100
    mtsr ivec, t0
    .word 0xFC000000     ; illegal opcode
    halt
.org 0x100
handler:
    mfsr a0, cause
    halt
`)
	runToHalt(t, c, 100)
	if got := c.Regs[10]; got != isa.CauseIllegal {
		t.Fatalf("cause = %d, want illegal", got)
	}
}

func TestInterruptDelivery(t *testing.T) {
	c, _ := buildCPU(t, `
.equ VEC, 0x300
_start:
    li   t0, VEC
    mtsr ivec, t0
    ei
spin:
    addi s0, s0, 1
    j    spin
.org VEC
isr:
    mfsr a0, cause
    addi s1, zero, 1     ; flag: isr ran
    halt
`)
	// Run a while without the IRQ: must keep spinning.
	stop, _ := c.Run(500)
	if stop != StopBudget {
		t.Fatalf("pre-irq stop = %v", stop)
	}
	if c.Regs[5] != 0 {
		t.Fatal("isr ran before IRQ was raised")
	}
	c.RaiseIRQ(3)
	runToHalt(t, c, 1000)
	if c.Regs[5] != 1 {
		t.Fatal("isr did not run")
	}
	if got := c.Regs[10]; got != isa.CauseIRQBase+3 {
		t.Fatalf("cause = %d, want %d", got, isa.CauseIRQBase+3)
	}
}

func TestInterruptMaskedByIE(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   t0, 0x300
    mtsr ivec, t0
    ; interrupts NOT enabled
spin:
    addi s0, s0, 1
    j    spin
.org 0x300
isr:
    halt
`)
	c.RaiseIRQ(0)
	stop, _ := c.Run(200)
	if stop != StopBudget {
		t.Fatalf("stop = %v; interrupt taken while IE=0?", stop)
	}
}

func TestEretRestoresInterruptEnable(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   t0, 0x300
    mtsr ivec, t0
    ei
spin:
    addi s0, s0, 1
    j    spin
.org 0x300
isr:
    addi s1, s1, 1
    eret
`)
	c.RaiseIRQ(0)
	_, _ = c.Run(50)
	if c.Regs[5] == 0 {
		t.Fatal("first interrupt not taken")
	}
	// Level is still asserted (we never cleared): with ERET restoring
	// IE, the ISR keeps being re-entered.
	first := c.Regs[5]
	_, _ = c.Run(200)
	if c.Regs[5] <= first {
		t.Fatal("interrupt enable not restored by eret")
	}
	c.ClearIRQ(0)
	before := c.Regs[4]
	_, _ = c.Run(200)
	if c.Regs[4] <= before {
		t.Fatal("spin loop did not resume after ClearIRQ")
	}
}

func TestWFI(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   t0, 0x300
    mtsr ivec, t0
    ei
    wfi
    addi s0, zero, 42    ; after wakeup+isr
    halt
.org 0x300
isr:
    addi s1, zero, 1
    eret
`)
	stop, _ := c.Run(100)
	if stop != StopIdle {
		t.Fatalf("stop = %v, want idle", stop)
	}
	if !c.Sleeping() {
		t.Fatal("not sleeping after WFI")
	}
	c.RaiseIRQ(1)
	// Level-triggered: the line stays asserted until cleared, so the ISR
	// re-enters; clear it (as a PIC acknowledge would) and run to halt.
	_, _ = c.Run(50)
	if c.Regs[5] != 1 {
		t.Fatal("isr did not run after wakeup")
	}
	c.ClearIRQ(1)
	runToHalt(t, c, 1000)
	if c.Regs[4] != 42 {
		t.Fatalf("s0=%d", c.Regs[4])
	}
}

func TestHardwareBreakpoint(t *testing.T) {
	c, im := buildCPU(t, `
_start:
    addi a0, zero, 1
bp_here:
    addi a0, a0, 10
    addi a0, a0, 100
    halt
`)
	addr := im.MustSymbol("bp_here")
	c.AddBreakpoint(addr)
	stop, _ := c.Run(100)
	if stop != StopBreak {
		t.Fatalf("stop = %v, want breakpoint", stop)
	}
	if c.PC != addr {
		t.Fatalf("stopped at %#x, want %#x", c.PC, addr)
	}
	if c.Regs[10] != 1 {
		t.Fatalf("a0 = %d at breakpoint, want 1", c.Regs[10])
	}
	// Resume: must execute the breakpointed instruction and continue.
	runToHalt(t, c, 100)
	if c.Regs[10] != 111 {
		t.Fatalf("a0 = %d after resume, want 111", c.Regs[10])
	}
}

func TestBreakpointHitTwiceInLoop(t *testing.T) {
	c, im := buildCPU(t, `
_start:
    addi t0, zero, 3
loop:
    addi s0, s0, 1
    addi t0, t0, -1
    bnez t0, loop
    halt
`)
	addr := im.MustSymbol("loop")
	c.AddBreakpoint(addr)
	hits := 0
	for {
		stop, _ := c.Run(1000)
		if stop == StopBreak {
			hits++
			continue
		}
		if stop == StopHalt {
			break
		}
		t.Fatalf("unexpected stop %v", stop)
	}
	if hits != 3 {
		t.Fatalf("breakpoint hit %d times, want 3", hits)
	}
	if c.Regs[4] != 3 {
		t.Fatalf("s0 = %d", c.Regs[4])
	}
}

func TestRemoveBreakpoint(t *testing.T) {
	c, im := buildCPU(t, "_start:\nbp:\n    nop\n    halt\n")
	addr := im.MustSymbol("bp")
	c.AddBreakpoint(addr)
	if !c.HasBreakpoint(addr) {
		t.Fatal("breakpoint not armed")
	}
	c.RemoveBreakpoint(addr)
	runToHalt(t, c, 10)
}

func TestEBreakStops(t *testing.T) {
	c, im := buildCPU(t, `
_start:
    nop
brk:
    ebreak
    halt
`)
	stop, _ := c.Run(100)
	if stop != StopEBreak {
		t.Fatalf("stop = %v, want ebreak", stop)
	}
	if c.PC != im.MustSymbol("brk") {
		t.Fatalf("PC = %#x, want ebreak address", c.PC)
	}
}

func TestWatchpoint(t *testing.T) {
	c, im := buildCPU(t, `
_start:
    la   gp, target
    addi a0, zero, 7
    sw   a0, 0(gp)
    addi a1, zero, 1
    halt
.data
target: .word 0
`)
	wa := im.MustSymbol("target")
	c.AddWatchpoint(wa, 4)
	stop, _ := c.Run(100)
	if stop != StopWatch {
		t.Fatalf("stop = %v, want watchpoint", stop)
	}
	if c.WatchHit() != wa {
		t.Fatalf("watch hit = %#x, want %#x", c.WatchHit(), wa)
	}
	// The store has executed; a1 has not been set yet.
	if c.Regs[11] != 0 {
		t.Fatal("watchpoint fired late")
	}
	v, _ := c.Bus().Read(wa, 4)
	if v != 7 {
		t.Fatalf("target = %d", v)
	}
	c.RemoveWatchpoint(wa)
	runToHalt(t, c, 100)
}

func TestCycleCounting(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    addi a0, zero, 1    ; 1 cycle
    lw   a1, 0(zero)    ; 2 cycles
    sw   a1, 4(zero)    ; 2 cycles
    mul  a2, a0, a0     ; 3 cycles
    div  a3, a0, a0     ; 16 cycles
    halt
`)
	runToHalt(t, c, 100)
	if got := c.Cycles(); got != 24 {
		t.Fatalf("cycles = %d, want 24", got)
	}
	if got := c.Instructions(); got != 6 {
		t.Fatalf("instructions = %d, want 6 (incl. halt)", got)
	}
}

func TestMfsrCycleCounter(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    addi a0, zero, 1
    addi a0, zero, 2
    mfsr a1, cycle
    halt
`)
	runToHalt(t, c, 100)
	if got := c.Regs[11]; got != 2 {
		t.Fatalf("cycle SR read = %d, want 2", got)
	}
}

func TestRAMBounds(t *testing.T) {
	r := NewRAM(0x1000)
	if err := r.Write(0xfff, 1, 1); err != nil {
		t.Fatalf("in-bounds write failed: %v", err)
	}
	if err := r.Write(0x1000, 1, 1); err == nil {
		t.Fatal("out-of-bounds write succeeded")
	}
	if err := r.Write(0xffe, 4, 1); err == nil {
		t.Fatal("straddling write succeeded")
	}
	if _, err := r.Read(0x2000, 4); err == nil {
		t.Fatal("out-of-bounds read succeeded")
	}
	if _, err := r.Read(0, 3); err == nil {
		t.Fatal("bad size accepted")
	}
}

func TestRAMSparse(t *testing.T) {
	r := NewRAM(0) // unbounded
	if err := r.Write(0xfffffff0, 4, 0xcafe); err != nil {
		t.Fatal(err)
	}
	v, err := r.Read(0xfffffff0, 4)
	if err != nil || v != 0xcafe {
		t.Fatalf("read = %#x, %v", v, err)
	}
	// Untouched memory reads zero without allocation.
	v, err = r.Read(0x12345678, 4)
	if err != nil || v != 0 {
		t.Fatalf("untouched = %#x, %v", v, err)
	}
	if len(r.pages) != 1 {
		t.Fatalf("pages allocated = %d, want 1", len(r.pages))
	}
}

func TestRAMCrossPageAccess(t *testing.T) {
	r := NewRAM(0)
	addr := uint32(pageSize - 2)
	if err := r.Write(addr, 4, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := r.Read(addr, 4)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("cross-page read = %#x, %v", v, err)
	}
}

// echoDev is a trivial MMIO device for bus tests.
type echoDev struct{ last uint32 }

func (d *echoDev) Name() string { return "echo" }
func (d *echoDev) Size() uint32 { return 16 }
func (d *echoDev) Read(off uint32, size int) (uint32, error) {
	return d.last + off, nil
}
func (d *echoDev) Write(off uint32, size int, v uint32) error {
	d.last = v
	return nil
}

func TestSystemBusDeviceRouting(t *testing.T) {
	ram := NewRAM(0x10000)
	bus := NewSystemBus(ram)
	dev := &echoDev{}
	if err := bus.Map(0xf0000000, dev); err != nil {
		t.Fatal(err)
	}
	if err := bus.Write(0xf0000000, 4, 55); err != nil {
		t.Fatal(err)
	}
	v, err := bus.Read(0xf0000004, 4)
	if err != nil || v != 59 {
		t.Fatalf("device read = %d, %v", v, err)
	}
	// RAM still routed normally.
	if err := bus.Write(0x100, 4, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := bus.Read(0x100, 4); v != 7 {
		t.Fatalf("ram read = %d", v)
	}
	// Overlap rejected.
	if err := bus.Map(0xf0000008, &echoDev{}); err == nil {
		t.Fatal("overlapping map accepted")
	}
}

func TestMMIOFromProgram(t *testing.T) {
	im, err := asm.Assemble(asm.Options{}, asm.Source{Name: "m.s", Text: `
.equ DEV, 0xF0000000
_start:
    li   t0, DEV
    addi a0, zero, 123
    sw   a0, 0(t0)
    lw   a1, 4(t0)      ; 123+4
    halt
`})
	if err != nil {
		t.Fatal(err)
	}
	ram := NewRAM(1 << 16)
	_ = im.LoadInto(ram)
	bus := NewSystemBus(ram)
	dev := &echoDev{}
	_ = bus.Map(0xf0000000, dev)
	c := New(bus)
	c.Reset(im.Entry)
	runToHalt(t, c, 100)
	if dev.last != 123 {
		t.Fatalf("device saw %d", dev.last)
	}
	if c.Regs[11] != 127 {
		t.Fatalf("a1 = %d", c.Regs[11])
	}
}

func TestResetClearsState(t *testing.T) {
	c, _ := buildCPU(t, "_start:\n    addi a0, zero, 9\n    halt\n")
	runToHalt(t, c, 10)
	c.Reset(0)
	if c.Regs[10] != 0 || c.Cycles() != 0 || c.Halted() {
		t.Fatal("reset incomplete")
	}
	runToHalt(t, c, 10)
}

func TestRunBudget(t *testing.T) {
	c, _ := buildCPU(t, "_start:\nspin:\n    j spin\n")
	stop, n := c.Run(50)
	if stop != StopBudget {
		t.Fatalf("stop = %v", stop)
	}
	if n != 50 {
		t.Fatalf("executed = %d, want 50", n)
	}
}

func TestStopStrings(t *testing.T) {
	for s := StopBudget; s <= StopError; s++ {
		if s.String() == "" {
			t.Errorf("Stop(%d) has empty string", s)
		}
	}
}

func TestMisalignedPCFaults(t *testing.T) {
	c, _ := buildCPU(t, "_start:\n    nop\n")
	c.PC = 2
	stop := c.Step()
	if stop != StopError {
		t.Fatalf("stop = %v, want error (no vector)", stop)
	}
}

func TestMisalignedLoadFaults(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    addi t0, zero, 2
    lw   a0, 0(t0)
    halt
`)
	stop, _ := c.Run(10)
	if stop != StopError {
		t.Fatalf("stop = %v, want error", stop)
	}
}
