package iss

import (
	"math/rand"
	"strings"
	"testing"

	"cosim/internal/asm"
	"cosim/internal/isa"
)

func TestAllBranchConditions(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   t0, -1          ; 0xFFFFFFFF
    addi t1, zero, 1
    ; signed: -1 < 1, unsigned: 0xFFFFFFFF > 1
    blt  t0, t1, s1
    j    fail
s1: bge  t1, t0, s2
    j    fail
s2: bltu t1, t0, s3
    j    fail
s3: bgeu t0, t1, s4
    j    fail
s4: beq  t0, t0, s5
    j    fail
s5: bne  t0, t1, ok
fail:
    addi a0, zero, 0
    halt
ok:
    addi a0, zero, 1
    halt
`)
	runToHalt(t, c, 100)
	if c.Regs[10] != 1 {
		t.Fatal("branch condition matrix failed")
	}
}

func TestJALLinksCorrectly(t *testing.T) {
	c, im := buildCPU(t, `
_start:
    jal  ra, target
after:
    halt
target:
    mv   a0, ra
    halt
`)
	runToHalt(t, c, 10)
	if c.Regs[10] != im.MustSymbol("after") {
		t.Fatalf("ra = %#x, want %#x", c.Regs[10], im.MustSymbol("after"))
	}
}

func TestJALRClearsLowBits(t *testing.T) {
	c, im := buildCPU(t, `
_start:
    la   t0, target
    addi t0, t0, 2       ; misalign the target on purpose
    jalr ra, t0, 0       ; hardware clears the low bits
target:
    addi a0, zero, 7
    halt
`)
	_ = im
	runToHalt(t, c, 20)
	if c.Regs[10] != 7 {
		t.Fatalf("a0 = %d", c.Regs[10])
	}
}

func TestMULHSigned(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   a0, -2
    li   a1, 3
    mulh a2, a0, a1      ; high word of -6 = 0xFFFFFFFF
    li   a3, 0x40000000
    mulh a4, a3, a3      ; (2^30)^2 >> 32 = 2^28
    halt
`)
	runToHalt(t, c, 100)
	if c.Regs[12] != 0xffffffff {
		t.Errorf("mulh(-2,3) high = %#x", c.Regs[12])
	}
	if c.Regs[14] != 1<<28 {
		t.Errorf("mulh(2^30,2^30) = %#x, want %#x", c.Regs[14], uint32(1)<<28)
	}
}

func TestMemcpyProgram(t *testing.T) {
	c, im := buildCPU(t, `
; memcpy(dst, src, n) byte-wise, then verify by checksumming
_start:
    la   a0, dst
    la   a1, src
    addi a2, zero, 13
copy:
    beqz a2, done
    lbu  t0, 0(a1)
    sb   t0, 0(a0)
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, -1
    j    copy
done:
    halt
.data
src: .asciz "hello, world"
.align 4
dst: .space 16
`)
	runToHalt(t, c, 1000)
	got, _ := c.Bus().(*SystemBus).RAM().ReadBytes(im.MustSymbol("dst"), 13)
	if string(got[:12]) != "hello, world" || got[12] != 0 {
		t.Fatalf("dst = %q", got)
	}
}

func TestRecursiveFactorial(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   sp, 0x8000
    addi a0, zero, 6
    call fact
    halt

; fact(n): n <= 1 ? 1 : n * fact(n-1)
fact:
    addi t0, zero, 1
    bgt  a0, t0, recurse
    addi a0, zero, 1
    ret
recurse:
    addi sp, sp, -8
    sw   ra, 0(sp)
    sw   a0, 4(sp)
    addi a0, a0, -1
    call fact
    lw   t1, 4(sp)
    mul  a0, a0, t1
    lw   ra, 0(sp)
    addi sp, sp, 8
    ret
`)
	runToHalt(t, c, 10_000)
	if c.Regs[10] != 720 {
		t.Fatalf("6! = %d", c.Regs[10])
	}
}

func TestIRQPriorityLowestLineFirst(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   t0, 0x300
    mtsr ivec, t0
    ei
    wfi
    halt
.org 0x300
isr:
    mfsr a0, cause
    halt
`)
	c.RaiseIRQ(5)
	c.RaiseIRQ(2)
	c.RaiseIRQ(7)
	runToHalt(t, c, 1000)
	if got := c.Regs[10]; got != isa.CauseIRQBase+2 {
		t.Fatalf("cause = %d, want line 2 first", got)
	}
}

func TestSetIRQMask(t *testing.T) {
	c, _ := buildCPU(t, `
_start:
    li   t0, 0x300
    mtsr ivec, t0
    ei
    wfi
    halt
.org 0x300
isr:
    mfsr a0, cause
    halt
`)
	c.SetIRQMask(1 << 4) // only line 4 enabled
	c.RaiseIRQ(2)        // masked: does not wake
	stop, _ := c.Run(100)
	if stop != StopIdle {
		t.Fatalf("stop = %v, masked IRQ woke the CPU", stop)
	}
	c.RaiseIRQ(4)
	runToHalt(t, c, 1000)
	if got := c.Regs[10]; got != isa.CauseIRQBase+4 {
		t.Fatalf("cause = %d", got)
	}
}

func TestWakeChanSignalled(t *testing.T) {
	c, _ := buildCPU(t, "_start:\n    nop\n    halt\n")
	select {
	case <-c.WakeChan():
		t.Fatal("wake before any IRQ")
	default:
	}
	c.RaiseIRQ(0)
	select {
	case <-c.WakeChan():
	default:
		t.Fatal("RaiseIRQ did not signal the wake channel")
	}
}

// TestDeterministicExecution runs random straight-line ALU programs
// twice and checks identical final state — guarding against hidden
// host-dependent behaviour in the interpreter.
func TestDeterministicExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	ops := []isa.Opcode{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL,
		isa.SRL, isa.SRA, isa.SLT, isa.SLTU, isa.MUL, isa.MULH, isa.DIV, isa.REM}
	for trial := 0; trial < 20; trial++ {
		var words []uint32
		// Seed registers with immediates, then random ALU soup.
		for r := uint8(1); r < 16; r++ {
			words = append(words, isa.EncodeMust(isa.Inst{
				Op: isa.ADDI, Rd: r, Imm: int32(rng.Intn(0x10000)) - 0x8000}))
		}
		for i := 0; i < 200; i++ {
			op := ops[rng.Intn(len(ops))]
			words = append(words, isa.EncodeMust(isa.Inst{
				Op:  op,
				Rd:  uint8(1 + rng.Intn(15)),
				Rs1: uint8(rng.Intn(16)),
				Rs2: uint8(rng.Intn(16)),
			}))
		}
		words = append(words, isa.EncodeMust(isa.Inst{Op: isa.HALT}))

		run := func() ([32]uint32, uint64) {
			ram := NewRAM(1 << 16)
			for i, w := range words {
				_ = ram.Write(uint32(4*i), 4, w)
			}
			c := New(NewSystemBus(ram))
			c.Reset(0)
			stop, _ := c.Run(10_000)
			if stop != StopHalt {
				t.Fatalf("trial %d: stop %v", trial, stop)
			}
			return c.Regs, c.Cycles()
		}
		r1, cy1 := run()
		r2, cy2 := run()
		if r1 != r2 || cy1 != cy2 {
			t.Fatalf("trial %d: nondeterministic execution", trial)
		}
	}
}

// TestAssembleExecuteGoldenALU cross-checks the interpreter against Go
// arithmetic for random operand pairs flowing through assembly.
func TestAssembleExecuteGoldenALU(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		a, b := rng.Uint32(), rng.Uint32()
		src := `
_start:
    la  t0, opa
    lw  a0, 0(t0)
    la  t0, opb
    lw  a1, 0(t0)
    add  s0, a0, a1
    sub  s1, a0, a1
    xor  s2, a0, a1
    and  s3, a0, a1
    or   s4, a0, a1
    mul  s5, a0, a1
    halt
.data
.align 4
opa: .word 0
opb: .word 0
`
		im, err := asm.Assemble(asm.Options{DataBase: 0x10000}, asm.Source{Name: "g.s", Text: src})
		if err != nil {
			t.Fatal(err)
		}
		ram := NewRAM(1 << 20)
		_ = im.LoadInto(ram)
		_ = ram.Write(im.MustSymbol("opa"), 4, a)
		_ = ram.Write(im.MustSymbol("opb"), 4, b)
		c := New(NewSystemBus(ram))
		c.Reset(im.Entry)
		runToHalt(t, c, 1000)
		want := []uint32{a + b, a - b, a ^ b, a & b, a | b, a * b}
		for i, w := range want {
			if c.Regs[4+i] != w {
				t.Fatalf("trial %d op %d: got %#x want %#x (a=%#x b=%#x)", trial, i, c.Regs[4+i], w, a, b)
			}
		}
	}
}

func TestProfiler(t *testing.T) {
	c, im := buildCPU(t, `
_start:
    addi t0, zero, 50
loop:
    addi t0, t0, -1
    bnez t0, loop
    halt
`)
	prof := NewProfile()
	c.AttachProfile(prof)
	runToHalt(t, c, 10_000)
	loopAddr := im.MustSymbol("loop")
	if got := prof.Count(loopAddr); got != 50 {
		t.Fatalf("loop body count = %d, want 50", got)
	}
	top := prof.Top(2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	// The two loop instructions dominate.
	for _, h := range top {
		if h.Count != 50 {
			t.Fatalf("hot spot %+v, want count 50", h)
		}
	}
	var sb strings.Builder
	prof.Report(&sb, 5, func(pc uint32) string {
		f, l, _ := im.LineOfAddr(pc)
		return f + ":" + itostr(l)
	})
	if !strings.Contains(sb.String(), "t.s:") {
		t.Fatalf("report lacks annotation:\n%s", sb.String())
	}
	if prof.Sites() != 4 {
		t.Fatalf("sites = %d, want 4 (addi, loop addi, bnez, halt)", prof.Sites())
	}
}

func itostr(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}
