package iss

import "cosim/internal/obs"

// PublishObs accumulates the CPU's execution counters into the
// registry: iss.instructions, iss.cycles and the iss.decode_cache_*
// fast-fetch-path totals. Counters (not gauges) so
// multi-processor configurations sum naturally — call once per CPU
// after the guest has been quiesced. Safe on a nil registry.
func (c *CPU) PublishObs(r *obs.Registry) {
	r.Counter("iss.instructions").Add(c.Instructions())
	r.Counter("iss.cycles").Add(c.Cycles())
	r.Counter("iss.decode_cache_hits").Add(c.dcHits)
	r.Counter("iss.decode_cache_misses").Add(c.dcMisses)
	r.Counter("iss.decode_cache_invalidations").Add(c.dcInvalidations)
}
