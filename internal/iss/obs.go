package iss

import "cosim/internal/obs"

// PublishObs accumulates the CPU's execution counters into the
// registry: iss.instructions and iss.cycles. Counters (not gauges) so
// multi-processor configurations sum naturally — call once per CPU
// after the guest has been quiesced. Safe on a nil registry.
func (c *CPU) PublishObs(r *obs.Registry) {
	r.Counter("iss.instructions").Add(c.Instructions())
	r.Counter("iss.cycles").Add(c.Cycles())
}
