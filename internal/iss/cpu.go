package iss

import (
	"fmt"
	"sync/atomic"

	"cosim/internal/isa"
)

// Stop describes why CPU.Run returned.
type Stop int

const (
	// StopBudget: the instruction budget was exhausted; the CPU is
	// still runnable.
	StopBudget Stop = iota
	// StopBreak: the CPU is stopped at a hardware breakpoint (PC is the
	// breakpoint address, the instruction has not executed).
	StopBreak
	// StopEBreak: an EBREAK instruction was reached (PC is the EBREAK
	// address) — the stop reason seen for GDB software breakpoints.
	StopEBreak
	// StopWatch: a write watchpoint fired (the store has executed).
	StopWatch
	// StopHalt: a HALT instruction executed; the CPU is finished.
	StopHalt
	// StopEcall: an ECALL executed with no trap vector and no host
	// syscall handler.
	StopEcall
	// StopIdle: a WFI executed with no pending enabled interrupt; the
	// CPU sleeps until an IRQ is raised.
	StopIdle
	// StopError: an unrecoverable fault (bus error or illegal
	// instruction with no trap vector installed).
	StopError
)

// String implements fmt.Stringer.
func (s Stop) String() string {
	switch s {
	case StopBudget:
		return "budget"
	case StopBreak:
		return "breakpoint"
	case StopEBreak:
		return "ebreak"
	case StopWatch:
		return "watchpoint"
	case StopHalt:
		return "halt"
	case StopEcall:
		return "ecall"
	case StopIdle:
		return "idle"
	case StopError:
		return "error"
	}
	return fmt.Sprintf("stop(%d)", int(s))
}

// CPIModel assigns a cycle cost per instruction class, making the ISS
// "cycle-based" in the sense used by the paper.
type CPIModel struct {
	Default uint64 // simple ALU, jumps
	Load    uint64
	Store   uint64
	Mul     uint64
	Div     uint64
	Branch  uint64 // taken branch penalty included
	Trap    uint64 // trap/interrupt entry
}

// DefaultCPI is a plausible small-core cost model.
var DefaultCPI = CPIModel{Default: 1, Load: 2, Store: 2, Mul: 3, Div: 16, Branch: 2, Trap: 4}

// SyscallHandler services ECALL instructions in bare-metal (hosted)
// mode, when no trap vector is installed. It may modify CPU state.
// Returning false stops the CPU with StopEcall.
type SyscallHandler func(c *CPU) bool

// CPU is one FV32 processor core.
type CPU struct {
	Regs [isa.NumRegs]uint32
	PC   uint32
	SR   [isa.NumSRegs]uint32

	bus    Bus
	cpi    CPIModel
	cycles uint64
	icount uint64

	halted   bool
	sleeping bool // in WFI

	irqPending uint32 // atomic bitmask of raised IRQ lines
	irqEnabled uint32 // mask of enabled lines (set via PIC or directly)
	wakeCh     chan struct{}

	breakpoints map[uint32]struct{}
	watchpoints map[uint32]uint32 // addr -> length
	stepOverBP  bool              // execute one instruction ignoring the bp at PC

	Syscall SyscallHandler

	profile *Profile

	lastWatchAddr uint32

	// Decode-once execution engine (see decode_cache.go): nil runs the
	// legacy bus.Read + isa.Decode per-step engine.
	dc              *decodeCache
	dcHits          uint64
	dcMisses        uint64
	dcInvalidations uint64
}

// New creates a CPU attached to the bus, with all interrupt lines
// enabled, the default CPI model, and (when the bus exposes a RAM) the
// predecoded fast fetch path active.
func New(bus Bus) *CPU {
	c := &CPU{
		bus:         bus,
		cpi:         DefaultCPI,
		irqEnabled:  0xff,
		breakpoints: make(map[uint32]struct{}),
		watchpoints: make(map[uint32]uint32),
		wakeCh:      make(chan struct{}, 1),
	}
	c.enableDecodeCache()
	return c
}

// enableDecodeCache sizes the predecode cache from the bus's backing
// RAM. Buses that don't expose a RAM (custom Bus implementations) run
// uncached: the cache could not see their memory mutations to
// invalidate against.
func (c *CPU) enableDecodeCache() {
	var limit uint32
	switch b := c.bus.(type) {
	case *SystemBus:
		limit = b.ram.Size()
	case *RAM:
		limit = b.Size()
	default:
		c.dc = nil
		return
	}
	c.dc = newDecodeCache(limit)
	for addr := range c.breakpoints {
		c.dcSetBP(addr)
	}
}

// SetDecodeCacheEnabled switches the predecoded fast fetch path on or
// off (on by default when the bus exposes a RAM). Disabling it restores
// the per-instruction bus.Read + isa.Decode engine — the ablation
// baseline exposed by benchtab's -nodecodecache flag.
func (c *CPU) SetDecodeCacheEnabled(enabled bool) {
	if !enabled {
		c.dc = nil
		return
	}
	if c.dc == nil {
		c.enableDecodeCache()
	}
}

// DecodeCacheEnabled reports whether the fast fetch path is active.
func (c *CPU) DecodeCacheEnabled() bool { return c.dc != nil }

// DecodeCacheStats returns the fast-path hit, decode-miss and
// invalidated-entry totals.
func (c *CPU) DecodeCacheStats() (hits, misses, invalidations uint64) {
	return c.dcHits, c.dcMisses, c.dcInvalidations
}

// InvalidateDecode drops predecoded entries overlapping [addr, addr+n).
// Writers that mutate guest memory without going through CPU stores —
// the GDB stub's M/X writes and EBREAK planting, DMA-style device
// models — must call this to keep the cache coherent. CPU stores
// invalidate automatically.
func (c *CPU) InvalidateDecode(addr, n uint32) {
	if c.dc == nil {
		return
	}
	c.dcInvalidations += c.dc.invalidate(addr, n)
}

// SetCPI replaces the cycle cost model.
func (c *CPU) SetCPI(m CPIModel) { c.cpi = m }

// Bus returns the CPU's memory bus.
func (c *CPU) Bus() Bus { return c.bus }

// Cycles returns the consumed cycle count.
func (c *CPU) Cycles() uint64 { return c.cycles }

// Instructions returns the executed instruction count.
func (c *CPU) Instructions() uint64 { return c.icount }

// Halted reports whether a HALT instruction has executed.
func (c *CPU) Halted() bool { return c.halted }

// Sleeping reports whether the CPU is parked in WFI.
func (c *CPU) Sleeping() bool { return c.sleeping }

// Reset returns the CPU to its power-on state, keeping breakpoints.
// Predecoded entries are dropped so a freshly loaded image is never
// executed through a stale cache.
func (c *CPU) Reset(pc uint32) {
	c.Regs = [isa.NumRegs]uint32{}
	c.SR = [isa.NumSRegs]uint32{}
	c.PC = pc
	c.cycles, c.icount = 0, 0
	c.halted, c.sleeping, c.stepOverBP = false, false, false
	atomic.StoreUint32(&c.irqPending, 0)
	if c.dc != nil {
		c.dc.flush()
	}
}

// --- breakpoints / watchpoints -------------------------------------------

// AddBreakpoint arms a hardware breakpoint at addr. Effective
// immediately, including between Run calls on the cached engine: the
// breakpoint is patched into the decode cache's entry flags.
func (c *CPU) AddBreakpoint(addr uint32) {
	c.breakpoints[addr] = struct{}{}
	c.dcSetBP(addr)
}

// RemoveBreakpoint disarms the breakpoint at addr.
func (c *CPU) RemoveBreakpoint(addr uint32) {
	delete(c.breakpoints, addr)
	if c.dc != nil && addr < c.dc.limit && addr%isa.Word == 0 {
		if e := c.dc.peek(addr); e != nil {
			e.flags &^= dcBP
		}
	}
}

// dcSetBP folds breakpoint presence into the cached entry so the fast
// loop tests a flag instead of a map.
func (c *CPU) dcSetBP(addr uint32) {
	if c.dc != nil && addr < c.dc.limit && addr%isa.Word == 0 {
		c.dc.entry(addr).flags |= dcBP
	}
}

// HasBreakpoint reports whether a breakpoint is armed at addr.
func (c *CPU) HasBreakpoint(addr uint32) bool {
	_, ok := c.breakpoints[addr]
	return ok
}

// AddWatchpoint arms a write watchpoint on [addr, addr+length).
func (c *CPU) AddWatchpoint(addr, length uint32) { c.watchpoints[addr] = length }

// RemoveWatchpoint disarms the watchpoint at addr.
func (c *CPU) RemoveWatchpoint(addr uint32) { delete(c.watchpoints, addr) }

// WatchHit returns the address whose watchpoint fired last.
func (c *CPU) WatchHit() uint32 { return c.lastWatchAddr }

// StepOverBreakpoint arms the CPU to execute the instruction at the
// current PC even if a hardware breakpoint is set there; used by
// debuggers when single-stepping off a stop.
func (c *CPU) StepOverBreakpoint() { c.stepOverBP = true }

// watchTriggered checks a store against the watchpoint set.
func (c *CPU) watchTriggered(addr uint32, size int) bool {
	for wa, wl := range c.watchpoints {
		if addr < wa+wl && wa < addr+uint32(size) {
			c.lastWatchAddr = wa
			return true
		}
	}
	return false
}

// --- interrupts -----------------------------------------------------------

// RaiseIRQ asserts external interrupt line n. Safe to call from any
// goroutine (this is how the SystemC side injects interrupts).
func (c *CPU) RaiseIRQ(n int) {
	if n < 0 || n >= isa.NumIRQ {
		return
	}
	for {
		old := atomic.LoadUint32(&c.irqPending)
		if atomic.CompareAndSwapUint32(&c.irqPending, old, old|1<<uint(n)) {
			// Wake a host loop parked on WakeChan (WFI idling).
			select {
			case c.wakeCh <- struct{}{}:
			default:
			}
			return
		}
	}
}

// WakeChan is signalled whenever an interrupt line is raised; host run
// loops use it to sleep efficiently while the CPU idles in WFI.
func (c *CPU) WakeChan() <-chan struct{} { return c.wakeCh }

// ClearIRQ deasserts line n (level-triggered model: devices clear on ack).
func (c *CPU) ClearIRQ(n int) {
	if n < 0 || n >= isa.NumIRQ {
		return
	}
	for {
		old := atomic.LoadUint32(&c.irqPending)
		if atomic.CompareAndSwapUint32(&c.irqPending, old, old&^(1<<uint(n))) {
			return
		}
	}
}

// PendingIRQ returns the pending mask (enabled lines only).
func (c *CPU) PendingIRQ() uint32 {
	return atomic.LoadUint32(&c.irqPending) & c.irqEnabled
}

// SetIRQMask sets the enabled interrupt line mask.
func (c *CPU) SetIRQMask(mask uint32) { c.irqEnabled = mask }

// interruptsOn reports whether the global interrupt-enable bit is set.
func (c *CPU) interruptsOn() bool { return c.SR[isa.SRStatus]&isa.StatusIE != 0 }

// takeIRQ vectors the CPU into the trap handler for IRQ line n.
func (c *CPU) takeIRQ(n int) {
	c.trap(uint32(isa.CauseIRQBase + n))
}

// trap enters the trap vector with the given cause. EPC holds the PC of
// the next instruction to resume.
func (c *CPU) trap(cause uint32) {
	st := c.SR[isa.SRStatus]
	pie := (st & isa.StatusIE) << 1 // IE -> PIE position
	c.SR[isa.SRStatus] = (st &^ (isa.StatusIE | isa.StatusPIE)) | pie
	c.SR[isa.SREPC] = c.PC
	c.SR[isa.SRCause] = cause
	c.PC = c.SR[isa.SRIVec]
	c.sleeping = false
	c.cycles += c.cpi.Trap
}

// eret returns from a trap: restore IE from PIE, jump to EPC.
func (c *CPU) eret() {
	st := c.SR[isa.SRStatus]
	ie := (st & isa.StatusPIE) >> 1
	c.SR[isa.SRStatus] = (st &^ isa.StatusIE) | ie
	c.PC = c.SR[isa.SREPC]
}

// checkIRQ takes the highest-priority pending enabled interrupt if the
// global enable bit allows it. Returns true if a trap was taken.
func (c *CPU) checkIRQ() bool {
	if !c.interruptsOn() {
		return false
	}
	pend := c.PendingIRQ()
	if pend == 0 {
		return false
	}
	for n := 0; n < isa.NumIRQ; n++ {
		if pend&(1<<uint(n)) != 0 {
			c.takeIRQ(n)
			return true
		}
	}
	return false
}
