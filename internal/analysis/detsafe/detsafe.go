// Package detsafe checks determinism invariants of the simulation
// core: a cosim run must replay bit-identically from a seed, so
// internal/sim and internal/core must not let Go's deliberately
// randomized constructs leak into kernel-visible state.
//
// Three rules:
//
//   - maprange: a `for ... range` over a map whose body has
//     order-dependent effects — calls, or writes to state declared
//     outside the loop — inherits the map's randomized iteration
//     order. Collecting keys and sorting them before the effectful
//     loop is the sanctioned fix; a loop that only accumulates keys or
//     values later passed to a sort call is therefore clean, as is
//     commutative integer accumulation (sums, counters).
//
//   - wallclock: time.Now and friends (Since, After, Tick, NewTimer,
//     NewTicker, AfterFunc, Until) and math/rand make output depend on
//     the host. Simulated time comes from the kernel clock; seeds come
//     from configuration. Deliberate wall-clock escapes (stall
//     timeouts) carry a cosimvet:ignore justification.
//
//   - select: a select with two or more communication clauses that
//     each write state declared outside the select resolves readiness
//     races nondeterministically; restructure so at most one clause
//     mutates, or serialize through the kernel.
//
// Scope: packages whose import path ends in internal/sim or
// internal/core. Test files are never loaded by the driver.
package detsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cosim/internal/analysis"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "detsafe",
	Doc:  "flags nondeterminism sources (map iteration order, wall clock, select races) in the simulation core",
	Run:  run,
}

var wallclockFuncs = map[string]bool{
	"Now": true, "Since": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true, "Until": true,
}

func run(pass *analysis.Pass) (any, error) {
	p := pass.Pkg.Path()
	if !strings.HasSuffix(p, "internal/sim") && !strings.HasSuffix(p, "internal/core") {
		return nil, nil
	}
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			c.checkMapRange(fd, n)
		case *ast.SelectStmt:
			c.checkSelect(n)
		case *ast.SelectorExpr:
			c.checkWallclock(n)
		}
		return true
	})
}

// --- wallclock ---

// pkgPathOf resolves the package an identifier like `time` or `rand`
// refers to, or "".
func (c *checker) pkgPathOf(x ast.Expr) string {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := c.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

func (c *checker) checkWallclock(sel *ast.SelectorExpr) {
	switch c.pkgPathOf(sel.X) {
	case "time":
		if wallclockFuncs[sel.Sel.Name] {
			c.pass.Reportf(sel.Pos(),
				"time.%s reads the host wall clock; simulation output must derive from kernel time (sim.Time), not the host",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		c.pass.Reportf(sel.Pos(),
			"math/rand in the simulation core; randomness must come from a seeded source owned by the configuration, not package-global state")
	}
}

// --- maprange ---

type effect struct {
	pos  token.Pos
	desc string
	// appendTarget is set for `x = append(x, ...)` accumulations; the
	// loop is clean if every target is sorted after the loop.
	appendTarget types.Object
}

func (c *checker) checkMapRange(fd *ast.FuncDecl, rng *ast.RangeStmt) {
	tv, ok := c.pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var effects []effect
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if e, ok := c.assignEffect(n, i, lhs, rng); ok {
					effects = append(effects, e)
				}
			}
		case *ast.IncDecStmt:
			// ++/-- is commutative integer accumulation: clean.
		case *ast.CallExpr:
			if name, ok := c.effectfulCall(n); ok {
				effects = append(effects, effect{pos: n.Pos(), desc: "calls " + name + "; call order follows map iteration order"})
			}
		}
		return true
	})
	var report *effect
	for i := range effects {
		e := &effects[i]
		if e.appendTarget != nil && c.sortedAfter(fd, rng, e.appendTarget) {
			continue
		}
		report = e
		break
	}
	if report != nil {
		c.pass.Reportf(rng.Pos(),
			"map iteration order is randomized but this loop %s; iterate a sorted key slice instead",
			report.desc)
	}
}

// assignEffect classifies one assignment target inside a map range
// body. Returns no effect for loop-local targets and commutative
// integer accumulation.
func (c *checker) assignEffect(as *ast.AssignStmt, i int, lhs ast.Expr, rng *ast.RangeStmt) (effect, bool) {
	obj := c.rootObject(lhs)
	if obj != nil && within(obj.Pos(), rng) {
		return effect{}, false // loop-local
	}
	if as.Tok == token.DEFINE {
		return effect{}, false
	}
	// Commutative integer accumulation (n += len(v)) is order-safe.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		if tv, ok := c.pass.TypesInfo.Types[lhs]; ok {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
				return effect{}, false
			}
		}
	}
	e := effect{pos: lhs.Pos(), desc: "writes " + exprString(lhs) + " declared outside the loop"}
	// x = append(x, ...) accumulation: sortable after the loop.
	if i < len(as.Rhs) {
		if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
				if c.rootObject(call.Args[0]) == obj && obj != nil {
					e.appendTarget = obj
					e.desc = "accumulates " + exprString(lhs) + " without a later sort"
				}
			}
		}
	}
	return e, true
}

// effectfulCall reports whether a call inside a map range body is an
// observable effect. Builtins and conversions are not.
func (c *checker) effectfulCall(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[fun]; obj != nil {
			switch obj.(type) {
			case *types.Builtin, *types.TypeName:
				return "", false
			}
		}
		return fun.Name, true
	case *ast.SelectorExpr:
		if tv, ok := c.pass.TypesInfo.Types[fun]; ok && tv.IsType() {
			return "", false // conversion
		}
		return exprString(fun), true
	default:
		return "", false
	}
}

// sortedAfter reports whether obj is passed to a sort.* / slices.Sort*
// call after the range loop within the same function.
func (c *checker) sortedAfter(fd *ast.FuncDecl, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch c.pkgPathOf(sel.X) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if c.rootObject(arg) == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// --- select ---

func (c *checker) checkSelect(sel *ast.SelectStmt) {
	mutating := 0
	for _, clause := range sel.Body.List {
		cc, ok := clause.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue // default clause: no readiness race
		}
		if c.writesOuterState(cc, sel) {
			mutating++
		}
	}
	if mutating >= 2 {
		c.pass.Reportf(sel.Pos(),
			"select has %d communication clauses that write shared state; clause choice under simultaneous readiness is nondeterministic — restructure so at most one clause mutates",
			mutating)
	}
}

func (c *checker) writesOuterState(cc *ast.CommClause, sel *ast.SelectStmt) bool {
	writes := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if writes {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					obj := c.rootObject(lhs)
					if obj == nil || !within(obj.Pos(), sel) {
						writes = true
					}
				}
			case *ast.IncDecStmt:
				obj := c.rootObject(n.X)
				if obj == nil || !within(obj.Pos(), sel) {
					writes = true
				}
			}
			return true
		})
	}
	return writes
}

// --- shared helpers ---

// rootObject unwraps selectors, indexes, stars, and parens down to the
// base identifier's object, or nil.
func (c *checker) rootObject(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := c.pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return c.pass.TypesInfo.Defs[x]
		default:
			return nil
		}
	}
}

func within(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos < n.End()
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.ParenExpr:
		return exprString(x.X)
	default:
		return "state"
	}
}
