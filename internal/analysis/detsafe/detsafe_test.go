package detsafe_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/detsafe"
)

func TestDetsafe(t *testing.T) {
	analysistest.Run(t, detsafe.Analyzer, "testdata/src/sim", "fixture/internal/sim")
}

func TestDetsafeOutOfScope(t *testing.T) {
	analysistest.Run(t, detsafe.Analyzer, "testdata/src/outofscope", "fixture/other")
}
