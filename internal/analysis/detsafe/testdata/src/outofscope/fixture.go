// Package outofscope reads the wall clock in a package outside
// detsafe's scope; the analyzer must stay silent.
package outofscope

import "time"

func Stamp() string { return time.Now().String() }
