// Package sim (fixture) exercises detsafe: randomized map iteration
// reaching kernel-visible state, wall-clock reads, and racy selects.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

type kernel struct {
	grants  []string
	total   int
	stamp   string
	applied bool
	done    bool
}

// Effectful map range: true positive (calls).
func (k *kernel) install(bindings map[string]int) {
	for name := range bindings { // want `map iteration order is randomized but this loop calls plant`
		plant(name)
	}
}

func plant(string) {}

// Append accumulation with no later sort: true positive.
func (k *kernel) grantAll(ports map[string]int) {
	for name := range ports { // want `map iteration order is randomized but this loop accumulates k\.grants without a later sort`
		k.grants = append(k.grants, name)
	}
}

// Collect-then-sort is the sanctioned fix: clean.
func (k *kernel) grantSorted(ports map[string]int) {
	names := make([]string, 0, len(ports))
	for name := range ports {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k.grants = append(k.grants, name)
		plant(name)
	}
}

// Commutative integer accumulation: clean.
func (k *kernel) count(ports map[string][]byte) {
	for _, buf := range ports {
		k.total += len(buf)
	}
}

// Loop-local state and commutative accumulation only: clean.
func localOnly(m map[string]int) int {
	sum := 0
	for _, v := range m {
		scaled := v * 2
		sum += scaled
	}
	return sum
}

// Wall clock: true positives.
func (k *kernel) stampNow() {
	k.stamp = time.Now().Format(time.RFC1123) // want `time\.Now reads the host wall clock`
}

func jitter() int {
	return rand.Intn(8) // want `math/rand in the simulation core`
}

// Suppressed deliberate escape: clean.
func deadline() *time.Timer {
	//cosimvet:ignore detsafe stall-escape timeout is deliberately wall-clock
	return time.NewTimer(time.Millisecond)
}

// Select with two mutating comm clauses: true positive.
func (k *kernel) pump(a, b chan int) {
	select { // want `select has 2 communication clauses that write shared state`
	case <-a:
		k.applied = true
	case <-b:
		k.done = true
	}
}

// Single mutating clause: clean.
func (k *kernel) wait(notify chan struct{}, timeout chan time.Time) {
	for {
		select {
		case <-notify:
			if k.applied {
				return
			}
		case <-timeout:
			k.done = true
			return
		}
	}
}

// Non-blocking token send: clean.
func poke(notify chan struct{}) {
	select {
	case notify <- struct{}{}:
	default:
	}
}
