// Package analysistest runs an analyzer over a fixture directory and
// checks its diagnostics against `// want "regexp"` expectations — a
// stdlib-only miniature of golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are trailing line comments on the line the diagnostic is
// expected at:
//
//	t = t + d // want `raw "\+" on sim.Time`
//	x := f()  // want "dropped without Release"
//
// A line may carry several expectations ("// want `a` `b`"). Both
// quoted ("...") and backquoted (`...`) regexps are accepted. Every
// diagnostic must match an expectation on its line, and every
// expectation must be matched by a diagnostic; leftovers on either side
// fail the test.
package analysistest

import (
	"regexp"
	"testing"

	"cosim/internal/analysis"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+(.*)$")
var argRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture directory as a package named importPath,
// applies the analyzer, and reports mismatches through t. The import
// path matters: rules scoped by package path (schemeerr, timesafe)
// include or exempt the fixture based on it.
func Run(t *testing.T, a *analysis.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}

	// Gather expectations from the fixture comments.
	expects := make(map[string]map[int][]*expectation) // file -> line -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range argRe.FindAllStringSubmatch(m[1], -1) {
					pat := arg[1]
					if pat == "" {
						pat = arg[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					byLine := expects[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*expectation)
						expects[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], &expectation{re: re})
				}
			}
		}
	}

	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		found := false
		for _, e := range expects[pos.Filename][pos.Line] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	for file, byLine := range expects {
		for line, es := range byLine {
			for _, e := range es {
				if !e.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, e.re)
				}
			}
		}
	}
}
