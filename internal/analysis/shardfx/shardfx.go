// Package shardfx checks the sharded-round effect discipline of
// internal/sim (DESIGN 5.11): code that can run inside a sharded
// evaluation round — worker context — must not mutate kernel-global
// scheduling state directly. Every such effect (Notify, NotifyDelta,
// NotifyAt, Cancel, CallAt, update registration) must route through the
// round's deferred-effects log via the round-guard idiom:
//
//	if r := e.k.round; r != nil {
//		r.deferOp(e, ...)
//		return
//	}
//
// The analyzer walks the callgraph from the package's worker-context
// entry points — the exported model API a method process can call —
// and flags any reachable unguarded write to a Kernel field, or call to
// a method on a Kernel scheduling field (k.timed.push and friends).
// Traversal stops at round-guarded functions: code inside the guard is
// deferred to the merge barrier and code after it runs only in serial
// context, so neither executes on a worker.
//
// Worker-context entry points are the exported functions and methods of
// exported types, minus:
//
//   - constructors (New*): the object under construction is not shared;
//   - functions with a *Ctx receiver or parameter: Ctx is the thread
//     API, and threads never run inside rounds;
//   - the scheduler/registration surface (Run, RunFor, Shutdown,
//     Method, Thread, hook/finalizer registration, ...): declared
//     scheduler-context by the allowlist below. Traversal also stops
//     there — calling them from a process is an elaboration-time error
//     outside this rule's scope.
//
// Fields of sync/atomic types are exempt: atomics are the sanctioned
// way for worker-context code to signal the scheduler (Kernel.Stop).
//
// Scope: packages whose import path ends in internal/sim.
package shardfx

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cosim/internal/analysis"
	"cosim/internal/analysis/callgraph"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "shardfx",
	Doc:  "flags kernel-global effects reachable from sharded worker context that bypass the round's deferred-effects log",
	Run:  run,
}

// schedulerContext lists Kernel methods that only ever run in
// scheduler or elaboration context; they are neither worker-context
// entry points nor traversed.
var schedulerContext = map[string]bool{
	"Run": true, "RunFor": true, "Shutdown": true,
	"Method": true, "MethodNoInit": true, "Thread": true, "IssProcess": true,
	"EnableSharding": true, "SetObs": true, "PublishObs": true,
	"AddCycleHook": true, "AddEndCycleHook": true, "AddFinalizer": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !strings.HasSuffix(pass.Pkg.Path(), "internal/sim") {
		return nil, nil
	}
	g := callgraph.Build(pass)
	c := &checker{pass: pass, graph: g, guardEnd: make(map[*callgraph.Node]token.Pos)}
	for _, n := range g.Nodes {
		c.guardEnd[n] = c.roundGuardPos(n)
	}
	// Breadth-first from every worker-context entry point, shortest
	// path retained for the diagnostic.
	type item struct {
		node *callgraph.Node
		path []string
	}
	visited := make(map[*callgraph.Node]bool)
	var queue []item
	for _, n := range g.Nodes {
		if c.isWorkerEntry(n) && !visited[n] {
			visited[n] = true
			queue = append(queue, item{n, []string{n.Name}})
		}
	}
	reported := make(map[token.Pos]bool)
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		guard := c.guardEnd[it.node]
		c.checkMutations(it.node, guard, it.path, reported)
		for _, e := range it.node.Calls {
			if guard != token.NoPos && e.Pos >= guard {
				continue // inside or after the round guard: not worker context
			}
			callee := e.Callee
			if visited[callee] || c.isSchedulerContext(callee) {
				continue
			}
			visited[callee] = true
			queue = append(queue, item{callee, append(append([]string(nil), it.path...), callee.Name)})
		}
	}
	return nil, nil
}

type checker struct {
	pass     *analysis.Pass
	graph    *callgraph.Graph
	guardEnd map[*callgraph.Node]token.Pos
}

// roundGuardPos returns the position of the node's top-level round
// guard (an `if r := k.round; r != nil { ...; return }` statement), or
// NoPos if the body has none. Code at or after the guard is exempt:
// inside the guard effects are deferred, after it the context is
// serial.
func (c *checker) roundGuardPos(n *callgraph.Node) token.Pos {
	for _, stmt := range n.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok {
			continue
		}
		if !c.isRoundCond(ifs) {
			continue
		}
		if len(ifs.Body.List) == 0 {
			continue
		}
		if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
			continue
		}
		return ifs.Pos()
	}
	return token.NoPos
}

// isRoundCond matches `x.round != nil` and `r := x.round; r != nil`
// where x is Kernel-typed.
func (c *checker) isRoundCond(ifs *ast.IfStmt) bool {
	bin, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	var subject ast.Expr
	switch {
	case isNil(bin.Y):
		subject = bin.X
	case isNil(bin.X):
		subject = bin.Y
	default:
		return false
	}
	roundSel := func(e ast.Expr) bool {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "round" {
			return false
		}
		tv, ok := c.pass.TypesInfo.Types[sel.X]
		return ok && analysis.NamedType(tv.Type, "internal/sim", "Kernel")
	}
	if roundSel(subject) {
		return true
	}
	// Init form: the condition tests the init-assigned variable.
	if init, ok := ifs.Init.(*ast.AssignStmt); ok && len(init.Rhs) == 1 {
		return roundSel(init.Rhs[0])
	}
	return false
}

func (c *checker) isSchedulerContext(n *callgraph.Node) bool {
	return n.Decl != nil && schedulerContext[n.Decl.Name.Name] &&
		c.kernelReceiver(n.Decl)
}

func (c *checker) kernelReceiver(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[fd.Recv.List[0].Type]
	return ok && analysis.NamedType(tv.Type, "internal/sim", "Kernel")
}

// isWorkerEntry reports whether a node is part of the exported model
// API a method process can call.
func (c *checker) isWorkerEntry(n *callgraph.Node) bool {
	fd := n.Decl
	if fd == nil || !fd.Name.IsExported() || strings.HasPrefix(fd.Name.Name, "New") {
		return false
	}
	if fd.Recv != nil {
		recv := analysis.ReceiverTypeName(fd)
		if recv == "" || !ast.IsExported(recv) {
			return false
		}
		if c.isCtx(fd.Recv.List[0].Type) {
			return false // thread-only API
		}
	}
	if c.isSchedulerContext(n) {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if c.isCtx(field.Type) {
			return false // takes the thread context: thread-only API
		}
	}
	return true
}

func (c *checker) isCtx(expr ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[expr]
	return ok && analysis.NamedType(tv.Type, "internal/sim", "Ctx")
}

// checkMutations flags kernel-global effects in the worker-context
// region of a node (before its round guard, or anywhere without one).
func (c *checker) checkMutations(n *callgraph.Node, guard token.Pos, path []string, reported map[token.Pos]bool) {
	via := strings.Join(path, " -> ")
	exempt := func(pos token.Pos) bool { return guard != token.NoPos && pos >= guard }
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		c.pass.Reportf(pos, format, args...)
	}
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // literal bodies are their own nodes
		}
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if field, ok := c.kernelField(lhs); ok && !exempt(lhs.Pos()) {
					report(lhs.Pos(),
						"kernel-global write to Kernel.%s reachable from worker context via %s; defer it through the round's effect log (deferOp)",
						field, via)
				}
			}
		case *ast.IncDecStmt:
			if field, ok := c.kernelField(x.X); ok && !exempt(x.Pos()) {
				report(x.Pos(),
					"kernel-global write to Kernel.%s reachable from worker context via %s; defer it through the round's effect log (deferOp)",
					field, via)
			}
		case *ast.CallExpr:
			fun, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if s, ok := c.pass.TypesInfo.Selections[fun]; !ok || s.Kind() != types.MethodVal {
				return true
			}
			if field, ok := c.kernelField(fun.X); ok && !exempt(x.Pos()) {
				report(x.Pos(),
					"kernel-global call to Kernel.%s.%s reachable from worker context via %s; defer it through the round's effect log (deferOp)",
					field, fun.Sel.Name, via)
			}
		}
		return true
	})
}

// kernelField reports whether expr selects a (non-atomic) field of the
// sim Kernel type and returns the field name.
func (c *checker) kernelField(expr ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok || !analysis.NamedType(tv.Type, "internal/sim", "Kernel") {
		return "", false
	}
	// Atomic fields are the sanctioned worker->scheduler signal.
	if obj, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Var); ok {
		t := obj.Type()
		if named, ok := t.(*types.Named); ok {
			if p := named.Obj().Pkg(); p != nil && p.Path() == "sync/atomic" {
				return "", false
			}
		}
	}
	return sel.Sel.Name, true
}
