package shardfx_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/shardfx"
)

func TestShardfx(t *testing.T) {
	analysistest.Run(t, shardfx.Analyzer, "testdata/src/sim", "fixture/internal/sim")
}
