// Package sim (fixture) is a miniature model of the real kernel's
// sharded-round discipline: guarded effects, unguarded true positives,
// scheduler-context allowlisting, atomic signalling, and thread-only
// Ctx APIs.
package sim

import "sync/atomic"

type Kernel struct {
	runnable []*Proc
	deltas   []*Event
	events   []*Event
	timed    timedQueue
	round    *shardRound
	stopReq  atomic.Bool
}

type Proc struct{ name string }

type Event struct {
	k       *Kernel
	pending bool
}

type timedQueue struct{ items []*Event }

func (q *timedQueue) push(e *Event) { q.items = append(q.items, e) }

func (q *timedQueue) remove(e *Event) {
	for i, x := range q.items {
		if x == e {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return
		}
	}
}

type shardRound struct{ ops []func() }

func (r *shardRound) deferOp(owner *Event, fn func()) { r.ops = append(r.ops, fn) }

// Notify is guarded: in a round the effect is deferred, otherwise the
// context is serial. Clean.
func (e *Event) Notify() {
	if r := e.k.round; r != nil {
		r.deferOp(e, e.Notify)
		return
	}
	e.k.deltas = append(e.k.deltas, e)
}

// Cancel uses the guard and then touches a Kernel field method after
// it — serial context, exempt. Clean.
func (e *Event) Cancel() {
	if r := e.k.round; r != nil {
		r.deferOp(e, func() { e.Cancel() })
		return
	}
	e.k.timed.remove(e)
}

// NotifyBroken mutates the delta queue with no guard: true positive.
func (e *Event) NotifyBroken() {
	e.k.deltas = append(e.k.deltas, e) // want `kernel-global write to Kernel\.deltas reachable from worker context via Event\.NotifyBroken`
}

// Wake reaches an unguarded helper: the diagnostic lands on the
// mutation inside the helper with the path from the entry point.
func (e *Event) Wake() {
	e.pending = true
	e.schedule()
}

func (e *Event) schedule() {
	e.k.timed.push(e) // want `kernel-global call to Kernel\.timed\.push reachable from worker context via Event\.Wake -> Event\.schedule`
}

// Stop flips an atomic flag — the sanctioned worker->scheduler signal.
// Clean.
func (k *Kernel) Stop() { k.stopReq.Store(true) }

// Run is scheduler context (allowlisted): it may mutate freely and is
// not traversed.
func (k *Kernel) Run() {
	k.runnable = k.runnable[:0]
	k.drain()
}

func (k *Kernel) drain() { k.deltas = nil }

// NewEvent is a constructor: exempt even though it registers the event
// on the kernel.
func (k *Kernel) NewEvent() *Event {
	e := &Event{k: k}
	k.events = append(k.events, e)
	return e
}

// Ctx is the thread API: Ctx receivers and Ctx-taking functions are
// thread-only and never run inside a round.
type Ctx struct{ k *Kernel }

func (c *Ctx) Wait() { c.k.runnable = nil }

type Fifo struct{ k *Kernel }

func (f *Fifo) Read(c *Ctx) int {
	f.k.runnable = nil
	return 0
}

// Suppressed finding.
func (e *Event) NotifyLegacy() {
	//cosimvet:ignore shardfx grandfathered pre-sharding path, scheduled for removal
	e.k.deltas = append(e.k.deltas, e)
}
