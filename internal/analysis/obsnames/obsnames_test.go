package obsnames_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/obsnames"
)

func TestObsnames(t *testing.T) {
	analysistest.Run(t, obsnames.Analyzer, "testdata/src/a", "fixture/a")
}
