// Package obsnames guards the observability layer's zero-allocation
// contract and naming grammar.
//
// The obs design (DESIGN.md §5.4) resolves every metric once at attach
// time and stores the handle; per-cycle and per-message code then calls
// Inc/Add/Set on the handle. A Registry.Counter/Gauge/Histogram lookup
// whose name is *built* at the call site (fmt.Sprintf, string
// concatenation) allocates, so it is only legal in cold construction
// code: `init` methods, `New*`/`Attach*` constructors. Passing a
// pre-resolved name held in a variable or field does not allocate and
// stays legal everywhere.
//
// Independently, every name in the per-CPU `driver.cpuN.*` namespace —
// whether a literal or a Sprintf format — must use a metric from the
// documented set (README "Observability"): the aggregates are asserted
// to equal the per-CPU sums, so an off-grammar name would silently fall
// out of that reconciliation. The `transport.<backend>.*` namespace is
// held to the same rule with its own metric set.
package obsnames

import (
	"go/ast"
	"go/constant"
	"regexp"
	"sort"
	"strings"

	"cosim/internal/analysis"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "obsnames",
	Doc:  "flags obs metric names built dynamically on hot paths and validates the driver.cpuN.* naming grammar",
	Run:  run,
}

// PerCPUMetrics is the documented driver.cpuN.* metric set — the
// per-CPU counters/gauges whose aggregates the README guarantees to
// reconcile. Extending the per-CPU namespace means extending this set
// (and the README table) in the same change.
var PerCPUMetrics = map[string]bool{
	"messages":        true,
	"interrupts":      true,
	"skew_waits":      true,
	"pending_reads":   true,
	"dmi_hits":        true,
	"dmi_misses":      true,
	"dmi_revocations": true,
	"quantum_syncs":   true,
	"quantum_breaks":  true,
}

// TransportMetrics is the documented transport.<backend>.* metric set
// (README "Observability"); the backend segment is the transport name.
var TransportMetrics = map[string]bool{
	"pairs":        true,
	"tx_bytes":     true,
	"rx_bytes":     true,
	"batched_msgs": true,
}

var (
	perCPURe    = regexp.MustCompile(`^driver\.cpu(?:\d+|%d)\.([a-z0-9_.]+)$`)
	transportRe = regexp.MustCompile(`^transport\.(?:[a-z0-9_-]+|%s)\.([a-z0-9_.]+)$`)
)

// sortedKeys renders a metric set for diagnostics.
func sortedKeys(m map[string]bool) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}

// coldFunc reports whether fn may build metric names dynamically:
// construction-time code runs once per attachment, not per cycle.
func coldFunc(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") ||
		strings.HasPrefix(name, "Attach") || strings.HasPrefix(name, "attach")
}

func run(pass *analysis.Pass) (any, error) {
	check := func(call *ast.CallExpr, enclosing string) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || len(call.Args) == 0 {
			return
		}
		switch sel.Sel.Name {
		case "Counter", "Gauge", "Histogram":
		default:
			return
		}
		recv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || !analysis.NamedType(recv.Type, "internal/obs", "Registry") {
			return
		}
		arg := call.Args[0]
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			checkGrammar(pass, arg, constant.StringVal(tv.Value))
			return
		}
		switch a := arg.(type) {
		case *ast.CallExpr:
			// A call in argument position (fmt.Sprintf and friends)
			// allocates the name per lookup.
			if fmtStr, ok := sprintfFormat(pass, a); ok {
				checkGrammar(pass, arg, fmtStr)
			}
			if !coldFunc(enclosing) {
				pass.Reportf(arg.Pos(), "obs metric name built dynamically in %s (a hot path); resolve the handle in a constructor/init and reuse it", enclosing)
			}
		case *ast.BinaryExpr:
			if !coldFunc(enclosing) {
				pass.Reportf(arg.Pos(), "obs metric name concatenated in %s (a hot path); resolve the handle in a constructor/init and reuse it", enclosing)
			}
		}
		// Identifiers, selectors and index expressions pass: looking up
		// a pre-resolved name string does not allocate.
	}

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			name := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					check(call, name)
				}
				return true
			})
		}
	}
	return nil, nil
}

// sprintfFormat extracts the constant format string of a fmt.Sprintf
// call, if that is what the expression is.
func sprintfFormat(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Sprintf" || len(call.Args) == 0 {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != "fmt" {
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkGrammar validates a known name (literal or Sprintf format)
// against the per-CPU and transport namespace grammars.
func checkGrammar(pass *analysis.Pass, at ast.Expr, name string) {
	if strings.HasPrefix(name, "transport.") {
		m := transportRe.FindStringSubmatch(name)
		if m == nil {
			pass.Reportf(at.Pos(), "obs name %q is in the transport.* namespace but does not match the transport.<backend>.<metric> grammar", name)
			return
		}
		if metric := m[1]; !TransportMetrics[metric] {
			pass.Reportf(at.Pos(), "obs name %q uses undocumented transport metric %q (documented: %s); update obsnames.TransportMetrics and the README together", name, metric, sortedKeys(TransportMetrics))
		}
		return
	}
	if !strings.HasPrefix(name, "driver.cpu") {
		return
	}
	m := perCPURe.FindStringSubmatch(name)
	if m == nil {
		pass.Reportf(at.Pos(), "obs name %q is in the driver.cpuN.* namespace but does not match the driver.cpu<N>.<metric> grammar", name)
		return
	}
	// Histogram snapshots flatten as <metric>.count/.sum/.max; accept
	// the bare metric name here.
	metric := m[1]
	if !PerCPUMetrics[metric] {
		pass.Reportf(at.Pos(), "obs name %q uses undocumented per-CPU metric %q (documented: %s); update obsnames.PerCPUMetrics and the README together", name, metric, sortedKeys(PerCPUMetrics))
	}
}
