package a

import (
	"fmt"

	"cosim/internal/obs"
)

type dev struct {
	r  *obs.Registry
	id int
}

// flush is a hot path: per-flush Sprintf lookups allocate.
func (d *dev) flush(n uint64) {
	d.r.Gauge(fmt.Sprintf("driver.cpu%d.pending_reads", d.id)).Set(n) // want `built dynamically in flush`
}

// record concatenates the name per call.
func (d *dev) record(suffix string) {
	d.r.Counter("driver." + suffix).Inc() // want `concatenated in record`
}

// offGrammar uses a name inside the per-CPU namespace that is not in
// the documented metric set.
func newOffGrammar(r *obs.Registry) *obs.Counter {
	return r.Counter("driver.cpu0.bogus_metric") // want `undocumented per-CPU metric "bogus_metric"`
}

// malformed per-CPU name: no metric segment at all.
func newMalformed(r *obs.Registry) *obs.Gauge {
	return r.Gauge("driver.cpuX") // want `does not match the driver.cpu<N>.<metric> grammar`
}

// Sprintf formats are grammar-checked even in constructors.
func newSprintfOffGrammar(r *obs.Registry, id int) *obs.Counter {
	return r.Counter(fmt.Sprintf("driver.cpu%d.typo_metric", id)) // want `undocumented per-CPU metric "typo_metric"`
}

// transport namespace: undocumented metric and malformed name.
func newBadTransportMetric(r *obs.Registry) *obs.Counter {
	return r.Counter("transport.ring.bogus_rate") // want `undocumented transport metric "bogus_rate"`
}

func newMalformedTransport(r *obs.Registry) *obs.Counter {
	return r.Counter("transport.UPPER") // want `does not match the transport.<backend>.<metric> grammar`
}

// Sprintf-built transport names are grammar-checked too.
func newSprintfTransport(r *obs.Registry, backend string) *obs.Counter {
	return r.Counter(fmt.Sprintf("transport.%s.typo_bytes", backend)) // want `undocumented transport metric "typo_bytes"`
}
