package a

import (
	"fmt"

	"cosim/internal/obs"
)

type handles struct {
	msgs    *obs.Counter
	pending *obs.Gauge
	name    string
}

// Construction-time dynamic names are the documented pattern: resolve
// once, store the handle.
func newHandles(r *obs.Registry, id int) *handles {
	return &handles{
		msgs:    r.Counter(fmt.Sprintf("driver.cpu%d.messages", id)),
		pending: r.Gauge(fmt.Sprintf("driver.cpu%d.pending_reads", id)),
		name:    fmt.Sprintf("driver.cpu%d.skew_waits", id),
	}
}

type holder struct{ h *handles }

func (h *holder) init(r *obs.Registry, id int) {
	h.h = &handles{msgs: r.Counter(fmt.Sprintf("driver.cpu%d.interrupts", id))}
}

// Hot-path updates through pre-resolved handles are the contract.
func (h *handles) hot(r *obs.Registry, n uint64) {
	h.msgs.Inc()
	h.pending.Set(n)
	// Looking up a pre-resolved name string allocates nothing.
	r.Counter(h.name).Inc()
}

// Constant names are fine anywhere, and aggregate (non-per-CPU) names
// are outside the cpuN grammar.
func (h *handles) constants(r *obs.Registry) {
	r.Counter("driver.messages").Inc()
	r.Gauge("driver.pending_reads").Set(1)
	r.Histogram("driver.skew_wait_ns").Observe(2)
	r.Counter("driver.cpu3.messages").Inc()
}

// Unrelated Sprintf calls and non-Registry receivers are out of scope.
type fake struct{}

func (fake) Counter(name string) int { return len(name) }

func (h *handles) unrelated(f fake, id int) int {
	return f.Counter(fmt.Sprintf("driver.cpu%d.whatever", id))
}

// suppressed: the documented escape hatch.
func (h *handles) suppressed(r *obs.Registry, id int) {
	//cosimvet:ignore obsnames fixture exercises the suppression directive
	r.Counter(fmt.Sprintf("driver.cpu%d.messages", id)).Inc()
}

// The documented per-CPU DMI metrics and transport metrics pass.
func newDMIHandles(r *obs.Registry, id int) *handles {
	return &handles{
		msgs:    r.Counter(fmt.Sprintf("driver.cpu%d.dmi_hits", id)),
		pending: r.Gauge(fmt.Sprintf("driver.cpu%d.dmi_misses", id)),
		name:    fmt.Sprintf("driver.cpu%d.dmi_revocations", id),
	}
}

func (h *handles) transportConstants(r *obs.Registry) {
	r.Counter("transport.ring.pairs").Inc()
	r.Counter("transport.tcp.tx_bytes").Inc()
	r.Counter("transport.unix.rx_bytes").Inc()
	r.Counter("transport.pipe.batched_msgs").Inc()
}

func newSprintfTransportOK(r *obs.Registry, backend string) *obs.Counter {
	return r.Counter(fmt.Sprintf("transport.%s.batched_msgs", backend))
}
