package a

import (
	"bufio"

	"cosim/internal/core"
)

func consume([]byte) {}

// ok is the canonical decode/deliver/release shape.
func ok(r *bufio.Reader) {
	m, err := core.ReadMessage(r)
	if err != nil {
		return
	}
	consume(m.Data)
	m.Release()
}

// deferred releases via defer before using the payload.
func deferred(r *bufio.Reader) error {
	m, err := core.ReadMessage(r)
	if err != nil {
		return err
	}
	defer m.Release()
	consume(m.Data)
	return nil
}

// inboxAppend is the reader-goroutine shape: appending hands ownership
// to whoever drains the inbox.
func inboxAppend(r *bufio.Reader, inbox *[]core.Message) error {
	m, err := core.ReadMessage(r)
	if err != nil {
		return err
	}
	m.CPU = 3
	*inbox = append(*inbox, m)
	return nil
}

// handBack transfers ownership to the caller.
func handBack(r *bufio.Reader) (core.Message, error) {
	m, err := core.ReadMessage(r)
	return m, err
}

// sendOn transfers ownership over a channel.
func sendOn(r *bufio.Reader, ch chan core.Message) {
	m, _ := core.ReadMessage(r)
	ch <- m
}

// capture is the drain shape: a scheduled callback releases the local
// copy, so the message escapes sequential reasoning here.
func capture(r *bufio.Reader, callAt func(func())) {
	m, _ := core.ReadMessage(r)
	msg := m
	callAt(func() {
		consume(msg.Data)
		msg.Release()
	})
}

// branchRelease releases exactly once on every path.
func branchRelease(r *bufio.Reader, early bool) {
	m, _ := core.ReadMessage(r)
	if early {
		m.Release()
		return
	}
	consume(m.Data)
	m.Release()
}

// reassign decodes a fresh message into the same variable after the
// first is released.
func reassign(r *bufio.Reader) {
	m, err := core.ReadMessage(r)
	if err != nil {
		return
	}
	m.Release()
	m, err = core.ReadMessage(r)
	if err != nil {
		return
	}
	m.Release()
}

// drainLoop releases one message per iteration; the range variable is
// fresh each pass.
func drainLoop(msgs []core.Message) {
	for _, m := range msgs {
		consume(m.Data)
		m.Release()
	}
}

// switchRelease releases in every arm.
func switchRelease(r *bufio.Reader) {
	m, _ := core.ReadMessage(r)
	switch m.Type {
	case core.MsgWrite:
		consume(m.Data)
		m.Release()
	default:
		m.Release()
	}
}

// suppressed exercises the documented escape hatch.
func suppressed(r *bufio.Reader) {
	//cosimvet:ignore poolsafe fixture exercises the suppression directive
	m, err := core.ReadMessage(r)
	if err != nil {
		return
	}
	consume(m.Data)
}
