package a

import (
	"bufio"

	"cosim/internal/core"
)

// leak decodes a message and drops it: the pooled Data buffer is lost.
func leak(r *bufio.Reader) int {
	m, err := core.ReadMessage(r) // want `dropped without Release`
	if err != nil {
		return 0
	}
	return len(m.Data)
}

// doubleRelease returns the same buffer to the pool twice.
func doubleRelease(r *bufio.Reader) {
	m, _ := core.ReadMessage(r)
	m.Release()
	m.Release() // want `may be released twice`
}

// useAfterRelease reads Data from a buffer that is already back in the
// pool.
func useAfterRelease(r *bufio.Reader) int {
	m, _ := core.ReadMessage(r)
	m.Release()
	return len(m.Data) // want `used after Release`
}

// condDoubleRelease double-releases on the fast == true path.
func condDoubleRelease(r *bufio.Reader, fast bool) {
	m, _ := core.ReadMessage(r)
	if fast {
		m.Release()
	}
	m.Release() // want `may be released twice`
}

// loopUse releases inside a loop body and keeps using the message.
func loopUse(r *bufio.Reader, n int) uint64 {
	m, _ := core.ReadMessage(r)
	var sum uint64
	for i := 0; i < n; i++ {
		if i == 0 {
			m.Release()
		}
		sum += uint64(m.Cycles) // want `used after Release`
	}
	return sum
}
