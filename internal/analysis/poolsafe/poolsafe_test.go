package poolsafe_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/poolsafe"
)

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, poolsafe.Analyzer, "testdata/src/a", "fixture/a")
}
