// Package poolsafe checks the core.Message buffer-pool ownership
// protocol. Messages decoded by core.ReadMessage carry a payload buffer
// borrowed from the codec pool; the contract (PR 1) is that each such
// buffer is handed back with exactly one Release once the payload is
// delivered. Three rule families:
//
//   - double release: a second x.Release() reachable while x may
//     already be released returns the same buffer to the pool twice —
//     two future decodes then share one backing array.
//   - use after release: reading x.Data after x.Release() observes a
//     buffer another decode may already be overwriting.
//   - dropped message: a value decoded from ReadMessage that is never
//     released and never handed to another owner (returned, stored,
//     sent, passed to a call, or captured by a closure) silently leaks
//     its buffer to the GC instead of the pool.
//
// The analysis is intraprocedural and deliberately "may"-flavoured: a
// release inside one branch joins as "maybe released", so a
// conditional release followed by an unconditional one is flagged (it
// double-releases on that path). Ownership transfers are trusted — once
// a message is passed to any call or captured, the callee is assumed to
// release it. Function literals are analyzed as independent units for
// the variables they declare themselves.
package poolsafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"cosim/internal/analysis"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "poolsafe",
	Doc:  "flags double-Release, use-after-Release and dropped codec-decoded core.Message values",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	var units []*ast.BlockStmt
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					units = append(units, n.Body)
				}
			case *ast.FuncLit:
				units = append(units, n.Body)
			}
			return true
		})
	}
	for _, body := range units {
		c := newChecker(pass, body)
		c.flow(body.List, make(state))
		c.checkDropped()
	}
	return nil, nil
}

// state maps a tracked variable to "may be released here".
type state map[*types.Var]bool

func clone(st state) state {
	out := make(state, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

type checker struct {
	pass *analysis.Pass
	body *ast.BlockStmt

	// tracked are core.Message (or *core.Message) variables declared in
	// this unit (nested function literals excluded — they are their own
	// units).
	tracked map[*types.Var]bool
	// escaped variables left this unit's control (captured by a nested
	// literal or handed to a goroutine); flow checks stop for them.
	escaped map[*types.Var]bool
	// decoded maps ReadMessage-decoded variables to the position of the
	// decode, for the dropped-message check.
	decoded map[*types.Var]token.Pos
	// released / transferred record whether any release / ownership
	// transfer was seen for a variable anywhere in the unit.
	released    map[*types.Var]bool
	transferred map[*types.Var]bool
}

func newChecker(pass *analysis.Pass, body *ast.BlockStmt) *checker {
	c := &checker{
		pass:        pass,
		body:        body,
		tracked:     make(map[*types.Var]bool),
		escaped:     make(map[*types.Var]bool),
		decoded:     make(map[*types.Var]token.Pos),
		released:    make(map[*types.Var]bool),
		transferred: make(map[*types.Var]bool),
	}
	c.prescan()
	return c
}

// isMessage reports whether t is core.Message or *core.Message.
func isMessage(t types.Type) bool {
	return analysis.NamedType(t, "internal/core", "Message")
}

// inspectUnit walks n, skipping nested function literals.
func inspectUnit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// prescan collects this unit's tracked and decoded variables, plus the
// unit-wide release/transfer/escape facts the dropped check needs.
func (c *checker) prescan() {
	// Pass 1: declarations.
	inspectUnit(c.body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok && isMessage(v.Type()) {
			c.tracked[v] = true
		}
		return true
	})
	// Pass 2: decodes, releases, transfers, escapes. FuncLits are
	// handled here directly (inspectUnit would hide them): variables
	// they capture escape this unit, and their bodies are not descended
	// into — each literal is analyzed as its own unit by run.
	ast.Inspect(c.body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && c.tracked[v] {
						c.escaped[v] = true
						c.transferred[v] = true
					}
				}
				return true
			})
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			c.scanAssign(n)
		case *ast.CallExpr:
			if v := c.releaseReceiver(n); v != nil {
				c.released[v] = true
				return true
			}
			for _, arg := range n.Args {
				if v := c.varOf(arg); v != nil {
					c.transferred[v] = true
				}
				if un, ok := arg.(*ast.UnaryExpr); ok && un.Op == token.AND {
					if v := c.varOf(un.X); v != nil {
						c.transferred[v] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if v := c.varOf(r); v != nil {
					c.transferred[v] = true
				}
			}
		case *ast.SendStmt:
			if v := c.varOf(n.Value); v != nil {
				c.transferred[v] = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if v := c.varOf(el); v != nil {
					c.transferred[v] = true
				}
			}
		}
		return true
	})
}

func (c *checker) scanAssign(n *ast.AssignStmt) {
	// RHS direct call to core.ReadMessage -> the first LHS variable is a
	// decoded message.
	if len(n.Rhs) == 1 {
		if call, ok := n.Rhs[0].(*ast.CallExpr); ok && c.isReadMessage(call) && len(n.Lhs) >= 1 {
			if v := c.lhsVar(n.Lhs[0]); v != nil {
				if _, seen := c.decoded[v]; !seen {
					c.decoded[v] = n.Lhs[0].Pos()
				}
			}
			return
		}
	}
	// Copy assignment "y := m" transfers ownership to the new alias
	// (which is itself tracked and checked).
	for _, r := range n.Rhs {
		if v := c.varOf(r); v != nil {
			c.transferred[v] = true
		}
	}
}

func (c *checker) isReadMessage(call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	obj := c.pass.TypesInfo.Uses[id]
	if obj == nil || obj.Name() != "ReadMessage" {
		return false
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == c.pass.Pkg.Path() && pkg.Name() == "core" ||
		hasSuffix(pkg.Path(), "internal/core")
}

func hasSuffix(s, suf string) bool {
	return len(s) >= len(suf) && s[len(s)-len(suf):] == suf
}

// varOf resolves a plain identifier expression to a tracked variable.
func (c *checker) varOf(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if ok && c.tracked[v] {
		return v
	}
	return nil
}

// lhsVar resolves an assignment target identifier (defined or used).
func (c *checker) lhsVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok && c.tracked[v] {
		return v
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && c.tracked[v] {
		return v
	}
	return nil
}

// releaseReceiver returns the tracked variable x for a call x.Release()
// on a message value, or nil.
func (c *checker) releaseReceiver(call *ast.CallExpr) *types.Var {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" || len(call.Args) != 0 {
		return nil
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok || !isMessage(tv.Type) {
		return nil
	}
	return c.varOf(sel.X)
}

// checkDropped reports decoded variables with neither a release nor an
// ownership transfer anywhere in the unit.
func (c *checker) checkDropped() {
	for v, pos := range c.decoded {
		if !c.released[v] && !c.transferred[v] {
			c.pass.Reportf(pos, "core.Message %q decoded from the codec pool is dropped without Release; its buffer leaks to the GC instead of the pool", v.Name())
		}
	}
}

// ---- flow walk: double release / use after release ----

// flow walks a statement list, mutating st; returns whether control
// definitely leaves the enclosing function (return / branch).
func (c *checker) flow(stmts []ast.Stmt, st state) bool {
	for _, s := range stmts {
		if c.stmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) stmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return c.flow(s.List, st)
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.simple(s.Init, st)
		}
		c.uses(s.Cond, st)
		thenSt := clone(st)
		thenTerm := c.stmt(s.Body, thenSt)
		elseSt := clone(st)
		elseTerm := false
		hasElse := s.Else != nil
		if hasElse {
			elseTerm = c.stmt(s.Else, elseSt)
		}
		if thenTerm && hasElse && elseTerm {
			return true
		}
		joinInto(st, thenSt, thenTerm)
		if hasElse {
			joinInto(st, elseSt, elseTerm)
		}
		return false
	case *ast.ForStmt:
		if s.Init != nil {
			c.simple(s.Init, st)
		}
		if s.Cond != nil {
			c.uses(s.Cond, st)
		}
		bodySt := clone(st)
		term := c.flow(s.Body.List, bodySt)
		if s.Post != nil && !term {
			c.simple(s.Post, bodySt)
		}
		joinInto(st, bodySt, term)
		return false
	case *ast.RangeStmt:
		c.uses(s.X, st)
		bodySt := clone(st)
		// The iteration variables are freshly assigned every pass.
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if e != nil {
				if v := c.lhsVar(e); v != nil {
					bodySt[v] = false
				}
			}
		}
		term := c.flow(s.Body.List, bodySt)
		joinInto(st, bodySt, term)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return c.branches(s, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.uses(r, st)
		}
		return true
	case *ast.BranchStmt:
		// break/continue/goto leave this statement list.
		return true
	case *ast.DeferStmt:
		// A deferred Release runs at exit; it neither enables nor is
		// subject to the sequential checks here (the dropped check
		// already saw it in prescan). Argument uses are evaluated now.
		for _, a := range s.Call.Args {
			c.uses(a, st)
		}
		return false
	case *ast.GoStmt:
		// The spawned goroutine runs at an arbitrary time; every
		// message it touches escapes sequential reasoning.
		inspectUnit(s.Call, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok && c.tracked[v] {
					c.escaped[v] = true
				}
			}
			return true
		})
		return false
	default:
		c.simple(s, st)
		return false
	}
}

// branches walks each clause of a switch/type-switch/select with a
// copy of st and joins the surviving states.
func (c *checker) branches(s ast.Stmt, st state) bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.simple(s.Init, st)
		}
		if s.Tag != nil {
			c.uses(s.Tag, st)
		}
		body = s.Body
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.simple(s.Init, st)
		}
		c.simple(s.Assign, st)
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	allTerm := true
	var outs []state
	for _, cl := range body.List {
		var stmts []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				c.uses(e, st)
			}
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				c.simple(cl.Comm, st)
			}
			stmts = cl.Body
		}
		clSt := clone(st)
		term := c.flow(stmts, clSt)
		if !term {
			allTerm = false
			outs = append(outs, clSt)
		}
	}
	if hasDefault && allTerm && len(body.List) > 0 {
		return true
	}
	for _, o := range outs {
		joinInto(st, o, false)
	}
	return false
}

// joinInto merges a branch's may-release facts into st; a terminated
// branch contributes nothing (its releases cannot flow past it).
func joinInto(st, branch state, terminated bool) {
	if terminated {
		return
	}
	for v, rel := range branch {
		if rel {
			st[v] = true
		}
	}
}

// simple processes a non-branching statement: uses first (against the
// incoming state), then releases, then reassignment resets.
func (c *checker) simple(s ast.Stmt, st state) {
	releases := make(map[*types.Var]ast.Node)
	inspectUnit(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if v := c.releaseReceiver(call); v != nil {
				releases[v] = call
				// Don't also count the receiver as a use.
				for _, a := range call.Args {
					c.uses(a, st)
				}
				return false
			}
		}
		return true
	})

	// Uses (excluding release receivers and plain assignment targets).
	assignTargets := make(map[*types.Var]bool)
	if as, ok := s.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); ok {
				if v := c.lhsVar(id); v != nil {
					assignTargets[v] = true
				}
			}
		}
	}
	inspectUnit(s, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if v := c.releaseReceiver(call); v != nil && releases[v] != nil {
				return false // receiver handled as a release, not a use
			}
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !c.tracked[v] || c.escaped[v] || assignTargets[v] {
			return true
		}
		if st[v] {
			c.pass.Reportf(id.Pos(), "core.Message %q used after Release; its buffer may already back another decode", v.Name())
			st[v] = false // report once per lapse
		}
		return true
	})

	// Releases.
	for v, at := range releases {
		if c.escaped[v] {
			continue
		}
		if st[v] {
			c.pass.Reportf(at.Pos(), "core.Message %q may be released twice; the pooled buffer would be handed out to two decodes at once", v.Name())
		}
		st[v] = true
	}

	// Reassignment gives the variable a fresh message.
	for v := range assignTargets {
		st[v] = false
	}
}

// uses flags use-after-release occurrences inside a bare expression.
func (c *checker) uses(e ast.Expr, st state) {
	if e == nil {
		return
	}
	inspectUnit(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || !c.tracked[v] || c.escaped[v] {
			return true
		}
		if st[v] {
			c.pass.Reportf(id.Pos(), "core.Message %q used after Release; its buffer may already back another decode", v.Name())
			st[v] = false
		}
		return true
	})
}
