// Package schemeerr enforces the Driver-Kernel/GDB-scheme error
// contract: every error produced inside a scheme implementation must
// name the guest it belongs to (the per-CPU label or the scheme name),
// so a failing 8-CPU run says "driver-kernel cpu3: data socket: ..."
// instead of an anonymous "connection reset".
//
// Scope: packages whose import path contains "internal/core", and
// within them only methods of scheme-carrying types — types that
// implement the core.Scheme interface, or that hold a `label` or
// `schemeName` context field. Inside that scope a bare
// fmt.Errorf/errors.New is flagged unless it
//
//   - is the errf context helper itself (those are exempt by name),
//   - spells the label explicitly ("%s: ..." with a label/schemeName
//     field as the first operand), or
//   - starts with a literal scheme prefix ("driver-kernel:",
//     "gdb-kernel:", "gdb-wrapper:"), the idiom of constructors and the
//     fail() wrappers.
//
// Free functions (pragma parsing, binding resolution, the wire codec)
// are out of scope: their "core:"/file:line prefixes are the right
// context for configuration-time errors.
package schemeerr

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"cosim/internal/analysis"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "schemeerr",
	Doc:  "flags bare fmt.Errorf/errors.New in scheme implementations that omit the cpu/port context helper",
	Run:  run,
}

// schemePrefixes are the literal message prefixes that already carry
// scheme identity.
var schemePrefixes = []string{"driver-kernel", "gdb-kernel", "gdb-wrapper"}

// contextFields mark a type as scheme-carrying when present.
var contextFields = map[string]bool{"label": true, "schemeName": true}

func run(pass *analysis.Pass) (any, error) {
	if !strings.Contains(pass.Pkg.Path(), "internal/core") {
		return nil, nil
	}
	schemeIface := lookupSchemeInterface(pass.Pkg)
	for _, fd := range analysis.EnclosingFuncs(pass.Files) {
		if fd.Recv == nil || fd.Name.Name == "errf" {
			continue
		}
		recv := receiverType(pass, fd)
		if recv == nil || !schemeCarrying(recv, schemeIface) {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind := errorCtor(pass, call)
			if kind == "" {
				return true
			}
			if hasContext(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "bare %s in scheme method %s lacks cpu/port context; use the errf helper or prefix the message with the scheme label", kind, fd.Name.Name)
			return true
		})
	}
	return nil, nil
}

// lookupSchemeInterface finds the package's Scheme interface, if any.
func lookupSchemeInterface(pkg *types.Package) *types.Interface {
	obj := pkg.Scope().Lookup("Scheme")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

func receiverType(pass *analysis.Pass, fd *ast.FuncDecl) types.Type {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	tv, ok := pass.TypesInfo.Types[fd.Recv.List[0].Type]
	if !ok {
		// Unnamed receivers still record the type on the field's names.
		if len(fd.Recv.List[0].Names) > 0 {
			if obj := pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
				return obj.Type()
			}
		}
		return nil
	}
	return tv.Type
}

// schemeCarrying reports whether t implements Scheme or carries a
// label/schemeName context field (directly or via embedding).
func schemeCarrying(t types.Type, iface *types.Interface) bool {
	if iface != nil {
		if types.Implements(t, iface) {
			return true
		}
		if _, ok := t.(*types.Pointer); !ok {
			if types.Implements(types.NewPointer(t), iface) {
				return true
			}
		}
	}
	return hasContextField(t, 0)
}

func hasContextField(t types.Type, depth int) bool {
	if depth > 3 {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if contextFields[f.Name()] {
			return true
		}
		if f.Embedded() && hasContextField(f.Type(), depth+1) {
			return true
		}
	}
	return false
}

// errorCtor classifies a call as fmt.Errorf or errors.New (by type
// information, so renamed imports are still caught), returning "" for
// anything else.
func errorCtor(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	switch {
	case obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf":
		return "fmt.Errorf"
	case obj.Pkg().Path() == "errors" && obj.Name() == "New":
		return "errors.New"
	}
	return ""
}

// hasContext reports whether the error call already carries scheme
// context.
func hasContext(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	format := constant.StringVal(tv.Value)
	for _, p := range schemePrefixes {
		if strings.HasPrefix(format, p) {
			return true
		}
	}
	// "%s: ..." with a label/schemeName field as the first operand.
	if strings.HasPrefix(format, "%s") && len(call.Args) >= 2 {
		if sel, ok := call.Args[1].(*ast.SelectorExpr); ok && contextFields[sel.Sel.Name] {
			return true
		}
	}
	return false
}
