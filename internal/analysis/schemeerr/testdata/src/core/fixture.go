// Package fixturecore mirrors the shape of internal/core's scheme
// implementations: a Scheme interface, a per-CPU type with a label
// field and its errf helper, and methods that construct errors well and
// badly.
package fixturecore

import (
	"errors"
	"fmt"
)

// Scheme mirrors core.Scheme; implementing it puts a type in scope.
type Scheme interface {
	Name() string
	Err() error
}

// driverCPU carries a label context field (the other way into scope).
type driverCPU struct {
	label string
	err   error
}

// errf is the context helper; it is exempt by name.
func (c *driverCPU) errf(format string, args ...any) error {
	return fmt.Errorf("%s: "+format, append([]any{any(c.label)}, args...)...)
}

func (c *driverCPU) bad(port string) {
	c.err = fmt.Errorf("WRITE to unknown port %q", port) // want `bare fmt.Errorf in scheme method bad`
}

func (c *driverCPU) badNew() {
	c.err = errors.New("socket closed") // want `bare errors.New in scheme method badNew`
}

func (c *driverCPU) badWrap(err error) {
	c.err = fmt.Errorf("data socket: %w", err) // want `bare fmt.Errorf in scheme method badWrap`
}

func (c *driverCPU) okHelper(port string) {
	c.err = c.errf("WRITE to unknown port %q", port)
}

func (c *driverCPU) okExplicitLabel(port string) {
	c.err = fmt.Errorf("%s: READ of unknown port %q", c.label, port)
}

func (c *driverCPU) suppressed() {
	//cosimvet:ignore schemeerr fixture exercises the suppression directive
	c.err = errors.New("deliberately bare")
}

// kernelScheme implements the package's Scheme interface.
type kernelScheme struct{ err error }

func (k *kernelScheme) Name() string { return "driver-kernel" }
func (k *kernelScheme) Err() error   { return k.err }

func (k *kernelScheme) okPrefix(n int) {
	k.err = fmt.Errorf("driver-kernel: CPUs = %d but no channels given", n)
}

func (k *kernelScheme) badBare() {
	k.err = errors.New("boom") // want `bare errors.New in scheme method badBare`
}

// parser is NOT scheme-carrying: configuration-time errors keep their
// file/line prefixes and are out of scope.
type parser struct{ src string }

func (p *parser) parse(line int) error {
	return fmt.Errorf("%s:%d: empty co-simulation pragma", p.src, line)
}

// resolveBinding is a free function: out of scope.
func resolveBinding(port string) error {
	return fmt.Errorf("core: binding %q: no breakpoint location", port)
}
