// Package other is loaded under an import path outside internal/core:
// the same bare-error shapes must not be flagged there.
package other

import "errors"

type worker struct {
	label string
	err   error
}

func (w *worker) fail() {
	w.err = errors.New("bare but out of scope")
}
