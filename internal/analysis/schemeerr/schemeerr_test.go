package schemeerr_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/schemeerr"
)

func TestSchemeerr(t *testing.T) {
	analysistest.Run(t, schemeerr.Analyzer, "testdata/src/core", "fixture/internal/core/fixture")
}

// Outside internal/core the rule does not apply at all.
func TestSchemeerrOutOfScope(t *testing.T) {
	analysistest.Run(t, schemeerr.Analyzer, "testdata/src/other", "fixture/other")
}
