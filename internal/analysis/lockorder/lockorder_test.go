package lockorder_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/lockorder"
)

func TestLockorderInPackage(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/dev", "fixture/internal/dev")
}

func TestLockorderCrossPackageProxy(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/core", "fixture/internal/core")
}

// Out of scope, the analyzer stays silent even over inverted locks.
func TestLockorderOutOfScope(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/src/outofscope", "fixture/other")
}
