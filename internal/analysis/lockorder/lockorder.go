// Package lockorder checks mutex acquisitions against a declarative
// lock-ordering spec, interprocedurally, using the callgraph package's
// per-function lock summaries.
//
// The spec is a list of tiers from innermost-forbidden to outermost:
// acquiring a class whose tier is LOWER than a class already held is a
// violation. The first rule encodes the PR 8 DMI discipline (DESIGN
// 5.10): dev.Window locks are tier 0 and device/scheme mutexes are
// tier 1, so taking a window lock while holding a device or scheme
// mutex — the inversion the collect-then-revoke idiom exists to
// prevent — is flagged, with the acquisition path in the diagnostic.
// Acquiring a class that is already held is always flagged (Go mutexes
// are not reentrant), and any cycle in the observed acquisition-order
// graph is reported even between classes the spec does not tier.
//
// Three approximations, all deliberately over- or under-shooting in
// the safe direction for a tripwire:
//
//   - Held intervals are syntactic: a Lock holds from its source
//     position to the matching Unlock's position (a deferred Unlock
//     holds to the end of the function). Branch-dependent unlocking is
//     not modeled.
//   - Calls to package-local functions propagate transitively through
//     the call graph's (over-approximate) edges.
//   - A call to another package's method on a type that owns a
//     spec-declared class (e.g. any dev.Window method called from
//     internal/core) is assumed to acquire that class — precise
//     summaries stop at the package boundary, and assuming the lock is
//     taken is the conservative choice. Lock-free accessors flagged by
//     this rule can be suppressed with //cosimvet:ignore lockorder.
//
// Scope: packages under internal/{core,dev,sim,server,obs}.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cosim/internal/analysis"
	"cosim/internal/analysis/callgraph"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "flags mutex acquisitions that violate the declarative lock-ordering spec (window < device/scheme), plus acquisition cycles",
	Run:  run,
}

// ClassPattern names one mutex class in the spec, matched by package
// path suffix so repo packages and test fixtures both match.
type ClassPattern struct {
	PkgSuffix string
	Type      string // owning named type ("" for package-level vars)
	Field     string
}

// Tier is one level of the ordering: classes in a lower tier must be
// acquired before (i.e. must never be acquired while holding) classes
// in a higher tier.
type Tier struct {
	Name     string
	Patterns []ClassPattern
}

// Spec is the declarative lock-ordering specification.
type Spec struct {
	Tiers []Tier
}

// DefaultSpec encodes the repository's ordering rules. Rule 1 (PR 8,
// DESIGN 5.10): dev.Window locks are innermost-forbidden relative to
// device and scheme mutexes — a window lock must never be taken while
// a device or scheme mutex is held.
var DefaultSpec = Spec{
	Tiers: []Tier{
		{Name: "window", Patterns: []ClassPattern{
			{"internal/dev", "Window", "mu"},
		}},
		{Name: "device/scheme", Patterns: []ClassPattern{
			{"internal/dev", "CosimDev", "mu"},
			{"internal/dev", "PIC", "mu"},
			{"internal/dev", "Console", "mu"},
			{"internal/dev", "Mailbox", "mu"},
			{"internal/core", "DriverKernel", "mu"},
		}},
	},
}

var scopeSuffixes = []string{
	"internal/core", "internal/dev", "internal/sim", "internal/server", "internal/obs",
}

func inScope(path string) bool {
	for _, s := range scopeSuffixes {
		if strings.HasSuffix(path, s) {
			return true
		}
	}
	return false
}

// tier returns the spec tier index of a class, or -1 if untiered.
func (s *Spec) tier(c callgraph.Class) (int, string) {
	for i, t := range s.Tiers {
		for _, p := range t.Patterns {
			if c.Matches(p.PkgSuffix, p.Type, p.Field) {
				return i, t.Name
			}
		}
	}
	return -1, ""
}

func run(pass *analysis.Pass) (any, error) {
	if !inScope(pass.Pkg.Path()) {
		return nil, nil
	}
	g := callgraph.Build(pass)
	c := &checker{
		pass:      pass,
		graph:     g,
		spec:      &DefaultSpec,
		taCache:   make(map[*callgraph.Node]map[callgraph.Class][]*callgraph.Node),
		orderEdge: make(map[[2]callgraph.Class]edgeInfo),
		reported:  make(map[string]bool),
	}
	for _, n := range g.Nodes {
		c.checkNode(n)
	}
	c.reportCycles()
	return nil, nil
}

type edgeInfo struct {
	pos  token.Pos
	desc string // "B acquired while holding A in F"
}

type checker struct {
	pass      *analysis.Pass
	graph     *callgraph.Graph
	spec      *Spec
	taCache   map[*callgraph.Node]map[callgraph.Class][]*callgraph.Node
	orderEdge map[[2]callgraph.Class]edgeInfo
	reported  map[string]bool
}

func (c *checker) transitive(n *callgraph.Node) map[callgraph.Class][]*callgraph.Node {
	if ta, ok := c.taCache[n]; ok {
		return ta
	}
	ta := c.graph.TransitiveAcquires(n)
	c.taCache[n] = ta
	return ta
}

// event is one point in a body's merged lock/call timeline.
type event struct {
	pos     token.Pos
	lock    *callgraph.LockEvent
	edges   []*callgraph.Edge // call edges at this call site
	foreign *callgraph.Class  // cross-package class-owner method call
}

func (c *checker) checkNode(n *callgraph.Node) {
	events := c.timeline(n)
	held := make(map[callgraph.Class]token.Pos)
	for _, ev := range events {
		switch {
		case ev.lock != nil && ev.lock.Release:
			if !ev.lock.Defer {
				delete(held, ev.lock.Class)
			}
		case ev.lock != nil:
			c.checkAcquire(n, nil, ev.lock.Class, ev.pos, held)
			held[ev.lock.Class] = ev.pos
		case ev.foreign != nil:
			// Transient: the callee acquires and releases internally.
			c.checkAcquire(n, nil, *ev.foreign, ev.pos, held)
		default:
			if len(held) == 0 {
				continue
			}
			for _, e := range ev.edges {
				for cls, path := range c.transitive(e.Callee) {
					c.checkAcquire(n, path, cls, ev.pos, held)
				}
			}
		}
	}
}

// timeline merges a node's lock events, call edges and cross-package
// class-owner method calls into source order.
func (c *checker) timeline(n *callgraph.Node) []event {
	var out []event
	for i := range n.Locks {
		out = append(out, event{pos: n.Locks[i].Pos, lock: &n.Locks[i]})
	}
	byCall := make(map[*ast.CallExpr][]*callgraph.Edge)
	var callOrder []*ast.CallExpr
	for i := range n.Calls {
		e := &n.Calls[i]
		if _, ok := byCall[e.Call]; !ok {
			callOrder = append(callOrder, e.Call)
		}
		byCall[e.Call] = append(byCall[e.Call], e)
	}
	for _, call := range callOrder {
		out = append(out, event{pos: call.Pos(), edges: byCall[call]})
	}
	for _, fc := range c.foreignClassCalls(n) {
		out = append(out, fc)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// foreignClassCalls finds calls to other packages' methods on types
// that own a spec-declared class; each is assumed to acquire it.
func (c *checker) foreignClassCalls(n *callgraph.Node) []event {
	var out []event
	ast.Inspect(n.Body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // literal bodies are their own nodes
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := c.pass.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.MethodVal {
			return true
		}
		fn, ok := s.Obj().(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg() == c.pass.Pkg {
			return true // package-local: the call graph has a precise edge
		}
		recv := s.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return true
		}
		for _, t := range c.spec.Tiers {
			for _, p := range t.Patterns {
				if p.Type == "" || named.Obj().Name() != p.Type ||
					!strings.HasSuffix(named.Obj().Pkg().Path(), p.PkgSuffix) {
					continue
				}
				cls := callgraph.Class{Pkg: named.Obj().Pkg().Path(), Type: p.Type, Field: p.Field}
				out = append(out, event{pos: call.Pos(), foreign: &cls})
			}
		}
		return true
	})
	return out
}

// checkAcquire checks acquiring cls (directly, or transitively via
// path) at pos against the currently held set.
func (c *checker) checkAcquire(n *callgraph.Node, path []*callgraph.Node, cls callgraph.Class, pos token.Pos, held map[callgraph.Class]token.Pos) {
	via := ""
	if len(path) > 0 {
		var names []string
		for _, p := range path {
			names = append(names, p.Name)
		}
		via = " via " + n.Name + " -> " + strings.Join(names, " -> ")
	}
	if _, ok := held[cls]; ok {
		c.reportf(pos, cls.String()+"|self",
			"%s acquired while already held%s (Go mutexes are not reentrant)", cls, via)
	}
	clsTier, clsTierName := c.spec.tier(cls)
	for h := range held {
		if h == cls {
			continue
		}
		hTier, hTierName := c.spec.tier(h)
		if clsTier >= 0 && hTier >= 0 && clsTier < hTier {
			c.reportf(pos, cls.String()+"|"+h.String(),
				"lock order violation: %s (tier %q) acquired while holding %s (tier %q)%s; the spec requires %s locks to be taken first",
				cls, clsTierName, h, hTierName, via, clsTierName)
			continue // already diagnosed; keep it out of the cycle graph
		}
		key := [2]callgraph.Class{h, cls}
		if _, ok := c.orderEdge[key]; !ok {
			c.orderEdge[key] = edgeInfo{
				pos:  pos,
				desc: fmt.Sprintf("%s acquired while holding %s in %s", cls, h, n.Name),
			}
		}
	}
}

// reportf deduplicates diagnostics by (position, key).
func (c *checker) reportf(pos token.Pos, key, format string, args ...any) {
	id := fmt.Sprintf("%d|%s", pos, key)
	if c.reported[id] {
		return
	}
	c.reported[id] = true
	c.pass.Reportf(pos, format, args...)
}

// reportCycles finds cycles in the acquisition-order graph (an edge
// A -> B means B was acquired while A was held somewhere in the
// package) and reports each once, at the lexically first edge.
func (c *checker) reportCycles() {
	adj := make(map[callgraph.Class][]callgraph.Class)
	for key := range c.orderEdge {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	var classes []callgraph.Class
	for cls := range adj {
		classes = append(classes, cls)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i].String() < classes[j].String() })
	for cls := range adj {
		sort.Slice(adj[cls], func(i, j int) bool { return adj[cls][i].String() < adj[cls][j].String() })
	}

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[callgraph.Class]int)
	var stack []callgraph.Class
	var visit func(callgraph.Class)
	visit = func(u callgraph.Class) {
		color[u] = gray
		stack = append(stack, u)
		for _, v := range adj[u] {
			if color[v] == gray {
				// Found a cycle: the suffix of the stack from v.
				i := len(stack) - 1
				for i >= 0 && stack[i] != v {
					i--
				}
				cycle := append(append([]callgraph.Class(nil), stack[i:]...), v)
				c.reportCycle(cycle)
			} else if color[v] == white {
				visit(v)
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
	}
	for _, cls := range classes {
		if color[cls] == white {
			visit(cls)
		}
	}
}

func (c *checker) reportCycle(cycle []callgraph.Class) {
	// Canonicalize: rotate so the smallest class name leads, so each
	// cycle is reported once regardless of discovery order.
	body := cycle[:len(cycle)-1]
	min := 0
	for i := range body {
		if body[i].String() < body[min].String() {
			min = i
		}
	}
	rot := append(append([]callgraph.Class(nil), body[min:]...), body[:min]...)
	rot = append(rot, rot[0])
	var names []string
	for _, cls := range rot {
		names = append(names, cls.String())
	}
	key := strings.Join(names, " -> ")
	if c.reported["cycle|"+key] {
		return
	}
	c.reported["cycle|"+key] = true

	// Report at the lexically first edge of the cycle, with each edge's
	// evidence in the message.
	pos := token.Pos(0)
	var evidence []string
	for i := 0; i+1 < len(rot); i++ {
		e := c.orderEdge[[2]callgraph.Class{rot[i], rot[i+1]}]
		if pos == 0 || (e.pos != 0 && e.pos < pos) {
			pos = e.pos
		}
		evidence = append(evidence, e.desc)
	}
	c.pass.Reportf(pos, "lock acquisition cycle: %s (%s)", key, strings.Join(evidence, "; "))
}
