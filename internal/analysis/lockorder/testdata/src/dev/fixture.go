// Package dev (fixture) exercises lockorder's in-package checks: the
// import path ends in internal/dev, so the local Window/CosimDev/
// Mailbox types match the spec's class patterns.
package dev

import "sync"

type Window struct {
	mu sync.Mutex
}

func (w *Window) lock() {
	w.mu.Lock()
}

func (w *Window) Revoke() {
	w.mu.Lock()
	w.mu.Unlock()
}

type CosimDev struct {
	mu sync.Mutex
}

// Direct inversion: the window lock is taken while the device mutex is
// held.
func (d *CosimDev) direct(w *Window) {
	d.mu.Lock()
	w.mu.Lock() // want `lock order violation: dev.Window.mu .tier "window". acquired while holding dev.CosimDev.mu`
	w.mu.Unlock()
	d.mu.Unlock()
}

// Interprocedural inversion: the acquisition happens two calls deep;
// the diagnostic lands on the call made while the device mutex is held
// and names the path.
func (d *CosimDev) indirect(w *Window) {
	d.mu.Lock()
	defer d.mu.Unlock()
	helper(w) // want `lock order violation: dev.Window.mu .tier "window". acquired while holding dev.CosimDev.mu .tier "device/scheme". via CosimDev.indirect -> helper -> Window.lock`
}

func helper(w *Window) {
	w.lock()
}

// Collect-then-revoke: the device mutex is released before the window
// lock is taken, so nothing fires.
func (d *CosimDev) collectThenRevoke(w *Window) {
	d.mu.Lock()
	d.mu.Unlock()
	w.mu.Lock()
	w.mu.Unlock()
}

// The spec direction: taking the device mutex while holding a window
// lock ascends the tiers and is legal.
func (d *CosimDev) ascending(w *Window) {
	w.mu.Lock()
	d.mu.Lock()
	d.mu.Unlock()
	w.mu.Unlock()
}

// Non-reentrant double acquisition of the same class.
func (w *Window) reenter() {
	w.mu.Lock()
	w.mu.Lock() // want `dev.Window.mu acquired while already held`
	w.mu.Unlock()
	w.mu.Unlock()
}

// A justified inversion can be suppressed like any other finding.
func (d *CosimDev) suppressed(w *Window) {
	d.mu.Lock()
	//cosimvet:ignore lockorder fixture exercising the suppression path
	w.mu.Lock()
	w.mu.Unlock()
	d.mu.Unlock()
}

// Cycle between two untiered classes: jekyll locks a then b, hyde
// locks b then a. Neither order violates a tier rule, but together
// they form an acquisition cycle.
type pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *pair) jekyll() {
	p.a.Lock()
	p.b.Lock() // want `lock acquisition cycle: dev.pair.a -> dev.pair.b -> dev.pair.a`
	p.b.Unlock()
	p.a.Unlock()
}

func (p *pair) hyde() {
	p.b.Lock()
	p.a.Lock()
	p.a.Unlock()
	p.b.Unlock()
}
