// Package outofscope holds an inverted acquisition in a package that
// is outside lockorder's scope; the analyzer must stay silent.
package outofscope

import "sync"

type Window struct{ mu sync.Mutex }

type CosimDev struct{ mu sync.Mutex }

func (d *CosimDev) inverted(w *Window) {
	d.mu.Lock()
	w.mu.Lock()
	w.mu.Unlock()
	d.mu.Unlock()
}
