// Package core (fixture) exercises lockorder's cross-package rule: a
// call to another package's method on a spec class owner (here the
// real dev.Window) is assumed to acquire that class.
package core

import (
	"sync"

	"cosim/internal/dev"
)

type DriverKernel struct {
	mu sync.Mutex
}

// Revoking a window while holding the scheme mutex is the inversion
// the collect-then-revoke idiom exists to prevent.
func (d *DriverKernel) revokeUnderLock(w *dev.Window) {
	d.mu.Lock()
	defer d.mu.Unlock()
	w.Revoke() // want `lock order violation: dev.Window.mu .tier "window". acquired while holding core.DriverKernel.mu`
}

// Collect under the lock, revoke after releasing it: clean.
func (d *DriverKernel) collectThenRevoke(ws []*dev.Window) {
	d.mu.Lock()
	collected := append([]*dev.Window(nil), ws...)
	d.mu.Unlock()
	for _, w := range collected {
		w.Revoke()
	}
}
