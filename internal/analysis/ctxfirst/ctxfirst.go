// Package ctxfirst enforces the context placement convention on the
// service surface: exported functions and methods in internal/server
// and internal/harness that accept a context.Context must take it as
// the first parameter, the stdlib convention (`func F(ctx
// context.Context, ...)`) that keeps cancellation plumbing uniform
// across the session-server call chain (handler → Server → RunContext →
// kernel teardown). A context buried later in the signature is how a
// call site ends up threading context.Background() "for now" and
// severing the cancellation path cosimd's DELETE and drain semantics
// depend on.
//
// Scope: packages whose import path contains "internal/server" or
// "internal/harness"; only exported functions and methods are checked,
// since the rule is about the API surface other packages build on.
package ctxfirst

import (
	"go/ast"
	"go/types"
	"strings"

	"cosim/internal/analysis"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "ctxfirst",
	Doc:  "flags exported server/harness functions taking a context.Context anywhere but first",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "internal/server") && !strings.Contains(path, "internal/harness") {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !fd.Name.IsExported() || fd.Type.Params == nil {
				continue
			}
			pos := 0
			for _, field := range fd.Type.Params.List {
				n := len(field.Names)
				if n == 0 {
					n = 1 // unnamed parameter
				}
				if pos > 0 && isContext(pass, field.Type) {
					pass.Reportf(field.Type.Pos(),
						"exported %s takes context.Context as parameter %d; a context must be the first parameter",
						fd.Name.Name, pos+1)
				}
				pos += n
			}
		}
	}
	return nil, nil
}

// isContext reports whether the type expression denotes context.Context
// (by type identity, so renamed imports and aliases are caught).
func isContext(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
