package ctxfirst_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/ctxfirst"
)

func TestCtxfirst(t *testing.T) {
	analysistest.Run(t, ctxfirst.Analyzer, "testdata/src/server", "fixture/internal/server/fixture")
}

// Outside internal/server and internal/harness the rule does not apply.
func TestCtxfirstOutOfScope(t *testing.T) {
	analysistest.Run(t, ctxfirst.Analyzer, "testdata/src/other", "fixture/internal/other/fixture")
}
