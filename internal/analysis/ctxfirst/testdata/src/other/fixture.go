// Fixture for the ctxfirst analyzer: out-of-scope package (import path
// names neither internal/server nor internal/harness), so nothing is
// flagged even though the signature buries a context.
package fixture

import "context"

// RunLast would be flagged inside internal/server; here it is not.
func RunLast(n int, ctx context.Context) error { return ctx.Err() }
