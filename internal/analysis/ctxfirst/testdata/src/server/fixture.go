// Fixture for the ctxfirst analyzer: in-scope package (import path
// contains internal/server).
package fixture

import "context"

// RunFirst is fine: the context leads.
func RunFirst(ctx context.Context, n int) error { return ctx.Err() }

// NoContext is fine: nothing to place.
func NoContext(a, b int) int { return a + b }

// RunLast buries the context.
func RunLast(n int, ctx context.Context) error { return ctx.Err() } // want `exported RunLast takes context.Context as parameter 2`

// RunMiddle buries it in the middle of a shared-name field.
func RunMiddle(a int, b string, ctx context.Context, d bool) {} // want `exported RunMiddle takes context.Context as parameter 3`

// TwoContexts: the first is fine, the second is flagged.
func TwoContexts(ctx context.Context, other context.Context) {} // want `exported TwoContexts takes context.Context as parameter 2`

// Unexported functions are out of scope: internal helpers may thread
// contexts however the call chain needs.
func runLast(n int, ctx context.Context) error { return ctx.Err() }

// Svc carries the method cases.
type Svc struct{}

// Drain is fine.
func (s *Svc) Drain(ctx context.Context) error { return ctx.Err() }

// Submit buries the context behind the payload.
func (s *Svc) Submit(payload []byte, ctx context.Context) error { return ctx.Err() } // want `exported Submit takes context.Context as parameter 2`

// Aliased contexts are caught by type identity, not spelling.
type myCtx = context.Context

// SubmitAliased hides the context behind an alias.
func SubmitAliased(n int, ctx myCtx) error { return ctx.Err() } // want `exported SubmitAliased takes context.Context as parameter 2`
