// Package suite bundles the cosimvet analyzers. cmd/cosimvet and the
// repo-wide cleanliness test both consume this list, so adding a rule
// here wires it into the CLI and CI in one step.
package suite

import (
	"cosim/internal/analysis"
	"cosim/internal/analysis/ctxfirst"
	"cosim/internal/analysis/detsafe"
	"cosim/internal/analysis/lockedfield"
	"cosim/internal/analysis/lockorder"
	"cosim/internal/analysis/obsnames"
	"cosim/internal/analysis/poolsafe"
	"cosim/internal/analysis/schemeerr"
	"cosim/internal/analysis/shardfx"
	"cosim/internal/analysis/timesafe"
	"cosim/internal/analysis/transportclose"
)

// Analyzers returns the full cosimvet rule set in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxfirst.Analyzer,
		detsafe.Analyzer,
		lockedfield.Analyzer,
		lockorder.Analyzer,
		obsnames.Analyzer,
		poolsafe.Analyzer,
		schemeerr.Analyzer,
		shardfx.Analyzer,
		timesafe.Analyzer,
		transportclose.Analyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
