package analysis_test

import (
	"os"
	"strings"
	"testing"

	"cosim/internal/analysis"
	"cosim/internal/analysis/suite"
)

// TestRepositoryIsCosimvetClean runs the full cosimvet suite over every
// package of the module and fails on any finding, so a regression
// against the pooling/time/obs/error/locking invariants fails
// `go test ./...` without anyone remembering to run the tool.
func TestRepositoryIsCosimvetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module from source; skipped in -short mode")
	}
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, modPath, err := analysis.ModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.ModulePackages(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages found in module")
	}
	// The sweep's value depends on its coverage: the command and
	// example trees are where analyzer rules are most often violated
	// first (new CLIs, copy-pasted model code), so a loader regression
	// that silently drops them must fail here, not go unnoticed.
	for _, prefix := range []string{modPath + "/cmd/", modPath + "/examples/", modPath + "/internal/"} {
		found := false
		for _, p := range pkgs {
			if strings.HasPrefix(p.ImportPath, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("module package sweep lost %s... — ModulePackages regression?", prefix)
		}
	}
	analyzers := suite.Analyzers()
	for _, p := range pkgs {
		loaded, err := analysis.LoadDir(p.Dir, p.ImportPath)
		if err != nil {
			t.Fatalf("load %s: %v", p.ImportPath, err)
		}
		diags, err := analysis.Run(loaded, analyzers)
		if err != nil {
			t.Fatalf("run %s: %v", p.ImportPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s: %s (%s)", loaded.Fset.Position(d.Pos), d.Message, d.Analyzer)
		}
	}
}
