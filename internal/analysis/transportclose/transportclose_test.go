package transportclose_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/transportclose"
)

func TestTransportclose(t *testing.T) {
	analysistest.Run(t, transportclose.Analyzer, "testdata/src/core", "fixture/internal/core/fixture")
}

// Inside internal/transport the rule does not apply: the backends
// handle concrete net.Conns by design.
func TestTransportcloseOutOfScope(t *testing.T) {
	analysistest.Run(t, transportclose.Analyzer, "testdata/src/transport", "fixture/internal/transport/fixture")
}
