// Package fixturetransport is loaded under an import path inside
// internal/transport: the backends legitimately distinguish concrete
// net.Conns, so nothing here is flagged.
package fixturetransport

import (
	"io"
	"net"
)

func tune(ep io.ReadWriteCloser) {
	if conn, ok := ep.(net.Conn); ok {
		_ = conn.SetDeadline
	}
	switch ep.(type) {
	case net.Conn:
	}
}
