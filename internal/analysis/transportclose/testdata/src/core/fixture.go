// Package fixturecore mirrors the shape of scheme teardown code: a
// channel field typed as the transport's least common denominator
// (io.ReadWriter) whose close path must use io.Closer, not net.Conn.
package fixturecore

import (
	"io"
	"net"
)

type channel struct {
	Data io.ReadWriter
	IRQ  io.Writer
}

func (c *channel) badAssert() {
	if conn, ok := c.Data.(net.Conn); ok { // want `net.Conn type assertion`
		_ = conn.Close()
	}
}

func (c *channel) badSwitch() {
	switch v := c.IRQ.(type) {
	case net.Conn: // want `net.Conn case in a channel type switch`
		_ = v.Close()
	case io.Closer:
		_ = v.Close()
	}
}

func (c *channel) okCloser() {
	if cl, ok := c.Data.(io.Closer); ok {
		_ = cl.Close()
	}
}

func (c *channel) suppressed() {
	//cosimvet:ignore transportclose fixture exercises the suppression directive
	if conn, ok := c.Data.(net.Conn); ok {
		_ = conn.SetDeadline
	}
}

// renamed imports must still be caught.
func sneaky(rw io.ReadWriter) {
	type alias = net.Conn
	if conn, ok := rw.(alias); ok { // want `net.Conn type assertion`
		_ = conn.Close()
	}
}
