// Package transportclose enforces the transport teardown contract:
// outside internal/transport, co-simulation channel teardown must reach
// an endpoint through io.Closer, never through a net.Conn type
// assertion. The transport layer guarantees only that its endpoints are
// io.ReadWriteClosers — the ring backend's endpoints are not net.Conns
// at all — so a `ch.(net.Conn)` gate silently skips the close for
// non-socket backends and leaks their reader goroutines (the exact bug
// the Driver-Kernel finalizers shipped with).
//
// Scope: every package except those whose import path contains
// "internal/transport" (the transport backends legitimately handle
// concrete net.Conns). Inside that scope any type assertion or
// type-switch case asserting to net.Conn is flagged. A narrower check
// (SetDeadline on a conn known to be TCP, say) can be suppressed with
// //cosimvet:ignore transportclose <reason>.
package transportclose

import (
	"go/ast"
	"go/types"
	"strings"

	"cosim/internal/analysis"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "transportclose",
	Doc:  "flags net.Conn type assertions outside internal/transport; channel teardown must go through io.Closer",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if strings.Contains(pass.Pkg.Path(), "internal/transport") {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				// n.Type is nil inside `switch x.(type)`; the cases are
				// handled below.
				if n.Type != nil && isNetConn(pass, n.Type) {
					pass.Reportf(n.Pos(), "net.Conn type assertion on a channel value; assert io.Closer instead so non-socket transports tear down too")
				}
			case *ast.TypeSwitchStmt:
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, te := range cc.List {
						if isNetConn(pass, te) {
							pass.Reportf(te.Pos(), "net.Conn case in a channel type switch; match io.Closer instead so non-socket transports tear down too")
						}
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

// isNetConn reports whether the type expression denotes the net.Conn
// interface (checked by type identity, so renamed imports are caught).
func isNetConn(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "net" && obj.Name() == "Conn"
}
