package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package — the input to Run.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// The loader shares one file set and one source importer across every
// load in the process: the importer type-checks dependencies (including
// the standard library) from source, which is expensive the first time
// and cached afterwards. The source importer resolves module-local
// import paths through the go command, so the process must run from
// inside the module — true for both cmd/cosimvet and `go test`.
var (
	loadMu     sync.Mutex
	sharedFset = token.NewFileSet()
	sharedImp  types.Importer
)

func sourceImporter() types.Importer {
	if sharedImp == nil {
		sharedImp = importer.ForCompiler(sharedFset, "source", nil)
	}
	return sharedImp
}

// LoadDir parses and type-checks the non-test Go files of one directory
// as the package importPath. The import path is caller-chosen: the
// multichecker derives it from the module path, while analyzer tests
// pick synthetic paths to place fixtures in or out of a rule's scope.
func LoadDir(dir, importPath string) (*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", dir, err)
	}
	if len(bp.CgoFiles) > 0 {
		return nil, fmt.Errorf("load %s: cgo packages are not supported", dir)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: sourceImporter()}
	pkg, err := conf.Check(importPath, sharedFset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", dir, err)
	}
	return &Package{
		Dir:        dir,
		ImportPath: importPath,
		Fset:       sharedFset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// ModuleRoot walks up from dir to the directory containing go.mod and
// returns that directory plus the module path declared there.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module directive", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// PackageDir names one analyzable package directory of the module.
type PackageDir struct {
	Dir        string
	ImportPath string
}

// ModulePackages enumerates the module's package directories (those
// containing at least one non-test Go file), skipping testdata, vendor
// and hidden directories. Results are sorted by import path.
func ModulePackages(root, modPath string) ([]PackageDir, error) {
	var out []PackageDir
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := build.Default.ImportDir(path, 0); err != nil {
			return nil // no buildable non-test files here
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		out = append(out, PackageDir{Dir: path, ImportPath: ip})
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}
