// Package analysis is a self-contained, stdlib-only substitute for the
// golang.org/x/tools/go/analysis framework, sized for this repository's
// needs: an Analyzer is a named Run function over one type-checked
// package, diagnostics carry positions, and `//cosimvet:ignore`
// directives suppress individual findings.
//
// The x/tools module is deliberately not a dependency — the repo builds
// with a bare module cache — so the seven cosimvet analyzers (poolsafe,
// timesafe, obsnames, schemeerr, lockedfield, transportclose, ctxfirst)
// and the cmd/cosimvet multichecker are written against this package instead. The API
// mirrors go/analysis closely enough that porting to the real framework
// is a mechanical change if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis rule.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //cosimvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the rule enforces.
	Doc string
	// Run applies the rule to one package, reporting findings through
	// pass.Report. The returned value is unused (kept for go/analysis
	// API symmetry).
	Run func(pass *Pass) (any, error)
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by Run
}

// Run applies each analyzer to the package and returns the surviving
// diagnostics (ignore directives applied), sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	ignores := collectIgnores(pkg)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.Report = func(d Diagnostic) {
			d.Analyzer = name
			if !ignores.suppressed(pkg.Fset.Position(d.Pos), name) {
				out = append(out, d)
			}
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(out[i].Pos), pkg.Fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ignoreRe matches suppression directives:
//
//	//cosimvet:ignore <rule>[,<rule>...] <reason>
//	//lint:ignore cosimvet/<rule> <reason>
//
// A directive suppresses matching diagnostics on its own line and on
// the next line, so it works both as a trailing comment and as a
// comment above the flagged statement.
var ignoreRe = regexp.MustCompile(`//\s*(?:cosimvet:ignore|lint:ignore\s+cosimvet/)\s*([\w,/-]+)\s+\S`)

type ignoreSet map[string]map[int][]string // file -> line -> rule names

func (s ignoreSet) suppressed(pos token.Position, rule string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, r := range lines[l] {
			if r == rule || r == "all" {
				return true
			}
		}
	}
	return false
}

func collectIgnores(pkg *Package) ignoreSet {
	set := make(ignoreSet)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					set[pos.Filename] = lines
				}
				rules := strings.Split(strings.TrimPrefix(m[1], "cosimvet/"), ",")
				lines[pos.Line] = append(lines[pos.Line], rules...)
			}
		}
	}
	return set
}

// NamedType reports whether t (after pointer indirection) is the named
// type pkgPathSuffix.name, matching the package by path suffix so the
// check works both on the real repo packages and on test fixtures that
// import them.
func NamedType(t types.Type, pkgPathSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), pkgPathSuffix)
}

// EnclosingFuncs pairs every function body in the package (declarations
// only, not literals) with its declaration, for analyzers that need the
// enclosing function's identity.
func EnclosingFuncs(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// ReceiverTypeName returns the name of fd's receiver base type, or "".
func ReceiverTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}
