// Package synth exercises every call-edge resolution mode of the
// callgraph package: direct calls, interface dispatch, function-typed
// fields, parameters, and lock-event summaries.
package synth

import "sync"

type S struct {
	mu    sync.Mutex
	state int // guarded by mu
}

var pkgMu sync.RWMutex

// Direct chain: Outer -> middle -> (*S).acquire.
func Outer(s *S) { middle(s) }

func middle(s *S) { s.acquire() }

func (s *S) acquire() {
	s.mu.Lock()
	s.state++
	s.mu.Unlock()
}

func (s *S) deferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state--
}

func readPkg() {
	pkgMu.RLock()
	defer pkgMu.RUnlock()
}

// Interface dispatch: both implementations are candidate callees.
type runner interface{ Step() }

type fast struct{ s *S }

func (f fast) Step() { f.s.acquire() }

type slow struct{}

func (slow) Step() {}

func Dispatch(r runner) { r.Step() }

// Function-typed field and parameter bindings.
type hooks struct{ onFire func() }

func WithHooks(s *S) *hooks {
	return &hooks{onFire: s.acquire}
}

func (h *hooks) Fire() { h.onFire() }

func apply(f func()) { f() }

func Indirect(s *S) {
	apply(func() { s.acquire() })
}
