package callgraph_test

import (
	"strings"
	"testing"

	"cosim/internal/analysis"
	"cosim/internal/analysis/callgraph"
)

func buildSynth(t *testing.T) (*analysis.Pass, *callgraph.Graph) {
	t.Helper()
	pkg, err := analysis.LoadDir("testdata/src/synth", "fixture/synth")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	pass := &analysis.Pass{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.Info,
	}
	return pass, callgraph.Build(pass)
}

func node(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("node %q not found", name)
	return nil
}

func callees(n *callgraph.Node) map[string]bool {
	out := make(map[string]bool)
	for _, e := range n.Calls {
		out[e.Callee.Name] = true
	}
	return out
}

func TestDirectChainAndTransitiveAcquires(t *testing.T) {
	_, g := buildSynth(t)
	outer := node(t, g, "Outer")
	if !callees(outer)["middle"] {
		t.Fatalf("Outer should call middle; calls = %v", callees(outer))
	}
	acq := g.TransitiveAcquires(outer)
	var found bool
	for cls, path := range acq {
		if cls.Matches("fixture/synth", "S", "mu") {
			found = true
			var names []string
			for _, n := range path {
				names = append(names, n.Name)
			}
			want := "Outer -> middle -> S.acquire"
			if got := strings.Join(names, " -> "); got != want {
				t.Errorf("acquisition path = %q, want %q", got, want)
			}
			if cls.String() != "synth.S.mu" {
				t.Errorf("class string = %q, want synth.S.mu", cls.String())
			}
		}
	}
	if !found {
		t.Errorf("Outer does not transitively acquire S.mu; got %v", acq)
	}
}

func TestInterfaceDispatchOverApproximates(t *testing.T) {
	_, g := buildSynth(t)
	d := node(t, g, "Dispatch")
	got := callees(d)
	if !got["fast.Step"] || !got["slow.Step"] {
		t.Errorf("Dispatch should over-approximate to both Step methods; got %v", got)
	}
	for _, e := range d.Calls {
		if !e.Dynamic {
			t.Errorf("interface edge to %s should be marked dynamic", e.Callee.Name)
		}
	}
	if _, ok := g.TransitiveAcquires(d)[classOf(t, g, "S", "mu")]; !ok {
		t.Errorf("Dispatch should transitively acquire S.mu through fast.Step")
	}
}

func TestFuncValueBindings(t *testing.T) {
	_, g := buildSynth(t)
	// Field binding: hooks.onFire was bound to (*S).acquire, so Fire
	// gets a dynamic edge to it.
	fire := node(t, g, "hooks.Fire")
	if !callees(fire)["S.acquire"] {
		t.Errorf("hooks.Fire should resolve onFire to S.acquire; got %v", callees(fire))
	}
	// Parameter binding: apply's f was bound to the literal passed by
	// Indirect, which in turn calls acquire.
	if _, ok := g.TransitiveAcquires(node(t, g, "Indirect"))[classOf(t, g, "S", "mu")]; !ok {
		t.Errorf("Indirect should transitively acquire S.mu through apply(f)")
	}
}

func TestLockEventSummaries(t *testing.T) {
	_, g := buildSynth(t)
	acq := node(t, g, "S.acquire")
	if len(acq.Locks) != 2 || acq.Locks[0].Release || !acq.Locks[1].Release {
		t.Fatalf("S.acquire lock events = %+v, want Lock then Unlock", acq.Locks)
	}
	def := node(t, g, "S.deferred")
	if len(def.Locks) != 2 || !def.Locks[1].Defer {
		t.Fatalf("S.deferred should record a deferred Unlock; got %+v", def.Locks)
	}
	rd := node(t, g, "readPkg")
	if len(rd.Locks) != 2 || !rd.Locks[0].Read || rd.Locks[0].Class.Type != "" || rd.Locks[0].Class.Field != "pkgMu" {
		t.Fatalf("readPkg should record RLock on package-level pkgMu; got %+v", rd.Locks)
	}
}

func TestGuardedClassesSeed(t *testing.T) {
	pass, g := buildSynth(t)
	_ = g
	guarded := callgraph.GuardedClasses(pass)
	var found bool
	for cls := range guarded {
		if cls.Matches("fixture/synth", "S", "mu") {
			found = true
		}
	}
	if !found {
		t.Errorf("guarded-by annotation on S.state should seed class S.mu; got %v", guarded)
	}
}

func classOf(t *testing.T, g *callgraph.Graph, typeName, field string) callgraph.Class {
	t.Helper()
	for _, n := range g.Nodes {
		for _, ev := range n.Locks {
			if ev.Class.Type == typeName && ev.Class.Field == field {
				return ev.Class
			}
		}
	}
	t.Fatalf("no lock event on %s.%s found", typeName, field)
	return callgraph.Class{}
}
