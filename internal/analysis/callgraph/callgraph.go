// Package callgraph builds a conservative per-package call graph plus a
// per-function lock-acquisition summary, the shared substrate for the
// interprocedural cosimvet analyzers (lockorder, shardfx, detsafe).
//
// The graph is deliberately over-approximate where Go's dynamism makes
// precise resolution impossible without whole-program analysis:
//
//   - Direct calls to package-local functions and methods resolve to
//     exactly one edge.
//   - Interface method calls resolve to every package-local method with
//     the same name (any of them could be the dynamic target).
//   - Calls through function-typed variables, fields and parameters
//     resolve to every function value observed flowing into that
//     variable anywhere in the package (assignments, composite-literal
//     fields, and arguments at package-local call sites).
//
// Over-approximation is the safe direction for the checks built on top:
// a spurious edge can at worst produce a suppressible false positive,
// while a missing edge would silently hide a real lock-order inversion
// or a sharded-round effect leak. Calls that cannot be resolved at all
// (cross-package calls, function values received from outside the
// package) produce no edge; the analyzers that care layer their own
// cross-package approximations on top (see lockorder's class-owner
// method rule).
//
// The lock summary records, per function body, the ordered Lock/RLock
// and Unlock/RUnlock events on named mutex classes — sync.Mutex or
// sync.RWMutex fields of named structs, or package-level mutex
// variables — in source order, plus whether a release is deferred.
// Mutex classes that appear in `guarded by <mu>` field annotations (the
// ones lockedfield already parses) are surfaced via GuardedClasses so
// clients can seed their tracked-class sets from the same source of
// truth the rest of the suite uses.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"cosim/internal/analysis"
)

// Class names one mutex: the defining package, the owning named type
// (empty for package-level variables), and the field or variable name.
type Class struct {
	Pkg   string // full package path of the defining package
	Type  string // owning named type, "" for package-level vars
	Field string // mutex field or variable name
}

// String renders the class as "pkg.Type.Field" using the last element
// of the package path, e.g. "dev.Window.mu".
func (c Class) String() string {
	pkg := c.Pkg
	if i := strings.LastIndex(pkg, "/"); i >= 0 {
		pkg = pkg[i+1:]
	}
	if c.Type == "" {
		return pkg + "." + c.Field
	}
	return pkg + "." + c.Type + "." + c.Field
}

// Matches reports whether the class is the one named by (pkgSuffix,
// typeName, field). The package is matched by path suffix so specs
// written against repo packages also match analyzer test fixtures.
func (c Class) Matches(pkgSuffix, typeName, field string) bool {
	return c.Type == typeName && c.Field == field && strings.HasSuffix(c.Pkg, pkgSuffix)
}

// LockEvent is one Lock/Unlock call in a function body, in source order.
type LockEvent struct {
	Class   Class
	Pos     token.Pos
	Release bool // Unlock/RUnlock rather than Lock/RLock
	Read    bool // RLock/RUnlock
	Defer   bool // appears in a defer statement (releases held to return)
}

// Edge is one call site resolved to a package-local callee.
type Edge struct {
	Callee  *Node
	Call    *ast.CallExpr
	Pos     token.Pos
	Dynamic bool // resolved by over-approximation, not a direct call
}

// Node is one function body: a declared function or method, or a
// function literal.
type Node struct {
	Fn   *types.Func   // nil for function literals
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	Body *ast.BlockStmt
	Name string // "Type.Method", "Func", or "Parent.func@line"

	Calls []Edge      // outgoing call edges, in source order
	Locks []LockEvent // lock events directly in this body, in source order
}

// Graph is the package-wide call graph.
type Graph struct {
	Nodes []*Node

	pass  *analysis.Pass
	byFn  map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node
	// bindings maps a function-typed variable/field/parameter to every
	// function value observed flowing into it within the package.
	bindings map[types.Object][]*Node
	// byMethodName maps a method name to every package-local method
	// bearing it, the dynamic-dispatch over-approximation.
	byMethodName map[string][]*Node
}

// Lookup returns the node for a declared function or method, or nil.
func (g *Graph) Lookup(fn *types.Func) *Node { return g.byFn[fn] }

// NodeFor returns the node for a function declaration, or nil.
func (g *Graph) NodeFor(decl *ast.FuncDecl) *Node {
	if decl == nil {
		return nil
	}
	if obj, ok := g.pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
		return g.byFn[obj]
	}
	return nil
}

// Build constructs the call graph and lock summaries for one package.
func Build(pass *analysis.Pass) *Graph {
	g := &Graph{
		pass:         pass,
		byFn:         make(map[*types.Func]*Node),
		byLit:        make(map[*ast.FuncLit]*Node),
		bindings:     make(map[types.Object][]*Node),
		byMethodName: make(map[string][]*Node),
	}
	g.collectNodes()
	g.collectBindings()
	for _, n := range g.Nodes {
		g.resolveCalls(n)
		g.collectLocks(n)
	}
	return g
}

// collectNodes creates a node per function declaration and per function
// literal. Literal nodes are named after their enclosing declaration.
func (g *Graph) collectNodes() {
	for _, f := range g.pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := g.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			name := fd.Name.Name
			if recv := analysis.ReceiverTypeName(fd); recv != "" {
				name = recv + "." + name
			}
			n := &Node{Fn: fn, Decl: fd, Body: fd.Body, Name: name}
			g.Nodes = append(g.Nodes, n)
			if fn != nil {
				g.byFn[fn] = n
				if fd.Recv != nil {
					g.byMethodName[fd.Name.Name] = append(g.byMethodName[fd.Name.Name], n)
				}
			}
			parent := name
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				if lit, ok := x.(*ast.FuncLit); ok {
					ln := &Node{
						Lit:  lit,
						Body: lit.Body,
						Name: parent + ".func@" + itoa(g.pass.Fset.Position(lit.Pos()).Line),
					}
					g.Nodes = append(g.Nodes, ln)
					g.byLit[lit] = ln
				}
				return true
			})
		}
	}
}

// funcValue resolves an expression used as a value to the node of the
// function it denotes: a reference to a declared function, a method
// value, or a function literal. Returns nil for anything else.
func (g *Graph) funcValue(e ast.Expr) *Node {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return g.byLit[e]
	case *ast.Ident:
		if fn, ok := g.pass.TypesInfo.Uses[e].(*types.Func); ok {
			return g.byFn[fn]
		}
	case *ast.SelectorExpr:
		if fn, ok := g.pass.TypesInfo.Uses[e.Sel].(*types.Func); ok {
			return g.byFn[fn]
		}
	}
	return nil
}

// bindTarget resolves an expression used as an assignment target (or a
// composite-literal key) to the variable object it denotes.
func (g *Graph) bindTarget(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := g.pass.TypesInfo.Defs[e]; obj != nil {
			return obj
		}
		return g.pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return g.pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// collectBindings records every function value observed flowing into a
// variable, struct field, or package-local call parameter.
func (g *Graph) collectBindings() {
	bind := func(target types.Object, val ast.Expr) {
		if target == nil {
			return
		}
		if n := g.funcValue(val); n != nil {
			g.bindings[target] = append(g.bindings[target], n)
		}
	}
	for _, f := range g.pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						bind(g.bindTarget(x.Lhs[i]), x.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for i := range x.Names {
						bind(g.pass.TypesInfo.Defs[x.Names[i]], x.Values[i])
					}
				}
			case *ast.CompositeLit:
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if key, ok := kv.Key.(*ast.Ident); ok {
							bind(g.pass.TypesInfo.Uses[key], kv.Value)
						}
					}
				}
			case *ast.CallExpr:
				// A function value passed to a package-local function
				// binds to the corresponding parameter.
				callee := g.calleeFunc(x)
				if callee == nil {
					return true
				}
				sig, ok := callee.Type().(*types.Signature)
				if !ok {
					return true
				}
				for i, arg := range x.Args {
					if i >= sig.Params().Len() {
						break // variadic tail; parameter identity is the slice
					}
					bind(sig.Params().At(i), arg)
				}
			}
			return true
		})
	}
}

// calleeFunc returns the *types.Func a call expression statically
// resolves to, or nil for dynamic calls.
func (g *Graph) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := g.pass.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := g.pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// resolveCalls walks one body (not descending into nested function
// literals, which are their own nodes) and records outgoing edges.
func (g *Graph) resolveCalls(n *Node) {
	walkBody(n.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		g.resolveCall(n, call)
		return true
	})
}

func (g *Graph) resolveCall(n *Node, call *ast.CallExpr) {
	add := func(callee *Node, dynamic bool) {
		if callee != nil && callee != n {
			n.Calls = append(n.Calls, Edge{Callee: callee, Call: call, Pos: call.Pos(), Dynamic: dynamic})
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		add(g.byLit[fun], false)
	case *ast.Ident:
		switch obj := g.pass.TypesInfo.Uses[fun].(type) {
		case *types.Func:
			add(g.byFn[obj], false)
		case *types.Var:
			for _, cand := range g.bindings[obj] {
				add(cand, true)
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := g.pass.TypesInfo.Selections[fun]; ok {
			switch sel.Kind() {
			case types.FieldVal:
				// Call through a function-typed field.
				if v, ok := sel.Obj().(*types.Var); ok {
					for _, cand := range g.bindings[v] {
						add(cand, true)
					}
				}
			case types.MethodVal, types.MethodExpr:
				fn, _ := sel.Obj().(*types.Func)
				if fn == nil {
					return
				}
				if node := g.byFn[fn]; node != nil {
					add(node, false)
					return
				}
				// Interface method declared in this package: any
				// package-local method with the name could be the
				// dynamic target.
				if types.IsInterface(sel.Recv()) && fn.Pkg() == g.pass.Pkg {
					for _, cand := range g.byMethodName[fn.Name()] {
						add(cand, true)
					}
				}
			}
			return
		}
		// Package-qualified call (pkg.F) or unqualified selector.
		if fn, ok := g.pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			add(g.byFn[fn], false)
		} else if v, ok := g.pass.TypesInfo.Uses[fun.Sel].(*types.Var); ok {
			for _, cand := range g.bindings[v] {
				add(cand, true)
			}
		}
	}
}

// walkBody traverses stmts without descending into nested function
// literals (their bodies belong to their own nodes).
func walkBody(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		return fn(x)
	})
}

// collectLocks records the ordered lock events of one body.
func (g *Graph) collectLocks(n *Node) {
	inDefer := make(map[*ast.CallExpr]bool)
	walkBody(n.Body, func(x ast.Node) bool {
		if d, ok := x.(*ast.DeferStmt); ok {
			inDefer[d.Call] = true
		}
		return true
	})
	walkBody(n.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		var release, read bool
		switch sel.Sel.Name {
		case "Lock":
		case "RLock":
			read = true
		case "Unlock":
			release = true
		case "RUnlock":
			release, read = true, true
		default:
			return true
		}
		// The method must belong to sync.Mutex or sync.RWMutex.
		fn, ok := g.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		cls, ok := g.mutexClass(sel.X)
		if !ok {
			return true
		}
		n.Locks = append(n.Locks, LockEvent{
			Class:   cls,
			Pos:     call.Pos(),
			Release: release,
			Read:    read,
			Defer:   inDefer[call],
		})
		return true
	})
}

// mutexClass names the mutex behind a Lock/Unlock receiver expression:
// a field selector (d.mu, w.state.mu → owning named type + field) or a
// package-level variable. Local mutex variables have no global identity
// and return ok=false.
func (g *Graph) mutexClass(e ast.Expr) (Class, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		sel, ok := g.pass.TypesInfo.Selections[e]
		if !ok || sel.Kind() != types.FieldVal {
			// Possibly a package-qualified variable (pkg.muVar).
			if v, ok := g.pass.TypesInfo.Uses[e.Sel].(*types.Var); ok && v.Pkg() != nil && isPackageLevel(v) {
				return Class{Pkg: v.Pkg().Path(), Field: v.Name()}, true
			}
			return Class{}, false
		}
		field, ok := sel.Obj().(*types.Var)
		if !ok || field.Pkg() == nil {
			return Class{}, false
		}
		owner := namedTypeName(sel.Recv())
		if owner == "" {
			return Class{}, false
		}
		return Class{Pkg: field.Pkg().Path(), Type: owner, Field: field.Name()}, true
	case *ast.Ident:
		if v, ok := g.pass.TypesInfo.Uses[e].(*types.Var); ok && v.Pkg() != nil && isPackageLevel(v) {
			return Class{Pkg: v.Pkg().Path(), Field: v.Name()}, true
		}
	}
	return Class{}, false
}

func isPackageLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent() == v.Pkg().Scope()
}

func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// TransitiveAcquires returns every lock class acquired by n or by any
// node reachable from it through call edges, mapped to a shortest call
// path (n first, the directly-acquiring node last). Release events are
// ignored: for ordering checks the acquisition alone is what matters.
func (g *Graph) TransitiveAcquires(n *Node) map[Class][]*Node {
	out := make(map[Class][]*Node)
	type item struct {
		node *Node
		path []*Node
	}
	visited := map[*Node]bool{n: true}
	queue := []item{{n, []*Node{n}}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, ev := range it.node.Locks {
			if ev.Release {
				continue
			}
			if _, seen := out[ev.Class]; !seen {
				out[ev.Class] = it.path
			}
		}
		for _, e := range it.node.Calls {
			if !visited[e.Callee] {
				visited[e.Callee] = true
				path := append(append([]*Node(nil), it.path...), e.Callee)
				queue = append(queue, item{e.Callee, path})
			}
		}
	}
	return out
}

var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// GuardedClasses returns the mutex classes named by `guarded by <mu>`
// struct-field annotations in the package — the same annotations
// lockedfield enforces — so interprocedural clients can seed their
// tracked-class sets from them.
func GuardedClasses(pass *analysis.Pass) map[Class]bool {
	out := make(map[Class]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			ts, ok := x.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			typeName := ts.Name.Name
			// Mutex-typed fields of this struct, by name.
			mutexFields := make(map[string]bool)
			for _, fld := range st.Fields.List {
				if !isMutexType(pass, fld.Type) {
					continue
				}
				for _, name := range fld.Names {
					mutexFields[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				for _, cg := range []*ast.CommentGroup{fld.Comment, fld.Doc} {
					if cg == nil {
						continue
					}
					m := guardRe.FindStringSubmatch(cg.Text())
					if m == nil {
						continue
					}
					guard := m[1]
					if i := strings.LastIndex(guard, "."); i >= 0 {
						guard = guard[i+1:]
					}
					if mutexFields[guard] && pass.Pkg != nil {
						out[Class{Pkg: pass.Pkg.Path(), Type: typeName, Field: guard}] = true
					}
				}
			}
			return true
		})
	}
	return out
}

func isMutexType(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
