// Package lockedfield is a lightweight guarded-field checker. A struct
// field annotated with a comment of the form
//
//	inbox []Message // guarded by mu
//	rdErr error     // guarded by d.mu
//
// may only be accessed in functions that visibly hold the named mutex.
// "Visibly hold" is deliberately syntactic — this is a tripwire, not a
// proof: the enclosing function (or method) must either
//
//   - contain a call to <path>.Lock() or <path>.RLock() whose final
//     receiver component matches the guard name ("d.mu.Lock()" and
//     "mu.Lock()" both satisfy a "guarded by mu" annotation), or
//   - declare by convention that its caller holds the lock, with a
//     name ending in "Locked".
//
// Constructors (New*/new*) are exempt: the object under construction is
// not yet shared. The checker does not track lock/unlock ordering or
// branches; it catches the common real bug — a new method reading a
// guarded field with no locking at all — and stays quiet otherwise.
package lockedfield

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"cosim/internal/analysis"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "lockedfield",
	Doc:  "flags access to fields annotated `// guarded by <mu>` in functions that do not visibly hold <mu>",
	Run:  run,
}

var guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

func run(pass *analysis.Pass) (any, error) {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil, nil
	}
	for _, fd := range analysis.EnclosingFuncs(pass.Files) {
		name := fd.Name.Name
		if strings.HasPrefix(name, "New") || strings.HasPrefix(name, "new") {
			continue
		}
		callerHolds := strings.HasSuffix(name, "Locked")
		// One pass over the whole body (closures included): collect the
		// mutexes this function locks anywhere. Goroutine literals
		// spawned inside (e.g. a reader loop) lock for themselves, and
		// their accesses are checked against the same set.
		held := lockedMutexes(fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			fieldVar, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			guard, guarded := guards[fieldVar]
			if !guarded || callerHolds || held[guard] {
				return true
			}
			pass.Reportf(sel.Sel.Pos(), "field %s (guarded by %s) accessed in %s, which never locks %s", fieldVar.Name(), guard, name, guard)
			return true
		})
	}
	return nil, nil
}

// collectGuards maps annotated field objects to their guard's final
// name component ("d.mu" -> "mu").
func collectGuards(pass *analysis.Pass) map[*types.Var]string {
	guards := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardFrom(field.Comment) // trailing comment
				if guard == "" {
					guard = guardFrom(field.Doc) // doc comment above
				}
				if guard == "" {
					continue
				}
				for _, id := range field.Names {
					if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
						guards[v] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

func guardFrom(cg *ast.CommentGroup) string {
	if cg == nil {
		return ""
	}
	m := guardRe.FindStringSubmatch(cg.Text())
	if m == nil {
		return ""
	}
	path := m[1]
	if i := strings.LastIndexByte(path, '.'); i >= 0 {
		path = path[i+1:]
	}
	return path
}

// lockedMutexes returns the final name components of every receiver of
// a .Lock()/.RLock() call in body.
func lockedMutexes(body *ast.BlockStmt) map[string]bool {
	held := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		switch x := sel.X.(type) {
		case *ast.Ident:
			held[x.Name] = true
		case *ast.SelectorExpr:
			held[x.Sel.Name] = true
		}
		return true
	})
	return held
}
