package a

import "sync"

type inbox struct {
	mu    sync.Mutex
	msgs  []int  // guarded by mu
	count uint64 // guarded by mu
	open  bool   // unguarded: no annotation, never flagged
}

// push locks: fine.
func (b *inbox) push(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.msgs = append(b.msgs, v)
	b.count++
}

// peek reads a guarded field with no locking at all.
func (b *inbox) peek() int {
	if len(b.msgs) == 0 { // want `field msgs \(guarded by mu\) accessed in peek`
		return 0
	}
	return b.msgs[0] // want `field msgs \(guarded by mu\) accessed in peek`
}

// size follows the caller-holds-lock naming convention.
func (b *inbox) sizeLocked() int { return len(b.msgs) }

// flag touches only the unguarded field: fine without the lock.
func (b *inbox) flag() bool { return b.open }

// newInbox is a constructor: the object is not shared yet.
func newInbox() *inbox {
	b := &inbox{}
	b.msgs = make([]int, 0, 8)
	return b
}

// reader is the cross-object case: the guard lives on another struct
// ("guarded by d.mu" resolves to the final component "mu").
type owner struct {
	mu   sync.Mutex
	w    worker
	wErr error // guarded by d.mu
}

type worker struct{ d *owner }

// record locks through the owner pointer: fine.
func (w *worker) record(d *owner, err error) {
	d.mu.Lock()
	d.wErr = err
	d.mu.Unlock()
}

// steal reads the guarded field without the owner's mutex.
func (w *worker) steal(d *owner) error {
	return d.wErr // want `field wErr \(guarded by mu\) accessed in steal`
}

// spawn locks inside a goroutine literal: the lightweight checker
// accepts a lock anywhere in the enclosing body.
func (d *owner) spawn() {
	go func() {
		d.mu.Lock()
		d.wErr = nil
		d.mu.Unlock()
	}()
}

// suppressed: the documented escape hatch.
func (d *owner) suppressed() error {
	//cosimvet:ignore lockedfield fixture exercises the suppression directive
	return d.wErr
}
