package lockedfield_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/lockedfield"
)

func TestLockedfield(t *testing.T) {
	analysistest.Run(t, lockedfield.Analyzer, "testdata/src/a", "fixture/a")
}
