// Package timesafe flags raw wrap-prone arithmetic on sim.Time outside
// internal/sim. sim.Time is an unsigned picosecond count: `+` and `-`
// wrap silently on overflow and `<`/`>` misorder wrapped values — the
// PR 1 targetTime bug class. Everything outside the sim package must go
// through the saturating helpers (Time.Add, Time.Sub, Time.AddCycles,
// Time.Before/After/AtOrAfter) instead. Multiplication and division are
// permitted: they are how durations are scaled ("3 * sim.US") and
// averaged, and the helpers build on them.
package timesafe

import (
	"go/ast"
	"go/token"
	"strings"

	"cosim/internal/analysis"
)

// Analyzer implements the rule.
var Analyzer = &analysis.Analyzer{
	Name: "timesafe",
	Doc:  "flags raw +/-/ordering arithmetic on sim.Time outside internal/sim; use the wraparound-safe Time helpers",
	Run:  run,
}

// helper names the replacement for each banned operator.
var helper = map[token.Token]string{
	token.ADD:        "Add",
	token.SUB:        "Sub",
	token.LSS:        "Before",
	token.GTR:        "After",
	token.LEQ:        "Before/AtOrAfter",
	token.GEQ:        "AtOrAfter",
	token.ADD_ASSIGN: "Add",
	token.SUB_ASSIGN: "Sub",
	token.INC:        "Add",
	token.DEC:        "Sub",
}

func run(pass *analysis.Pass) (any, error) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/sim") {
		return nil, nil // the helpers themselves live here
	}
	isTime := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && analysis.NamedType(tv.Type, "internal/sim", "Time")
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				h, banned := helper[n.Op]
				if !banned {
					return true
				}
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Value != nil {
					return true // constant-folded at compile time; cannot wrap at run time
				}
				if cmpConst(pass, n) {
					return true
				}
				if isTime(n.X) || isTime(n.Y) {
					pass.Reportf(n.OpPos, "raw %q on sim.Time wraps on overflow; use sim.Time.%s", n.Op.String(), h)
				}
			case *ast.AssignStmt:
				h, banned := helper[n.Tok]
				if banned && len(n.Lhs) == 1 && isTime(n.Lhs[0]) {
					pass.Reportf(n.TokPos, "raw %q on sim.Time wraps on overflow; use sim.Time.%s", n.Tok.String(), h)
				}
			case *ast.IncDecStmt:
				if isTime(n.X) {
					pass.Reportf(n.TokPos, "raw %q on sim.Time wraps on overflow; use sim.Time.%s", n.Tok.String(), helper[n.Tok])
				}
			}
			return true
		})
	}
	return nil, nil
}

// cmpConst reports whether n is an ordering comparison against a
// compile-time constant operand. Comparing a Time against a constant
// bound ("t < sim.MaxTime", "delay > 0") cannot be confused by run-time
// wraparound of the other operand, so it stays legal.
func cmpConst(pass *analysis.Pass, n *ast.BinaryExpr) bool {
	switch n.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
	default:
		return false
	}
	isConst := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[e]
		return ok && tv.Value != nil
	}
	return isConst(n.X) || isConst(n.Y)
}
