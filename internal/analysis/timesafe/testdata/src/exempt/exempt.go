// Package simx stands in for internal/sim itself: loaded under an
// import path ending in "internal/sim", raw Time arithmetic is the
// implementation of the helpers and must not be flagged.
package simx

import "cosim/internal/sim"

func rawImpl(t, d sim.Time) sim.Time {
	if t+d < t {
		return sim.MaxTime
	}
	return t + d
}
