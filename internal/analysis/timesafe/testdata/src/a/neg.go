package a

import "cosim/internal/sim"

// Constant expressions fold at compile time and cannot wrap at run time.
const window = 2*sim.MS + 500*sim.US

// scale: multiplication and division are how durations are built and
// averaged; the saturating helpers compose on top of them.
func scale(n uint64, period sim.Time) sim.Time {
	return sim.Time(n) * period
}

func mean(total sim.Time, n uint64) sim.Time {
	if n == 0 {
		return 0
	}
	return total / sim.Time(n)
}

// helpers: the blessed API.
func helpers(t, d, u sim.Time) bool {
	t = t.Add(d)
	t = t.Sub(d)
	t = t.AddCycles(8, d)
	return t.Before(u) || t.After(u) || t.AtOrAfter(u)
}

// equality cannot be confused by wraparound.
func equal(t, u sim.Time) bool { return t == u || t != u }

// ordering against a compile-time constant bound is legal.
func bounds(t sim.Time) bool {
	return t > 0 && t < sim.MaxTime
}

// arithmetic on the underlying integer type is out of scope.
func raw(t sim.Time) uint64 { return uint64(t) + 1 }

// suppressed: the documented escape hatch.
func suppressed(t, d sim.Time) sim.Time {
	//cosimvet:ignore timesafe fixture exercises the suppression directive
	return t + d
}
