package a

import "cosim/internal/sim"

func add(t, d sim.Time) sim.Time {
	return t + d // want `raw "\+" on sim.Time`
}

func sub(t, d sim.Time) sim.Time {
	return t - d // want `raw "-" on sim.Time`
}

func mixedConst(t sim.Time) sim.Time {
	return t + 5*sim.NS // want `raw "\+" on sim.Time`
}

func compare(t, u sim.Time) bool {
	if t < u { // want `use sim.Time.Before`
		return true
	}
	if t > u { // want `use sim.Time.After`
		return true
	}
	if t <= u { // want `use sim.Time.Before/AtOrAfter`
		return true
	}
	return t >= u // want `use sim.Time.AtOrAfter`
}

func accumulate(ts []sim.Time) sim.Time {
	var total sim.Time
	for _, t := range ts {
		total += t // want `raw "\+=" on sim.Time`
	}
	total -= ts[0] // want `raw "-=" on sim.Time`
	total++        // want `raw "\+\+" on sim.Time`
	return total
}
