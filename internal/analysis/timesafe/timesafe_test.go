package timesafe_test

import (
	"testing"

	"cosim/internal/analysis/analysistest"
	"cosim/internal/analysis/timesafe"
)

func TestTimesafe(t *testing.T) {
	analysistest.Run(t, timesafe.Analyzer, "testdata/src/a", "fixture/a")
}

// Inside internal/sim the raw arithmetic IS the helper implementation.
func TestTimesafeExemptInsideSim(t *testing.T) {
	analysistest.Run(t, timesafe.Analyzer, "testdata/src/exempt", "fixture/internal/sim")
}
