// Package dev provides memory-mapped device models for the FV32
// platform: an interrupt controller (PIC), a cycle timer, a debug
// console, a mailbox for inter-processor communication, and CosimDev —
// the ISS-side bridge device through which the Driver-Kernel
// co-simulation scheme exchanges messages with the SystemC kernel.
package dev

import (
	"fmt"
	"sync"
)

// Interrupt line assignments on the platform PIC.
const (
	TimerLine   = 0
	CosimLine   = 1
	MailboxLine = 2
)

// IRQSink abstracts the CPU interrupt pin the PIC drives
// (satisfied by *iss.CPU).
type IRQSink interface {
	RaiseIRQ(n int)
	ClearIRQ(n int)
}

// PIC register offsets.
const (
	PICPending = 0x00 // RO: pending line mask
	PICEnable  = 0x04 // RW: per-line enable mask
	PICAck     = 0x08 // WO: write mask to clear pending lines
	PICRaise   = 0x0c // WO: software-assert lines (tests, IPIs)
	PICSize    = 0x10
)

// PIC is a simple interrupt controller aggregating up to 32 input lines
// into a single CPU interrupt pin. Device inputs are level-sensitive
// (Assert holds the line until Deassert); software can additionally
// latch lines through PICRaise. PICAck clears only the latch — a level
// input stays pending until its device deasserts, so interrupts cannot
// be lost by an early acknowledge. Assert may be called from any
// goroutine — this is how the SystemC side injects interrupts in the
// Driver-Kernel scheme.
type PIC struct {
	mu      sync.Mutex
	levels  uint32 // device-driven level inputs
	latch   uint32 // software-raised latched bits
	enable  uint32
	sink    IRQSink
	cpuLine int
}

// NewPIC creates a PIC driving the sink's given CPU interrupt line. All
// input lines start enabled.
func NewPIC(sink IRQSink, cpuLine int) *PIC {
	return &PIC{enable: 0xffffffff, sink: sink, cpuLine: cpuLine}
}

// Name implements iss.Device.
func (p *PIC) Name() string { return "pic" }

// Size implements iss.Device.
func (p *PIC) Size() uint32 { return PICSize }

// Assert raises input line n (level). Safe from any goroutine.
func (p *PIC) Assert(n int) {
	p.mu.Lock()
	p.levels |= 1 << uint(n)
	p.refresh()
	p.mu.Unlock()
}

// Deassert lowers input line n.
func (p *PIC) Deassert(n int) {
	p.mu.Lock()
	p.levels &^= 1 << uint(n)
	p.refresh()
	p.mu.Unlock()
}

// Pending returns the current pending mask (levels plus latch).
func (p *PIC) Pending() uint32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.levels | p.latch
}

// refresh drives the CPU pin; callers hold the mutex.
func (p *PIC) refresh() {
	if (p.levels|p.latch)&p.enable != 0 {
		p.sink.RaiseIRQ(p.cpuLine)
	} else {
		p.sink.ClearIRQ(p.cpuLine)
	}
}

// Read implements iss.Device.
func (p *PIC) Read(off uint32, size int) (uint32, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch off {
	case PICPending:
		return p.levels | p.latch, nil
	case PICEnable:
		return p.enable, nil
	default:
		return 0, fmt.Errorf("pic: read of write-only/unknown register %#x", off)
	}
}

// Write implements iss.Device.
func (p *PIC) Write(off uint32, size int, v uint32) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch off {
	case PICEnable:
		p.enable = v
	case PICAck:
		p.latch &^= v
	case PICRaise:
		p.latch |= v
	default:
		return fmt.Errorf("pic: write to read-only/unknown register %#x", off)
	}
	p.refresh()
	return nil
}
