package dev

import (
	"fmt"
	"io"
	"sync"
)

// CosimDev register offsets.
const (
	CosimTxByte  = 0x00 // WO: append one byte to the outgoing message
	CosimTxWord  = 0x04 // WO: append 4 bytes (little-endian)
	CosimTxFlush = 0x08 // WO: transmit the buffered message on the data socket
	CosimRxByte  = 0x0c // RO: pop one received byte
	CosimRxWord  = 0x10 // RO: pop 4 received bytes (little-endian)
	CosimRxAvail = 0x14 // RO: received bytes available
	CosimIntNum  = 0x18 // RO: oldest pending co-simulation interrupt id, NoInt if none
	CosimIntAck  = 0x1c // WO: acknowledge the oldest pending interrupt
	CosimRxIEn   = 0x20 // RW: bit0 = raise the PIC line while RX data is available
	CosimDevSize = 0x24
)

// NoInt is returned by CosimIntNum when no interrupt is pending.
const NoInt = 0xffffffff

// CosimDev is the ISS-side end of the Driver-Kernel co-simulation
// transport. The RTOS device driver composes the paper's READ/WRITE
// messages and pushes them through this device onto the data socket
// (port 4444 in the paper); interrupt notifications arriving on the
// interrupt socket (port 4445) are queued here and asserted on the PIC.
//
// The device plays the role of the eCos synthetic target's host I/O
// layer: the guest performs plain MMIO, the host side speaks sockets.
// The device's PIC line is level-driven: it is held high while queued
// interrupt ids are pending, or — when the guest enables CosimRxIEn —
// while receive data is available. The RX-available level closes the
// race between the interrupt socket and the data socket: a wakeup can
// never be lost between "check availability" and "wait for interrupt".
type CosimDev struct {
	mu      sync.Mutex
	tx      []byte
	rx      []byte
	ints    []uint32
	rxIntEn bool

	data io.Writer
	pic  *PIC
	line int
	name string // "cosim" or "cosim<n>" for CPU n of a multi-processor SoC

	txMessages uint64
	rxBytes    uint64
}

// NewCosimDev creates the bridge device asserting the given PIC line.
func NewCosimDev(pic *PIC, line int) *CosimDev {
	return &CosimDev{pic: pic, line: line, name: "cosim"}
}

// SetInstance labels the device with its CPU index in a multi-processor
// SoC so its errors name the guest they came from; instance 0 keeps the
// plain single-CPU name.
func (d *CosimDev) SetInstance(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n == 0 {
		d.name = "cosim"
	} else {
		d.name = fmt.Sprintf("cosim%d", n)
	}
}

// Name implements iss.Device.
func (d *CosimDev) Name() string { return d.name }

// Size implements iss.Device.
func (d *CosimDev) Size() uint32 { return CosimDevSize }

// refresh drives the PIC line from the device state; callers hold d.mu.
func (d *CosimDev) refresh() {
	if len(d.ints) > 0 || (d.rxIntEn && len(d.rx) > 0) {
		d.pic.Assert(d.line)
	} else {
		d.pic.Deassert(d.line)
	}
}

// ConnectData attaches the data socket. Writes flushed by the guest go
// to w; bytes arriving on r become readable through CosimRxByte. The
// read pump runs until r is exhausted.
func (d *CosimDev) ConnectData(r io.Reader, w io.Writer) {
	d.mu.Lock()
	d.data = w
	d.mu.Unlock()
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				d.mu.Lock()
				d.rx = append(d.rx, buf[:n]...)
				d.rxBytes += uint64(n)
				d.refresh()
				d.mu.Unlock()
			}
			if err != nil {
				return
			}
		}
	}()
}

// ConnectIRQ attaches the interrupt socket: every 4-byte little-endian
// interrupt id read from r is queued and asserted on the PIC line.
func (d *CosimDev) ConnectIRQ(r io.Reader) {
	go func() {
		var b [4]byte
		for {
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return
			}
			id := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
			d.mu.Lock()
			d.ints = append(d.ints, id)
			d.refresh()
			d.mu.Unlock()
		}
	}()
}

// InjectRx appends bytes to the receive buffer directly (in-process
// transports and tests).
func (d *CosimDev) InjectRx(b []byte) {
	d.mu.Lock()
	d.rx = append(d.rx, b...)
	d.rxBytes += uint64(len(b))
	d.refresh()
	d.mu.Unlock()
}

// InjectIRQ queues a co-simulation interrupt directly.
func (d *CosimDev) InjectIRQ(id uint32) {
	d.mu.Lock()
	d.ints = append(d.ints, id)
	d.refresh()
	d.mu.Unlock()
}

// TxMessages returns how many messages the guest has flushed.
func (d *CosimDev) TxMessages() uint64 { return d.txMessages }

// Read implements iss.Device.
func (d *CosimDev) Read(off uint32, size int) (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch off {
	case CosimRxByte:
		if len(d.rx) == 0 {
			return 0, nil
		}
		v := uint32(d.rx[0])
		d.rx = d.rx[1:]
		d.refresh()
		return v, nil
	case CosimRxWord:
		var v uint32
		for i := 0; i < 4 && len(d.rx) > 0; i++ {
			v |= uint32(d.rx[0]) << (8 * i)
			d.rx = d.rx[1:]
		}
		d.refresh()
		return v, nil
	case CosimRxAvail:
		return uint32(len(d.rx)), nil
	case CosimIntNum:
		if len(d.ints) == 0 {
			return NoInt, nil
		}
		return d.ints[0], nil
	case CosimRxIEn:
		if d.rxIntEn {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("%s: read of unknown register %#x", d.name, off)
	}
}

// Write implements iss.Device.
func (d *CosimDev) Write(off uint32, size int, v uint32) error {
	d.mu.Lock()
	name := d.name // the flush and default paths error after unlocking
	switch off {
	case CosimTxByte:
		d.tx = append(d.tx, byte(v))
		d.mu.Unlock()
		return nil
	case CosimTxWord:
		d.tx = append(d.tx, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		d.mu.Unlock()
		return nil
	case CosimTxFlush:
		out := d.tx
		d.tx = nil
		w := d.data
		d.txMessages++
		d.mu.Unlock()
		if w == nil {
			return fmt.Errorf("%s: flush with no data connection", name)
		}
		_, err := w.Write(out)
		return err
	case CosimIntAck:
		if len(d.ints) > 0 {
			d.ints = d.ints[1:]
		}
		d.refresh()
		d.mu.Unlock()
		return nil
	case CosimRxIEn:
		d.rxIntEn = v&1 != 0
		d.refresh()
		d.mu.Unlock()
		return nil
	default:
		d.mu.Unlock()
		return fmt.Errorf("%s: write to unknown register %#x", name, off)
	}
}
