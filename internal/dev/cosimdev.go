package dev

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Driver-Kernel wire values the device must recognise to intercept
// guest frames for DMI windows and to unwrap BATCH envelopes for the
// guest's frame parser. They mirror internal/core's MsgWrite/MsgRead/
// MsgData/MsgBatch — dev sits below core in the import graph (core
// wires platforms to transports), so the constants are restated here,
// exactly as the guest driver assembly restates them.
const (
	cosimMsgWrite = 1
	cosimMsgRead  = 2
	cosimMsgData  = 3
	cosimMsgBatch = 4

	cosimBatchVersion = 1
	cosimMaxFrame     = 1 << 16
	cosimMaxBatch     = 1 << 20
)

// CosimDev register offsets.
const (
	CosimTxByte  = 0x00 // WO: append one byte to the outgoing message
	CosimTxWord  = 0x04 // WO: append 4 bytes (little-endian)
	CosimTxFlush = 0x08 // WO: transmit the buffered message on the data socket
	CosimRxByte  = 0x0c // RO: pop one received byte
	CosimRxWord  = 0x10 // RO: pop 4 received bytes (little-endian)
	CosimRxAvail = 0x14 // RO: received bytes available
	CosimIntNum  = 0x18 // RO: oldest pending co-simulation interrupt id, NoInt if none
	CosimIntAck  = 0x1c // WO: acknowledge the oldest pending interrupt
	CosimRxIEn   = 0x20 // RW: bit0 = raise the PIC line while RX data is available
	CosimDevSize = 0x24
)

// NoInt is returned by CosimIntNum when no interrupt is pending.
const NoInt = 0xffffffff

// CosimDev is the ISS-side end of the Driver-Kernel co-simulation
// transport. The RTOS device driver composes the paper's READ/WRITE
// messages and pushes them through this device onto the data socket
// (port 4444 in the paper); interrupt notifications arriving on the
// interrupt socket (port 4445) are queued here and asserted on the PIC.
//
// The device plays the role of the eCos synthetic target's host I/O
// layer: the guest performs plain MMIO, the host side speaks sockets.
// The device's PIC line is level-driven: it is held high while queued
// interrupt ids are pending, or — when the guest enables CosimRxIEn —
// while receive data is available. The RX-available level closes the
// race between the interrupt socket and the data socket: a wakeup can
// never be lost between "check availability" and "wait for interrupt".
type CosimDev struct {
	mu      sync.Mutex
	tx      []byte
	rx      []byte
	ints    []uint32
	rxIntEn bool

	data io.Writer
	pic  *PIC
	line int
	name string // "cosim" or "cosim<n>" for CPU n of a multi-processor SoC

	// windows holds the kernel-granted DMI windows by port name. A
	// flushed guest frame whose port has a valid window is served
	// locally; everything else goes to the data socket unchanged.
	windows map[string]*Window

	// decodeBatches makes the data-socket read pump frame-aware so it
	// can unwrap kernel BATCH envelopes into the ordinary frames the
	// guest driver's parser expects. Set before ConnectData.
	decodeBatches bool

	txMessages uint64
	rxBytes    uint64
}

// NewCosimDev creates the bridge device asserting the given PIC line.
func NewCosimDev(pic *PIC, line int) *CosimDev {
	return &CosimDev{pic: pic, line: line, name: "cosim"}
}

// SetInstance labels the device with its CPU index in a multi-processor
// SoC so its errors name the guest they came from; instance 0 keeps the
// plain single-CPU name.
func (d *CosimDev) SetInstance(n int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n == 0 {
		d.name = "cosim"
	} else {
		d.name = fmt.Sprintf("cosim%d", n)
	}
}

// Name implements iss.Device.
func (d *CosimDev) Name() string { return d.name }

// Size implements iss.Device.
func (d *CosimDev) Size() uint32 { return CosimDevSize }

// refresh drives the PIC line from the device state; callers hold d.mu.
func (d *CosimDev) refresh() {
	if len(d.ints) > 0 || (d.rxIntEn && len(d.rx) > 0) {
		d.pic.Assert(d.line)
	} else {
		d.pic.Deassert(d.line)
	}
}

// ConnectData attaches the data socket. Writes flushed by the guest go
// to w; bytes arriving on r become readable through CosimRxByte. The
// read pump runs until r is exhausted. Reattaching the data socket is a
// device reconfiguration: every granted DMI window is revoked, so a
// stale grant can never serve reads that belong on the new connection.
func (d *CosimDev) ConnectData(r io.Reader, w io.Writer) {
	d.mu.Lock()
	d.data = w
	revoked := takeWindows(&d.windows)
	frameMode := d.decodeBatches
	d.mu.Unlock()
	for _, win := range revoked {
		win.Revoke()
	}
	if frameMode {
		go d.framePump(r)
		return
	}
	go func() {
		buf := make([]byte, 4096)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				d.InjectRx(buf[:n])
			}
			if err != nil {
				return
			}
		}
	}()
}

// takeWindows empties a window map and returns its windows; callers
// hold the device lock and revoke after releasing it (window locks are
// never taken under d.mu — the guest hit path orders the other way).
func takeWindows(m *map[string]*Window) []*Window {
	if len(*m) == 0 {
		*m = nil
		return nil
	}
	ws := make([]*Window, 0, len(*m))
	for _, w := range *m {
		ws = append(ws, w)
	}
	*m = nil
	return ws
}

// DecodeBatches switches the data-socket read pump into frame mode:
// arriving bytes are reassembled into protocol frames and kernel BATCH
// envelopes are unwrapped, injecting their inner frames verbatim, so
// the guest driver's one-frame-at-a-time parser never sees an
// envelope. Call before ConnectData. The kernel side enables it
// whenever message coalescing is on.
func (d *CosimDev) DecodeBatches() {
	d.mu.Lock()
	d.decodeBatches = true
	d.mu.Unlock()
}

// framePump is the frame-aware data-socket read pump: it reassembles
// size-prefixed frames and flattens BATCH envelopes. A malformed
// stream stops the pump exactly as a read error does — the guest then
// blocks on RX, surfacing the broken link instead of parsing garbage.
func (d *CosimDev) framePump(r io.Reader) {
	br := bufio.NewReaderSize(r, 4096)
	le := binary.LittleEndian
	frame := make([]byte, 0, 4096)
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		size := le.Uint32(hdr[:])
		if size < 4 || size > cosimMaxBatch {
			return
		}
		if cap(frame) < int(size)+4 {
			frame = make([]byte, 0, int(size)+4)
		}
		frame = append(frame[:0], hdr[:]...)
		frame = frame[:4+size]
		if _, err := io.ReadFull(br, frame[4:]); err != nil {
			return
		}
		if le.Uint32(frame[4:8]) != cosimMsgBatch {
			d.InjectRx(frame)
			continue
		}
		if size < 12 || le.Uint32(frame[8:12]) != cosimBatchVersion {
			return
		}
		// The envelope payload is a concatenation of ordinary
		// size-prefixed frames — exactly the byte stream a non-coalescing
		// kernel would have written — so it injects verbatim.
		d.InjectRx(frame[16:])
	}
}

// GrantDMIWindow implements DMIGranter: guest frames naming port are
// served from w when possible. Granting over an existing window
// revokes the old grant.
func (d *CosimDev) GrantDMIWindow(port string, w *Window) {
	d.mu.Lock()
	if d.windows == nil {
		d.windows = make(map[string]*Window)
	}
	old := d.windows[port]
	d.windows[port] = w
	d.mu.Unlock()
	if old != nil {
		old.Revoke()
	}
}

// RevokeDMIWindows implements DMIGranter.
func (d *CosimDev) RevokeDMIWindows() {
	d.mu.Lock()
	revoked := takeWindows(&d.windows)
	d.mu.Unlock()
	for _, w := range revoked {
		w.Revoke()
	}
}

// ConnectIRQ attaches the interrupt socket: every 4-byte little-endian
// interrupt id read from r is queued and asserted on the PIC line.
func (d *CosimDev) ConnectIRQ(r io.Reader) {
	go func() {
		var b [4]byte
		for {
			if _, err := io.ReadFull(r, b[:]); err != nil {
				return
			}
			id := uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
			d.mu.Lock()
			d.ints = append(d.ints, id)
			d.refresh()
			d.mu.Unlock()
		}
	}()
}

// InjectRx appends bytes to the receive buffer directly (in-process
// transports and tests).
func (d *CosimDev) InjectRx(b []byte) {
	d.mu.Lock()
	d.rx = append(d.rx, b...)
	d.rxBytes += uint64(len(b))
	d.refresh()
	d.mu.Unlock()
}

// InjectIRQ queues a co-simulation interrupt directly.
func (d *CosimDev) InjectIRQ(id uint32) {
	d.mu.Lock()
	d.ints = append(d.ints, id)
	d.refresh()
	d.mu.Unlock()
}

// TxMessages returns how many messages the guest has flushed.
func (d *CosimDev) TxMessages() uint64 { return d.txMessages }

// parseGuestFrame decodes a driver-composed READ/WRITE frame so the
// flush path can match it against a granted window. Anything that is
// not a well-formed, exactly-sized READ or WRITE frame returns !ok and
// goes to the socket untouched — the window path must never guess.
func parseGuestFrame(out []byte) (typ, cycles uint32, port, data []byte, ok bool) {
	le := binary.LittleEndian
	if len(out) < 16 || int(le.Uint32(out[0:4]))+4 != len(out) {
		return 0, 0, nil, nil, false
	}
	typ = le.Uint32(out[4:8])
	cycles = le.Uint32(out[8:12])
	nameLen := int(le.Uint32(out[12:16]))
	rest := out[16:]
	if nameLen > len(rest) {
		return 0, 0, nil, nil, false
	}
	port, rest = rest[:nameLen], rest[nameLen:]
	switch typ {
	case cosimMsgRead:
		if len(rest) != 0 {
			return 0, 0, nil, nil, false
		}
		return typ, cycles, port, nil, true
	case cosimMsgWrite:
		if len(rest) < 4 {
			return 0, 0, nil, nil, false
		}
		dataLen := int(le.Uint32(rest[0:4]))
		rest = rest[4:]
		if dataLen != len(rest) {
			return 0, 0, nil, nil, false
		}
		return typ, cycles, port, rest, true
	}
	return 0, 0, nil, nil, false
}

// serveFromWindow attempts the DMI fast path for one parsed guest
// frame: a READ is answered by synthesising the DATA reply straight
// into the receive buffer; a WRITE is staged for the kernel's next
// reconcile. Returns false on a window miss — the caller falls back to
// the message path.
func (d *CosimDev) serveFromWindow(win *Window, typ, cycles uint32, payload []byte) bool {
	switch typ {
	case cosimMsgRead:
		var reply []byte
		if !win.TryRead(cycles, func(data []byte) {
			le := binary.LittleEndian
			reply = make([]byte, 0, 12+len(data))
			reply = le.AppendUint32(reply, uint32(8+len(data)))
			reply = le.AppendUint32(reply, cosimMsgData)
			reply = le.AppendUint32(reply, uint32(len(data)))
			reply = append(reply, data...)
		}) {
			return false
		}
		d.InjectRx(reply)
		return true
	case cosimMsgWrite:
		return win.TryWrite(cycles, payload)
	}
	return false
}

// Read implements iss.Device.
func (d *CosimDev) Read(off uint32, size int) (uint32, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch off {
	case CosimRxByte:
		if len(d.rx) == 0 {
			return 0, nil
		}
		v := uint32(d.rx[0])
		d.rx = d.rx[1:]
		d.refresh()
		return v, nil
	case CosimRxWord:
		var v uint32
		for i := 0; i < 4 && len(d.rx) > 0; i++ {
			v |= uint32(d.rx[0]) << (8 * i)
			d.rx = d.rx[1:]
		}
		d.refresh()
		return v, nil
	case CosimRxAvail:
		return uint32(len(d.rx)), nil
	case CosimIntNum:
		if len(d.ints) == 0 {
			return NoInt, nil
		}
		return d.ints[0], nil
	case CosimRxIEn:
		if d.rxIntEn {
			return 1, nil
		}
		return 0, nil
	default:
		return 0, fmt.Errorf("%s: read of unknown register %#x", d.name, off)
	}
}

// Write implements iss.Device.
func (d *CosimDev) Write(off uint32, size int, v uint32) error {
	d.mu.Lock()
	name := d.name // the flush and default paths error after unlocking
	switch off {
	case CosimTxByte:
		d.tx = append(d.tx, byte(v))
		d.mu.Unlock()
		return nil
	case CosimTxWord:
		d.tx = append(d.tx, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		d.mu.Unlock()
		return nil
	case CosimTxFlush:
		out := d.tx
		d.tx = nil
		w := d.data
		d.txMessages++
		var win *Window
		var typ, cycles uint32
		var payload []byte
		if len(d.windows) > 0 {
			if t, cyc, port, data, ok := parseGuestFrame(out); ok {
				if wnd := d.windows[string(port)]; wnd != nil {
					win, typ, cycles, payload = wnd, t, cyc, data
				}
			}
		}
		d.mu.Unlock()
		if win != nil && d.serveFromWindow(win, typ, cycles, payload) {
			return nil
		}
		if w == nil {
			return fmt.Errorf("%s: flush with no data connection", name)
		}
		_, err := w.Write(out)
		return err
	case CosimIntAck:
		if len(d.ints) > 0 {
			d.ints = d.ints[1:]
		}
		d.refresh()
		d.mu.Unlock()
		return nil
	case CosimRxIEn:
		d.rxIntEn = v&1 != 0
		d.refresh()
		d.mu.Unlock()
		return nil
	default:
		d.mu.Unlock()
		return fmt.Errorf("%s: write to unknown register %#x", name, off)
	}
}
