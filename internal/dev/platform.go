package dev

import (
	"io"

	"cosim/internal/iss"
)

// Standard memory map of the FV32 platform.
const (
	PICBase     = 0xf0000000
	TimerBase   = 0xf0001000
	ConsoleBase = 0xf0002000
	CosimBase   = 0xf0003000
	MailboxBase = 0xf0004000
)

// DefaultRAMSize is the platform's default memory size.
const DefaultRAMSize = 4 << 20

// TickQuantum is the number of instructions executed between device
// ticks; it bounds timer-interrupt jitter.
const TickQuantum = 64

// Platform bundles a CPU with the standard peripheral set at the
// standard addresses — the "synthetic target" the RTOS runs on.
type Platform struct {
	// ID is the platform's instance id in a multi-processor SoC (0 for
	// a single-CPU system); set it with SetInstance.
	ID int

	CPU     *iss.CPU
	RAM     *iss.RAM
	Bus     *iss.SystemBus
	PIC     *PIC
	Timer   *Timer
	Console *Console
	Cosim   *CosimDev
	Mailbox *Mailbox // optional, mapped by AttachMailbox
}

// NewPlatform builds a platform with the given RAM size (0 = default)
// and optional console mirror writer.
func NewPlatform(ramSize uint32, consoleMirror io.Writer) *Platform {
	if ramSize == 0 {
		ramSize = DefaultRAMSize
	}
	ram := iss.NewRAM(ramSize)
	bus := iss.NewSystemBus(ram)
	cpu := iss.New(bus)
	p := &Platform{
		CPU: cpu, RAM: ram, Bus: bus,
		Console: NewConsole(consoleMirror),
	}
	p.PIC = NewPIC(cpu, 0)
	p.Timer = NewTimer(p.PIC, TimerLine)
	p.Cosim = NewCosimDev(p.PIC, CosimLine)
	mustMap(bus, PICBase, p.PIC)
	mustMap(bus, TimerBase, p.Timer)
	mustMap(bus, ConsoleBase, p.Console)
	mustMap(bus, CosimBase, p.Cosim)
	return p
}

func mustMap(bus *iss.SystemBus, base uint32, d iss.Device) {
	if err := bus.Map(base, d); err != nil {
		panic(err)
	}
}

// SetInstance labels the platform (and its co-simulation bridge
// device) with its CPU index in a multi-processor SoC, so errors and
// diagnostics name the guest they came from.
func (p *Platform) SetInstance(n int) {
	p.ID = n
	p.Cosim.SetInstance(n)
}

// AttachMailbox maps a mailbox endpoint at the standard base.
func (p *Platform) AttachMailbox(m *Mailbox) {
	p.Mailbox = m
	mustMap(p.Bus, MailboxBase, m)
}

// GrantDMIWindow implements DMIGranter by forwarding to the bridge
// device: protocol-port windows live on the co-simulation bridge, the
// platform is the kernel-facing grant surface.
func (p *Platform) GrantDMIWindow(port string, w *Window) {
	p.Cosim.GrantDMIWindow(port, w)
}

// RevokeDMIWindows implements DMIGranter.
func (p *Platform) RevokeDMIWindows() {
	p.Cosim.RevokeDMIWindows()
}

// Run executes up to budget instructions, ticking cycle-driven devices
// every TickQuantum instructions so timer interrupts track simulated
// time. It returns the CPU's stop reason and instructions executed.
func (p *Platform) Run(budget uint64) (iss.Stop, uint64) {
	var total uint64
	for total < budget {
		chunk := uint64(TickQuantum)
		if rest := budget - total; rest < chunk {
			chunk = rest
		}
		before := p.CPU.Cycles()
		stop, n := p.CPU.Run(chunk)
		total += n
		p.Timer.Advance(p.CPU.Cycles() - before)
		if stop == StopKeepGoing {
			continue
		}
		if stop == iss.StopIdle {
			// WFI: simulated time would pass while the core sleeps; let
			// the timer keep running so its interrupt can wake the CPU.
			if p.Timer.ctrl&TimerCtrlEnable != 0 && !p.Timer.irqOn && p.Timer.compare > p.Timer.count {
				p.Timer.Advance(p.Timer.compare - p.Timer.count)
				continue
			}
		}
		return stop, total
	}
	return StopKeepGoing, total
}

// StopKeepGoing aliases iss.StopBudget for readability at this layer.
const StopKeepGoing = iss.StopBudget
