package dev

import (
	"bytes"
	"encoding/binary"
	"net"
	"testing"
)

func TestWindowReadLifecycle(t *testing.T) {
	var activity int
	w := NewWindow("pkt", func() { activity++ })
	if w.Port() != "pkt" {
		t.Fatalf("port = %q", w.Port())
	}

	// No generation mirrored yet: a read misses.
	if w.TryRead(1, func([]byte) { t.Fatal("sink called on miss") }) {
		t.Fatal("read served from an empty window")
	}

	w.Update([]byte{1, 2, 3, 4}, 1)
	var got []byte
	if !w.TryRead(10, func(data []byte) { got = append([]byte(nil), data...) }) {
		t.Fatal("fresh generation not served")
	}
	if !bytes.Equal(got, []byte{1, 2, 3, 4}) {
		t.Fatalf("read %v", got)
	}
	if activity != 1 {
		t.Fatalf("activity callbacks = %d", activity)
	}
	seq, cycles, ok := w.TakeReadAck()
	if !ok || seq != 1 || cycles != 10 {
		t.Fatalf("read ack = (%d, %d, %v)", seq, cycles, ok)
	}
	if _, _, ok := w.TakeReadAck(); ok {
		t.Fatal("read ack not cleared")
	}

	// A stale re-read falls back to the message path.
	if w.TryRead(11, func([]byte) {}) {
		t.Fatal("stale generation re-served")
	}
	w.Update([]byte{9}, 2)
	if !w.TryRead(12, func([]byte) {}) {
		t.Fatal("new generation not served")
	}

	// A generation the message path already delivered is not fresh.
	w.Update([]byte{8}, 3)
	w.SyncConsumed(3)
	if w.TryRead(13, func([]byte) {}) {
		t.Fatal("message-delivered generation re-served")
	}

	hits, misses, revs := w.Counters()
	if hits != 2 || misses != 3 || revs != 0 {
		t.Fatalf("counters = (%d, %d, %d)", hits, misses, revs)
	}
}

func TestWindowWriteStagingAndRevoke(t *testing.T) {
	w := NewWindow("csum", nil)
	payload := []byte{0xaa, 0xbb}
	if !w.TryWrite(5, payload) {
		t.Fatal("write not staged")
	}
	payload[0] = 0 // the window must have copied
	if !w.HasPending() {
		t.Fatal("staged write not pending")
	}
	staged := w.TakeStaged(nil)
	if len(staged) != 1 || staged[0].Cycles != 5 || !bytes.Equal(staged[0].Data, []byte{0xaa, 0xbb}) {
		t.Fatalf("staged = %+v", staged)
	}
	if w.HasPending() {
		t.Fatal("pending after drain")
	}

	w.Revoke()
	w.Revoke() // double revocation counts once
	if w.Valid() {
		t.Fatal("window valid after revoke")
	}
	if w.TryWrite(6, payload) || w.TryRead(6, nil) {
		t.Fatal("revoked window served an access")
	}
	w.Update([]byte{1}, 99) // must be a no-op
	if w.TryRead(7, nil) {
		t.Fatal("revoked window accepted an update")
	}
	if _, _, revs := w.Counters(); revs != 1 {
		t.Fatalf("revocations = %d", revs)
	}
}

func TestWindowStagingBounds(t *testing.T) {
	w := NewWindow("csum", nil)
	for i := 0; i < maxStagedWrites; i++ {
		if !w.TryWrite(uint32(i), []byte{byte(i)}) {
			t.Fatalf("write %d rejected below the staging bound", i)
		}
	}
	if w.TryWrite(999, []byte{1}) {
		t.Fatal("write accepted past maxStagedWrites")
	}
	w.TakeStaged(nil)

	if w.TryWrite(0, make([]byte, maxStagedBytes+1)) {
		t.Fatal("write accepted past maxStagedBytes")
	}
	if !w.TryWrite(0, make([]byte, maxStagedBytes)) {
		t.Fatal("exact-bound write rejected")
	}
}

// guestFrame composes a driver-style READ/WRITE frame (what the guest
// assembles through the TX registers).
func guestFrame(typ, cycles uint32, port string, data []byte) []byte {
	le := binary.LittleEndian
	body := le.AppendUint32(nil, typ)
	body = le.AppendUint32(body, cycles)
	body = le.AppendUint32(body, uint32(len(port)))
	body = append(body, port...)
	if typ == cosimMsgWrite {
		body = le.AppendUint32(body, uint32(len(data)))
		body = append(body, data...)
	}
	frame := le.AppendUint32(nil, uint32(len(body)))
	return append(frame, body...)
}

// flushFrame pushes a composed frame through the device's TX registers.
func flushFrame(t *testing.T, d *CosimDev, frame []byte) {
	t.Helper()
	for _, b := range frame {
		if err := d.Write(CosimTxByte, 4, uint32(b)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Write(CosimTxFlush, 4, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCosimDevWindowServesReadAndWrite(t *testing.T) {
	d := NewCosimDev(NewPIC(newFakeSink(), 0), CosimLine)
	var socket bytes.Buffer
	d.ConnectData(eofReader{}, &socket)

	win := NewWindow("pkt", nil)
	win.Update([]byte{1, 2, 3, 4}, 1)
	d.GrantDMIWindow("pkt", win)

	// A READ of the windowed port is answered locally: the DATA reply
	// appears in RX and nothing reaches the socket.
	flushFrame(t, d, guestFrame(cosimMsgRead, 7, "pkt", nil))
	if avail, _ := d.Read(CosimRxAvail, 4); avail != 16 {
		t.Fatalf("rx avail = %d, want 16 (DATA reply)", avail)
	}
	if socket.Len() != 0 {
		t.Fatalf("read hit leaked %d bytes to the socket", socket.Len())
	}
	if v, _ := d.Read(CosimRxWord, 4); v != 12 { // size word: 8 + len(data)
		t.Fatalf("reply size word = %d", v)
	}

	// A stale re-read falls back to the socket.
	flushFrame(t, d, guestFrame(cosimMsgRead, 8, "pkt", nil))
	if socket.Len() == 0 {
		t.Fatal("stale read did not fall back to the socket")
	}
	socket.Reset()

	// A WRITE of a windowed port is staged, not transmitted.
	wwin := NewWindow("csum", nil)
	d.GrantDMIWindow("csum", wwin)
	flushFrame(t, d, guestFrame(cosimMsgWrite, 9, "csum", []byte{0xde, 0xad}))
	if socket.Len() != 0 {
		t.Fatalf("write hit leaked %d bytes to the socket", socket.Len())
	}
	staged := wwin.TakeStaged(nil)
	if len(staged) != 1 || staged[0].Cycles != 9 || !bytes.Equal(staged[0].Data, []byte{0xde, 0xad}) {
		t.Fatalf("staged = %+v", staged)
	}

	// Frames naming unwindowed ports go to the socket untouched.
	frame := guestFrame(cosimMsgWrite, 10, "other", []byte{1})
	flushFrame(t, d, frame)
	if !bytes.Equal(socket.Bytes(), frame) {
		t.Fatalf("socket got % x, want % x", socket.Bytes(), frame)
	}
}

func TestCosimDevGrantReplacementAndReconnectRevoke(t *testing.T) {
	d := NewCosimDev(NewPIC(newFakeSink(), 0), CosimLine)
	var socket bytes.Buffer
	d.ConnectData(eofReader{}, &socket)

	a := NewWindow("pkt", nil)
	d.GrantDMIWindow("pkt", a)
	b := NewWindow("pkt", nil)
	d.GrantDMIWindow("pkt", b)
	if a.Valid() {
		t.Fatal("replaced grant not revoked")
	}
	if !b.Valid() {
		t.Fatal("replacement grant revoked")
	}

	// Reattaching the data socket is a reconfiguration: all grants drop.
	d.ConnectData(eofReader{}, &socket)
	if b.Valid() {
		t.Fatal("reconnect did not revoke the grant")
	}

	c := NewWindow("pkt", nil)
	d.GrantDMIWindow("pkt", c)
	d.RevokeDMIWindows()
	if c.Valid() {
		t.Fatal("RevokeDMIWindows left the grant valid")
	}
}

// eofReader is an immediately-exhausted data socket read side.
type eofReader struct{}

func (eofReader) Read([]byte) (int, error) { return 0, errEOF }

var errEOF = net.ErrClosed

func TestFramePumpUnwrapsEnvelopes(t *testing.T) {
	d := NewCosimDev(NewPIC(newFakeSink(), 0), CosimLine)
	d.DecodeBatches()
	host, guest := net.Pipe()
	d.ConnectData(guest, guest)

	le := binary.LittleEndian
	// One plain DATA frame...
	plain := le.AppendUint32(nil, 8+1)
	plain = le.AppendUint32(plain, cosimMsgData)
	plain = le.AppendUint32(plain, 1)
	plain = append(plain, 0x11)
	// ...and an envelope of two DATA frames.
	inner := le.AppendUint32(nil, 8+1)
	inner = le.AppendUint32(inner, cosimMsgData)
	inner = le.AppendUint32(inner, 1)
	inner = append(inner, 0x22)
	inner2 := le.AppendUint32(nil, 8+2)
	inner2 = le.AppendUint32(inner2, cosimMsgData)
	inner2 = le.AppendUint32(inner2, 2)
	inner2 = append(inner2, 0x33, 0x44)
	payload := append(append([]byte(nil), inner...), inner2...)
	batch := le.AppendUint32(nil, uint32(12+len(payload)))
	batch = le.AppendUint32(batch, cosimMsgBatch)
	batch = le.AppendUint32(batch, cosimBatchVersion)
	batch = le.AppendUint32(batch, 2)
	batch = append(batch, payload...)

	go func() {
		host.Write(plain)
		host.Write(batch)
	}()

	// The guest parser must see exactly the three plain frames, in
	// order, with no envelope bytes in between.
	want := append(append([]byte(nil), plain...), payload...)
	waitFor(t, func() bool {
		v, _ := d.Read(CosimRxAvail, 4)
		return int(v) == len(want)
	})
	got := make([]byte, 0, len(want))
	for range want {
		v, _ := d.Read(CosimRxByte, 4)
		got = append(got, byte(v))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("rx stream\n got % x\nwant % x", got, want)
	}
	host.Close()
}

func TestMailboxWindowMirrorsDeliveries(t *testing.T) {
	sa, sb := newFakeSink(), newFakeSink()
	picA, picB := NewPIC(sa, 0), NewPIC(sb, 0)
	a, b := NewMailboxPair(picA, 3, picB, 3)

	w := NewWindow("mbox", nil)
	b.GrantDMIWindow(w)

	// Nothing delivered yet: the mirror holds generation 0, no hit.
	if w.TryRead(1, func([]byte) {}) {
		t.Fatal("empty mailbox mirror served a read")
	}

	if err := a.Write(MBSend, 4, 0xcafe0001); err != nil {
		t.Fatal(err)
	}
	var got []byte
	if !w.TryRead(2, func(data []byte) { got = append([]byte(nil), data...) }) {
		t.Fatal("delivery not mirrored into the window")
	}
	if len(got) != 4 || binary.LittleEndian.Uint32(got) != 0xcafe0001 {
		t.Fatalf("mirrored payload % x", got)
	}

	// The register path is untouched: MBRecv still pops, the PIC line
	// was asserted by the delivery.
	if !sb.raised[0] {
		t.Fatal("delivery did not assert the peer PIC line")
	}
	if v, _ := b.Read(MBRecv, 4); v != 0xcafe0001 {
		t.Fatalf("MBRecv = %#x", v)
	}

	// Granting again replaces the old window; revoking detaches.
	w2 := NewWindow("mbox", nil)
	b.GrantDMIWindow(w2)
	if w.Valid() {
		t.Fatal("replaced mailbox grant not revoked")
	}
	b.RevokeDMIWindow()
	if w2.Valid() {
		t.Fatal("mailbox revoke left the window valid")
	}
	if err := a.Write(MBSend, 4, 7); err != nil { // must not touch revoked windows
		t.Fatal(err)
	}
}
