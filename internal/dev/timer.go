package dev

import "fmt"

// Timer register offsets.
const (
	TimerCount   = 0x00 // RO: current cycle count
	TimerCompare = 0x04 // RW: match value
	TimerReload  = 0x08 // RW: auto re-arm interval (0 = one-shot)
	TimerCtrl    = 0x0c // RW: bit0 = enable
	TimerAck     = 0x10 // WO: acknowledge interrupt
	TimerSize    = 0x14
)

// TimerCtrlEnable is the enable bit in the control register.
const TimerCtrlEnable = 1 << 0

// Timer is a cycle-driven compare timer raising a PIC line. The platform
// advances it with the CPU's consumed cycles, so timer interrupts line
// up with simulated time rather than host time — the RTOS uses it for
// its preemptive tick.
type Timer struct {
	count   uint64
	compare uint64
	reload  uint64
	ctrl    uint32
	irqOn   bool
	pic     *PIC
	line    int
}

// NewTimer creates a timer driving the given PIC line.
func NewTimer(pic *PIC, line int) *Timer {
	return &Timer{pic: pic, line: line}
}

// Name implements iss.Device.
func (t *Timer) Name() string { return "timer" }

// Size implements iss.Device.
func (t *Timer) Size() uint32 { return TimerSize }

// Advance moves simulated time forward by the given cycle count,
// asserting the interrupt line on compare match.
func (t *Timer) Advance(cycles uint64) {
	if t.ctrl&TimerCtrlEnable == 0 {
		return
	}
	t.count += cycles
	if !t.irqOn && t.compare != 0 && t.count >= t.compare {
		t.irqOn = true
		t.pic.Assert(t.line)
	}
}

// Read implements iss.Device.
func (t *Timer) Read(off uint32, size int) (uint32, error) {
	switch off {
	case TimerCount:
		return uint32(t.count), nil
	case TimerCompare:
		return uint32(t.compare), nil
	case TimerReload:
		return uint32(t.reload), nil
	case TimerCtrl:
		return t.ctrl, nil
	default:
		return 0, fmt.Errorf("timer: read of unknown register %#x", off)
	}
}

// Write implements iss.Device.
func (t *Timer) Write(off uint32, size int, v uint32) error {
	switch off {
	case TimerCompare:
		t.compare = uint64(v)
	case TimerReload:
		t.reload = uint64(v)
	case TimerCtrl:
		t.ctrl = v
	case TimerAck:
		t.irqOn = false
		t.pic.Deassert(t.line)
		if t.reload != 0 {
			t.compare = t.count + t.reload
		}
	default:
		return fmt.Errorf("timer: write to unknown register %#x", off)
	}
	return nil
}
