package dev

import "sync"

// DMI-style direct memory windows (cf. Villa et al., "Fast Dynamic
// Memory Integration in Co-Simulation Frameworks for MPSoC"): the
// kernel grants the guest's driver a revocable window into the
// side-effect-free backing memory of a bound port, so a guest load or
// store in the granted range becomes a local memory operation — no
// codec, no transport write, no skew message. Side-effectful registers
// (PIC, Timer, console control) are never windowed; accesses to them,
// and any access a window cannot serve, fall back transparently to the
// READ/WRITE message protocol.
//
// A Window is the unit of grant. The kernel side mirrors port state
// into it (Update) and reconciles guest activity out of it (TakeStaged,
// TakeReadAck) at its cycle-boundary hooks, so granted-window accesses
// still couple to lock-step time; the guest side serves accesses from
// it (TryRead, TryWrite). Revoke invalidates the window permanently —
// the kernel re-grants a fresh window after reconfiguration.

// Staged-write bounds: a window stops accepting guest stores once this
// many writes or bytes are pending reconciliation, forcing the
// overflow onto the message path instead of growing without limit.
const (
	maxStagedWrites = 64
	maxStagedBytes  = 1 << 16
)

// StagedWrite is one guest store captured by a write window, waiting
// for the kernel to reconcile it with simulation time.
type StagedWrite struct {
	Cycles uint32
	Data   []byte
}

// Window is one revocable direct-memory grant over a single bound port.
// The zero value is unusable; construct with NewWindow. All methods are
// safe for concurrent use by the guest and kernel threads.
type Window struct {
	mu    sync.Mutex
	port  string
	valid bool

	// onActivity, set at construction by the kernel, is invoked (outside
	// the window lock) after every guest-side hit so the kernel's
	// lock-step wait can wake and reconcile. It must be non-blocking.
	onActivity func()

	// Read side: the kernel mirrors the backing port's bytes and write
	// generation here; the guest consumes generations. seq > readSeq
	// means an unconsumed generation is present.
	data       []byte
	seq        uint64
	readSeq    uint64
	readCycles uint32
	readAck    bool

	// Write side: guest stores staged until the kernel reconciles them.
	staged      []StagedWrite
	stagedBytes int

	hits, misses, revocations uint64
}

// NewWindow creates a valid window over port. onActivity may be nil.
func NewWindow(port string, onActivity func()) *Window {
	return &Window{port: port, valid: true, onActivity: onActivity}
}

// Port returns the bound port name the window was granted over.
func (w *Window) Port() string { return w.port }

// TryRead serves a guest READ of the windowed port at the guest cycle
// counter cycles. It succeeds only when the window is valid and holds a
// generation the guest has not consumed yet — a stale re-read falls
// back to the message path, which always returns the current value.
// On success sink is called with the mirrored bytes while the window
// lock is held; sink must only copy (no locks, no blocking). Returns
// whether the read was served.
func (w *Window) TryRead(cycles uint32, sink func(data []byte)) bool {
	w.mu.Lock()
	if !w.valid || w.seq <= w.readSeq {
		w.misses++
		w.mu.Unlock()
		return false
	}
	sink(w.data)
	w.readSeq = w.seq
	w.readCycles = cycles
	w.readAck = true
	w.hits++
	fn := w.onActivity
	w.mu.Unlock()
	if fn != nil {
		fn()
	}
	return true
}

// TryWrite stages a guest WRITE of the windowed port. It fails — and
// the caller falls back to the message path — when the window is
// revoked or the staging bounds are reached. The data bytes are copied.
func (w *Window) TryWrite(cycles uint32, data []byte) bool {
	w.mu.Lock()
	if !w.valid || len(w.staged) >= maxStagedWrites || w.stagedBytes+len(data) > maxStagedBytes {
		w.misses++
		w.mu.Unlock()
		return false
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	w.staged = append(w.staged, StagedWrite{Cycles: cycles, Data: buf})
	w.stagedBytes += len(data)
	w.hits++
	fn := w.onActivity
	w.mu.Unlock()
	if fn != nil {
		fn()
	}
	return true
}

// Update mirrors the backing port's current bytes and write generation
// into the window (kernel side). It is a no-op on a revoked window and
// on a stale generation: devices snapshot the image under their own
// mutex but apply it here after releasing it (window locks are never
// taken under a device mutex), so two racing updates may arrive out of
// order and the older one must not regress the mirror.
func (w *Window) Update(data []byte, seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.valid || seq < w.seq {
		return
	}
	w.data = append(w.data[:0], data...)
	w.seq = seq
}

// SyncConsumed records that the message protocol already delivered
// generation seq to the guest (a fallback READ was answered by the
// kernel), so the window will not re-serve it as fresh.
func (w *Window) SyncConsumed(seq uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq > w.readSeq {
		w.readSeq = seq
	}
}

// TakeStaged moves all staged guest writes out of the window, appending
// them to dst (kernel side, called at reconcile points).
func (w *Window) TakeStaged(dst []StagedWrite) []StagedWrite {
	w.mu.Lock()
	defer w.mu.Unlock()
	dst = append(dst, w.staged...)
	w.staged = w.staged[:0]
	w.stagedBytes = 0
	return dst
}

// TakeReadAck reports and clears the pending read acknowledgement: the
// generation the guest last consumed through the window and the guest
// cycle counter at that access, for lock-step reconciliation.
func (w *Window) TakeReadAck() (seq uint64, cycles uint32, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.readAck {
		return 0, 0, false
	}
	w.readAck = false
	return w.readSeq, w.readCycles, true
}

// HasPending reports whether guest activity (a consumed read
// generation or staged writes) awaits kernel reconciliation.
func (w *Window) HasPending() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.readAck || len(w.staged) > 0
}

// Revoke invalidates the window permanently. Guest accesses after
// revocation miss and fall back to the message path; staged writes
// survive for one final reconciliation. Revoking twice counts once.
func (w *Window) Revoke() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.valid {
		w.valid = false
		w.revocations++
	}
}

// Valid reports whether the window is still granted.
func (w *Window) Valid() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.valid
}

// Counters returns the window's cumulative hit/miss/revocation counts.
func (w *Window) Counters() (hits, misses, revocations uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hits, w.misses, w.revocations
}

// DMIGranter is the window grant/revoke surface a guest-side device
// exposes to the kernel. CosimDev implements it for protocol ports;
// Platform forwards to its bridge device.
type DMIGranter interface {
	// GrantDMIWindow makes the device serve guest accesses to the named
	// port from w when possible. Granting a port again replaces (and
	// revokes) the previous window.
	GrantDMIWindow(port string, w *Window)
	// RevokeDMIWindows revokes and forgets every granted window.
	RevokeDMIWindows()
}
