package dev

import (
	"fmt"
	"sync"
)

// Mailbox register offsets.
const (
	MBSend  = 0x00 // WO: push a word to the peer, raising its interrupt
	MBRecv  = 0x04 // RO: pop a word from this side's queue
	MBAvail = 0x08 // RO: words waiting
	MBSize  = 0x0c
)

// Mailbox is one endpoint of a bidirectional inter-processor mailbox —
// the kind of hardware block a multi-processor SoC uses for doorbells.
// Words written to MBSend appear in the peer's receive queue and assert
// the peer's PIC line.
type Mailbox struct {
	mu    *sync.Mutex
	queue *[]uint32 // this side's receive queue
	peerQ *[]uint32
	pic   *PIC // this side's PIC (deasserted when queue drains)
	line  int
	peerP *PIC
	peerL int
}

// NewMailboxPair creates the two endpoints of a mailbox connecting CPU A
// (picA/lineA) and CPU B (picB/lineB).
func NewMailboxPair(picA *PIC, lineA int, picB *PIC, lineB int) (*Mailbox, *Mailbox) {
	var mu sync.Mutex
	qa, qb := new([]uint32), new([]uint32)
	a := &Mailbox{mu: &mu, queue: qa, peerQ: qb, pic: picA, line: lineA, peerP: picB, peerL: lineB}
	b := &Mailbox{mu: &mu, queue: qb, peerQ: qa, pic: picB, line: lineB, peerP: picA, peerL: lineA}
	return a, b
}

// Name implements iss.Device.
func (m *Mailbox) Name() string { return "mailbox" }

// Size implements iss.Device.
func (m *Mailbox) Size() uint32 { return MBSize }

// Read implements iss.Device.
func (m *Mailbox) Read(off uint32, size int) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch off {
	case MBRecv:
		if len(*m.queue) == 0 {
			return 0, nil
		}
		v := (*m.queue)[0]
		*m.queue = (*m.queue)[1:]
		if len(*m.queue) == 0 {
			m.pic.Deassert(m.line)
		}
		return v, nil
	case MBAvail:
		return uint32(len(*m.queue)), nil
	default:
		return 0, fmt.Errorf("mailbox: read of unknown register %#x", off)
	}
}

// Write implements iss.Device.
func (m *Mailbox) Write(off uint32, size int, v uint32) error {
	switch off {
	case MBSend:
		m.mu.Lock()
		*m.peerQ = append(*m.peerQ, v)
		m.mu.Unlock()
		m.peerP.Assert(m.peerL)
		return nil
	default:
		return fmt.Errorf("mailbox: write to unknown register %#x", off)
	}
}
