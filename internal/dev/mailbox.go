package dev

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Mailbox register offsets.
const (
	MBSend  = 0x00 // WO: push a word to the peer, raising its interrupt
	MBRecv  = 0x04 // RO: pop a word from this side's queue
	MBAvail = 0x08 // RO: words waiting
	MBSize  = 0x0c
)

// mailboxSide is the per-endpoint state of a mailbox pair: the receive
// queue, its PIC line, and the optional DMI window mirroring the
// queue's payload. Both sides share one mutex.
type mailboxSide struct {
	queue []uint32
	pic   *PIC
	line  int

	// win, when granted, mirrors this side's receive-queue payload so
	// the kernel (or a windowed observer) can read delivered words
	// without MMIO. delivered is the mirror's write generation.
	win       *Window
	delivered uint64
}

// Mailbox is one endpoint of a bidirectional inter-processor mailbox —
// the kind of hardware block a multi-processor SoC uses for doorbells.
// Words written to MBSend appear in the peer's receive queue and assert
// the peer's PIC line.
//
// The receive queue's payload is side-effect-free backing memory, so it
// is DMI-eligible: GrantDMIWindow mirrors the queue into a Window on
// every delivery. Register accesses (MBSend's interrupt side effect,
// MBRecv's pop) always take the normal MMIO path.
type Mailbox struct {
	mu   *sync.Mutex
	self *mailboxSide
	peer *mailboxSide
}

// NewMailboxPair creates the two endpoints of a mailbox connecting CPU A
// (picA/lineA) and CPU B (picB/lineB).
func NewMailboxPair(picA *PIC, lineA int, picB *PIC, lineB int) (*Mailbox, *Mailbox) {
	var mu sync.Mutex
	sa := &mailboxSide{pic: picA, line: lineA}
	sb := &mailboxSide{pic: picB, line: lineB}
	a := &Mailbox{mu: &mu, self: sa, peer: sb}
	b := &Mailbox{mu: &mu, self: sb, peer: sa}
	return a, b
}

// Name implements iss.Device.
func (m *Mailbox) Name() string { return "mailbox" }

// Size implements iss.Device.
func (m *Mailbox) Size() uint32 { return MBSize }

// mirrorLocked snapshots a side's window image from its queue; callers
// hold m.mu and apply the snapshot with win.Update after releasing it —
// window locks are never taken under a device mutex, and Update's
// generation guard discards whichever of two racing snapshots is older.
// The payload image is the queued words in delivery order, little-
// endian, stamped with the cumulative delivery count as generation.
func (s *mailboxSide) mirrorLocked() (win *Window, buf []byte, gen uint64) {
	if s.win == nil {
		return nil, nil, 0
	}
	buf = make([]byte, 0, 4*len(s.queue))
	for _, v := range s.queue {
		buf = binary.LittleEndian.AppendUint32(buf, v)
	}
	return s.win, buf, s.delivered
}

// GrantDMIWindow mirrors this endpoint's receive-queue payload into w,
// starting with the words already queued. Granting again replaces (and
// revokes) the previous window.
func (m *Mailbox) GrantDMIWindow(w *Window) {
	m.mu.Lock()
	old := m.self.win
	m.self.win = w
	win, buf, gen := m.self.mirrorLocked()
	m.mu.Unlock()
	if win != nil {
		win.Update(buf, gen)
	}
	if old != nil {
		old.Revoke()
	}
}

// RevokeDMIWindow revokes and detaches this endpoint's window.
func (m *Mailbox) RevokeDMIWindow() {
	m.mu.Lock()
	old := m.self.win
	m.self.win = nil
	m.mu.Unlock()
	if old != nil {
		old.Revoke()
	}
}

// Read implements iss.Device.
func (m *Mailbox) Read(off uint32, size int) (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch off {
	case MBRecv:
		if len(m.self.queue) == 0 {
			return 0, nil
		}
		v := m.self.queue[0]
		m.self.queue = m.self.queue[1:]
		if len(m.self.queue) == 0 {
			m.self.pic.Deassert(m.self.line)
		}
		return v, nil
	case MBAvail:
		return uint32(len(m.self.queue)), nil
	default:
		return 0, fmt.Errorf("mailbox: read of unknown register %#x", off)
	}
}

// Write implements iss.Device.
func (m *Mailbox) Write(off uint32, size int, v uint32) error {
	switch off {
	case MBSend:
		m.mu.Lock()
		m.peer.queue = append(m.peer.queue, v)
		m.peer.delivered++
		win, buf, gen := m.peer.mirrorLocked()
		pic, line := m.peer.pic, m.peer.line
		m.mu.Unlock()
		if win != nil {
			win.Update(buf, gen)
		}
		pic.Assert(line)
		return nil
	default:
		return fmt.Errorf("mailbox: write to unknown register %#x", off)
	}
}
