package dev

import (
	"net"
	"strings"
	"testing"
	"time"

	"cosim/internal/asm"
	"cosim/internal/iss"
)

// fakeSink records CPU interrupt pin state.
type fakeSink struct{ raised map[int]bool }

func newFakeSink() *fakeSink { return &fakeSink{raised: make(map[int]bool)} }

func (s *fakeSink) RaiseIRQ(n int) { s.raised[n] = true }
func (s *fakeSink) ClearIRQ(n int) { s.raised[n] = false }

func TestPICAssertAggregates(t *testing.T) {
	sink := newFakeSink()
	pic := NewPIC(sink, 0)
	pic.Assert(3)
	if !sink.raised[0] {
		t.Fatal("CPU pin not raised")
	}
	if pic.Pending() != 1<<3 {
		t.Fatalf("pending = %#x", pic.Pending())
	}
	pic.Deassert(3)
	if sink.raised[0] {
		t.Fatal("CPU pin still raised after deassert")
	}
}

func TestPICEnableMask(t *testing.T) {
	sink := newFakeSink()
	pic := NewPIC(sink, 0)
	if err := pic.Write(PICEnable, 4, 0); err != nil {
		t.Fatal(err)
	}
	pic.Assert(1)
	if sink.raised[0] {
		t.Fatal("masked line raised CPU pin")
	}
	if err := pic.Write(PICEnable, 4, 0xffffffff); err != nil {
		t.Fatal(err)
	}
	if !sink.raised[0] {
		t.Fatal("unmasking did not raise pin for pending line")
	}
}

func TestPICAckAndRaiseRegisters(t *testing.T) {
	sink := newFakeSink()
	pic := NewPIC(sink, 0)
	if err := pic.Write(PICRaise, 4, 0b110); err != nil {
		t.Fatal(err)
	}
	v, err := pic.Read(PICPending, 4)
	if err != nil || v != 0b110 {
		t.Fatalf("pending = %#x, %v", v, err)
	}
	if err := pic.Write(PICAck, 4, 0b010); err != nil {
		t.Fatal(err)
	}
	v, _ = pic.Read(PICPending, 4)
	if v != 0b100 {
		t.Fatalf("pending after ack = %#x", v)
	}
	if _, err := pic.Read(PICAck, 4); err == nil {
		t.Fatal("read of write-only register succeeded")
	}
}

func TestTimerCompareAndReload(t *testing.T) {
	sink := newFakeSink()
	pic := NewPIC(sink, 0)
	tm := NewTimer(pic, TimerLine)
	_ = tm.Write(TimerCompare, 4, 100)
	_ = tm.Write(TimerReload, 4, 100)
	_ = tm.Write(TimerCtrl, 4, TimerCtrlEnable)

	tm.Advance(50)
	if sink.raised[0] {
		t.Fatal("timer fired early")
	}
	tm.Advance(60)
	if !sink.raised[0] {
		t.Fatal("timer did not fire at compare")
	}
	// Ack re-arms from reload.
	_ = tm.Write(TimerAck, 4, 1)
	if sink.raised[0] {
		t.Fatal("line still asserted after ack")
	}
	v, _ := tm.Read(TimerCompare, 4)
	if v != 210 {
		t.Fatalf("re-armed compare = %d, want 210", v)
	}
	tm.Advance(150)
	if !sink.raised[0] {
		t.Fatal("reloaded timer did not fire")
	}
}

func TestTimerDisabledDoesNotCount(t *testing.T) {
	pic := NewPIC(newFakeSink(), 0)
	tm := NewTimer(pic, 0)
	_ = tm.Write(TimerCompare, 4, 10)
	tm.Advance(100)
	v, _ := tm.Read(TimerCount, 4)
	if v != 0 {
		t.Fatalf("disabled timer counted to %d", v)
	}
}

func TestConsoleCapture(t *testing.T) {
	var sb strings.Builder
	c := NewConsole(&sb)
	for _, ch := range []byte("hi\n") {
		if err := c.Write(ConsoleTx, 4, uint32(ch)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Output() != "hi\n" || sb.String() != "hi\n" {
		t.Fatalf("output = %q mirror = %q", c.Output(), sb.String())
	}
	if v, err := c.Read(ConsoleStatus, 4); err != nil || v != 1 {
		t.Fatalf("status = %d, %v", v, err)
	}
	c.Clear()
	if c.Output() != "" {
		t.Fatal("clear failed")
	}
}

func TestCosimDevTxRx(t *testing.T) {
	pic := NewPIC(newFakeSink(), 0)
	d := NewCosimDev(pic, CosimLine)
	host, guest := net.Pipe()
	d.ConnectData(guest, guest)

	// Guest transmits a message.
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 16)
		n, _ := host.Read(buf)
		done <- buf[:n]
	}()
	_ = d.Write(CosimTxByte, 4, 0xAA)
	_ = d.Write(CosimTxWord, 4, 0x11223344)
	if err := d.Write(CosimTxFlush, 4, 0); err != nil {
		t.Fatal(err)
	}
	got := <-done
	want := []byte{0xAA, 0x44, 0x33, 0x22, 0x11}
	if string(got) != string(want) {
		t.Fatalf("host received % x, want % x", got, want)
	}
	if d.TxMessages() != 1 {
		t.Fatalf("tx messages = %d", d.TxMessages())
	}

	// Host sends a response; guest pops bytes.
	if _, err := host.Write([]byte{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { v, _ := d.Read(CosimRxAvail, 4); return v == 5 })
	if v, _ := d.Read(CosimRxByte, 4); v != 1 {
		t.Fatalf("rx byte = %d", v)
	}
	if v, _ := d.Read(CosimRxWord, 4); v != 0x05040302 {
		t.Fatalf("rx word = %#x", v)
	}
	if v, _ := d.Read(CosimRxAvail, 4); v != 0 {
		t.Fatalf("avail = %d", v)
	}
	host.Close()
}

func TestCosimDevInterruptSocket(t *testing.T) {
	sink := newFakeSink()
	pic := NewPIC(sink, 0)
	d := NewCosimDev(pic, CosimLine)
	host, guest := net.Pipe()
	d.ConnectIRQ(guest)

	go func() { _, _ = host.Write([]byte{7, 0, 0, 0, 9, 0, 0, 0}) }()
	waitFor(t, func() bool { v, _ := d.Read(CosimIntNum, 4); return v == 7 })
	if !sink.raised[0] {
		t.Fatal("PIC line not asserted")
	}
	_ = d.Write(CosimIntAck, 4, 0)
	waitFor(t, func() bool { v, _ := d.Read(CosimIntNum, 4); return v == 9 })
	_ = d.Write(CosimIntAck, 4, 0)
	if v, _ := d.Read(CosimIntNum, 4); v != NoInt {
		t.Fatalf("int num = %#x, want NoInt", v)
	}
	host.Close()
}

func TestCosimDevInject(t *testing.T) {
	sink := newFakeSink()
	pic := NewPIC(sink, 0)
	d := NewCosimDev(pic, CosimLine)
	d.InjectRx([]byte{9, 8})
	if v, _ := d.Read(CosimRxAvail, 4); v != 2 {
		t.Fatalf("avail = %d", v)
	}
	d.InjectIRQ(3)
	if v, _ := d.Read(CosimIntNum, 4); v != 3 {
		t.Fatalf("int = %d", v)
	}
	if pic.Pending()&(1<<CosimLine) == 0 {
		t.Fatal("PIC line not pending")
	}
}

func TestCosimFlushWithoutConnection(t *testing.T) {
	d := NewCosimDev(NewPIC(newFakeSink(), 0), CosimLine)
	_ = d.Write(CosimTxByte, 4, 1)
	if err := d.Write(CosimTxFlush, 4, 0); err == nil {
		t.Fatal("flush without connection succeeded")
	}
}

func TestMailboxPair(t *testing.T) {
	sa, sb := newFakeSink(), newFakeSink()
	picA, picB := NewPIC(sa, 0), NewPIC(sb, 0)
	a, b := NewMailboxPair(picA, MailboxLine, picB, MailboxLine)

	// A sends to B.
	if err := a.Write(MBSend, 4, 42); err != nil {
		t.Fatal(err)
	}
	if !sb.raised[0] {
		t.Fatal("B's interrupt not raised")
	}
	if v, _ := b.Read(MBAvail, 4); v != 1 {
		t.Fatalf("B avail = %d", v)
	}
	if v, _ := b.Read(MBRecv, 4); v != 42 {
		t.Fatalf("B recv = %d", v)
	}
	if sb.raised[0] {
		t.Fatal("B's interrupt still asserted after drain")
	}
	// B replies to A.
	_ = b.Write(MBSend, 4, 7)
	if v, _ := a.Read(MBRecv, 4); v != 7 {
		t.Fatal("A did not receive reply")
	}
}

func TestPlatformRunsProgramWithTimerInterrupt(t *testing.T) {
	src := `
.equ TIMER,   0xF0001000
.equ PIC,     0xF0000000
.equ VEC,     0x400
_start:
    li   t0, VEC
    mtsr ivec, t0
    ; timer: compare=200 cycles, reload, enable
    li   t1, TIMER
    addi t2, zero, 200
    sw   t2, 4(t1)       ; compare
    sw   t2, 8(t1)       ; reload
    addi t3, zero, 1
    sw   t3, 12(t1)      ; ctrl = enable
    ei
spin:
    addi s0, s0, 1
    addi t4, zero, 5
    bne  s1, t4, spin    ; run until 5 ticks
    halt
.org VEC
isr:
    ; save t1 (the ISR clobbers nothing else the main loop uses)
    addi s1, s1, 1       ; count ticks
    li   k0, TIMER
    sw   zero, 16(k0)    ; timer ack
    li   k0, PIC
    addi k1, zero, 1
    sw   k1, 8(k0)       ; pic ack line 0 (timer)
    eret
`
	im, err := asm.Assemble(asm.Options{}, asm.Source{Name: "tick.s", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(0, nil)
	if err := im.LoadInto(p.RAM); err != nil {
		t.Fatal(err)
	}
	p.CPU.Reset(im.Entry)
	stop, _ := p.Run(1_000_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v (pc=%#x, ticks=%d)", stop, p.CPU.PC, p.CPU.Regs[5])
	}
	if got := p.CPU.Regs[5]; got != 5 {
		t.Fatalf("ticks = %d, want 5", got)
	}
	if p.CPU.Regs[4] == 0 {
		t.Fatal("main loop never ran")
	}
}

func TestPlatformWFIWakesOnTimer(t *testing.T) {
	src := `
.equ TIMER, 0xF0001000
.equ PIC,   0xF0000000
_start:
    li   t0, 0x400
    mtsr ivec, t0
    li   t1, TIMER
    addi t2, zero, 500
    sw   t2, 4(t1)       ; compare
    addi t3, zero, 1
    sw   t3, 12(t1)      ; enable
    ei
    wfi
    halt
.org 0x400
isr:
    li   k0, TIMER
    sw   zero, 16(k0)
    li   k0, PIC
    addi k1, zero, 1
    sw   k1, 8(k0)
    addi s1, zero, 1
    eret
`
	im, err := asm.Assemble(asm.Options{}, asm.Source{Name: "wfi.s", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(0, nil)
	_ = im.LoadInto(p.RAM)
	p.CPU.Reset(im.Entry)
	stop, _ := p.Run(100_000)
	if stop != iss.StopHalt {
		t.Fatalf("stop = %v (pc=%#x)", stop, p.CPU.PC)
	}
	if p.CPU.Regs[5] != 1 {
		t.Fatal("isr did not run")
	}
}

// waitFor polls a condition with a deadline (for goroutine-fed state).
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestCosimRxInterruptEnable(t *testing.T) {
	sink := newFakeSink()
	pic := NewPIC(sink, 0)
	d := NewCosimDev(pic, CosimLine)

	// Data with RX interrupts disabled: line stays low.
	d.InjectRx([]byte{1, 2, 3})
	if sink.raised[0] {
		t.Fatal("line raised with RxIEn off")
	}
	// Arming raises the level immediately (data already present).
	if err := d.Write(CosimRxIEn, 4, 1); err != nil {
		t.Fatal(err)
	}
	if !sink.raised[0] {
		t.Fatal("line not raised after arming with data available")
	}
	if v, _ := d.Read(CosimRxIEn, 4); v != 1 {
		t.Fatalf("RxIEn reads %d", v)
	}
	// Draining the buffer drops the level.
	for i := 0; i < 3; i++ {
		_, _ = d.Read(CosimRxByte, 4)
	}
	if sink.raised[0] {
		t.Fatal("line still high with empty buffer")
	}
	// New data re-raises while armed; disarming drops it.
	d.InjectRx([]byte{9})
	if !sink.raised[0] {
		t.Fatal("line not re-raised")
	}
	if err := d.Write(CosimRxIEn, 4, 0); err != nil {
		t.Fatal(err)
	}
	if sink.raised[0] {
		t.Fatal("line high after disarm")
	}
	// Queued interrupt ids keep the line high independently of RxIEn.
	d.InjectIRQ(3)
	if !sink.raised[0] {
		t.Fatal("queued interrupt did not raise the line")
	}
	_ = d.Write(CosimIntAck, 4, 0)
	if sink.raised[0] {
		t.Fatal("line high after ack with empty queue")
	}
}
