package dev

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

// Console register offsets.
const (
	ConsoleTx     = 0x00 // WO: write a character
	ConsoleStatus = 0x04 // RO: always 1 (ready)
	ConsoleSize   = 0x08
)

// Console is a write-only debug character device. Output is captured in
// a buffer (readable by tests and the host) and optionally mirrored to
// an io.Writer.
type Console struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	mirror io.Writer
}

// NewConsole creates a console; mirror may be nil.
func NewConsole(mirror io.Writer) *Console {
	return &Console{mirror: mirror}
}

// Name implements iss.Device.
func (c *Console) Name() string { return "console" }

// Size implements iss.Device.
func (c *Console) Size() uint32 { return ConsoleSize }

// Read implements iss.Device.
func (c *Console) Read(off uint32, size int) (uint32, error) {
	switch off {
	case ConsoleStatus:
		return 1, nil
	default:
		return 0, fmt.Errorf("console: read of unknown register %#x", off)
	}
}

// Write implements iss.Device.
func (c *Console) Write(off uint32, size int, v uint32) error {
	switch off {
	case ConsoleTx:
		c.mu.Lock()
		c.buf.WriteByte(byte(v))
		if c.mirror != nil {
			_, _ = c.mirror.Write([]byte{byte(v)})
		}
		c.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("console: write to unknown register %#x", off)
	}
}

// Output returns everything written so far.
func (c *Console) Output() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String()
}

// Clear discards captured output.
func (c *Console) Clear() {
	c.mu.Lock()
	c.buf.Reset()
	c.mu.Unlock()
}
