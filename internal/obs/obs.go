// Package obs is the co-simulation observability layer: allocation-free
// counters, gauges and power-of-two latency histograms collected in a
// named Registry, plus lightweight span events for coarse co-sim
// interactions.
//
// The design goal is that a *disabled* registry costs nothing on the
// hot path: every lookup on a nil *Registry returns a nil metric, and
// every method on a nil metric is a no-op, so instrumented code resolves
// its metrics once at attach time and then calls Inc/Add/Observe
// unconditionally. With a live registry the update is a single atomic
// add — no locks, no allocations.
//
// Metric names are dotted strings, grouped by subsystem:
//
//	rsp.*    — GDB remote-protocol traffic (internal/gdb)
//	cosim.*  — GDB-scheme engine activity (internal/core)
//	driver.* — Driver-Kernel protocol activity (internal/core)
//	sim.*    — simulation-kernel activity (internal/sim)
//	iss.*    — guest execution (internal/iss)
//
// The full list lives in the README's "Observability" section.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Uint64 }

// Inc adds one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d. No-op on a nil counter.
func (c *Counter) Add(d uint64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Load returns the current count (0 for a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric (set, not accumulated).
type Gauge struct{ v atomic.Uint64 }

// Set stores v. No-op on a nil gauge.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d. No-op on a nil gauge.
func (g *Gauge) Add(d uint64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() uint64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the number of histogram buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// Bucket 0 counts zeros.
const NumBuckets = 65

// Histogram accumulates value observations into power-of-two buckets —
// coarse but constant-time and allocation-free, which is what a
// per-cycle latency probe needs.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// Observe records one value. No-op on a nil histogram.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 for nil).
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Start begins a wall-clock span whose duration (in nanoseconds) is
// observed into the histogram when End is called. On a nil histogram
// the returned span is inert and End is free — timing is skipped
// entirely, not merely discarded.
func (h *Histogram) Start() Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, t0: time.Now()}
}

// Span is an in-flight duration measurement; see Histogram.Start.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// End records the span's elapsed nanoseconds.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(uint64(time.Since(s.t0)))
}

// Bucket is one non-empty histogram bucket in a snapshot. Le is the
// largest value the bucket can hold.
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Max     uint64   `json:"max"` // upper bound of the highest occupied bucket
	Buckets []Bucket `json:"buckets,omitempty"`
}

// snapshot copies the histogram's occupied buckets.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < NumBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := bucketLe(i)
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
		s.Max = le
	}
	return s
}

// bucketLe returns the inclusive upper bound of bucket i.
func bucketLe(i int) uint64 {
	if i == 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// SpanEvent is one recorded co-simulation interaction.
type SpanEvent struct {
	Name  string        `json:"name"`
	Start time.Time     `json:"start"`
	Dur   time.Duration `json:"dur_ns"`
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use and safe on a nil receiver (lookups return nil metrics,
// Snapshot returns a zero snapshot), so a disabled registry needs no
// guards at the instrumentation sites.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter   // guarded by mu
	gauges   map[string]*Gauge     // guarded by mu
	hists    map[string]*Histogram // guarded by mu

	evMu    sync.Mutex
	events  []SpanEvent // ring buffer, evCap entries; guarded by evMu
	evNext  int         // guarded by evMu
	evCap   int         // guarded by evMu
	evTotal uint64      // guarded by evMu
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a valid no-op counter) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil when r is nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// EnableSpanEvents turns on the bounded span-event ring (n most recent
// events are kept). Disabled by default; RecordSpan is a no-op until
// enabled. No-op on a nil registry.
func (r *Registry) EnableSpanEvents(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.evMu.Lock()
	r.events = make([]SpanEvent, n)
	r.evCap = n
	r.evNext = 0
	r.evTotal = 0
	r.evMu.Unlock()
}

// RecordSpan appends a span event to the ring. No-op when the registry
// is nil or the ring is disabled.
func (r *Registry) RecordSpan(name string, start time.Time, dur time.Duration) {
	if r == nil {
		return
	}
	r.evMu.Lock()
	if r.evCap > 0 {
		r.events[r.evNext] = SpanEvent{Name: name, Start: start, Dur: dur}
		r.evNext = (r.evNext + 1) % r.evCap
		r.evTotal++
	}
	r.evMu.Unlock()
}

// SpanEvents returns the retained events, oldest first, plus the total
// number ever recorded (the ring may have dropped older ones).
func (r *Registry) SpanEvents() ([]SpanEvent, uint64) {
	if r == nil {
		return nil, 0
	}
	r.evMu.Lock()
	defer r.evMu.Unlock()
	if r.evTotal == 0 {
		return nil, 0
	}
	n := int(r.evTotal)
	if n > r.evCap {
		n = r.evCap
	}
	out := make([]SpanEvent, 0, n)
	start := (r.evNext - n + r.evCap) % r.evCap
	for i := 0; i < n; i++ {
		out = append(out, r.events[(start+i)%r.evCap])
	}
	return out, r.evTotal
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]uint64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. Safe on nil (returns a
// zero snapshot).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]uint64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Load()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Flatten folds the snapshot into a single name->value map: counters
// and gauges verbatim, histograms as name.count / name.sum / name.max.
// This is the form harness.Metrics and the benchtab JSON report embed.
func (s Snapshot) Flatten() map[string]uint64 {
	out := make(map[string]uint64, len(s.Counters)+len(s.Gauges)+3*len(s.Histograms))
	for name, v := range s.Counters {
		out[name] = v
	}
	for name, v := range s.Gauges {
		out[name] = v
	}
	for name, h := range s.Histograms {
		out[name+".count"] = h.Count
		out[name+".sum"] = h.Sum
		out[name+".max"] = h.Max
	}
	return out
}
