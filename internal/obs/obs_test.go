package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a") != c {
		t.Fatal("Counter is not idempotent by name")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(3)
	if got := g.Load(); got != 10 {
		t.Fatalf("gauge = %d, want 10", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1010 {
		t.Fatalf("sum = %d, want 1010", h.Sum())
	}
	s := h.snapshot()
	// Buckets: 0 -> le 0; 1 -> le 1; 2,3 -> le 3; 4 -> le 7; 1000 -> le 1023.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %v", s.Buckets, want)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
	if s.Max != 1023 {
		t.Fatalf("max = %d, want 1023", s.Max)
	}
}

func TestNilRegistryAndMetricsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Load() != 0 {
		t.Fatal("nil counter should load 0")
	}
	g := r.Gauge("x")
	g.Set(9)
	if g.Load() != 0 {
		t.Fatal("nil gauge should load 0")
	}
	h := r.Histogram("x")
	h.Observe(42)
	h.Start().End()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram should stay empty")
	}
	r.RecordSpan("x", time.Time{}, 0)
	r.EnableSpanEvents(4)
	if ev, total := r.SpanEvents(); ev != nil || total != 0 {
		t.Fatal("nil registry should have no span events")
	}
	s := r.Snapshot()
	if len(s.Flatten()) != 0 {
		t.Fatal("nil registry snapshot should flatten empty")
	}
}

func TestDisabledHotPathZeroAllocs(t *testing.T) {
	var r *Registry
	c := r.Counter("hot")
	h := r.Histogram("hot_ns")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(2)
		h.Observe(17)
		sp := h.Start()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled metrics allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestEnabledHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	h := r.Histogram("hot_ns")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(17)
	})
	if allocs != 0 {
		t.Fatalf("enabled metrics allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestSpanObservesElapsed(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("span_ns")
	sp := h.Start()
	time.Sleep(time.Millisecond)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span count = %d, want 1", h.Count())
	}
	if h.Sum() < uint64(time.Millisecond) {
		t.Fatalf("span sum = %dns, want >= 1ms", h.Sum())
	}
}

func TestSpanEventRing(t *testing.T) {
	r := NewRegistry()
	r.EnableSpanEvents(3)
	base := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		r.RecordSpan("ev", base.Add(time.Duration(i)), time.Duration(i))
	}
	ev, total := r.SpanEvents()
	if total != 5 {
		t.Fatalf("total = %d, want 5", total)
	}
	if len(ev) != 3 {
		t.Fatalf("retained = %d, want 3", len(ev))
	}
	for i, e := range ev {
		if want := time.Duration(i + 2); e.Dur != want {
			t.Fatalf("event %d dur = %v, want %v (oldest-first order)", i, e.Dur, want)
		}
	}
}

func TestSnapshotFlattenAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("driver.messages").Add(10)
	r.Gauge("sim.cycles").Set(42)
	r.Histogram("sim.cycle_hook_ns").Observe(100)
	s := r.Snapshot()
	flat := s.Flatten()
	if flat["driver.messages"] != 10 || flat["sim.cycles"] != 42 {
		t.Fatalf("flatten = %v", flat)
	}
	if flat["sim.cycle_hook_ns.count"] != 1 || flat["sim.cycle_hook_ns.sum"] != 100 {
		t.Fatalf("flatten histogram = %v", flat)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(uint64(j))
				r.Gauge("g").Set(uint64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Load(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
