package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"cosim/internal/harness"
	"cosim/internal/obs"
)

// State is a session's position in its lifecycle. Transitions are
// strictly forward: Queued → Running → one of the three terminal
// states, or Queued → Canceled directly when the cancel lands before a
// worker picks the session up.
type State string

const (
	// StateQueued: admitted, waiting for a worker slot.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the co-simulation.
	StateRunning State = "running"
	// StateDone: the run completed and Metrics carries its measurements.
	StateDone State = "done"
	// StateFailed: the run returned an error (including a blown
	// per-session wall deadline).
	StateFailed State = "failed"
	// StateCanceled: the client (or server shutdown) canceled the
	// session before it completed.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Session is one admitted co-simulation request. All mutable fields are
// guarded by mu; the obs registry inside is internally synchronized, so
// the metrics endpoint snapshots it live while the run is executing.
type Session struct {
	ID   string
	Spec harness.Spec

	// reg is the run's live observability registry, created at
	// admission so metrics streaming sees counters move mid-run.
	reg *obs.Registry

	// ctx is canceled by Cancel (client DELETE) or server Close; the
	// worker derives its per-session deadline context from it.
	ctx    context.Context
	cancel context.CancelFunc

	// done is closed on entry to any terminal state.
	done chan struct{}

	mu       sync.Mutex
	state    State
	err      string
	created  time.Time
	started  time.Time
	finished time.Time
	metrics  *harness.Metrics
}

// newSession builds an admitted session in StateQueued.
func newSession(id string, spec harness.Spec, parent context.Context) *Session {
	ctx, cancel := context.WithCancel(parent)
	return &Session{
		ID:      id,
		Spec:    spec,
		reg:     obs.NewRegistry(),
		ctx:     ctx,
		cancel:  cancel,
		done:    make(chan struct{}),
		state:   StateQueued,
		created: time.Now(),
	}
}

// begin moves Queued → Running; it reports false when the session was
// canceled while still queued, in which case the worker must skip it.
func (s *Session) begin() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != StateQueued {
		return false
	}
	if s.ctx.Err() != nil {
		s.finishLocked(StateCanceled, s.ctx.Err().Error())
		return false
	}
	s.state = StateRunning
	s.started = time.Now()
	return true
}

// finish records the run's outcome: a nil error lands in StateDone with
// the result's metrics, context.Canceled in StateCanceled, anything
// else (including a blown deadline) in StateFailed.
func (s *Session) finish(res *harness.Result, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state.Terminal() {
		return
	}
	switch {
	case err == nil:
		m := res.Metrics()
		s.metrics = &m
		s.finishLocked(StateDone, "")
	case errors.Is(err, context.Canceled):
		s.finishLocked(StateCanceled, err.Error())
	default:
		s.finishLocked(StateFailed, err.Error())
	}
}

// finishLocked enters a terminal state. Callers hold mu.
func (s *Session) finishLocked(st State, errMsg string) {
	s.state = st
	s.err = errMsg
	s.finished = time.Now()
	close(s.done)
}

// Cancel requests cooperative cancellation: a queued session is skipped
// by its worker, a running one tears down at its next simulation-cycle
// boundary.
func (s *Session) Cancel() { s.cancel() }

// Done returns a channel closed when the session reaches a terminal
// state.
func (s *Session) Done() <-chan struct{} { return s.done }

// State returns the current lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Status is the wire view of a session, served by GET
// /v1/sessions/{id} and embedded in list responses.
type Status struct {
	ID    string       `json:"id"`
	State State        `json:"state"`
	Spec  harness.Spec `json:"spec"`
	Error string       `json:"error,omitempty"`

	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`

	// QueueWaitNS is admission-to-start; WallNS is start-to-finish (or
	// start-to-now while running).
	QueueWaitNS int64 `json:"queue_wait_ns,omitempty"`
	WallNS      int64 `json:"wall_ns,omitempty"`

	// Metrics carries the run's full measurement record once the
	// session is done.
	Metrics *harness.Metrics `json:"metrics,omitempty"`
}

// Status snapshots the session.
func (s *Session) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		ID:        s.ID,
		State:     s.state,
		Spec:      s.Spec,
		Error:     s.err,
		CreatedAt: s.created,
		Metrics:   s.metrics,
	}
	if !s.started.IsZero() {
		t := s.started
		st.StartedAt = &t
		st.QueueWaitNS = s.started.Sub(s.created).Nanoseconds()
		switch {
		case !s.finished.IsZero():
			st.WallNS = s.finished.Sub(s.started).Nanoseconds()
		default:
			st.WallNS = time.Since(s.started).Nanoseconds()
		}
	}
	if !s.finished.IsZero() {
		t := s.finished
		st.FinishedAt = &t
	}
	return st
}

// CountersSnapshot flattens the session's live obs registry: the body
// of one metrics-stream frame.
func (s *Session) CountersSnapshot() map[string]uint64 {
	return s.reg.Snapshot().Flatten()
}
