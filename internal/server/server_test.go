package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosim/internal/server"
	"cosim/internal/sim"
)

// client wraps an httptest server with the session API verbs.
type client struct {
	t  *testing.T
	ts *httptest.Server
}

// newService starts a server + HTTP front and registers teardown.
func newService(t *testing.T, cfg server.Config) (*server.Server, *client) {
	t.Helper()
	srv := server.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return srv, &client{t: t, ts: ts}
}

// post submits a raw JSON spec and returns the response code, headers
// and decoded body.
func (c *client) post(body string) (int, http.Header, map[string]any) {
	c.t.Helper()
	resp, err := http.Post(c.ts.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		c.t.Fatalf("decoding POST response: %v", err)
	}
	return resp.StatusCode, resp.Header, out
}

// get fetches one session's status.
func (c *client) get(id string) (int, server.Status) {
	c.t.Helper()
	resp, err := http.Get(c.ts.URL + "/v1/sessions/" + id)
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil && resp.StatusCode == http.StatusOK {
		c.t.Fatalf("decoding GET response: %v", err)
	}
	return resp.StatusCode, st
}

// cancel DELETEs one session.
func (c *client) cancel(id string) int {
	c.t.Helper()
	req, err := http.NewRequest(http.MethodDelete, c.ts.URL+"/v1/sessions/"+id, nil)
	if err != nil {
		c.t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		c.t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// await polls a session until it reaches a terminal state.
func (c *client) await(id string, within time.Duration) server.Status {
	c.t.Helper()
	deadline := time.Now().Add(within)
	for {
		code, st := c.get(id)
		if code != http.StatusOK {
			c.t.Fatalf("GET %s = %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			c.t.Fatalf("session %s still %s after %v", id, st.State, within)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// idOf extracts the session id from a POST response body.
func idOf(t *testing.T, body map[string]any) string {
	t.Helper()
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("POST response carries no session id: %v", body)
	}
	return id
}

// shortSpec is a fast driver-kernel run over the in-process ring.
const shortSpec = `{"scheme": "driver-kernel", "transport": "ring", "sim_time": "200us"}`

// longSpec simulates long enough that the test can observe and cancel
// it mid-run.
const longSpec = `{"scheme": "driver-kernel", "transport": "ring", "sim_time": "500ms"}`

func TestSessionLifecycle(t *testing.T) {
	_, c := newService(t, server.Config{Workers: 2})

	code, hdr, body := c.post(shortSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202 (%v)", code, body)
	}
	id := idOf(t, body)
	if loc := hdr.Get("Location"); loc != "/v1/sessions/"+id {
		t.Errorf("Location = %q", loc)
	}

	st := c.await(id, 30*time.Second)
	if st.State != server.StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if st.Metrics == nil || st.Metrics.GuestInstr == 0 {
		t.Fatalf("done session carries no metrics: %+v", st.Metrics)
	}
	if st.Metrics.Scheme != "Driver-Kernel" || st.Metrics.Transport != "ring" {
		t.Errorf("metrics identity %s/%s, want Driver-Kernel/ring", st.Metrics.Scheme, st.Metrics.Transport)
	}
	if st.StartedAt == nil || st.FinishedAt == nil || st.WallNS <= 0 {
		t.Errorf("lifecycle timestamps incomplete: %+v", st)
	}
	if _, ok := st.Metrics.Counters["driver.messages"]; !ok {
		t.Errorf("driver.messages missing from session counters")
	}
}

func TestSessionMetricsStream(t *testing.T) {
	_, c := newService(t, server.Config{Workers: 1})
	_, _, body := c.post(shortSpec)
	id := idOf(t, body)
	c.await(id, 30*time.Second)

	resp, err := http.Get(c.ts.URL + "/v1/sessions/" + id + "/metrics?interval=10ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var frame struct {
		ID       string            `json:"id"`
		State    server.State      `json:"state"`
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&frame); err != nil {
		t.Fatal(err)
	}
	if frame.ID != id || !frame.State.Terminal() {
		t.Fatalf("stream frame %+v", frame)
	}
	if frame.Counters["iss.instructions"] == 0 {
		t.Errorf("final metrics frame has zero iss.instructions")
	}
}

// TestCancelFreesWorkerSlot is the mid-run cancellation contract: a
// DELETE tears the run down cooperatively and releases its worker, so
// a follow-up session on a 1-worker pool still completes.
func TestCancelFreesWorkerSlot(t *testing.T) {
	_, c := newService(t, server.Config{Workers: 1, QueueDepth: 4})

	_, _, body := c.post(longSpec)
	id := idOf(t, body)

	// Wait until it is actually running so the cancel lands mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, st := c.get(id)
		if st.State == server.StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("session never started running: %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := c.cancel(id); code != http.StatusAccepted {
		t.Fatalf("DELETE = %d, want 202", code)
	}
	st := c.await(id, 30*time.Second)
	if st.State != server.StateCanceled {
		t.Fatalf("state after cancel = %s (%s), want canceled", st.State, st.Error)
	}
	if !strings.Contains(st.Error, "context canceled") {
		t.Errorf("canceled session error = %q, want context.Canceled text", st.Error)
	}

	// The slot must be free: a short session completes on the same
	// single worker.
	_, _, body = c.post(shortSpec)
	st = c.await(idOf(t, body), 30*time.Second)
	if st.State != server.StateDone {
		t.Fatalf("follow-up session = %s (%s), want done", st.State, st.Error)
	}
}

// TestAdmissionControl429 fills the pool and queue, expects 429 +
// Retry-After on the next request, then drains the pool and expects the
// retried request to succeed.
func TestAdmissionControl429(t *testing.T) {
	_, c := newService(t, server.Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})

	// Fill: one running + one queued long session.
	_, _, b1 := c.post(longSpec)
	id1 := idOf(t, b1)
	_, _, b2 := c.post(longSpec)
	id2 := idOf(t, b2)

	code, hdr, body := c.post(shortSpec)
	if code != http.StatusTooManyRequests {
		t.Fatalf("POST over capacity = %d (%v), want 429", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}

	// Drain the pool by canceling both in-flight sessions; the retried
	// request must then be admitted and complete.
	c.cancel(id1)
	c.cancel(id2)
	c.await(id1, 30*time.Second)
	c.await(id2, 30*time.Second)

	code, _, body = c.post(shortSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST after drain = %d (%v), want 202", code, body)
	}
	if st := c.await(idOf(t, body), 30*time.Second); st.State != server.StateDone {
		t.Fatalf("retried session = %s (%s), want done", st.State, st.Error)
	}
}

// TestQuotaRejections: a request that could never legally run is a 400,
// not a 429 — retrying it is pointless.
func TestQuotaRejections(t *testing.T) {
	_, c := newService(t, server.Config{Workers: 1, MaxCPUs: 2, MaxSimTime: 10 * sim.MS})

	for _, tc := range []struct{ name, spec, wantErr string }{
		{"cpus", `{"scheme": "driver-kernel", "cpus": 3}`, "exceeds per-session quota"},
		{"simtime", `{"scheme": "driver-kernel", "sim_time": "50ms"}`, "exceeds per-session quota"},
		{"scheme", `{"scheme": "quantum"}`, "unknown scheme"},
		{"transport", `{"scheme": "driver-kernel", "transport": "carrier-pigeon"}`, "unknown transport"},
		{"unknown-field", `{"scheme": "driver-kernel", "simtime": "1ms"}`, "unknown field"},
		{"multi-cpu-wrapper", `{"scheme": "gdb-wrapper", "cpus": 2}`, "single CPU"},
	} {
		code, _, body := c.post(tc.spec)
		if code != http.StatusBadRequest {
			t.Errorf("%s: POST = %d (%v), want 400", tc.name, code, body)
			continue
		}
		if msg, _ := body["error"].(string); !strings.Contains(msg, tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, msg, tc.wantErr)
		}
	}

	// Defaulted fields must still run under quota.
	code, _, body := c.post(`{"scheme": "driver-kernel", "transport": "ring", "sim_time": "200us"}`)
	if code != http.StatusAccepted {
		t.Fatalf("in-quota POST = %d (%v)", code, body)
	}
	c.await(idOf(t, body), 30*time.Second)
}

// TestDrainCompletesInFlight is the SIGTERM contract: draining refuses
// new sessions with 503 while queued and running ones finish.
func TestDrainCompletesInFlight(t *testing.T) {
	srv, c := newService(t, server.Config{Workers: 2, QueueDepth: 4})

	var ids []string
	for i := 0; i < 3; i++ {
		_, _, body := c.post(shortSpec)
		ids = append(ids, idOf(t, body))
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		drained <- srv.Drain(ctx)
	}()

	// Draining state must refuse new work with 503 + Retry-After.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(time.Millisecond)
	}
	code, hdr, _ := c.post(shortSpec)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After")
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Every admitted session finished rather than being dropped.
	for _, id := range ids {
		if st := c.await(id, time.Second); st.State != server.StateDone {
			t.Errorf("session %s = %s (%s) after drain, want done", id, st.State, st.Error)
		}
	}
	// healthz now reports draining.
	resp, err := http.Get(c.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while drained = %d, want 503", resp.StatusCode)
	}
}

// TestSessionWallDeadline: a blown per-session deadline fails only that
// session and frees the worker.
func TestSessionWallDeadline(t *testing.T) {
	_, c := newService(t, server.Config{Workers: 1, SessionWall: 50 * time.Millisecond})

	_, _, body := c.post(longSpec)
	st := c.await(idOf(t, body), 30*time.Second)
	if st.State != server.StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadline-bound session = %s (%s), want failed/deadline", st.State, st.Error)
	}

	// Pool still healthy afterwards.
	_, _, body = c.post(shortSpec)
	if st := c.await(idOf(t, body), 30*time.Second); st.State != server.StateDone {
		t.Fatalf("follow-up = %s (%s), want done", st.State, st.Error)
	}
}

// TestVarz sanity-checks the server-wide counters after a mixed load.
func TestVarz(t *testing.T) {
	_, c := newService(t, server.Config{Workers: 2, QueueDepth: 8})
	_, _, body := c.post(shortSpec)
	c.await(idOf(t, body), 30*time.Second)
	c.post(`{"scheme": "bogus"}`) // one 400

	resp, err := http.Get(c.ts.URL + "/varz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"sessions_accepted":     1,
		"sessions_completed":    1,
		"sessions_bad_spec_400": 1,
		"workers":               2,
	} {
		if got, _ := v[key].(float64); got != want {
			t.Errorf("varz %s = %v, want %v (varz: %v)", key, v[key], want, v)
		}
	}
}

// TestConcurrentSessionsAllComplete drives a burst of concurrent POSTs
// (the ≥64-session acceptance load) through a small bounded pool with a
// deep queue: every session must be admitted and complete.
func TestConcurrentSessionsAllComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("64-session load; skipped in -short mode")
	}
	const sessions = 64
	_, c := newService(t, server.Config{Workers: 4, QueueDepth: sessions})

	specs := []string{
		`{"scheme": "driver-kernel", "transport": "ring", "sim_time": "100us"}`,
		`{"scheme": "gdb-kernel", "transport": "pipe", "sim_time": "100us"}`,
	}
	ids := make(chan string, sessions)
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		go func(i int) {
			resp, err := http.Post(c.ts.URL+"/v1/sessions", "application/json",
				bytes.NewReader([]byte(specs[i%len(specs)])))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var body map[string]any
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("POST %d = %d (%v)", i, resp.StatusCode, body)
				return
			}
			id, _ := body["id"].(string)
			ids <- id
		}(i)
	}
	for i := 0; i < sessions; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case id := <-ids:
			if st := c.await(id, 120*time.Second); st.State != server.StateDone {
				t.Fatalf("session %s = %s (%s), want done", id, st.State, st.Error)
			}
		}
	}
}
