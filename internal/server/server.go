// Package server is the cosimd session service: co-simulation as a
// shared, admission-controlled resource. It turns harness.RunContext
// into a multi-session daemon — each HTTP request admits one
// wire-serializable harness.Spec onto a bounded worker pool, and every
// session gets identity, live metrics, cooperative cancellation and a
// deadline of its own.
//
// Robustness properties, in order of importance:
//
//   - Admission control: at most Workers sessions run and QueueDepth
//     wait; beyond that POST /v1/sessions answers 429 with a
//     Retry-After hint instead of queueing unboundedly.
//   - Per-session quotas: a request asking for more CPUs or simulated
//     time than the server allows is rejected with 400 up front — it
//     could never legally run, so retrying is pointless.
//   - Per-session deadlines: SessionWall bounds each run's wall-clock
//     time through a context deadline; a blown deadline fails only that
//     session and frees its worker slot.
//   - Graceful drain: Drain refuses new sessions (503) while letting
//     queued and running ones finish, which is what SIGTERM triggers in
//     cmd/cosimd.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cosim/internal/harness"
	"cosim/internal/sim"
)

// Config sizes the service. The zero value is runnable: every field
// has a default applied by New.
type Config struct {
	// Workers is the session worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many admitted sessions may wait for a
	// worker (default 2×Workers). Zero means "default"; use NoQueue to
	// disable queueing entirely.
	QueueDepth int
	// NoQueue admits a session only when a worker is idle: a busy pool
	// answers 429 immediately.
	NoQueue bool

	// MaxCPUs caps a single session's guest-CPU request (default 8).
	MaxCPUs int
	// MaxSimTime caps a single session's simulated duration
	// (default 1 simulated second).
	MaxSimTime sim.Time
	// SessionWall bounds each run's wall-clock time; zero means no
	// deadline.
	SessionWall time.Duration

	// RetryAfter is the hint returned with 429/503 responses
	// (default 1s).
	RetryAfter time.Duration

	// Retain caps how many terminal sessions stay queryable; the oldest
	// are evicted beyond it (default 1024). Running and queued sessions
	// are never evicted.
	Retain int
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.NoQueue {
		c.QueueDepth = 0
	}
	if c.MaxCPUs <= 0 {
		c.MaxCPUs = 8
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = sim.SEC
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Retain <= 0 {
		c.Retain = 1024
	}
	return c
}

// Server runs co-simulation sessions on a bounded worker pool behind an
// HTTP/JSON API. Create with New, expose with Handler, stop with Drain
// (graceful) or Close (cancels in-flight runs).
type Server struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	sessions map[string]*Session
	order    []string // insertion order, for listing and retention
	nextID   uint64
	draining bool
	queue    chan *Session

	wg sync.WaitGroup // session workers

	// varz counters.
	accepted  atomic.Uint64
	rejected  atomic.Uint64 // 429s (pool saturated)
	refused   atomic.Uint64 // 503s (draining)
	badSpecs  atomic.Uint64 // 400s (invalid or over-quota specs)
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	running   atomic.Int64
}

// New starts a server's worker pool. The caller owns serving its
// Handler and must end the pool with Drain or Close.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		baseCtx:    ctx,
		baseCancel: cancel,
		sessions:   make(map[string]*Session),
		queue:      make(chan *Session, cfg.QueueDepth),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// worker executes queued sessions until the queue closes at drain.
func (s *Server) worker() {
	defer s.wg.Done()
	for sess := range s.queue {
		s.runSession(sess)
	}
}

// runSession executes one session end to end on the calling worker.
func (s *Server) runSession(sess *Session) {
	if !sess.begin() {
		s.canceled.Add(1)
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	ctx := sess.ctx
	cancel := context.CancelFunc(func() {})
	if s.cfg.SessionWall > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.SessionWall)
	}
	defer cancel()

	p, err := sess.Spec.Params()
	if err != nil {
		// Validated at admission; only a spec raced past Validate can
		// land here.
		sess.finish(nil, err)
		s.failed.Add(1)
		return
	}
	p.Obs = sess.reg
	res, err := harness.RunContext(ctx, p)
	sess.finish(res, err)
	switch sess.State() {
	case StateDone:
		s.completed.Add(1)
	case StateCanceled:
		s.canceled.Add(1)
	default:
		s.failed.Add(1)
	}
}

// Drain stops admitting sessions and waits until every queued and
// running session reaches a terminal state (the SIGTERM path). It
// returns ctx.Err() if the context expires first; the pool keeps
// draining in the background regardless. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		// POST holds mu for its queue send, so nothing can race this
		// close.
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close cancels every in-flight session and waits for the pool to
// stop: the fast teardown path for tests and fatal shutdowns.
func (s *Server) Close() error {
	s.baseCancel()
	return s.Drain(context.Background())
}

// Draining reports whether the server has stopped admitting sessions.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Session looks a session up by id.
func (s *Server) Session(id string) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// submit admits a spec: quota check, registration, queue send. It
// returns the session or an admission error.
var (
	errDraining  = errors.New("server draining")
	errSaturated = errors.New("worker pool and queue full")
)

func (s *Server) submit(spec harness.Spec) (*Session, error) {
	p, err := spec.Params()
	if err != nil {
		return nil, err
	}
	// Quota check against the defaulted params so zero fields count as
	// what they will actually run as (an empty sim_time is the 1ms
	// default, not zero).
	eff := p.WithDefaults()
	if eff.CPUs > s.cfg.MaxCPUs {
		return nil, fmt.Errorf("spec: %d cpus exceeds per-session quota %d", eff.CPUs, s.cfg.MaxCPUs)
	}
	if eff.SimTime.After(s.cfg.MaxSimTime) {
		return nil, fmt.Errorf("spec: sim_time %v exceeds per-session quota %v", eff.SimTime, s.cfg.MaxSimTime)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, errDraining
	}
	s.nextID++
	id := fmt.Sprintf("s-%06d", s.nextID)
	sess := newSession(id, spec, s.baseCtx)
	select {
	case s.queue <- sess:
	default:
		sess.cancel()
		return nil, errSaturated
	}
	s.sessions[id] = sess
	s.order = append(s.order, id)
	s.evictLocked()
	s.accepted.Add(1)
	return sess, nil
}

// evictLocked drops the oldest terminal sessions beyond the retention
// cap. Callers hold mu.
func (s *Server) evictLocked() {
	excess := len(s.sessions) - s.cfg.Retain
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		sess := s.sessions[id]
		if excess > 0 && sess != nil && sess.State().Terminal() {
			delete(s.sessions, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// Handler returns the service's HTTP API:
//
//	POST   /v1/sessions              admit a harness.Spec, 202 + Status
//	GET    /v1/sessions              list sessions (newest last)
//	GET    /v1/sessions/{id}         one session's Status
//	DELETE /v1/sessions/{id}         cancel, 202 + Status
//	GET    /v1/sessions/{id}/metrics stream live obs counters (NDJSON)
//	GET    /healthz                  liveness + drain state
//	GET    /varz                     server-wide counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/sessions/{id}/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /varz", s.handleVarz)
	return mux
}

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) retryAfterSecs() string {
	secs := int(s.cfg.RetryAfter.Round(time.Second) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.badSpecs.Add(1)
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	spec, err := harness.DecodeSpec(body)
	if err != nil {
		s.badSpecs.Add(1)
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	sess, err := s.submit(spec)
	switch {
	case errors.Is(err, errDraining):
		s.refused.Add(1)
		w.Header().Set("Retry-After", s.retryAfterSecs())
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server draining: not admitting new sessions"})
		return
	case errors.Is(err, errSaturated):
		s.rejected.Add(1)
		w.Header().Set("Retry-After", s.retryAfterSecs())
		writeJSON(w, http.StatusTooManyRequests, apiError{
			Error: fmt.Sprintf("session capacity exhausted (%d running + %d queued); retry later",
				s.cfg.Workers, s.cfg.QueueDepth),
		})
		return
	case err != nil:
		s.badSpecs.Add(1)
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	w.Header().Set("Location", "/v1/sessions/"+sess.ID)
	writeJSON(w, http.StatusAccepted, sess.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	statuses := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		if sess, ok := s.sessions[id]; ok {
			statuses = append(statuses, sess.Status())
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Sessions []Status `json:"sessions"`
	}{statuses})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such session"})
		return
	}
	writeJSON(w, http.StatusOK, sess.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such session"})
		return
	}
	sess.Cancel()
	writeJSON(w, http.StatusAccepted, sess.Status())
}

// metricsFrame is one line of the NDJSON metrics stream.
type metricsFrame struct {
	ID       string            `json:"id"`
	State    State             `json:"state"`
	Counters map[string]uint64 `json:"counters"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.Session(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such session"})
		return
	}
	interval := 250 * time.Millisecond
	if arg := r.URL.Query().Get("interval"); arg != "" {
		d, err := time.ParseDuration(arg)
		if err != nil || d <= 0 {
			writeJSON(w, http.StatusBadRequest, apiError{Error: "bad interval"})
			return
		}
		interval = d
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func() bool {
		frame := metricsFrame{ID: sess.ID, State: sess.State(), Counters: sess.CountersSnapshot()}
		if err := enc.Encode(frame); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if !emit() {
			return
		}
		if sess.State().Terminal() {
			return
		}
		select {
		case <-sess.Done():
			// One final frame with the terminal state and counters.
			emit()
			return
		case <-ticker.C:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.Draining() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
	}{status})
}

// varz is the server-wide counter snapshot.
type varz struct {
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	QueueLen   int    `json:"queue_len"`
	Running    int64  `json:"running"`
	Draining   bool   `json:"draining"`
	Accepted   uint64 `json:"sessions_accepted"`
	Rejected   uint64 `json:"sessions_rejected_429"`
	Refused    uint64 `json:"sessions_refused_503"`
	BadSpecs   uint64 `json:"sessions_bad_spec_400"`
	Completed  uint64 `json:"sessions_completed"`
	Failed     uint64 `json:"sessions_failed"`
	Canceled   uint64 `json:"sessions_canceled"`
	Goroutines int    `json:"goroutines"`
}

func (s *Server) handleVarz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, varz{
		Workers:    s.cfg.Workers,
		QueueDepth: s.cfg.QueueDepth,
		QueueLen:   len(s.queue),
		Running:    s.running.Load(),
		Draining:   s.Draining(),
		Accepted:   s.accepted.Load(),
		Rejected:   s.rejected.Load(),
		Refused:    s.refused.Load(),
		BadSpecs:   s.badSpecs.Load(),
		Completed:  s.completed.Load(),
		Failed:     s.failed.Load(),
		Canceled:   s.canceled.Load(),
		Goroutines: runtime.NumGoroutine(),
	})
}
