package server_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"cosim/internal/server"
)

// settledGoroutines samples the goroutine count until it holds still,
// so goroutines from earlier tests that are still winding down don't
// pollute the baseline (the harness leak_test.go pattern).
func settledGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(2 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m == n {
			return n
		}
		n = m
	}
	return n
}

// waitGoroutineBaseline polls until the live goroutine count is back at
// (or below) the pre-run baseline, failing with a full stack dump if it
// never gets there: those stacks are the leaked goroutines.
func waitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			dumped := runtime.Stack(buf, true)
			t.Fatalf("%d goroutines alive 10s after shutdown (baseline %d) — session teardown leaked:\n%s",
				n, baseline, buf[:dumped])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerLeaksNoGoroutines is the acceptance check for co-simulation
// as a service: 64 concurrent session requests through a bounded
// 4-worker pool — spanning schemes, transports, mid-run client cancels
// and admission rejections — must leave no goroutine behind once every
// session is terminal and the server is closed. Each session owns a
// kernel, guest runners and transport endpoints; a leak in any per-
// session teardown path shows up here as surviving stacks.
func TestServerLeaksNoGoroutines(t *testing.T) {
	if testing.Short() {
		t.Skip("64-session load; skipped in -short mode")
	}
	baseline := settledGoroutines()

	srv := server.New(server.Config{Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())

	specs := []string{
		`{"scheme": "driver-kernel", "transport": "ring", "sim_time": "100us"}`,
		`{"scheme": "driver-kernel", "transport": "ring", "sim_time": "100us", "cpus": 2}`,
		`{"scheme": "gdb-kernel", "transport": "pipe", "sim_time": "100us"}`,
		`{"scheme": "gdb-wrapper", "transport": "pipe", "sim_time": "100us"}`,
		// Long enough that the cancel below lands mid-run or queued.
		`{"scheme": "driver-kernel", "transport": "ring", "sim_time": "100ms"}`,
	}

	const sessions = 64
	type posted struct {
		id       string
		canceled bool
	}
	results := make(chan posted, sessions)
	for i := 0; i < sessions; i++ {
		go func(i int) {
			spec := specs[i%len(specs)]
			var out posted
			defer func() { results <- out }()
			resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader([]byte(spec)))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var body struct {
				ID string `json:"id"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Error(err)
				return
			}
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("POST %d = %d", i, resp.StatusCode)
				return
			}
			out.id = body.ID
			// Every fifth session is the long one: cancel it client-side
			// so the teardown-under-cancel path is part of the load.
			if i%len(specs) == len(specs)-1 {
				req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+body.ID, nil)
				if dresp, err := http.DefaultClient.Do(req); err == nil {
					dresp.Body.Close()
					out.canceled = true
				}
			}
		}(i)
	}

	// Wait for every session to reach a terminal state.
	deadline := time.Now().Add(120 * time.Second)
	for i := 0; i < sessions; i++ {
		p := <-results
		if p.id == "" {
			continue
		}
		for {
			sess, ok := srv.Session(p.id)
			if !ok {
				t.Fatalf("session %s evicted while load still runs", p.id)
			}
			st := sess.State()
			if st.Terminal() {
				if !p.canceled && st != server.StateDone {
					t.Errorf("session %s = %s, want done", p.id, st)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("session %s still %s at deadline", p.id, st)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	ts.Close()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutineBaseline(t, baseline)
}
