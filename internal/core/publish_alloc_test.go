package core

import (
	"fmt"
	"testing"

	"cosim/internal/obs"
)

// publishFixture builds a DriverKernel with n CPUs and pre-resolved
// metric handles, without sockets or a kernel — Publish touches neither.
func publishFixture(n int, reg *obs.Registry) *DriverKernel {
	d := &DriverKernel{obsReg: reg}
	d.obs.init(reg)
	for i := 0; i < n; i++ {
		c := &driverCPU{d: d, id: i, label: fmt.Sprintf("driver-kernel cpu%d", i)}
		c.obs.init(reg, i)
		c.pendingReads = make([]*binding, i%3) // non-trivial gauge values
		d.cpus = append(d.cpus, c)
	}
	return d
}

// TestPublishAllocFree pins the gauge-hoisting contract: publishing the
// pending-read backlogs into the registry the scheme was attached with
// must not build metric names or touch the heap — the handles were
// resolved once at construction.
func TestPublishAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs allocation counts")
	}
	reg := obs.NewRegistry()
	d := publishFixture(4, reg)

	allocs := testing.AllocsPerRun(200, func() { d.Publish(reg) })
	if allocs > 0 {
		t.Errorf("Publish into the attach registry allocates %.1f/op, want 0", allocs)
	}

	snap := reg.Snapshot().Flatten()
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("driver.cpu%d.pending_reads", i)
		if got, want := snap[name], uint64(i%3); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap["driver.pending_reads"]; got != uint64(0+1+2+0) {
		t.Errorf("driver.pending_reads = %d, want 3", got)
	}
}

// TestPublishForeignRegistry covers the fallback: a registry other than
// the attach-time one still receives the same gauge set, looked up by
// the precomputed names.
func TestPublishForeignRegistry(t *testing.T) {
	d := publishFixture(2, obs.NewRegistry())
	foreign := obs.NewRegistry()
	d.Publish(foreign)
	snap := foreign.Snapshot().Flatten()
	for _, name := range []string{"driver.cpu0.pending_reads", "driver.cpu1.pending_reads", "driver.pending_reads"} {
		if _, ok := snap[name]; !ok {
			t.Errorf("foreign registry missing %s after Publish", name)
		}
	}
}

func BenchmarkDriverKernelPublish(b *testing.B) {
	reg := obs.NewRegistry()
	d := publishFixture(8, reg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Publish(reg)
	}
}
