package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cosim/internal/dev"
	"cosim/internal/obs"
	"cosim/internal/sim"
	"cosim/internal/transport"
)

// DriverKernel is the paper's second proposed scheme (§4): the guest OS
// device driver masters the co-simulation, exchanging binary READ/WRITE
// messages with the SystemC kernel over the data socket (port 4444 in
// the paper) while the kernel notifies interrupts over the interrupt
// socket (port 4445). The scheduler modifications of Figure 5 map to a
// begin-of-cycle hook (drain the data sockets) and an end-of-cycle hook
// (send queued interrupt notifications).
//
// The scheme scales to a multi-processor SoC: each guest CPU owns one
// data/interrupt channel pair (the paper's 4444/4445 sockets,
// parameterized per CPU), messages are tagged with the CPU id at
// channel ingress, and the drain/flush hooks route READ/WRITE/INTERRUPT
// traffic to the per-CPU state. The N guests stay in deterministic
// lock-step because the conservative skew wait is applied per CPU: the
// kernel never advances more than SkewBound past the minimum
// outstanding target time across all CPUs (see DESIGN.md §5.6).
type DriverKernel struct {
	k *sim.Kernel

	period      sim.Time
	skewBound   sim.Time
	waitTimeout time.Duration // how long a conservative wait may block

	// quantum, when non-zero, temporally decouples the scheme: the
	// conservative per-cycle synchronization (flush + skew-bounded wait)
	// is thinned out to quantum boundaries, plus early-sync "breaks" on
	// externally visible activity (a non-DMI port access arriving as a
	// READ/WRITE message, an interrupt delivery, a DMI window
	// revocation). Message ingestion and CallAt delivery stay per-cycle,
	// so the functional outcome is quantum-invariant — only the coupling
	// cadence (and therefore the wall clock) changes. nextQuantum is the
	// next boundary; kernel context only.
	quantum     sim.Time
	nextQuantum sim.Time

	// dmi grants each CPU's bridge device direct windows into the
	// side-effect-free backing memory of its bound ports; coalesce packs
	// the kernel->guest messages accumulated between flush points into
	// one BATCH envelope per transport write. Both are attach-time
	// choices (DriverKernelOptions) — the hot paths branch on plain
	// bools, never on configuration lookups.
	dmi      bool
	coalesce bool

	mu     sync.Mutex
	inbox  []Message     // CPU-tagged, drained by the begin-of-cycle hook; guarded by mu
	notify chan struct{} // signalled by a reader when messages arrive

	cpus []*driverCPU

	journal *Journal

	err    error
	stats  Stats
	obs    driverObs
	obsReg *obs.Registry // registry the obs handles were resolved against
}

// driverCPU is the per-processor half of the scheme: one channel pair,
// one port namespace, one timeline anchor, one interrupt queue.
type driverCPU struct {
	d     *DriverKernel
	id    int
	label string // "driver-kernel cpu0", the error/metric prefix

	dataW io.Writer
	irqW  io.Writer

	// dataF/irqF are the channels' optional batched-I/O handles,
	// resolved once at attach time so the per-cycle flush is two nil
	// checks, not two type assertions. Nil for unbuffered transports.
	dataF transport.Flusher
	irqF  transport.Flusher

	// Port routing: the guest names ports without knowing which CPU it
	// is ("pkt", "csum"); the channel prefix maps those names onto this
	// CPU's kernel ports ("cpu1.pkt"). Keys are guest-visible names.
	prefix      string
	inPorts     map[string]*sim.IssIn
	outBindings map[string]*binding

	// Guest-cycle -> simulated-time anchor (32-bit wrap-aware).
	syncCycles uint32
	syncTime   sim.Time

	// Conservative synchronization, as in gdbEngine: when skewBound is
	// non-zero, the kernel waits (wall-clock) for this guest's next
	// message rather than racing simulated time past an outstanding
	// request (a READ reply or a notified interrupt).
	outstanding bool
	outSince    sim.Time

	pendingReads []*binding
	intQueue     []uint32
	irqBuf       [4]byte // scratch for interrupt notifications (kernel context only)

	rdErr  error // reader goroutine's terminal error; guarded by d.mu
	hadMsg bool  // batch scratch: a message from this CPU was drained

	// syncBreak marks an early-sync cause observed for this CPU in
	// quantum mode (message arrival, served READ, interrupt delivery,
	// window revocation); consumed by quantumSync. Kernel context only.
	syncBreak bool

	// DMI state: the windows granted over this CPU's bound ports, the
	// guest-activity flag its window hits raise (the lock-step wait
	// treats window activity exactly like an arriving message), and a
	// kernel-context scratch for draining staged writes.
	grants    []*dmiGrant
	dmiActive atomic.Bool
	stagedBuf []dev.StagedWrite

	// outBatch accumulates kernel->guest DATA messages between flush
	// points when coalescing is on; flushChannels writes it as one
	// BATCH envelope. Kernel context only.
	outBatch []Message

	obs driverCPUObs
}

// dmiGrant couples one granted window to the kernel-side state it
// shadows: a read grant mirrors an iss_out binding (b != nil), a write
// grant stages stores for an iss_in port (in != nil). The last* fields
// remember the window counters already flushed into the obs registry,
// so reconciliation adds deltas instead of re-counting.
type dmiGrant struct {
	w    *dev.Window
	b    *binding   // read grant: the iss_out binding served by the window
	in   *sim.IssIn // write grant: the iss_in port staged stores deliver to
	port string     // guest-visible port name (journal/labels)

	lastHits, lastMisses, lastRevs uint64
}

// driverObs holds the aggregate Driver-Kernel hot-path metrics,
// pre-resolved at attach time; all fields are nil (no-ops) without a
// registry.
type driverObs struct {
	polls        *obs.Counter
	messages     *obs.Counter
	writes       *obs.Counter
	reads        *obs.Counter
	replies      *obs.Counter
	interrupts   *obs.Counter
	skewWaits    *obs.Counter
	skewWaitNS   *obs.Histogram
	pendingReads *obs.Gauge

	dmiHits        *obs.Counter
	dmiMisses      *obs.Counter
	dmiRevocations *obs.Counter

	quantumSyncs  *obs.Counter
	quantumBreaks *obs.Counter
}

func (o *driverObs) init(r *obs.Registry) {
	o.polls = r.Counter("driver.polls")
	o.messages = r.Counter("driver.messages")
	o.writes = r.Counter("driver.msgs_write")
	o.reads = r.Counter("driver.msgs_read")
	o.replies = r.Counter("driver.data_replies")
	o.interrupts = r.Counter("driver.interrupts")
	o.skewWaits = r.Counter("driver.skew_waits")
	o.skewWaitNS = r.Histogram("driver.skew_wait_ns")
	o.pendingReads = r.Gauge("driver.pending_reads")
	o.dmiHits = r.Counter("driver.dmi_hits")
	o.dmiMisses = r.Counter("driver.dmi_misses")
	o.dmiRevocations = r.Counter("driver.dmi_revocations")
	o.quantumSyncs = r.Counter("driver.quantum_syncs")
	o.quantumBreaks = r.Counter("driver.quantum_breaks")
}

// driverCPUObs is the per-CPU counter set ("driver.cpu0.messages", ...)
// published next to the aggregates so multi-CPU runs show per-processor
// traffic, skew-wait stalls and interrupt fan-out in `benchtab -json`.
type driverCPUObs struct {
	messages   *obs.Counter
	interrupts *obs.Counter
	skewWaits  *obs.Counter

	dmiHits        *obs.Counter
	dmiMisses      *obs.Counter
	dmiRevocations *obs.Counter

	quantumSyncs  *obs.Counter
	quantumBreaks *obs.Counter

	// pendingReads and its name are resolved once here so Publish — a
	// per-flush hot path — never rebuilds "driver.cpuN.*" strings. The
	// name is kept for Publish calls against a foreign registry.
	pendingReads     *obs.Gauge
	pendingReadsName string
}

func (o *driverCPUObs) init(r *obs.Registry, id int) {
	o.messages = r.Counter(fmt.Sprintf("driver.cpu%d.messages", id))
	o.interrupts = r.Counter(fmt.Sprintf("driver.cpu%d.interrupts", id))
	o.skewWaits = r.Counter(fmt.Sprintf("driver.cpu%d.skew_waits", id))
	o.dmiHits = r.Counter(fmt.Sprintf("driver.cpu%d.dmi_hits", id))
	o.dmiMisses = r.Counter(fmt.Sprintf("driver.cpu%d.dmi_misses", id))
	o.dmiRevocations = r.Counter(fmt.Sprintf("driver.cpu%d.dmi_revocations", id))
	o.quantumSyncs = r.Counter(fmt.Sprintf("driver.cpu%d.quantum_syncs", id))
	o.quantumBreaks = r.Counter(fmt.Sprintf("driver.cpu%d.quantum_breaks", id))
	o.pendingReadsName = fmt.Sprintf("driver.cpu%d.pending_reads", id)
	o.pendingReads = r.Gauge(o.pendingReadsName)
}

// DriverChannel is one CPU's co-simulation transport: the kernel-side
// ends of its data and interrupt sockets, plus the iss ports its driver
// may address. Ports are declared with guest-visible names; Prefix maps
// them onto the kernel's port registry (a multi-CPU run prefixes each
// CPU's ports "cpu0.", "cpu1.", ... so N identical guest images can
// attach to one kernel without colliding).
type DriverChannel struct {
	Data   io.ReadWriter
	IRQ    io.Writer
	Prefix string
	Ports  []VarBinding

	// DMI, when non-nil and DriverKernelOptions.DMI is set, is the grant
	// surface of this CPU's guest-side bridge device (its Platform or
	// CosimDev): the kernel grants it a direct window per bound port so
	// guest accesses to side-effect-free port memory bypass the message
	// protocol. Channels without a granter simply never hit.
	DMI dev.DMIGranter
}

// DriverKernelOptions configures the scheme.
type DriverKernelOptions struct {
	// CommonOptions carries the timing, skew, journal and observability
	// configuration shared by all schemes. When CPUs is non-zero it must
	// match the channel count.
	CommonOptions
	// Ports declares the iss_in (ToSystemC) and iss_out (ToISS) ports
	// the driver may address. Var/breakpoint fields are unused here —
	// the driver names ports explicitly in its messages. Only consulted
	// by the single-CPU NewDriverKernel constructor; multi-CPU callers
	// declare ports per channel.
	Ports []VarBinding

	// DMI grants direct memory windows over each channel's bound ports
	// (requires the channel to carry a granter). Off by default.
	DMI bool
	// Coalesce packs the kernel->guest messages accumulated between
	// flush points into versioned BATCH envelopes, one transport write
	// per flush. The guest-side device must unwrap envelopes (its read
	// pump is switched to frame mode by the harness). Off by default.
	Coalesce bool
}

// NewDriverKernel attaches the scheme with a single CPU. data and irq
// are the kernel-side ends of the two sockets.
func NewDriverKernel(k *sim.Kernel, data io.ReadWriter, irq io.Writer, opts DriverKernelOptions) (*DriverKernel, error) {
	chans := []DriverChannel{{Data: data, IRQ: irq, Ports: opts.Ports}}
	opts.Ports = nil
	return NewDriverKernelMulti(k, chans, opts)
}

// NewDriverKernelMulti attaches the scheme with one channel pair per
// CPU — the multi-processor SoC configuration of the paper's title.
// Channel i serves CPU i; interrupt routing and message drains address
// CPUs by that index.
func NewDriverKernelMulti(k *sim.Kernel, channels []DriverChannel, opts DriverKernelOptions) (*DriverKernel, error) {
	if len(channels) == 0 {
		return nil, errors.New("driver-kernel: at least one CPU channel is required")
	}
	if opts.CPUs != 0 && opts.CPUs != len(channels) {
		return nil, fmt.Errorf("driver-kernel: CPUs = %d but %d channels given", opts.CPUs, len(channels))
	}
	d := &DriverKernel{
		k:           k,
		period:      opts.CPUPeriod,
		skewBound:   opts.SkewBound,
		quantum:     opts.Quantum,
		waitTimeout: time.Second,
		journal:     opts.Journal,
		notify:      make(chan struct{}, 1),
		obsReg:      opts.Obs,
		dmi:         opts.DMI,
		coalesce:    opts.Coalesce,
	}
	d.obs.init(opts.Obs)
	for i, ch := range channels {
		c := &driverCPU{
			d:           d,
			id:          i,
			label:       fmt.Sprintf("driver-kernel cpu%d", i),
			dataW:       ch.Data,
			irqW:        ch.IRQ,
			prefix:      ch.Prefix,
			inPorts:     make(map[string]*sim.IssIn),
			outBindings: make(map[string]*binding),
		}
		if f, ok := ch.Data.(transport.Flusher); ok {
			c.dataF = f
		}
		if f, ok := ch.IRQ.(transport.Flusher); ok {
			c.irqF = f
		}
		c.obs.init(opts.Obs, i)
		for _, s := range ch.Ports {
			name := s.Port // guest-visible name
			full := ch.Prefix + name
			if s.Dir == ToSystemC {
				p, ok := k.IssInPort(full)
				if !ok {
					p = k.NewIssIn(full)
				}
				c.inPorts[name] = p
			} else {
				p, ok := k.IssOutPort(full)
				if !ok {
					p = k.NewIssOut(full)
				}
				spec := s
				spec.Port = full // journal entries carry the kernel name
				b := &binding{spec: spec, outPort: p}
				c.outBindings[name] = b
			}
		}
		if opts.DMI && ch.DMI != nil {
			c.grantWindows(ch.DMI)
		}
		d.cpus = append(d.cpus, c)

		// Reader goroutine: decode frames from this CPU's data socket
		// into the shared inbox, tagged with the CPU id so the drain
		// hook routes them to the right per-CPU state. ReadMessages
		// accepts plain frames and BATCH envelopes alike, so the reader
		// is coalescing-agnostic.
		go func(c *driverCPU, r io.Reader) {
			br := bufio.NewReader(r)
			var batch []Message
			for {
				var err error
				batch, err = ReadMessages(br, batch[:0])
				if err != nil {
					d.mu.Lock()
					c.rdErr = err
					d.mu.Unlock()
					// Wake a conservative wait so it can surface the
					// error instead of sleeping out its timeout.
					select {
					case d.notify <- struct{}{}:
					default:
					}
					return
				}
				d.mu.Lock()
				for i := range batch {
					batch[i].CPU = c.id
					d.inbox = append(d.inbox, batch[i])
				}
				d.mu.Unlock()
				select {
				case d.notify <- struct{}{}:
				default:
				}
			}
		}(c, ch.Data)

		// Teardown ownership: the kernel's finalizers close both channel
		// ends via io.Closer — never via a net.Conn assertion, which
		// would silently skip non-socket channels (the ring transport, a
		// custom io.ReadWriter) and leak their reader goroutines forever.
		if cl, ok := ch.Data.(io.Closer); ok {
			k.AddFinalizer(func() { _ = cl.Close() })
		}
		if cl, ok := ch.IRQ.(io.Closer); ok {
			k.AddFinalizer(func() { _ = cl.Close() })
		}
	}

	k.AddCycleHook(d.drain)
	k.AddEndCycleHook(d.flushInterrupts)
	return d, nil
}

// Stats returns co-simulation activity counters, summed over CPUs.
func (d *DriverKernel) Stats() Stats { return d.stats }

// Err returns the first co-simulation error, if any.
func (d *DriverKernel) Err() error { return d.err }

// Name returns the scheme's canonical name.
func (d *DriverKernel) Name() string { return "driver-kernel" }

// CPUCount returns the number of guest CPUs the scheme drives.
func (d *DriverKernel) CPUCount() int { return len(d.cpus) }

// Detach implements Scheme. The guest runners are owned by the caller
// (they predate the scheme attachment), so there is nothing to quiesce
// — but every granted DMI window is revoked here (the kernel-side
// explicit revocation rule): late guest accesses fall back to the
// message path, the port mirror hooks are removed, and the final
// window counter deltas (including the revocations themselves) are
// flushed into the obs registry before the caller snapshots it.
func (d *DriverKernel) Detach() {
	for _, c := range d.cpus {
		for _, g := range c.grants {
			g.w.Revoke()
			if g.b != nil {
				g.b.outPort.SetOnWrite(nil)
			}
			d.flushGrantCounters(c, g)
		}
	}
}

// Publish implements Scheme: the Driver-Kernel protocol has no
// transport-level totals beyond its live counters, so only the pending
// read backlogs are published (aggregate plus per CPU). The gauge
// handles are resolved at attach time, so publishing into the attach
// registry allocates nothing; a foreign registry falls back to a lookup
// by the precomputed per-CPU name.
func (d *DriverKernel) Publish(r *obs.Registry) {
	total := 0
	for _, c := range d.cpus {
		// Unflushed DMI window deltas land in the attach registry's
		// handles, so an end-of-run snapshot never misses the tail.
		for _, g := range c.grants {
			d.flushGrantCounters(c, g)
		}
		n := len(c.pendingReads)
		total += n
		g := c.obs.pendingReads
		if r != d.obsReg {
			g = r.Gauge(c.obs.pendingReadsName)
		}
		g.Set(uint64(n))
	}
	if r == d.obsReg {
		d.obs.pendingReads.Set(uint64(total))
	} else {
		r.Gauge("driver.pending_reads").Set(uint64(total))
	}
}

// RaiseInterrupt queues an interrupt for CPU 0's guest driver — the
// single-processor entry point; see RaiseInterruptCPU.
func (d *DriverKernel) RaiseInterrupt(id uint32) { d.RaiseInterruptCPU(0, id) }

// RaiseInterruptCPU queues an interrupt for the given CPU's guest
// driver; it is sent on that CPU's interrupt socket at the end of the
// current simulation cycle, per Figure 5 ("before moving to the
// following simulation cycle ... the interrupt is notified to the
// driver"). Models call this from their processes. An out-of-range CPU
// id is recorded as a scheme error.
func (d *DriverKernel) RaiseInterruptCPU(cpu int, id uint32) {
	if cpu < 0 || cpu >= len(d.cpus) {
		if d.err == nil {
			d.err = fmt.Errorf("driver-kernel: interrupt %d raised for unknown cpu%d (%d CPUs attached)", id, cpu, len(d.cpus))
		}
		return
	}
	c := d.cpus[cpu]
	c.intQueue = append(c.intQueue, id)
}

// errf builds a scheme error carrying this CPU's label ("driver-kernel
// cpu0: ...") so multi-CPU failures identify the offending channel.
func (c *driverCPU) errf(format string, args ...any) error {
	return fmt.Errorf("%s: "+format, append([]any{any(c.label)}, args...)...)
}

// grantWindows hands the guest-side bridge one direct window per bound
// port: iss_out bindings get read windows kept coherent by the port's
// write hook, iss_in ports get write windows whose staged stores the
// drain hook reconciles. Every bound port is a protocol data port —
// side-effect-free backing memory — so all of them are DMI-eligible;
// side-effectful device registers never reach this path because they
// are not ports.
// Grant order is sorted by port name: grants append to c.grants and
// register windows with the guest bridge, so map-iteration order would
// leak into reconcile order and the journal.
func (c *driverCPU) grantWindows(granter dev.DMIGranter) {
	outNames := make([]string, 0, len(c.outBindings))
	for name := range c.outBindings {
		outNames = append(outNames, name)
	}
	sort.Strings(outNames)
	for _, name := range outNames {
		b := c.outBindings[name]
		w := dev.NewWindow(name, c.notifyActivity)
		w.Update(b.outPort.Bytes(), b.outPort.Writes())
		b.outPort.SetOnWrite(w.Update)
		granter.GrantDMIWindow(name, w)
		c.grants = append(c.grants, &dmiGrant{w: w, b: b, port: name})
	}
	inNames := make([]string, 0, len(c.inPorts))
	for name := range c.inPorts {
		inNames = append(inNames, name)
	}
	sort.Strings(inNames)
	for _, name := range inNames {
		w := dev.NewWindow(name, c.notifyActivity)
		granter.GrantDMIWindow(name, w)
		c.grants = append(c.grants, &dmiGrant{w: w, in: c.inPorts[name], port: name})
	}
}

// notifyActivity is the window activity callback, invoked from the
// guest thread after every window hit. It marks the CPU for
// reconciliation and wakes a conservative wait, exactly as an arriving
// protocol message would — window hits skip the codec and transport,
// not the lock-step coupling.
func (c *driverCPU) notifyActivity() {
	c.dmiActive.Store(true)
	select {
	case c.d.notify <- struct{}{}:
	default:
	}
}

// reconcileWindows folds guest window activity back into the lock-step
// state at the begin-of-cycle hook: a consumed read generation advances
// the CPU's timeline anchor and marks the guest busy (it is computing
// on the data, like after a DATA reply); staged writes are delivered to
// their iss_in ports at their cycle-stamped target times and settle the
// guest's outstanding work (like a WRITE message). Window counter
// deltas are flushed into the obs registry on the way.
func (d *DriverKernel) reconcileWindows(k *sim.Kernel) {
	if !d.dmi {
		return
	}
	for _, c := range d.cpus {
		if !c.dmiActive.Swap(false) {
			continue
		}
		for _, g := range c.grants {
			if g.b != nil {
				if seq, cycles, ok := g.w.TakeReadAck(); ok {
					t := c.targetTime(cycles)
					c.advanceSync(cycles, t)
					if seq > g.b.consumed {
						g.b.consumed = seq
						g.b.outPort.Consumed()
					}
					d.stats.Transfers++
					c.outstanding = true
					c.outSince = k.Now()
					d.journal.Record(JournalEntry{
						Time: k.Now(), Scheme: "driver-kernel", Dir: "sc->iss",
						Port: c.prefix + g.port, Bytes: len(g.b.outPort.Bytes()), Cycles: uint64(cycles),
					})
				}
			}
			if g.in != nil {
				c.stagedBuf = g.w.TakeStaged(c.stagedBuf[:0])
				for _, sw := range c.stagedBuf {
					t := c.targetTime(sw.Cycles)
					port, data := g.in, sw.Data
					k.CallAt(t, func() { port.Deliver(data) })
					c.advanceSync(sw.Cycles, t)
					d.stats.Transfers++
					c.outstanding = false
					d.journal.Record(JournalEntry{
						Time: t, Scheme: "driver-kernel", Dir: "iss->sc",
						Port: c.prefix + g.port, Bytes: len(sw.Data), Cycles: uint64(sw.Cycles),
					})
				}
			}
			d.flushGrantCounters(c, g)
		}
	}
}

// flushGrantCounters adds the window's counter growth since the last
// flush into the aggregate and per-CPU obs counters.
func (d *DriverKernel) flushGrantCounters(c *driverCPU, g *dmiGrant) {
	hits, misses, revs := g.w.Counters()
	if n := hits - g.lastHits; n > 0 {
		d.obs.dmiHits.Add(n)
		c.obs.dmiHits.Add(n)
		d.stats.DMIHits += n
	}
	if n := misses - g.lastMisses; n > 0 {
		d.obs.dmiMisses.Add(n)
		c.obs.dmiMisses.Add(n)
		d.stats.DMIMisses += n
	}
	if n := revs - g.lastRevs; n > 0 {
		d.obs.dmiRevocations.Add(n)
		c.obs.dmiRevocations.Add(n)
		if d.quantum > 0 {
			// A revoked window forces the guest back onto the message
			// path; re-synchronize early instead of running ahead.
			c.syncBreak = true
		}
	}
	g.lastHits, g.lastMisses, g.lastRevs = hits, misses, revs
}

// targetTime maps a guest cycle stamp to simulated time (32-bit
// wrap-aware).
func (c *driverCPU) targetTime(cycles uint32) sim.Time {
	if c.d.period == 0 {
		return c.d.k.Now()
	}
	delta := cycles - c.syncCycles // wraps correctly in uint32
	return c.syncTime.AddCycles(uint64(delta), c.d.period)
}

func (c *driverCPU) advanceSync(cycles uint32, t sim.Time) {
	c.syncCycles = cycles
	if t.After(c.d.k.Now()) {
		c.syncTime = t
	} else {
		c.syncTime = c.d.k.Now()
	}
}

// quantumSync decides whether this cycle runs the conservative
// synchronization (channel flush + skew-bounded lock-step wait). In
// lock-step mode (quantum == 0) every cycle syncs. In quantum mode the
// sync happens at quantum boundaries — counted as quantum_syncs, once
// per CPU so the aggregate reconciles with the per-CPU sums — or when
// an early-sync break was observed: a guest's non-DMI port access
// (its READ/WRITE message is in the inbox, or a pending READ was just
// served), an interrupt delivery, or a DMI window revocation. Breaks
// are counted per causing CPU as quantum_breaks.
func (d *DriverKernel) quantumSync(k *sim.Kernel) bool {
	if d.quantum == 0 {
		return true
	}
	if now := k.Now(); !now.Before(d.nextQuantum) {
		d.nextQuantum = now.Add(d.quantum)
		for _, c := range d.cpus {
			c.syncBreak = false // the boundary subsumes any pending break
			d.stats.QuantumSyncs++
			d.obs.quantumSyncs.Inc()
			c.obs.quantumSyncs.Inc()
		}
		return true
	}
	// A message sitting in the inbox is a guest port access the drain is
	// about to serve; sync so the lock-step invariants hold around it.
	d.mu.Lock()
	for _, m := range d.inbox {
		d.cpus[m.CPU].syncBreak = true
	}
	d.mu.Unlock()
	due := false
	for _, c := range d.cpus {
		if !c.syncBreak {
			continue
		}
		c.syncBreak = false
		due = true
		d.stats.QuantumBreaks++
		d.obs.quantumBreaks.Inc()
		c.obs.quantumBreaks.Inc()
	}
	return due
}

// inboxReadyFor reports whether the drain would make progress for this
// CPU: a message from it is queued, unreconciled window activity is
// pending, or its reader hit a terminal error.
func (d *DriverKernel) inboxReadyFor(c *driverCPU) bool {
	if c.dmiActive.Load() {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c.rdErr != nil {
		return true
	}
	for _, m := range d.inbox {
		if m.CPU == c.id {
			return true
		}
	}
	return false
}

// lockstepWait enforces the multi-CPU advance rule: the kernel may only
// run up to the minimum target time across CPUs, i.e. no CPU's
// outstanding request is left more than skewBound behind the kernel
// clock. Each lagging CPU stalls the cycle (wall-clock) until its next
// message arrives or the wait times out.
func (d *DriverKernel) lockstepWait(k *sim.Kernel) {
	if d.skewBound == 0 {
		return
	}
	for _, c := range d.cpus {
		if !c.outstanding || k.Now().Before(c.outSince.Add(d.skewBound)) {
			continue
		}
		// A token may be sitting in d.notify from messages that were
		// already drained in a prior cycle; waiting on it would return
		// immediately without new data and silently void the skew bound.
		// Discard it, then re-check the inbox: if the token was in fact
		// fresh, its message is already in the inbox and no wait happens.
		select {
		case <-d.notify:
		default:
		}
		if d.inboxReadyFor(c) {
			continue
		}
		d.obs.skewWaits.Inc()
		c.obs.skewWaits.Inc()
		sp := d.obs.skewWaitNS.Start()
		// The stall-escape timeout is deliberately wall-clock: it only
		// fires when a guest stops responding, i.e. when determinism is
		// already lost, and it must not depend on simulated time that
		// is no longer advancing.
		//cosimvet:ignore detsafe stall-escape timeout is intentionally host wall-clock
		timer := time.NewTimer(d.waitTimeout)
	wait:
		for {
			select {
			case <-d.notify:
				// The token may belong to another CPU's message; only
				// this CPU's traffic (or reader error) ends its wait.
				if d.inboxReadyFor(c) {
					break wait
				}
			case <-timer.C:
				// Give up on this request; don't stall the simulation.
				c.outstanding = false
				break wait
			}
		}
		timer.Stop()
		sp.End()
	}
}

// flushChannels pushes batched frames out of the channels at the three
// hook boundaries — after the reply loops, before a conservative wait,
// after the interrupt fan-out — so a buffered DATA reply or interrupt
// is never left unsent past a point the guest may block on it. With
// coalescing on, each CPU's accumulated replies go out here as one
// BATCH envelope per flush; Flusher-capable channel ends are then
// flushed as before.
func (d *DriverKernel) flushChannels() {
	for _, c := range d.cpus {
		if len(c.outBatch) > 0 {
			n := len(c.outBatch)
			if err := WriteBatch(c.dataW, c.outBatch); err != nil && d.err == nil {
				d.err = c.errf("data socket batch: %w", err)
			}
			if n > 1 {
				transport.RecordBatch(c.dataW, n)
			}
			for i := range c.outBatch {
				c.outBatch[i] = Message{}
			}
			c.outBatch = c.outBatch[:0]
		}
		if c.dataF != nil {
			if err := c.dataF.Flush(); err != nil && d.err == nil {
				d.err = c.errf("data socket flush: %w", err)
			}
		}
		if c.irqF != nil {
			if err := c.irqF.Flush(); err != nil && d.err == nil {
				d.err = c.errf("interrupt socket flush: %w", err)
			}
		}
	}
}

// releaseFrom hands the pooled payload buffers of msgs[i:] back to the
// codec pool. Error exits from the drain loop call it so a poisoned
// batch does not leak the buffers of the messages it never processed.
// Releasing by index keeps the pooled pointer and the visible slice
// element in sync (releasing a copy would leave msgs[i].Data dangling).
func releaseFrom(msgs []Message, i int) {
	for ; i < len(msgs); i++ {
		msgs[i].Release()
	}
}

// drain is the begin-of-cycle hook: handle every message that arrived
// since the last cycle (Figure 5: "checks the content of the message to
// be possibly exchanged with the driver"), routed to the per-CPU state
// by the CPU tag stamped at channel ingress.
func (d *DriverKernel) drain(k *sim.Kernel) {
	if d.err != nil {
		// The scheme is already poisoned but the readers may still be
		// decoding; keep the inbox from pinning pooled buffers forever.
		d.mu.Lock()
		stale := d.inbox
		d.inbox = nil
		d.mu.Unlock()
		releaseFrom(stale, 0)
		return
	}
	d.stats.Polls++
	d.obs.polls.Inc()

	// Fold in window activity that arrived since the last cycle, before
	// serving pending READs: a staged write may be what a pending READ's
	// model is waiting on.
	d.reconcileWindows(k)

	// Serve pending READs whose port has been written since.
	for _, c := range d.cpus {
		if len(c.pendingReads) == 0 {
			continue
		}
		rest := c.pendingReads[:0]
		for _, b := range c.pendingReads {
			if b.outPort.Writes() > b.consumed {
				d.reply(c, b)
			} else {
				rest = append(rest, b)
			}
		}
		c.pendingReads = rest
	}

	// Conservative sync: wait for lagging guests instead of letting
	// simulated time race past an outstanding request. Batched replies
	// must be on the wire first, or the wait would stall on a guest
	// that is itself waiting for an unflushed frame. Under temporal
	// decoupling the sync runs only at quantum boundaries and breaks;
	// mid-quantum cycles let the kernel run ahead of the guests.
	if d.quantumSync(k) {
		d.flushChannels()
		d.lockstepWait(k)
	}

	d.mu.Lock()
	msgs := d.inbox
	d.inbox = nil
	d.mu.Unlock()

	// A conservative wait may have ended on window activity rather than
	// a message; reconcile again so that activity lands this cycle.
	d.reconcileWindows(k)

	for _, c := range d.cpus {
		c.hadMsg = false
	}
	for _, m := range msgs {
		d.cpus[m.CPU].hadMsg = true
	}
	// Surface read errors once a CPU's stream is dry. A clean EOF is a
	// normal guest shutdown; an unexpected EOF mid-message (or any
	// wrapped error) is a real connection failure.
	for _, c := range d.cpus {
		d.mu.Lock()
		err := c.rdErr
		d.mu.Unlock()
		if err == nil || c.hadMsg || d.err != nil {
			continue
		}
		if !errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			d.err = c.errf("data socket: %w", err)
		}
	}

	for i := range msgs {
		m := msgs[i]
		c := d.cpus[m.CPU]
		d.stats.Messages++
		d.obs.messages.Inc()
		c.obs.messages.Inc()
		switch m.Type {
		case MsgWrite:
			d.obs.writes.Inc()
			port, ok := c.inPorts[m.Port]
			if !ok {
				d.err = c.errf("WRITE to unknown port %q", m.Port)
				releaseFrom(msgs, i)
				return
			}
			t := c.targetTime(m.Cycles)
			msg := m
			k.CallAt(t, func() {
				port.Deliver(msg.Data)
				msg.Release() // Deliver copied; recycle the codec buffer
			})
			c.advanceSync(m.Cycles, t)
			d.stats.Transfers++
			c.outstanding = false
			d.journal.Record(JournalEntry{
				Time: t, Scheme: "driver-kernel", Dir: "iss->sc",
				Port: c.prefix + m.Port, Bytes: len(m.Data), Cycles: uint64(m.Cycles),
			})
		case MsgRead:
			d.obs.reads.Inc()
			b, ok := c.outBindings[m.Port]
			if !ok {
				d.err = c.errf("READ of unknown port %q", m.Port)
				releaseFrom(msgs, i)
				return
			}
			c.outstanding = false // the guest is alive and asking
			c.advanceSync(m.Cycles, c.targetTime(m.Cycles))
			if b.outPort.Writes() > b.consumed {
				d.reply(c, b)
			} else {
				c.pendingReads = append(c.pendingReads, b)
			}
			// A READ carries no payload, but a malformed frame might;
			// releasing here keeps the lifecycle uniform per message.
			msgs[i].Release()
		default:
			d.err = c.errf("unexpected message type %d from driver", m.Type)
			releaseFrom(msgs, i)
			return
		}
	}
	d.flushChannels()
}

// reply sends the current iss_out port value as a DATA message followed
// by a DATA_READY interrupt so a WFI-parked guest wakes up. With
// coalescing on, the DATA frame joins the CPU's accumulating batch
// (written as one envelope at the next flush point, still within this
// hook) and the wakeup rides the end-of-cycle interrupt fan-out — safe
// because the guest's RX-available level interrupt fires on the data
// itself.
func (d *DriverKernel) reply(c *driverCPU, b *binding) {
	if d.coalesce {
		// The payload references the port's buffer; flushChannels runs
		// before any kernel process can overwrite it.
		c.outBatch = append(c.outBatch, Message{Type: MsgData, Data: b.outPort.Bytes()})
		c.intQueue = append(c.intQueue, IntDataReady)
	} else {
		if err := WriteMessage(c.dataW, Message{Type: MsgData, Data: b.outPort.Bytes()}); err != nil {
			d.err = c.errf("data socket (port %q): %w", b.spec.Port, err)
			return
		}
	}
	b.consumed = b.outPort.Writes()
	b.outPort.Consumed()
	if d.dmi {
		// The message path consumed this generation; keep the read
		// window from re-serving it as fresh.
		for _, g := range c.grants {
			if g.b == b {
				g.w.SyncConsumed(b.consumed)
				break
			}
		}
	}
	d.stats.Transfers++
	d.obs.replies.Inc()
	c.outstanding = true
	c.outSince = d.k.Now()
	if d.quantum > 0 {
		// A served READ is a non-DMI port access: synchronize around it
		// rather than letting the kernel run ahead of the reply.
		c.syncBreak = true
	}
	d.journal.Record(JournalEntry{
		Time: d.k.Now(), Scheme: "driver-kernel", Dir: "sc->iss",
		Port: b.spec.Port, Bytes: len(b.outPort.Bytes()),
	})
	// The guest idled while waiting; re-anchor its timeline.
	c.syncTime = d.k.Now()
	if d.coalesce {
		return
	}
	if err := c.sendInterrupt(IntDataReady); err != nil {
		d.err = err
	}
}

// sendInterrupt writes one 4-byte notification through this CPU's
// reusable scratch buffer. Only called from kernel context (cycle
// hooks), so the scratch needs no locking.
func (c *driverCPU) sendInterrupt(id uint32) error {
	binary.LittleEndian.PutUint32(c.irqBuf[:], id)
	if _, err := c.irqW.Write(c.irqBuf[:]); err != nil {
		return c.errf("interrupt socket (int %d): %w", id, err)
	}
	return nil
}

// flushInterrupts is the end-of-cycle hook of Figure 5, fanned out per
// CPU: each queued interrupt goes to its own CPU's interrupt socket,
// never to a neighbour's.
func (d *DriverKernel) flushInterrupts(k *sim.Kernel) {
	if d.err != nil {
		return
	}
	for _, c := range d.cpus {
		if len(c.intQueue) == 0 {
			continue
		}
		if d.coalesce && len(c.intQueue) > 1 {
			// One transport write for the whole queue: the guest-side
			// pump reads 4-byte ids in a loop, so a concatenation of
			// notifications needs no envelope.
			buf := make([]byte, 0, 4*len(c.intQueue))
			for _, id := range c.intQueue {
				buf = binary.LittleEndian.AppendUint32(buf, id)
			}
			if _, err := c.irqW.Write(buf); err != nil {
				d.err = c.errf("interrupt socket (batch of %d): %w", len(c.intQueue), err)
				return
			}
			transport.RecordBatch(c.irqW, len(c.intQueue))
			n := uint64(len(c.intQueue))
			d.stats.IntsNotified += n
			d.obs.interrupts.Add(n)
			c.obs.interrupts.Add(n)
		} else {
			for _, id := range c.intQueue {
				if err := c.sendInterrupt(id); err != nil {
					d.err = err
					return
				}
				d.stats.IntsNotified++
				d.obs.interrupts.Inc()
				c.obs.interrupts.Inc()
			}
		}
		c.intQueue = c.intQueue[:0]
		// An interrupt usually solicits guest work; treat it as a
		// request for skew-bound purposes.
		c.outstanding = true
		c.outSince = k.Now()
		if d.quantum > 0 {
			// Interrupt delivery ends this CPU's decoupled stretch: the
			// next drain must re-synchronize with the guest's reaction.
			c.syncBreak = true
		}
	}
	d.flushChannels()
}
