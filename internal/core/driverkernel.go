package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"cosim/internal/obs"
	"cosim/internal/sim"
)

// DriverKernel is the paper's second proposed scheme (§4): the guest OS
// device driver masters the co-simulation, exchanging binary READ/WRITE
// messages with the SystemC kernel over the data socket (port 4444 in
// the paper) while the kernel notifies interrupts over the interrupt
// socket (port 4445). The scheduler modifications of Figure 5 map to a
// begin-of-cycle hook (drain the data socket) and an end-of-cycle hook
// (send queued interrupt notifications).
type DriverKernel struct {
	k *sim.Kernel

	dataW io.Writer
	irqW  io.Writer

	period     sim.Time
	syncCycles uint32
	syncTime   sim.Time

	mu     sync.Mutex
	inbox  []Message
	rdErr  error
	notify chan struct{} // signalled by the reader when messages arrive

	// Conservative synchronization, as in gdbEngine: when skewBound is
	// non-zero, the kernel waits (wall-clock) for the guest's next
	// message rather than racing simulated time past an outstanding
	// request (a READ reply or a notified interrupt).
	skewBound   sim.Time
	outstanding bool
	outSince    sim.Time
	waitTimeout time.Duration // how long a conservative wait may block

	pendingReads []*binding
	outBindings  map[string]*binding // port name -> binding (ToISS)
	intQueue     []uint32
	irqBuf       [4]byte // scratch for interrupt notifications (kernel context only)

	journal *Journal

	err   error
	stats Stats
	obs   driverObs
}

// driverObs holds the Driver-Kernel hot-path metrics, pre-resolved at
// attach time; all fields are nil (no-ops) without a registry.
type driverObs struct {
	polls      *obs.Counter
	messages   *obs.Counter
	writes     *obs.Counter
	reads      *obs.Counter
	replies    *obs.Counter
	interrupts *obs.Counter
	skewWaits  *obs.Counter
	skewWaitNS *obs.Histogram
}

func (o *driverObs) init(r *obs.Registry) {
	o.polls = r.Counter("driver.polls")
	o.messages = r.Counter("driver.messages")
	o.writes = r.Counter("driver.msgs_write")
	o.reads = r.Counter("driver.msgs_read")
	o.replies = r.Counter("driver.data_replies")
	o.interrupts = r.Counter("driver.interrupts")
	o.skewWaits = r.Counter("driver.skew_waits")
	o.skewWaitNS = r.Histogram("driver.skew_wait_ns")
}

// DriverKernelOptions configures the scheme.
type DriverKernelOptions struct {
	// CommonOptions carries the timing, skew, journal and observability
	// configuration shared by all schemes.
	CommonOptions
	// Ports declares the iss_in (ToSystemC) and iss_out (ToISS) ports
	// the driver may address. Var/breakpoint fields are unused here —
	// the driver names ports explicitly in its messages.
	Ports []VarBinding
}

// NewDriverKernel attaches the scheme. data and irq are the kernel-side
// ends of the two sockets.
func NewDriverKernel(k *sim.Kernel, data io.ReadWriter, irq io.Writer, opts DriverKernelOptions) (*DriverKernel, error) {
	d := &DriverKernel{
		k: k, dataW: data, irqW: irq,
		period:      opts.CPUPeriod,
		skewBound:   opts.SkewBound,
		waitTimeout: time.Second,
		journal:     opts.Journal,
		outBindings: make(map[string]*binding),
		notify:      make(chan struct{}, 1),
	}
	d.obs.init(opts.Obs)
	for _, s := range opts.Ports {
		b := &binding{spec: s}
		if s.Dir == ToSystemC {
			if _, ok := k.IssInPort(s.Port); !ok {
				b.inPort = k.NewIssIn(s.Port)
			}
		} else {
			p, ok := k.IssOutPort(s.Port)
			if !ok {
				p = k.NewIssOut(s.Port)
			}
			b.outPort = p
			d.outBindings[s.Port] = b
		}
	}

	// Reader goroutine: decode messages from the data socket into an
	// in-process inbox the cycle hook drains.
	go func() {
		br := bufio.NewReader(data)
		for {
			m, err := ReadMessage(br)
			if err != nil {
				d.mu.Lock()
				d.rdErr = err
				d.mu.Unlock()
				return
			}
			d.mu.Lock()
			d.inbox = append(d.inbox, m)
			d.mu.Unlock()
			select {
			case d.notify <- struct{}{}:
			default:
			}
		}
	}()

	k.AddCycleHook(d.drain)
	k.AddEndCycleHook(d.flushInterrupts)
	if c, ok := data.(net.Conn); ok {
		k.AddFinalizer(func() { _ = c.Close() })
	}
	if c, ok := irq.(net.Conn); ok {
		k.AddFinalizer(func() { _ = c.Close() })
	}
	return d, nil
}

// Stats returns co-simulation activity counters.
func (d *DriverKernel) Stats() Stats { return d.stats }

// Err returns the first co-simulation error, if any.
func (d *DriverKernel) Err() error { return d.err }

// Name returns the scheme's canonical name.
func (d *DriverKernel) Name() string { return "driver-kernel" }

// Detach implements Scheme. The guest runner is owned by the caller
// (it predates the scheme attachment), so there is nothing to quiesce
// here.
func (d *DriverKernel) Detach() {}

// Publish implements Scheme: the Driver-Kernel protocol has no
// transport-level totals beyond its live counters, so only the pending
// read backlog is published.
func (d *DriverKernel) Publish(r *obs.Registry) {
	r.Gauge("driver.pending_reads").Set(uint64(len(d.pendingReads)))
}

// RaiseInterrupt queues an interrupt for the guest driver; it is sent
// on the interrupt socket at the end of the current simulation cycle,
// per Figure 5 ("before moving to the following simulation cycle ...
// the interrupt is notified to the driver"). Models call this from
// their processes.
func (d *DriverKernel) RaiseInterrupt(id uint32) {
	d.intQueue = append(d.intQueue, id)
}

// targetTime maps a guest cycle stamp to simulated time (32-bit
// wrap-aware).
func (d *DriverKernel) targetTime(cycles uint32) sim.Time {
	if d.period == 0 {
		return d.k.Now()
	}
	delta := cycles - d.syncCycles // wraps correctly in uint32
	return d.syncTime + sim.Time(delta)*d.period
}

func (d *DriverKernel) advanceSync(cycles uint32, t sim.Time) {
	d.syncCycles = cycles
	if t > d.k.Now() {
		d.syncTime = t
	} else {
		d.syncTime = d.k.Now()
	}
}

// drain is the begin-of-cycle hook: handle every message that arrived
// since the last cycle (Figure 5: "checks the content of the message to
// be possibly exchanged with the driver").
func (d *DriverKernel) drain(k *sim.Kernel) {
	if d.err != nil {
		return
	}
	d.stats.Polls++
	d.obs.polls.Inc()

	// Serve pending READs whose port has been written since.
	if len(d.pendingReads) > 0 {
		rest := d.pendingReads[:0]
		for _, b := range d.pendingReads {
			if b.outPort.Writes() > b.consumed {
				d.reply(b)
			} else {
				rest = append(rest, b)
			}
		}
		d.pendingReads = rest
	}

	// Conservative sync: wait for the guest instead of letting simulated
	// time race past an outstanding request.
	if d.skewBound != 0 && d.outstanding && k.Now() >= d.outSince+d.skewBound {
		// A token may be sitting in d.notify from messages that were
		// already drained in a prior cycle; waiting on it would return
		// immediately without new data and silently void the skew bound.
		// Discard it, then re-check the inbox: if the token was in fact
		// fresh, its message is already in the inbox and no wait happens.
		select {
		case <-d.notify:
		default:
		}
		d.mu.Lock()
		empty := len(d.inbox) == 0 && d.rdErr == nil
		d.mu.Unlock()
		if empty {
			d.obs.skewWaits.Inc()
			sp := d.obs.skewWaitNS.Start()
			timer := time.NewTimer(d.waitTimeout)
			select {
			case <-d.notify:
			case <-timer.C:
				// Give up on this request; don't stall the simulation.
				d.outstanding = false
			}
			timer.Stop()
			sp.End()
		}
	}

	d.mu.Lock()
	msgs := d.inbox
	d.inbox = nil
	err := d.rdErr
	d.mu.Unlock()
	if err != nil && len(msgs) == 0 && d.err == nil {
		// Surface read errors once the stream is dry. A clean EOF is a
		// normal guest shutdown; an unexpected EOF mid-message (or any
		// wrapped error) is a real connection failure.
		if !errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			d.err = fmt.Errorf("driver-kernel: %w", err)
		}
	}

	for _, m := range msgs {
		d.stats.Messages++
		d.obs.messages.Inc()
		switch m.Type {
		case MsgWrite:
			d.obs.writes.Inc()
			port, ok := k.IssInPort(m.Port)
			if !ok {
				d.err = fmt.Errorf("driver-kernel: WRITE to unknown port %q", m.Port)
				return
			}
			t := d.targetTime(m.Cycles)
			msg := m
			k.CallAt(t, func() {
				port.Deliver(msg.Data)
				msg.Release() // Deliver copied; recycle the codec buffer
			})
			d.advanceSync(m.Cycles, t)
			d.stats.Transfers++
			d.outstanding = false
			d.journal.Record(JournalEntry{
				Time: t, Scheme: "driver-kernel", Dir: "iss->sc",
				Port: m.Port, Bytes: len(m.Data), Cycles: uint64(m.Cycles),
			})
		case MsgRead:
			d.obs.reads.Inc()
			b, ok := d.outBindings[m.Port]
			if !ok {
				d.err = fmt.Errorf("driver-kernel: READ of unknown port %q", m.Port)
				return
			}
			d.outstanding = false // the guest is alive and asking
			d.advanceSync(m.Cycles, d.targetTime(m.Cycles))
			if b.outPort.Writes() > b.consumed {
				d.reply(b)
			} else {
				d.pendingReads = append(d.pendingReads, b)
			}
		default:
			d.err = fmt.Errorf("driver-kernel: unexpected message type %d from driver", m.Type)
			return
		}
	}
}

// reply sends the current iss_out port value as a DATA message followed
// by a DATA_READY interrupt so a WFI-parked guest wakes up.
func (d *DriverKernel) reply(b *binding) {
	if err := WriteMessage(d.dataW, Message{Type: MsgData, Data: b.outPort.Bytes()}); err != nil {
		d.err = fmt.Errorf("driver-kernel: data socket: %w", err)
		return
	}
	b.consumed = b.outPort.Writes()
	b.outPort.Consumed()
	d.stats.Transfers++
	d.obs.replies.Inc()
	d.outstanding = true
	d.outSince = d.k.Now()
	d.journal.Record(JournalEntry{
		Time: d.k.Now(), Scheme: "driver-kernel", Dir: "sc->iss",
		Port: b.spec.Port, Bytes: len(b.outPort.Bytes()),
	})
	// The guest idled while waiting; re-anchor its timeline.
	d.syncTime = d.k.Now()
	if err := d.sendInterrupt(IntDataReady); err != nil {
		d.err = err
	}
}

// sendInterrupt writes one 4-byte notification through the reusable
// scratch buffer. Only called from kernel context (cycle hooks), so the
// scratch needs no locking.
func (d *DriverKernel) sendInterrupt(id uint32) error {
	binary.LittleEndian.PutUint32(d.irqBuf[:], id)
	if _, err := d.irqW.Write(d.irqBuf[:]); err != nil {
		return fmt.Errorf("driver-kernel: interrupt socket: %w", err)
	}
	return nil
}

// flushInterrupts is the end-of-cycle hook of Figure 5.
func (d *DriverKernel) flushInterrupts(k *sim.Kernel) {
	if d.err != nil || len(d.intQueue) == 0 {
		return
	}
	for _, id := range d.intQueue {
		if err := d.sendInterrupt(id); err != nil {
			d.err = err
			return
		}
		d.stats.IntsNotified++
		d.obs.interrupts.Inc()
	}
	d.intQueue = d.intQueue[:0]
	// An interrupt usually solicits guest work; treat it as a request
	// for skew-bound purposes.
	d.outstanding = true
	d.outSince = k.Now()
}
