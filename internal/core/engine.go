package core

import (
	"fmt"
	"sort"

	"cosim/internal/gdb"
	"cosim/internal/obs"
	"cosim/internal/sim"
)

// Stats counts co-simulation activity for the benchmark harness.
type Stats struct {
	Transfers     uint64 // variable/message data transfers
	Stops         uint64 // breakpoint stops handled (GDB schemes)
	Polls         uint64 // per-cycle checks performed
	Messages      uint64 // protocol messages handled (Driver-Kernel)
	IntsNotified  uint64 // interrupts sent to the driver
	DMIHits       uint64 // guest accesses served by direct memory windows
	DMIMisses     uint64 // windowed-port accesses that fell back to messages
	QuantumSyncs  uint64 // conservative syncs at quantum boundaries (per CPU)
	QuantumBreaks uint64 // early syncs forced before a quantum boundary (per CPU)
}

// engineObs holds the GDB-scheme hot-path metrics, pre-resolved at
// attach time so every update is a nil check plus an atomic add. All
// fields are nil (no-ops) when no registry is configured.
type engineObs struct {
	polls      *obs.Counter
	stops      *obs.Counter
	breakHits  *obs.Counter
	watchHits  *obs.Counter
	toSC       *obs.Counter // iss->sc variable transfers
	toISS      *obs.Counter // sc->iss variable pokes
	skewWaits  *obs.Counter
	skewWaitNS *obs.Histogram
}

func (o *engineObs) init(r *obs.Registry) {
	o.polls = r.Counter("cosim.polls")
	o.stops = r.Counter("cosim.stops")
	o.breakHits = r.Counter("cosim.breakpoint_hits")
	o.watchHits = r.Counter("cosim.watchpoint_hits")
	o.toSC = r.Counter("cosim.transfers_to_sc")
	o.toISS = r.Counter("cosim.transfers_to_iss")
	o.skewWaits = r.Counter("cosim.skew_waits")
	o.skewWaitNS = r.Histogram("cosim.skew_wait_ns")
}

// publishRSP copies the RSP transport totals of cl into the registry.
// Counters accumulate, so multi-CPU configurations sum across engines.
func publishRSP(r *obs.Registry, cl *gdb.Client) {
	st := cl.Stats()
	r.Counter("rsp.round_trips").Add(st.RoundTrips)
	r.Counter("rsp.packets_sent").Add(st.PacketsSent)
	r.Counter("rsp.packets_recv").Add(st.PacketsRecv)
	r.Counter("rsp.bytes_sent").Add(st.BytesSent)
	r.Counter("rsp.bytes_recv").Add(st.BytesRecv)
	r.Counter("rsp.retransmits").Add(st.Retransmits)
}

// gdbEngine is the breakpoint/variable-transfer machinery shared by the
// GDB-Wrapper and GDB-Kernel schemes.
type gdbEngine struct {
	k       *sim.Kernel
	cl      *gdb.Client
	byAddr  map[uint32]*binding
	byWatch map[uint32]*binding // watch-mode bindings, keyed by variable address

	// period is the guest CPU cycle length in simulated time; zero means
	// untimed delivery (used by the lock-step wrapper, whose timing is
	// implicit in the per-cycle quantum).
	period sim.Time

	syncCycles uint64
	syncTime   sim.Time

	// waiting is the binding whose iss_out port the stopped ISS needs
	// data for; nil when the ISS is runnable.
	waiting *binding

	// Conservative synchronization: when skewBound is non-zero and a
	// request has been handed to the ISS (an iss_out transfer), the
	// scheme stops advancing simulated time more than skewBound past
	// the request until the ISS responds. This keeps cycle-coupled
	// response latencies meaningful even though the free-running ISS is
	// paced by the wall clock.
	skewBound   sim.Time
	outstanding bool
	outSince    sim.Time

	exited bool
	stats  Stats
	obs    engineObs

	// journal, when set, records every transfer.
	journal    *Journal
	schemeName string

	// debug, when set, receives a trace of engine activity.
	debug func(format string, args ...any)
}

func (e *gdbEngine) debugf(format string, args ...any) {
	if e.debug != nil {
		e.debug(format, args...)
	}
}

// errf builds a scheme error prefixed with the scheme's canonical name
// ("gdb-kernel: ..." / "gdb-wrapper: ...") so failures in a mixed run
// identify the scheme that raised them.
func (e *gdbEngine) errf(format string, args ...any) error {
	return fmt.Errorf("%s: "+format, append([]any{any(e.schemeName)}, args...)...)
}

// Name returns the scheme's canonical name.
func (e *gdbEngine) Name() string { return e.schemeName }

// Publish copies the engine's RSP transport totals into the registry.
func (e *gdbEngine) Publish(r *obs.Registry) { publishRSP(r, e.cl) }

// installBreakpoints plants a software breakpoint at each line binding
// and a write watchpoint at each watch-mode binding. Addresses are
// sorted so the RSP command sequence (and any stub-side log of it) is
// identical run to run.
func (e *gdbEngine) installBreakpoints() error {
	for _, addr := range sortedAddrs(e.byAddr) {
		if err := e.cl.SetBreakpoint(addr); err != nil {
			return err
		}
	}
	for _, addr := range sortedAddrs(e.byWatch) {
		if err := e.cl.SetWatchpoint(addr, e.byWatch[addr].spec.Size); err != nil {
			return err
		}
	}
	return nil
}

func sortedAddrs(m map[uint32]*binding) []uint32 {
	addrs := make([]uint32, 0, len(m))
	for addr := range m {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	return addrs
}

// targetTime maps a guest cycle count to simulated time.
func (e *gdbEngine) targetTime(cycles uint64) sim.Time {
	if e.period == 0 {
		return e.k.Now()
	}
	return e.syncTime.AddCycles(cycles-e.syncCycles, e.period)
}

// handleStop services a breakpoint stop. It reads the full register
// file (one 'g' transaction, as gdb itself does on every stop) to learn
// the PC and cycle counter, then transfers data according to the
// binding. It returns true if the ISS may resume immediately, false if
// it must stay stopped waiting for SystemC-side data.
func (e *gdbEngine) handleStop(ev *gdb.StopEvent) (bool, error) {
	e.stats.Stops++
	e.obs.stops.Inc()
	regs, err := e.cl.ReadRegisters()
	if err != nil {
		return false, err
	}
	var b *binding
	if ev != nil && ev.IsWatch {
		e.obs.watchHits.Inc()
		b = e.byWatch[ev.WatchAddr]
		if b == nil {
			return false, e.errf("watchpoint hit at unbound address %#x", ev.WatchAddr)
		}
	} else {
		e.obs.breakHits.Inc()
		b = e.byAddr[regs.PC]
	}
	e.debugf("stop pc=%#x cycles=%d sync=(%d,%v) now=%v", regs.PC, regs.Cycles, e.syncCycles, e.syncTime, e.k.Now())
	if b == nil {
		return false, e.errf("ISS stopped at unbound address %#x", regs.PC)
	}

	if b.inPort != nil {
		// ISS -> SystemC: the guest has stored the variable; read it and
		// deliver to the iss_in port at the cycle-implied time.
		data, err := e.cl.ReadMemory(b.varAddr, b.spec.Size)
		if err != nil {
			return false, err
		}
		t := e.targetTime(regs.Cycles)
		port := b.inPort
		e.k.CallAt(t, func() { port.Deliver(data) })
		if t.After(e.k.Now()) {
			e.syncTime = t
		} else {
			e.syncTime = e.k.Now()
		}
		e.syncCycles = regs.Cycles
		e.stats.Transfers++
		e.obs.toSC.Inc()
		e.outstanding = false
		e.journal.Record(JournalEntry{
			Time: t, Scheme: e.schemeName, Dir: "iss->sc",
			Port: b.spec.Port, Bytes: len(data), Cycles: regs.Cycles,
		})
		return true, nil
	}

	// SystemC -> ISS: the guest is stopped at the read; poke the
	// variable if the port holds fresh data, else wait.
	if b.outPort.Writes() > b.consumed {
		if err := e.pokeOut(b); err != nil {
			return false, err
		}
		e.syncCycles = regs.Cycles
		e.syncTime = e.k.Now()
		return true, nil
	}
	e.waiting = b
	e.syncCycles = regs.Cycles
	return false, nil
}

// pokeOut writes the iss_out port's value into the guest variable.
func (e *gdbEngine) pokeOut(b *binding) error {
	data := b.outPort.Bytes()
	if len(data) > b.spec.Size {
		data = data[:b.spec.Size]
	}
	if err := e.cl.WriteMemory(b.varAddr, data); err != nil {
		return err
	}
	b.consumed = b.outPort.Writes()
	b.outPort.Consumed()
	e.stats.Transfers++
	e.obs.toISS.Inc()
	e.outstanding = true
	e.outSince = e.k.Now()
	e.journal.Record(JournalEntry{
		Time: e.k.Now(), Scheme: e.schemeName, Dir: "sc->iss",
		Port: b.spec.Port, Bytes: len(data),
	})
	return nil
}

// mustBlock reports whether the conservative skew bound requires the
// scheme to wait (in wall time) for the ISS before advancing further.
func (e *gdbEngine) mustBlock() bool {
	return e.skewBound != 0 && e.outstanding && e.k.Now().AtOrAfter(e.outSince.Add(e.skewBound))
}

// retryWaiting re-checks a pending iss_out wait; returns true when the
// transfer happened and the ISS may resume.
func (e *gdbEngine) retryWaiting() (bool, error) {
	b := e.waiting
	if b == nil || b.outPort.Writes() <= b.consumed {
		return false, nil
	}
	if err := e.pokeOut(b); err != nil {
		return false, err
	}
	e.waiting = nil
	// The ISS idled (in simulated time) while stopped: re-anchor.
	e.syncTime = e.k.Now()
	return true, nil
}
