package core

import (
	"fmt"
	"io"
	"strings"

	"cosim/internal/asm"
	"cosim/internal/obs"
	"cosim/internal/sim"
)

// CommonOptions holds the configuration shared by every co-simulation
// scheme; the per-scheme *Options structs embed it.
type CommonOptions struct {
	// CPUPeriod is the guest cycle length in simulated time, used to
	// couple ISS cycles to the SystemC timeline. Zero disables timing
	// (untimed software, immediate delivery). The lock-step GDB-Wrapper
	// ignores it: its timing is implicit in the per-cycle quantum.
	CPUPeriod sim.Time
	// SkewBound, when non-zero, limits how far simulated time may run
	// past an outstanding request before the kernel waits (wall-clock)
	// for the guest's response. Zero = free-running. Ignored by the
	// lock-step GDB-Wrapper.
	SkewBound sim.Time
	// Quantum, when non-zero, temporally decouples the Driver-Kernel
	// scheme: each CPU's guest may run ahead of kernel time by up to
	// this much, and the per-cycle conservative synchronization (flush +
	// skew-bounded wait) happens only at quantum boundaries or on an
	// early-sync break — a non-DMI port access, an interrupt delivery,
	// or a DMI window revocation. Zero keeps today's per-cycle
	// lock-step. Ignored by the GDB schemes.
	Quantum sim.Time
	// Journal, when non-nil, records every transfer.
	Journal *Journal
	// Obs, when non-nil, receives live co-simulation counters (see the
	// README's Observability section for the metric names). A nil
	// registry costs nothing on the hot path.
	Obs *obs.Registry
	// CPUs is the number of guest processors the scheme drives; zero
	// means one. Schemes that take explicit per-CPU transports
	// (Driver-Kernel channels) validate it against what they were
	// given; single-CPU schemes reject values above one.
	CPUs int
}

// Scheme is the uniform handle over the three co-simulation schemes —
// GDBWrapper, GDBKernel and DriverKernel all implement it, and
// Attach returns it.
type Scheme interface {
	// Name returns the scheme's canonical name ("gdb-wrapper",
	// "gdb-kernel", "driver-kernel").
	Name() string
	// Err returns the first co-simulation error, if any.
	Err() error
	// Stats returns the scheme's activity counters.
	Stats() Stats
	// Detach quiesces the guest so its counters can be read without
	// racing its goroutines: it halts a free-running ISS (GDB-Kernel)
	// and is a no-op for schemes whose guest only runs while the
	// scheme drives it. The transport itself is torn down by the
	// kernel's finalizers, not by Detach.
	Detach()
	// Publish copies the scheme's end-of-run transport totals into the
	// registry (rsp.* for the GDB schemes); live counters are emitted
	// during the run into CommonOptions.Obs. Safe on a nil registry.
	Publish(r *obs.Registry)
}

// Config describes a co-simulation attachment for the Attach factory.
// Scheme selects which of the remaining fields apply: the GDB schemes
// use Conn/Image/Bindings (plus Clock and InstrPerCycle for the
// lock-step wrapper), the Driver-Kernel scheme uses Data/IRQ/Ports.
type Config struct {
	// Scheme is the scheme name: "gdb-wrapper", "gdb-kernel" or
	// "driver-kernel" (short forms "wrapper", "kernel", "driver" are
	// accepted, case-insensitively).
	Scheme string
	Common CommonOptions

	// GDB schemes: the RSP connection to the ISS stub and the guest
	// image (symbols + line table) the variable bindings resolve
	// against. Teardown ownership: when Conn implements io.Closer (all
	// transport backends do), the kernel's finalizers close it at
	// Shutdown so the stub and client reader goroutines terminate; a
	// plain io.ReadWriter is left to the caller.
	Conn     io.ReadWriter
	Image    *asm.Image
	Bindings []VarBinding
	// Clock drives the GDB-Wrapper's per-cycle sc_method; required for
	// that scheme, ignored by the others.
	Clock *sim.Clock
	// InstrPerCycle is the GDB-Wrapper lock-step quantum (default 8).
	InstrPerCycle uint64

	// Driver-Kernel: the kernel-side ends of the data and interrupt
	// channels, and the iss_in/iss_out ports the driver may address.
	// These three fields describe a single CPU; multi-processor
	// attachments declare one Channel per CPU instead. Channel ends
	// that implement io.Closer are closed by the kernel's finalizers at
	// Shutdown (terminating their reader goroutines); ends that
	// implement transport.Flusher get their batched frames flushed at
	// every cycle-hook boundary.
	Data  io.ReadWriter
	IRQ   io.Writer
	Ports []VarBinding
	// Channels declares one data/interrupt channel pair per CPU for the
	// Driver-Kernel scheme (channel i serves CPU i). When set it takes
	// precedence over Data/IRQ/Ports.
	Channels []DriverChannel

	// DMI grants the Driver-Kernel guests direct memory windows over
	// their bound ports (channels must carry a DMI granter to benefit).
	// Ignored by the GDB schemes.
	DMI bool
	// Coalesce batches the Driver-Kernel's kernel->guest messages into
	// one BATCH envelope per flush point. Ignored by the GDB schemes.
	Coalesce bool
}

// Attach constructs and attaches the scheme named by cfg.Scheme to the
// kernel — the single entry point the harness and tools use instead of
// calling the per-scheme constructors. When an observability registry
// is configured it is also wired into the kernel (per-cycle hook
// latency).
func Attach(k *sim.Kernel, cfg Config) (Scheme, error) {
	if cfg.Common.Obs != nil {
		k.SetObs(cfg.Common.Obs)
	}
	switch strings.ToLower(strings.TrimSpace(cfg.Scheme)) {
	case "gdb-wrapper", "wrapper":
		if cfg.Common.CPUs > 1 {
			return nil, fmt.Errorf("core: gdb-wrapper drives a single ISS in lock-step; CPUs = %d is not supported", cfg.Common.CPUs)
		}
		return NewGDBWrapper(k, cfg.Conn, cfg.Image, GDBWrapperOptions{
			CommonOptions: cfg.Common,
			Clock:         cfg.Clock,
			InstrPerCycle: cfg.InstrPerCycle,
			Bindings:      cfg.Bindings,
		})
	case "gdb-kernel", "kernel":
		if cfg.Common.CPUs > 1 {
			return nil, fmt.Errorf("core: gdb-kernel multi-processor runs attach one scheme instance per CPU (with prefixed port bindings); CPUs = %d on one attachment is not supported", cfg.Common.CPUs)
		}
		return NewGDBKernel(k, cfg.Conn, cfg.Image, GDBKernelOptions{
			CommonOptions: cfg.Common,
			Bindings:      cfg.Bindings,
		})
	case "driver-kernel", "driver":
		if len(cfg.Channels) > 0 {
			return NewDriverKernelMulti(k, cfg.Channels, DriverKernelOptions{
				CommonOptions: cfg.Common,
				DMI:           cfg.DMI,
				Coalesce:      cfg.Coalesce,
			})
		}
		return NewDriverKernel(k, cfg.Data, cfg.IRQ, DriverKernelOptions{
			CommonOptions: cfg.Common,
			Ports:         cfg.Ports,
			DMI:           cfg.DMI,
			Coalesce:      cfg.Coalesce,
		})
	}
	return nil, fmt.Errorf("core: unknown scheme %q", cfg.Scheme)
}
