package core

import (
	"fmt"
	"strconv"
	"strings"

	"cosim/internal/asm"
)

// pragmaPrefix introduces a co-simulation pragma in guest source code.
// §3.2: "it can be made almost completely automatic, by means of
// pragmas. A special pragma, containing the name of the variable, is
// inserted before the line where the breakpoint is to be set. A simple
// filter automatically generates ..." — ParsePragmas is that filter.
const pragmaPrefix = ";#cosim"

// ParsePragmas extracts variable bindings from pragmas in an assembly
// source. A pragma precedes the target statement:
//
//	;#cosim iss_out port=pkt var=pkt_blob size=256
//	    lw   a1, 0(s0)          ; the read the kernel must poke before
//
//	;#cosim iss_in port=csum var=csum_out size=4
//	    sw   a0, 0(s1)          ; the store the kernel collects after
//
// Per the paper's placement rules, iss_out bindings break on the target
// line itself and iss_in bindings on the line immediately following it;
// both fall out of the File/Line binding resolution.
func ParsePragmas(src asm.Source) ([]VarBinding, error) {
	var out []VarBinding
	lines := strings.Split(src.Text, "\n")
	for i, raw := range lines {
		text := strings.TrimSpace(raw)
		if !strings.HasPrefix(text, pragmaPrefix) {
			continue
		}
		lineNo := i + 1
		fields := strings.Fields(strings.TrimPrefix(text, pragmaPrefix))
		if len(fields) == 0 {
			return nil, fmt.Errorf("%s:%d: empty co-simulation pragma", src.Name, lineNo)
		}
		b := VarBinding{File: src.Name, Line: lineNo + 1}
		switch fields[0] {
		case "iss_in":
			b.Dir = ToSystemC
		case "iss_out":
			b.Dir = ToISS
		default:
			return nil, fmt.Errorf("%s:%d: pragma direction must be iss_in or iss_out, got %q",
				src.Name, lineNo, fields[0])
		}
		for _, kv := range fields[1:] {
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("%s:%d: bad pragma field %q", src.Name, lineNo, kv)
			}
			switch key {
			case "port":
				b.Port = val
			case "var":
				b.Var = val
			case "size":
				n, err := strconv.Atoi(val)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("%s:%d: bad size %q", src.Name, lineNo, val)
				}
				b.Size = n
			case "watch":
				b.Watch = val == "true" || val == "1"
			default:
				return nil, fmt.Errorf("%s:%d: unknown pragma field %q", src.Name, lineNo, key)
			}
		}
		if b.Port == "" || b.Var == "" {
			return nil, fmt.Errorf("%s:%d: pragma needs port= and var=", src.Name, lineNo)
		}
		if b.Size == 0 {
			b.Size = 4
		}
		out = append(out, b)
	}
	return out, nil
}

// ParseAllPragmas runs the filter over several sources.
func ParseAllPragmas(sources ...asm.Source) ([]VarBinding, error) {
	var out []VarBinding
	for _, src := range sources {
		bs, err := ParsePragmas(src)
		if err != nil {
			return nil, err
		}
		out = append(out, bs...)
	}
	return out, nil
}
