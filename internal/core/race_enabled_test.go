//go:build race

package core

// raceEnabled reports whether the race detector is active; it randomly
// drops sync.Pool items, so allocation-count assertions are skipped.
const raceEnabled = true
