package core

import (
	"fmt"
	"io"
	"time"

	"cosim/internal/asm"
	"cosim/internal/gdb"
	"cosim/internal/sim"
)

// GDBKernel is the paper's first proposed scheme (§3): the co-simulation
// wrapper is embedded into the simulation kernel. The ISS free-runs
// under a gdb 'continue'; at the beginning of every simulation cycle a
// kernel hook checks — without any host-OS involvement — whether the
// stub reported a breakpoint stop, and if so transfers data between the
// guest variable and the matching iss_in/iss_out port, then resumes the
// ISS (Figure 3).
type GDBKernel struct {
	gdbEngine
	running bool
	err     error
}

// GDBKernelOptions configures the scheme.
type GDBKernelOptions struct {
	// CommonOptions carries the timing, skew, journal and observability
	// configuration shared by all schemes.
	CommonOptions
	// Bindings maps guest variables to ISS ports (§3.2).
	Bindings []VarBinding
}

// NewGDBKernel attaches the scheme to the kernel. conn is the RSP
// connection to the ISS stub; im is the guest image (for symbols and
// the line table). The client uses a reader goroutine so the per-cycle
// poll is an in-process check.
func NewGDBKernel(k *sim.Kernel, conn io.ReadWriter, im *asm.Image, opts GDBKernelOptions) (*GDBKernel, error) {
	g := &GDBKernel{}
	g.k = k
	g.cl = gdb.NewClient(conn, gdb.ClientOptions{UseReaderGoroutine: true})
	g.period = opts.CPUPeriod
	g.skewBound = opts.SkewBound
	g.journal = opts.Journal
	g.schemeName = "gdb-kernel"
	g.obs.init(opts.Obs)
	var err error
	g.byAddr, g.byWatch, err = resolveBindings(k, im, opts.Bindings)
	if err != nil {
		return nil, err
	}
	if err := g.installBreakpoints(); err != nil {
		return nil, err
	}
	if err := g.cl.Continue(); err != nil {
		return nil, err
	}
	g.running = true
	// The ISS is in flight from every resume until its next stop; the
	// skew bound applies to that whole window.
	g.outstanding = true
	g.outSince = 0
	k.AddCycleHook(g.hook)
	k.AddFinalizer(func() { shutdownClient(g.cl, conn) })
	return g, nil
}

// Client exposes the underlying RSP client (for tests and tools).
func (g *GDBKernel) Client() *gdb.Client { return g.cl }

// Stats returns co-simulation activity counters.
func (g *GDBKernel) Stats() Stats { return g.stats }

// Err returns the first co-simulation error, if any.
func (g *GDBKernel) Err() error { return g.err }

// Exited reports whether the guest program has terminated.
func (g *GDBKernel) Exited() bool { return g.exited }

// hook is the begin-of-cycle scheduler modification (Figure 3): "check,
// through the invocation of special methods of the wrapper class, if
// the GDB is stopped at a breakpoint".
func (g *GDBKernel) hook(k *sim.Kernel) {
	if g.err != nil || g.exited {
		return
	}
	g.stats.Polls++
	g.obs.polls.Inc()

	// A stopped ISS waiting for iss_out data resumes as soon as the
	// SystemC side produces it.
	if g.waiting != nil {
		ok, err := g.retryWaiting()
		if err != nil {
			g.fail(err)
			return
		}
		if ok {
			g.resume()
		}
		return
	}

	if !g.running {
		return
	}
	var (
		ev      *gdb.StopEvent
		stopped bool
		err     error
	)
	if g.mustBlock() {
		// Conservative sync: hold simulated time until the ISS responds
		// (bounded wall wait; on timeout give up on this request so the
		// simulation doesn't stall).
		g.obs.skewWaits.Inc()
		sp := g.obs.skewWaitNS.Start()
		ev, stopped, err = g.cl.WaitStopTimeout(time.Second)
		sp.End()
		if err == nil && !stopped {
			g.outstanding = false
		}
	} else {
		ev, stopped, err = g.cl.PollStop()
	}
	if err != nil {
		g.fail(err)
		return
	}
	if !stopped {
		return
	}
	g.running = false
	g.outstanding = false
	if ev.Exited {
		g.exited = true
		return
	}
	resume, err := g.handleStop(ev)
	if err != nil {
		g.fail(err)
		return
	}
	if resume {
		g.resume()
	}
	// Otherwise the ISS stays stopped; retryWaiting will resume it.
}

// Detach implements Scheme: it quiesces the free-running ISS.
func (g *GDBKernel) Detach() { g.Quiesce() }

// Quiesce halts a free-running ISS after the simulation has finished,
// so its instruction/cycle counters can be read without racing the stub
// goroutine. It is a no-op when the guest is already stopped, exited,
// or the scheme has failed.
func (g *GDBKernel) Quiesce() {
	if !g.running || g.exited || g.err != nil {
		return
	}
	g.running = false
	g.outstanding = false
	if err := g.cl.Interrupt(); err != nil {
		return
	}
	_, _, _ = g.cl.WaitStopTimeout(time.Second)
}

func (g *GDBKernel) resume() {
	if err := g.cl.Continue(); err != nil {
		g.fail(err)
		return
	}
	g.running = true
	g.outstanding = true
	g.outSince = g.k.Now()
}

func (g *GDBKernel) fail(err error) {
	if g.err == nil {
		g.err = fmt.Errorf("gdb-kernel: %w", err)
	}
}
