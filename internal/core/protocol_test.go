package core

import (
	"bufio"
	"bytes"
	"io"
	"testing"
)

func TestAppendToMatchesEncode(t *testing.T) {
	msgs := []Message{
		{Type: MsgWrite, Cycles: 12345, Port: "csum", Data: []byte{1, 2, 3}},
		{Type: MsgRead, Cycles: 99, Port: "pkt"},
		{Type: MsgData, Data: []byte{0xff, 0x00, 0x80}},
	}
	for _, m := range msgs {
		enc, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		app, err := m.AppendTo([]byte("prefix"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(app, append([]byte("prefix"), enc...)) {
			t.Fatalf("AppendTo mismatch for %+v:\n%x\n%x", m, app, enc)
		}
	}
	if _, err := (Message{Type: 99}).AppendTo(nil); err == nil {
		t.Fatal("AppendTo accepted unknown type")
	}
}

func TestWriteMessageRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sent := []Message{
		{Type: MsgWrite, Cycles: 1, Port: "a", Data: []byte{9, 8, 7, 6}},
		{Type: MsgRead, Cycles: 2, Port: "bb"},
		{Type: MsgData, Data: []byte{5}},
		{Type: MsgWrite, Cycles: 3, Port: "a"}, // empty payload
	}
	for _, m := range sent {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, want := range sent {
		got, err := ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Cycles != want.Cycles || got.Port != want.Port ||
			!bytes.Equal(got.Data, want.Data) {
			t.Fatalf("round trip: %+v -> %+v", want, got)
		}
		got.Release()
		if got.Data != nil {
			t.Fatal("Release did not clear Data")
		}
		got.Release() // double release of a cleared message is a no-op
	}
	if err := WriteMessage(io.Discard, Message{Type: 77}); err == nil {
		t.Fatal("WriteMessage accepted unknown type")
	}
}

func TestPortInterningShares(t *testing.T) {
	enc, err := Message{Type: MsgRead, Cycles: 1, Port: "interned-port"}.Encode()
	if err != nil {
		t.Fatal(err)
	}
	read := func() string {
		m, err := ReadMessage(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatal(err)
		}
		return m.Port
	}
	a, b := read(), read()
	if a != "interned-port" || a != b {
		t.Fatalf("interning broke decoding: %q vs %q", a, b)
	}
}

// TestCodecSteadyStateAllocations pins the hot-path allocation budget:
// Encode is one exact-size allocation, the pooled paths are
// allocation-free once warm.
func TestCodecSteadyStateAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool; allocation counts unstable")
	}
	m := Message{Type: MsgWrite, Cycles: 123, Port: "csum", Data: []byte{1, 2, 3, 4}}

	encAllocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Encode(); err != nil {
			t.Fatal(err)
		}
	})
	if encAllocs > 1.5 {
		t.Errorf("Encode allocates %.1f/op, want <= 1", encAllocs)
	}

	wmAllocs := testing.AllocsPerRun(200, func() {
		if err := WriteMessage(io.Discard, m); err != nil {
			t.Fatal(err)
		}
	})
	if wmAllocs > 0.5 {
		t.Errorf("WriteMessage allocates %.1f/op, want 0", wmAllocs)
	}

	enc, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	rd := bytes.NewReader(enc)
	br := bufio.NewReader(rd)
	// Warm the pools, then measure the steady-state decode+release loop.
	for i := 0; i < 8; i++ {
		rd.Reset(enc)
		br.Reset(rd)
		got, err := ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		got.Release()
	}
	rdAllocs := testing.AllocsPerRun(200, func() {
		rd.Reset(enc)
		br.Reset(rd)
		got, err := ReadMessage(br)
		if err != nil {
			t.Fatal(err)
		}
		got.Release()
	})
	if rdAllocs > 1.5 {
		t.Errorf("ReadMessage+Release allocates %.1f/op, want ~0", rdAllocs)
	}
}
