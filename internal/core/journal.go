package core

import (
	"fmt"
	"io"
	"sync"

	"cosim/internal/sim"
)

// JournalEntry records one co-simulation data transfer.
type JournalEntry struct {
	Time   sim.Time
	Scheme string
	Dir    string // "iss->sc" or "sc->iss"
	Port   string
	Bytes  int
	Cycles uint64 // guest cycle stamp when known, else 0
}

// String implements fmt.Stringer.
func (e JournalEntry) String() string {
	return fmt.Sprintf("%-10s %-13s %-8s %-12s %4dB cyc=%d",
		e.Time, e.Scheme, e.Dir, e.Port, e.Bytes, e.Cycles)
}

// Journal captures the transfer history of a co-simulation run — the
// observability companion to the schemes: every variable poke, port
// delivery and driver message lands here with its simulated timestamp.
// Safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	entries []JournalEntry // guarded by mu
	limit   int            // guarded by mu (set once in NewJournal)
	dropped uint64         // guarded by mu
}

// NewJournal creates a journal keeping at most limit entries
// (0 = unlimited).
func NewJournal(limit int) *Journal {
	return &Journal{limit: limit}
}

// Record appends one entry (oldest entries are dropped past the limit).
func (j *Journal) Record(e JournalEntry) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.limit > 0 && len(j.entries) >= j.limit {
		j.entries = j.entries[1:]
		j.dropped++
	}
	j.entries = append(j.entries, e)
	j.mu.Unlock()
}

// Entries returns a snapshot of the captured transfers.
func (j *Journal) Entries() []JournalEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]JournalEntry, len(j.entries))
	copy(out, j.entries)
	return out
}

// Len returns the number of captured entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Dropped returns how many entries were evicted by the limit.
func (j *Journal) Dropped() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.dropped
}

// WriteCSV dumps the journal as CSV (time in picoseconds).
func (j *Journal) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ps,scheme,dir,port,bytes,cycles"); err != nil {
		return err
	}
	for _, e := range j.Entries() {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%d,%d\n",
			uint64(e.Time), e.Scheme, e.Dir, e.Port, e.Bytes, e.Cycles); err != nil {
			return err
		}
	}
	return nil
}
