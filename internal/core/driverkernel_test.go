package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cosim/internal/sim"
)

// advanceKernel runs the kernel up to t so Now() moves forward.
func advanceKernel(t *testing.T, k *sim.Kernel, until sim.Time) {
	t.Helper()
	k.CallAt(until, func() {})
	if err := k.Run(until); err != nil && err != sim.ErrDeadlock {
		t.Fatalf("kernel run: %v", err)
	}
	if k.Now() != until {
		t.Fatalf("kernel at %v, want %v", k.Now(), until)
	}
}

func TestTargetTimeWraparound(t *testing.T) {
	k := sim.NewKernel("t")
	defer k.Shutdown()
	d := &DriverKernel{k: k, period: 10 * sim.NS}
	c := &driverCPU{d: d}

	// Anchor just below the 32-bit ceiling; the guest then runs 0x20
	// cycles, wrapping the counter past zero.
	c.syncCycles = 0xfffffff0
	c.syncTime = 500 * sim.NS
	got := c.targetTime(0x10)
	want := c.syncTime + 0x20*10*sim.NS
	if got != want {
		t.Fatalf("wrapped targetTime = %v, want %v", got, want)
	}

	// Without wrap the same arithmetic must still hold.
	c.syncCycles = 100
	got = c.targetTime(164)
	want = c.syncTime + 64*10*sim.NS
	if got != want {
		t.Fatalf("targetTime = %v, want %v", got, want)
	}

	// period 0 disables timing: stamps map to "now".
	d.period = 0
	if got := c.targetTime(12345); got != k.Now() {
		t.Fatalf("untimed targetTime = %v, want %v", got, k.Now())
	}
}

func TestAdvanceSyncMonotonic(t *testing.T) {
	k := sim.NewKernel("t")
	defer k.Shutdown()
	advanceKernel(t, k, sim.US)

	d := &DriverKernel{k: k, period: 10 * sim.NS}
	c := &driverCPU{d: d}

	// A stamp in the simulated past re-anchors to "now", never earlier.
	c.advanceSync(10, 500*sim.NS)
	if c.syncTime != sim.US {
		t.Fatalf("past stamp anchored at %v, want now (%v)", c.syncTime, sim.US)
	}

	// The production call pattern is advanceSync(c, targetTime(c)):
	// drive it through a cycle sequence that includes a 32-bit wrap and
	// assert the anchor never moves backward.
	prev := c.syncTime
	for _, cycles := range []uint32{100, 5_000, 0xffffffff, 3, 50, 1 << 20} {
		tt := c.targetTime(cycles)
		c.advanceSync(cycles, tt)
		if c.syncTime < prev {
			t.Fatalf("syncTime moved backward: %v -> %v at cycles=%#x", prev, c.syncTime, cycles)
		}
		if c.syncCycles != cycles {
			t.Fatalf("syncCycles = %#x, want %#x", c.syncCycles, cycles)
		}
		prev = c.syncTime
	}
}

// newTestDriverKernel wires a single-CPU DriverKernel over an
// in-process pipe and returns the guest-side data end.
func newTestDriverKernel(t *testing.T, opts DriverKernelOptions) (*sim.Kernel, *DriverKernel, net.Conn) {
	t.Helper()
	k := sim.NewKernel("t")
	dataHost, dataGuest := net.Pipe()
	d, err := NewDriverKernel(k, dataHost, io.Discard, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		k.Shutdown()
		dataGuest.Close()
	})
	return k, d, dataGuest
}

// TestSkewWaitIgnoresStaleNotify is the regression test for the stale
// wake-up token bug: a token left in d.notify by messages that were
// already drained in a prior cycle must not satisfy the conservative
// skew wait — the wait may only wake on genuinely new data.
func TestSkewWaitIgnoresStaleNotify(t *testing.T) {
	k, d, _ := newTestDriverKernel(t, DriverKernelOptions{
		CommonOptions: CommonOptions{CPUPeriod: 10 * sim.NS, SkewBound: sim.NS},
	})
	d.waitTimeout = 100 * time.Millisecond
	advanceKernel(t, k, sim.US) // push Now() past outSince+skewBound

	c := d.cpus[0]
	c.outstanding = true
	c.outSince = 0
	d.notify <- struct{}{} // stale: nothing new behind it

	start := time.Now()
	d.drain(k)
	elapsed := time.Since(start)
	if elapsed < d.waitTimeout/2 {
		t.Fatalf("skew wait returned after %v — the stale token voided the bound", elapsed)
	}
	if c.outstanding {
		t.Error("timed-out wait should give up on the outstanding request")
	}
	if d.err != nil {
		t.Fatalf("unexpected scheme error: %v", d.err)
	}
}

// TestSkewWaitWakesOnFreshMessage is the counterpart: a message that
// arrives during the wait must wake it early and be processed.
func TestSkewWaitWakesOnFreshMessage(t *testing.T) {
	k, d, guest := newTestDriverKernel(t, DriverKernelOptions{
		CommonOptions: CommonOptions{CPUPeriod: 10 * sim.NS, SkewBound: sim.NS},
		Ports:         []VarBinding{{Port: "in", Dir: ToSystemC, Size: 4}},
	})
	d.waitTimeout = 2 * time.Second
	advanceKernel(t, k, sim.US)

	c := d.cpus[0]
	c.outstanding = true
	c.outSince = 0
	d.notify <- struct{}{} // stale token again

	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = WriteMessage(guest, Message{Type: MsgWrite, Cycles: 7, Port: "in", Data: []byte{1, 2, 3, 4}})
	}()

	start := time.Now()
	d.drain(k)
	elapsed := time.Since(start)
	if elapsed >= d.waitTimeout {
		t.Fatalf("wait did not wake on fresh data (took %v)", elapsed)
	}
	if d.err != nil {
		t.Fatalf("unexpected scheme error: %v", d.err)
	}
	if d.stats.Messages == 0 {
		t.Fatal("the waking message was not processed")
	}
}

// waitReadErr polls until a CPU's reader goroutine records a terminal
// error.
func waitReadErr(t *testing.T, d *DriverKernel, cpu int) error {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		d.mu.Lock()
		err := d.cpus[cpu].rdErr
		d.mu.Unlock()
		if err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("reader goroutine never observed the stream end")
	return nil
}

func TestCleanEOFIsGuestShutdown(t *testing.T) {
	k, d, guest := newTestDriverKernel(t, DriverKernelOptions{})
	guest.Close() // clean shutdown between messages
	if err := waitReadErr(t, d, 0); !errors.Is(err, io.EOF) {
		t.Fatalf("reader error = %v, want io.EOF", err)
	}
	d.drain(k)
	if d.err != nil {
		t.Fatalf("clean EOF misfiled as failure: %v", d.err)
	}
}

func TestMidMessageEOFIsError(t *testing.T) {
	k, d, guest := newTestDriverKernel(t, DriverKernelOptions{})
	// Announce a 12-byte body but deliver only 4 before disconnecting:
	// a mid-message EOF, i.e. a real connection failure.
	go func() {
		_, _ = guest.Write([]byte{12, 0, 0, 0, 1, 0, 0, 0})
		guest.Close()
	}()
	if err := waitReadErr(t, d, 0); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reader error = %v, want io.ErrUnexpectedEOF", err)
	}
	d.drain(k)
	if d.err == nil {
		t.Fatal("mid-message EOF misfiled as clean guest shutdown")
	}
	if !errors.Is(d.err, io.ErrUnexpectedEOF) {
		t.Fatalf("scheme error %v does not wrap io.ErrUnexpectedEOF", d.err)
	}
	if !strings.Contains(d.err.Error(), "cpu0") {
		t.Fatalf("scheme error %q does not name the failing CPU", d.err)
	}
}

// multiGuest is the guest side of one CPU channel in a multi-CPU test
// rig: its data conn and an interrupt-id recorder.
type multiGuest struct {
	data net.Conn
	irqs atomic.Int64 // count of 4-byte notifications received
	last atomic.Uint32
}

// newMultiDriverKernel wires an n-CPU DriverKernel with per-CPU
// prefixed ports ("cpuI.in" ToSystemC, "cpuI.out" ToISS, guest-visible
// as "in"/"out") and interrupt-counting guest ends.
func newMultiDriverKernel(t *testing.T, n int, opts DriverKernelOptions) (*sim.Kernel, *DriverKernel, []*multiGuest) {
	t.Helper()
	k := sim.NewKernel("t")
	var chans []DriverChannel
	var guests []*multiGuest
	for i := 0; i < n; i++ {
		dataHost, dataGuest := net.Pipe()
		irqHost, irqGuest := net.Pipe()
		g := &multiGuest{data: dataGuest}
		go func(g *multiGuest, r net.Conn) {
			var b [4]byte
			for {
				if _, err := io.ReadFull(r, b[:]); err != nil {
					return
				}
				g.last.Store(binary.LittleEndian.Uint32(b[:]))
				g.irqs.Add(1)
			}
		}(g, irqGuest)
		chans = append(chans, DriverChannel{
			Data:   dataHost,
			IRQ:    irqHost,
			Prefix: "cpu" + string(rune('0'+i)) + ".",
			Ports: []VarBinding{
				{Port: "in", Dir: ToSystemC, Size: 4},
				{Port: "out", Dir: ToISS, Size: 4},
			},
		})
		guests = append(guests, g)
	}
	d, err := NewDriverKernelMulti(k, chans, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		k.Shutdown()
		for _, g := range guests {
			g.data.Close()
		}
	})
	return k, d, guests
}

// waitInbox polls until at least n messages are queued in the inbox.
func waitInbox(t *testing.T, d *DriverKernel, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		d.mu.Lock()
		got := len(d.inbox)
		d.mu.Unlock()
		if got >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("inbox never reached %d messages", n)
}

// TestMultiChannelPortRouting checks that a WRITE arriving on CPU 1's
// channel lands on CPU 1's prefixed kernel port, not CPU 0's, even
// though both guests use the same guest-visible port name.
func TestMultiChannelPortRouting(t *testing.T) {
	k, d, guests := newMultiDriverKernel(t, 2, DriverKernelOptions{})
	in0, _ := k.IssInPort("cpu0.in")
	in1, _ := k.IssInPort("cpu1.in")

	go func() {
		_ = WriteMessage(guests[1].data, Message{Type: MsgWrite, Cycles: 3, Port: "in", Data: []byte{9, 0, 0, 0}})
	}()
	waitInbox(t, d, 1)
	d.drain(k)
	if d.err != nil {
		t.Fatal(d.err)
	}
	// The delivery is scheduled at the stamp's target time (= now with
	// period 0); run the kernel so the CallAt fires.
	advanceKernel(t, k, sim.NS)

	if got := in1.Deliveries(); got != 1 {
		t.Fatalf("cpu1.in deliveries = %d, want 1", got)
	}
	if got := in1.Uint32(); got != 9 {
		t.Fatalf("cpu1.in value = %d, want 9", got)
	}
	if got := in0.Deliveries(); got != 0 {
		t.Fatalf("cpu0.in deliveries = %d, want 0 — cross-CPU WRITE leak", got)
	}
}

// TestMultiChannelReadRouting checks READ traffic: each CPU's READ is
// served from its own prefixed iss_out port and the DATA_READY
// interrupt goes back on its own interrupt socket.
func TestMultiChannelReadRouting(t *testing.T) {
	k, d, guests := newMultiDriverKernel(t, 2, DriverKernelOptions{})
	out1, _ := k.IssOutPort("cpu1.out")
	out1.WriteUint32(0x55)

	// The guest's reply arrives as a DATA message on its data socket.
	gotData := make(chan uint32, 1)
	go func() {
		br := bufio.NewReader(guests[1].data)
		m, err := ReadMessage(br)
		if err != nil || m.Type != MsgData {
			return
		}
		gotData <- binary.LittleEndian.Uint32(m.Data)
	}()
	go func() {
		_ = WriteMessage(guests[1].data, Message{Type: MsgRead, Cycles: 1, Port: "out"})
	}()
	waitInbox(t, d, 1)
	d.drain(k)
	if d.err != nil {
		t.Fatal(d.err)
	}
	select {
	case v := <-gotData:
		if v != 0x55 {
			t.Fatalf("DATA reply = %#x, want 0x55", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no DATA reply on cpu1's data socket")
	}
	waitIRQs(t, guests[1], 1)
	if got := guests[0].irqs.Load(); got != 0 {
		t.Fatalf("cpu0 observed %d interrupts for cpu1's DATA_READY", got)
	}
}

func waitIRQs(t *testing.T, g *multiGuest, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if g.irqs.Load() >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("guest saw %d interrupts, want >= %d", g.irqs.Load(), want)
}

// TestPerCPUInterruptIsolation drives both CPUs concurrently — guests
// writing messages while the kernel hooks cycle — and checks that
// interrupts raised for CPU 1 are never observed on CPU 0's interrupt
// socket. Run under -race this also exercises the shared-inbox
// synchronization with both CPUs advancing at once.
func TestPerCPUInterruptIsolation(t *testing.T) {
	const cycles = 50
	k, d, guests := newMultiDriverKernel(t, 2, DriverKernelOptions{})

	// Both guests hammer their data sockets concurrently.
	stop := make(chan struct{})
	for i, g := range guests {
		go func(i int, g *multiGuest) {
			for n := uint32(0); ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if WriteMessage(g.data, Message{Type: MsgWrite, Cycles: n, Port: "in", Data: []byte{byte(i), 0, 0, 0}}) != nil {
					return
				}
			}
		}(i, g)
	}

	for n := 0; n < cycles; n++ {
		d.drain(k)
		d.RaiseInterruptCPU(1, 42)
		d.flushInterrupts(k)
		if d.err != nil {
			t.Fatal(d.err)
		}
	}
	close(stop)
	guests[0].data.Close()
	guests[1].data.Close()

	waitIRQs(t, guests[1], cycles)
	if got := guests[1].last.Load(); got != 42 {
		t.Fatalf("cpu1 last interrupt id = %d, want 42", got)
	}
	if got := guests[0].irqs.Load(); got != 0 {
		t.Fatalf("cpu0 observed %d of cpu1's interrupts — routing leak", got)
	}
}

// TestErrorsCarryCPUAndPort pins the error-attribution contract: a
// failure on CPU 1's channel names cpu1 and the offending port.
func TestErrorsCarryCPUAndPort(t *testing.T) {
	k, d, guests := newMultiDriverKernel(t, 2, DriverKernelOptions{})
	go func() {
		_ = WriteMessage(guests[1].data, Message{Type: MsgWrite, Cycles: 0, Port: "zzz", Data: []byte{1}})
	}()
	waitInbox(t, d, 1)
	d.drain(k)
	if d.err == nil {
		t.Fatal("WRITE to unknown port accepted")
	}
	for _, want := range []string{"cpu1", `"zzz"`} {
		if !strings.Contains(d.err.Error(), want) {
			t.Fatalf("error %q does not contain %q", d.err, want)
		}
	}
}

// TestRaiseInterruptUnknownCPU: routing an interrupt to a CPU that was
// never attached is a scheme error naming the CPU, not a panic.
func TestRaiseInterruptUnknownCPU(t *testing.T) {
	_, d, _ := newMultiDriverKernel(t, 2, DriverKernelOptions{})
	d.RaiseInterruptCPU(5, 7)
	if d.Err() == nil {
		t.Fatal("out-of-range CPU accepted")
	}
	if !strings.Contains(d.Err().Error(), "cpu5") {
		t.Fatalf("error %q does not name cpu5", d.Err())
	}
}

// closableChannel is a custom channel type that is deliberately NOT a
// net.Conn: just an io.ReadWriter with a Close. The regression below
// guards the finalizer fix — teardown must go through io.Closer, so a
// user-supplied channel like this one is closed at Shutdown and its
// reader goroutine terminates.
type closableChannel struct {
	r      *io.PipeReader
	w      *io.PipeWriter
	closed atomic.Bool
}

func newClosableChannel() (*closableChannel, *io.PipeWriter, *io.PipeReader) {
	// guestW feeds the channel's reads; guestR sees the channel's writes.
	r, guestW := io.Pipe()
	guestR, w := io.Pipe()
	return &closableChannel{r: r, w: w}, guestW, guestR
}

func (c *closableChannel) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c *closableChannel) Write(p []byte) (int, error) { return c.w.Write(p) }
func (c *closableChannel) Close() error {
	c.closed.Store(true)
	_ = c.w.Close()
	return c.r.Close()
}

// TestShutdownClosesNonConnChannels: kernel finalizers must close any
// channel that implements io.Closer — not only net.Conn — so custom
// transports tear down cleanly. Reverting the io.Closer finalizer fix
// makes this test fail (the channel stays open and its reader leaks).
func TestShutdownClosesNonConnChannels(t *testing.T) {
	k := sim.NewKernel("t")
	data, _, _ := newClosableChannel()
	irq, _, _ := newClosableChannel()
	d, err := NewDriverKernel(k, data, irq, DriverKernelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if !data.closed.Load() {
		t.Fatal("data channel not closed at Shutdown — finalizer skipped the non-Conn io.Closer")
	}
	if !irq.closed.Load() {
		t.Fatal("interrupt channel not closed at Shutdown — finalizer skipped the non-Conn io.Closer")
	}
	// The reader goroutine must have observed the close and parked a
	// terminal error.
	if err := waitReadErr(t, d, 0); err == nil {
		t.Fatal("reader goroutine never terminated after channel close")
	}
}

// TestChannelCountValidation: an explicit CPU count must match the
// channel count.
func TestChannelCountValidation(t *testing.T) {
	k := sim.NewKernel("t")
	defer k.Shutdown()
	_, err := NewDriverKernelMulti(k, nil, DriverKernelOptions{})
	if err == nil {
		t.Fatal("zero channels accepted")
	}
	host, guest := net.Pipe()
	defer host.Close()
	defer guest.Close()
	_, err = NewDriverKernelMulti(k, []DriverChannel{{Data: host, IRQ: io.Discard}},
		DriverKernelOptions{CommonOptions: CommonOptions{CPUs: 3}})
	if err == nil {
		t.Fatal("CPUs=3 with one channel accepted")
	}
}
