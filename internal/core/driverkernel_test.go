package core

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"cosim/internal/sim"
)

// advanceKernel runs the kernel up to t so Now() moves forward.
func advanceKernel(t *testing.T, k *sim.Kernel, until sim.Time) {
	t.Helper()
	k.CallAt(until, func() {})
	if err := k.Run(until); err != nil && err != sim.ErrDeadlock {
		t.Fatalf("kernel run: %v", err)
	}
	if k.Now() != until {
		t.Fatalf("kernel at %v, want %v", k.Now(), until)
	}
}

func TestTargetTimeWraparound(t *testing.T) {
	k := sim.NewKernel("t")
	defer k.Shutdown()
	d := &DriverKernel{k: k, period: 10 * sim.NS}

	// Anchor just below the 32-bit ceiling; the guest then runs 0x20
	// cycles, wrapping the counter past zero.
	d.syncCycles = 0xfffffff0
	d.syncTime = 500 * sim.NS
	got := d.targetTime(0x10)
	want := d.syncTime + 0x20*10*sim.NS
	if got != want {
		t.Fatalf("wrapped targetTime = %v, want %v", got, want)
	}

	// Without wrap the same arithmetic must still hold.
	d.syncCycles = 100
	got = d.targetTime(164)
	want = d.syncTime + 64*10*sim.NS
	if got != want {
		t.Fatalf("targetTime = %v, want %v", got, want)
	}

	// period 0 disables timing: stamps map to "now".
	d.period = 0
	if got := d.targetTime(12345); got != k.Now() {
		t.Fatalf("untimed targetTime = %v, want %v", got, k.Now())
	}
}

func TestAdvanceSyncMonotonic(t *testing.T) {
	k := sim.NewKernel("t")
	defer k.Shutdown()
	advanceKernel(t, k, sim.US)

	d := &DriverKernel{k: k, period: 10 * sim.NS}

	// A stamp in the simulated past re-anchors to "now", never earlier.
	d.advanceSync(10, 500*sim.NS)
	if d.syncTime != sim.US {
		t.Fatalf("past stamp anchored at %v, want now (%v)", d.syncTime, sim.US)
	}

	// The production call pattern is advanceSync(c, targetTime(c)):
	// drive it through a cycle sequence that includes a 32-bit wrap and
	// assert the anchor never moves backward.
	prev := d.syncTime
	for _, cycles := range []uint32{100, 5_000, 0xffffffff, 3, 50, 1 << 20} {
		tt := d.targetTime(cycles)
		d.advanceSync(cycles, tt)
		if d.syncTime < prev {
			t.Fatalf("syncTime moved backward: %v -> %v at cycles=%#x", prev, d.syncTime, cycles)
		}
		if d.syncCycles != cycles {
			t.Fatalf("syncCycles = %#x, want %#x", d.syncCycles, cycles)
		}
		prev = d.syncTime
	}
}

// newTestDriverKernel wires a DriverKernel over an in-process pipe and
// returns the guest-side data end.
func newTestDriverKernel(t *testing.T, opts DriverKernelOptions) (*sim.Kernel, *DriverKernel, net.Conn) {
	t.Helper()
	k := sim.NewKernel("t")
	dataHost, dataGuest := net.Pipe()
	d, err := NewDriverKernel(k, dataHost, io.Discard, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		k.Shutdown()
		dataGuest.Close()
	})
	return k, d, dataGuest
}

// TestSkewWaitIgnoresStaleNotify is the regression test for the stale
// wake-up token bug: a token left in d.notify by messages that were
// already drained in a prior cycle must not satisfy the conservative
// skew wait — the wait may only wake on genuinely new data.
func TestSkewWaitIgnoresStaleNotify(t *testing.T) {
	k, d, _ := newTestDriverKernel(t, DriverKernelOptions{
		CommonOptions: CommonOptions{CPUPeriod: 10 * sim.NS, SkewBound: sim.NS},
	})
	d.waitTimeout = 100 * time.Millisecond
	advanceKernel(t, k, sim.US) // push Now() past outSince+skewBound

	d.outstanding = true
	d.outSince = 0
	d.notify <- struct{}{} // stale: nothing new behind it

	start := time.Now()
	d.drain(k)
	elapsed := time.Since(start)
	if elapsed < d.waitTimeout/2 {
		t.Fatalf("skew wait returned after %v — the stale token voided the bound", elapsed)
	}
	if d.outstanding {
		t.Error("timed-out wait should give up on the outstanding request")
	}
	if d.err != nil {
		t.Fatalf("unexpected scheme error: %v", d.err)
	}
}

// TestSkewWaitWakesOnFreshMessage is the counterpart: a message that
// arrives during the wait must wake it early and be processed.
func TestSkewWaitWakesOnFreshMessage(t *testing.T) {
	k, d, guest := newTestDriverKernel(t, DriverKernelOptions{
		CommonOptions: CommonOptions{CPUPeriod: 10 * sim.NS, SkewBound: sim.NS},
		Ports:         []VarBinding{{Port: "in", Dir: ToSystemC, Size: 4}},
	})
	d.waitTimeout = 2 * time.Second
	advanceKernel(t, k, sim.US)

	d.outstanding = true
	d.outSince = 0
	d.notify <- struct{}{} // stale token again

	go func() {
		time.Sleep(30 * time.Millisecond)
		_ = WriteMessage(guest, Message{Type: MsgWrite, Cycles: 7, Port: "in", Data: []byte{1, 2, 3, 4}})
	}()

	start := time.Now()
	d.drain(k)
	elapsed := time.Since(start)
	if elapsed >= d.waitTimeout {
		t.Fatalf("wait did not wake on fresh data (took %v)", elapsed)
	}
	if d.err != nil {
		t.Fatalf("unexpected scheme error: %v", d.err)
	}
	if d.stats.Messages == 0 {
		t.Fatal("the waking message was not processed")
	}
}

// waitReadErr polls until the reader goroutine records a terminal error.
func waitReadErr(t *testing.T, d *DriverKernel) error {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		d.mu.Lock()
		err := d.rdErr
		d.mu.Unlock()
		if err != nil {
			return err
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("reader goroutine never observed the stream end")
	return nil
}

func TestCleanEOFIsGuestShutdown(t *testing.T) {
	k, d, guest := newTestDriverKernel(t, DriverKernelOptions{})
	guest.Close() // clean shutdown between messages
	if err := waitReadErr(t, d); !errors.Is(err, io.EOF) {
		t.Fatalf("reader error = %v, want io.EOF", err)
	}
	d.drain(k)
	if d.err != nil {
		t.Fatalf("clean EOF misfiled as failure: %v", d.err)
	}
}

func TestMidMessageEOFIsError(t *testing.T) {
	k, d, guest := newTestDriverKernel(t, DriverKernelOptions{})
	// Announce a 12-byte body but deliver only 4 before disconnecting:
	// a mid-message EOF, i.e. a real connection failure.
	go func() {
		_, _ = guest.Write([]byte{12, 0, 0, 0, 1, 0, 0, 0})
		guest.Close()
	}()
	if err := waitReadErr(t, d); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("reader error = %v, want io.ErrUnexpectedEOF", err)
	}
	d.drain(k)
	if d.err == nil {
		t.Fatal("mid-message EOF misfiled as clean guest shutdown")
	}
	if !errors.Is(d.err, io.ErrUnexpectedEOF) {
		t.Fatalf("scheme error %v does not wrap io.ErrUnexpectedEOF", d.err)
	}
}
