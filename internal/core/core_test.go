package core

import (
	"bufio"
	"bytes"
	"testing"
	"testing/quick"

	"cosim/internal/asm"
	"cosim/internal/dev"
	"cosim/internal/iss"
	"cosim/internal/rtos"
	"cosim/internal/sim"
)

func TestMessageCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgWrite, Cycles: 12345, Port: "csum", Data: []byte{1, 2, 3}},
		{Type: MsgWrite, Cycles: 0, Port: "p", Data: nil},
		{Type: MsgRead, Cycles: 99, Port: "pkt"},
		{Type: MsgData, Data: []byte{0xff, 0x00, 0x80}},
	}
	for _, m := range msgs {
		enc, err := m.Encode()
		if err != nil {
			t.Fatalf("encode %+v: %v", m, err)
		}
		got, err := ReadMessage(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if got.Type != m.Type || got.Cycles != m.Cycles || got.Port != m.Port || !bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip: %+v -> %+v", m, got)
		}
	}
}

func TestMessageCodecProperty(t *testing.T) {
	f := func(port string, data []byte, cycles uint32, readNotWrite bool) bool {
		if len(port) > 64 || len(data) > 1024 {
			return true
		}
		m := Message{Type: MsgWrite, Cycles: cycles, Port: port, Data: data}
		if readNotWrite {
			m = Message{Type: MsgRead, Cycles: cycles, Port: port}
		}
		enc, err := m.Encode()
		if err != nil {
			return false
		}
		got, err := ReadMessage(bufio.NewReader(bytes.NewReader(enc)))
		if err != nil {
			return false
		}
		return got.Type == m.Type && got.Port == m.Port && got.Cycles == m.Cycles &&
			bytes.Equal(got.Data, m.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	bad := [][]byte{
		{},
		{1, 0, 0, 0},                         // size 1 < 4
		{255, 255, 255, 255},                 // absurd size
		{4, 0, 0, 0, 9, 0, 0, 0},             // unknown type
		{8, 0, 0, 0, 1, 0, 0, 0, 5, 0, 0, 0}, // WRITE truncated
	}
	for _, b := range bad {
		if _, err := ReadMessage(bufio.NewReader(bytes.NewReader(b))); err == nil {
			t.Errorf("ReadMessage(% x) succeeded", b)
		}
	}
}

// doublerSrc is the bare-metal guest for the GDB schemes: reads a
// request word (SystemC pokes it at bp_req), doubles it, stores the
// response (SystemC reads it at bp_resp).
const doublerSrc = `
_start:
    la   s0, req
    la   s1, resp
loop:
bp_req:
    lw   a0, 0(s0)
    add  a1, a0, a0
    sw   a1, 0(s1)
bp_resp:
    nop
    j    loop
.data
.align 4
req:  .word 0
resp: .word 0
`

// buildBareMetal assembles a bare-metal guest and boots a CPU.
func buildBareMetal(t *testing.T, src string) (*iss.CPU, *asm.Image) {
	t.Helper()
	im, err := asm.Assemble(asm.Options{DataBase: 0x10000}, asm.Source{Name: "guest.s", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	ram := iss.NewRAM(1 << 20)
	if err := im.LoadInto(ram); err != nil {
		t.Fatal(err)
	}
	cpu := iss.New(iss.NewSystemBus(ram))
	cpu.Reset(im.Entry)
	return cpu, im
}

var doublerBindings = []VarBinding{
	{Port: "req", Var: "req", Size: 4, Dir: ToISS, Label: "bp_req"},
	{Port: "resp", Var: "resp", Size: 4, Dir: ToSystemC, Label: "bp_resp"},
}

// driveDoubler runs the SystemC side: feed values, check doubled
// responses. The returned slice pointer is filled as the sim runs.
func driveDoubler(t *testing.T, k *sim.Kernel, n int) *[]uint32 {
	t.Helper()
	results := new([]uint32)
	req, ok := k.IssOutPort("req")
	if !ok {
		t.Fatal("req port missing")
	}
	resp, ok := k.IssInPort("resp")
	if !ok {
		t.Fatal("resp port missing")
	}
	k.Thread("driver", func(c *sim.Ctx) {
		for i := 1; i <= n; i++ {
			req.WriteUint32(uint32(i))
			c.Wait(resp.Event())
			*results = append(*results, resp.Uint32())
		}
		k.Stop()
	})
	return results
}

func TestGDBKernelEndToEnd(t *testing.T) {
	for _, tr := range []Transport{TransportPipe, TransportTCP} {
		cpu, im := buildBareMetal(t, doublerSrc)
		target, err := StartGDBTarget(cpu, tr)
		if err != nil {
			t.Fatal(err)
		}
		k := sim.NewKernel("top")
		sim.NewClock(k, "clk", 10*sim.NS)
		g, err := NewGDBKernel(k, target.HostConn, im, GDBKernelOptions{
			CommonOptions: CommonOptions{CPUPeriod: sim.NS},
			Bindings:      doublerBindings,
		})
		if err != nil {
			t.Fatal(err)
		}
		var results []uint32
		req, _ := k.IssOutPort("req")
		resp, _ := k.IssInPort("resp")
		k.Thread("driver", func(c *sim.Ctx) {
			for i := 1; i <= 5; i++ {
				req.WriteUint32(uint32(i))
				c.Wait(resp.Event())
				results = append(results, resp.Uint32())
			}
			k.Stop()
		})
		if err := k.Run(sim.MaxTime); err != nil {
			t.Fatalf("run: %v (scheme err %v)", err, g.Err())
		}
		k.Shutdown()
		if g.Err() != nil {
			t.Fatal(g.Err())
		}
		want := []uint32{2, 4, 6, 8, 10}
		if len(results) != len(want) {
			t.Fatalf("results = %v", results)
		}
		for i := range want {
			if results[i] != want[i] {
				t.Fatalf("results = %v, want %v", results, want)
			}
		}
		if g.Stats().Transfers < 10 {
			t.Fatalf("transfers = %d", g.Stats().Transfers)
		}
		_ = target.Wait()
	}
}

func TestGDBKernelTimeCoupling(t *testing.T) {
	cpu, im := buildBareMetal(t, doublerSrc)
	target, err := StartGDBTarget(cpu, TransportPipe)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel("top")
	sim.NewClock(k, "clk", 10*sim.NS)
	period := 2 * sim.NS
	g, err := NewGDBKernel(k, target.HostConn, im, GDBKernelOptions{
		// Conservative sync keeps simulated time from racing ahead of
		// the wall-clock-paced ISS, so latency reflects guest cycles.
		CommonOptions: CommonOptions{CPUPeriod: period, SkewBound: 100 * sim.NS},
		Bindings:      doublerBindings,
	})
	if err != nil {
		t.Fatal(err)
	}
	req, _ := k.IssOutPort("req")
	resp, _ := k.IssInPort("resp")
	var reqTime, respTime sim.Time
	k.Thread("driver", func(c *sim.Ctx) {
		// First exchange absorbs the boot-time skew between the
		// wall-clock-paced ISS and the freely advancing simulation.
		req.WriteUint32(1)
		c.Wait(resp.Event())
		// Second exchange: the guest is parked at bp_req, so latency is
		// governed by the skew bound and guest cycles.
		c.WaitTime(100 * sim.NS)
		reqTime = c.Now()
		req.WriteUint32(21)
		c.Wait(resp.Event())
		respTime = c.Now()
		k.Stop()
	})
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatalf("run: %v (scheme err %v)", err, g.Err())
	}
	k.Shutdown()
	if resp.Uint32() != 42 {
		t.Fatalf("resp = %d", resp.Uint32())
	}
	// The guest executes add+sw (+ breakpoint mechanics) between the
	// poke and the response store: a handful of cycles. The response
	// must arrive later than the request but within a small bound.
	lat := respTime - reqTime
	if lat == 0 {
		t.Fatal("zero latency: cycle coupling not applied")
	}
	// The response can arrive no later than the skew bound plus one
	// clock period of hook granularity.
	if lat > 120*sim.NS {
		t.Fatalf("latency %v exceeds the skew bound", lat)
	}
	_ = target.Wait()
}

func TestGDBWrapperEndToEnd(t *testing.T) {
	cpu, im := buildBareMetal(t, doublerSrc)
	target, err := StartGDBTarget(cpu, TransportPipe)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel("top")
	clk := sim.NewClock(k, "clk", 10*sim.NS)
	w, err := NewGDBWrapper(k, target.HostConn, im, GDBWrapperOptions{
		Clock:         clk,
		InstrPerCycle: 4,
		Bindings:      doublerBindings,
	})
	if err != nil {
		t.Fatal(err)
	}
	resultsP := driveDoubler(t, k, 5)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatalf("run: %v (scheme err %v)", err, w.Err())
	}
	k.Shutdown()
	if w.Err() != nil {
		t.Fatal(w.Err())
	}
	results := *resultsP
	want := []uint32{2, 4, 6, 8, 10}
	if len(results) != len(want) {
		t.Fatalf("results = %v", results)
	}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("results = %v", results)
		}
	}
	// Lock-step: the wrapper must have polled many times per transfer.
	if w.Stats().Polls <= w.Stats().Transfers {
		t.Fatalf("polls=%d transfers=%d: not lock-step", w.Stats().Polls, w.Stats().Transfers)
	}
	_ = target.Wait()
}

// driverDoublerSrc is the RTOS guest for the Driver-Kernel scheme.
const driverDoublerSrc = `
main:
    la   a0, my_isr
    call cosim_register_isr
mloop:
wait_req:
    di
    la   t0, flag
    lw   t1, 0(t0)
    bnez t1, have_req
    wfi
    ei
    j    wait_req
have_req:
    ei
    la   t0, flag
    sw   zero, 0(t0)
    la   a0, port_req
    addi a1, zero, 3
    la   a2, buf
    addi a3, zero, 4
    call cosim_read
    la   t0, buf
    lw   t1, 0(t0)
    add  t1, t1, t1
    sw   t1, 0(t0)
    la   a0, port_resp
    addi a1, zero, 4
    la   a2, buf
    addi a3, zero, 4
    call cosim_write
    j    mloop

my_isr:
    la   t0, flag
    addi t1, zero, 1
    sw   t1, 0(t0)
    ret

.data
port_req:  .asciz "req"
port_resp: .asciz "resp"
.align 4
flag: .word 0
buf:  .word 0
`

func TestDriverKernelEndToEnd(t *testing.T) {
	for _, tr := range []Transport{TransportPipe, TransportTCP} {
		im, err := rtos.Build(asm.Source{Name: "app.s", Text: driverDoublerSrc})
		if err != nil {
			t.Fatal(err)
		}
		p := dev.NewPlatform(0, nil)
		if err := im.LoadInto(p.RAM); err != nil {
			t.Fatal(err)
		}
		p.CPU.Reset(im.Entry)
		target, err := ConnectDriverTarget(p, tr)
		if err != nil {
			t.Fatal(err)
		}
		runner := rtos.NewRunner(p)
		runner.Start()

		k := sim.NewKernel("top")
		sim.NewClock(k, "clk", 10*sim.NS)
		d, err := NewDriverKernel(k, target.DataHost, target.IRQHost, DriverKernelOptions{
			CommonOptions: CommonOptions{CPUPeriod: sim.NS},
			Ports: []VarBinding{
				{Port: "req", Dir: ToISS},
				{Port: "resp", Dir: ToSystemC},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var results []uint32
		req, _ := k.IssOutPort("req")
		resp, _ := k.IssInPort("resp")
		k.Thread("driver", func(c *sim.Ctx) {
			for i := 1; i <= 5; i++ {
				req.WriteUint32(uint32(i))
				d.RaiseInterrupt(7) // "new request" doorbell
				c.Wait(resp.Event())
				results = append(results, resp.Uint32())
			}
			k.Stop()
		})
		if err := k.Run(sim.MaxTime); err != nil {
			t.Fatalf("run: %v (scheme err %v)", err, d.Err())
		}
		k.Shutdown()
		runner.Stop()
		if d.Err() != nil {
			t.Fatal(d.Err())
		}
		want := []uint32{2, 4, 6, 8, 10}
		if len(results) != len(want) {
			t.Fatalf("results = %v", results)
		}
		for i := range want {
			if results[i] != want[i] {
				t.Fatalf("results = %v", results)
			}
		}
		if d.Stats().IntsNotified < 5 {
			t.Fatalf("interrupts notified = %d", d.Stats().IntsNotified)
		}
	}
}

func TestBindingResolutionErrors(t *testing.T) {
	_, im := buildBareMetal(t, doublerSrc)
	k := sim.NewKernel("t")
	cases := []VarBinding{
		{Port: "p", Var: "nosuchvar", Size: 4, Dir: ToISS, Label: "bp_req"},
		{Port: "p", Var: "req", Size: 4, Dir: ToISS, Label: "nosuchlabel"},
		{Port: "p", Var: "req", Size: 4, Dir: ToISS},
		{Port: "p", Var: "req", Size: 0, Dir: ToISS, Label: "bp_req"},
		{Port: "p", Var: "req", Size: 4, Dir: ToISS, File: "guest.s", Line: 9999},
	}
	for i, c := range cases {
		if _, _, err := resolveBindings(k, im, []VarBinding{c}); err == nil {
			t.Errorf("case %d: no error for %+v", i, c)
		}
	}
}

func TestLineBasedBindings(t *testing.T) {
	// The paper's file:line programming model: iss_out breakpoints on
	// the read line, iss_in breakpoints on the line after the store.
	src := `_start:
    la   s0, req
    la   s1, resp
loop:
    lw   a0, 0(s0)
    add  a1, a0, a0
    sw   a1, 0(s1)
    nop
    j    loop
.data
.align 4
req:  .word 0
resp: .word 0
`
	cpu, im := buildBareMetal(t, src)
	target, err := StartGDBTarget(cpu, TransportPipe)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel("top")
	sim.NewClock(k, "clk", 10*sim.NS)
	g, err := NewGDBKernel(k, target.HostConn, im, GDBKernelOptions{
		Bindings: []VarBinding{
			// The lw is on line 5; the sw on line 7 (break at line 8).
			{Port: "req", Var: "req", Size: 4, Dir: ToISS, File: "guest.s", Line: 5},
			{Port: "resp", Var: "resp", Size: 4, Dir: ToSystemC, File: "guest.s", Line: 7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resultsP := driveDoubler(t, k, 3)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatalf("run: %v (%v)", err, g.Err())
	}
	k.Shutdown()
	if results := *resultsP; len(results) != 3 || results[2] != 6 {
		t.Fatalf("results = %v", results)
	}
	_ = target.Wait()
}

func TestConnPairBackends(t *testing.T) {
	// nil exercises the pipe default alongside every named backend.
	backends := append([]Transport{nil}, Transports()...)
	for _, tr := range backends {
		h, g, err := connPair(tr)
		if err != nil {
			t.Fatalf("%s: %v", TransportName(tr), err)
		}
		go func() { _, _ = h.Write([]byte("ping")) }()
		buf := make([]byte, 4)
		if _, err := readFullConn(g, buf); err != nil {
			t.Fatalf("%s: %v", TransportName(tr), err)
		}
		if string(buf) != "ping" {
			t.Fatalf("%s: got %q", TransportName(tr), buf)
		}
		h.Close()
		g.Close()
	}
}

func readFullConn(c interface{ Read([]byte) (int, error) }, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		m, err := c.Read(buf[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func TestWatchBindingMode(t *testing.T) {
	// The watchpoint binding extension: the response transfer triggers
	// on the store to the variable (gdb Z2), no code breakpoint needed.
	cpu, im := buildBareMetal(t, doublerSrc)
	target, err := StartGDBTarget(cpu, TransportPipe)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel("top")
	sim.NewClock(k, "clk", 10*sim.NS)
	g, err := NewGDBKernel(k, target.HostConn, im, GDBKernelOptions{
		CommonOptions: CommonOptions{CPUPeriod: sim.NS},
		Bindings: []VarBinding{
			{Port: "req", Var: "req", Size: 4, Dir: ToISS, Label: "bp_req"},
			{Port: "resp", Var: "resp", Size: 4, Dir: ToSystemC, Watch: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resultsP := driveDoubler(t, k, 4)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatalf("run: %v (%v)", err, g.Err())
	}
	k.Shutdown()
	if g.Err() != nil {
		t.Fatal(g.Err())
	}
	results := *resultsP
	want := []uint32{2, 4, 6, 8}
	if len(results) != len(want) {
		t.Fatalf("results = %v", results)
	}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("results = %v", results)
		}
	}
	_ = target.Wait()
}

func TestWatchBindingRejectsToISS(t *testing.T) {
	_, im := buildBareMetal(t, doublerSrc)
	k := sim.NewKernel("t")
	_, _, err := resolveBindings(k, im, []VarBinding{
		{Port: "p", Var: "req", Size: 4, Dir: ToISS, Watch: true},
	})
	if err == nil {
		t.Fatal("watch binding with ToISS accepted")
	}
}

// pragmaDoublerSrc is the doubler annotated with the paper's §3.2
// pragmas instead of labels.
const pragmaDoublerSrc = `
_start:
    la   s0, req
    la   s1, resp
loop:
;#cosim iss_out port=req var=req size=4
    lw   a0, 0(s0)
    add  a1, a0, a0
;#cosim iss_in port=resp var=resp size=4
    sw   a1, 0(s1)
    nop
    j    loop
.data
.align 4
req:  .word 0
resp: .word 0
`

func TestParsePragmas(t *testing.T) {
	src := asm.Source{Name: "guest.s", Text: pragmaDoublerSrc}
	bindings, err := ParsePragmas(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 2 {
		t.Fatalf("bindings = %d", len(bindings))
	}
	out, in := bindings[0], bindings[1]
	if out.Dir != ToISS || out.Port != "req" || out.Var != "req" || out.Size != 4 {
		t.Fatalf("iss_out binding = %+v", out)
	}
	if in.Dir != ToSystemC || in.Port != "resp" || in.Var != "resp" {
		t.Fatalf("iss_in binding = %+v", in)
	}
	// The lw is on the line after the first pragma.
	if out.Line != 7 {
		t.Fatalf("iss_out line = %d", out.Line)
	}
}

func TestParsePragmasErrors(t *testing.T) {
	bad := []string{
		";#cosim\n",
		";#cosim sideways port=p var=v\n",
		";#cosim iss_in port=p\n",
		";#cosim iss_in var=v\n",
		";#cosim iss_in port=p var=v size=zero\n",
		";#cosim iss_in port=p var=v bogus=1\n",
	}
	for _, src := range bad {
		if _, err := ParsePragmas(asm.Source{Name: "b.s", Text: src}); err == nil {
			t.Errorf("pragma %q accepted", src)
		}
	}
}

func TestPragmaDrivenCoSimulation(t *testing.T) {
	// End to end: the pragma filter alone configures the co-simulation.
	src := asm.Source{Name: "guest.s", Text: pragmaDoublerSrc}
	bindings, err := ParsePragmas(src)
	if err != nil {
		t.Fatal(err)
	}
	cpu, im := buildBareMetal(t, pragmaDoublerSrc)
	_ = cpu
	target, err := StartGDBTarget(cpu, TransportPipe)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel("top")
	sim.NewClock(k, "clk", 10*sim.NS)
	g, err := NewGDBKernel(k, target.HostConn, im, GDBKernelOptions{
		CommonOptions: CommonOptions{CPUPeriod: sim.NS},
		Bindings:      bindings,
	})
	if err != nil {
		t.Fatal(err)
	}
	resultsP := driveDoubler(t, k, 3)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatalf("run: %v (%v)", err, g.Err())
	}
	k.Shutdown()
	if results := *resultsP; len(results) != 3 || results[2] != 6 {
		t.Fatalf("results = %v", results)
	}
	_ = target.Wait()
}

func TestJournalRecordsTransfers(t *testing.T) {
	cpu, im := buildBareMetal(t, doublerSrc)
	target, err := StartGDBTarget(cpu, TransportPipe)
	if err != nil {
		t.Fatal(err)
	}
	k := sim.NewKernel("top")
	sim.NewClock(k, "clk", 10*sim.NS)
	jl := NewJournal(0)
	g, err := NewGDBKernel(k, target.HostConn, im, GDBKernelOptions{
		CommonOptions: CommonOptions{CPUPeriod: sim.NS, Journal: jl},
		Bindings:      doublerBindings,
	})
	if err != nil {
		t.Fatal(err)
	}
	resultsP := driveDoubler(t, k, 3)
	if err := k.Run(sim.MaxTime); err != nil {
		t.Fatalf("run: %v (%v)", err, g.Err())
	}
	k.Shutdown()
	if len(*resultsP) != 3 {
		t.Fatalf("results = %v", *resultsP)
	}
	entries := jl.Entries()
	// 3 exchanges = 3 pokes (sc->iss) + 3 deliveries (iss->sc).
	if len(entries) != 6 {
		t.Fatalf("journal has %d entries, want 6:\n%v", len(entries), entries)
	}
	var toISS, toSC int
	var last sim.Time
	for _, e := range entries {
		if e.Scheme != "gdb-kernel" {
			t.Fatalf("entry scheme = %q", e.Scheme)
		}
		switch e.Dir {
		case "sc->iss":
			toISS++
			if e.Port != "req" || e.Bytes != 4 {
				t.Fatalf("bad poke entry %+v", e)
			}
		case "iss->sc":
			toSC++
			if e.Port != "resp" || e.Bytes != 4 {
				t.Fatalf("bad delivery entry %+v", e)
			}
		}
		if e.Time < last {
			t.Fatalf("journal not time-ordered: %v", entries)
		}
		last = e.Time
	}
	if toISS != 3 || toSC != 3 {
		t.Fatalf("toISS=%d toSC=%d", toISS, toSC)
	}
	var csv bytes.Buffer
	if err := jl.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(csv.Bytes(), []byte("time_ps,scheme,dir,port,bytes,cycles")) {
		t.Fatal("CSV header missing")
	}
	_ = target.Wait()
}

func TestJournalLimitAndNilSafety(t *testing.T) {
	jl := NewJournal(2)
	for i := 0; i < 5; i++ {
		jl.Record(JournalEntry{Port: "p", Time: sim.Time(i)})
	}
	if jl.Len() != 2 || jl.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", jl.Len(), jl.Dropped())
	}
	if jl.Entries()[0].Time != 3 {
		t.Fatalf("entries = %v", jl.Entries())
	}
	var nilJournal *Journal
	nilJournal.Record(JournalEntry{}) // must not panic
}
