// Package core implements the paper's contribution: three ISS–SystemC
// co-simulation schemes over the simulation kernel in internal/sim.
//
//   - GDBWrapper — the state-of-the-art baseline of Benini et al. [14]:
//     an explicitly instantiated wrapper module whose clocked sc_method
//     drives the ISS in lock-step through the GDB remote debugging
//     interface, one IPC round trip per clock cycle.
//   - GDBKernel — the paper's first scheme (§3): the wrapper is embedded
//     in the simulation kernel; the ISS free-runs under gdb 'continue'
//     and a begin-of-cycle kernel hook checks an in-process queue for
//     breakpoint stops, transferring data between guest variables and
//     iss_in/iss_out ports.
//   - DriverKernel — the paper's second scheme (§4): the guest runs an
//     RTOS whose device driver exchanges binary READ/WRITE messages with
//     the kernel over a data socket, and receives interrupts over a
//     second socket, with no GDB framing at all.
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Message types of the Driver-Kernel protocol (§4.2).
const (
	MsgWrite = 1 // driver -> kernel: data for an iss_in port
	MsgRead  = 2 // driver -> kernel: request the value of an iss_out port
	MsgData  = 3 // kernel -> driver: reply to MsgRead
)

// Reserved interrupt ids on the interrupt socket (mirrors rtos).
const (
	IntDataReady = 0xfffffff0
)

// MaxMessageSize bounds a single protocol message.
const MaxMessageSize = 1 << 16

// Message is one Driver-Kernel protocol message. Port names select the
// SystemC iss_in/iss_out port (the SC_Port field of Figure 4); Cycles is
// the guest cycle counter at send time, used for time coupling.
type Message struct {
	Type   uint32
	Cycles uint32 // WRITE/READ only
	Port   string // WRITE/READ only
	Data   []byte // WRITE/DATA only
}

// Encode renders the message in wire format:
//
//	WRITE: [size][type=1][cycles][namelen][name][datalen][data]
//	READ:  [size][type=2][cycles][namelen][name]
//	DATA:  [size][type=3][datalen][data]
//
// size counts the bytes following the size word.
func (m Message) Encode() ([]byte, error) {
	var body []byte
	le := binary.LittleEndian
	word := func(v uint32) { body = le.AppendUint32(body, v) }
	switch m.Type {
	case MsgWrite:
		word(MsgWrite)
		word(m.Cycles)
		word(uint32(len(m.Port)))
		body = append(body, m.Port...)
		word(uint32(len(m.Data)))
		body = append(body, m.Data...)
	case MsgRead:
		word(MsgRead)
		word(m.Cycles)
		word(uint32(len(m.Port)))
		body = append(body, m.Port...)
	case MsgData:
		word(MsgData)
		word(uint32(len(m.Data)))
		body = append(body, m.Data...)
	default:
		return nil, fmt.Errorf("core: unknown message type %d", m.Type)
	}
	out := make([]byte, 4, 4+len(body))
	le.PutUint32(out, uint32(len(body)))
	return append(out, body...), nil
}

// ReadMessage decodes one message from the stream.
func ReadMessage(r *bufio.Reader) (Message, error) {
	le := binary.LittleEndian
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	size := le.Uint32(hdr[:])
	if size < 4 || size > MaxMessageSize {
		return Message{}, fmt.Errorf("core: bad message size %d", size)
	}
	body := make([]byte, size)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	var m Message
	m.Type = le.Uint32(body[0:4])
	rest := body[4:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("core: truncated message type %d", m.Type)
		}
		return nil
	}
	switch m.Type {
	case MsgWrite, MsgRead:
		if err := need(8); err != nil {
			return Message{}, err
		}
		m.Cycles = le.Uint32(rest[0:4])
		nameLen := le.Uint32(rest[4:8])
		rest = rest[8:]
		if err := need(int(nameLen)); err != nil {
			return Message{}, err
		}
		m.Port = string(rest[:nameLen])
		rest = rest[nameLen:]
		if m.Type == MsgWrite {
			if err := need(4); err != nil {
				return Message{}, err
			}
			dataLen := le.Uint32(rest[0:4])
			rest = rest[4:]
			if err := need(int(dataLen)); err != nil {
				return Message{}, err
			}
			m.Data = append([]byte(nil), rest[:dataLen]...)
		}
	case MsgData:
		if err := need(4); err != nil {
			return Message{}, err
		}
		dataLen := le.Uint32(rest[0:4])
		rest = rest[4:]
		if err := need(int(dataLen)); err != nil {
			return Message{}, err
		}
		m.Data = append([]byte(nil), rest[:dataLen]...)
	default:
		return Message{}, fmt.Errorf("core: unknown message type %d", m.Type)
	}
	return m, nil
}

// EncodeInterrupt renders an interrupt-socket notification (a 4-byte
// little-endian id, as read by the guest driver).
func EncodeInterrupt(id uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], id)
	return b[:]
}
