// Package core implements the paper's contribution: three ISS–SystemC
// co-simulation schemes over the simulation kernel in internal/sim.
//
//   - GDBWrapper — the state-of-the-art baseline of Benini et al. [14]:
//     an explicitly instantiated wrapper module whose clocked sc_method
//     drives the ISS in lock-step through the GDB remote debugging
//     interface, one IPC round trip per clock cycle.
//   - GDBKernel — the paper's first scheme (§3): the wrapper is embedded
//     in the simulation kernel; the ISS free-runs under gdb 'continue'
//     and a begin-of-cycle kernel hook checks an in-process queue for
//     breakpoint stops, transferring data between guest variables and
//     iss_in/iss_out ports.
//   - DriverKernel — the paper's second scheme (§4): the guest runs an
//     RTOS whose device driver exchanges binary READ/WRITE messages with
//     the kernel over a data socket, and receives interrupts over a
//     second socket, with no GDB framing at all.
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Message types of the Driver-Kernel protocol (§4.2).
const (
	MsgWrite = 1 // driver -> kernel: data for an iss_in port
	MsgRead  = 2 // driver -> kernel: request the value of an iss_out port
	MsgData  = 3 // kernel -> driver: reply to MsgRead
)

// Reserved interrupt ids on the interrupt socket (mirrors rtos).
const (
	IntDataReady = 0xfffffff0
)

// MaxMessageSize bounds a single protocol message.
const MaxMessageSize = 1 << 16

// Message is one Driver-Kernel protocol message. Port names select the
// SystemC iss_in/iss_out port (the SC_Port field of Figure 4); Cycles is
// the guest cycle counter at send time, used for time coupling.
type Message struct {
	Type   uint32
	Cycles uint32 // WRITE/READ only
	Port   string // WRITE/READ only
	Data   []byte // WRITE/DATA only

	// CPU identifies the guest processor the message belongs to. It is
	// not part of the wire format: channel identity is the routing key,
	// so the per-CPU reader stamps it at ingress and the Driver-Kernel
	// drain/flush hooks use it to address the per-CPU scheme state.
	CPU int

	// pooled is the dataBufPool token backing Data when the message was
	// decoded by ReadMessage; Release hands it back. Keeping the pointer
	// here lets Release return the buffer without re-boxing it.
	pooled *[]byte
}

// wireBufPool recycles encode/decode scratch buffers so the per-cycle
// transport paths stop allocating once warm.
var wireBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// dataBufPool recycles decoded Message.Data payloads; see Message.Release.
var dataBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 256); return &b },
}

// getDataBuf returns a pooled buffer of length n plus its pool token.
func getDataBuf(n int) ([]byte, *[]byte) {
	bp := dataBufPool.Get().(*[]byte)
	b := *bp
	if cap(b) < n {
		b = make([]byte, 0, n)
		*bp = b
	}
	return b[:n], bp
}

// Release returns a decoded message's payload buffer to the codec pool
// and clears Data. Call it only once the payload is no longer referenced
// anywhere (sim.IssIn.Deliver copies, so the Driver-Kernel drain path
// releases right after delivery). On messages whose Data was set by the
// caller rather than by ReadMessage, Release just clears the field.
func (m *Message) Release() {
	bp := m.pooled
	m.pooled = nil
	m.Data = nil
	if bp == nil {
		return
	}
	*bp = (*bp)[:0]
	dataBufPool.Put(bp)
}

// Port-name interning: co-simulation traffic repeats a handful of port
// names millions of times, so decoding shares one string per name
// instead of allocating each time. The table is bounded so a hostile
// stream of unique names cannot grow it without limit.
var (
	portNamesMu sync.RWMutex
	portNames   = make(map[string]string)
)

const maxInternedPorts = 1024

func internPort(b []byte) string {
	portNamesMu.RLock()
	s, ok := portNames[string(b)] // compiler elides the []byte->string copy for the lookup
	portNamesMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	portNamesMu.Lock()
	if len(portNames) < maxInternedPorts {
		portNames[s] = s
	}
	portNamesMu.Unlock()
	return s
}

// bodyLen returns the number of wire bytes following the size word.
func (m Message) bodyLen() (int, error) {
	switch m.Type {
	case MsgWrite:
		return 12 + len(m.Port) + 4 + len(m.Data), nil
	case MsgRead:
		return 12 + len(m.Port), nil
	case MsgData:
		return 8 + len(m.Data), nil
	}
	return 0, fmt.Errorf("core: unknown message type %d", m.Type)
}

// AppendTo appends the message's wire format to dst and returns the
// extended slice. It allocates only when dst lacks capacity.
func (m Message) AppendTo(dst []byte) ([]byte, error) {
	n, err := m.bodyLen()
	if err != nil {
		return dst, err
	}
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(n))
	dst = le.AppendUint32(dst, m.Type)
	switch m.Type {
	case MsgWrite:
		dst = le.AppendUint32(dst, m.Cycles)
		dst = le.AppendUint32(dst, uint32(len(m.Port)))
		dst = append(dst, m.Port...)
		dst = le.AppendUint32(dst, uint32(len(m.Data)))
		dst = append(dst, m.Data...)
	case MsgRead:
		dst = le.AppendUint32(dst, m.Cycles)
		dst = le.AppendUint32(dst, uint32(len(m.Port)))
		dst = append(dst, m.Port...)
	case MsgData:
		dst = le.AppendUint32(dst, uint32(len(m.Data)))
		dst = append(dst, m.Data...)
	}
	return dst, nil
}

// Encode renders the message in wire format:
//
//	WRITE: [size][type=1][cycles][namelen][name][datalen][data]
//	READ:  [size][type=2][cycles][namelen][name]
//	DATA:  [size][type=3][datalen][data]
//
// size counts the bytes following the size word. The result is a single
// exact-size allocation; hot paths that can bound the buffer's lifetime
// should prefer WriteMessage, which allocates nothing in steady state.
func (m Message) Encode() ([]byte, error) {
	n, err := m.bodyLen()
	if err != nil {
		return nil, err
	}
	return m.AppendTo(make([]byte, 0, 4+n))
}

// WriteMessage encodes m through a pooled scratch buffer and writes it
// to w in one call.
func WriteMessage(w io.Writer, m Message) error {
	bp := wireBufPool.Get().(*[]byte)
	buf, err := m.AppendTo((*bp)[:0])
	if err == nil {
		_, err = w.Write(buf)
	}
	*bp = buf
	wireBufPool.Put(bp)
	return err
}

// ReadMessage decodes one message from the stream. The returned
// message's Data (if any) comes from the codec buffer pool; callers on
// steady-state paths should hand it back with Release once delivered.
func ReadMessage(r *bufio.Reader) (Message, error) {
	le := binary.LittleEndian
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	size := le.Uint32(hdr[:])
	if size < 4 || size > MaxMessageSize {
		return Message{}, fmt.Errorf("core: bad message size %d", size)
	}
	bp := wireBufPool.Get().(*[]byte)
	defer wireBufPool.Put(bp)
	body := *bp
	if cap(body) < int(size) {
		body = make([]byte, size)
		*bp = body
	}
	body = body[:size]
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, err
	}
	var m Message
	m.Type = le.Uint32(body[0:4])
	rest := body[4:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("core: truncated message type %d", m.Type)
		}
		return nil
	}
	switch m.Type {
	case MsgWrite, MsgRead:
		if err := need(8); err != nil {
			return Message{}, err
		}
		m.Cycles = le.Uint32(rest[0:4])
		nameLen := le.Uint32(rest[4:8])
		rest = rest[8:]
		if err := need(int(nameLen)); err != nil {
			return Message{}, err
		}
		m.Port = internPort(rest[:nameLen])
		rest = rest[nameLen:]
		if m.Type == MsgWrite {
			if err := need(4); err != nil {
				return Message{}, err
			}
			dataLen := le.Uint32(rest[0:4])
			rest = rest[4:]
			if err := need(int(dataLen)); err != nil {
				return Message{}, err
			}
			if dataLen > 0 {
				m.Data, m.pooled = getDataBuf(int(dataLen))
				copy(m.Data, rest[:dataLen])
			}
		}
	case MsgData:
		if err := need(4); err != nil {
			return Message{}, err
		}
		dataLen := le.Uint32(rest[0:4])
		rest = rest[4:]
		if err := need(int(dataLen)); err != nil {
			return Message{}, err
		}
		if dataLen > 0 {
			m.Data, m.pooled = getDataBuf(int(dataLen))
			copy(m.Data, rest[:dataLen])
		}
	default:
		return Message{}, fmt.Errorf("core: unknown message type %d", m.Type)
	}
	return m, nil
}

// EncodeInterrupt renders an interrupt-socket notification (a 4-byte
// little-endian id, as read by the guest driver).
func EncodeInterrupt(id uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], id)
	return b[:]
}
