// Package core implements the paper's contribution: three ISS–SystemC
// co-simulation schemes over the simulation kernel in internal/sim.
//
//   - GDBWrapper — the state-of-the-art baseline of Benini et al. [14]:
//     an explicitly instantiated wrapper module whose clocked sc_method
//     drives the ISS in lock-step through the GDB remote debugging
//     interface, one IPC round trip per clock cycle.
//   - GDBKernel — the paper's first scheme (§3): the wrapper is embedded
//     in the simulation kernel; the ISS free-runs under gdb 'continue'
//     and a begin-of-cycle kernel hook checks an in-process queue for
//     breakpoint stops, transferring data between guest variables and
//     iss_in/iss_out ports.
//   - DriverKernel — the paper's second scheme (§4): the guest runs an
//     RTOS whose device driver exchanges binary READ/WRITE messages with
//     the kernel over a data socket, and receives interrupts over a
//     second socket, with no GDB framing at all.
package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Message types of the Driver-Kernel protocol (§4.2).
const (
	MsgWrite = 1 // driver -> kernel: data for an iss_in port
	MsgRead  = 2 // driver -> kernel: request the value of an iss_out port
	MsgData  = 3 // kernel -> driver: reply to MsgRead
	MsgBatch = 4 // either direction: versioned envelope of coalesced frames
)

// BatchVersion is the current BATCH envelope version. Decoders reject
// other versions so the frame layout can evolve without silent
// misparses on mixed-version links.
const BatchVersion = 1

// Reserved interrupt ids on the interrupt socket (mirrors rtos).
const (
	IntDataReady = 0xfffffff0
)

// MaxMessageSize bounds a single protocol message.
const MaxMessageSize = 1 << 16

// MaxBatchSize bounds a BATCH envelope: it must hold several ordinary
// messages, so it is bounded separately from (and larger than) the
// per-message cap.
const MaxBatchSize = 1 << 20

// dataBufsInUse tracks pooled payload buffers handed out by getDataBuf
// and not yet returned by Release. It exists for the leak-regression
// tests: every codec error path must leave this balanced.
var dataBufsInUse atomic.Int64

// DataBufsInUse reports the number of pooled payload buffers currently
// checked out of the codec pool. Steady-state decode/deliver/release
// loops keep it near zero; tests use it to catch decode paths that drop
// buffers on error.
func DataBufsInUse() int64 { return dataBufsInUse.Load() }

// Message is one Driver-Kernel protocol message. Port names select the
// SystemC iss_in/iss_out port (the SC_Port field of Figure 4); Cycles is
// the guest cycle counter at send time, used for time coupling.
type Message struct {
	Type   uint32
	Cycles uint32 // WRITE/READ only
	Port   string // WRITE/READ only
	Data   []byte // WRITE/DATA only

	// CPU identifies the guest processor the message belongs to. It is
	// not part of the wire format: channel identity is the routing key,
	// so the per-CPU reader stamps it at ingress and the Driver-Kernel
	// drain/flush hooks use it to address the per-CPU scheme state.
	CPU int

	// pooled is the dataBufPool token backing Data when the message was
	// decoded by ReadMessage; Release hands it back. Keeping the pointer
	// here lets Release return the buffer without re-boxing it.
	pooled *[]byte
}

// wireBufPool recycles encode/decode scratch buffers so the per-cycle
// transport paths stop allocating once warm.
var wireBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 512); return &b },
}

// dataBufPool recycles decoded Message.Data payloads; see Message.Release.
var dataBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 256); return &b },
}

// getDataBuf returns a pooled buffer of length n plus its pool token.
func getDataBuf(n int) ([]byte, *[]byte) {
	bp := dataBufPool.Get().(*[]byte)
	b := *bp
	if cap(b) < n {
		b = make([]byte, 0, n)
		*bp = b
	}
	dataBufsInUse.Add(1)
	return b[:n], bp
}

// Release returns a decoded message's payload buffer to the codec pool
// and clears Data. Call it only once the payload is no longer referenced
// anywhere (sim.IssIn.Deliver copies, so the Driver-Kernel drain path
// releases right after delivery). On messages whose Data was set by the
// caller rather than by ReadMessage, Release just clears the field.
func (m *Message) Release() {
	bp := m.pooled
	m.pooled = nil
	m.Data = nil
	if bp == nil {
		return
	}
	*bp = (*bp)[:0]
	dataBufPool.Put(bp)
	dataBufsInUse.Add(-1)
}

// Port-name interning: co-simulation traffic repeats a handful of port
// names millions of times, so decoding shares one string per name
// instead of allocating each time. The table is bounded so a hostile
// stream of unique names cannot grow it without limit.
var (
	portNamesMu sync.RWMutex
	portNames   = make(map[string]string)
)

const maxInternedPorts = 1024

func internPort(b []byte) string {
	portNamesMu.RLock()
	s, ok := portNames[string(b)] // compiler elides the []byte->string copy for the lookup
	portNamesMu.RUnlock()
	if ok {
		return s
	}
	s = string(b)
	portNamesMu.Lock()
	if len(portNames) < maxInternedPorts {
		portNames[s] = s
	}
	portNamesMu.Unlock()
	return s
}

// bodyLen returns the number of wire bytes following the size word.
func (m Message) bodyLen() (int, error) {
	switch m.Type {
	case MsgWrite:
		return 12 + len(m.Port) + 4 + len(m.Data), nil
	case MsgRead:
		return 12 + len(m.Port), nil
	case MsgData:
		return 8 + len(m.Data), nil
	}
	return 0, fmt.Errorf("core: unknown message type %d", m.Type)
}

// AppendTo appends the message's wire format to dst and returns the
// extended slice. It allocates only when dst lacks capacity.
func (m Message) AppendTo(dst []byte) ([]byte, error) {
	n, err := m.bodyLen()
	if err != nil {
		return dst, err
	}
	le := binary.LittleEndian
	dst = le.AppendUint32(dst, uint32(n))
	dst = le.AppendUint32(dst, m.Type)
	switch m.Type {
	case MsgWrite:
		dst = le.AppendUint32(dst, m.Cycles)
		dst = le.AppendUint32(dst, uint32(len(m.Port)))
		dst = append(dst, m.Port...)
		dst = le.AppendUint32(dst, uint32(len(m.Data)))
		dst = append(dst, m.Data...)
	case MsgRead:
		dst = le.AppendUint32(dst, m.Cycles)
		dst = le.AppendUint32(dst, uint32(len(m.Port)))
		dst = append(dst, m.Port...)
	case MsgData:
		dst = le.AppendUint32(dst, uint32(len(m.Data)))
		dst = append(dst, m.Data...)
	}
	return dst, nil
}

// Encode renders the message in wire format:
//
//	WRITE: [size][type=1][cycles][namelen][name][datalen][data]
//	READ:  [size][type=2][cycles][namelen][name]
//	DATA:  [size][type=3][datalen][data]
//
// size counts the bytes following the size word. The result is a single
// exact-size allocation; hot paths that can bound the buffer's lifetime
// should prefer WriteMessage, which allocates nothing in steady state.
func (m Message) Encode() ([]byte, error) {
	n, err := m.bodyLen()
	if err != nil {
		return nil, err
	}
	return m.AppendTo(make([]byte, 0, 4+n))
}

// WriteMessage encodes m through a pooled scratch buffer and writes it
// to w in one call.
func WriteMessage(w io.Writer, m Message) error {
	bp := wireBufPool.Get().(*[]byte)
	buf, err := m.AppendTo((*bp)[:0])
	if err == nil {
		_, err = w.Write(buf)
	}
	*bp = buf
	wireBufPool.Put(bp)
	return err
}

// decodeBody decodes one message body (type word onward, size word
// already stripped) and the number of body bytes consumed. A decoded
// payload comes from the codec buffer pool; decodeBody itself never
// leaks — a pooled buffer is only checked out as the final, infallible
// step of a branch — so error returns carry no buffers to release.
func decodeBody(body []byte) (Message, int, error) {
	le := binary.LittleEndian
	if len(body) < 4 {
		return Message{}, 0, fmt.Errorf("core: truncated message header")
	}
	var m Message
	m.Type = le.Uint32(body[0:4])
	rest := body[4:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("core: truncated message type %d", m.Type)
		}
		return nil
	}
	switch m.Type {
	case MsgWrite, MsgRead:
		if err := need(8); err != nil {
			return Message{}, 0, err
		}
		m.Cycles = le.Uint32(rest[0:4])
		nameLen := le.Uint32(rest[4:8])
		rest = rest[8:]
		if err := need(int(nameLen)); err != nil {
			return Message{}, 0, err
		}
		m.Port = internPort(rest[:nameLen])
		rest = rest[nameLen:]
		if m.Type == MsgWrite {
			if err := need(4); err != nil {
				return Message{}, 0, err
			}
			dataLen := le.Uint32(rest[0:4])
			rest = rest[4:]
			if err := need(int(dataLen)); err != nil {
				return Message{}, 0, err
			}
			if dataLen > 0 {
				m.Data, m.pooled = getDataBuf(int(dataLen))
				copy(m.Data, rest[:dataLen])
			}
			rest = rest[dataLen:]
		}
	case MsgData:
		if err := need(4); err != nil {
			return Message{}, 0, err
		}
		dataLen := le.Uint32(rest[0:4])
		rest = rest[4:]
		if err := need(int(dataLen)); err != nil {
			return Message{}, 0, err
		}
		if dataLen > 0 {
			m.Data, m.pooled = getDataBuf(int(dataLen))
			copy(m.Data, rest[:dataLen])
		}
		rest = rest[dataLen:]
	default:
		return Message{}, 0, fmt.Errorf("core: unknown message type %d", m.Type)
	}
	return m, len(body) - len(rest), nil
}

// readFrame reads one size-prefixed frame body into a pooled scratch
// buffer. The caller must return bp to wireBufPool when done with body.
func readFrame(r *bufio.Reader, limit uint32) (body []byte, bp *[]byte, err error) {
	le := binary.LittleEndian
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, err
	}
	size := le.Uint32(hdr[:])
	if size < 4 || size > limit {
		return nil, nil, fmt.Errorf("core: bad message size %d", size)
	}
	bp = wireBufPool.Get().(*[]byte)
	body = *bp
	if cap(body) < int(size) {
		body = make([]byte, size)
		*bp = body
	}
	body = body[:size]
	if _, err := io.ReadFull(r, body); err != nil {
		wireBufPool.Put(bp)
		return nil, nil, err
	}
	return body, bp, nil
}

// ReadMessage decodes one message from the stream. The returned
// message's Data (if any) comes from the codec buffer pool; callers on
// steady-state paths should hand it back with Release once delivered.
// BATCH envelopes are rejected — coalescing-aware readers use
// ReadMessages, which accepts both plain frames and envelopes.
func ReadMessage(r *bufio.Reader) (Message, error) {
	body, bp, err := readFrame(r, MaxMessageSize)
	if err != nil {
		return Message{}, err
	}
	defer wireBufPool.Put(bp)
	if binary.LittleEndian.Uint32(body[0:4]) == MsgBatch {
		return Message{}, fmt.Errorf("core: unexpected BATCH envelope (use ReadMessages)")
	}
	m, _, err := decodeBody(body)
	if err != nil {
		return Message{}, err
	}
	return m, nil
}

// AppendBatchTo appends a version-1 BATCH envelope holding msgs to dst:
//
//	BATCH: [size][type=4][version][count][frame][frame]...
//
// where each inner frame is an ordinary size-prefixed WRITE/READ/DATA
// frame. Envelopes never nest. An empty msgs encodes a valid zero-count
// envelope; writers skip it instead (see WriteBatch).
func AppendBatchTo(dst []byte, msgs []Message) ([]byte, error) {
	le := binary.LittleEndian
	start := len(dst)
	dst = le.AppendUint32(dst, 0) // size, patched below
	dst = le.AppendUint32(dst, MsgBatch)
	dst = le.AppendUint32(dst, BatchVersion)
	dst = le.AppendUint32(dst, uint32(len(msgs)))
	for _, m := range msgs {
		if m.Type == MsgBatch {
			return dst[:start], fmt.Errorf("core: nested BATCH envelope")
		}
		var err error
		if dst, err = m.AppendTo(dst); err != nil {
			return dst[:start], err
		}
	}
	size := len(dst) - start - 4
	if size > MaxBatchSize {
		return dst[:start], fmt.Errorf("core: batch size %d exceeds limit", size)
	}
	le.PutUint32(dst[start:start+4], uint32(size))
	return dst, nil
}

// WriteBatch writes msgs to w as one BATCH envelope — one transport
// write for every message coalesced since the last flush point. A
// single message goes out as a plain frame (the envelope would only add
// header bytes), and an empty slice writes nothing.
func WriteBatch(w io.Writer, msgs []Message) error {
	switch len(msgs) {
	case 0:
		return nil
	case 1:
		return WriteMessage(w, msgs[0])
	}
	bp := wireBufPool.Get().(*[]byte)
	buf, err := AppendBatchTo((*bp)[:0], msgs)
	if err == nil {
		_, err = w.Write(buf)
	}
	*bp = buf
	wireBufPool.Put(bp)
	return err
}

// ReadMessages decodes the next frame from the stream, appending its
// message — or, for a BATCH envelope, every inner message in order — to
// dst and returning the extended slice. Decoded payloads come from the
// codec buffer pool exactly as with ReadMessage. If an envelope fails
// mid-decode (truncated inner frame, unknown inner type), the messages
// already decoded from it are released before the error returns, so a
// poisoned envelope cannot leak pooled buffers.
func ReadMessages(r *bufio.Reader, dst []Message) ([]Message, error) {
	body, bp, err := readFrame(r, MaxBatchSize)
	if err != nil {
		return dst, err
	}
	defer wireBufPool.Put(bp)
	le := binary.LittleEndian
	if le.Uint32(body[0:4]) != MsgBatch {
		if len(body) > MaxMessageSize {
			return dst, fmt.Errorf("core: bad message size %d", len(body))
		}
		m, _, err := decodeBody(body)
		if err != nil {
			return dst, err
		}
		return append(dst, m), nil
	}
	if len(body) < 12 {
		return dst, fmt.Errorf("core: truncated BATCH header")
	}
	if v := le.Uint32(body[4:8]); v != BatchVersion {
		return dst, fmt.Errorf("core: unknown BATCH version %d", v)
	}
	count := le.Uint32(body[8:12])
	rest := body[12:]
	base := len(dst)
	fail := func(err error) ([]Message, error) {
		for i := base; i < len(dst); i++ {
			dst[i].Release()
		}
		return dst[:base], err
	}
	for i := uint32(0); i < count; i++ {
		if len(rest) < 4 {
			return fail(fmt.Errorf("core: truncated BATCH envelope at frame %d", i))
		}
		size := le.Uint32(rest[0:4])
		if size < 4 || size > MaxMessageSize || int(size) > len(rest)-4 {
			return fail(fmt.Errorf("core: bad inner frame size %d at frame %d", size, i))
		}
		inner := rest[4 : 4+size]
		if le.Uint32(inner[0:4]) == MsgBatch {
			return fail(fmt.Errorf("core: nested BATCH envelope at frame %d", i))
		}
		m, n, err := decodeBody(inner)
		if err != nil {
			return fail(err)
		}
		if n != int(size) {
			m.Release()
			return fail(fmt.Errorf("core: inner frame %d has %d trailing bytes", i, int(size)-n))
		}
		dst = append(dst, m)
		rest = rest[4+size:]
	}
	if len(rest) != 0 {
		return fail(fmt.Errorf("core: BATCH envelope has %d trailing bytes", len(rest)))
	}
	return dst, nil
}

// EncodeInterrupt renders an interrupt-socket notification (a 4-byte
// little-endian id, as read by the guest driver).
func EncodeInterrupt(id uint32) []byte {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], id)
	return b[:]
}
