package core

import (
	"fmt"
	"io"

	"cosim/internal/asm"
	"cosim/internal/gdb"
	"cosim/internal/sim"
)

// GDBWrapper is the state-of-the-art baseline the paper compares
// against (Benini et al. [14]): a wrapper module that the hardware
// designer instantiates explicitly. Its communication control is an
// sc_method sensitive to the clock: every clock cycle it synchronizes
// with the ISS through a full GDB remote-protocol round trip over IPC
// (the lock-step evolution the paper identifies as the bottleneck),
// advancing the ISS by a bounded instruction quantum.
type GDBWrapper struct {
	gdbEngine
	clock   *sim.Clock
	quantum uint64
	err     error
}

// GDBWrapperOptions configures the baseline wrapper.
type GDBWrapperOptions struct {
	// CommonOptions carries the journal and observability configuration.
	// The wrapper ignores CPUPeriod and SkewBound: lock-step timing is
	// implicit in the per-cycle quantum.
	CommonOptions
	// Clock drives the wrapper's sc_method (one RSP round trip per
	// positive edge).
	Clock *sim.Clock
	// InstrPerCycle is the ISS instruction quantum per clock cycle
	// (the lock-step ratio between guest speed and the clock). Default 8.
	InstrPerCycle uint64
	// Bindings maps guest variables to ISS ports, as in GDB-Kernel.
	Bindings []VarBinding
}

// NewGDBWrapper attaches the wrapper baseline. conn is the RSP
// connection; the client reads replies inline (every synchronization is
// a blocking IPC transaction, as in [14]).
func NewGDBWrapper(k *sim.Kernel, conn io.ReadWriter, im *asm.Image, opts GDBWrapperOptions) (*GDBWrapper, error) {
	if opts.Clock == nil {
		return nil, fmt.Errorf("gdb-wrapper: a clock is required")
	}
	w := &GDBWrapper{clock: opts.Clock, quantum: opts.InstrPerCycle}
	if w.quantum == 0 {
		w.quantum = 8
	}
	w.k = k
	w.cl = gdb.NewClient(conn, gdb.ClientOptions{})
	w.period = 0 // lock-step: timing is implicit in the per-cycle quantum
	w.journal = opts.Journal
	w.schemeName = "gdb-wrapper"
	w.obs.init(opts.Obs)
	var err error
	w.byAddr, w.byWatch, err = resolveBindings(k, im, opts.Bindings)
	if err != nil {
		return nil, err
	}
	if err := w.installBreakpoints(); err != nil {
		return nil, err
	}
	// The explicitly instantiated wrapper process of [14]: an sc_method
	// statically sensitive to the clock.
	k.MethodNoInit("gdb_wrapper.sync", w.sync, opts.Clock.Pos())
	k.AddFinalizer(func() { shutdownClient(w.cl, conn) })
	return w, nil
}

// Client exposes the underlying RSP client.
func (w *GDBWrapper) Client() *gdb.Client { return w.cl }

// Stats returns co-simulation activity counters.
func (w *GDBWrapper) Stats() Stats { return w.stats }

// Detach implements Scheme. The lock-step guest only executes inside
// RunQuantum transactions, so there is nothing to quiesce.
func (w *GDBWrapper) Detach() {}

// Err returns the first co-simulation error, if any.
func (w *GDBWrapper) Err() error { return w.err }

// Exited reports whether the guest program has terminated.
func (w *GDBWrapper) Exited() bool { return w.exited }

// sync runs once per clock cycle: one qRun transaction (the per-cycle
// IPC synchronization), plus breakpoint servicing when the quantum ends
// early at a stop.
func (w *GDBWrapper) sync() {
	if w.err != nil || w.exited {
		return
	}
	w.stats.Polls++
	w.obs.polls.Inc()

	// If the ISS is stopped waiting for iss_out data, check whether the
	// hardware produced it this cycle; the quantum resumes next edge.
	if w.waiting != nil {
		if _, err := w.retryWaiting(); err != nil {
			w.fail(err)
		}
		return
	}

	ev, _, err := w.cl.RunQuantum(w.quantum)
	if err != nil {
		w.fail(err)
		return
	}
	if ev == nil {
		return // quantum exhausted, target still running: next edge continues
	}
	if ev.Exited {
		w.exited = true
		return
	}
	if _, err := w.handleStop(ev); err != nil {
		w.fail(err)
	}
	// Whether or not the transfer happened, execution continues with the
	// next cycle's quantum (handleStop left waiting state if needed).
}

func (w *GDBWrapper) fail(err error) {
	if w.err == nil {
		w.err = fmt.Errorf("gdb-wrapper: %w", err)
	}
}
