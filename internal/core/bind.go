package core

import (
	"fmt"

	"cosim/internal/asm"
	"cosim/internal/sim"
)

// Direction says which way data flows through a variable binding.
type Direction int

const (
	// ToSystemC: the guest writes the variable, the kernel reads it and
	// delivers to an iss_in port (paper: breakpoint on the line that
	// immediately follows the store).
	ToSystemC Direction = iota
	// ToISS: the kernel pokes the variable before the guest reads it,
	// from an iss_out port (paper: breakpoint on the very line
	// containing the read).
	ToISS
)

// VarBinding associates a guest program variable with a SystemC ISS
// port, plus the source location where the breakpoint goes — the
// programming model of §3.2. The breakpoint may be named either by a
// source file:line (the paper's pragma flow) or by an assembly label.
type VarBinding struct {
	Port string    // iss_in / iss_out port name
	Var  string    // guest symbol of the variable
	Size int       // variable size in bytes
	Dir  Direction // data flow direction

	// Breakpoint location: Label, or File+Line.
	Label string
	File  string
	Line  int

	// Watch selects the watchpoint binding mode (extension): instead of
	// a code breakpoint on a source line, a write watchpoint (gdb Z2)
	// is set on the variable itself, so the transfer triggers on the
	// store regardless of where in the program it happens. Only valid
	// for Dir == ToSystemC.
	Watch bool
}

// binding is a resolved VarBinding.
type binding struct {
	spec     VarBinding
	varAddr  uint32
	bpAddr   uint32
	inPort   *sim.IssIn  // Dir == ToSystemC
	outPort  *sim.IssOut // Dir == ToISS
	consumed uint64      // outPort.Writes() already transferred
}

// resolveBindings turns specs into concrete addresses and kernel ports.
// Ports are created in the kernel's ISS port registry if absent. The
// first map is keyed by breakpoint address, the second (watch-mode
// bindings) by variable address.
func resolveBindings(k *sim.Kernel, im *asm.Image, specs []VarBinding) (map[uint32]*binding, map[uint32]*binding, error) {
	out := make(map[uint32]*binding, len(specs))
	watch := make(map[uint32]*binding)
	for _, s := range specs {
		varAddr, ok := im.Symbol(s.Var)
		if !ok {
			return nil, nil, fmt.Errorf("core: binding %q: undefined guest variable %q", s.Port, s.Var)
		}
		if s.Watch {
			if s.Dir != ToSystemC {
				return nil, nil, fmt.Errorf("core: binding %q: watch mode requires Dir == ToSystemC", s.Port)
			}
			if s.Size <= 0 {
				return nil, nil, fmt.Errorf("core: binding %q: bad size %d", s.Port, s.Size)
			}
			if _, dup := watch[varAddr]; dup {
				return nil, nil, fmt.Errorf("core: two watch bindings share variable %#x", varAddr)
			}
			b := &binding{spec: s, varAddr: varAddr}
			if p, ok := k.IssInPort(s.Port); ok {
				b.inPort = p
			} else {
				b.inPort = k.NewIssIn(s.Port)
			}
			watch[varAddr] = b
			continue
		}
		var bpAddr uint32
		switch {
		case s.Label != "":
			bpAddr, ok = im.Symbol(s.Label)
			if !ok {
				return nil, nil, fmt.Errorf("core: binding %q: undefined label %q", s.Port, s.Label)
			}
		case s.File != "":
			if s.Dir == ToSystemC {
				// Break at the line immediately following the store.
				bpAddr, ok = im.NextLineAddr(s.File, s.Line)
			} else {
				// Break at the line containing the read.
				bpAddr, ok = im.AddrOfLine(s.File, s.Line)
			}
			if !ok {
				return nil, nil, fmt.Errorf("core: binding %q: no code at %s:%d", s.Port, s.File, s.Line)
			}
		default:
			return nil, nil, fmt.Errorf("core: binding %q: no breakpoint location", s.Port)
		}
		if s.Size <= 0 {
			return nil, nil, fmt.Errorf("core: binding %q: bad size %d", s.Port, s.Size)
		}
		if _, dup := out[bpAddr]; dup {
			return nil, nil, fmt.Errorf("core: two bindings share breakpoint address %#x", bpAddr)
		}
		b := &binding{spec: s, varAddr: varAddr, bpAddr: bpAddr}
		if s.Dir == ToSystemC {
			if p, ok := k.IssInPort(s.Port); ok {
				b.inPort = p
			} else {
				b.inPort = k.NewIssIn(s.Port)
			}
		} else {
			if p, ok := k.IssOutPort(s.Port); ok {
				b.outPort = p
			} else {
				b.outPort = k.NewIssOut(s.Port)
			}
		}
		out[bpAddr] = b
	}
	return out, watch, nil
}
