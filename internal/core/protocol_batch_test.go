package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// decodeAll reads every frame in buf through ReadMessages until EOF.
func decodeAll(t *testing.T, buf []byte) []Message {
	t.Helper()
	br := bufio.NewReader(bytes.NewReader(buf))
	var msgs []Message
	for {
		var err error
		msgs, err = ReadMessages(br, msgs)
		if err != nil {
			if err.Error() == "EOF" {
				return msgs
			}
			t.Fatalf("ReadMessages: %v", err)
		}
	}
}

func sameMessage(a, b Message) bool {
	return a.Type == b.Type && a.Cycles == b.Cycles && a.Port == b.Port &&
		bytes.Equal(a.Data, b.Data)
}

func TestBatchRoundTrip(t *testing.T) {
	sent := []Message{
		{Type: MsgData, Data: []byte{1, 2, 3, 4}},
		{Type: MsgWrite, Cycles: 42, Port: "csum", Data: []byte{9}},
		{Type: MsgRead, Cycles: 43, Port: "pkt"},
		{Type: MsgData}, // empty payload
	}
	var buf bytes.Buffer
	if err := WriteBatch(&buf, sent); err != nil {
		t.Fatal(err)
	}
	got := decodeAll(t, buf.Bytes())
	if len(got) != len(sent) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(sent))
	}
	for i := range sent {
		if !sameMessage(got[i], sent[i]) {
			t.Errorf("message %d: %+v -> %+v", i, sent[i], got[i])
		}
		got[i].Release()
	}
}

// TestWriteBatchDegenerateSizes pins the writer's envelope policy: an
// empty slice writes nothing and a single message goes out as a plain
// frame, not a one-element envelope.
func TestWriteBatchDegenerateSizes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBatch(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty batch wrote %d bytes", buf.Len())
	}
	if err := WriteBatch(&buf, []Message{{Type: MsgData, Data: []byte{7}}}); err != nil {
		t.Fatal(err)
	}
	if typ := binary.LittleEndian.Uint32(buf.Bytes()[4:8]); typ != MsgData {
		t.Fatalf("single-message batch framed as type %d, want plain DATA", typ)
	}
	// A plain frame stays readable by the non-batch decoder too.
	m, err := ReadMessage(bufio.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	m.Release()
}

func TestReadMessagesAcceptsEmptyEnvelope(t *testing.T) {
	// Writers never emit a zero-count envelope, but decoders accept it:
	// [size=12][type=4][version=1][count=0].
	le := binary.LittleEndian
	var raw []byte
	raw = le.AppendUint32(raw, 12)
	raw = le.AppendUint32(raw, MsgBatch)
	raw = le.AppendUint32(raw, BatchVersion)
	raw = le.AppendUint32(raw, 0)
	msgs, err := ReadMessages(bufio.NewReader(bytes.NewReader(raw)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Fatalf("empty envelope decoded %d messages", len(msgs))
	}
}

func TestReadMessageRejectsEnvelope(t *testing.T) {
	batch, err := AppendBatchTo(nil, []Message{
		{Type: MsgData, Data: []byte{1}},
		{Type: MsgData, Data: []byte{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMessage(bufio.NewReader(bytes.NewReader(batch))); err == nil {
		t.Fatal("ReadMessage accepted a BATCH envelope")
	}
}

func TestAppendBatchToRejectsNesting(t *testing.T) {
	if _, err := AppendBatchTo(nil, []Message{{Type: MsgBatch}}); err == nil {
		t.Fatal("AppendBatchTo accepted a nested envelope")
	}
	if _, err := AppendBatchTo(nil, []Message{{Type: 99}}); err == nil {
		t.Fatal("AppendBatchTo accepted an unknown message type")
	}
}

func TestAppendBatchToRejectsOversize(t *testing.T) {
	big := Message{Type: MsgData, Data: make([]byte, MaxMessageSize-64)}
	msgs := make([]Message, 0, 20)
	for i := 0; i < 20; i++ { // ~1.3 MB of payload, past the 1 MB cap
		msgs = append(msgs, big)
	}
	if _, err := AppendBatchTo(nil, msgs); err == nil {
		t.Fatal("AppendBatchTo accepted an envelope past MaxBatchSize")
	}
}

func TestMaxSizeBatchRoundTrips(t *testing.T) {
	// Fill an envelope to just under MaxBatchSize with near-max frames.
	payload := make([]byte, MaxMessageSize-64)
	for i := range payload {
		payload[i] = byte(i)
	}
	var msgs []Message
	for i := 0; i < 15; i++ { // 15 * ~65 KB ≈ 0.98 MB < 1 MB
		msgs = append(msgs, Message{Type: MsgData, Data: payload})
	}
	var buf bytes.Buffer
	if err := WriteBatch(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	got := decodeAll(t, buf.Bytes())
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range got {
		if !bytes.Equal(got[i].Data, payload) {
			t.Fatalf("message %d payload corrupted", i)
		}
		got[i].Release()
	}
}

// corruptCase builds a malformed envelope byte stream and the reason it
// must be rejected.
type corruptCase struct {
	name string
	raw  func(t *testing.T) []byte
}

func corruptCases() []corruptCase {
	le := binary.LittleEndian
	goodBatch := func(t *testing.T) []byte {
		t.Helper()
		raw, err := AppendBatchTo(nil, []Message{
			{Type: MsgWrite, Cycles: 7, Port: "csum", Data: []byte{1, 2, 3, 4}},
			{Type: MsgData, Data: []byte{5, 6, 7, 8}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	return []corruptCase{
		{"truncated-envelope", func(t *testing.T) []byte {
			raw := goodBatch(t)
			// Chop the last inner frame short but fix the size word so
			// readFrame succeeds and the inner walk hits the truncation.
			raw = raw[:len(raw)-5]
			le.PutUint32(raw[0:4], uint32(len(raw)-4))
			return raw
		}},
		{"unknown-version", func(t *testing.T) []byte {
			raw := goodBatch(t)
			le.PutUint32(raw[8:12], BatchVersion+1)
			return raw
		}},
		{"undersized-header", func(t *testing.T) []byte {
			var raw []byte
			raw = le.AppendUint32(raw, 8)
			raw = le.AppendUint32(raw, MsgBatch)
			raw = le.AppendUint32(raw, BatchVersion)
			return raw // count word missing
		}},
		{"nested-envelope", func(t *testing.T) []byte {
			inner, err := AppendBatchTo(nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			var raw []byte
			raw = le.AppendUint32(raw, uint32(8+len(inner)))
			raw = le.AppendUint32(raw, MsgBatch)
			raw = le.AppendUint32(raw, BatchVersion)
			raw = le.AppendUint32(raw, 1)
			return append(raw, inner...)
		}},
		{"trailing-bytes", func(t *testing.T) []byte {
			raw := goodBatch(t)
			raw = append(raw, 0xde, 0xad)
			le.PutUint32(raw[0:4], uint32(len(raw)-4))
			return raw
		}},
		{"inner-trailing-bytes", func(t *testing.T) []byte {
			// One inner frame whose size word overstates its body: the
			// decoder must reject the leftover bytes, not absorb them.
			var inner []byte
			inner = le.AppendUint32(inner, MsgData)
			inner = le.AppendUint32(inner, 1)
			inner = append(inner, 0x55, 0x99) // datalen=1, one stray byte
			var raw []byte
			raw = le.AppendUint32(raw, uint32(12+len(inner)))
			raw = le.AppendUint32(raw, MsgBatch)
			raw = le.AppendUint32(raw, BatchVersion)
			raw = le.AppendUint32(raw, 1)
			raw = le.AppendUint32(raw, uint32(len(inner)))
			return append(raw, inner...)
		}},
	}
}

// TestReadMessagesRejectsCorruptEnvelopes drives every malformed-stream
// case and checks the leak invariant: a rejected envelope releases any
// payload buffers it had already decoded.
func TestReadMessagesRejectsCorruptEnvelopes(t *testing.T) {
	for _, tc := range corruptCases() {
		t.Run(tc.name, func(t *testing.T) {
			raw := tc.raw(t)
			before := DataBufsInUse()
			msgs, err := ReadMessages(bufio.NewReader(bytes.NewReader(raw)), nil)
			if err == nil {
				t.Fatalf("accepted %s envelope: %d messages", tc.name, len(msgs))
			}
			if len(msgs) != 0 {
				t.Fatalf("error return kept %d messages", len(msgs))
			}
			if after := DataBufsInUse(); after != before {
				t.Fatalf("leaked %d pooled buffers", after-before)
			}
		})
	}
}

// TestDecodeErrorPathsLeakNothing covers the single-frame decoder the
// same way: every truncated/unknown frame must leave the pool balanced.
func TestDecodeErrorPathsLeakNothing(t *testing.T) {
	le := binary.LittleEndian
	frame := func(body []byte) []byte {
		raw := le.AppendUint32(nil, uint32(len(body)))
		return append(raw, body...)
	}
	cases := [][]byte{
		frame(le.AppendUint32(nil, 99)),                          // unknown type
		frame(le.AppendUint32(nil, MsgWrite)),                    // truncated header
		frame(append(le.AppendUint32(nil, MsgData), 9, 0, 0, 0)), // datalen past body
		{3, 0, 0, 0},             // size below minimum
		{0xff, 0xff, 0xff, 0xff}, // size past MaxMessageSize
	}
	for i, raw := range cases {
		before := DataBufsInUse()
		if _, err := ReadMessage(bufio.NewReader(bytes.NewReader(raw))); err == nil {
			t.Fatalf("case %d: accepted corrupt frame %x", i, raw)
		}
		if after := DataBufsInUse(); after != before {
			t.Fatalf("case %d: leaked %d pooled buffers", i, after-before)
		}
	}
}

// FuzzReadMessages feeds arbitrary byte streams to the coalescing-aware
// decoder: it must never panic and never leak pooled payload buffers,
// whether the stream decodes or is rejected.
func FuzzReadMessages(f *testing.F) {
	seed := func(msgs ...Message) []byte {
		var buf bytes.Buffer
		if err := WriteBatch(&buf, msgs); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(Message{Type: MsgData, Data: []byte{1, 2, 3}},
		Message{Type: MsgWrite, Cycles: 9, Port: "csum", Data: []byte{4}}))
	f.Add(seed(Message{Type: MsgRead, Cycles: 1, Port: "pkt"}))
	f.Add([]byte{8, 0, 0, 0, 4, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		before := DataBufsInUse()
		br := bufio.NewReader(bytes.NewReader(raw))
		for {
			msgs, err := ReadMessages(br, nil)
			for i := range msgs {
				if msgs[i].Type == MsgBatch {
					t.Fatal("decoder surfaced a BATCH message")
				}
				msgs[i].Release()
			}
			if err != nil {
				break
			}
		}
		if after := DataBufsInUse(); after != before {
			t.Fatalf("leaked %d pooled buffers on input %x", after-before, raw)
		}
	})
}
