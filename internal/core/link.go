package core

import (
	"io"
	"time"

	"cosim/internal/dev"
	"cosim/internal/gdb"
	"cosim/internal/iss"
	"cosim/internal/obs"
	"cosim/internal/transport"
)

// Transport selects how the two simulators are connected. The paper's
// implementation fixed this as host-OS sockets; here it is the
// pluggable internal/transport abstraction, re-exported so scheme
// consumers keep their core.Transport spellings. See that package for
// the backend semantics and the teardown-ownership contract.
type Transport = transport.Transport

// Endpoint is one closable end of a co-simulation channel
// (transport.Endpoint). Every backend's endpoints implement io.Closer,
// which is the only interface teardown code may rely on.
type Endpoint = transport.Endpoint

// The built-in transport backends under their historical core names.
var (
	// TransportPipe uses net.Pipe (synchronous in-process channel).
	TransportPipe = transport.Pipe
	// TransportTCP uses a loopback TCP connection.
	TransportTCP = transport.TCP
	// TransportUnix uses a Unix domain socket.
	TransportUnix = transport.Unix
	// TransportRing uses in-process ring buffers — the same-process
	// fast path that skips the socket layer entirely.
	TransportRing = transport.Ring
)

// Transports lists the built-in backends in sweep order.
func Transports() []Transport { return transport.All() }

// ParseTransport resolves a transport backend by flag name
// (tcp, unix, ring, pipe).
func ParseTransport(name string) (Transport, error) { return transport.Parse(name) }

// TransportName names tr for reports and scenario labels, mapping the
// nil default to the pipe backend.
func TransportName(tr Transport) string {
	if tr == nil {
		return transport.Pipe.Name()
	}
	return tr.Name()
}

// ObservedTransport wraps tr so the endpoint pairs it creates count
// transport.<name>.{pairs,tx_bytes,rx_bytes} into reg. Nil-safe on both
// arguments; a nil transport resolves to the pipe default first.
func ObservedTransport(tr Transport, reg *obs.Registry) Transport {
	if tr == nil {
		tr = transport.Pipe
	}
	return transport.Observed(tr, reg)
}

// connPair creates a connected endpoint pair using the chosen
// transport; nil selects the in-process pipe default.
func connPair(tr Transport) (host, guest Endpoint, err error) {
	if tr == nil {
		tr = transport.Pipe
	}
	return tr.Pair()
}

// shutdownClient stops a possibly-running target and tears the
// connection down: break-in (0x03) if a continue is outstanding, then
// kill. Without the break-in, a stub running a non-terminating guest
// would spin forever — it only watches for the interrupt byte while
// executing, like a real gdbserver. The close goes through io.Closer,
// never a net.Conn assertion, so every transport backend's reader
// goroutines terminate.
func shutdownClient(cl *gdb.Client, conn io.ReadWriter) {
	if cl.Running() {
		_ = cl.Interrupt()
		if cl.Buffered() {
			_, _, _ = cl.WaitStopTimeout(time.Second)
		} else {
			_, _ = cl.WaitStop()
		}
	}
	_ = cl.Kill()
	if c, ok := conn.(io.Closer); ok {
		_ = c.Close()
	}
}

// GDBTarget is a running ISS served by a GDB stub — the software
// simulator process of the GDB schemes.
type GDBTarget struct {
	CPU  *iss.CPU
	Stub *gdb.Stub
	// HostConn is the kernel-side end of the RSP connection.
	HostConn Endpoint

	served chan error
}

// StartGDBTarget launches a stub serving cpu in its own goroutine (the
// ISS "process") and returns the kernel-side connection.
func StartGDBTarget(cpu *iss.CPU, tr Transport) (*GDBTarget, error) {
	host, guest, err := connPair(tr)
	if err != nil {
		return nil, err
	}
	t := &GDBTarget{CPU: cpu, HostConn: host, served: make(chan error, 1)}
	t.Stub = gdb.NewStub(cpu, guest)
	go func() {
		t.served <- t.Stub.Serve()
		guest.Close()
	}()
	return t, nil
}

// Wait blocks until the stub exits (after a kill/detach or connection
// close) and returns its error.
func (t *GDBTarget) Wait() error { return <-t.served }

// DriverTarget is a platform running the RTOS guest, wired to the
// Driver-Kernel sockets — the software simulator process of §4.
type DriverTarget struct {
	Platform *dev.Platform
	// DataHost and IRQHost are the kernel-side ends.
	DataHost Endpoint
	IRQHost  Endpoint
}

// ConnectDriverTarget wires a platform's CosimDev to a fresh channel
// pair per §4.1: the data channel ("port 4444") and the interrupt
// channel ("port 4445").
func ConnectDriverTarget(p *dev.Platform, tr Transport) (*DriverTarget, error) {
	dataHost, dataGuest, err := connPair(tr)
	if err != nil {
		return nil, err
	}
	irqHost, irqGuest, err := connPair(tr)
	if err != nil {
		dataHost.Close()
		dataGuest.Close()
		return nil, err
	}
	p.Cosim.ConnectData(dataGuest, dataGuest)
	p.Cosim.ConnectIRQ(irqGuest)
	return &DriverTarget{Platform: p, DataHost: dataHost, IRQHost: irqHost}, nil
}
