package core

import (
	"fmt"
	"io"
	"net"
	"time"

	"cosim/internal/dev"
	"cosim/internal/gdb"
	"cosim/internal/iss"
)

// Transport selects how the two simulators are connected. The paper's
// implementation used host-OS IPC; both an in-process pipe and real
// loopback TCP (with genuine syscall costs) are supported.
type Transport int

const (
	// TransportPipe uses net.Pipe (synchronous in-process channel).
	TransportPipe Transport = iota
	// TransportTCP uses a loopback TCP connection.
	TransportTCP
)

// connPair creates a connected pair using the chosen transport.
func connPair(tr Transport) (host, guest net.Conn, err error) {
	switch tr {
	case TransportPipe:
		host, guest = net.Pipe()
		return host, guest, nil
	case TransportTCP:
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, nil, err
		}
		defer ln.Close()
		type res struct {
			c   net.Conn
			err error
		}
		ch := make(chan res, 1)
		go func() {
			c, err := ln.Accept()
			ch <- res{c, err}
		}()
		guest, err = net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return nil, nil, err
		}
		r := <-ch
		if r.err != nil {
			guest.Close()
			return nil, nil, r.err
		}
		return r.c, guest, nil
	}
	return nil, nil, fmt.Errorf("core: unknown transport %d", tr)
}

// shutdownClient stops a possibly-running target and tears the
// connection down: break-in (0x03) if a continue is outstanding, then
// kill. Without the break-in, a stub running a non-terminating guest
// would spin forever — it only watches for the interrupt byte while
// executing, like a real gdbserver.
func shutdownClient(cl *gdb.Client, conn io.ReadWriter) {
	if cl.Running() {
		_ = cl.Interrupt()
		if cl.Buffered() {
			_, _, _ = cl.WaitStopTimeout(time.Second)
		} else {
			_, _ = cl.WaitStop()
		}
	}
	_ = cl.Kill()
	if c, ok := conn.(io.Closer); ok {
		_ = c.Close()
	}
}

// GDBTarget is a running ISS served by a GDB stub — the software
// simulator process of the GDB schemes.
type GDBTarget struct {
	CPU  *iss.CPU
	Stub *gdb.Stub
	// HostConn is the kernel-side end of the RSP connection.
	HostConn net.Conn

	served chan error
}

// StartGDBTarget launches a stub serving cpu in its own goroutine (the
// ISS "process") and returns the kernel-side connection.
func StartGDBTarget(cpu *iss.CPU, tr Transport) (*GDBTarget, error) {
	host, guest, err := connPair(tr)
	if err != nil {
		return nil, err
	}
	t := &GDBTarget{CPU: cpu, HostConn: host, served: make(chan error, 1)}
	t.Stub = gdb.NewStub(cpu, guest)
	go func() {
		t.served <- t.Stub.Serve()
		guest.Close()
	}()
	return t, nil
}

// Wait blocks until the stub exits (after a kill/detach or connection
// close) and returns its error.
func (t *GDBTarget) Wait() error { return <-t.served }

// DriverTarget is a platform running the RTOS guest, wired to the
// Driver-Kernel sockets — the software simulator process of §4.
type DriverTarget struct {
	Platform *dev.Platform
	// DataHost and IRQHost are the kernel-side ends.
	DataHost net.Conn
	IRQHost  net.Conn
}

// ConnectDriverTarget wires a platform's CosimDev to a fresh socket
// pair per §4.1: the data socket ("port 4444") and the interrupt socket
// ("port 4445").
func ConnectDriverTarget(p *dev.Platform, tr Transport) (*DriverTarget, error) {
	dataHost, dataGuest, err := connPair(tr)
	if err != nil {
		return nil, err
	}
	irqHost, irqGuest, err := connPair(tr)
	if err != nil {
		dataHost.Close()
		dataGuest.Close()
		return nil, err
	}
	p.Cosim.ConnectData(dataGuest, dataGuest)
	p.Cosim.ConnectIRQ(irqGuest)
	return &DriverTarget{Platform: p, DataHost: dataHost, IRQHost: irqHost}, nil
}
