package core

import (
	"io"
	"testing"

	"cosim/internal/obs"
)

// hotPathMessage mimics one Driver-Kernel message service: the
// pre-resolved metric touches that bracket a WRITE, plus the wire
// encode itself.
func hotPathMessage(o *driverObs, m Message) error {
	o.polls.Inc()
	o.messages.Inc()
	o.writes.Inc()
	sp := o.skewWaitNS.Start()
	err := WriteMessage(io.Discard, m)
	sp.End()
	return err
}

// TestDisabledObsMessageHotPathAllocs pins the API contract of the obs
// layer: with no registry attached (init(nil)), every metric pointer is
// nil and the instrumented message hot path allocates nothing — the
// instrumentation must cost a nil check, not a heap object.
func TestDisabledObsMessageHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool; allocation counts unstable")
	}
	var o driverObs
	o.init(nil) // disabled: all metric pointers stay nil
	m := Message{Type: MsgWrite, Cycles: 7, Port: "csum", Data: []byte{1, 2, 3, 4}}

	allocs := testing.AllocsPerRun(200, func() {
		if err := hotPathMessage(&o, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("disabled-obs message hot path allocates %.1f/op, want 0", allocs)
	}
}

// TestEnabledObsMessageHotPathAllocs guards the enabled side too: the
// registry resolves metrics once at init; per-message updates are
// atomic ops on existing objects. Only the histogram span may not touch
// the heap either — it is a stack value.
func TestEnabledObsMessageHotPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector perturbs sync.Pool; allocation counts unstable")
	}
	var o driverObs
	o.init(obs.NewRegistry())
	m := Message{Type: MsgWrite, Cycles: 7, Port: "csum", Data: []byte{1, 2, 3, 4}}

	allocs := testing.AllocsPerRun(200, func() {
		if err := hotPathMessage(&o, m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("enabled-obs message hot path allocates %.1f/op, want 0", allocs)
	}
}

func BenchmarkMessageHotPathObsDisabled(b *testing.B) {
	var o driverObs
	o.init(nil)
	m := Message{Type: MsgWrite, Cycles: 7, Port: "csum", Data: []byte{1, 2, 3, 4}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := hotPathMessage(&o, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMessageHotPathObsEnabled(b *testing.B) {
	var o driverObs
	o.init(obs.NewRegistry())
	m := Message{Type: MsgWrite, Cycles: 7, Port: "csum", Data: []byte{1, 2, 3, 4}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := hotPathMessage(&o, m); err != nil {
			b.Fatal(err)
		}
	}
}
