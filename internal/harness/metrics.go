package harness

import (
	"time"

	"cosim/internal/core"
)

// Metrics is the machine-readable per-run measurement record emitted by
// `benchtab -json`: the substrate the bench trajectory (BENCH_*.json)
// is built from, so successive perf PRs can report against a stable
// schema. Durations are plain nanosecond/picosecond integers to keep
// the report trivially parseable.
type Metrics struct {
	Scheme       string `json:"scheme"`
	Transport    string `json:"transport"`
	CPUs         int    `json:"cpus"`
	SimTime      string `json:"sim_time"`
	Delay        string `json:"delay"`
	WallNS       int64  `json:"wall_ns"`
	SimulatedPS  uint64 `json:"simulated_ps"`
	Messages     uint64 `json:"messages"`
	Transfers    uint64 `json:"transfers"`
	Polls        uint64 `json:"polls"`
	Stops        uint64 `json:"stops"`
	IntsNotified uint64 `json:"ints_notified"`
	DMI          bool   `json:"dmi,omitempty"`
	Coalesce     bool   `json:"coalesce,omitempty"`
	DMIHits      uint64 `json:"dmi_hits,omitempty"`
	DMIMisses    uint64 `json:"dmi_misses,omitempty"`
	// Quantum is the temporal-decoupling quantum ("" = lock-step);
	// QuantumSyncs/QuantumBreaks count its boundary and early syncs.
	Quantum       string  `json:"quantum,omitempty"`
	QuantumSyncs  uint64  `json:"quantum_syncs,omitempty"`
	QuantumBreaks uint64  `json:"quantum_breaks,omitempty"`
	GuestInstr    uint64  `json:"guest_instructions"`
	GuestCycles   uint64  `json:"guest_cycles"`
	Generated     uint64  `json:"generated"`
	Forwarded     uint64  `json:"forwarded"`
	ForwardedPct  float64 `json:"forwarded_pct"`
	MeanLatPS     uint64  `json:"mean_latency_ps"`
	Allocs        uint64  `json:"allocs"`
	AllocBytes    uint64  `json:"alloc_bytes"`
	// Counters is the flattened obs registry snapshot of the run (see
	// the README's Observability section for the metric names).
	Counters map[string]uint64 `json:"counters,omitempty"`
	// TraceErr carries a VCD writer failure, "" when none.
	TraceErr string `json:"trace_err,omitempty"`
}

// Metrics flattens the run into its measurement record.
func (r *Result) Metrics() Metrics {
	m := Metrics{
		Scheme:       r.Params.Scheme.String(),
		Transport:    core.TransportName(r.Params.Transport),
		CPUs:         r.Params.CPUs,
		SimTime:      r.Params.SimTime.String(),
		Delay:        r.Params.Delay.String(),
		WallNS:       r.Wall.Nanoseconds(),
		SimulatedPS:  uint64(r.Simulated),
		Messages:     r.CoStats.Messages,
		Transfers:    r.CoStats.Transfers,
		Polls:        r.CoStats.Polls,
		Stops:        r.CoStats.Stops,
		IntsNotified: r.CoStats.IntsNotified,
		DMI:          r.Params.DMI,
		Coalesce:     r.Params.Coalesce,
		DMIHits:      r.CoStats.DMIHits,
		DMIMisses:    r.CoStats.DMIMisses,
		GuestInstr:   r.GuestInstructions,
		GuestCycles:  r.GuestCycles,
		Generated:    r.Generated,
		Forwarded:    r.Forwarded,
		ForwardedPct: r.ForwardedPct(),
		MeanLatPS:    uint64(r.MeanLat),
		Allocs:       r.Allocs,
		AllocBytes:   r.AllocBytes,
		Counters:     r.Counters,
	}
	m.QuantumSyncs = r.CoStats.QuantumSyncs
	m.QuantumBreaks = r.CoStats.QuantumBreaks
	if r.Params.Quantum > 0 {
		m.Quantum = r.Params.Quantum.String()
	}
	if r.TraceErr != nil {
		m.TraceErr = r.TraceErr.Error()
	}
	return m
}

// Wall is a convenience accessor pairing the metric with its
// time.Duration form.
func (m Metrics) Wall() time.Duration { return time.Duration(m.WallNS) }
