package harness

import (
	"fmt"
	"io"
	"time"

	"cosim/internal/router"
	"cosim/internal/rtos"
	"cosim/internal/sim"
)

// Table1Row is one cell row of the paper's Table 1: wall-clock
// co-simulation time per scheme, for a set of simulated durations.
type Table1Row struct {
	Scheme Scheme
	Wall   []time.Duration // one per simulated duration
}

// Table1Scenarios enumerates the runs behind the paper's Table 1, in
// scheme-major order (the table's presentation order).
func Table1Scenarios(simTimes []sim.Time, base Params) []Scenario {
	scens := make([]Scenario, 0, len(Schemes)*len(simTimes))
	for _, s := range Schemes {
		for _, st := range simTimes {
			p := base
			p.Scheme = s
			p.SimTime = st
			scens = append(scens, Scenario{
				Name:   fmt.Sprintf("table1/%v/sim=%v%s", s, st, cpuTag(p)),
				Params: p,
			})
		}
	}
	return scens
}

// cpuTag is the scenario-name suffix for multi-processor sweeps;
// single-CPU names stay as they always were.
func cpuTag(p Params) string {
	if p.CPUs > 1 {
		return fmt.Sprintf("/cpus=%d", p.CPUs)
	}
	return ""
}

// Table1Rows folds a completed Table1Scenarios sweep back into rows.
func Table1Rows(simTimes []sim.Time, outs []RunOutcome) ([]Table1Row, error) {
	if err := FirstError(outs); err != nil {
		return nil, err
	}
	rows := make([]Table1Row, 0, len(Schemes))
	i := 0
	for _, s := range Schemes {
		row := Table1Row{Scheme: s}
		for range simTimes {
			row.Wall = append(row.Wall, outs[i].Result.Wall)
			i++
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1 reproduces the paper's Table 1: for each scheme, the wall
// clock time needed to co-simulate each simulated duration of the
// router case study. The sweep runs on `workers` parallel workers (1 =
// sequential); scheme results are identical either way since every run
// is isolated and seeded.
func Table1(simTimes []sim.Time, base Params, workers int) ([]Table1Row, error) {
	return Table1Rows(simTimes, RunAll(Table1Scenarios(simTimes, base), workers))
}

// PrintTable1 renders Table 1 in the paper's layout.
func PrintTable1(w io.Writer, simTimes []sim.Time, rows []Table1Row) {
	fmt.Fprintf(w, "Table 1: Simulation Performance Results (wall-clock per simulated time)\n")
	fmt.Fprintf(w, "%-14s", "Scheme")
	for _, st := range simTimes {
		fmt.Fprintf(w, " %12s", st)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s", r.Scheme)
		for _, d := range r.Wall {
			fmt.Fprintf(w, " %12s", d.Round(time.Millisecond/10))
		}
		fmt.Fprintln(w)
	}
	// Speedups relative to the GDB-Wrapper baseline, as discussed in §5.
	if len(rows) == 3 {
		for _, i := range []int{1, 2} {
			fmt.Fprintf(w, "%-14s", rows[i].Scheme.String()+" spd")
			for j := range rows[i].Wall {
				if rows[i].Wall[j] > 0 {
					fmt.Fprintf(w, " %11.2fx", float64(rows[0].Wall[j])/float64(rows[i].Wall[j]))
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// Figure7Point is one sample of Figure 7: forwarded percentage at a
// given inter-packet delay, for the two proposed schemes.
type Figure7Point struct {
	Delay        sim.Time
	GDBKernelPct float64
	DriverPct    float64
	GDBLat       sim.Time
	DriverLat    sim.Time
}

// Figure7 reproduces the paper's Figure 7: % of packets forwarded vs
// inter-packet delay for GDB-Kernel and Driver-Kernel. The OS overhead
// of the Driver-Kernel guest (measured in actually executed
// instructions) slows its checksum service, so its curve lies below
// GDB-Kernel's at small delays.
func Figure7(delays []sim.Time, base Params, workers int) ([]Figure7Point, error) {
	return Figure7Points(delays, RunAll(Figure7Scenarios(delays, base), workers))
}

// figure7Schemes are the two curves of Figure 7, in sweep order.
var figure7Schemes = []Scheme{GDBKernel, DriverKernel}

// Figure7Scenarios enumerates the runs behind Figure 7, delay-major.
func Figure7Scenarios(delays []sim.Time, base Params) []Scenario {
	scens := make([]Scenario, 0, len(delays)*len(figure7Schemes))
	for _, d := range delays {
		for _, s := range figure7Schemes {
			p := base
			p.Scheme = s
			p.Delay = d
			scens = append(scens, Scenario{
				Name:   fmt.Sprintf("figure7/%v/delay=%v%s", s, d, cpuTag(p)),
				Params: p,
			})
		}
	}
	return scens
}

// Figure7Points folds a completed Figure7Scenarios sweep into points.
func Figure7Points(delays []sim.Time, outs []RunOutcome) ([]Figure7Point, error) {
	if err := FirstError(outs); err != nil {
		return nil, err
	}
	points := make([]Figure7Point, 0, len(delays))
	i := 0
	for _, d := range delays {
		pt := Figure7Point{Delay: d}
		for _, s := range figure7Schemes {
			res := outs[i].Result
			i++
			if s == GDBKernel {
				pt.GDBKernelPct = res.ForwardedPct()
				pt.GDBLat = res.MeanLat
			} else {
				pt.DriverPct = res.ForwardedPct()
				pt.DriverLat = res.MeanLat
			}
		}
		points = append(points, pt)
	}
	return points, nil
}

// PrintFigure7 renders the Figure 7 series as a table plus an ASCII
// plot of the two curves.
func PrintFigure7(w io.Writer, points []Figure7Point) {
	fmt.Fprintln(w, "Figure 7: % packets forwarded vs inter-packet delay")
	fmt.Fprintf(w, "%-12s %14s %14s %12s %12s\n", "delay", "GDB-Kernel %", "Driver-Kernel %", "lat(GDB)", "lat(Drv)")
	for _, p := range points {
		fmt.Fprintf(w, "%-12s %14.1f %14.1f %12s %12s\n",
			p.Delay, p.GDBKernelPct, p.DriverPct, p.GDBLat, p.DriverLat)
	}
	fmt.Fprintln(w)
	// ASCII plot: one row per delay, 50 columns = 0..100%.
	const cols = 50
	fmt.Fprintln(w, "  (K = GDB-Kernel, D = Driver-Kernel, * = both)")
	for _, p := range points {
		line := make([]byte, cols+1)
		for i := range line {
			line[i] = ' '
		}
		ki := int(p.GDBKernelPct / 100 * cols)
		di := int(p.DriverPct / 100 * cols)
		if ki > cols {
			ki = cols
		}
		if di > cols {
			di = cols
		}
		line[di] = 'D'
		if ki == di {
			line[ki] = '*'
		} else {
			line[ki] = 'K'
		}
		fmt.Fprintf(w, "%10s |%s|\n", p.Delay, string(line))
	}
}

// LoCReport reproduces the code-size comparison of §5: the software
// overhead of the Driver-Kernel scheme over the GDB-Kernel scheme. The
// SW-side factor counts the guest application plus the device driver
// and kernel support it requires (the paper's "factor 9x ... due to the
// writing of a new driver").
type LoCReport struct {
	GDBAppLines  int     `json:"gdb_app_lines"` // bare-metal application (GDB schemes)
	DrvAppLines  int     `json:"drv_app_lines"` // RTOS application
	DriverLines  int     `json:"driver_lines"`  // co-simulation device driver
	KernelLines  int     `json:"kernel_lines"`  // uKOS kernel
	SWSideFactor float64 `json:"sw_side_factor"`
}

// CountLoC computes the report from the embedded guest sources.
func CountLoC() LoCReport {
	gdbApp, drvApp, driver := router.GuestLines()
	kern, _ := rtos.KernelLines()
	r := LoCReport{
		GDBAppLines: gdbApp,
		DrvAppLines: drvApp,
		DriverLines: driver,
		KernelLines: kern,
	}
	if gdbApp > 0 {
		r.SWSideFactor = float64(drvApp+driver) / float64(gdbApp)
	}
	return r
}

// PrintLoC renders the code-size comparison.
func PrintLoC(w io.Writer, r LoCReport) {
	fmt.Fprintln(w, "Code size (source lines), §5 comparison:")
	fmt.Fprintf(w, "  GDB schemes, software side:    %4d (bare-metal application)\n", r.GDBAppLines)
	fmt.Fprintf(w, "  Driver-Kernel, software side:  %4d (application %d + driver %d)\n",
		r.DrvAppLines+r.DriverLines, r.DrvAppLines, r.DriverLines)
	fmt.Fprintf(w, "  uKOS kernel (shared RTOS):     %4d\n", r.KernelLines)
	fmt.Fprintf(w, "  SW-side overhead factor:       %.1fx (paper reports ~9x)\n", r.SWSideFactor)
}
