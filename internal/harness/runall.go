package harness

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// Scenario names one parameterised co-simulation run of an experiment
// sweep (one Table 1 cell, one Figure 7 sample, ...).
type Scenario struct {
	Name   string
	Params Params
}

// RunOutcome is the outcome of one scenario: exactly one of Result and
// Err is set.
type RunOutcome struct {
	Scenario Scenario
	Result   *Result
	Err      error
}

// runScenario is the function RunAllContext dispatches to; a variable
// so tests can inject failures and panics.
var runScenario = RunContext

// RunAll executes the scenarios on a pool of `workers` goroutines and
// returns outcomes in scenario order. It is RunAllContext with a
// background context; existing call sites keep compiling unchanged.
func RunAll(scenarios []Scenario, workers int) []RunOutcome {
	return RunAllContext(context.Background(), scenarios, workers)
}

// RunAllContext executes the scenarios on a pool of `workers`
// goroutines under ctx and returns outcomes in scenario order,
// regardless of completion order.
//
// Every scenario owns its simulation kernel, ISS, guest image and
// sockets, so runs are fully isolated: with identical seeds, a parallel
// sweep produces exactly the per-scheme results of a sequential one —
// only the wall clock differs. workers < 1 is treated as 1; workers
// beyond len(scenarios) is clamped. A panic inside one run is captured
// into that scenario's Err (with its stack) instead of taking down the
// whole sweep.
//
// Cancelling ctx stops the sweep cooperatively: in-flight runs tear
// down at their next cycle boundary and report ctx.Err(), and scenarios
// not yet started are marked with ctx.Err() without running at all, so
// the returned slice is always fully populated.
func RunAllContext(ctx context.Context, scenarios []Scenario, workers int) []RunOutcome {
	out := make([]RunOutcome, len(scenarios))
	if len(scenarios) == 0 {
		return out
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					out[i] = RunOutcome{Scenario: scenarios[i], Err: err}
					continue
				}
				out[i] = runOne(ctx, scenarios[i])
			}
		}()
	}
	for i := range scenarios {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// runOne executes a single scenario with panic capture.
func runOne(ctx context.Context, s Scenario) (o RunOutcome) {
	o.Scenario = s
	defer func() {
		if r := recover(); r != nil {
			o.Result = nil
			o.Err = fmt.Errorf("harness: scenario %q panicked: %v\n%s", s.Name, r, debug.Stack())
		}
	}()
	o.Result, o.Err = runScenario(ctx, s.Params)
	return o
}

// FirstError returns the first non-nil scenario error, annotated with
// its scenario name, or nil if the whole sweep succeeded.
func FirstError(outs []RunOutcome) error {
	for _, o := range outs {
		if o.Err != nil {
			return fmt.Errorf("%s: %w", o.Scenario.Name, o.Err)
		}
	}
	return nil
}
