// Package harness assembles complete co-simulation scenarios of the
// paper's case study — router, traffic, ISS guest, co-simulation scheme
// — runs them, and reports the measurements behind Table 1 and
// Figure 7.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"cosim/internal/core"
	"cosim/internal/dev"
	"cosim/internal/iss"
	"cosim/internal/obs"
	"cosim/internal/router"
	"cosim/internal/rtos"
	"cosim/internal/sim"
)

// Scheme selects the co-simulation scheme under test.
type Scheme int

const (
	// GDBWrapper is the state-of-the-art baseline of [14].
	GDBWrapper Scheme = iota
	// GDBKernel is the paper's first proposed scheme (§3).
	GDBKernel
	// DriverKernel is the paper's second proposed scheme (§4).
	DriverKernel
)

// Schemes lists all schemes in the paper's presentation order.
var Schemes = []Scheme{GDBWrapper, GDBKernel, DriverKernel}

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case GDBWrapper:
		return "GDB-Wrapper"
	case GDBKernel:
		return "GDB-Kernel"
	case DriverKernel:
		return "Driver-Kernel"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// ParseScheme resolves a scheme by (case-insensitive) name.
func ParseScheme(name string) (Scheme, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "gdb-wrapper", "wrapper":
		return GDBWrapper, nil
	case "gdb-kernel", "kernel":
		return GDBKernel, nil
	case "driver-kernel", "driver":
		return DriverKernel, nil
	}
	return 0, fmt.Errorf("harness: unknown scheme %q", name)
}

// Set implements flag.Value, so a Scheme can be bound directly to a
// -scheme flag with flag.Var.
func (s *Scheme) Set(name string) error {
	v, err := ParseScheme(name)
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// CoreName returns the canonical scheme name core.Attach accepts.
func (s Scheme) CoreName() string { return strings.ToLower(s.String()) }

// ErrSingleCPUScheme reports a multi-CPU request against a scheme that
// can drive only one ISS. Test with errors.Is.
var ErrSingleCPUScheme = errors.New("scheme drives a single CPU")

// SupportsMultiCPU reports whether the scheme can drive several guest
// processors in one run. The lock-step GDB-Wrapper cannot: its clocked
// sc_method owns exactly one RSP connection. GDB-Kernel multiplexes N
// free-running stubs; Driver-Kernel multiplexes N data/interrupt
// channel pairs.
func (s Scheme) SupportsMultiCPU() bool { return s == GDBKernel || s == DriverKernel }

// Params configures one co-simulation run of the router case study.
type Params struct {
	Scheme Scheme
	// Transport selects the IPC backend connecting the two simulators
	// (core.TransportTCP/Unix/Ring/Pipe); nil means the in-process pipe
	// default. Run wraps it with core.ObservedTransport, so every run's
	// registry carries transport.<name>.{pairs,tx_bytes,rx_bytes}.
	Transport core.Transport

	// SimTime is the simulated duration to execute.
	SimTime sim.Time
	// ClockPeriod is the system clock (default 100ns).
	ClockPeriod sim.Time
	// CPUPeriod is the guest cycle length for time coupling (default
	// 10ns). Zero disables cycle coupling.
	CPUPeriod sim.Time
	// SkewBound bounds how far simulated time may race past an
	// in-flight ISS interaction (default 1us; see core). Zero =
	// free-running.
	SkewBound sim.Time
	// Quantum temporally decouples the Driver-Kernel scheme: each guest
	// may run ahead of kernel time by up to this much, with conservative
	// synchronization only at quantum boundaries and on early-sync
	// breaks (port access, interrupt delivery, DMI revocation). It also
	// enables the kernel's sharded cluster evaluation. Zero (the
	// default) keeps per-cycle lock-step. Ignored by GDB schemes.
	Quantum sim.Time
	// InstrPerCycle is the GDB-Wrapper lock-step quantum (default 8).
	InstrPerCycle uint64
	// CPUs is the number of checksum processors servicing the router in
	// parallel (default 1) — the multi-processor SoC configuration of
	// the title. Supported by the GDB-Kernel and Driver-Kernel schemes;
	// the lock-step GDB-Wrapper rejects values above one with
	// ErrSingleCPUScheme.
	CPUs int

	// Traffic shape.
	Delay            sim.Time // inter-packet delay per source
	PayloadWords     int
	ErrorRate        float64
	MulticastRate    float64
	FifoDepth        int
	PacketsPerSource uint64 // 0 = unlimited
	Seed             int64

	// NoDecodeCache disables the ISS predecoded-instruction cache on
	// every CPU in the run — the ablation baseline behind benchtab's
	// -nodecodecache flag.
	NoDecodeCache bool

	// DMI grants each Driver-Kernel guest direct memory windows over its
	// bound ports, serving side-effect-free port accesses without a
	// protocol message (benchtab's -dmi flag). Ignored by GDB schemes.
	DMI bool
	// Coalesce batches the Driver-Kernel's kernel->guest messages into
	// one BATCH envelope per flush point and switches the guest device's
	// read pump to frame mode (benchtab's -coalesce flag). Ignored by
	// GDB schemes.
	Coalesce bool

	// Trace, when set, receives a VCD of router occupancy.
	Trace io.Writer
	// Journal, when set, records every co-simulation transfer.
	Journal *core.Journal
	// Obs, when set, is the observability registry the run populates;
	// when nil, Run creates one (Result.Obs always holds it).
	Obs *obs.Registry
}

// WithDefaults returns p with every zero field replaced by the run
// default — the view Run executes and admission control must quota
// against (an empty SimTime is a 1ms run, not a zero-length one).
func (p Params) WithDefaults() Params { return p.withDefaults() }

// withDefaults fills zero fields.
func (p Params) withDefaults() Params {
	if p.ClockPeriod == 0 {
		p.ClockPeriod = 100 * sim.NS
	}
	if p.CPUPeriod == 0 {
		p.CPUPeriod = 10 * sim.NS
	}
	if p.SkewBound == 0 {
		p.SkewBound = sim.US
	}
	if p.InstrPerCycle == 0 {
		p.InstrPerCycle = 8
	}
	if p.Delay == 0 {
		p.Delay = 20 * sim.US
	}
	if p.PayloadWords == 0 {
		p.PayloadWords = 4
	}
	if p.FifoDepth == 0 {
		p.FifoDepth = 8
	}
	if p.SimTime == 0 {
		p.SimTime = sim.MS
	}
	if p.CPUs == 0 {
		p.CPUs = 1
	}
	return p
}

// Result is the outcome of one run.
type Result struct {
	Params Params

	Wall      time.Duration
	Simulated sim.Time

	Generated uint64
	Offered   uint64
	InDrops   uint64
	BadSent   uint64

	Dequeued  uint64
	Forwarded uint64
	Corrupted uint64
	OutDrops  uint64
	Copies    uint64

	Received   uint64
	BadContent uint64
	Misrouted  uint64
	MeanLat    sim.Time

	CoStats           core.Stats
	GuestInstructions uint64
	GuestCycles       uint64

	// Obs is the run's observability registry; Counters is its
	// flattened snapshot (counters and gauges verbatim, histograms as
	// name.count / name.sum / name.max).
	Obs      *obs.Registry
	Counters map[string]uint64

	// TraceErr reports a VCD writer failure: the trace file is
	// truncated or unwritable even though the run itself succeeded.
	TraceErr error

	// Allocs and AllocBytes are runtime.ReadMemStats deltas across the
	// run (mallocs and bytes). They are process-wide: when several runs
	// execute concurrently under RunAll, each run's delta includes its
	// neighbours' allocations, so compare them only from sequential
	// sweeps.
	Allocs     uint64
	AllocBytes uint64
}

// ForwardedPct is the y-axis of Figure 7: the percentage of generated
// packets the router forwarded.
func (r *Result) ForwardedPct() float64 {
	if r.Generated == 0 {
		return 0
	}
	return 100 * float64(r.Forwarded) / float64(r.Generated)
}

// Run executes one full co-simulation of the case study. It is
// RunContext with a background context; existing call sites keep
// compiling unchanged.
func Run(p Params) (*Result, error) { return RunContext(context.Background(), p) }

// RunContext executes one full co-simulation of the case study under
// ctx. Cancellation is cooperative: a begin-of-cycle hook watches
// ctx.Done() and stops the kernel at the next simulation-cycle
// boundary, the deferred teardown shuts the kernel, channels and guest
// runners down, and the call returns ctx.Err() instead of a Result. A
// context deadline bounds the run's wall-clock time the same way.
func RunContext(ctx context.Context, p Params) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	reg := p.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	// All channel pairs below go through the observed transport so the
	// run's registry records per-backend pair and byte counters.
	tr := core.ObservedTransport(p.Transport, reg)
	k := sim.NewKernel("soc")
	if p.Quantum > 0 {
		// Temporal decoupling pairs with sharded cluster evaluation: the
		// decoupled kernel spends more consecutive cycles in pure model
		// work, which the sharded evaluation phases spread across worker
		// goroutines (merged deterministically; see sim/cluster.go).
		k.EnableSharding(true)
	}
	clk := sim.NewClock(k, "clk", p.ClockPeriod)
	if done := ctx.Done(); done != nil {
		// Cooperative cancellation: one non-blocking poll per simulation
		// cycle, the same cadence the paper's kernel-embedded schemes use
		// for their external activity checks.
		k.AddCycleHook(func(k *sim.Kernel) {
			select {
			case <-done:
				k.Stop()
			default:
			}
		})
	}

	var (
		schemes []core.Scheme
		cpus    []*iss.CPU
		engines []router.Engine
		cleanup []func()
		quiesce []func() // halts guest goroutines before counters are read
	)
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()

	if p.CPUs > 1 && !p.Scheme.SupportsMultiCPU() {
		return nil, fmt.Errorf("harness: %v %w: the lock-step wrapper owns exactly one RSP connection; use gdb-kernel or driver-kernel for CPUs > 1", p.Scheme, ErrSingleCPUScheme)
	}
	// A multi-CPU run prefixes each CPU's iss ports so N identical
	// guests attach to one kernel without colliding.
	portPrefix := func(n int) string {
		if p.CPUs > 1 {
			return fmt.Sprintf("cpu%d.", n)
		}
		return ""
	}

	switch p.Scheme {
	case GDBWrapper, GDBKernel:
		for n := 0; n < p.CPUs; n++ {
			prefix := portPrefix(n)
			im, err := router.BuildGDBGuest()
			if err != nil {
				return nil, err
			}
			ram := iss.NewRAM(1 << 20)
			if err := im.LoadInto(ram); err != nil {
				return nil, err
			}
			cpu := iss.New(iss.NewSystemBus(ram))
			if p.NoDecodeCache {
				cpu.SetDecodeCacheEnabled(false)
			}
			cpu.Reset(im.Entry)
			target, err := core.StartGDBTarget(cpu, tr)
			if err != nil {
				return nil, err
			}
			sch, err := core.Attach(k, core.Config{
				Scheme: p.Scheme.CoreName(),
				Common: core.CommonOptions{
					CPUPeriod: p.CPUPeriod,
					SkewBound: p.SkewBound,
					Quantum:   p.Quantum,
					Journal:   p.Journal,
					Obs:       reg,
				},
				Conn:          target.HostConn,
				Image:         im,
				Bindings:      router.GDBBindingsPrefixed(prefix),
				Clock:         clk,
				InstrPerCycle: p.InstrPerCycle,
			})
			if err != nil {
				return nil, err
			}
			schemes = append(schemes, sch)
			cpus = append(cpus, cpu)
			pktPort, _ := k.IssOutPort(prefix + router.PktPortName)
			csumPort, _ := k.IssInPort(prefix + router.CsumPortName)
			engines = append(engines, router.Engine{Pkt: pktPort, Csum: csumPort})
		}

	case DriverKernel:
		// One RTOS guest, one data/interrupt channel pair per CPU; a
		// single scheme instance routes traffic between them (§5.6).
		im, err := router.BuildDriverGuest()
		if err != nil {
			return nil, err
		}
		channels := make([]core.DriverChannel, 0, p.CPUs)
		for n := 0; n < p.CPUs; n++ {
			plat := dev.NewPlatform(0, nil)
			plat.SetInstance(n)
			if p.NoDecodeCache {
				plat.CPU.SetDecodeCacheEnabled(false)
			}
			if err := im.LoadInto(plat.RAM); err != nil {
				return nil, err
			}
			plat.CPU.Reset(im.Entry)
			if p.Coalesce {
				// BATCH envelopes are a host-side framing; the guest
				// driver parses one frame at a time, so the device's read
				// pump must unwrap them.
				plat.Cosim.DecodeBatches()
			}
			target, err := core.ConnectDriverTarget(plat, tr)
			if err != nil {
				return nil, err
			}
			runner := rtos.NewRunner(plat)
			runner.Start()
			cleanup = append(cleanup, runner.Stop)
			quiesce = append(quiesce, runner.Stop) // Stop is idempotent
			channels = append(channels, core.DriverChannel{
				Data:   target.DataHost,
				IRQ:    target.IRQHost,
				Prefix: portPrefix(n),
				Ports:  router.DriverPorts(),
				DMI:    plat,
			})
			cpus = append(cpus, plat.CPU)
		}
		sch, err := core.Attach(k, core.Config{
			Scheme: p.Scheme.CoreName(),
			Common: core.CommonOptions{
				CPUPeriod: p.CPUPeriod,
				SkewBound: p.SkewBound,
				Quantum:   p.Quantum,
				Journal:   p.Journal,
				Obs:       reg,
				CPUs:      p.CPUs,
			},
			Channels: channels,
			DMI:      p.DMI,
			Coalesce: p.Coalesce,
		})
		if err != nil {
			return nil, err
		}
		d := sch.(*core.DriverKernel) // the doorbells below need RaiseInterruptCPU
		schemes = append(schemes, sch)
		for n := 0; n < p.CPUs; n++ {
			pktPort, _ := k.IssOutPort(portPrefix(n) + router.PktPortName)
			csumPort, _ := k.IssInPort(portPrefix(n) + router.CsumPortName)
			id := n
			engines = append(engines, router.Engine{
				Pkt:      pktPort,
				Csum:     csumPort,
				Doorbell: func() { d.RaiseInterruptCPU(id, router.IntNewPacket) },
			})
		}

	default:
		return nil, fmt.Errorf("harness: unknown scheme %v", p.Scheme)
	}
	cleanup = append(cleanup, k.Shutdown)

	// Hardware side: the router, producers and consumers of Figure 6.
	rt := router.New(k, "router", router.Config{FifoDepth: p.FifoDepth}, engines)

	ids := &router.IDSource{}
	producers := make([]*router.Producer, router.NumPorts)
	consumers := make([]*router.Consumer, router.NumPorts)
	for i := 0; i < router.NumPorts; i++ {
		producers[i] = router.NewProducer(k, fmt.Sprintf("prod%d", i), uint8(i), rt.In[i], ids,
			router.ProducerConfig{
				Delay:         p.Delay,
				PayloadWords:  p.PayloadWords,
				ErrorRate:     p.ErrorRate,
				MulticastRate: p.MulticastRate,
				Count:         p.PacketsPerSource,
				Seed:          p.Seed + 1,
			})
		consumers[i] = router.NewConsumer(k, fmt.Sprintf("cons%d", i), i, rt.Out[i], rt.RouteOK)
	}

	var tracer *sim.Tracer
	if p.Trace != nil {
		tracer = sim.NewTracer(k, p.Trace, "router")
		for i := 0; i < router.NumPorts; i++ {
			q := rt.In[i]
			sim.TraceFunc(tracer, fmt.Sprintf("in%d_occupancy", i), 8, func() uint64 { return uint64(q.Len()) })
		}
	}

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	err := k.Run(p.SimTime)
	wall := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	if err != nil && err != sim.ErrDeadlock {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		// The cancellation hook stopped the kernel mid-run; the deferred
		// cleanup tears down runners, channels and the kernel itself.
		return nil, cerr
	}
	for _, sch := range schemes {
		if schemeErr := sch.Err(); schemeErr != nil {
			return nil, schemeErr
		}
	}
	// The guests run in their own goroutines (the stub's free-run, the
	// RTOS runner); halt them before touching their counters.
	for _, sch := range schemes {
		sch.Detach()
	}
	for _, fn := range quiesce {
		fn()
	}

	res := &Result{
		Params:     p,
		Wall:       wall,
		Simulated:  k.Now(),
		Obs:        reg,
		Allocs:     msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
	}
	if tracer != nil {
		res.TraceErr = tracer.Err()
	}
	for _, sch := range schemes {
		st := sch.Stats()
		res.CoStats.Transfers += st.Transfers
		res.CoStats.Stops += st.Stops
		res.CoStats.Polls += st.Polls
		res.CoStats.Messages += st.Messages
		res.CoStats.IntsNotified += st.IntsNotified
		res.CoStats.DMIHits += st.DMIHits
		res.CoStats.DMIMisses += st.DMIMisses
		res.CoStats.QuantumSyncs += st.QuantumSyncs
		res.CoStats.QuantumBreaks += st.QuantumBreaks
		sch.Publish(reg)
	}
	for _, cpu := range cpus {
		res.GuestInstructions += cpu.Instructions()
		res.GuestCycles += cpu.Cycles()
		cpu.PublishObs(reg)
	}
	k.PublishObs(reg)
	res.Counters = reg.Snapshot().Flatten()
	for _, pr := range producers {
		res.Generated += pr.Generated
		res.Offered += pr.Offered
		res.InDrops += pr.InDrops
		res.BadSent += pr.BadSent
	}
	rs := rt.Stats()
	res.Dequeued, res.Forwarded, res.Corrupted, res.OutDrops = rs.Dequeued, rs.Forwarded, rs.Corrupted, rs.OutDrops
	res.Copies = rs.Copies
	var lat sim.Time
	for _, cn := range consumers {
		res.Received += cn.Received
		res.BadContent += cn.BadContent
		res.Misrouted += cn.Misrouted
		lat = lat.Add(cn.TotalLat)
	}
	if res.Received > 0 {
		res.MeanLat = lat / sim.Time(res.Received)
	}
	return res, nil
}
