package harness

import (
	"fmt"
	"testing"

	"cosim/internal/core"
	"cosim/internal/sim"
)

func TestSmokeAllSchemes(t *testing.T) {
	for _, s := range Schemes {
		res, err := Run(Params{
			Scheme:    s,
			Transport: core.TransportTCP,
			SimTime:   2 * sim.MS,
			Delay:     50 * sim.US,
			Seed:      42,
		})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		fmt.Printf("%-14s wall=%-12v gen=%d fwd=%d (%.1f%%) recv=%d corrupted=%d indrops=%d lat=%v instr=%d stats=%+v\n",
			res.Params.Scheme, res.Wall, res.Generated, res.Forwarded, res.ForwardedPct(),
			res.Received, res.Corrupted, res.InDrops, res.MeanLat, res.GuestInstructions, res.CoStats)
		if res.Generated == 0 || res.Forwarded == 0 {
			t.Fatalf("%v: no traffic forwarded: %+v", s, res)
		}
		if res.BadContent != 0 || res.Misrouted != 0 {
			t.Fatalf("%v: integrity violation: %+v", s, res)
		}
	}
}
