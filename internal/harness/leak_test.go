package harness

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"cosim/internal/core"
	"cosim/internal/sim"
)

// settledGoroutines samples the goroutine count until it holds still,
// so goroutines from earlier tests that are still winding down don't
// pollute the baseline.
func settledGoroutines() int {
	n := runtime.NumGoroutine()
	for i := 0; i < 100; i++ {
		time.Sleep(2 * time.Millisecond)
		m := runtime.NumGoroutine()
		if m == n {
			return n
		}
		n = m
	}
	return n
}

// waitGoroutineBaseline polls until the live goroutine count is back at
// (or below) the pre-run baseline, failing with a full stack dump if it
// never gets there: those stacks are the leaked reader goroutines.
func waitGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			dumped := runtime.Stack(buf, true)
			t.Fatalf("%d goroutines alive 5s after Run returned (baseline %d) — teardown leaked:\n%s",
				n, baseline, buf[:dumped])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunLeaksNoGoroutines is the teardown regression test for the
// transport layer: every scheme attached over every backend must leave
// no goroutine behind once Run returns. The kernel's finalizers close
// each channel end through io.Closer — were they to assert net.Conn
// instead, the ring backend's endpoints (not net.Conns) would stay
// open, their reader goroutines would stay parked, and this test would
// fail on the ring cases with their stacks in the failure output.
func TestRunLeaksNoGoroutines(t *testing.T) {
	transports := append([]core.Transport{nil}, core.Transports()...)
	for _, s := range Schemes {
		for _, tr := range transports {
			label := "default"
			if tr != nil {
				label = core.TransportName(tr)
			}
			t.Run(fmt.Sprintf("%v/%s", s, label), func(t *testing.T) {
				baseline := settledGoroutines()
				if _, err := Run(Params{Scheme: s, Transport: tr, SimTime: 200 * sim.US}); err != nil {
					t.Fatal(err)
				}
				waitGoroutineBaseline(t, baseline)
			})
		}
	}

	// The multi-processor Driver-Kernel attachment owns 2N channel ends
	// plus N RTOS runners; tear it down over the ring backend, whose
	// endpoints only io.Closer reaches.
	t.Run("Driver-Kernel/ring/cpus=2", func(t *testing.T) {
		baseline := settledGoroutines()
		if _, err := Run(Params{Scheme: DriverKernel, Transport: core.TransportRing, SimTime: 200 * sim.US, CPUs: 2}); err != nil {
			t.Fatal(err)
		}
		waitGoroutineBaseline(t, baseline)
	})
}
