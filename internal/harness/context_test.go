package harness

import (
	"context"
	"errors"
	"testing"
	"time"

	"cosim/internal/core"
	"cosim/internal/sim"
)

// TestRunContextCancelMidRun: cancellation lands at a cycle boundary,
// RunContext returns ctx.Err(), and the teardown leaves no goroutine
// behind (the same baseline discipline as TestRunLeaksNoGoroutines).
func TestRunContextCancelMidRun(t *testing.T) {
	for _, s := range Schemes {
		t.Run(s.String(), func(t *testing.T) {
			baseline := settledGoroutines()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			// A simulated second of this workload takes far longer than
			// 30ms of wall clock, so a completed run means the cancel
			// was ignored.
			res, err := RunContext(ctx, Params{Scheme: s, Transport: core.TransportRing, SimTime: sim.SEC})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("RunContext = (%v, %v), want context.Canceled", res, err)
			}
			if wall := time.Since(start); wall > 10*time.Second {
				t.Errorf("cancellation took %v; not cooperative at cycle granularity", wall)
			}
			waitGoroutineBaseline(t, baseline)
		})
	}
}

// TestRunContextAlreadyCanceled: a dead context fails fast, before any
// guest or channel is built.
func TestRunContextAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, Params{Scheme: DriverKernel, SimTime: 200 * sim.US})
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx = (%v, %v)", res, err)
	}
}

// TestRunContextDeadline: a context deadline bounds the run's wall
// clock the same way an explicit cancel does.
func TestRunContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := RunContext(ctx, Params{Scheme: DriverKernel, Transport: core.TransportRing, SimTime: sim.SEC})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunContextCompletesUndisturbed: an un-canceled context changes
// nothing about a successful run.
func TestRunContextCompletesUndisturbed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := RunContext(ctx, Params{Scheme: DriverKernel, Transport: core.TransportRing, SimTime: 200 * sim.US})
	if err != nil {
		t.Fatal(err)
	}
	if res.Simulated != 200*sim.US {
		t.Fatalf("simulated %v, want 200us", res.Simulated)
	}
}

// TestRunAllContextCancel: a canceled sweep still returns a fully
// populated outcome slice — completed runs keep their results, the rest
// carry ctx.Err().
func TestRunAllContextCancel(t *testing.T) {
	base := Params{Scheme: DriverKernel, Transport: core.TransportRing, Delay: 20 * sim.US, Seed: 1}
	var scens []Scenario
	for i := 0; i < 8; i++ {
		p := base
		p.SimTime = sim.SEC // far longer than the cancel window
		scens = append(scens, Scenario{Name: "slow", Params: p})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	outs := RunAllContext(ctx, scens, 2)
	if len(outs) != len(scens) {
		t.Fatalf("%d outcomes, want %d", len(outs), len(scens))
	}
	sawCancel := false
	for i, o := range outs {
		if o.Err == nil && o.Result == nil {
			t.Fatalf("outcome %d has neither result nor error", i)
		}
		if errors.Is(o.Err, context.Canceled) {
			sawCancel = true
		}
	}
	if !sawCancel {
		t.Fatal("no outcome carries context.Canceled after mid-sweep cancel")
	}
}
