package harness

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"cosim/internal/core"
	"cosim/internal/sim"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	orig := Spec{
		Scheme:           "driver-kernel",
		Transport:        "ring",
		SimTime:          "10ms",
		ClockPeriod:      "100ns",
		CPUPeriod:        "10ns",
		SkewBound:        "1us",
		InstrPerCycle:    8,
		CPUs:             2,
		Delay:            "20us",
		PayloadWords:     4,
		ErrorRate:        0.25,
		MulticastRate:    0.5,
		FifoDepth:        8,
		PacketsPerSource: 100,
		Seed:             42,
		NoDecodeCache:    true,
		Quantum:          "100ns",
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip mutated the spec:\n  orig %+v\n  back %+v", orig, back)
	}
}

func TestSpecParamsMaterialisation(t *testing.T) {
	spec := Spec{Scheme: "driver-kernel", Transport: "ring", SimTime: "10ms", Delay: "20us", CPUs: 2, Seed: 7}
	p, err := spec.Params()
	if err != nil {
		t.Fatal(err)
	}
	if p.Scheme != DriverKernel || p.CPUs != 2 || p.Seed != 7 {
		t.Fatalf("materialised params %+v", p)
	}
	if p.SimTime != 10*sim.MS || p.Delay != 20*sim.US {
		t.Fatalf("durations %v/%v, want 10ms/20us", p.SimTime, p.Delay)
	}
	if core.TransportName(p.Transport) != "ring" {
		t.Fatalf("transport %q, want ring", core.TransportName(p.Transport))
	}
	// Zero fields stay zero so Run's defaults apply on the executing
	// side.
	if p.ClockPeriod != 0 || p.CPUPeriod != 0 || p.SkewBound != 0 {
		t.Fatalf("unset durations materialised non-zero: %+v", p)
	}
	// The defaults view is what admission control quotas against.
	if d := p.WithDefaults(); d.ClockPeriod != 100*sim.NS || d.CPUs != 2 {
		t.Fatalf("defaults view %+v", d)
	}
}

// TestSpecParamsRoundTrip: Params → Spec → Params is lossless for every
// wire-safe field.
func TestSpecParamsRoundTrip(t *testing.T) {
	orig := Params{
		Scheme: GDBKernel, Transport: core.TransportUnix,
		SimTime: 2 * sim.MS, CPUPeriod: 10 * sim.NS,
		CPUs: 3, Delay: 5 * sim.US, PayloadWords: 6,
		ErrorRate: 0.1, FifoDepth: 4, PacketsPerSource: 9, Seed: 11,
		DMI: true, Coalesce: true, Quantum: 100 * sim.NS,
	}
	back, err := SpecFromParams(orig).Params()
	if err != nil {
		t.Fatal(err)
	}
	// The transport interface value survives by name.
	if core.TransportName(back.Transport) != "unix" {
		t.Fatalf("transport %q", core.TransportName(back.Transport))
	}
	orig.Transport, back.Transport = nil, nil
	if !reflect.DeepEqual(orig, back) {
		t.Fatalf("round trip mutated params:\n  orig %+v\n  back %+v", orig, back)
	}
}

func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec Spec
		want string
	}{
		{"missing-scheme", Spec{}, "missing scheme"},
		{"bad-scheme", Spec{Scheme: "quantum"}, "unknown scheme"},
		{"bad-transport", Spec{Scheme: "driver-kernel", Transport: "smoke-signals"}, "unknown transport"},
		{"bad-duration", Spec{Scheme: "driver-kernel", SimTime: "10 parsecs"}, "bad sim_time"},
		{"bad-rate", Spec{Scheme: "driver-kernel", ErrorRate: 1.5}, "outside [0,1]"},
		{"negative-cpus", Spec{Scheme: "driver-kernel", CPUs: -1}, "negative"},
	} {
		err := tc.spec.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate() = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	if err := (Spec{Scheme: "gdb-wrapper", CPUs: 2}).Validate(); !errors.Is(err, ErrSingleCPUScheme) {
		t.Errorf("multi-CPU wrapper: %v, want ErrSingleCPUScheme", err)
	}
	if err := (Spec{Scheme: "driver-kernel"}).Validate(); err != nil {
		t.Errorf("minimal spec rejected: %v", err)
	}
}

// TestSpecZeroDurationCanonicalises pins the zero-spelling contract:
// every explicit zero duration ("0", "0ns", ...) is accepted, decodes
// to the zero value (meaning "use the run default", same as omitting
// the field), and one Spec -> Params -> Spec trip canonicalises it to
// the omitted form — after which the round trip is the identity.
func TestSpecZeroDurationCanonicalises(t *testing.T) {
	for _, zero := range []string{"0", "0ps", "0ns", "0us", "0ms", "0s"} {
		spec := Spec{
			Scheme:  "driver-kernel",
			SimTime: zero, ClockPeriod: zero, CPUPeriod: zero,
			SkewBound: zero, Delay: zero, Quantum: zero,
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("zero spelling %q rejected: %v", zero, err)
		}
		p, err := spec.Params()
		if err != nil {
			t.Fatalf("zero spelling %q: %v", zero, err)
		}
		if p.SimTime != 0 || p.ClockPeriod != 0 || p.CPUPeriod != 0 ||
			p.SkewBound != 0 || p.Delay != 0 || p.Quantum != 0 {
			t.Fatalf("zero spelling %q materialised non-zero: %+v", zero, p)
		}
		canon := SpecFromParams(p)
		if canon.SimTime != "" || canon.ClockPeriod != "" || canon.CPUPeriod != "" ||
			canon.SkewBound != "" || canon.Delay != "" || canon.Quantum != "" {
			t.Fatalf("zero spelling %q did not canonicalise to omitted: %+v", zero, canon)
		}
		p2, err := canon.Params()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(SpecFromParams(p2), canon) {
			t.Fatalf("canonical form is not a round-trip fixed point: %+v", canon)
		}
	}
}

// TestDecodeSpecRejectsUnknownFields: a typo in a session request must
// fail loudly, not silently run the defaults.
func TestDecodeSpecRejectsUnknownFields(t *testing.T) {
	_, err := DecodeSpec([]byte(`{"scheme": "driver-kernel", "simtime": "1ms"}`))
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("DecodeSpec = %v, want unknown-field error", err)
	}
}
