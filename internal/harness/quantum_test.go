package harness

import (
	"testing"

	"cosim/internal/core"
	"cosim/internal/sim"
)

// quantumCells is the temporal-decoupling ablation matrix (benchtab's
// `-ablate quantum` axis): lock-step, one CPU period (the default
// 10ns), and ten CPU periods — the regime where decoupling should pay.
var quantumCells = []struct {
	name    string
	quantum sim.Time
}{
	{"lockstep", 0},
	{"1x", 10 * sim.NS},
	{"10x", 100 * sim.NS},
}

// quantumParams is the bounded-workload configuration of dmiParams with
// a temporal-decoupling quantum: every source injects a fixed packet
// count and the horizon is generous, so the functional outcome cannot
// depend on the synchronization cadence — only the wall clock may.
func quantumParams(q sim.Time) Params {
	return Params{
		Scheme: DriverKernel, Transport: core.TransportRing,
		SimTime: 20 * sim.MS, Delay: 200 * sim.US,
		PacketsPerSource: 10, Seed: 77, CPUs: 2,
		Quantum: q,
	}
}

// TestQuantumAblationDeterministic runs the quantum cells at 2 CPUs and
// checks that temporal decoupling is functionally invisible: every cell
// produces the same packet signature, clean router checksums, and the
// same forwarded/message totals — the quantum changes only how often
// the driver and kernel synchronize, never what either computes. The
// -race builds of this test double as the concurrency check on the
// sharded cluster evaluation the harness enables at quantum > 0.
func TestQuantumAblationDeterministic(t *testing.T) {
	var base *signature
	var baseMsgs uint64
	for _, cell := range quantumCells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			res, err := Run(quantumParams(cell.quantum))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			sig := signatureOf(res)
			if sig.Forwarded == 0 || sig.Forwarded != sig.Generated {
				t.Fatalf("bounded workload did not complete: %+v", sig)
			}
			if sig.BadContent != 0 || sig.Misrouted != 0 || sig.Corrupted != 0 {
				t.Fatalf("router checksum/integrity failures: %+v", sig)
			}
			msgs := res.Counters["driver.messages"]
			if base == nil {
				base, baseMsgs = &sig, msgs
				return
			}
			if *base != sig {
				t.Fatalf("cell %s diverged:\n base %+v\n cell %+v", cell.name, *base, sig)
			}
			if msgs != baseMsgs {
				t.Fatalf("cell %s moved %d driver messages, lock-step moved %d", cell.name, msgs, baseMsgs)
			}
		})
	}
}

// TestQuantumRerunBitIdentical reruns one decoupled cell and requires
// the functional signature and every simulated-time-driven counter to
// repeat exactly: sharded evaluation and quantum boundary syncs must be
// deterministic run to run, not merely functionally equivalent.
// (Wall-clock-paced counters — ISS instruction totals, early-sync
// breaks — legitimately vary, as they always have under the
// free-running guest.)
func TestQuantumRerunBitIdentical(t *testing.T) {
	first, err := Run(quantumParams(100 * sim.NS))
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	second, err := Run(quantumParams(100 * sim.NS))
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if signatureOf(first) != signatureOf(second) {
		t.Fatalf("signatures diverged across reruns:\n %+v\n %+v", signatureOf(first), signatureOf(second))
	}
	for _, k := range []string{
		"driver.messages", "driver.cpu0.messages", "driver.cpu1.messages",
		"driver.interrupts", "driver.quantum_syncs",
		"driver.cpu0.quantum_syncs", "driver.cpu1.quantum_syncs",
	} {
		if v, w := first.Counters[k], second.Counters[k]; v != w {
			t.Errorf("counter %s: %d then %d", k, v, w)
		}
	}
}

// TestQuantumCountersReconcile pins the accounting: a decoupled run
// counts boundary syncs (and reconciles them per CPU), a lock-step run
// counts none, and the Stats mirror the registry.
func TestQuantumCountersReconcile(t *testing.T) {
	lockstep, err := Run(quantumParams(0))
	if err != nil {
		t.Fatalf("lock-step run: %v", err)
	}
	decoupled, err := Run(quantumParams(100 * sim.NS))
	if err != nil {
		t.Fatalf("decoupled run: %v", err)
	}

	if s := lockstep.Counters["driver.quantum_syncs"]; s != 0 {
		t.Fatalf("lock-step counted %d quantum syncs", s)
	}
	if b := lockstep.Counters["driver.quantum_breaks"]; b != 0 {
		t.Fatalf("lock-step counted %d quantum breaks", b)
	}
	syncs := decoupled.Counters["driver.quantum_syncs"]
	if syncs == 0 {
		t.Fatal("decoupled run counted no quantum syncs")
	}
	if decoupled.CoStats.QuantumSyncs != syncs {
		t.Fatalf("Stats.QuantumSyncs %d != counter %d", decoupled.CoStats.QuantumSyncs, syncs)
	}
	if decoupled.CoStats.QuantumBreaks != decoupled.Counters["driver.quantum_breaks"] {
		t.Fatalf("Stats.QuantumBreaks %d != counter %d",
			decoupled.CoStats.QuantumBreaks, decoupled.Counters["driver.quantum_breaks"])
	}

	// Per-CPU counters reconcile with the aggregates (the CI smoke
	// matrix asserts the same identity via jq).
	for _, metric := range []string{"quantum_syncs", "quantum_breaks"} {
		var sum uint64
		for cpu := 0; cpu < 2; cpu++ {
			sum += decoupled.Counters[perCPUName(cpu, metric)]
		}
		if agg := decoupled.Counters["driver."+metric]; sum != agg {
			t.Errorf("per-CPU %s sum %d != aggregate %d", metric, sum, agg)
		}
	}
}

// TestQuantumWithFastPath crosses temporal decoupling with the memory
// fast path: DMI windows plus coalescing under a 10x quantum must still
// produce the lock-step signature, exercising the revocation and
// served-read early-sync breaks alongside batched flushes.
func TestQuantumWithFastPath(t *testing.T) {
	plain, err := Run(quantumParams(0))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	p := quantumParams(100 * sim.NS)
	p.DMI, p.Coalesce = true, true
	fast, err := Run(p)
	if err != nil {
		t.Fatalf("fast-path run: %v", err)
	}
	if signatureOf(plain) != signatureOf(fast) {
		t.Fatalf("fast path under quantum diverged:\n base %+v\n fast %+v",
			signatureOf(plain), signatureOf(fast))
	}
	if fast.Counters["driver.dmi_hits"] == 0 {
		t.Fatal("no DMI hits with windows granted under quantum")
	}
}
