package harness

import (
	"testing"

	"cosim/internal/core"
	"cosim/internal/sim"
)

// dmiCells is the memory fast-path ablation matrix (benchtab's
// `-ablate dmi,coalesce` cross product).
var dmiCells = []struct {
	name          string
	dmi, coalesce bool
}{
	{"off", false, false},
	{"dmi", true, false},
	{"co", false, true},
	{"both", true, true},
}

// dmiParams is the bounded-workload configuration the determinism
// assertions need: every source injects a fixed packet count and the
// simulated horizon is generous enough for all of them to complete in
// every cell, so the functional outcome cannot depend on how fast the
// co-simulation path serves accesses — only the wall clock may differ.
func dmiParams(dmi, coalesce bool) Params {
	return Params{
		Scheme: DriverKernel, Transport: core.TransportRing,
		SimTime: 20 * sim.MS, Delay: 200 * sim.US,
		PacketsPerSource: 10, Seed: 77, CPUs: 2,
		DMI: dmi, Coalesce: coalesce,
	}
}

// signature is the functional outcome of a run: packet accounting and
// the router's checksum verdicts (Received counts packets whose guest-
// computed checksum validated at the sink; BadContent counts
// mismatches). Identical signatures across ablation cells mean the
// fast path changed only how data moved, not what the model computed.
type signature struct {
	Generated, Offered, InDrops, BadSent     uint64
	Dequeued, Forwarded, Corrupted, OutDrops uint64
	Copies, Received, BadContent, Misrouted  uint64
}

func signatureOf(r *Result) signature {
	return signature{
		Generated: r.Generated, Offered: r.Offered, InDrops: r.InDrops, BadSent: r.BadSent,
		Dequeued: r.Dequeued, Forwarded: r.Forwarded, Corrupted: r.Corrupted, OutDrops: r.OutDrops,
		Copies: r.Copies, Received: r.Received, BadContent: r.BadContent, Misrouted: r.Misrouted,
	}
}

// TestDMIAblationDeterministic runs the four ablation cells at 2 CPUs
// and checks that the memory fast path is functionally invisible: every
// cell produces the same packet signature and clean router checksums.
// The -race builds of this test double as the concurrency check on the
// window grant/reconcile paths.
func TestDMIAblationDeterministic(t *testing.T) {
	var base *signature
	for _, cell := range dmiCells {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			res, err := Run(dmiParams(cell.dmi, cell.coalesce))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			sig := signatureOf(res)
			if sig.Forwarded == 0 || sig.Forwarded != sig.Generated {
				t.Fatalf("bounded workload did not complete: %+v", sig)
			}
			if sig.BadContent != 0 || sig.Misrouted != 0 || sig.Corrupted != 0 {
				t.Fatalf("router checksum/integrity failures: %+v", sig)
			}
			if base == nil {
				base = &sig
			} else if *base != sig {
				t.Fatalf("cell %s diverged:\n base %+v\n cell %+v", cell.name, *base, sig)
			}
		})
	}
}

// TestDMIMessageReductionAndCounters is the fast path's effectiveness
// and accounting test: with windows granted, the per-packet guest
// accesses stop crossing the transport, the hit/revocation counters
// fire, and the per-CPU counters reconcile with the aggregates.
func TestDMIMessageReductionAndCounters(t *testing.T) {
	off, err := Run(dmiParams(false, false))
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	on, err := Run(dmiParams(true, true))
	if err != nil {
		t.Fatalf("dmi run: %v", err)
	}

	offMsgs := off.Counters["driver.messages"]
	onMsgs := on.Counters["driver.messages"]
	if offMsgs == 0 {
		t.Fatal("baseline exchanged no driver messages")
	}
	// The acceptance bar is a >=30% reduction; windowed FIFO traffic
	// actually eliminates the per-packet messages outright.
	if onMsgs > offMsgs*7/10 {
		t.Fatalf("messages %d -> %d: reduction below 30%%", offMsgs, onMsgs)
	}

	hits := on.Counters["driver.dmi_hits"]
	if hits == 0 {
		t.Fatal("no DMI hits with windows granted")
	}
	if on.CoStats.DMIHits != hits {
		t.Fatalf("Stats.DMIHits %d != counter %d", on.CoStats.DMIHits, hits)
	}
	if revs := on.Counters["driver.dmi_revocations"]; revs == 0 {
		t.Fatal("detach revoked no windows")
	}
	if offHits := off.Counters["driver.dmi_hits"]; offHits != 0 {
		t.Fatalf("baseline counted %d DMI hits with the fast path off", offHits)
	}

	// Per-CPU counters reconcile with the aggregates (the CI smoke step
	// asserts the same identity via jq).
	for _, metric := range []string{"dmi_hits", "dmi_misses", "dmi_revocations"} {
		var sum uint64
		for cpu := 0; cpu < 2; cpu++ {
			sum += on.Counters[perCPUName(cpu, metric)]
		}
		if agg := on.Counters["driver."+metric]; sum != agg {
			t.Errorf("per-CPU %s sum %d != aggregate %d", metric, sum, agg)
		}
	}
}

// perCPUName mirrors the driver's per-CPU metric naming.
func perCPUName(cpu int, metric string) string {
	return "driver.cpu" + string(rune('0'+cpu)) + "." + metric
}

// TestCoalesceAcceptsBatchedStream pins the envelope path end to end:
// with coalescing on (and DMI off, so replies still flow as messages)
// the guest-side frame pump decodes whatever mix of plain frames and
// envelopes the kernel emits, and the run stays functionally identical
// — the checksum replies parse, packets forward, integrity holds.
func TestCoalesceAcceptsBatchedStream(t *testing.T) {
	for _, tr := range []core.Transport{core.TransportRing, nil} { // nil = default pipe backend
		res, err := Run(dmiParams(false, true).withTransport(tr))
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		if res.Forwarded != res.Generated || res.BadContent != 0 {
			t.Fatalf("coalesced stream broke the run: %+v", signatureOf(res))
		}
	}
}

// withTransport returns a copy of p using tr (nil keeps the default).
func (p Params) withTransport(tr core.Transport) Params {
	p.Transport = tr
	return p
}
