package harness

import (
	"errors"
	"strings"
	"testing"

	"cosim/internal/core"
	"cosim/internal/sim"
)

func TestParseScheme(t *testing.T) {
	cases := map[string]Scheme{
		"gdb-wrapper":   GDBWrapper,
		"wrapper":       GDBWrapper,
		"GDB-Kernel":    GDBKernel,
		"kernel":        GDBKernel,
		"driver-kernel": DriverKernel,
		"Driver":        DriverKernel,
	}
	for in, want := range cases {
		got, err := ParseScheme(in)
		if err != nil || got != want {
			t.Errorf("ParseScheme(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScheme("bogus"); err == nil {
		t.Error("ParseScheme(bogus) succeeded")
	}
}

func TestSchemeStrings(t *testing.T) {
	for _, s := range Schemes {
		if strings.HasPrefix(s.String(), "Scheme(") {
			t.Errorf("scheme %d has no name", int(s))
		}
		back, err := ParseScheme(s.String())
		if err != nil || back != s {
			t.Errorf("round trip of %v failed", s)
		}
	}
}

func TestRunConservation(t *testing.T) {
	// Flow conservation: generated = offered + input drops;
	// dequeued = forwarded + corrupted + output drops;
	// received <= forwarded (some may be in flight at sim end).
	res, err := Run(Params{
		Scheme:    GDBKernel,
		Transport: core.TransportPipe,
		SimTime:   2 * sim.MS,
		Delay:     40 * sim.US,
		ErrorRate: 0.2,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generated != res.Offered+res.InDrops {
		t.Errorf("input conservation: %d != %d + %d", res.Generated, res.Offered, res.InDrops)
	}
	// At most one packet can be in service (awaiting its checksum) when
	// the simulation ends.
	inService := res.Dequeued - (res.Forwarded + res.Corrupted + res.OutDrops)
	if inService > 1 {
		t.Errorf("router conservation: %d dequeued vs %d+%d+%d completed",
			res.Dequeued, res.Forwarded, res.Corrupted, res.OutDrops)
	}
	if res.Received > res.Forwarded {
		t.Errorf("received %d > forwarded %d", res.Received, res.Forwarded)
	}
	if res.Corrupted == 0 || res.BadSent == 0 {
		t.Errorf("error injection did not exercise the drop path: sent %d caught %d",
			res.BadSent, res.Corrupted)
	}
	if res.Corrupted > res.BadSent {
		t.Errorf("more corrupted caught (%d) than injected (%d)", res.Corrupted, res.BadSent)
	}
}

func TestCorruptionAlwaysCaught(t *testing.T) {
	// With bounded traffic, every injected corruption must be caught by
	// the guest checksum by the end of the run.
	res, err := Run(Params{
		Scheme:           DriverKernel,
		Transport:        core.TransportPipe,
		SimTime:          5 * sim.MS,
		Delay:            100 * sim.US,
		ErrorRate:        0.3,
		PacketsPerSource: 8,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BadSent == 0 {
		t.Skip("no corruptions drawn at this seed")
	}
	if res.Corrupted != res.BadSent {
		t.Fatalf("caught %d of %d injected corruptions", res.Corrupted, res.BadSent)
	}
	if res.BadContent != 0 {
		t.Fatalf("%d corrupt packets reached a consumer", res.BadContent)
	}
}

func TestTable1SmallRun(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 sweep is slow")
	}
	simTimes := []sim.Time{sim.MS}
	rows, err := Table1(simTimes, Params{
		Transport: core.TransportPipe,
		Delay:     50 * sim.US,
		Seed:      1,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sb strings.Builder
	PrintTable1(&sb, simTimes, rows)
	out := sb.String()
	for _, want := range []string{"GDB-Wrapper", "GDB-Kernel", "Driver-Kernel", "speedup", "spd"} {
		if !strings.Contains(out, "GDB-Wrapper") {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestDeterministicTrafficAcrossSchemes(t *testing.T) {
	// Same seed, same delay: every scheme must see the same generated
	// traffic (the schemes differ in service, not in the workload).
	var gen []uint64
	for _, s := range Schemes {
		res, err := Run(Params{
			Scheme:    s,
			Transport: core.TransportPipe,
			SimTime:   sim.MS,
			Delay:     50 * sim.US,
			Seed:      21,
		})
		if err != nil {
			t.Fatal(err)
		}
		gen = append(gen, res.Generated)
	}
	if gen[0] != gen[1] || gen[1] != gen[2] {
		t.Fatalf("generated traffic differs across schemes: %v", gen)
	}
}

func TestCountLoC(t *testing.T) {
	r := CountLoC()
	if r.GDBAppLines == 0 || r.DrvAppLines == 0 || r.DriverLines == 0 || r.KernelLines == 0 {
		t.Fatalf("LoC report has zeros: %+v", r)
	}
	// §5: the Driver-Kernel software side is roughly an order of
	// magnitude larger (the paper reports 9x).
	if r.SWSideFactor < 3 {
		t.Fatalf("SW-side factor %.1f implausibly low", r.SWSideFactor)
	}
	var sb strings.Builder
	PrintLoC(&sb, r)
	if !strings.Contains(sb.String(), "overhead factor") {
		t.Fatal("LoC print incomplete")
	}
}

func TestVCDTraceOutput(t *testing.T) {
	var sb strings.Builder
	_, err := Run(Params{
		Scheme:    GDBKernel,
		Transport: core.TransportPipe,
		SimTime:   sim.MS,
		Delay:     50 * sim.US,
		Seed:      1,
		Trace:     &sb,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"$timescale", "in0_occupancy", "$enddefinitions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q", want)
		}
	}
}

func TestMultiCPUScalesThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-CPU sweep is slow")
	}
	// At a saturating inter-packet delay, doubling the checksum CPUs
	// should raise the forwarded fraction substantially — the
	// multi-processor SoC configuration of the paper's title.
	run := func(cpus int) *Result {
		res, err := Run(Params{
			Scheme:    GDBKernel,
			Transport: core.TransportPipe,
			SimTime:   2 * sim.MS,
			Delay:     3 * sim.US, // saturates a single CPU
			CPUs:      cpus,
			Seed:      8,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	two := run(2)
	t.Logf("1 CPU: %.1f%% forwarded; 2 CPUs: %.1f%%", one.ForwardedPct(), two.ForwardedPct())
	if one.ForwardedPct() > 90 {
		t.Skip("single CPU not saturated on this host; scaling not observable")
	}
	if two.Forwarded < one.Forwarded+one.Forwarded/2 {
		t.Fatalf("2 CPUs forwarded %d, want >= 1.5x single-CPU %d", two.Forwarded, one.Forwarded)
	}
}

func TestMultiCPURejectedForGDBWrapper(t *testing.T) {
	// The lock-step wrapper owns exactly one RSP connection; asking it
	// for a multi-processor SoC must fail up front with a typed error.
	_, err := Run(Params{Scheme: GDBWrapper, CPUs: 2, SimTime: sim.MS})
	if err == nil {
		t.Fatal("multi-CPU accepted for GDB-Wrapper")
	}
	if !errors.Is(err, ErrSingleCPUScheme) {
		t.Fatalf("error %v is not ErrSingleCPUScheme", err)
	}
	if !strings.Contains(err.Error(), "GDB-Wrapper") {
		t.Fatalf("error %q does not name the scheme", err)
	}
}

func TestSupportsMultiCPU(t *testing.T) {
	if GDBWrapper.SupportsMultiCPU() {
		t.Error("GDB-Wrapper claims multi-CPU support")
	}
	for _, s := range []Scheme{GDBKernel, DriverKernel} {
		if !s.SupportsMultiCPU() {
			t.Errorf("%v does not claim multi-CPU support", s)
		}
	}
}

func TestDriverKernelMultiCPU(t *testing.T) {
	// The paper's title configuration: a multi-processor SoC under the
	// Driver-Kernel scheme, one RTOS guest per CPU on its own channel
	// pair. The run must preserve all integrity invariants and show
	// traffic on both CPUs' channels.
	res, err := Run(Params{
		Scheme:    DriverKernel,
		Transport: core.TransportPipe,
		SimTime:   2 * sim.MS,
		Delay:     100 * sim.US,
		CPUs:      2,
		Seed:      5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Forwarded == 0 {
		t.Fatal("no packets forwarded")
	}
	if res.BadContent != 0 || res.Misrouted != 0 || res.Corrupted != 0 {
		t.Fatalf("integrity violated: %+v", res)
	}
	for _, name := range []string{"driver.cpu0.messages", "driver.cpu1.messages"} {
		if res.Counters[name] == 0 {
			t.Errorf("counter %s is zero: both CPUs should carry traffic (have %v)",
				name, res.Counters)
		}
	}
	// The aggregate must cover the per-CPU counters.
	perCPU := res.Counters["driver.cpu0.messages"] + res.Counters["driver.cpu1.messages"]
	if res.Counters["driver.messages"] != perCPU {
		t.Errorf("aggregate driver.messages = %d, per-CPU sum = %d",
			res.Counters["driver.messages"], perCPU)
	}
}

func TestDriverKernelMultiCPUDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated multi-CPU runs are slow")
	}
	run := func() *Result {
		res, err := Run(Params{
			Scheme:    DriverKernel,
			Transport: core.TransportPipe,
			SimTime:   sim.MS,
			Delay:     100 * sim.US,
			CPUs:      2,
			Seed:      9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Generated != b.Generated || a.Forwarded != b.Forwarded || a.Simulated != b.Simulated {
		t.Fatalf("multi-CPU run not deterministic: gen %d/%d fwd %d/%d sim %v/%v",
			a.Generated, b.Generated, a.Forwarded, b.Forwarded, a.Simulated, b.Simulated)
	}
}

func TestMulticastTraffic(t *testing.T) {
	res, err := Run(Params{
		Scheme:           GDBKernel,
		Transport:        core.TransportPipe,
		SimTime:          10 * sim.MS,
		Delay:            200 * sim.US,
		MulticastRate:    0.5,
		PacketsPerSource: 10,
		Seed:             13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BadContent != 0 || res.Misrouted != 0 {
		t.Fatalf("integrity violated with multicast: %+v", res)
	}
	if res.Copies <= res.Forwarded {
		t.Fatalf("copies %d <= forwarded %d: no multicast expansion happened",
			res.Copies, res.Forwarded)
	}
	if res.Received != res.Copies {
		t.Fatalf("received %d != copies %d", res.Received, res.Copies)
	}
}
