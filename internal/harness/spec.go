package harness

import (
	"bytes"
	"encoding/json"
	"fmt"

	"cosim/internal/core"
	"cosim/internal/sim"
)

// Spec is the wire-serializable form of Params: the subset of a run's
// configuration that can travel over an API boundary. Params holds live
// process resources — an io.Writer trace sink, a *core.Journal, an
// *obs.Registry, a core.Transport interface value — none of which
// survive a JSON round trip, so cosimd sessions, benchtab's load-driver
// mode and the CLI flag surfaces all speak Spec and materialise Params
// on the executing side.
//
// Durations are sim.ParseTime strings ("10ms", "1.5us"); the transport
// is named, resolved through core.ParseTransport on decode. Zero-valued
// fields mean "use the run defaults" — Params.withDefaults applies them
// on the executing side, so a Spec decoded from `{"scheme":"driver-kernel"}`
// is a complete, runnable request.
type Spec struct {
	// Scheme is the co-simulation scheme name (ParseScheme spelling:
	// "gdb-wrapper", "gdb-kernel", "driver-kernel"). Required.
	Scheme string `json:"scheme"`
	// Transport names the IPC backend (core.ParseTransport spelling:
	// "tcp", "unix", "ring", "pipe"); empty selects the pipe default.
	Transport string `json:"transport,omitempty"`

	SimTime       string `json:"sim_time,omitempty"`
	ClockPeriod   string `json:"clock_period,omitempty"`
	CPUPeriod     string `json:"cpu_period,omitempty"`
	SkewBound     string `json:"skew_bound,omitempty"`
	InstrPerCycle uint64 `json:"instr_per_cycle,omitempty"`
	CPUs          int    `json:"cpus,omitempty"`

	// Traffic shape.
	Delay            string  `json:"delay,omitempty"`
	PayloadWords     int     `json:"payload_words,omitempty"`
	ErrorRate        float64 `json:"error_rate,omitempty"`
	MulticastRate    float64 `json:"multicast_rate,omitempty"`
	FifoDepth        int     `json:"fifo_depth,omitempty"`
	PacketsPerSource uint64  `json:"packets_per_source,omitempty"`
	Seed             int64   `json:"seed,omitempty"`

	NoDecodeCache bool `json:"no_decode_cache,omitempty"`

	// Memory fast path (Driver-Kernel scheme; see README "Memory fast
	// path"). DMI grants guests direct memory windows over their bound
	// ports; Coalesce batches kernel->guest messages per flush.
	DMI      bool `json:"dmi,omitempty"`
	Coalesce bool `json:"coalesce,omitempty"`

	// Quantum temporally decouples the Driver-Kernel scheme (see the
	// README's "Temporal decoupling" section): guests sync with kernel
	// time only at quantum boundaries or on an early-sync break. Empty
	// or zero keeps per-cycle lock-step (the default, which for this
	// field is also the meaningful zero value).
	Quantum string `json:"quantum,omitempty"`
}

// timeField parses one optional duration field. Empty decodes to zero,
// meaning "use the run default"; so does any explicit zero spelling
// ("0", "0ns", ...), which Params.withDefaults cannot tell apart from
// an omitted field. SpecFromParams re-encodes both as the omitted form,
// so one round trip canonicalises every zero spelling to empty and a
// second trip is the identity.
func timeField(name, v string) (sim.Time, error) {
	if v == "" {
		return 0, nil
	}
	t, err := sim.ParseTime(v)
	if err != nil {
		return 0, fmt.Errorf("spec: bad %s: %w", name, err)
	}
	return t, nil
}

// rateField checks one injection-rate field.
func rateField(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("spec: %s %v outside [0,1]", name, v)
	}
	return nil
}

// Validate checks the spec without materialising it: the scheme and
// transport names resolve, every duration parses, rates are in [0,1],
// counts are non-negative, and a multi-CPU request names a scheme that
// can drive it (ErrSingleCPUScheme otherwise, testable with errors.Is).
func (s Spec) Validate() error {
	if s.Scheme == "" {
		return fmt.Errorf("spec: missing scheme")
	}
	scheme, err := ParseScheme(s.Scheme)
	if err != nil {
		return fmt.Errorf("spec: %w", err)
	}
	if s.Transport != "" {
		if _, err := core.ParseTransport(s.Transport); err != nil {
			return fmt.Errorf("spec: %w", err)
		}
	}
	for _, f := range []struct{ name, v string }{
		{"sim_time", s.SimTime}, {"clock_period", s.ClockPeriod},
		{"cpu_period", s.CPUPeriod}, {"skew_bound", s.SkewBound},
		{"delay", s.Delay}, {"quantum", s.Quantum},
	} {
		if _, err := timeField(f.name, f.v); err != nil {
			return err
		}
	}
	if err := rateField("error_rate", s.ErrorRate); err != nil {
		return err
	}
	if err := rateField("multicast_rate", s.MulticastRate); err != nil {
		return err
	}
	if s.CPUs < 0 || s.PayloadWords < 0 || s.FifoDepth < 0 {
		return fmt.Errorf("spec: negative cpus/payload_words/fifo_depth")
	}
	if s.CPUs > 1 && !scheme.SupportsMultiCPU() {
		return fmt.Errorf("spec: %v %w", scheme, ErrSingleCPUScheme)
	}
	return nil
}

// Params materialises the spec into runnable Params: names are resolved
// (scheme via ParseScheme, transport via core.ParseTransport), duration
// strings are parsed, and zero fields stay zero so Run applies the
// usual defaults. The non-serializable Params fields (Trace, Journal,
// Obs) are left nil for the caller to attach.
func (s Spec) Params() (Params, error) {
	if err := s.Validate(); err != nil {
		return Params{}, err
	}
	scheme, _ := ParseScheme(s.Scheme)
	p := Params{
		Scheme:           scheme,
		InstrPerCycle:    s.InstrPerCycle,
		CPUs:             s.CPUs,
		PayloadWords:     s.PayloadWords,
		ErrorRate:        s.ErrorRate,
		MulticastRate:    s.MulticastRate,
		FifoDepth:        s.FifoDepth,
		PacketsPerSource: s.PacketsPerSource,
		Seed:             s.Seed,
		NoDecodeCache:    s.NoDecodeCache,
		DMI:              s.DMI,
		Coalesce:         s.Coalesce,
	}
	if s.Transport != "" {
		tr, err := core.ParseTransport(s.Transport)
		if err != nil {
			return Params{}, fmt.Errorf("spec: %w", err)
		}
		p.Transport = tr
	}
	var err error
	if p.SimTime, err = timeField("sim_time", s.SimTime); err != nil {
		return Params{}, err
	}
	if p.ClockPeriod, err = timeField("clock_period", s.ClockPeriod); err != nil {
		return Params{}, err
	}
	if p.CPUPeriod, err = timeField("cpu_period", s.CPUPeriod); err != nil {
		return Params{}, err
	}
	if p.SkewBound, err = timeField("skew_bound", s.SkewBound); err != nil {
		return Params{}, err
	}
	if p.Delay, err = timeField("delay", s.Delay); err != nil {
		return Params{}, err
	}
	if p.Quantum, err = timeField("quantum", s.Quantum); err != nil {
		return Params{}, err
	}
	return p, nil
}

// SpecFromParams projects Params onto its wire form, dropping the
// process-local fields (Trace, Journal, Obs). Zero durations stay empty
// strings so the round trip preserves "use the default".
func SpecFromParams(p Params) Spec {
	timeStr := func(t sim.Time) string {
		if t == 0 {
			return ""
		}
		return t.String()
	}
	s := Spec{
		Scheme:           p.Scheme.CoreName(),
		SimTime:          timeStr(p.SimTime),
		ClockPeriod:      timeStr(p.ClockPeriod),
		CPUPeriod:        timeStr(p.CPUPeriod),
		SkewBound:        timeStr(p.SkewBound),
		InstrPerCycle:    p.InstrPerCycle,
		CPUs:             p.CPUs,
		Delay:            timeStr(p.Delay),
		PayloadWords:     p.PayloadWords,
		ErrorRate:        p.ErrorRate,
		MulticastRate:    p.MulticastRate,
		FifoDepth:        p.FifoDepth,
		PacketsPerSource: p.PacketsPerSource,
		Seed:             p.Seed,
		NoDecodeCache:    p.NoDecodeCache,
		DMI:              p.DMI,
		Coalesce:         p.Coalesce,
		Quantum:          timeStr(p.Quantum),
	}
	if p.Transport != nil {
		s.Transport = core.TransportName(p.Transport)
	}
	return s
}

// DecodeSpec decodes one JSON spec, rejecting unknown fields so a typo
// in a session request fails loudly instead of silently running the
// defaults, then validates it.
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
