package harness

import (
	"fmt"
	"os"
	"testing"

	"cosim/internal/core"
	"cosim/internal/sim"
)

func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 7 sweep is slow")
	}
	delays := []sim.Time{5 * sim.US, 10 * sim.US, 20 * sim.US, 50 * sim.US, 100 * sim.US}
	points, err := Figure7(delays, Params{
		Transport: core.TransportTCP,
		SimTime:   2 * sim.MS,
		Seed:      7,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	PrintFigure7(os.Stdout, points)
	// Shape: Driver-Kernel at or below GDB-Kernel at the smallest delay;
	// both rise toward 100% with increasing delay.
	first, last := points[0], points[len(points)-1]
	if first.DriverPct > first.GDBKernelPct+1 {
		t.Errorf("at smallest delay Driver (%.1f%%) should not exceed GDB-Kernel (%.1f%%)", first.DriverPct, first.GDBKernelPct)
	}
	if last.GDBKernelPct < 90 || last.DriverPct < 90 {
		t.Errorf("at largest delay both should approach 100%%: K=%.1f D=%.1f", last.GDBKernelPct, last.DriverPct)
	}
	if first.DriverPct >= last.DriverPct {
		fmt.Println("note: driver curve not increasing", first.DriverPct, last.DriverPct)
	}
}
