package harness

import (
	"errors"
	"testing"

	"cosim/internal/core"
	"cosim/internal/sim"
)

// counter fails the test if the named counter is absent, and returns it.
func counter(t *testing.T, c map[string]uint64, name string) uint64 {
	t.Helper()
	v, ok := c[name]
	if !ok {
		t.Fatalf("counter %q missing from snapshot (have %d counters)", name, len(c))
	}
	return v
}

// TestObsCountersConsistentAcrossSchemes runs the router case study
// under all three schemes and cross-checks the obs snapshot against the
// run's own ground truth: the substrate counters must be present and
// non-zero everywhere, the GDB-Wrapper's RSP round trips must track
// clock cycles (one qRun transaction per cycle, §2's per-cycle IPC
// cost), and the Driver-Kernel's message counters must reconcile
// exactly with the transfer journal.
func TestObsCountersConsistentAcrossSchemes(t *testing.T) {
	for _, s := range Schemes {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			t.Parallel()
			jl := core.NewJournal(0)
			res, err := Run(Params{
				Scheme:    s,
				Transport: core.TransportPipe,
				SimTime:   sim.MS,
				Seed:      7,
				Journal:   jl,
			})
			if err != nil {
				t.Fatal(err)
			}
			c := res.Counters
			if len(c) == 0 {
				t.Fatal("run produced an empty counter snapshot")
			}

			// Substrate metrics every scheme must populate.
			for _, name := range []string{
				"iss.instructions", "iss.cycles",
				"sim.cycles", "sim.activations", "sim.cycle_hook_ns.count",
			} {
				if counter(t, c, name) == 0 {
					t.Errorf("counter %q = 0, want > 0", name)
				}
			}
			if got := counter(t, c, "iss.instructions"); got != res.GuestInstructions {
				t.Errorf("iss.instructions = %d, Result.GuestInstructions = %d", got, res.GuestInstructions)
			}

			cycles := counter(t, c, "sim.cycles")
			switch s {
			case GDBWrapper, GDBKernel:
				// The begin-of-cycle poll runs once per clock cycle
				// until the guest exits or fails (it never does here).
				polls := counter(t, c, "cosim.polls")
				if polls == 0 || polls > cycles {
					t.Errorf("cosim.polls = %d, want in (0, sim.cycles=%d]", polls, cycles)
				}
				if got := counter(t, c, "rsp.round_trips"); got == 0 {
					t.Error("rsp.round_trips = 0, want > 0")
				}
				stops := counter(t, c, "cosim.stops")
				hits := counter(t, c, "cosim.breakpoint_hits") + counter(t, c, "cosim.watchpoint_hits")
				if stops != hits {
					t.Errorf("cosim.stops = %d, breakpoint+watchpoint hits = %d", stops, hits)
				}
				// Both engine schemes journal exactly the variable
				// transfers they count.
				transfers := counter(t, c, "cosim.transfers_to_sc") + counter(t, c, "cosim.transfers_to_iss")
				if transfers != uint64(jl.Len()) {
					t.Errorf("transfer counters = %d, journal entries = %d", transfers, jl.Len())
				}
			case DriverKernel:
				// Raw inbound messages split exactly into WRITEs and
				// READs; the journal records each WRITE received and
				// each DATA reply served, nothing else.
				msgs := counter(t, c, "driver.messages")
				writes := counter(t, c, "driver.msgs_write")
				reads := counter(t, c, "driver.msgs_read")
				replies := counter(t, c, "driver.data_replies")
				if msgs != writes+reads {
					t.Errorf("driver.messages = %d, msgs_write+msgs_read = %d", msgs, writes+reads)
				}
				if writes+replies != uint64(jl.Len()) {
					t.Errorf("msgs_write+data_replies = %d, journal entries = %d", writes+replies, jl.Len())
				}
				if got := counter(t, c, "driver.interrupts"); got != res.CoStats.IntsNotified {
					t.Errorf("driver.interrupts = %d, CoStats.IntsNotified = %d", got, res.CoStats.IntsNotified)
				}
			}

			// The wrapper's lock-step quantum is one qRun transaction
			// per non-waiting cycle, so its RSP round trips are bounded
			// by the cycle count (plus per-stop servicing and setup)
			// and must at least cover every stop and every variable
			// transfer, each of which costs a synchronous transaction.
			if s == GDBWrapper {
				rts := counter(t, c, "rsp.round_trips")
				polls := counter(t, c, "cosim.polls")
				stops := counter(t, c, "cosim.stops")
				transfers := counter(t, c, "cosim.transfers_to_sc") + counter(t, c, "cosim.transfers_to_iss")
				if min := stops + transfers; rts < min {
					t.Errorf("rsp.round_trips = %d < stops+transfers = %d; transactions unaccounted", rts, min)
				}
				if max := 2*polls + 10*stops + 100; rts > max {
					t.Errorf("rsp.round_trips = %d > %d; per-cycle transaction bound broken", rts, max)
				}
			}
		})
	}
}

// failWriter errors after the first write, like a full disk mid-trace.
type failWriter struct{ n int }

var errDiskFull = errors.New("disk full")

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errDiskFull
	}
	return len(p), nil
}

// TestTraceErrPropagated guards the fix for the swallowed VCD writer
// error: a tracer that fails mid-run must surface through
// Result.TraceErr (and Metrics.TraceErr), not vanish.
func TestTraceErrPropagated(t *testing.T) {
	res, err := Run(Params{
		Scheme:    GDBKernel,
		Transport: core.TransportPipe,
		SimTime:   200 * sim.US,
		Seed:      3,
		Trace:     &failWriter{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceErr == nil {
		t.Fatal("Result.TraceErr = nil, want the tracer's write error")
	}
	if !errors.Is(res.TraceErr, errDiskFull) {
		t.Errorf("Result.TraceErr = %v, want wrapped errDiskFull", res.TraceErr)
	}
	if m := res.Metrics(); m.TraceErr == "" {
		t.Error("Metrics.TraceErr empty, want the error string")
	}
}
