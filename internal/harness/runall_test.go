package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"cosim/internal/core"
	"cosim/internal/sim"
)

func sweepScenarios() []Scenario {
	base := Params{Transport: core.TransportPipe, Delay: 20 * sim.US, Seed: 1}
	return Table1Scenarios([]sim.Time{500 * sim.US}, base)
}

// TestRunAllMatchesSequential checks the central claim behind
// `benchtab -parallel`: every scenario owns its kernel, ISS and sockets,
// so a parallel sweep reproduces the sequential per-scenario results.
// Generated counts are fully seed-determined; service-side counters
// (Forwarded) depend on wall-clock pacing and may legitimately differ.
func TestRunAllMatchesSequential(t *testing.T) {
	scens := sweepScenarios()
	seq := RunAll(scens, 1)
	par := RunAll(scens, 3)
	if err := FirstError(seq); err != nil {
		t.Fatal(err)
	}
	if err := FirstError(par); err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(scens) || len(par) != len(scens) {
		t.Fatalf("outcome counts %d/%d, want %d", len(seq), len(par), len(scens))
	}
	for i := range scens {
		if seq[i].Scenario.Name != scens[i].Name || par[i].Scenario.Name != scens[i].Name {
			t.Fatalf("outcome %d out of order: %q / %q, want %q",
				i, seq[i].Scenario.Name, par[i].Scenario.Name, scens[i].Name)
		}
		if seq[i].Result.Generated != par[i].Result.Generated {
			t.Errorf("%s: generated %d sequential vs %d parallel",
				scens[i].Name, seq[i].Result.Generated, par[i].Result.Generated)
		}
		m := par[i].Result.Metrics()
		if m.Scheme != scens[i].Params.Scheme.String() || m.Wall() <= 0 || m.Generated == 0 {
			t.Errorf("%s: implausible metrics record %+v", scens[i].Name, m)
		}
	}
}

// TestRunAllCapturesPanics swaps the dispatch function, so it must not
// run in parallel with other tests in this package.
func TestRunAllCapturesPanics(t *testing.T) {
	orig := runScenario
	defer func() { runScenario = orig }()

	wantErr := errors.New("scheme refused")
	runScenario = func(_ context.Context, p Params) (*Result, error) {
		switch p.Seed {
		case 1:
			panic("kernel exploded")
		case 2:
			return nil, wantErr
		}
		return &Result{Params: p}, nil
	}

	scens := []Scenario{
		{Name: "boom", Params: Params{Seed: 1}},
		{Name: "fail", Params: Params{Seed: 2}},
		{Name: "fine", Params: Params{Seed: 3}},
	}
	outs := RunAll(scens, 2)

	if outs[0].Err == nil || !strings.Contains(outs[0].Err.Error(), "kernel exploded") {
		t.Fatalf("panic not captured: %v", outs[0].Err)
	}
	if !strings.Contains(outs[0].Err.Error(), "runall.go") &&
		!strings.Contains(outs[0].Err.Error(), "goroutine") {
		t.Errorf("captured panic lacks a stack trace: %v", outs[0].Err)
	}
	if outs[0].Result != nil {
		t.Error("panicked scenario still carries a result")
	}
	if !errors.Is(outs[1].Err, wantErr) {
		t.Fatalf("plain error not forwarded: %v", outs[1].Err)
	}
	if outs[2].Err != nil || outs[2].Result == nil {
		t.Fatalf("healthy scenario poisoned: %+v", outs[2])
	}
	if err := FirstError(outs); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("FirstError = %v, want the first (panicking) scenario", err)
	}
}

// TestRunAllWorkerClamping also swaps runScenario; not parallel-safe.
func TestRunAllWorkerClamping(t *testing.T) {
	orig := runScenario
	defer func() { runScenario = orig }()
	runScenario = func(_ context.Context, p Params) (*Result, error) {
		return &Result{Params: p}, nil
	}

	var scens []Scenario
	for i := 0; i < 5; i++ {
		scens = append(scens, Scenario{Name: fmt.Sprintf("s%d", i), Params: Params{Seed: int64(i)}})
	}
	for _, workers := range []int{-3, 0, 1, 5, 100} {
		outs := RunAll(scens, workers)
		if len(outs) != len(scens) {
			t.Fatalf("workers=%d: %d outcomes, want %d", workers, len(outs), len(scens))
		}
		for i, o := range outs {
			if o.Err != nil || o.Result == nil || o.Result.Params.Seed != int64(i) {
				t.Fatalf("workers=%d outcome %d: %+v", workers, i, o)
			}
		}
	}

	if outs := RunAll(nil, 4); len(outs) != 0 {
		t.Fatalf("empty sweep produced %d outcomes", len(outs))
	}
}
