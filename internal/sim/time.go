// Package sim implements a SystemC-like discrete-event simulation kernel.
//
// The kernel follows the OSCI SystemC 2.0 scheduler semantics: an
// evaluation phase runs every runnable process to completion (methods) or
// to its next wait (threads); writes to primitive channels such as Signal
// are deferred to the update phase; update may trigger delta
// notifications, which start a new evaluation phase at the same simulated
// time; when no delta work remains, simulated time advances to the next
// timed notification.
//
// On top of the plain SystemC semantics the package implements the kernel
// extensions proposed by Fummi et al. (DATE 2004) for native ISS
// co-simulation: cycle hooks invoked at the beginning and end of every
// simulation cycle (see Kernel.AddCycleHook and Kernel.AddEndCycleHook),
// ISS ports (IssIn, IssOut) and ISS processes (Kernel.IssProcess).
package sim

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"
)

// Time is a simulated time stamp or duration, measured in picoseconds.
// The zero Time is the beginning of simulation.
type Time uint64

// Time units, expressed in picoseconds.
const (
	PS  Time = 1
	NS  Time = 1000 * PS
	US  Time = 1000 * NS
	MS  Time = 1000 * US
	SEC Time = 1000 * MS
)

// MaxTime is the largest representable simulation time.
const MaxTime Time = ^Time(0)

// Time is an unsigned 64-bit picosecond count, so raw `+`/`-` wrap
// silently on overflow and raw `<` misorders wrapped values — the bug
// class behind the PR 1 targetTime regression. Code outside this
// package must use the saturating helpers below instead of raw
// arithmetic; the `timesafe` analyzer (cmd/cosimvet) enforces that.

// Add returns t+d, saturating at MaxTime instead of wrapping.
func (t Time) Add(d Time) Time {
	s := t + d
	if s < t {
		return MaxTime
	}
	return s
}

// Sub returns t-u, saturating at zero when u is later than t.
func (t Time) Sub(u Time) Time {
	if u > t {
		return 0
	}
	return t - u
}

// AddCycles returns t + n*period, saturating at MaxTime when the cycle
// span (or the sum) overflows the picosecond range. It is the
// wraparound-safe form of the cycle→time coupling the co-simulation
// schemes apply on every guest message.
func (t Time) AddCycles(n uint64, period Time) Time {
	hi, lo := bits.Mul64(n, uint64(period))
	if hi != 0 {
		return MaxTime
	}
	return t.Add(Time(lo))
}

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// AtOrAfter reports whether t is no earlier than u.
func (t Time) AtOrAfter(u Time) bool { return t >= u }

// String formats the time using the largest unit that divides it evenly,
// e.g. "25ns" or "1500ps".
func (t Time) String() string {
	type unit struct {
		div  Time
		name string
	}
	units := []unit{{SEC, "s"}, {MS, "ms"}, {US, "us"}, {NS, "ns"}, {PS, "ps"}}
	for _, u := range units {
		if t >= u.div && t%u.div == 0 {
			return strconv.FormatUint(uint64(t/u.div), 10) + u.name
		}
	}
	return strconv.FormatUint(uint64(t), 10) + "ps"
}

// ParseTime parses strings such as "10ns", "1.5us" or "100" (bare
// picoseconds). It is the inverse of Time.String for exact values.
func ParseTime(s string) (Time, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("sim: empty time")
	}
	i := len(s)
	for i > 0 {
		c := s[i-1]
		if c >= '0' && c <= '9' || c == '.' {
			break
		}
		i--
	}
	num, suffix := s[:i], strings.TrimSpace(s[i:])
	var mult Time
	switch suffix {
	case "", "ps":
		mult = PS
	case "ns":
		mult = NS
	case "us", "µs":
		mult = US
	case "ms":
		mult = MS
	case "s", "sec":
		mult = SEC
	default:
		return 0, fmt.Errorf("sim: unknown time unit %q", suffix)
	}
	if dot := strings.IndexByte(num, '.'); dot >= 0 {
		f, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return 0, fmt.Errorf("sim: bad time %q: %v", s, err)
		}
		return Time(f * float64(mult)), nil
	}
	v, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sim: bad time %q: %v", s, err)
	}
	return Time(v) * mult, nil
}
