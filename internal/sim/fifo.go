package sim

// Fifo is a bounded FIFO channel equivalent to sc_fifo[T]. Blocking
// Read/Write may only be called from thread processes; the non-blocking
// variants may be called from methods as well.
//
// Like sc_fifo, reads and writes performed in the same delta cycle are
// decoupled: items written become readable immediately (sc_fifo's
// num_available is conservative; we use the simpler immediate-visibility
// model, which is what sc_fifo readers observe after their wait on
// data_written_event).
type Fifo[T any] struct {
	k        *Kernel
	name     string
	buf      []T
	capacity int

	dataWritten *Event
	dataRead    *Event

	totalWritten uint64
	totalRead    uint64
	dropped      uint64
}

// NewFifo creates a FIFO with the given capacity (must be >= 1).
func NewFifo[T any](k *Kernel, name string, capacity int) *Fifo[T] {
	if capacity < 1 {
		panic("sim: fifo capacity must be >= 1")
	}
	return &Fifo[T]{
		k: k, name: name, capacity: capacity,
		dataWritten: k.NewEvent(name + ".data_written"),
		dataRead:    k.NewEvent(name + ".data_read"),
	}
}

// Name returns the FIFO name.
func (f *Fifo[T]) Name() string { return f.name }

// Len returns the number of items currently stored.
func (f *Fifo[T]) Len() int { return len(f.buf) }

// Cap returns the FIFO capacity.
func (f *Fifo[T]) Cap() int { return f.capacity }

// Free returns the remaining space.
func (f *Fifo[T]) Free() int { return f.capacity - len(f.buf) }

// DataWritten returns the event notified (delta) after each write.
func (f *Fifo[T]) DataWritten() *Event { return f.dataWritten }

// DataRead returns the event notified (delta) after each read.
func (f *Fifo[T]) DataRead() *Event { return f.dataRead }

// TotalWritten returns the number of successful writes.
func (f *Fifo[T]) TotalWritten() uint64 { return f.totalWritten }

// TotalRead returns the number of successful reads.
func (f *Fifo[T]) TotalRead() uint64 { return f.totalRead }

// Dropped returns the number of TryWrite calls rejected because the FIFO
// was full (used by the router model to count lost packets).
func (f *Fifo[T]) Dropped() uint64 { return f.dropped }

// TryWrite appends v if there is space and reports success. On failure
// the drop counter is incremented.
func (f *Fifo[T]) TryWrite(v T) bool {
	if len(f.buf) >= f.capacity {
		f.dropped++
		return false
	}
	f.buf = append(f.buf, v)
	f.totalWritten++
	f.dataWritten.NotifyDelta()
	return true
}

// TryRead pops the oldest item if available.
func (f *Fifo[T]) TryRead() (T, bool) {
	var zero T
	if len(f.buf) == 0 {
		return zero, false
	}
	v := f.buf[0]
	f.buf = f.buf[1:]
	f.totalRead++
	f.dataRead.NotifyDelta()
	return v, true
}

// Peek returns the oldest item without removing it.
func (f *Fifo[T]) Peek() (T, bool) {
	var zero T
	if len(f.buf) == 0 {
		return zero, false
	}
	return f.buf[0], true
}

// Write blocks the calling thread until space is available, then appends v.
func (f *Fifo[T]) Write(c *Ctx, v T) {
	for !f.TryWrite(v) {
		f.dropped-- // blocking writers don't count as drops
		c.Wait(f.dataRead)
	}
}

// Read blocks the calling thread until an item is available and pops it.
func (f *Fifo[T]) Read(c *Ctx) T {
	for {
		if v, ok := f.TryRead(); ok {
			return v
		}
		c.Wait(f.dataWritten)
	}
}
