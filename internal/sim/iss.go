package sim

import "fmt"

// This file implements the kernel extensions of Fummi et al. (DATE 2004)
// §3.1: the special port types iss_in / iss_out devoted to communication
// between a SystemC module and an ISS, and the special process type
// iss_process, which starts execution only when new data is present on a
// bound iss_in port.
//
// Ports carry raw byte payloads because on the ISS side they map to
// program variables (GDB-Kernel scheme) or driver message data blocks
// (Driver-Kernel scheme), both of which are untyped memory.

// IssIn is an input port receiving data from an ISS into the SystemC
// model. It is registered in the kernel's ISS port registry under its
// name, which is the name used in Driver-Kernel WRITE messages.
type IssIn struct {
	k       *Kernel
	name    string
	data    []byte
	ev      *Event
	deliver uint64
}

// IssOut is an output port holding data that the ISS will read, either
// because the co-simulation bridge pokes it into a program variable at a
// breakpoint (GDB-Kernel) or because a READ message asked for it
// (Driver-Kernel).
type IssOut struct {
	k       *Kernel
	name    string
	data    []byte
	ev      *Event
	writes  uint64
	onWrite func(data []byte, writes uint64)
}

// ensureIssMaps lazily allocates the registry maps.
func (k *Kernel) ensureIssMaps() {
	if k.issIns == nil {
		k.issIns = make(map[string]*IssIn)
		k.issOuts = make(map[string]*IssOut)
	}
}

// NewIssIn creates and registers an iss_in port.
func (k *Kernel) NewIssIn(name string) *IssIn {
	k.ensureIssMaps()
	if _, dup := k.issIns[name]; dup {
		panic(fmt.Sprintf("sim: duplicate iss_in port %q", name))
	}
	p := &IssIn{k: k, name: name, ev: k.NewEvent(name + ".iss_data")}
	k.issIns[name] = p
	return p
}

// NewIssOut creates and registers an iss_out port.
func (k *Kernel) NewIssOut(name string) *IssOut {
	k.ensureIssMaps()
	if _, dup := k.issOuts[name]; dup {
		panic(fmt.Sprintf("sim: duplicate iss_out port %q", name))
	}
	p := &IssOut{k: k, name: name, ev: k.NewEvent(name + ".iss_read")}
	k.issOuts[name] = p
	return p
}

// IssInPort looks up a registered iss_in port by name.
func (k *Kernel) IssInPort(name string) (*IssIn, bool) {
	p, ok := k.issIns[name]
	return p, ok
}

// IssOutPort looks up a registered iss_out port by name.
func (k *Kernel) IssOutPort(name string) (*IssOut, bool) {
	p, ok := k.issOuts[name]
	return p, ok
}

// Name returns the port name.
func (p *IssIn) Name() string { return p.name }

// Name returns the port name.
func (p *IssOut) Name() string { return p.name }

// Deliver stores data arriving from the ISS and starts every iss_process
// sensitive to the port. It must be called from kernel context (a cycle
// hook or a process), never from a foreign goroutine.
func (p *IssIn) Deliver(data []byte) {
	p.data = append(p.data[:0], data...)
	p.deliver++
	p.ev.Notify()
}

// Bytes returns the most recently delivered payload.
func (p *IssIn) Bytes() []byte { return p.data }

// Uint32 decodes the payload as a little-endian 32-bit value.
func (p *IssIn) Uint32() uint32 { return leU32(p.data) }

// Deliveries returns how many times data has been delivered.
func (p *IssIn) Deliveries() uint64 { return p.deliver }

// Event returns the new-data event (what iss_processes bind to).
func (p *IssIn) Event() *Event { return p.ev }

// Write stores data for the ISS to pick up.
func (p *IssOut) Write(data []byte) {
	p.data = append(p.data[:0], data...)
	p.writes++
	if p.onWrite != nil {
		p.onWrite(p.data, p.writes)
	}
}

// SetOnWrite installs a mirror hook invoked after every Write with the
// stored payload and the new write count. Co-simulation bridges use it
// to keep a granted direct-memory window coherent with the port. Like
// Write itself it runs in kernel context; pass nil to remove the hook.
func (p *IssOut) SetOnWrite(fn func(data []byte, writes uint64)) {
	p.onWrite = fn
}

// WriteUint32 stores a little-endian 32-bit value.
func (p *IssOut) WriteUint32(v uint32) {
	p.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
}

// Bytes returns the currently stored payload (what the ISS will read).
func (p *IssOut) Bytes() []byte { return p.data }

// Writes returns the number of Write calls.
func (p *IssOut) Writes() uint64 { return p.writes }

// ReadEvent returns an event notified each time the co-simulation bridge
// consumes the port's value on behalf of the ISS.
func (p *IssOut) ReadEvent() *Event { return p.ev }

// Consumed is called by co-simulation bridges after transferring the
// port value to the ISS; it notifies ReadEvent so models can produce the
// next value.
func (p *IssOut) Consumed() { p.ev.Notify() }

// IssProcess registers a process that runs only when new data is
// delivered on any of the bound iss_in ports — never at initialization,
// "thus sensibly reducing co-simulation overhead" (§3.3).
func (k *Kernel) IssProcess(name string, fn func(), ins ...*IssIn) *Proc {
	if len(ins) == 0 {
		panic("sim: iss_process needs at least one iss_in port")
	}
	p := &Proc{k: k, name: name, kind: issProc, fn: fn, cluster: -1}
	for _, in := range ins {
		in.ev.addStatic(p)
		p.static = append(p.static, in.ev)
	}
	k.procs = append(k.procs, p)
	k.clustersDirty = true
	return p
}

// leU32 decodes up to 4 little-endian bytes.
func leU32(b []byte) uint32 {
	var v uint32
	for i := 0; i < len(b) && i < 4; i++ {
		v |= uint32(b[i]) << (8 * i)
	}
	return v
}
