package sim

// Signal is a primitive channel equivalent to sc_signal[T]. Writes made
// during the evaluation phase become visible only in the following update
// phase; a value change triggers the signal's changed event as a delta
// notification, so statically sensitive processes observe the classic
// SystemC signal semantics.
type Signal[T comparable] struct {
	k       *Kernel
	name    string
	cur     T
	next    T
	hasNext bool
	changed *Event
	writes  uint64
}

// NewSignal creates a named signal with the zero value of T.
func NewSignal[T comparable](k *Kernel, name string) *Signal[T] {
	s := &Signal[T]{k: k, name: name}
	s.changed = k.NewEvent(name + ".value_changed")
	return s
}

// NewSignalInit creates a signal with an explicit initial value.
func NewSignalInit[T comparable](k *Kernel, name string, init T) *Signal[T] {
	s := NewSignal[T](k, name)
	s.cur = init
	return s
}

// Name returns the signal name.
func (s *Signal[T]) Name() string { return s.name }

// Read returns the current (published) value.
func (s *Signal[T]) Read() T { return s.cur }

// Write schedules v to become the signal's value in the next update
// phase. Multiple writes in the same evaluation phase follow
// last-write-wins semantics.
func (s *Signal[T]) Write(v T) {
	s.writes++
	if !s.hasNext {
		s.hasNext = true
		s.k.requestUpdateOwned(s, s.changed)
	}
	s.next = v
}

// Changed returns the value-changed event.
func (s *Signal[T]) Changed() *Event { return s.changed }

// WriteCount returns the number of Write calls, useful in tests.
func (s *Signal[T]) WriteCount() uint64 { return s.writes }

// update publishes the pending value (update phase).
func (s *Signal[T]) update() {
	s.hasNext = false
	if s.next != s.cur {
		s.cur = s.next
		s.changed.NotifyDelta()
	}
}

// In is a typed input port bound to a signal, equivalent to sc_in[T].
type In[T comparable] struct {
	name string
	sig  *Signal[T]
}

// Out is a typed output port bound to a signal, equivalent to sc_out[T].
type Out[T comparable] struct {
	name string
	sig  *Signal[T]
}

// NewIn creates an unbound input port.
func NewIn[T comparable](name string) *In[T] { return &In[T]{name: name} }

// NewOut creates an unbound output port.
func NewOut[T comparable](name string) *Out[T] { return &Out[T]{name: name} }

// Bind connects the port to a signal.
func (p *In[T]) Bind(s *Signal[T]) { p.sig = s }

// Bind connects the port to a signal.
func (p *Out[T]) Bind(s *Signal[T]) { p.sig = s }

// Name returns the port name.
func (p *In[T]) Name() string { return p.name }

// Name returns the port name.
func (p *Out[T]) Name() string { return p.name }

// Bound reports whether the port has been bound to a signal.
func (p *In[T]) Bound() bool { return p.sig != nil }

// Bound reports whether the port has been bound to a signal.
func (p *Out[T]) Bound() bool { return p.sig != nil }

// Read returns the bound signal's current value.
func (p *In[T]) Read() T { return p.sig.Read() }

// Changed returns the bound signal's value-changed event.
func (p *In[T]) Changed() *Event { return p.sig.Changed() }

// Write writes to the bound signal.
func (p *Out[T]) Write(v T) { p.sig.Write(v) }

// Read returns the bound signal's current value (sc_out is readable).
func (p *Out[T]) Read() T { return p.sig.Read() }
