package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{1, "1ps"},
		{999, "999ps"},
		{NS, "1ns"},
		{1500, "1500ps"},
		{25 * NS, "25ns"},
		{MS, "1ms"},
		{3 * SEC, "3s"},
		{1001 * US, "1001us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want Time
	}{
		{"0ps", 0},
		{"1ns", NS},
		{"25ns", 25 * NS},
		{"1.5us", 1500 * NS},
		{"100", 100 * PS},
		{"10ms", 10 * MS},
		{"2s", 2 * SEC},
		{" 5 us ", 5 * US},
		{"0.5ns", 500 * PS},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTime(%q) = %v, want %v", c.in, uint64(got), uint64(c.want))
		}
	}
}

func TestParseTimeErrors(t *testing.T) {
	for _, s := range []string{"", "ns", "1xx", "abc", "--3ns"} {
		if _, err := ParseTime(s); err == nil {
			t.Errorf("ParseTime(%q) succeeded, want error", s)
		}
	}
}

func TestTimeRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		tm := Time(v)
		back, err := ParseTime(tm.String())
		return err == nil && back == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
