package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{0, "0ps"},
		{1, "1ps"},
		{999, "999ps"},
		{NS, "1ns"},
		{1500, "1500ps"},
		{25 * NS, "25ns"},
		{MS, "1ms"},
		{3 * SEC, "3s"},
		{1001 * US, "1001us"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", uint64(c.in), got, c.want)
		}
	}
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want Time
	}{
		{"0ps", 0},
		{"1ns", NS},
		{"25ns", 25 * NS},
		{"1.5us", 1500 * NS},
		{"100", 100 * PS},
		{"10ms", 10 * MS},
		{"2s", 2 * SEC},
		{" 5 us ", 5 * US},
		{"0.5ns", 500 * PS},
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTime(%q) = %v, want %v", c.in, uint64(got), uint64(c.want))
		}
	}
}

func TestParseTimeErrors(t *testing.T) {
	for _, s := range []string{"", "ns", "1xx", "abc", "--3ns"} {
		if _, err := ParseTime(s); err == nil {
			t.Errorf("ParseTime(%q) succeeded, want error", s)
		}
	}
}

func TestTimeRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		tm := Time(v)
		back, err := ParseTime(tm.String())
		return err == nil && back == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeSaturatingHelpers(t *testing.T) {
	cases := []struct {
		name string
		got  Time
		want Time
	}{
		{"add", Time(3).Add(4), 7},
		{"add-saturates", MaxTime.Add(1), MaxTime},
		{"add-near-max", (MaxTime - 2).Add(5), MaxTime},
		{"sub", Time(7).Sub(4), 3},
		{"sub-saturates", Time(4).Sub(7), 0},
		{"addcycles", Time(10).AddCycles(3, 5*PS), 25},
		{"addcycles-zero-period", Time(10).AddCycles(1<<40, 0), 10},
		{"addcycles-mul-overflow", Time(0).AddCycles(1<<63, 4*PS), MaxTime},
		{"addcycles-sum-overflow", (MaxTime - 1).AddCycles(1, 2*PS), MaxTime},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got %d, want %d", c.name, uint64(c.got), uint64(c.want))
		}
	}
}

func TestTimeOrderingHelpers(t *testing.T) {
	if !Time(1).Before(2) || Time(2).Before(2) || Time(3).Before(2) {
		t.Error("Before misordered")
	}
	if Time(1).After(2) || Time(2).After(2) || !Time(3).After(2) {
		t.Error("After misordered")
	}
	if Time(1).AtOrAfter(2) || !Time(2).AtOrAfter(2) || !Time(3).AtOrAfter(2) {
		t.Error("AtOrAfter misordered")
	}
}

// Saturation invariants hold for arbitrary operands: Add never ends up
// below either operand, and Sub never exceeds the minuend.
func TestTimeSaturationProperties(t *testing.T) {
	add := func(a, b uint64) bool {
		s := Time(a).Add(Time(b))
		return s >= Time(a) && s >= Time(b)
	}
	if err := quick.Check(add, nil); err != nil {
		t.Error(err)
	}
	sub := func(a, b uint64) bool { return Time(a).Sub(Time(b)) <= Time(a) }
	if err := quick.Check(sub, nil); err != nil {
		t.Error(err)
	}
}
