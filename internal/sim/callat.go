package sim

import "container/heap"

// callAtItem is one deferred call.
type callAtItem struct {
	t   Time
	seq uint64
	fn  func()
}

type callAtHeap []callAtItem

func (h callAtHeap) Len() int { return len(h) }
func (h callAtHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h callAtHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *callAtHeap) Push(x any)   { *h = append(*h, x.(callAtItem)) }
func (h *callAtHeap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }

// callAtDispatcher runs deferred calls; created lazily by CallAt.
type callAtDispatcher struct {
	k     *Kernel
	ev    *Event
	queue callAtHeap
	seq   uint64
}

// ensureCallAt lazily creates the dispatcher (and its method process).
// Sharded kernels pre-create it in computeClusters so rounds always
// have an event to route deferred CallAt calls by.
func (k *Kernel) ensureCallAt() *callAtDispatcher {
	if k.callAt == nil {
		d := &callAtDispatcher{k: k, ev: k.NewEvent("kernel.call_at")}
		k.callAt = d
		// serialOnly: dispatched closures deliver into arbitrary foreign
		// objects (ISS ports), so phases with a pending dispatch are
		// evaluated serially rather than sharded.
		p := &Proc{k: k, name: "kernel.call_at_dispatch", kind: methodProc, fn: d.dispatch, cluster: -1, serialOnly: true}
		d.ev.addStatic(p)
		p.static = append(p.static, d.ev)
		k.procs = append(k.procs, p)
		k.clustersDirty = true
	}
	return k.callAt
}

// CallAt schedules fn to run (as a one-shot simulation activity) at
// absolute time t; times in the past run in the next delta cycle. It is
// the mechanism co-simulation bridges use to deliver ISS data at the
// simulated time implied by consumed CPU cycles — under temporal
// decoupling these are exactly the batched time-advance notices a
// quantum of guest progress produces. Inside a sharded evaluation round
// the call is deferred to the merge barrier, routed by the dispatcher's
// own event.
func (k *Kernel) CallAt(t Time, fn func()) {
	if r := k.round; r != nil {
		r.deferOp(k.callAt.ev, func() { k.CallAt(t, fn) })
		return
	}
	d := k.ensureCallAt()
	d.seq++
	heap.Push(&d.queue, callAtItem{t: t, seq: d.seq, fn: fn})
	if t <= k.now {
		d.ev.NotifyDelta()
	} else {
		d.ev.NotifyAt(t)
	}
}

// CallAfter schedules fn after a relative delay.
func (k *Kernel) CallAfter(d Time, fn func()) { k.CallAt(k.now+d, fn) }

// dispatch runs every due call and re-arms for the next one.
func (d *callAtDispatcher) dispatch() {
	for d.queue.Len() > 0 && d.queue[0].t <= d.k.now {
		it := heap.Pop(&d.queue).(callAtItem)
		it.fn()
	}
	if d.queue.Len() > 0 {
		d.ev.NotifyAt(d.queue[0].t)
	}
}
