package sim

import (
	"strings"
	"testing"
)

// TestClusterDiscovery pins the union-find: methods sharing a static
// event merge into one cluster, disjoint methods get their own, threads
// stay unclustered, and the counts are stable across recomputation.
func TestClusterDiscovery(t *testing.T) {
	k := NewKernel("cd")
	defer k.Shutdown()
	e1, e2, e3 := k.NewEvent("e1"), k.NewEvent("e2"), k.NewEvent("e3")
	a := k.MethodNoInit("a", func() {}, e1, e2)
	b := k.MethodNoInit("b", func() {}, e2)
	c := k.MethodNoInit("c", func() {}, e3)
	th := k.Thread("t", func(ctx *Ctx) {})
	k.EnableSharding(true)
	if err := k.Run(NS); err != nil && err != ErrDeadlock {
		t.Fatal(err)
	}
	// {a,b} via shared e2, {c}, plus the CallAt dispatcher's own cluster.
	if got := k.ClusterCount(); got != 3 {
		t.Fatalf("ClusterCount = %d, want 3", got)
	}
	if a.cluster != b.cluster {
		t.Fatalf("a and b share e2 but have clusters %d and %d", a.cluster, b.cluster)
	}
	if c.cluster == a.cluster {
		t.Fatal("c shares no event with a but landed in its cluster")
	}
	if th.cluster != -1 {
		t.Fatalf("thread cluster = %d, want -1", th.cluster)
	}
	if e2.cluster != a.cluster || e3.cluster != c.cluster {
		t.Fatalf("events did not inherit their statics' clusters: e2=%d e3=%d", e2.cluster, e3.cluster)
	}
}

// TestShardedRoundRuns co-fires methods in distinct clusters at the
// same instant and checks that sharded rounds actually merge, every
// process runs the right number of times, and disabling sharding keeps
// the same outcome with zero merges.
func TestShardedRoundRuns(t *testing.T) {
	for _, shard := range []bool{true, false} {
		k := NewKernel("sr")
		k.EnableSharding(shard)
		const n = 4
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			e := k.NewEvent("e")
			k.MethodNoInit("m", func() {
				counts[i]++
				if counts[i] < 10 {
					e.NotifyAfter(10 * NS)
				}
			}, e)
			e.NotifyAfter(10 * NS)
		}
		if err := k.Run(MaxTime); err != nil && err != ErrDeadlock {
			t.Fatal(err)
		}
		for i, got := range counts {
			if got != 10 {
				t.Fatalf("shard=%v: proc %d ran %d times, want 10", shard, i, got)
			}
		}
		if merges := k.ClusterMerges(); shard && merges == 0 {
			t.Fatal("no sharded rounds merged for co-firing disjoint clusters")
		} else if !shard && merges != 0 {
			t.Fatalf("serial kernel reported %d merges", merges)
		}
		k.Shutdown()
	}
}

// TestShardedPanicPropagates: a panic inside a sharded worker must
// surface from Run like a serial process panic would, after the round
// barrier (so no goroutines are left running).
func TestShardedPanicPropagates(t *testing.T) {
	k := NewKernel("sp")
	defer k.Shutdown()
	k.EnableSharding(true)
	for i := 0; i < 2; i++ {
		i := i
		e := k.NewEvent("e")
		k.MethodNoInit("m", func() {
			if i == 1 {
				panic("boom in shard")
			}
		}, e)
		e.NotifyAfter(10 * NS)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate out of Run")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom in shard") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	_ = k.Run(US)
}

// TestSerialOnlyDispatcherBlocksRound: a phase in which the CallAt
// dispatcher is runnable is evaluated serially even when other clusters
// co-fire, because its closures may touch foreign objects.
func TestSerialOnlyDispatcherBlocksRound(t *testing.T) {
	k := NewKernel("so")
	defer k.Shutdown()
	k.EnableSharding(true)
	ran := 0
	for i := 0; i < 2; i++ {
		e := k.NewEvent("e")
		k.MethodNoInit("m", func() { ran++ }, e)
		e.NotifyAfter(10 * NS)
	}
	called := false
	k.CallAt(10*NS, func() { called = true })
	if err := k.Run(US); err != nil && err != ErrDeadlock {
		t.Fatal(err)
	}
	if ran != 2 || !called {
		t.Fatalf("ran=%d called=%v", ran, called)
	}
	if merges := k.ClusterMerges(); merges != 0 {
		t.Fatalf("dispatcher phase was sharded anyway (%d merges)", merges)
	}
}
