package sim

import (
	"fmt"
	"io"
	"strconv"
)

// Tracer writes a Value Change Dump (IEEE 1364 VCD) of registered
// signals, the equivalent of sc_trace/sc_create_vcd_trace_file. Values
// are sampled at the end of every delta cycle; only changes are emitted.
type Tracer struct {
	k       *Kernel
	w       io.Writer
	name    string
	entries []traceEntry
	started bool
	curTime Time
	haveT   bool
	err     error
}

type traceEntry struct {
	name   string
	width  int
	sample func() uint64
	last   uint64
	init   bool
	code   string
}

// NewTracer creates a tracer writing VCD to w and registers it with the
// kernel. Signals must be added before the first delta cycle executes.
func NewTracer(k *Kernel, w io.Writer, name string) *Tracer {
	t := &Tracer{k: k, w: w, name: name}
	k.tracers = append(k.tracers, t)
	return t
}

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error { return t.err }

// add registers a raw sampling entry.
func (t *Tracer) add(name string, width int, sample func() uint64) {
	if t.started {
		panic("sim: tracer: signals must be added before simulation starts")
	}
	t.entries = append(t.entries, traceEntry{
		name: name, width: width, sample: sample,
		code: vcdCode(len(t.entries)),
	})
}

// TraceBool traces a boolean signal as a 1-bit VCD wire.
func TraceBool(t *Tracer, s *Signal[bool]) {
	t.add(s.Name(), 1, func() uint64 {
		if s.Read() {
			return 1
		}
		return 0
	})
}

// TraceUint traces an unsigned integer signal with the given bit width.
func TraceUint[T uint8 | uint16 | uint32 | uint64](t *Tracer, s *Signal[T], width int) {
	t.add(s.Name(), width, func() uint64 { return uint64(s.Read()) })
}

// TraceInt traces a signed integer signal with the given bit width
// (two's-complement encoding in the dump).
func TraceInt[T int8 | int16 | int32 | int64](t *Tracer, s *Signal[T], width int) {
	mask := uint64(1)<<uint(width) - 1
	if width == 64 {
		mask = ^uint64(0)
	}
	t.add(s.Name(), width, func() uint64 { return uint64(s.Read()) & mask })
}

// TraceFunc traces an arbitrary probe function with the given width.
func TraceFunc(t *Tracer, name string, width int, sample func() uint64) {
	t.add(name, width, sample)
}

// vcdCode maps an entry index to a short printable identifier.
func vcdCode(i int) string {
	const first, last = 33, 126 // '!' .. '~'
	n := last - first + 1
	var b []byte
	for {
		b = append(b, byte(first+i%n))
		i /= n
		if i == 0 {
			break
		}
		i--
	}
	return string(b)
}

func (t *Tracer) writef(format string, args ...any) {
	if t.err != nil {
		return
	}
	_, t.err = fmt.Fprintf(t.w, format, args...)
}

func (t *Tracer) header() {
	// A wall-clock stamp here would make otherwise identical runs
	// produce different VCD files; replayability wins over provenance.
	t.writef("$date\n  (deterministic cosim trace)\n$end\n")
	t.writef("$version\n  cosim sim kernel VCD tracer\n$end\n")
	t.writef("$timescale\n  1ps\n$end\n")
	t.writef("$scope module %s $end\n", t.name)
	for _, e := range t.entries {
		t.writef("$var wire %d %s %s $end\n", e.width, e.code, e.name)
	}
	t.writef("$upscope $end\n$enddefinitions $end\n")
}

// sample records current values, emitting changes (called by the kernel).
func (t *Tracer) sample(now Time) {
	if !t.started {
		t.started = true
		t.header()
	}
	for i := range t.entries {
		e := &t.entries[i]
		v := e.sample()
		if e.init && v == e.last {
			continue
		}
		if !t.haveT || t.curTime != now {
			t.writef("#%d\n", uint64(now))
			t.curTime, t.haveT = now, true
		}
		if e.width == 1 {
			t.writef("%d%s\n", v&1, e.code)
		} else {
			t.writef("b%s %s\n", strconv.FormatUint(v, 2), e.code)
		}
		e.last, e.init = v, true
	}
}
