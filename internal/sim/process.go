package sim

import "fmt"

// procKind distinguishes method processes (run-to-completion callbacks,
// like SC_METHOD) from thread processes (coroutines, like SC_THREAD).
type procKind uint8

const (
	methodProc procKind = iota
	threadProc
	issProc // an iss_process in the terminology of the paper
)

// errKilled is panicked inside thread goroutines to unwind them when the
// kernel shuts down. The thread trampoline recovers it.
type killedError struct{}

func (killedError) Error() string { return "sim: thread killed" }

// Proc is a simulation process: either a method or a thread.
type Proc struct {
	k    *Kernel
	name string
	kind procKind

	fn   func()     // method body
	body func(*Ctx) // thread body

	static []*Event // static sensitivity list

	// Thread coroutine state.
	resume   chan struct{}
	started  bool
	finished bool

	// Dynamic wait state (threads only).
	waitingOn []*Event
	timeout   *Event // private timeout event for WaitTime / WaitTimeout
	wake      *Event // the event that woke the last Wait, nil on timeout

	runnable   bool  // already queued in the current evaluation phase
	cluster    int32 // sensitivity cluster (cluster.go); -1 = unclustered
	serialOnly bool  // never run in a sharded round (CallAt dispatcher)
	ctx        *Ctx
}

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// MarkSerialOnly excludes the process from sharded evaluation rounds:
// any evaluation phase in which it is runnable is executed serially.
// Mark a method process serial-only when it touches objects belonging
// to several sensitivity clusters — a merger draining per-engine
// staging queues, a poller reading another cluster's ports — which the
// single-toucher round contract (cluster.go) cannot admit.
func (p *Proc) MarkSerialOnly() { p.serialOnly = true }

// Finished reports whether a thread's body has returned.
func (p *Proc) Finished() bool { return p.finished }

// Ctx is the handle a thread body uses to interact with the scheduler.
// It is only valid inside the owning thread.
type Ctx struct {
	p *Proc
}

// Kernel returns the kernel that owns this thread.
func (c *Ctx) Kernel() *Kernel { return c.p.k }

// Now returns the current simulation time.
func (c *Ctx) Now() Time { return c.p.k.now }

// Method registers a run-to-completion process, statically sensitive to
// the given events. Like SC_METHOD, it is run once at the start of
// simulation and then each time a sensitive event triggers.
func (k *Kernel) Method(name string, fn func(), sensitivity ...*Event) *Proc {
	p := &Proc{k: k, name: name, kind: methodProc, fn: fn, cluster: -1}
	k.register(p, sensitivity)
	return p
}

// MethodNoInit registers a method process that is not run at simulation
// start (the equivalent of SC_METHOD + dont_initialize()).
func (k *Kernel) MethodNoInit(name string, fn func(), sensitivity ...*Event) *Proc {
	p := k.Method(name, fn, sensitivity...)
	k.unqueue(p)
	return p
}

// Thread registers a coroutine process. The body runs in its own
// goroutine but the kernel guarantees that at any instant at most one
// process (or the scheduler itself) is executing, so no locking is
// needed between processes.
func (k *Kernel) Thread(name string, body func(*Ctx)) *Proc {
	p := &Proc{k: k, name: name, kind: threadProc, body: body,
		cluster: -1, resume: make(chan struct{})}
	p.ctx = &Ctx{p: p}
	k.register(p, nil)
	return p
}

// register adds the process to the kernel and makes it runnable for the
// initialization phase.
func (k *Kernel) register(p *Proc, sensitivity []*Event) {
	if k.running {
		panic(fmt.Sprintf("sim: process %q registered while simulation is running", p.name))
	}
	for _, e := range sensitivity {
		e.addStatic(p)
		p.static = append(p.static, e)
	}
	k.procs = append(k.procs, p)
	k.clustersDirty = true
	k.makeRunnable(p)
}

// unqueue removes p from the runnable queue (dont_initialize).
func (k *Kernel) unqueue(p *Proc) {
	if !p.runnable {
		return
	}
	p.runnable = false
	for i, q := range k.runnable {
		if q == p {
			k.runnable = append(k.runnable[:i], k.runnable[i+1:]...)
			return
		}
	}
}

// start launches the thread goroutine; it idles until first resumed.
func (p *Proc) start() {
	p.started = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedError); !ok {
					p.k.threadPanic = r
				}
			}
			p.finished = true
			p.k.yield <- struct{}{}
		}()
		<-p.resume
		if p.k.killing {
			panic(killedError{})
		}
		p.body(p.ctx)
	}()
}

// run executes the process for one activation: methods run to
// completion, threads run until their next Wait (or return).
func (k *Kernel) runProc(p *Proc) {
	k.current = p
	k.activations++
	switch p.kind {
	case methodProc, issProc:
		p.fn()
	case threadProc:
		if p.finished {
			break
		}
		if !p.started {
			p.start()
		}
		p.resume <- struct{}{}
		<-k.yield
		if k.threadPanic != nil {
			r := k.threadPanic
			k.threadPanic = nil
			panic(r)
		}
	}
	k.current = nil
}

// clearDynamic removes the process from every event it was waiting on.
func (p *Proc) clearDynamic() {
	for _, e := range p.waitingOn {
		e.removeDynamic(p)
	}
	p.waitingOn = p.waitingOn[:0]
}

// suspend parks the calling thread goroutine and returns control to the
// scheduler. It resumes when the kernel next runs the process.
func (p *Proc) suspend() {
	p.k.yield <- struct{}{}
	<-p.resume
	if p.k.killing {
		panic(killedError{})
	}
}

// Wait blocks the thread until one of the given events triggers and
// returns the event that woke it. With no arguments it waits on the
// thread's static sensitivity list.
func (c *Ctx) Wait(events ...*Event) *Event {
	p := c.p
	if len(events) == 0 {
		events = p.static
	}
	if len(events) == 0 {
		panic(fmt.Sprintf("sim: thread %q waits with no events and no static sensitivity", p.name))
	}
	for _, e := range events {
		e.dynamic = append(e.dynamic, p)
		p.waitingOn = append(p.waitingOn, e)
	}
	p.wake = nil
	p.suspend()
	return p.wake
}

// WaitTime blocks the thread for duration d of simulated time.
func (c *Ctx) WaitTime(d Time) {
	p := c.p
	if p.timeout == nil {
		p.timeout = p.k.NewEvent(p.name + ".timeout")
	}
	p.timeout.NotifyAfter(d)
	c.Wait(p.timeout)
}

// WaitTimeout waits for any of the events or until d elapses, whichever
// comes first. It returns the triggering event, or nil on timeout.
func (c *Ctx) WaitTimeout(d Time, events ...*Event) *Event {
	p := c.p
	if p.timeout == nil {
		p.timeout = p.k.NewEvent(p.name + ".timeout")
	}
	p.timeout.NotifyAfter(d)
	woke := c.Wait(append(events, p.timeout)...)
	if woke == p.timeout {
		return nil
	}
	p.timeout.Cancel()
	return woke
}

// WaitDelta blocks the thread for exactly one delta cycle.
func (c *Ctx) WaitDelta() {
	p := c.p
	if p.timeout == nil {
		p.timeout = p.k.NewEvent(p.name + ".timeout")
	}
	p.timeout.NotifyDelta()
	c.Wait(p.timeout)
}
