package sim

import (
	"sort"
	"sync"
)

// This file implements temporally-decoupled evaluation sharding: method
// processes whose static sensitivity graphs do not overlap form
// independent module clusters, and an evaluation phase whose runnable
// set spans several clusters may run those clusters on parallel worker
// goroutines. Rounds are barrier-only: each worker drains exactly the
// runnable processes it was handed at round start, and every
// kernel-global side effect a process performs (event notification or
// cancellation, timed-queue scheduling, update-phase registration,
// CallAt) is not applied in place but recorded in a shared deferred log
// and replayed serially at the merge barrier. Processes a merge makes
// runnable execute in the next round (or serially, if only one cluster
// remains), still within the same evaluation phase.
//
// Determinism contract (DESIGN.md §5.11):
//   - Within a round, a worker only reads and writes model objects of
//     its own cluster. Objects shared across clusters (a FIFO written by
//     one module and read by another) must not be touched by two
//     clusters within a single round; the stock models satisfy this
//     because cross-module producers are thread processes, which never
//     run in sharded rounds.
//   - The deferred log is replayed at the merge barrier sorted by the
//     owning event's registration index, then by the event's op
//     sequence. A given event must collect deferred operations from at
//     most one cluster per round (single toucher), which makes its
//     sequence — and hence the replay order — independent of goroutine
//     scheduling. SystemC's notification override rules (immediate
//     always fires, delta beats timed, earlier timed beats later) make
//     the replayed outcome converge to the serial one.
//   - Event.Pending and k.Now observed inside a round reflect the state
//     at the start of the round; time never advances mid-phase, so
//     replaying a NotifyAt at the merge is equivalent to applying it
//     inline.
//   - The CallAt dispatcher is serial-only: its deferred closures
//     deliver data into arbitrary foreign objects (ISS ports), so any
//     phase in which it is runnable is evaluated serially.

// shard is the per-cluster execution state of one sharded round: the
// queue of processes handed to the worker at round start.
type shard struct {
	runnable    []*Proc
	activations uint64
}

// deferredOp is one deferred kernel-global effect, keyed for the
// deterministic merge sort.
type deferredOp struct {
	regIdx int32  // owning event's registration index
	seq    uint32 // per-event op sequence (single toucher per round)
	fn     func()
}

// shardRound is one sharded evaluation round: the per-cluster shards
// plus the shared (mutex-guarded) deferred log and panic slot.
type shardRound struct {
	k      *Kernel
	shards []*shard // indexed by cluster id; nil = cluster not runnable

	mu      sync.Mutex
	ops     []deferredOp
	panicV  any
	panicee bool
}

// deferOp records fn for replay at the merge barrier under the owning
// event's (registration index, op sequence) key. The sequence is
// assigned under the log mutex; it is deterministic as long as a single
// cluster touches the event within the round.
func (r *shardRound) deferOp(owner *Event, fn func()) {
	r.mu.Lock()
	owner.opSeq++
	r.ops = append(r.ops, deferredOp{regIdx: owner.regIdx, seq: owner.opSeq, fn: fn})
	r.mu.Unlock()
}

// EnableSharding turns sharded evaluation on or off. With sharding on,
// Run partitions method processes into sensitivity clusters and
// evaluates multi-cluster phases on parallel workers; thread processes
// and single-cluster phases always run serially. The default is off
// (fully serial evaluation).
func (k *Kernel) EnableSharding(on bool) {
	k.shardEnabled = on
	if on {
		k.clustersDirty = true
	}
}

// ShardingEnabled reports whether sharded evaluation is on.
func (k *Kernel) ShardingEnabled() bool { return k.shardEnabled }

// ClusterCount returns the number of sensitivity clusters discovered by
// the last computation (0 before the first sharded Run).
func (k *Kernel) ClusterCount() int { return k.clusterCount }

// ClusterMerges returns the number of sharded evaluation rounds merged
// so far.
func (k *Kernel) ClusterMerges() uint64 { return k.clusterMerges }

// computeClusters discovers module clusters from the static sensitivity
// graph: method (and iss) processes sharing a static event are unioned;
// each event inherits the cluster of its static processes (uniform by
// construction) or stays unclustered. Cluster ids are dense and ordered
// by first-process registration order, so discovery is deterministic.
func (k *Kernel) computeClusters() {
	k.clustersDirty = false
	// The CallAt dispatcher must exist before any round can defer to it.
	k.ensureCallAt()

	parent := make([]int, len(k.procs))
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}

	firstOn := make(map[*Event]int)
	for i, p := range k.procs {
		p.cluster = -1
		if p.kind == threadProc {
			continue
		}
		for _, e := range p.static {
			if j, ok := firstOn[e]; ok {
				union(i, j)
			} else {
				firstOn[e] = i
			}
		}
	}

	next := int32(0)
	ids := make(map[int]int32)
	for i, p := range k.procs {
		if p.kind == threadProc {
			continue
		}
		root := find(i)
		id, ok := ids[root]
		if !ok {
			id = next
			next++
			ids[root] = id
		}
		p.cluster = id
	}
	k.clusterCount = int(next)

	for _, e := range k.events {
		e.cluster = -1
		for _, p := range e.static {
			if p.kind != threadProc {
				e.cluster = p.cluster
				break
			}
		}
	}
}

// tryShardRound runs one sharded evaluation round if the current
// runnable set is eligible: every runnable process is a clustered,
// shardable method, and at least two distinct clusters are represented.
// It reports whether a round ran (the caller re-checks the global
// queue, which the merge may have refilled).
func (k *Kernel) tryShardRound() bool {
	first := int32(-1)
	multi := false
	for _, p := range k.runnable {
		if p.kind == threadProc || p.cluster < 0 || p.serialOnly {
			return false
		}
		if first < 0 {
			first = p.cluster
		} else if p.cluster != first {
			multi = true
		}
	}
	if !multi {
		return false
	}

	r := &shardRound{k: k, shards: make([]*shard, k.clusterCount)}
	for _, p := range k.runnable {
		s := r.shards[p.cluster]
		if s == nil {
			s = &shard{}
			r.shards[p.cluster] = s
		}
		s.runnable = append(s.runnable, p)
	}
	k.runnable = k.runnable[:0]

	k.round = r
	var wg sync.WaitGroup
	for _, s := range r.shards {
		if s == nil {
			continue
		}
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					r.mu.Lock()
					if !r.panicee {
						r.panicee, r.panicV = true, p
					}
					r.mu.Unlock()
				}
			}()
			for _, p := range s.runnable {
				p.runnable = false
				s.activations++
				p.fn()
			}
		}(s)
	}
	wg.Wait()
	k.round = nil
	if r.panicee {
		panic(r.panicV)
	}

	// Merge barrier: replay the deferred log serially in (registration
	// index, per-event sequence) order.
	for _, s := range r.shards {
		if s == nil {
			continue
		}
		k.activations += s.activations
	}
	sort.Slice(r.ops, func(i, j int) bool {
		a, b := r.ops[i], r.ops[j]
		if a.regIdx != b.regIdx {
			return a.regIdx < b.regIdx
		}
		return a.seq < b.seq
	})
	for _, op := range r.ops {
		op.fn()
	}
	k.clusterMerges++
	return true
}
