package sim

import (
	"testing"
)

// runKernel runs the kernel until the given time and fails the test on
// unexpected errors, shutting down threads afterwards.
func runKernel(t *testing.T, k *Kernel, until Time) {
	t.Helper()
	if err := k.Run(until); err != nil && err != ErrDeadlock {
		t.Fatalf("Run: %v", err)
	}
	t.Cleanup(k.Shutdown)
}

func TestMethodRunsAtInit(t *testing.T) {
	k := NewKernel("t")
	ran := 0
	k.Method("m", func() { ran++ })
	runKernel(t, k, 10*NS)
	if ran != 1 {
		t.Fatalf("method ran %d times, want 1 (initialization)", ran)
	}
}

func TestMethodNoInit(t *testing.T) {
	k := NewKernel("t")
	ran := 0
	e := k.NewEvent("e")
	k.MethodNoInit("m", func() { ran++ }, e)
	e.NotifyAfter(5 * NS)
	runKernel(t, k, 10*NS)
	if ran != 1 {
		t.Fatalf("method ran %d times, want exactly 1 (no init run)", ran)
	}
}

func TestTimedNotification(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("e")
	var at Time
	k.MethodNoInit("m", func() { at = k.Now() }, e)
	e.NotifyAfter(7 * NS)
	runKernel(t, k, 100*NS)
	if at != 7*NS {
		t.Fatalf("triggered at %v, want 7ns", at)
	}
}

func TestDeltaNotification(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("e")
	var deltaAtTrigger uint64
	k.MethodNoInit("m", func() { deltaAtTrigger = k.DeltaCount() }, e)
	k.Method("starter", func() { e.NotifyDelta() })
	runKernel(t, k, NS)
	if deltaAtTrigger != 2 {
		t.Fatalf("triggered in delta %d, want 2 (one delta after init)", deltaAtTrigger)
	}
}

func TestImmediateNotification(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("e")
	order := []string{}
	k.MethodNoInit("listener", func() { order = append(order, "listener") }, e)
	k.Method("starter", func() {
		order = append(order, "starter")
		e.Notify() // immediate: listener runs in the same evaluation phase
	})
	runKernel(t, k, NS)
	if len(order) != 2 || order[0] != "starter" || order[1] != "listener" {
		t.Fatalf("order = %v", order)
	}
	if k.DeltaCount() != 1 {
		t.Fatalf("deltas = %d, want 1 (immediate stays within one delta)", k.DeltaCount())
	}
}

func TestNotifyOverrideRules(t *testing.T) {
	// Timed notification is overridden by an earlier timed one.
	k := NewKernel("t")
	e := k.NewEvent("e")
	var fired []Time
	k.MethodNoInit("m", func() { fired = append(fired, k.Now()) }, e)
	e.NotifyAfter(10 * NS)
	e.NotifyAfter(3 * NS)  // earlier wins
	e.NotifyAfter(20 * NS) // later is ignored
	runKernel(t, k, 100*NS)
	if len(fired) != 1 || fired[0] != 3*NS {
		t.Fatalf("fired = %v, want [3ns]", fired)
	}
}

func TestDeltaOverridesTimed(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("e")
	count := 0
	k.MethodNoInit("m", func() { count++ }, e)
	k.Method("starter", func() {
		e.NotifyAfter(10 * NS)
		e.NotifyDelta() // delta overrides pending timed
	})
	runKernel(t, k, 100*NS)
	if count != 1 {
		t.Fatalf("fired %d times, want 1", count)
	}
	if k.timed.Len() != 0 {
		t.Fatalf("timed queue still has %d entries", k.timed.Len())
	}
}

func TestCancel(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("e")
	count := 0
	k.MethodNoInit("m", func() { count++ }, e)
	e.NotifyAfter(5 * NS)
	e.Cancel()
	runKernel(t, k, 100*NS)
	if count != 0 {
		t.Fatalf("fired %d times after cancel, want 0", count)
	}
}

func TestCancelDeltaWhileQueued(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("e")
	count := 0
	k.MethodNoInit("m", func() { count++ }, e)
	k.Method("starter", func() {
		e.NotifyDelta()
		e.Cancel()
	})
	runKernel(t, k, NS)
	if count != 0 {
		t.Fatalf("fired %d times after cancelled delta, want 0", count)
	}
}

func TestThreadWaitTime(t *testing.T) {
	k := NewKernel("t")
	var stamps []Time
	k.Thread("th", func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.WaitTime(10 * NS)
			stamps = append(stamps, c.Now())
		}
	})
	runKernel(t, k, 100*NS)
	want := []Time{10 * NS, 20 * NS, 30 * NS}
	if len(stamps) != 3 {
		t.Fatalf("stamps = %v", stamps)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps = %v, want %v", stamps, want)
		}
	}
}

func TestThreadWaitEvent(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("go")
	done := false
	k.Thread("waiter", func(c *Ctx) {
		woke := c.Wait(e)
		if woke != e {
			t.Errorf("woke = %v, want event e", woke)
		}
		done = true
	})
	e.NotifyAfter(5 * NS)
	runKernel(t, k, 100*NS)
	if !done {
		t.Fatal("thread never woke")
	}
}

func TestThreadWaitAny(t *testing.T) {
	k := NewKernel("t")
	a, b := k.NewEvent("a"), k.NewEvent("b")
	var woken *Event
	k.Thread("waiter", func(c *Ctx) { woken = c.Wait(a, b) })
	b.NotifyAfter(3 * NS)
	a.NotifyAfter(9 * NS)
	runKernel(t, k, 100*NS)
	if woken != b {
		t.Fatalf("woken by %v, want b", woken.Name())
	}
	// The process must no longer be registered on event a.
	if len(a.dynamic) != 0 {
		t.Fatalf("event a still has %d dynamic waiters", len(a.dynamic))
	}
}

func TestThreadWaitTimeout(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("never")
	var got *Event = k.NewEvent("sentinel")
	k.Thread("waiter", func(c *Ctx) { got = c.WaitTimeout(5*NS, e) })
	runKernel(t, k, 100*NS)
	if got != nil {
		t.Fatalf("WaitTimeout returned %v, want nil (timeout)", got)
	}
}

func TestThreadWaitTimeoutEventWins(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("e")
	var got *Event
	k.Thread("waiter", func(c *Ctx) { got = c.WaitTimeout(50*NS, e) })
	e.NotifyAfter(5 * NS)
	runKernel(t, k, 100*NS)
	if got != e {
		t.Fatalf("WaitTimeout = %v, want event e", got)
	}
}

func TestStop(t *testing.T) {
	k := NewKernel("t")
	n := 0
	k.Thread("th", func(c *Ctx) {
		for {
			c.WaitTime(NS)
			n++
			if n == 5 {
				k.Stop()
			}
		}
	})
	runKernel(t, k, 1000*NS)
	if n != 5 {
		t.Fatalf("iterations = %d, want 5", n)
	}
	if k.Now() != 5*NS {
		t.Fatalf("stopped at %v, want 5ns", k.Now())
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("never")
	k.Thread("stuck", func(c *Ctx) { c.Wait(e) })
	err := k.Run(100 * NS)
	k.Shutdown()
	if err != ErrDeadlock {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
}

func TestRunInSlices(t *testing.T) {
	k := NewKernel("t")
	var stamps []Time
	k.Thread("th", func(c *Ctx) {
		for {
			c.WaitTime(10 * NS)
			stamps = append(stamps, c.Now())
		}
	})
	if err := k.Run(25 * NS); err != nil {
		t.Fatal(err)
	}
	if len(stamps) != 2 {
		t.Fatalf("after first slice stamps = %v", stamps)
	}
	if err := k.Run(45 * NS); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(stamps) != 4 {
		t.Fatalf("after second slice stamps = %v", stamps)
	}
	if k.Now() != 45*NS {
		t.Fatalf("now = %v", k.Now())
	}
}

func TestCycleHooks(t *testing.T) {
	k := NewKernel("t")
	var begins, ends int
	k.AddCycleHook(func(*Kernel) { begins++ })
	k.AddEndCycleHook(func(*Kernel) { ends++ })
	k.Thread("th", func(c *Ctx) {
		for i := 0; i < 3; i++ {
			c.WaitTime(10 * NS)
		}
	})
	runKernel(t, k, 35*NS)
	if begins == 0 || ends == 0 {
		t.Fatalf("hooks not called: begins=%d ends=%d", begins, ends)
	}
	// One begin hook per simulation cycle: init + 3 wakeups.
	if begins != 4 {
		t.Fatalf("begins = %d, want 4", begins)
	}
}

func TestEndCycleHookCanInjectWork(t *testing.T) {
	// An end-of-cycle hook that makes new work at the current time must
	// cause another delta loop, not a time advance (Driver-Kernel
	// interrupt delivery relies on this).
	k := NewKernel("t")
	e := k.NewEvent("irq")
	fired := 0
	k.MethodNoInit("isr", func() { fired++ }, e)
	injected := false
	k.AddEndCycleHook(func(kk *Kernel) {
		if !injected && kk.Now() == 10*NS {
			injected = true
			e.NotifyDelta()
		}
	})
	k.Thread("th", func(c *Ctx) { c.WaitTime(10 * NS) })
	runKernel(t, k, 50*NS)
	if fired != 1 {
		t.Fatalf("isr fired %d times, want 1", fired)
	}
}

func TestShutdownUnblocksThreads(t *testing.T) {
	k := NewKernel("t")
	e := k.NewEvent("never")
	p := k.Thread("stuck", func(c *Ctx) { c.Wait(e) })
	_ = k.Run(10 * NS)
	k.Shutdown()
	if !p.Finished() {
		t.Fatal("thread not finished after Shutdown")
	}
	// Second shutdown must be a no-op.
	k.Shutdown()
}

func TestFinalizersRunOnShutdown(t *testing.T) {
	k := NewKernel("t")
	var order []int
	k.AddFinalizer(func() { order = append(order, 1) })
	k.AddFinalizer(func() { order = append(order, 2) })
	k.Shutdown()
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("finalizer order = %v, want [2 1]", order)
	}
}

func TestDeterministicTimedOrdering(t *testing.T) {
	// Events scheduled for the same instant fire in scheduling order.
	k := NewKernel("t")
	var order []string
	for _, name := range []string{"a", "b", "c", "d"} {
		name := name
		e := k.NewEvent(name)
		k.MethodNoInit(name, func() { order = append(order, name) }, e)
		e.NotifyAfter(10 * NS)
	}
	runKernel(t, k, 100*NS)
	if got := len(order); got != 4 {
		t.Fatalf("order = %v", order)
	}
	for i, want := range []string{"a", "b", "c", "d"} {
		if order[i] != want {
			t.Fatalf("order = %v, want [a b c d]", order)
		}
	}
}

func TestThreadPanicPropagates(t *testing.T) {
	k := NewKernel("t")
	k.Thread("boom", func(c *Ctx) {
		c.WaitTime(NS)
		panic("bang")
	})
	defer func() {
		k.Shutdown()
		if r := recover(); r == nil {
			t.Fatal("expected panic to propagate from thread")
		}
	}()
	_ = k.Run(10 * NS)
	t.Fatal("Run returned normally")
}

func TestCallAt(t *testing.T) {
	k := NewKernel("t")
	var order []Time
	k.Thread("keeper", func(c *Ctx) { // keeps timed activity alive
		for i := 0; i < 10; i++ {
			c.WaitTime(10 * NS)
		}
	})
	k.CallAt(25*NS, func() { order = append(order, k.Now()) })
	k.CallAt(5*NS, func() { order = append(order, k.Now()) })
	k.CallAt(25*NS, func() { order = append(order, k.Now()) })
	runKernel(t, k, 100*NS)
	if len(order) != 3 || order[0] != 5*NS || order[1] != 25*NS || order[2] != 25*NS {
		t.Fatalf("order = %v", order)
	}
}

func TestCallAtPastRunsImmediately(t *testing.T) {
	k := NewKernel("t")
	ran := false
	k.Thread("th", func(c *Ctx) {
		c.WaitTime(50 * NS)
		k.CallAt(10*NS, func() { ran = true }) // in the past
		c.WaitTime(10 * NS)
		if !ran {
			t.Error("past CallAt did not run promptly")
		}
	})
	runKernel(t, k, 200*NS)
	if !ran {
		t.Fatal("never ran")
	}
}

func TestCallAfterChaining(t *testing.T) {
	k := NewKernel("t")
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 5 {
			k.CallAfter(10*NS, chain)
		}
	}
	k.CallAfter(10*NS, chain)
	runKernel(t, k, MS)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}
