package sim

import (
	"errors"
	"fmt"
	"sync/atomic"

	"cosim/internal/obs"
)

// updatable is implemented by primitive channels (Signal, Fifo) whose
// writes are deferred to the update phase.
type updatable interface {
	update()
}

// CycleHook is invoked by the scheduler at simulation-cycle boundaries.
// This is the kernel extension point of the paper: the GDB-Kernel scheme
// polls the ISS pipe from a begin-of-cycle hook, and the Driver-Kernel
// scheme drains its data socket there and emits interrupt messages from
// an end-of-cycle hook.
type CycleHook func(k *Kernel)

// Kernel is the simulation kernel: it owns processes, events, channels
// and the scheduler. A Kernel is not safe for concurrent use; external
// goroutines (e.g. an ISS running in parallel) must communicate with the
// simulation through hooks and their own synchronized queues.
type Kernel struct {
	name string

	now         Time
	deltaCount  uint64 // total delta cycles executed
	cycleCount  uint64 // total timed simulation cycles executed
	activations uint64 // total process activations executed

	// hookNS, when set via SetObs, receives the wall-clock latency of
	// the begin-of-cycle hook chain — the per-cycle cost the paper's
	// kernel-embedded schemes add to the scheduler.
	hookNS *obs.Histogram

	runnable []*Proc
	updates  []updatable
	deltas   []*Event
	timed    timedQueue
	procs    []*Proc
	events   []*Event // registration-ordered; orphan-merge sort key source

	// Sharded evaluation state (cluster.go): clusters are discovered
	// lazily at Run entry when sharding is enabled, and round is non-nil
	// exactly while a sharded evaluation round's workers execute.
	shardEnabled  bool
	clustersDirty bool
	clusterCount  int
	clusterMerges uint64
	round         *shardRound

	cycleHooks    []CycleHook
	endCycleHooks []CycleHook

	tracers []*Tracer

	// ISS port registry (paper §3.1/§4.2 kernel extensions).
	issIns  map[string]*IssIn
	issOuts map[string]*IssOut

	callAt *callAtDispatcher

	running     bool
	stopReq     atomic.Bool // may be set from sharded-round workers
	killing     bool
	current     *Proc
	yield       chan struct{}
	threadPanic any

	finalizers []func()
}

// NewKernel creates an empty simulation kernel.
func NewKernel(name string) *Kernel {
	return &Kernel{name: name, yield: make(chan struct{})}
}

// Name returns the kernel's name.
func (k *Kernel) Name() string { return k.name }

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// DeltaCount returns the number of delta cycles executed so far.
func (k *Kernel) DeltaCount() uint64 { return k.deltaCount }

// CycleCount returns the number of timed simulation cycles executed so
// far (the number of distinct time points visited).
func (k *Kernel) CycleCount() uint64 { return k.cycleCount }

// Activations returns the number of process activations executed so far.
func (k *Kernel) Activations() uint64 { return k.activations }

// SetObs attaches an observability registry to the kernel: the
// begin-of-cycle hook chain is timed into the "sim.cycle_hook_ns"
// histogram. A nil registry detaches (and removes the per-cycle timing
// entirely).
func (k *Kernel) SetObs(r *obs.Registry) {
	k.hookNS = r.Histogram("sim.cycle_hook_ns")
}

// PublishObs copies the kernel's scheduler counters into the registry
// as gauges: sim.cycles, sim.delta_cycles, sim.activations. Call it
// after (or during) a run; safe on a nil registry.
func (k *Kernel) PublishObs(r *obs.Registry) {
	r.Gauge("sim.cycles").Set(k.cycleCount)
	r.Gauge("sim.delta_cycles").Set(k.deltaCount)
	r.Gauge("sim.activations").Set(k.activations)
	r.Gauge("sim.cluster_merges").Set(k.clusterMerges)
}

// AddCycleHook registers a hook called at the beginning of every
// simulation cycle, before the first evaluation phase of that time
// point. This mirrors the paper's modified scheduling algorithm
// (Figures 3 and 5): "at the beginning of a simulation cycle, check ...".
func (k *Kernel) AddCycleHook(h CycleHook) { k.cycleHooks = append(k.cycleHooks, h) }

// AddEndCycleHook registers a hook called at the end of every simulation
// cycle, after event scheduling and before time advances — the point
// where the Driver-Kernel scheme notifies interrupts to the driver.
func (k *Kernel) AddEndCycleHook(h CycleHook) { k.endCycleHooks = append(k.endCycleHooks, h) }

// AddFinalizer registers a function run by Shutdown (in reverse
// registration order), used to close co-simulation transports.
func (k *Kernel) AddFinalizer(f func()) { k.finalizers = append(k.finalizers, f) }

// makeRunnable queues the process for the current evaluation phase.
func (k *Kernel) makeRunnable(p *Proc) {
	if p.runnable || p.finished {
		return
	}
	p.runnable = true
	k.runnable = append(k.runnable, p)
}

// requestUpdate queues a primitive channel for the update phase.
func (k *Kernel) requestUpdate(u updatable) {
	k.updates = append(k.updates, u)
}

// requestUpdateOwned is requestUpdate for channels that know the event
// they notify on change: inside a sharded round the registration is
// deferred to the merge barrier, routed by the owner's cluster.
func (k *Kernel) requestUpdateOwned(u updatable, owner *Event) {
	if r := k.round; r != nil {
		r.deferOp(owner, func() { k.updates = append(k.updates, u) })
		return
	}
	k.updates = append(k.updates, u)
}

// Stop requests the simulation to stop at the end of the current delta
// cycle (the equivalent of sc_stop). Safe to call from processes,
// including processes running inside a sharded evaluation round.
func (k *Kernel) Stop() { k.stopReq.Store(true) }

// ErrDeadlock is returned by Run when, before the time limit, there are
// no runnable processes, no pending notifications, and no cycle hooks
// that could inject external activity.
var ErrDeadlock = errors.New("sim: no pending activity (deadlock)")

// Run advances the simulation until the given absolute time, until
// Stop is called, or until starvation. It returns nil when the time
// limit was reached or Stop was requested.
//
// Run may be called repeatedly to advance the simulation in slices.
func (k *Kernel) Run(until Time) error {
	k.running = true
	defer func() { k.running = false }()
	k.stopReq.Store(false)
	if k.shardEnabled && k.clustersDirty {
		k.computeClusters()
	}

	for {
		// ---- begin of simulation cycle (paper: Figure 3 / Figure 5) ----
		k.cycleCount++
		sp := k.hookNS.Start()
		for _, h := range k.cycleHooks {
			h(k)
		}
		sp.End()

		// Delta loop: evaluate / update / delta-notify until quiescent.
		for {
			if len(k.runnable) == 0 && len(k.updates) == 0 && len(k.deltas) == 0 {
				break
			}
			k.deltaCount++

			// Evaluation phase. Immediate notifications may append to
			// k.runnable while we iterate; process until drained. When
			// sharding is enabled and the queue spans several method
			// clusters, the whole queue is handed to parallel workers and
			// merged deterministically (cluster.go).
			for len(k.runnable) > 0 {
				if k.shardEnabled && k.tryShardRound() {
					continue
				}
				p := k.runnable[0]
				k.runnable = k.runnable[1:]
				p.runnable = false
				k.runProc(p)
			}

			// Update phase.
			ups := k.updates
			k.updates = nil
			for _, u := range ups {
				u.update()
			}

			// Delta notification phase.
			ds := k.deltas
			k.deltas = nil
			for _, e := range ds {
				if e.pending == pendingDelta {
					e.fire()
				}
			}

			if k.stopReq.Load() {
				k.sample()
				return nil
			}
		}

		k.sample()

		// ---- end of simulation cycle ----
		for _, h := range k.endCycleHooks {
			h(k)
		}
		// Hooks may have made processes runnable or queued deltas at the
		// current time; loop back into the delta loop without advancing.
		if len(k.runnable) > 0 || len(k.updates) > 0 || len(k.deltas) > 0 {
			continue
		}

		// Advance time.
		next := k.timed.peek()
		if next == nil {
			if len(k.cycleHooks) == 0 {
				return ErrDeadlock
			}
			// External activity could still arrive through hooks, but
			// with no timed events the simulation cannot advance.
			return ErrDeadlock
		}
		if next.due > until {
			k.now = until
			return nil
		}
		k.now = next.due
		for k.timed.Len() > 0 && k.timed.peek().due == k.now {
			k.timed.pop().fire()
		}
	}
}

// RunFor advances the simulation by d from the current time.
func (k *Kernel) RunFor(d Time) error { return k.Run(k.now + d) }

// Shutdown terminates all thread goroutines and runs finalizers. The
// kernel must not be used afterwards. It is safe to call Shutdown more
// than once.
func (k *Kernel) Shutdown() {
	if k.killing {
		return
	}
	k.killing = true
	for _, p := range k.procs {
		if p.kind != threadProc || p.finished {
			continue
		}
		if !p.started {
			p.start()
		}
		p.resume <- struct{}{}
		<-k.yield
	}
	for i := len(k.finalizers) - 1; i >= 0; i-- {
		k.finalizers[i]()
	}
	k.finalizers = nil
}

// sample lets every tracer record the state at the end of a delta/timed
// cycle.
func (k *Kernel) sample() {
	for _, t := range k.tracers {
		t.sample(k.now)
	}
}

// Module provides hierarchical naming for user components, loosely
// equivalent to sc_module. Embed it in model structs.
type Module struct {
	kernel *Kernel
	name   string
}

// NewModule creates a module attached to the kernel.
func (k *Kernel) NewModule(name string) Module {
	return Module{kernel: k, name: name}
}

// Kernel returns the owning kernel.
func (m *Module) Kernel() *Kernel { return m.kernel }

// Name returns the module instance name.
func (m *Module) Name() string { return m.name }

// Sub returns a hierarchical name "module.item" for naming child objects.
func (m *Module) Sub(item string) string {
	return fmt.Sprintf("%s.%s", m.name, item)
}
