package sim

// Clock is a periodic boolean signal source, equivalent to sc_clock.
// It drives a Signal[bool] and exposes positive and negative edge events.
type Clock struct {
	k      *Kernel
	name   string
	period Time
	sig    *Signal[bool]
	pos    *Event
	neg    *Event
	drv    *Event // internal self-notification
	ticks  uint64
}

// NewClock creates a clock with the given period and a 50% duty cycle.
// The clock starts low; the first positive edge occurs at period/2.
func NewClock(k *Kernel, name string, period Time) *Clock {
	if period < 2 {
		panic("sim: clock period must be at least 2ps")
	}
	c := &Clock{
		k: k, name: name, period: period,
		sig: NewSignal[bool](k, name),
		pos: k.NewEvent(name + ".pos"),
		neg: k.NewEvent(name + ".neg"),
		drv: k.NewEvent(name + ".drv"),
	}
	half := period / 2
	tick := func() {
		if c.sig.Read() {
			c.sig.Write(false)
			c.neg.NotifyDelta()
		} else {
			c.sig.Write(true)
			c.pos.NotifyDelta()
			c.ticks++
		}
		c.drv.NotifyAfter(half)
	}
	k.MethodNoInit(name+".gen", tick, c.drv)
	c.drv.NotifyAfter(half)
	return c
}

// Period returns the clock period.
func (c *Clock) Period() Time { return c.period }

// Signal returns the underlying boolean signal.
func (c *Clock) Signal() *Signal[bool] { return c.sig }

// Pos returns the positive-edge event.
func (c *Clock) Pos() *Event { return c.pos }

// Neg returns the negative-edge event.
func (c *Clock) Neg() *Event { return c.neg }

// Ticks returns the number of positive edges generated so far.
func (c *Clock) Ticks() uint64 { return c.ticks }
