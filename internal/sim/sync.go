package sim

// Mutex is a simulation-level mutex equivalent to sc_mutex. It
// serializes thread processes, not goroutines: only one simulated owner
// at a time, with blocked threads parked on an event.
type Mutex struct {
	k        *Kernel
	name     string
	owner    *Proc
	released *Event
}

// NewMutex creates a named simulation mutex.
func NewMutex(k *Kernel, name string) *Mutex {
	return &Mutex{k: k, name: name, released: k.NewEvent(name + ".released")}
}

// Lock blocks the calling thread until the mutex is free, then takes it.
func (m *Mutex) Lock(c *Ctx) {
	for m.owner != nil {
		c.Wait(m.released)
	}
	m.owner = c.p
}

// TryLock takes the mutex if free and reports success.
func (m *Mutex) TryLock(c *Ctx) bool {
	if m.owner != nil {
		return false
	}
	m.owner = c.p
	return true
}

// Unlock releases the mutex. It panics if the caller is not the owner,
// matching sc_mutex's error behaviour.
func (m *Mutex) Unlock(c *Ctx) {
	if m.owner != c.p {
		panic("sim: mutex unlocked by non-owner " + c.p.name)
	}
	m.owner = nil
	m.released.Notify()
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Semaphore is a counting semaphore equivalent to sc_semaphore.
type Semaphore struct {
	k      *Kernel
	name   string
	value  int
	posted *Event
}

// NewSemaphore creates a semaphore with the given initial count.
func NewSemaphore(k *Kernel, name string, initial int) *Semaphore {
	if initial < 0 {
		panic("sim: semaphore initial value must be >= 0")
	}
	return &Semaphore{k: k, name: name, value: initial,
		posted: k.NewEvent(name + ".posted")}
}

// Wait decrements the semaphore, blocking while the count is zero.
func (s *Semaphore) Wait(c *Ctx) {
	for s.value == 0 {
		c.Wait(s.posted)
	}
	s.value--
}

// TryWait decrements the semaphore if positive and reports success.
func (s *Semaphore) TryWait() bool {
	if s.value == 0 {
		return false
	}
	s.value--
	return true
}

// Post increments the semaphore and wakes blocked threads.
func (s *Semaphore) Post() {
	s.value++
	s.posted.Notify()
}

// Value returns the current count.
func (s *Semaphore) Value() int { return s.value }
