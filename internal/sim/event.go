package sim

// pendingKind describes the outstanding notification on an Event.
type pendingKind uint8

const (
	pendingNone pendingKind = iota
	pendingDelta
	pendingTimed
)

// Event is a synchronization primitive equivalent to sc_event. Processes
// become runnable when an event they are (statically or dynamically)
// sensitive to is triggered.
//
// An Event carries at most one outstanding notification. Following
// SystemC semantics, an immediate notification always takes effect; a
// delta notification overrides a pending timed one; and a timed
// notification overrides a pending timed notification only if it is
// scheduled earlier.
type Event struct {
	k    *Kernel
	name string

	static  []*Proc // statically sensitive processes
	dynamic []*Proc // processes blocked in Wait on this event

	pending pendingKind
	due     Time // valid when pending == pendingTimed
	heapIdx int  // index in the kernel timed queue, -1 if absent

	// Sharded-evaluation routing state (cluster.go): the sensitivity
	// cluster this event belongs to (-1 = unclustered), its registration
	// index, and the per-event sequence numbering deferred orphan ops.
	cluster int32
	regIdx  int32
	opSeq   uint32
}

// NewEvent creates a named event owned by the kernel.
func (k *Kernel) NewEvent(name string) *Event {
	e := &Event{k: k, name: name, heapIdx: -1, cluster: -1, regIdx: int32(len(k.events))}
	k.events = append(k.events, e)
	return e
}

// Name returns the event's name.
func (e *Event) Name() string { return e.name }

// Notify triggers the event immediately: every sensitive process becomes
// runnable in the current evaluation phase. Any pending delayed
// notification is cancelled.
func (e *Event) Notify() {
	if r := e.k.round; r != nil {
		r.deferOp(e, e.Notify)
		return
	}
	e.Cancel()
	e.trigger()
}

// NotifyDelta schedules the event to trigger in the next delta cycle of
// the current simulation time.
func (e *Event) NotifyDelta() {
	if r := e.k.round; r != nil {
		r.deferOp(e, e.NotifyDelta)
		return
	}
	switch e.pending {
	case pendingDelta:
		return
	case pendingTimed:
		e.k.timed.remove(e)
	}
	e.pending = pendingDelta
	e.k.deltas = append(e.k.deltas, e)
}

// NotifyAfter schedules the event to trigger after delay d. A delay of
// zero is equivalent to NotifyDelta.
func (e *Event) NotifyAfter(d Time) {
	if d == 0 {
		e.NotifyDelta()
		return
	}
	e.NotifyAt(e.k.now + d)
}

// NotifyAt schedules the event to trigger at absolute time t. Per
// SystemC override rules, an already-pending delta notification wins, and
// an already-pending earlier timed notification wins.
func (e *Event) NotifyAt(t Time) {
	if r := e.k.round; r != nil {
		// k.now is frozen for the duration of an evaluation phase, so
		// replaying the full call at the merge barrier is equivalent.
		r.deferOp(e, func() { e.NotifyAt(t) })
		return
	}
	switch e.pending {
	case pendingDelta:
		return
	case pendingTimed:
		if e.due <= t {
			return
		}
		e.k.timed.remove(e)
	}
	if t < e.k.now {
		t = e.k.now
	}
	e.pending = pendingTimed
	e.due = t
	e.k.timed.push(e)
}

// Cancel removes any pending delayed notification.
func (e *Event) Cancel() {
	if r := e.k.round; r != nil {
		r.deferOp(e, e.Cancel)
		return
	}
	switch e.pending {
	case pendingTimed:
		e.k.timed.remove(e)
	case pendingDelta:
		// Leave the stale entry in the delta list; fire() checks pending.
	}
	e.pending = pendingNone
}

// Pending reports whether a delta or timed notification is outstanding.
func (e *Event) Pending() bool { return e.pending != pendingNone }

// fire delivers a previously scheduled (delta or timed) notification.
func (e *Event) fire() {
	if e.pending == pendingNone {
		return // cancelled while queued
	}
	e.pending = pendingNone
	e.trigger()
}

// trigger makes all sensitive processes runnable.
func (e *Event) trigger() {
	for _, p := range e.static {
		e.k.makeRunnable(p)
	}
	e.wakeDynamics()
}

// wakeDynamics wakes the processes blocked in Wait on this event — the
// dynamic half of trigger, deferred to the merge barrier by sharded
// rounds (dynamic waiters are threads, which never run in a round).
func (e *Event) wakeDynamics() {
	if len(e.dynamic) == 0 {
		return
	}
	for _, p := range e.dynamic {
		p.clearDynamic()
		p.wake = e
		e.k.makeRunnable(p)
	}
	e.dynamic = e.dynamic[:0]
}

// addStatic registers p in the event's static sensitivity list.
func (e *Event) addStatic(p *Proc) { e.static = append(e.static, p) }

// removeDynamic removes p from the dynamic waiter list (used when a
// process waiting on several events is woken by one of them).
func (e *Event) removeDynamic(p *Proc) {
	for i, q := range e.dynamic {
		if q == p {
			e.dynamic = append(e.dynamic[:i], e.dynamic[i+1:]...)
			return
		}
	}
}

// timedQueue is a binary min-heap of events ordered by due time. Ties
// are broken by insertion order to keep scheduling deterministic.
type timedQueue struct {
	items []timedItem
	seq   uint64
}

type timedItem struct {
	e   *Event
	seq uint64
}

func (q *timedQueue) Len() int { return len(q.items) }

func (q *timedQueue) less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if a.e.due != b.e.due {
		return a.e.due < b.e.due
	}
	return a.seq < b.seq
}

func (q *timedQueue) swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].e.heapIdx = i
	q.items[j].e.heapIdx = j
}

func (q *timedQueue) push(e *Event) {
	q.seq++
	q.items = append(q.items, timedItem{e, q.seq})
	e.heapIdx = len(q.items) - 1
	q.up(e.heapIdx)
}

func (q *timedQueue) peek() *Event {
	if len(q.items) == 0 {
		return nil
	}
	return q.items[0].e
}

func (q *timedQueue) pop() *Event {
	e := q.items[0].e
	q.removeAt(0)
	return e
}

func (q *timedQueue) remove(e *Event) {
	if e.heapIdx >= 0 {
		q.removeAt(e.heapIdx)
	}
}

func (q *timedQueue) removeAt(i int) {
	n := len(q.items) - 1
	q.items[i].e.heapIdx = -1
	if i != n {
		q.items[i] = q.items[n]
		q.items[i].e.heapIdx = i
	}
	q.items = q.items[:n]
	if i < n {
		q.down(i)
		q.up(i)
	}
}

func (q *timedQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *timedQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
