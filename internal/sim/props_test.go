package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSchedulerDeterminism: the same program of notifications produces
// the same firing trace on every run — the delta/timed machinery has no
// hidden map-iteration or goroutine-order dependence.
func TestSchedulerDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel("d")
		var trace []string
		events := make([]*Event, 8)
		for i := range events {
			name := string(rune('a' + i))
			e := k.NewEvent(name)
			events[i] = e
			k.MethodNoInit(name, func() {
				trace = append(trace, name+"@"+k.Now().String())
				// Random follow-on notifications, deterministic per seed.
				switch rng.Intn(3) {
				case 0:
					events[rng.Intn(len(events))].NotifyDelta()
				case 1:
					events[rng.Intn(len(events))].NotifyAfter(Time(rng.Intn(50)) * NS)
				}
			}, e)
		}
		for i := 0; i < 20; i++ {
			events[rng.Intn(len(events))].NotifyAfter(Time(rng.Intn(100)) * NS)
		}
		_ = k.Run(10 * US)
		k.Shutdown()
		return trace
	}
	for seed := int64(0); seed < 10; seed++ {
		t1, t2 := run(seed), run(seed)
		if len(t1) != len(t2) {
			t.Fatalf("seed %d: trace lengths differ (%d vs %d)", seed, len(t1), len(t2))
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				t.Fatalf("seed %d: traces diverge at %d: %s vs %s", seed, i, t1[i], t2[i])
			}
		}
	}
}

// TestTimeMonotonicity: a thread observing Now() across arbitrary waits
// never sees time move backwards, and wakeups land exactly on schedule.
func TestTimeMonotonicity(t *testing.T) {
	f := func(delaysRaw []uint16) bool {
		if len(delaysRaw) == 0 || len(delaysRaw) > 50 {
			return true
		}
		k := NewKernel("m")
		ok := true
		k.Thread("walker", func(c *Ctx) {
			prev := c.Now()
			for _, d := range delaysRaw {
				want := prev + Time(d)*NS
				c.WaitTime(Time(d) * NS)
				if c.Now() != want {
					ok = false
				}
				prev = c.Now()
			}
		})
		_ = k.Run(MaxTime)
		k.Shutdown()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestSignalLastWriterWinsProperty: with several writers in one delta,
// the published value is the last Write in process order.
func TestSignalLastWriterWinsProperty(t *testing.T) {
	f := func(vals []int32) bool {
		if len(vals) == 0 || len(vals) > 20 {
			return true
		}
		k := NewKernel("s")
		sig := NewSignal[int32](k, "sig")
		k.Method("writer", func() {
			for _, v := range vals {
				sig.Write(v)
			}
		})
		_ = k.Run(NS)
		k.Shutdown()
		return sig.Read() == vals[len(vals)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFifoOrderPreserved: items always come out in insertion order even
// under random interleavings of reads and writes.
func TestFifoOrderPreserved(t *testing.T) {
	f := func(ops []bool) bool {
		k := NewKernel("f")
		q := NewFifo[int](k, "q", 8)
		nextW, nextR := 0, 0
		good := true
		for _, isW := range ops {
			if isW {
				if q.TryWrite(nextW) {
					nextW++
				}
			} else if v, ok := q.TryRead(); ok {
				if v != nextR {
					good = false
				}
				nextR++
			}
		}
		k.Shutdown()
		return good
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestManyThreadsFairProgress: N threads ticking at the same period all
// advance the same number of times.
func TestManyThreadsFairProgress(t *testing.T) {
	k := NewKernel("fair")
	const n = 32
	counts := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		k.Thread("t", func(c *Ctx) {
			for {
				c.WaitTime(10 * NS)
				counts[i]++
			}
		})
	}
	if err := k.Run(10 * US); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	for i, got := range counts {
		if got != counts[0] {
			t.Fatalf("thread %d advanced %d times vs %d", i, got, counts[0])
		}
	}
	if counts[0] != 1000 {
		t.Fatalf("ticks = %d, want 1000", counts[0])
	}
}

// TestEventCancelThenRenotify: cancelling a timed notification and
// re-arming later must fire exactly once at the new time.
func TestEventCancelThenRenotify(t *testing.T) {
	k := NewKernel("c")
	e := k.NewEvent("e")
	var fired []Time
	k.MethodNoInit("m", func() { fired = append(fired, k.Now()) }, e)
	e.NotifyAfter(10 * NS)
	e.Cancel()
	e.NotifyAfter(30 * NS)
	_ = k.Run(100 * NS)
	k.Shutdown()
	if len(fired) != 1 || fired[0] != 30*NS {
		t.Fatalf("fired = %v", fired)
	}
}

// TestMassiveTimedQueue stresses the heap with thousands of events.
func TestMassiveTimedQueue(t *testing.T) {
	k := NewKernel("big")
	rng := rand.New(rand.NewSource(42))
	fired := 0
	var lastTime Time
	for i := 0; i < 5000; i++ {
		e := k.NewEvent("e")
		k.MethodNoInit("m", func() {
			if k.Now() < lastTime {
				t.Error("time went backwards")
			}
			lastTime = k.Now()
			fired++
		}, e)
		e.NotifyAfter(Time(rng.Intn(1_000_000)) * NS)
	}
	if err := k.Run(MaxTime); err != nil && err != ErrDeadlock {
		t.Fatal(err)
	}
	k.Shutdown()
	if fired != 5000 {
		t.Fatalf("fired = %d", fired)
	}
}

// clusteredTrace builds a randomized multi-cluster method graph
// (deterministic in seed) and returns each process's activation-time
// trace plus the number of sharded rounds merged. Every cluster is a
// ring of methods chained by delta notifications, re-armed on a common
// period so the clusters keep co-firing (making multi-cluster phases,
// hence sharded rounds, frequent), with a cross-cluster handoff into
// the next cluster's inbox event. The graph respects the sharding
// contract: every event collects operations from at most one cluster
// per phase, and only delta/timed notifications are used (immediate
// notification is activation-order-sensitive even under the serial
// scheduler, so it is not a determinism property to test).
func clusteredTrace(seed int64, shard bool) ([][]Time, uint64) {
	mix := func(vs ...int64) uint64 {
		h := uint64(seed) * 0x9e3779b97f4a7c15
		for _, v := range vs {
			h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		}
		return h
	}
	rng := rand.New(rand.NewSource(seed))
	k := NewKernel("prop")
	k.EnableSharding(shard)
	nClusters := 2 + rng.Intn(4) // 2..5
	procsPer := 1 + rng.Intn(3)  // 1..3
	period := Time(10+rng.Intn(90)) * NS

	events := make([][]*Event, nClusters)
	inboxes := make([]*Event, nClusters)
	for c := 0; c < nClusters; c++ {
		events[c] = make([]*Event, procsPer)
		for i := range events[c] {
			events[c][i] = k.NewEvent("e")
		}
		inboxes[c] = k.NewEvent("inbox")
	}

	traces := make([][]Time, nClusters*procsPer)
	for c := 0; c < nClusters; c++ {
		c := c
		for i := 0; i < procsPer; i++ {
			i := i
			idx := c*procsPer + i
			act := int64(0)
			fn := func() {
				traces[idx] = append(traces[idx], k.Now())
				act++
				if act > 40 {
					return // bound the workload
				}
				switch mix(int64(c), int64(i), act) % 4 {
				case 0: // in-cluster delta chain
					events[c][(i+1)%procsPer].NotifyDelta()
				case 1: // re-arm at a randomized offset
					events[c][i].NotifyAfter(Time(1+mix(act)%7) * period)
				case 2: // cross-cluster handoff (deferred to the merge)
					inboxes[(c+1)%nClusters].NotifyDelta()
				}
				// Keep every cluster firing on the common period so
				// phases stay multi-cluster.
				events[c][i].NotifyAfter(period)
			}
			// Process 0 of each cluster also owns the cluster's inbox.
			sens := []*Event{events[c][i]}
			if i == 0 {
				sens = append(sens, inboxes[c])
			}
			k.MethodNoInit("p", fn, sens...)
			events[c][i].NotifyAfter(period)
		}
	}
	_ = k.Run(200 * Time(period))
	merges := k.ClusterMerges()
	k.Shutdown()
	return traces, merges
}

// TestShardedClusterMatchesSerial is the sharding determinism property:
// for randomized process graphs, the sharded execution produces exactly
// the per-process activation traces of the single-threaded execution,
// and re-running the sharded execution reproduces them bit for bit.
func TestShardedClusterMatchesSerial(t *testing.T) {
	var totalMerges uint64
	for seed := int64(1); seed <= 12; seed++ {
		serial, _ := clusteredTrace(seed, false)
		sharded, merges := clusteredTrace(seed, true)
		again, merges2 := clusteredTrace(seed, true)
		totalMerges += merges
		if len(serial) != len(sharded) {
			t.Fatalf("seed %d: proc counts differ", seed)
		}
		for i := range serial {
			if len(serial[i]) == 0 {
				t.Fatalf("seed %d: proc %d never ran", seed, i)
			}
			if !equalTimes(serial[i], sharded[i]) {
				t.Fatalf("seed %d: proc %d traces diverge:\n serial  %v\n sharded %v",
					seed, i, serial[i], sharded[i])
			}
			if !equalTimes(sharded[i], again[i]) {
				t.Fatalf("seed %d: proc %d sharded rerun diverged", seed, i)
			}
		}
		if merges != merges2 {
			t.Fatalf("seed %d: merge counts diverge across reruns (%d vs %d)", seed, merges, merges2)
		}
	}
	if totalMerges == 0 {
		t.Fatal("no sharded rounds ran across any seed: the property was vacuous")
	}
}

func equalTimes(a, b []Time) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
