package sim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSignalUpdateSemantics(t *testing.T) {
	k := NewKernel("t")
	s := NewSignal[int](k, "s")
	var observedDuringWrite int
	k.Method("writer", func() {
		s.Write(42)
		observedDuringWrite = s.Read() // must still be the old value
	})
	runKernel(t, k, NS)
	if observedDuringWrite != 0 {
		t.Fatalf("read-after-write in same eval = %d, want 0", observedDuringWrite)
	}
	if s.Read() != 42 {
		t.Fatalf("after update, Read = %d, want 42", s.Read())
	}
}

func TestSignalLastWriteWins(t *testing.T) {
	k := NewKernel("t")
	s := NewSignal[int](k, "s")
	k.Method("writer", func() {
		s.Write(1)
		s.Write(2)
		s.Write(3)
	})
	runKernel(t, k, NS)
	if s.Read() != 3 {
		t.Fatalf("Read = %d, want 3", s.Read())
	}
}

func TestSignalChangedEvent(t *testing.T) {
	k := NewKernel("t")
	s := NewSignal[int](k, "s")
	changes := 0
	k.MethodNoInit("watcher", func() { changes++ }, s.Changed())
	k.Method("writer", func() { s.Write(7) })
	e := k.NewEvent("again")
	k.MethodNoInit("rewriter", func() { s.Write(7) }, e) // same value: no change
	e.NotifyAfter(5 * NS)
	runKernel(t, k, 100*NS)
	if changes != 1 {
		t.Fatalf("value_changed fired %d times, want 1", changes)
	}
}

func TestSignalInit(t *testing.T) {
	k := NewKernel("t")
	s := NewSignalInit(k, "s", 99)
	if s.Read() != 99 {
		t.Fatalf("initial value = %d, want 99", s.Read())
	}
}

func TestPortsBindAndTransfer(t *testing.T) {
	k := NewKernel("t")
	s := NewSignal[uint32](k, "wire")
	out := NewOut[uint32]("out")
	in := NewIn[uint32]("in")
	out.Bind(s)
	in.Bind(s)
	if !out.Bound() || !in.Bound() {
		t.Fatal("ports not bound")
	}
	var got uint32
	k.MethodNoInit("rx", func() { got = in.Read() }, in.Changed())
	k.Method("tx", func() { out.Write(0xdeadbeef) })
	runKernel(t, k, NS)
	if got != 0xdeadbeef {
		t.Fatalf("got %#x", got)
	}
}

func TestFifoBlockingRoundTrip(t *testing.T) {
	k := NewKernel("t")
	f := NewFifo[int](k, "f", 2)
	var received []int
	k.Thread("producer", func(c *Ctx) {
		for i := 1; i <= 10; i++ {
			f.Write(c, i)
		}
	})
	k.Thread("consumer", func(c *Ctx) {
		for i := 0; i < 10; i++ {
			c.WaitTime(5 * NS) // slow consumer forces backpressure
			received = append(received, f.Read(c))
		}
	})
	runKernel(t, k, MS)
	if len(received) != 10 {
		t.Fatalf("received %d items", len(received))
	}
	for i, v := range received {
		if v != i+1 {
			t.Fatalf("received = %v (order broken)", received)
		}
	}
	if f.Dropped() != 0 {
		t.Fatalf("blocking writes recorded %d drops", f.Dropped())
	}
}

func TestFifoTryWriteDrops(t *testing.T) {
	k := NewKernel("t")
	f := NewFifo[int](k, "f", 3)
	k.Method("p", func() {
		for i := 0; i < 5; i++ {
			f.TryWrite(i)
		}
	})
	runKernel(t, k, NS)
	if f.Len() != 3 {
		t.Fatalf("len = %d, want 3", f.Len())
	}
	if f.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", f.Dropped())
	}
}

func TestFifoPeek(t *testing.T) {
	k := NewKernel("t")
	f := NewFifo[string](k, "f", 4)
	if _, ok := f.Peek(); ok {
		t.Fatal("Peek on empty fifo succeeded")
	}
	f.TryWrite("x")
	f.TryWrite("y")
	if v, ok := f.Peek(); !ok || v != "x" {
		t.Fatalf("Peek = %q, %v", v, ok)
	}
	if f.Len() != 2 {
		t.Fatal("Peek consumed an item")
	}
	k.Shutdown()
}

func TestFifoConservation(t *testing.T) {
	// Property: writes accepted == reads + still-buffered, drops counted.
	f := func(ops []bool) bool {
		k := NewKernel("q")
		fifo := NewFifo[int](k, "f", 4)
		writes, reads := uint64(0), uint64(0)
		for _, isWrite := range ops {
			if isWrite {
				if fifo.TryWrite(1) {
					writes++
				}
			} else {
				if _, ok := fifo.TryRead(); ok {
					reads++
				}
			}
		}
		return writes == reads+uint64(fifo.Len()) &&
			fifo.TotalWritten() == writes && fifo.TotalRead() == reads
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClockEdges(t *testing.T) {
	k := NewKernel("t")
	clk := NewClock(k, "clk", 10*NS)
	var posTimes, negTimes []Time
	k.MethodNoInit("p", func() { posTimes = append(posTimes, k.Now()) }, clk.Pos())
	k.MethodNoInit("n", func() { negTimes = append(negTimes, k.Now()) }, clk.Neg())
	runKernel(t, k, 51*NS)
	// First posedge at 5ns, then 15, 25, 35, 45.
	if len(posTimes) != 5 {
		t.Fatalf("pos edges = %v", posTimes)
	}
	if posTimes[0] != 5*NS || posTimes[1] != 15*NS {
		t.Fatalf("pos edges = %v", posTimes)
	}
	if len(negTimes) != 5 {
		t.Fatalf("neg edges = %v", negTimes)
	}
	if negTimes[0] != 10*NS {
		t.Fatalf("neg edges = %v", negTimes)
	}
	if clk.Ticks() != 5 {
		t.Fatalf("ticks = %d", clk.Ticks())
	}
}

func TestClockSignalFollowsEdges(t *testing.T) {
	k := NewKernel("t")
	clk := NewClock(k, "clk", 10*NS)
	high, low := 0, 0
	k.MethodNoInit("watch", func() {
		if clk.Signal().Read() {
			high++
		} else {
			low++
		}
	}, clk.Signal().Changed())
	runKernel(t, k, 100*NS)
	if high == 0 || low == 0 {
		t.Fatalf("high=%d low=%d", high, low)
	}
}

func TestMutexExclusion(t *testing.T) {
	k := NewKernel("t")
	m := NewMutex(k, "m")
	var trace []string
	for i, name := range []string{"a", "b"} {
		name := name
		delay := Time(i+1) * NS
		k.Thread(name, func(c *Ctx) {
			c.WaitTime(delay)
			m.Lock(c)
			trace = append(trace, name+"+")
			c.WaitTime(10 * NS)
			trace = append(trace, name+"-")
			m.Unlock(c)
		})
	}
	runKernel(t, k, MS)
	want := "a+ a- b+ b-"
	if got := strings.Join(trace, " "); got != want {
		t.Fatalf("trace = %q, want %q", got, want)
	}
}

func TestMutexTryLockAndPanic(t *testing.T) {
	k := NewKernel("t")
	m := NewMutex(k, "m")
	var tried, locked bool
	k.Thread("a", func(c *Ctx) {
		m.Lock(c)
		c.WaitTime(10 * NS)
		m.Unlock(c)
	})
	k.Thread("b", func(c *Ctx) {
		c.WaitTime(NS)
		tried = true
		locked = m.TryLock(c)
	})
	runKernel(t, k, MS)
	if !tried || locked {
		t.Fatalf("tried=%v locked=%v, want tried and not locked", tried, locked)
	}
}

func TestSemaphore(t *testing.T) {
	k := NewKernel("t")
	s := NewSemaphore(k, "s", 2)
	active, maxActive := 0, 0
	for i := 0; i < 5; i++ {
		k.Thread("w", func(c *Ctx) {
			s.Wait(c)
			active++
			if active > maxActive {
				maxActive = active
			}
			c.WaitTime(10 * NS)
			active--
			s.Post()
		})
	}
	runKernel(t, k, MS)
	if maxActive != 2 {
		t.Fatalf("max concurrent holders = %d, want 2", maxActive)
	}
	if s.Value() != 2 {
		t.Fatalf("final value = %d, want 2", s.Value())
	}
}

func TestTracerVCDOutput(t *testing.T) {
	k := NewKernel("t")
	var buf bytes.Buffer
	tr := NewTracer(k, &buf, "top")
	clk := NewClock(k, "clk", 10*NS)
	cnt := NewSignal[uint32](k, "count")
	TraceBool(tr, clk.Signal())
	TraceUint(tr, cnt, 8)
	v := uint32(0)
	k.MethodNoInit("counter", func() { v++; cnt.Write(v) }, clk.Pos())
	runKernel(t, k, 100*NS)
	out := buf.String()
	for _, want := range []string{
		"$timescale", "$var wire 1 ! clk $end", "$var wire 8 \" count $end",
		"$enddefinitions", "#5000", "b101 \"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD output missing %q\n%s", want, out)
		}
	}
	if tr.Err() != nil {
		t.Fatalf("tracer error: %v", tr.Err())
	}
}

func TestVCDCodesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		c := vcdCode(i)
		if seen[c] {
			t.Fatalf("duplicate code %q at %d", c, i)
		}
		seen[c] = true
		for _, ch := range []byte(c) {
			if ch < 33 || ch > 126 {
				t.Fatalf("non-printable code byte %d", ch)
			}
		}
	}
}

func TestTimedQueueHeapProperty(t *testing.T) {
	// Property: popping the queue yields times in non-decreasing order,
	// with FIFO order among equal times.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		k := NewKernel("t")
		n := 200
		type rec struct {
			tm  Time
			seq int
		}
		var scheduled []rec
		for i := 0; i < n; i++ {
			e := k.NewEvent("e")
			tm := Time(rng.Intn(20)) * NS
			e.due = tm
			e.pending = pendingTimed
			k.timed.push(e)
			scheduled = append(scheduled, rec{tm, i})
		}
		var last Time
		for k.timed.Len() > 0 {
			e := k.timed.pop()
			if e.due < last {
				t.Fatalf("heap order violated: %v after %v", e.due, last)
			}
			last = e.due
		}
		_ = scheduled
	}
}

func TestTimedQueueRemove(t *testing.T) {
	k := NewKernel("t")
	events := make([]*Event, 10)
	for i := range events {
		e := k.NewEvent("e")
		e.due = Time(i) * NS
		e.pending = pendingTimed
		k.timed.push(e)
		events[i] = e
	}
	k.timed.remove(events[3])
	k.timed.remove(events[0])
	k.timed.remove(events[9])
	var got []Time
	for k.timed.Len() > 0 {
		got = append(got, k.timed.pop().due)
	}
	want := []Time{1 * NS, 2 * NS, 4 * NS, 5 * NS, 6 * NS, 7 * NS, 8 * NS}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestIssPortsAndProcess(t *testing.T) {
	k := NewKernel("t")
	in := k.NewIssIn("data_in")
	out := k.NewIssOut("result_out")
	runs := 0
	k.IssProcess("checksum_rx", func() {
		runs++
		out.WriteUint32(in.Uint32() + 1)
	}, in)

	// iss_process must NOT run at initialization (§3.3).
	if err := k.Run(NS); err != nil && err != ErrDeadlock {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Fatalf("iss_process ran %d times before any delivery", runs)
	}

	// Delivering data triggers the process.
	k.AddCycleHook(func(kk *Kernel) {
		if kk.Now() == NS && in.Deliveries() == 0 {
			in.Deliver([]byte{9, 0, 0, 0})
		}
	})
	ev := k.NewEvent("ticker")
	k.MethodNoInit("tick", func() { ev.NotifyAfter(NS) }, ev)
	ev.NotifyAfter(NS)
	if err := k.Run(5 * NS); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if runs != 1 {
		t.Fatalf("iss_process ran %d times, want 1", runs)
	}
	if got := leU32(out.Bytes()); got != 10 {
		t.Fatalf("iss_out = %d, want 10", got)
	}
}

func TestIssPortRegistry(t *testing.T) {
	k := NewKernel("t")
	in := k.NewIssIn("a")
	out := k.NewIssOut("b")
	if p, ok := k.IssInPort("a"); !ok || p != in {
		t.Fatal("IssInPort lookup failed")
	}
	if p, ok := k.IssOutPort("b"); !ok || p != out {
		t.Fatal("IssOutPort lookup failed")
	}
	if _, ok := k.IssInPort("nope"); ok {
		t.Fatal("lookup of unknown port succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate port name did not panic")
		}
	}()
	k.NewIssIn("a")
}

func TestIssOutConsumed(t *testing.T) {
	k := NewKernel("t")
	out := k.NewIssOut("r")
	notified := 0
	k.MethodNoInit("prod", func() { notified++ }, out.ReadEvent())
	k.Method("init", func() { out.WriteUint32(5) })
	k.AddCycleHook(func(kk *Kernel) {
		if out.Writes() == 1 && notified == 0 && kk.Now() > 0 {
			out.Consumed()
		}
	})
	ev := k.NewEvent("tick")
	k.MethodNoInit("t", func() {}, ev)
	ev.NotifyAfter(NS)
	runKernel(t, k, 2*NS)
	if notified != 1 {
		t.Fatalf("ReadEvent notified %d times, want 1", notified)
	}
}

func TestLeU32(t *testing.T) {
	if got := leU32([]byte{0x78, 0x56, 0x34, 0x12}); got != 0x12345678 {
		t.Fatalf("leU32 = %#x", got)
	}
	if got := leU32([]byte{0xff}); got != 0xff {
		t.Fatalf("leU32 short = %#x", got)
	}
	if got := leU32(nil); got != 0 {
		t.Fatalf("leU32 nil = %#x", got)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > 64 {
		return 0, errWriterBroke
	}
	return len(p), nil
}

var errWriterBroke = &writerError{}

type writerError struct{}

func (*writerError) Error() string { return "writer broke" }

func TestTracerReportsWriteErrors(t *testing.T) {
	k := NewKernel("t")
	tr := NewTracer(k, &failWriter{}, "top")
	clk := NewClock(k, "clk", 10*NS)
	TraceBool(tr, clk.Signal())
	runKernel(t, k, 200*NS)
	if tr.Err() == nil {
		t.Fatal("tracer swallowed the write error")
	}
}

func TestTracerLateAddPanics(t *testing.T) {
	k := NewKernel("t")
	tr := NewTracer(k, &failWriter{}, "top")
	clk := NewClock(k, "clk", 10*NS)
	TraceBool(tr, clk.Signal())
	_ = k.Run(50 * NS)
	defer func() {
		k.Shutdown()
		if recover() == nil {
			t.Fatal("adding a signal after start did not panic")
		}
	}()
	s := NewSignal[bool](k, "late")
	TraceBool(tr, s)
}
