// Package asm implements a two-pass assembler for the FV32 instruction
// set. Besides machine code it produces a symbol table and a
// source-line table mapping addresses to file:line — the information the
// GDB-Kernel co-simulation scheme needs to set breakpoints "on the line
// containing the variable" exactly as described in §3.2 of the paper.
package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// exprParser evaluates integer expressions over symbols. Grammar:
//
//	expr   := or
//	or     := xor ('|' xor)*
//	xor    := and ('^' and)*
//	and    := shift ('&' shift)*
//	shift  := add (('<<'|'>>') add)*
//	add    := mul (('+'|'-') mul)*
//	mul    := unary (('*'|'/'|'%') unary)*
//	unary  := ('-'|'~')? primary
//	primary:= number | symbol | '(' expr ')' | %hi(expr) | %lo(expr) | '.'
type exprParser struct {
	s      string
	pos    int
	lookup func(string) (int64, bool)
	here   int64 // value of '.'
}

func evalExpr(s string, here int64, lookup func(string) (int64, bool)) (int64, error) {
	p := &exprParser{s: s, lookup: lookup, here: here}
	v, err := p.parseOr()
	if err != nil {
		return 0, err
	}
	p.skipSpace()
	if p.pos != len(p.s) {
		return 0, fmt.Errorf("trailing junk %q in expression", p.s[p.pos:])
	}
	return v, nil
}

func (p *exprParser) skipSpace() {
	for p.pos < len(p.s) && (p.s[p.pos] == ' ' || p.s[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) peek() byte {
	if p.pos < len(p.s) {
		return p.s[p.pos]
	}
	return 0
}

func (p *exprParser) parseOr() (int64, error) {
	v, err := p.parseXor()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.peek() == '|' {
			p.pos++
			r, err := p.parseXor()
			if err != nil {
				return 0, err
			}
			v |= r
		} else {
			return v, nil
		}
	}
}

func (p *exprParser) parseXor() (int64, error) {
	v, err := p.parseAnd()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.peek() == '^' {
			p.pos++
			r, err := p.parseAnd()
			if err != nil {
				return 0, err
			}
			v ^= r
		} else {
			return v, nil
		}
	}
}

func (p *exprParser) parseAnd() (int64, error) {
	v, err := p.parseShift()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if p.peek() == '&' {
			p.pos++
			r, err := p.parseShift()
			if err != nil {
				return 0, err
			}
			v &= r
		} else {
			return v, nil
		}
	}
}

func (p *exprParser) parseShift() (int64, error) {
	v, err := p.parseAdd()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		if strings.HasPrefix(p.s[p.pos:], "<<") {
			p.pos += 2
			r, err := p.parseAdd()
			if err != nil {
				return 0, err
			}
			v <<= uint(r & 63)
		} else if strings.HasPrefix(p.s[p.pos:], ">>") {
			p.pos += 2
			r, err := p.parseAdd()
			if err != nil {
				return 0, err
			}
			v >>= uint(r & 63)
		} else {
			return v, nil
		}
	}
}

func (p *exprParser) parseAdd() (int64, error) {
	v, err := p.parseMul()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch p.peek() {
		case '+':
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			v += r
		case '-':
			p.pos++
			r, err := p.parseMul()
			if err != nil {
				return 0, err
			}
			v -= r
		default:
			return v, nil
		}
	}
}

func (p *exprParser) parseMul() (int64, error) {
	v, err := p.parseUnary()
	if err != nil {
		return 0, err
	}
	for {
		p.skipSpace()
		switch {
		case p.peek() == '*':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			v *= r
		case p.peek() == '/':
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("division by zero in expression")
			}
			v /= r
		case p.peek() == '%' && !p.atPercentFunc():
			p.pos++
			r, err := p.parseUnary()
			if err != nil {
				return 0, err
			}
			if r == 0 {
				return 0, fmt.Errorf("modulo by zero in expression")
			}
			v %= r
		default:
			return v, nil
		}
	}
}

// atPercentFunc reports whether the cursor is at %hi( or %lo(.
func (p *exprParser) atPercentFunc() bool {
	rest := p.s[p.pos:]
	return strings.HasPrefix(rest, "%hi(") || strings.HasPrefix(rest, "%lo(")
}

func (p *exprParser) parseUnary() (int64, error) {
	p.skipSpace()
	switch p.peek() {
	case '-':
		p.pos++
		v, err := p.parseUnary()
		return -v, err
	case '~':
		p.pos++
		v, err := p.parseUnary()
		return ^v, err
	}
	return p.parsePrimary()
}

func (p *exprParser) parsePrimary() (int64, error) {
	p.skipSpace()
	if p.pos >= len(p.s) {
		return 0, fmt.Errorf("unexpected end of expression")
	}
	c := p.s[p.pos]
	switch {
	case c == '(':
		p.pos++
		v, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing ')' in expression")
		}
		p.pos++
		return v, nil

	case c == '%':
		rest := p.s[p.pos:]
		var hi bool
		switch {
		case strings.HasPrefix(rest, "%hi("):
			hi = true
		case strings.HasPrefix(rest, "%lo("):
		default:
			return 0, fmt.Errorf("unknown %% function")
		}
		p.pos += 4
		v, err := p.parseOr()
		if err != nil {
			return 0, err
		}
		p.skipSpace()
		if p.peek() != ')' {
			return 0, fmt.Errorf("missing ')' after %%hi/%%lo")
		}
		p.pos++
		if hi {
			return (v >> 16) & 0xffff, nil
		}
		return v & 0xffff, nil

	case c == '\'':
		// Character literal, with the usual escapes.
		end := p.pos + 1
		var val int64
		if end < len(p.s) && p.s[end] == '\\' {
			if end+1 >= len(p.s) {
				return 0, fmt.Errorf("bad character literal")
			}
			switch p.s[end+1] {
			case 'n':
				val = '\n'
			case 't':
				val = '\t'
			case 'r':
				val = '\r'
			case '0':
				val = 0
			case '\\':
				val = '\\'
			case '\'':
				val = '\''
			default:
				return 0, fmt.Errorf("bad escape '\\%c'", p.s[end+1])
			}
			end += 2
		} else if end < len(p.s) {
			val = int64(p.s[end])
			end++
		}
		if end >= len(p.s) || p.s[end] != '\'' {
			return 0, fmt.Errorf("unterminated character literal")
		}
		p.pos = end + 1
		return val, nil

	case c == '.' && (p.pos+1 == len(p.s) || !isIdentChar(p.s[p.pos+1])):
		p.pos++
		return p.here, nil

	case c >= '0' && c <= '9':
		start := p.pos
		for p.pos < len(p.s) && (isIdentChar(p.s[p.pos])) {
			p.pos++
		}
		tok := p.s[start:p.pos]
		v, err := strconv.ParseInt(tok, 0, 64)
		if err != nil {
			u, uerr := strconv.ParseUint(tok, 0, 64)
			if uerr != nil {
				return 0, fmt.Errorf("bad number %q", tok)
			}
			v = int64(u)
		}
		return v, nil

	case isIdentStart(c):
		start := p.pos
		for p.pos < len(p.s) && isIdentChar(p.s[p.pos]) {
			p.pos++
		}
		name := p.s[start:p.pos]
		v, ok := p.lookup(name)
		if !ok {
			return 0, &undefSymbolError{name}
		}
		return v, nil
	}
	return 0, fmt.Errorf("unexpected character %q in expression", string(c))
}

type undefSymbolError struct{ name string }

func (e *undefSymbolError) Error() string { return "undefined symbol " + e.name }

func isIdentStart(c byte) bool {
	return c == '_' || c == '.' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9' || c == 'x' || c == 'X'
}
