package asm

import (
	"strconv"
	"strings"
)

// Macro support: GNU-as-style text macros.
//
//	.macro push reg
//	    addi sp, sp, -4
//	    sw   \reg, 0(sp)
//	.endm
//
//	    push a0
//
// Parameters are referenced as \name inside the body; \@ expands to a
// counter unique per expansion, for macro-local labels. Macros are
// scoped to the source file that defines them. Expanded lines keep the
// invocation's line number, so breakpoints-by-line land on the call
// site.
type macroDef struct {
	name   string
	params []string
	body   []string
	line   int
}

// expLine is one post-expansion source line with its original line
// number (for the line table and error messages).
type expLine struct {
	text string
	line int
}

const maxMacroDepth = 16

// expandMacros processes .macro/.endm definitions and expands
// invocations, returning the flattened line stream.
func expandMacros(src Source) ([]expLine, error) {
	macros := make(map[string]*macroDef)
	var out []expLine
	var expCount int

	lines := strings.Split(src.Text, "\n")
	for i := 0; i < len(lines); i++ {
		lineNo := i + 1
		text := strings.TrimSpace(stripComment(lines[i]))

		if strings.HasPrefix(text, ".macro") {
			fields := strings.Fields(text)
			if len(fields) < 2 {
				return nil, errf(src.Name, lineNo, ".macro needs a name")
			}
			def := &macroDef{name: strings.ToLower(fields[1]), line: lineNo}
			// Parameters may be separated by spaces and/or commas.
			for _, p := range fields[2:] {
				p = strings.Trim(p, ",")
				if p == "" {
					continue
				}
				if !isLabelName(p) {
					return nil, errf(src.Name, lineNo, "bad macro parameter %q", p)
				}
				def.params = append(def.params, p)
			}
			if !isLabelName(def.name) {
				return nil, errf(src.Name, lineNo, "bad macro name %q", def.name)
			}
			if _, dup := macros[def.name]; dup {
				return nil, errf(src.Name, lineNo, "duplicate macro %q", def.name)
			}
			closed := false
			for i++; i < len(lines); i++ {
				body := strings.TrimSpace(stripComment(lines[i]))
				if body == ".endm" {
					closed = true
					break
				}
				if strings.HasPrefix(body, ".macro") {
					return nil, errf(src.Name, i+1, "nested .macro definitions are not supported")
				}
				def.body = append(def.body, body)
			}
			if !closed {
				return nil, errf(src.Name, def.line, "unterminated .macro %q", def.name)
			}
			macros[def.name] = def
			continue
		}
		if text == ".endm" {
			return nil, errf(src.Name, lineNo, ".endm without .macro")
		}

		expanded, err := expandLine(src.Name, lineNo, text, macros, &expCount, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, expanded...)
	}
	return out, nil
}

// expandLine expands a single line, recursing when the expansion itself
// invokes macros.
func expandLine(file string, lineNo int, text string, macros map[string]*macroDef, expCount *int, depth int) ([]expLine, error) {
	if depth > maxMacroDepth {
		return nil, errf(file, lineNo, "macro expansion too deep (recursion?)")
	}
	// Peel leading labels so `lbl: push a0` works.
	prefix := ""
	rest := text
	for {
		idx := strings.IndexByte(rest, ':')
		if idx < 0 {
			break
		}
		cand := strings.TrimSpace(rest[:idx])
		if cand == "" || !isLabelName(cand) {
			break
		}
		prefix += cand + ":"
		rest = strings.TrimSpace(rest[idx+1:])
	}

	mnemonic, operands := splitMnemonic(rest)
	def, isMacro := macros[mnemonic]
	if !isMacro {
		return []expLine{{text: text, line: lineNo}}, nil
	}

	args := splitOperands(operands)
	if len(args) == 1 && args[0] == "" {
		args = nil
	}
	if len(args) != len(def.params) {
		return nil, errf(file, lineNo, "macro %q expects %d arguments, got %d",
			def.name, len(def.params), len(args))
	}
	*expCount++
	unique := strconv.Itoa(*expCount)

	var out []expLine
	if prefix != "" {
		out = append(out, expLine{text: prefix, line: lineNo})
	}
	for _, bodyLine := range def.body {
		sub := bodyLine
		for pi, pname := range def.params {
			sub = strings.ReplaceAll(sub, `\`+pname, strings.TrimSpace(args[pi]))
		}
		sub = strings.ReplaceAll(sub, `\@`, unique)
		if strings.Contains(sub, `\`) {
			return nil, errf(file, lineNo, "macro %q: unresolved parameter in %q", def.name, sub)
		}
		inner, err := expandLine(file, lineNo, sub, macros, expCount, depth+1)
		if err != nil {
			return nil, err
		}
		out = append(out, inner...)
	}
	return out, nil
}
