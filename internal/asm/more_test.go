package asm

import (
	"strings"
	"testing"

	"cosim/internal/isa"
)

func TestBranchRangeLimits(t *testing.T) {
	// A branch spanning more than 2^15 words must be rejected.
	var sb strings.Builder
	sb.WriteString("_start:\n    beq a0, a1, far\n")
	for i := 0; i < 40000; i++ {
		sb.WriteString("    nop\n")
	}
	sb.WriteString("far:\n    halt\n")
	if _, err := Assemble(Options{}, Source{Name: "far.s", Text: sb.String()}); err == nil {
		t.Fatal("out-of-range branch accepted")
	}
	// JAL reaches much further (21-bit word offset).
	sb.Reset()
	sb.WriteString("_start:\n    j far\n")
	for i := 0; i < 40000; i++ {
		sb.WriteString("    nop\n")
	}
	sb.WriteString("far:\n    halt\n")
	if _, err := Assemble(Options{}, Source{Name: "far.s", Text: sb.String()}); err != nil {
		t.Fatalf("jal within range rejected: %v", err)
	}
}

func TestNegativeLi(t *testing.T) {
	im := assemble(t, "_start:\n    li a0, -1\n    li a1, -559038737\n    halt\n")
	hi, _ := isa.Decode(word(t, im, 0))
	lo, _ := isa.Decode(word(t, im, 1))
	if uint32(hi.Imm) != 0xffff || uint32(lo.Imm) != 0xffff {
		t.Fatalf("li -1 = lui %#x / ori %#x", hi.Imm, lo.Imm)
	}
	// -559038737 = 0xDEADBEEF
	hi2, _ := isa.Decode(word(t, im, 2))
	lo2, _ := isa.Decode(word(t, im, 3))
	if uint32(hi2.Imm) != 0xdead || uint32(lo2.Imm) != 0xbeef {
		t.Fatalf("li 0xdeadbeef = lui %#x / ori %#x", hi2.Imm, lo2.Imm)
	}
}

func TestOverlappingOrgRejected(t *testing.T) {
	src := `
_start:
    nop
    nop
.org 0x4
    halt
`
	if _, err := Assemble(Options{}, Source{Name: "ovl.s", Text: src}); err == nil {
		t.Fatal("overlapping .org output accepted")
	}
}

func TestHiLoComposition(t *testing.T) {
	im := assemble(t, `
.equ ADDR, 0xCAFE8000
_start:
    lui  a0, %hi(ADDR)
    ori  a0, a0, %lo(ADDR)
    halt
`)
	hi, _ := isa.Decode(word(t, im, 0))
	lo, _ := isa.Decode(word(t, im, 1))
	if uint32(hi.Imm) != 0xcafe || uint32(lo.Imm) != 0x8000 {
		t.Fatalf("hi/lo = %#x/%#x", hi.Imm, lo.Imm)
	}
}

func TestLabelOnSameLineAsInstruction(t *testing.T) {
	im := assemble(t, `
_start: addi a0, zero, 1
loop:   addi a0, a0, 1
        bnez a0, loop
`)
	if im.MustSymbol("loop") != 4 {
		t.Fatalf("loop = %d", im.MustSymbol("loop"))
	}
}

func TestMultipleLabelsSameAddress(t *testing.T) {
	im := assemble(t, `
_start:
alias1:
alias2:
    nop
`)
	if im.MustSymbol("alias1") != 0 || im.MustSymbol("alias2") != 0 {
		t.Fatal("aliased labels broken")
	}
}

func TestSectionSwitchBackAndForth(t *testing.T) {
	im, err := Assemble(Options{TextBase: 0, DataBase: 0x1000}, Source{Name: "s.s", Text: `
.text
_start:
    nop
.data
d1: .word 1
.text
    halt
.data
d2: .word 2
`})
	if err != nil {
		t.Fatal(err)
	}
	if im.MustSymbol("d1") != 0x1000 || im.MustSymbol("d2") != 0x1004 {
		t.Fatalf("d1=%#x d2=%#x", im.MustSymbol("d1"), im.MustSymbol("d2"))
	}
	// The halt continues the text section at address 4.
	i, _ := isa.Decode(word(t, im, 1))
	if i.Op != isa.HALT {
		t.Fatalf("second text word = %v", i)
	}
}

func TestExprPrecedenceMatchesGo(t *testing.T) {
	cases := []struct {
		expr string
		want int64
	}{
		{"2+3*4-1", 2 + 3*4 - 1},
		{"1<<4|1<<2", 1<<4 | 1<<2},
		{"0xFF&0x0F|0xF0", 0xff&0x0f | 0xf0},
		{"100/10/2", 100 / 10 / 2},
		{"7-2-1", 7 - 2 - 1},
		{"-3*-4", -3 * -4},
		{"(1|2)&3", (1 | 2) & 3},
		{"1<<2<<3", 1 << 2 << 3},
	}
	lookup := func(string) (int64, bool) { return 0, false }
	for _, c := range cases {
		got, err := evalExpr(c.expr, 0, lookup)
		if err != nil {
			t.Errorf("%q: %v", c.expr, err)
			continue
		}
		if got != c.want {
			t.Errorf("%q = %d, want %d", c.expr, got, c.want)
		}
	}
}

func TestEquForwardToLabel(t *testing.T) {
	// .equ referencing a label defined earlier in the file works; a
	// forward reference in .equ must be rejected (single-pass equ).
	im := assemble(t, `
_start:
    nop
here:
.equ HERE_ALIAS, here
    halt
`)
	if im.MustSymbol("HERE_ALIAS") != 4 {
		t.Fatalf("alias = %d", im.MustSymbol("HERE_ALIAS"))
	}
	if _, err := Assemble(Options{}, Source{Name: "f.s", Text: ".equ X, later\n_start:\nlater:\n    nop\n"}); err == nil {
		t.Fatal("forward reference in .equ accepted")
	}
}

func TestStoreOperandUsesSourceRegister(t *testing.T) {
	im := assemble(t, "_start:\n    sw a5, -4(sp)\n")
	i, _ := isa.Decode(word(t, im, 0))
	if i.Op != isa.SW || isa.RegName(i.Rd) != "a5" || isa.RegName(i.Rs1) != "sp" || i.Imm != -4 {
		t.Fatalf("sw = %+v", i)
	}
}

func TestEmptyAndCommentOnlySource(t *testing.T) {
	im, err := Assemble(Options{}, Source{Name: "e.s", Text: "; nothing here\n\n# more nothing\n"})
	if err != nil {
		t.Fatal(err)
	}
	if im.TotalBytes() != 0 {
		t.Fatalf("bytes = %d", im.TotalBytes())
	}
}

func TestEntryFallsBackToTextBase(t *testing.T) {
	im, err := Assemble(Options{TextBase: 0x400}, Source{Name: "n.s", Text: "begin:\n    nop\n"})
	if err != nil {
		t.Fatal(err)
	}
	if im.Entry != 0x400 {
		t.Fatalf("entry = %#x", im.Entry)
	}
	im2, err := Assemble(Options{EntrySymbol: "begin"}, Source{Name: "n.s", Text: "begin:\n    nop\n"})
	if err != nil {
		t.Fatal(err)
	}
	if im2.Entry != 0 {
		t.Fatalf("entry = %#x", im2.Entry)
	}
}

func TestMacroExpansion(t *testing.T) {
	im := assemble(t, `
.macro push reg
    addi sp, sp, -4
    sw   \reg, 0(sp)
.endm
.macro pop reg
    lw   \reg, 0(sp)
    addi sp, sp, 4
.endm
_start:
    li   sp, 0x1000
    push a0
    push a1
    pop  a1
    pop  a0
    halt
`)
	// li = 2 words, then 4 macro invocations x 2 words, then halt.
	if got := im.TotalBytes(); got != 4*(2+8+1) {
		t.Fatalf("bytes = %d", got)
	}
	// The first push expands to addi sp,sp,-4 / sw a0, 0(sp).
	if got := isa.Disassemble(word(t, im, 2)); got != "addi sp, sp, -4" {
		t.Fatalf("push[0] = %q", got)
	}
	if got := isa.Disassemble(word(t, im, 3)); got != "sw a0, 0(sp)" {
		t.Fatalf("push[1] = %q", got)
	}
}

func TestMacroUniqueLabels(t *testing.T) {
	im := assemble(t, `
.macro clamp reg, max
    addi at, zero, \max
    blt  \reg, at, skip\@
    mv   \reg, at
skip\@:
.endm
_start:
    clamp a0, 10
    clamp a1, 20
    halt
`)
	if _, ok := im.Symbol("skip1"); !ok {
		t.Fatal("skip1 missing")
	}
	if _, ok := im.Symbol("skip2"); !ok {
		t.Fatal("skip2 missing")
	}
}

func TestMacroNestedInvocation(t *testing.T) {
	im := assemble(t, `
.macro double reg
    add \reg, \reg, \reg
.endm
.macro quad reg
    double \reg
    double \reg
.endm
_start:
    quad a0
    halt
`)
	if got := isa.Disassemble(word(t, im, 0)); got != "add a0, a0, a0" {
		t.Fatalf("quad[0] = %q", got)
	}
	if got := isa.Disassemble(word(t, im, 1)); got != "add a0, a0, a0" {
		t.Fatalf("quad[1] = %q", got)
	}
}

func TestMacroLineAttribution(t *testing.T) {
	src := `.macro bump
    addi s0, s0, 1
.endm
_start:
    nop
    bump
    halt
`
	im, err := Assemble(Options{}, Source{Name: "m.s", Text: src})
	if err != nil {
		t.Fatal(err)
	}
	// The bump invocation is on line 6; its expansion must map there.
	if a, ok := im.AddrOfLine("m.s", 6); !ok || a != 4 {
		t.Fatalf("AddrOfLine(6) = %#x, %v", a, ok)
	}
}

func TestMacroWithLabelPrefix(t *testing.T) {
	im := assemble(t, `
.macro inc reg
    addi \reg, \reg, 1
.endm
_start:
here: inc a0
    halt
`)
	if im.MustSymbol("here") != 0 {
		t.Fatalf("here = %d", im.MustSymbol("here"))
	}
}

func TestMacroErrors(t *testing.T) {
	bad := []string{
		".macro\n.endm\n",
		".macro m\n    nop\n", // unterminated
		".endm\n",             // stray endm
		".macro m a\n    addi \\a, \\a, 1\n.endm\n_start:\n    m\n", // arg count
		".macro m\n    addi \\bogus, zero, 1\n.endm\n_start:\n    m\n",
		".macro m\n.endm\n.macro m\n.endm\n",       // duplicate
		".macro r\n    r\n.endm\n_start:\n    r\n", // infinite recursion
	}
	for _, src := range bad {
		if _, err := Assemble(Options{}, Source{Name: "bad.s", Text: src}); err == nil {
			t.Errorf("macro source %q accepted", src)
		}
	}
}
