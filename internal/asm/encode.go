package asm

import (
	"strings"

	"cosim/internal/isa"
)

// srNames maps symbolic special-register names for mfsr/mtsr.
var srNames = map[string]int32{
	"status": isa.SRStatus, "epc": isa.SREPC, "cause": isa.SRCause,
	"ivec": isa.SRIVec, "scratch": isa.SRScratch,
	"cycle": isa.SRCycle, "cycleh": isa.SRCycleH,
}

// reg parses a register operand.
func (a *assembler) reg(s *stmt, op string) (uint8, error) {
	r, ok := isa.RegByName(strings.TrimSpace(op))
	if !ok {
		return 0, errf(s.file, s.line, "bad register %q", op)
	}
	return r, nil
}

// imm evaluates an immediate operand.
func (a *assembler) imm(s *stmt, op string) (int32, error) {
	// Allow symbolic special register names where an immediate is expected.
	if v, ok := srNames[strings.ToLower(strings.TrimSpace(op))]; ok {
		return v, nil
	}
	v, err := evalExpr(strings.TrimSpace(op), int64(s.addr), a.lookup)
	if err != nil {
		return 0, errf(s.file, s.line, "%v", err)
	}
	return int32(v), nil
}

// mem parses an "offset(base)" memory operand.
func (a *assembler) mem(s *stmt, op string) (int32, uint8, error) {
	op = strings.TrimSpace(op)
	open := strings.LastIndexByte(op, '(')
	if open < 0 || !strings.HasSuffix(op, ")") {
		return 0, 0, errf(s.file, s.line, "bad memory operand %q (want offset(reg))", op)
	}
	offStr := strings.TrimSpace(op[:open])
	if offStr == "" {
		offStr = "0"
	}
	off, err := a.imm(s, offStr)
	if err != nil {
		return 0, 0, err
	}
	base, err := a.reg(s, op[open+1:len(op)-1])
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}

// branchOff computes a branch/jump word offset from an absolute target.
func (a *assembler) branchOff(s *stmt, op string) (int32, error) {
	target, err := a.imm(s, op)
	if err != nil {
		return 0, err
	}
	diff := int64(target) - int64(s.addr)
	if diff%isa.Word != 0 {
		return 0, errf(s.file, s.line, "branch target %#x not word-aligned", target)
	}
	return int32(diff / isa.Word), nil
}

// want checks the operand count.
func want(s *stmt, n int) error {
	if len(s.operands) != n {
		return errf(s.file, s.line, "%s expects %d operands, got %d", s.mnemonic, n, len(s.operands))
	}
	return nil
}

// enc encodes one machine instruction, decorating errors with position.
func (a *assembler) enc(s *stmt, i isa.Inst) (uint32, error) {
	w, err := isa.Encode(i)
	if err != nil {
		return 0, errf(s.file, s.line, "%v", err)
	}
	return w, nil
}

// encodeInstr expands and encodes one statement into machine words.
func (a *assembler) encodeInstr(s *stmt) ([]uint32, error) {
	m := s.mnemonic

	// Pseudo-instructions first.
	switch m {
	case "nop":
		return []uint32{isa.NopWord}, nil

	case "mv":
		if err := want(s, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.operands[1])
		if err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs})
		return []uint32{w}, err

	case "not":
		if err := want(s, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.operands[1])
		if err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: isa.NOR, Rd: rd, Rs1: rs, Rs2: isa.RegZero})
		return []uint32{w}, err

	case "neg":
		if err := want(s, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.operands[1])
		if err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: isa.SUB, Rd: rd, Rs1: isa.RegZero, Rs2: rs})
		return []uint32{w}, err

	case "li", "la":
		if err := want(s, 2); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		v, err := a.imm(s, s.operands[1])
		if err != nil {
			return nil, err
		}
		u := uint32(v)
		hi, err := a.enc(s, isa.Inst{Op: isa.LUI, Rd: rd, Imm: int32(u >> 16)})
		if err != nil {
			return nil, err
		}
		lo, err := a.enc(s, isa.Inst{Op: isa.ORI, Rd: rd, Rs1: rd, Imm: int32(u & 0xffff)})
		if err != nil {
			return nil, err
		}
		return []uint32{hi, lo}, nil

	case "j":
		if err := want(s, 1); err != nil {
			return nil, err
		}
		off, err := a.branchOff(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: isa.JAL, Rd: isa.RegZero, Imm: off})
		return []uint32{w}, err

	case "call":
		if err := want(s, 1); err != nil {
			return nil, err
		}
		off, err := a.branchOff(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: isa.JAL, Rd: isa.RegRA, Imm: off})
		return []uint32{w}, err

	case "jr":
		if err := want(s, 1); err != nil {
			return nil, err
		}
		rs, err := a.reg(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: isa.JALR, Rd: isa.RegZero, Rs1: rs})
		return []uint32{w}, err

	case "ret":
		if err := want(s, 0); err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: isa.JALR, Rd: isa.RegZero, Rs1: isa.RegRA})
		return []uint32{w}, err

	case "beqz", "bnez":
		if err := want(s, 2); err != nil {
			return nil, err
		}
		ra, err := a.reg(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOff(s, s.operands[1])
		if err != nil {
			return nil, err
		}
		op := isa.BEQ
		if m == "bnez" {
			op = isa.BNE
		}
		w, err := a.enc(s, isa.Inst{Op: op, Rd: ra, Rs1: isa.RegZero, Imm: off})
		return []uint32{w}, err

	case "bgt", "ble":
		// bgt a,b,t == blt b,a,t ; ble a,b,t == bge b,a,t
		if err := want(s, 3); err != nil {
			return nil, err
		}
		ra, err := a.reg(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		rb, err := a.reg(s, s.operands[1])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOff(s, s.operands[2])
		if err != nil {
			return nil, err
		}
		op := isa.BLT
		if m == "ble" {
			op = isa.BGE
		}
		w, err := a.enc(s, isa.Inst{Op: op, Rd: rb, Rs1: ra, Imm: off})
		return []uint32{w}, err

	case "ei", "di":
		// Read-modify-write of STATUS.IE through the assembler temporary.
		mf, err := a.enc(s, isa.Inst{Op: isa.MFSR, Rd: isa.RegAT, Imm: isa.SRStatus})
		if err != nil {
			return nil, err
		}
		var alu uint32
		if m == "ei" {
			alu, err = a.enc(s, isa.Inst{Op: isa.ORI, Rd: isa.RegAT, Rs1: isa.RegAT, Imm: isa.StatusIE})
		} else {
			alu, err = a.enc(s, isa.Inst{Op: isa.ANDI, Rd: isa.RegAT, Rs1: isa.RegAT, Imm: 0xffff &^ isa.StatusIE})
		}
		if err != nil {
			return nil, err
		}
		mt, err := a.enc(s, isa.Inst{Op: isa.MTSR, Rs1: isa.RegAT, Imm: isa.SRStatus})
		if err != nil {
			return nil, err
		}
		return []uint32{mf, alu, mt}, nil
	}

	// Native instructions.
	op := isa.OpcodeByName(m)
	if op == isa.BAD {
		return nil, errf(s.file, s.line, "unknown instruction %q", m)
	}
	switch op.Format() {
	case isa.FmtR:
		if err := want(s, 3); err != nil {
			return nil, err
		}
		rd, err := a.reg(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		rs1, err := a.reg(s, s.operands[1])
		if err != nil {
			return nil, err
		}
		rs2, err := a.reg(s, s.operands[2])
		if err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
		return []uint32{w}, err

	case isa.FmtI:
		switch op {
		case isa.LW, isa.LH, isa.LHU, isa.LB, isa.LBU, isa.SW, isa.SH, isa.SB:
			if err := want(s, 2); err != nil {
				return nil, err
			}
			rd, err := a.reg(s, s.operands[0])
			if err != nil {
				return nil, err
			}
			off, base, err := a.mem(s, s.operands[1])
			if err != nil {
				return nil, err
			}
			w, err := a.enc(s, isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
			return []uint32{w}, err

		case isa.LUI:
			if err := want(s, 2); err != nil {
				return nil, err
			}
			rd, err := a.reg(s, s.operands[0])
			if err != nil {
				return nil, err
			}
			v, err := a.imm(s, s.operands[1])
			if err != nil {
				return nil, err
			}
			w, err := a.enc(s, isa.Inst{Op: op, Rd: rd, Imm: v})
			return []uint32{w}, err

		case isa.JALR:
			switch len(s.operands) {
			case 1:
				rs, err := a.reg(s, s.operands[0])
				if err != nil {
					return nil, err
				}
				w, err := a.enc(s, isa.Inst{Op: op, Rd: isa.RegRA, Rs1: rs})
				return []uint32{w}, err
			case 3:
				rd, err := a.reg(s, s.operands[0])
				if err != nil {
					return nil, err
				}
				rs, err := a.reg(s, s.operands[1])
				if err != nil {
					return nil, err
				}
				v, err := a.imm(s, s.operands[2])
				if err != nil {
					return nil, err
				}
				w, err := a.enc(s, isa.Inst{Op: op, Rd: rd, Rs1: rs, Imm: v})
				return []uint32{w}, err
			default:
				return nil, errf(s.file, s.line, "jalr expects 1 or 3 operands")
			}

		case isa.MFSR:
			if err := want(s, 2); err != nil {
				return nil, err
			}
			rd, err := a.reg(s, s.operands[0])
			if err != nil {
				return nil, err
			}
			sr, err := a.imm(s, s.operands[1])
			if err != nil {
				return nil, err
			}
			w, err := a.enc(s, isa.Inst{Op: op, Rd: rd, Imm: sr})
			return []uint32{w}, err

		case isa.MTSR:
			if err := want(s, 2); err != nil {
				return nil, err
			}
			sr, err := a.imm(s, s.operands[0])
			if err != nil {
				return nil, err
			}
			rs, err := a.reg(s, s.operands[1])
			if err != nil {
				return nil, err
			}
			w, err := a.enc(s, isa.Inst{Op: op, Rs1: rs, Imm: sr})
			return []uint32{w}, err

		default: // I-type ALU
			if err := want(s, 3); err != nil {
				return nil, err
			}
			rd, err := a.reg(s, s.operands[0])
			if err != nil {
				return nil, err
			}
			rs1, err := a.reg(s, s.operands[1])
			if err != nil {
				return nil, err
			}
			v, err := a.imm(s, s.operands[2])
			if err != nil {
				return nil, err
			}
			w, err := a.enc(s, isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: v})
			return []uint32{w}, err
		}

	case isa.FmtB:
		if err := want(s, 3); err != nil {
			return nil, err
		}
		ra, err := a.reg(s, s.operands[0])
		if err != nil {
			return nil, err
		}
		rb, err := a.reg(s, s.operands[1])
		if err != nil {
			return nil, err
		}
		off, err := a.branchOff(s, s.operands[2])
		if err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: op, Rd: ra, Rs1: rb, Imm: off})
		return []uint32{w}, err

	case isa.FmtJ:
		var rd uint8 = isa.RegRA
		var target string
		switch len(s.operands) {
		case 1:
			target = s.operands[0]
		case 2:
			r, err := a.reg(s, s.operands[0])
			if err != nil {
				return nil, err
			}
			rd, target = r, s.operands[1]
		default:
			return nil, errf(s.file, s.line, "jal expects 1 or 2 operands")
		}
		off, err := a.branchOff(s, target)
		if err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: op, Rd: rd, Imm: off})
		return []uint32{w}, err

	case isa.FmtS:
		if err := want(s, 0); err != nil {
			return nil, err
		}
		w, err := a.enc(s, isa.Inst{Op: op})
		return []uint32{w}, err
	}
	return nil, errf(s.file, s.line, "unhandled instruction %q", m)
}
