package asm

import (
	"fmt"
	"sort"
	"strings"

	"cosim/internal/isa"
)

// Source is one assembly input file.
type Source struct {
	Name string
	Text string
}

// Options controls assembly.
type Options struct {
	TextBase    uint32 // default 0x0
	DataBase    uint32 // default 0x00100000
	EntrySymbol string // default "_start", falling back to TextBase
}

const (
	secText = iota
	secData
	numSections
)

// stmtKind classifies a parsed statement.
type stmtKind uint8

const (
	kInstr stmtKind = iota
	kData           // .word/.half/.byte
	kAsciz
	kSpace
)

type stmt struct {
	file     string
	line     int
	kind     stmtKind
	mnemonic string
	operands []string
	exprs    []string // data directive element expressions
	str      string   // .asciz payload
	elem     int      // data element size
	addr     uint32
	size     uint32
}

// asmError decorates an error with its source position.
type asmError struct {
	file string
	line int
	err  error
}

func (e *asmError) Error() string { return fmt.Sprintf("%s:%d: %v", e.file, e.line, e.err) }
func (e *asmError) Unwrap() error { return e.err }

type assembler struct {
	opts    Options
	symbols map[string]int64
	stmts   []*stmt
	lc      [numSections]uint32 // location counters
	cur     int                 // current section
	chunks  []chunk
	lines   []Line
}

type chunk struct {
	addr uint32
	data []byte
}

// Assemble runs the two-pass assembler over the sources in order.
func Assemble(opts Options, sources ...Source) (*Image, error) {
	if opts.DataBase == 0 {
		opts.DataBase = 0x00100000
	}
	a := &assembler{
		opts:    opts,
		symbols: make(map[string]int64),
	}
	a.lc[secText] = opts.TextBase
	a.lc[secData] = opts.DataBase

	for _, src := range sources {
		if err := a.pass1(src); err != nil {
			return nil, err
		}
	}
	if err := a.pass2(); err != nil {
		return nil, err
	}
	return a.image()
}

// errf wraps an error with position info.
func errf(file string, line int, format string, args ...any) error {
	return &asmError{file, line, fmt.Errorf(format, args...)}
}

// stripComment removes ;, # and // comments, respecting string and
// character literals.
func stripComment(s string) string {
	inStr, inChar := false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case inChar:
			if c == '\\' {
				i++
			} else if c == '\'' {
				inChar = false
			}
		case c == '"':
			inStr = true
		case c == '\'':
			inChar = true
		case c == ';' || c == '#':
			return s[:i]
		case c == '/' && i+1 < len(s) && s[i+1] == '/':
			return s[:i]
		}
	}
	return s
}

// lookup resolves a symbol for expression evaluation.
func (a *assembler) lookup(name string) (int64, bool) {
	v, ok := a.symbols[name]
	return v, ok
}

func (a *assembler) eval(file string, line int, expr string) (int64, error) {
	v, err := evalExpr(strings.TrimSpace(expr), int64(a.lc[a.cur]), a.lookup)
	if err != nil {
		return 0, errf(file, line, "%v", err)
	}
	return v, nil
}

// pass1 expands macros, then parses, sizes and places statements and
// defines labels. Each source starts in the text section.
func (a *assembler) pass1(src Source) error {
	a.cur = secText
	expanded, err := expandMacros(src)
	if err != nil {
		return err
	}
	for _, el := range expanded {
		line := el.line
		text := el.text

		// Labels (possibly several on one line).
		for {
			i := strings.IndexByte(text, ':')
			if i < 0 {
				break
			}
			cand := strings.TrimSpace(text[:i])
			if cand == "" || !isLabelName(cand) {
				break
			}
			if _, dup := a.symbols[cand]; dup {
				return errf(src.Name, line, "duplicate symbol %q", cand)
			}
			a.symbols[cand] = int64(a.lc[a.cur])
			text = strings.TrimSpace(text[i+1:])
		}
		if text == "" {
			continue
		}

		if strings.HasPrefix(text, ".") {
			if err := a.directive(src.Name, line, text); err != nil {
				return err
			}
			continue
		}

		// Instruction.
		mnemonic, rest := splitMnemonic(text)
		size, err := instrSize(mnemonic)
		if err != nil {
			return errf(src.Name, line, "%v", err)
		}
		s := &stmt{
			file: src.Name, line: line, kind: kInstr,
			mnemonic: mnemonic, operands: splitOperands(rest),
			addr: a.lc[a.cur], size: size,
		}
		a.stmts = append(a.stmts, s)
		a.lc[a.cur] += size
	}
	return nil
}

// directive handles assembler directives during pass 1.
func (a *assembler) directive(file string, line int, text string) error {
	name, rest := splitMnemonic(text)
	switch name {
	case ".text":
		a.cur = secText
	case ".data":
		a.cur = secData
	case ".global", ".globl", ".extern":
		// Accepted for compatibility; all symbols are global.
	case ".org":
		v, err := a.eval(file, line, rest)
		if err != nil {
			return err
		}
		a.lc[a.cur] = uint32(v)
	case ".align":
		v, err := a.eval(file, line, rest)
		if err != nil {
			return err
		}
		if v <= 0 || v&(v-1) != 0 {
			return errf(file, line, ".align argument must be a power of two, got %d", v)
		}
		n := uint32(v)
		pad := (n - a.lc[a.cur]%n) % n
		if pad > 0 {
			a.stmts = append(a.stmts, &stmt{
				file: file, line: line, kind: kSpace,
				addr: a.lc[a.cur], size: pad,
			})
			a.lc[a.cur] += pad
		}
	case ".equ", ".set":
		parts := splitOperands(rest)
		if len(parts) != 2 {
			return errf(file, line, "%s needs name, value", name)
		}
		sym := strings.TrimSpace(parts[0])
		if !isLabelName(sym) {
			return errf(file, line, "bad symbol name %q", sym)
		}
		if _, dup := a.symbols[sym]; dup {
			return errf(file, line, "duplicate symbol %q", sym)
		}
		v, err := a.eval(file, line, parts[1])
		if err != nil {
			return err
		}
		a.symbols[sym] = v
	case ".word", ".half", ".byte":
		elem := map[string]int{".word": 4, ".half": 2, ".byte": 1}[name]
		exprs := splitOperands(rest)
		if len(exprs) == 0 {
			return errf(file, line, "%s needs at least one value", name)
		}
		s := &stmt{
			file: file, line: line, kind: kData,
			exprs: exprs, elem: elem,
			addr: a.lc[a.cur], size: uint32(elem * len(exprs)),
		}
		a.stmts = append(a.stmts, s)
		a.lc[a.cur] += s.size
	case ".asciz", ".ascii":
		str, err := parseStringLit(rest)
		if err != nil {
			return errf(file, line, "%v", err)
		}
		size := uint32(len(str))
		if name == ".asciz" {
			size++
		}
		s := &stmt{
			file: file, line: line, kind: kAsciz,
			str: str, addr: a.lc[a.cur], size: size,
		}
		a.stmts = append(a.stmts, s)
		a.lc[a.cur] += size
	case ".space", ".skip":
		v, err := a.eval(file, line, rest)
		if err != nil {
			return err
		}
		if v < 0 {
			return errf(file, line, ".space size must be >= 0")
		}
		s := &stmt{file: file, line: line, kind: kSpace, addr: a.lc[a.cur], size: uint32(v)}
		a.stmts = append(a.stmts, s)
		a.lc[a.cur] += s.size
	default:
		return errf(file, line, "unknown directive %s", name)
	}
	return nil
}

// pass2 encodes statements into chunks and builds the line table.
func (a *assembler) pass2() error {
	for _, s := range a.stmts {
		var data []byte
		switch s.kind {
		case kInstr:
			words, err := a.encodeInstr(s)
			if err != nil {
				return err
			}
			data = make([]byte, 0, 4*len(words))
			for _, w := range words {
				data = append(data, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
			}
			a.lines = append(a.lines, Line{Addr: s.addr, File: s.file, Line: s.line})
		case kData:
			for idx, ex := range s.exprs {
				here := int64(s.addr) + int64(idx*s.elem)
				v, err := evalExpr(strings.TrimSpace(ex), here, a.lookup)
				if err != nil {
					return errf(s.file, s.line, "%v", err)
				}
				for i := 0; i < s.elem; i++ {
					data = append(data, byte(v>>(8*i)))
				}
			}
		case kAsciz:
			data = make([]byte, s.size)
			copy(data, s.str)
		case kSpace:
			data = make([]byte, s.size)
		}
		if len(data) > 0 {
			a.chunks = append(a.chunks, chunk{s.addr, data})
		}
	}
	return nil
}

// image merges chunks into segments and finalizes the output.
func (a *assembler) image() (*Image, error) {
	sort.SliceStable(a.chunks, func(i, j int) bool { return a.chunks[i].addr < a.chunks[j].addr })
	im := &Image{Symbols: make(map[string]uint32, len(a.symbols))}
	for _, c := range a.chunks {
		n := len(im.Segments)
		if n > 0 {
			last := &im.Segments[n-1]
			end := last.Addr + uint32(len(last.Data))
			if c.addr < end {
				return nil, fmt.Errorf("asm: overlapping output at %#08x", c.addr)
			}
			if c.addr == end {
				last.Data = append(last.Data, c.data...)
				continue
			}
		}
		im.Segments = append(im.Segments, Segment{Addr: c.addr, Data: append([]byte(nil), c.data...)})
	}
	for name, v := range a.symbols {
		im.Symbols[name] = uint32(v)
	}
	sort.Slice(a.lines, func(i, j int) bool { return a.lines[i].Addr < a.lines[j].Addr })
	im.Lines = a.lines

	entrySym := a.opts.EntrySymbol
	if entrySym == "" {
		entrySym = "_start"
	}
	if v, ok := im.Symbols[entrySym]; ok {
		im.Entry = v
	} else {
		im.Entry = a.opts.TextBase
	}
	return im, nil
}

// --- small lexical helpers -------------------------------------------------

func splitMnemonic(s string) (mnemonic, rest string) {
	i := strings.IndexAny(s, " \t")
	if i < 0 {
		return strings.ToLower(s), ""
	}
	return strings.ToLower(s[:i]), strings.TrimSpace(s[i+1:])
}

// splitOperands splits on top-level commas, respecting parentheses and
// quotes.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(s[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func isLabelName(s string) bool {
	if s == "" || !isIdentStart(s[0]) {
		return false
	}
	for i := 1; i < len(s); i++ {
		if !isIdentChar(s[i]) {
			return false
		}
	}
	return true
}

// parseStringLit parses a double-quoted string with escapes.
func parseStringLit(s string) (string, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return "", fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	var b strings.Builder
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(body) {
			return "", fmt.Errorf("dangling escape in string")
		}
		switch body[i] {
		case 'n':
			b.WriteByte('\n')
		case 't':
			b.WriteByte('\t')
		case 'r':
			b.WriteByte('\r')
		case '0':
			b.WriteByte(0)
		case '\\':
			b.WriteByte('\\')
		case '"':
			b.WriteByte('"')
		default:
			return "", fmt.Errorf("bad escape \\%c in string", body[i])
		}
	}
	return b.String(), nil
}

// instrSize returns the byte size of a (possibly pseudo) instruction.
func instrSize(mnemonic string) (uint32, error) {
	switch mnemonic {
	case "li", "la":
		return 8, nil // always lui+ori, so label arithmetic stays linear
	case "ei", "di":
		return 12, nil // mfsr/ori|andi/mtsr read-modify-write sequence
	}
	if _, ok := pseudoOps[mnemonic]; ok {
		return 4, nil
	}
	if isa.OpcodeByName(mnemonic) != isa.BAD {
		return 4, nil
	}
	return 0, fmt.Errorf("unknown instruction %q", mnemonic)
}

// pseudoOps is the set of single-word pseudo-instructions.
var pseudoOps = map[string]bool{
	"nop": true, "mv": true, "not": true, "neg": true,
	"j": true, "jr": true, "call": true, "ret": true,
	"beqz": true, "bnez": true, "bgt": true, "ble": true,
	"ei": true, "di": true,
}
