package asm

import (
	"fmt"
	"sort"
)

// Segment is a contiguous block of assembled bytes.
type Segment struct {
	Addr uint32
	Data []byte
}

// Line maps a code address to its source position.
type Line struct {
	Addr uint32
	File string
	Line int
}

// Image is the output of the assembler: loadable segments, a symbol
// table, and a line table usable for source-level breakpoints.
type Image struct {
	Entry    uint32
	Segments []Segment
	Symbols  map[string]uint32
	Lines    []Line // sorted by address
}

// Symbol looks up a symbol's value.
func (im *Image) Symbol(name string) (uint32, bool) {
	v, ok := im.Symbols[name]
	return v, ok
}

// MustSymbol looks up a symbol and panics if missing (for tests and
// trusted embedded sources).
func (im *Image) MustSymbol(name string) uint32 {
	v, ok := im.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("asm: undefined symbol %q", name))
	}
	return v
}

// AddrOfLine returns the address of the first instruction emitted for
// the given source line. This is what the co-simulation kernel uses to
// translate "breakpoint at file:line" into a code address.
func (im *Image) AddrOfLine(file string, line int) (uint32, bool) {
	for _, l := range im.Lines {
		if l.File == file && l.Line == line {
			return l.Addr, true
		}
	}
	return 0, false
}

// LineOfAddr returns the source position of the statement covering addr
// (the statement with the greatest start address <= addr).
func (im *Image) LineOfAddr(addr uint32) (file string, line int, ok bool) {
	i := sort.Search(len(im.Lines), func(i int) bool { return im.Lines[i].Addr > addr })
	if i == 0 {
		return "", 0, false
	}
	l := im.Lines[i-1]
	return l.File, l.Line, true
}

// NextLineAddr returns the address of the first statement strictly after
// the given source line in the same file — "the line that immediately
// follows the target statement", as the GDB-Kernel programming model
// requires for iss_in breakpoints (§3.2).
func (im *Image) NextLineAddr(file string, line int) (uint32, bool) {
	best := uint32(0)
	bestLine := int(^uint(0) >> 1)
	found := false
	for _, l := range im.Lines {
		if l.File == file && l.Line > line && l.Line < bestLine {
			best, bestLine, found = l.Addr, l.Line, true
		}
	}
	return best, found
}

// memWriter is the destination interface for LoadInto (satisfied by
// iss.RAM).
type memWriter interface {
	LoadBytes(addr uint32, data []byte) error
}

// LoadInto copies all segments into the target memory.
func (im *Image) LoadInto(mem memWriter) error {
	for _, s := range im.Segments {
		if err := mem.LoadBytes(s.Addr, s.Data); err != nil {
			return err
		}
	}
	return nil
}

// TotalBytes returns the number of assembled bytes across segments.
func (im *Image) TotalBytes() int {
	n := 0
	for _, s := range im.Segments {
		n += len(s.Data)
	}
	return n
}
