package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"cosim/internal/isa"
)

// assemble is a test helper for single-source assembly.
func assemble(t *testing.T, src string) *Image {
	t.Helper()
	im, err := Assemble(Options{}, Source{Name: "test.s", Text: src})
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return im
}

// word extracts the nth 32-bit word of the first segment.
func word(t *testing.T, im *Image, n int) uint32 {
	t.Helper()
	if len(im.Segments) == 0 {
		t.Fatal("no segments")
	}
	d := im.Segments[0].Data
	if len(d) < 4*(n+1) {
		t.Fatalf("segment too small: %d bytes, want word %d", len(d), n)
	}
	return uint32(d[4*n]) | uint32(d[4*n+1])<<8 | uint32(d[4*n+2])<<16 | uint32(d[4*n+3])<<24
}

func TestEvalExpr(t *testing.T) {
	syms := map[string]int64{"foo": 100, "bar": 0x1234}
	lookup := func(n string) (int64, bool) { v, ok := syms[n]; return v, ok }
	cases := []struct {
		in   string
		want int64
	}{
		{"42", 42},
		{"0x10", 16},
		{"0b101", 5},
		{"2+3*4", 14},
		{"(2+3)*4", 20},
		{"-5", -5},
		{"~0", -1},
		{"1<<16", 65536},
		{"0xff00>>8", 0xff},
		{"foo+4", 104},
		{"bar&0xff", 0x34},
		{"bar|1", 0x1235},
		{"bar^bar", 0},
		{"10/3", 3},
		{"10%3", 1},
		{"%hi(0x12345678)", 0x1234},
		{"%lo(0x12345678)", 0x5678},
		{"'A'", 65},
		{"'\\n'", 10},
		{"foo - 1", 99},
	}
	for _, c := range cases {
		got, err := evalExpr(c.in, 0, lookup)
		if err != nil {
			t.Errorf("evalExpr(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("evalExpr(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestEvalExprErrors(t *testing.T) {
	lookup := func(string) (int64, bool) { return 0, false }
	for _, s := range []string{"", "1+", "(1", "undefined_sym", "1/0", "5%0", "%xx(1)", "'a"} {
		if _, err := evalExpr(s, 0, lookup); err == nil {
			t.Errorf("evalExpr(%q) succeeded, want error", s)
		}
	}
}

func TestBasicProgram(t *testing.T) {
	im := assemble(t, `
_start:
    addi a0, zero, 5
    addi a1, zero, 7
    add  a2, a0, a1
    halt
`)
	if im.Entry != 0 {
		t.Fatalf("entry = %#x", im.Entry)
	}
	w := word(t, im, 0)
	i, err := isa.Decode(w)
	if err != nil || i.Op != isa.ADDI || i.Imm != 5 {
		t.Fatalf("word0 = %v (%v)", i, err)
	}
	if got := isa.Disassemble(word(t, im, 2)); got != "add a2, a0, a1" {
		t.Fatalf("word2 = %q", got)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	im := assemble(t, `
_start:
    addi t0, zero, 10
loop:
    addi t0, t0, -1
    bnez t0, loop
    halt
`)
	// bnez at addr 8 targets loop at 4: offset -1 word.
	i, err := isa.Decode(word(t, im, 2))
	if err != nil || i.Op != isa.BNE || i.Imm != -1 {
		t.Fatalf("bnez encoded as %v (%v)", i, err)
	}
}

func TestForwardReference(t *testing.T) {
	im := assemble(t, `
_start:
    j end
    nop
end:
    halt
`)
	i, err := isa.Decode(word(t, im, 0))
	if err != nil || i.Op != isa.JAL || i.Rd != 0 || i.Imm != 2 {
		t.Fatalf("j end = %v (%v)", i, err)
	}
}

func TestLiExpansion(t *testing.T) {
	im := assemble(t, `
_start:
    li a0, 0xdeadbeef
    halt
`)
	hi, err := isa.Decode(word(t, im, 0))
	if err != nil || hi.Op != isa.LUI || uint32(hi.Imm) != 0xdead {
		t.Fatalf("li hi = %v", hi)
	}
	lo, err := isa.Decode(word(t, im, 1))
	if err != nil || lo.Op != isa.ORI || uint32(lo.Imm) != 0xbeef {
		t.Fatalf("li lo = %v", lo)
	}
}

func TestDataDirectives(t *testing.T) {
	im, err := Assemble(Options{DataBase: 0x1000},
		Source{Name: "d.s", Text: `
.data
vals:  .word 1, 2, 0x30
half:  .half 0xabcd
bytes: .byte 1, 2, 3
msg:   .asciz "hi\n"
buf:   .space 8
end_marker:
`})
	if err != nil {
		t.Fatal(err)
	}
	if got := im.MustSymbol("vals"); got != 0x1000 {
		t.Fatalf("vals = %#x", got)
	}
	if got := im.MustSymbol("half"); got != 0x100c {
		t.Fatalf("half = %#x", got)
	}
	if got := im.MustSymbol("msg"); got != 0x1011 {
		t.Fatalf("msg = %#x", got)
	}
	if got := im.MustSymbol("buf"); got != 0x1015 {
		t.Fatalf("buf = %#x", got)
	}
	if got := im.MustSymbol("end_marker"); got != 0x101d {
		t.Fatalf("end = %#x", got)
	}
	seg := im.Segments[0]
	if seg.Data[0] != 1 || seg.Data[4] != 2 || seg.Data[8] != 0x30 {
		t.Fatalf("words = % x", seg.Data[:12])
	}
	if seg.Data[12] != 0xcd || seg.Data[13] != 0xab {
		t.Fatalf("half = % x", seg.Data[12:14])
	}
	if string(seg.Data[0x11:0x14]) != "hi\n" || seg.Data[0x14] != 0 {
		t.Fatalf("asciz = % x", seg.Data[0x11:0x15])
	}
}

func TestAlign(t *testing.T) {
	im := assemble(t, `
_start:
    nop
.align 16
aligned:
    halt
`)
	if got := im.MustSymbol("aligned"); got != 16 {
		t.Fatalf("aligned = %d, want 16", got)
	}
}

func TestEqu(t *testing.T) {
	im := assemble(t, `
.equ MAGIC, 0x42
.equ DOUBLE, MAGIC*2
_start:
    addi a0, zero, MAGIC
    addi a1, zero, DOUBLE
    halt
`)
	i, _ := isa.Decode(word(t, im, 0))
	if i.Imm != 0x42 {
		t.Fatalf("MAGIC imm = %d", i.Imm)
	}
	i, _ = isa.Decode(word(t, im, 1))
	if i.Imm != 0x84 {
		t.Fatalf("DOUBLE imm = %d", i.Imm)
	}
}

func TestOrg(t *testing.T) {
	im := assemble(t, `
.org 0x100
_start:
    halt
`)
	if im.Entry != 0x100 {
		t.Fatalf("entry = %#x", im.Entry)
	}
	if im.Segments[0].Addr != 0x100 {
		t.Fatalf("segment addr = %#x", im.Segments[0].Addr)
	}
}

func TestTextAndDataSections(t *testing.T) {
	im, err := Assemble(Options{TextBase: 0, DataBase: 0x8000}, Source{Name: "s.s", Text: `
.text
_start:
    la a0, counter
    lw a1, 0(a0)
    halt
.data
counter: .word 99
`})
	if err != nil {
		t.Fatal(err)
	}
	if got := im.MustSymbol("counter"); got != 0x8000 {
		t.Fatalf("counter = %#x", got)
	}
	if len(im.Segments) != 2 {
		t.Fatalf("segments = %d", len(im.Segments))
	}
	if im.Segments[1].Data[0] != 99 {
		t.Fatalf("data = % x", im.Segments[1].Data)
	}
}

func TestLineTable(t *testing.T) {
	src := `_start:
    addi a0, zero, 1
    addi a1, zero, 2
    sw a0, 0(gp)
    addi a2, zero, 3
    halt
`
	im := assemble(t, src)
	// Line 2 is the first instruction, at address 0.
	if a, ok := im.AddrOfLine("test.s", 2); !ok || a != 0 {
		t.Fatalf("AddrOfLine(2) = %#x, %v", a, ok)
	}
	// The sw is on line 4, at address 8.
	if a, ok := im.AddrOfLine("test.s", 4); !ok || a != 8 {
		t.Fatalf("AddrOfLine(4) = %#x, %v", a, ok)
	}
	// NextLineAddr(4) must be the addi on line 5 at address 12 —
	// the "line that immediately follows" rule for iss_in breakpoints.
	if a, ok := im.NextLineAddr("test.s", 4); !ok || a != 12 {
		t.Fatalf("NextLineAddr(4) = %#x, %v", a, ok)
	}
	if f, l, ok := im.LineOfAddr(8); !ok || f != "test.s" || l != 4 {
		t.Fatalf("LineOfAddr(8) = %s:%d, %v", f, l, ok)
	}
}

func TestMultipleSources(t *testing.T) {
	im, err := Assemble(Options{},
		Source{Name: "a.s", Text: "_start:\n    call func\n    halt\n"},
		Source{Name: "b.s", Text: "func:\n    ret\n"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := im.MustSymbol("func"); got != 8 {
		t.Fatalf("func = %d", got)
	}
	if a, ok := im.AddrOfLine("b.s", 2); !ok || a != 8 {
		t.Fatalf("AddrOfLine(b.s,2) = %d, %v", a, ok)
	}
}

func TestComments(t *testing.T) {
	im := assemble(t, `
; full line comment
# another
// and another
_start:
    nop          ; trailing
    addi a0, zero, '#'  # char literal with hash
    halt
`)
	i, _ := isa.Decode(word(t, im, 1))
	if i.Imm != '#' {
		t.Fatalf("char imm = %d", i.Imm)
	}
}

func TestPseudoInstructions(t *testing.T) {
	im := assemble(t, `
_start:
    mv a0, a1
    not a2, a3
    neg a4, a5
    jr ra
    ret
    beqz a0, _start
    bgt a0, a1, _start
    ble a0, a1, _start
`)
	checks := []struct {
		n    int
		want string
	}{
		{0, "addi a0, a1, 0"},
		{1, "nor a2, a3, zero"},
		{2, "sub a4, zero, a5"},
		{3, "jalr zero, ra, 0"},
		{4, "jalr zero, ra, 0"},
	}
	for _, c := range checks {
		if got := isa.Disassemble(word(t, im, c.n)); got != c.want {
			t.Errorf("word %d = %q, want %q", c.n, got, c.want)
		}
	}
	// bgt a0,a1 == blt a1,a0
	i, _ := isa.Decode(word(t, im, 6))
	if i.Op != isa.BLT || isa.RegName(i.Rd) != "a1" || isa.RegName(i.Rs1) != "a0" {
		t.Fatalf("bgt = %v", i)
	}
}

func TestEiDiExpansion(t *testing.T) {
	im := assemble(t, "_start:\n    ei\n    di\n    halt\n")
	// ei = mfsr at,0 / ori at,at,1 / mtsr 0,at
	if got := isa.Disassemble(word(t, im, 0)); got != "mfsr at, 0" {
		t.Fatalf("ei[0] = %q", got)
	}
	if got := isa.Disassemble(word(t, im, 1)); got != "ori at, at, 1" {
		t.Fatalf("ei[1] = %q", got)
	}
	if got := isa.Disassemble(word(t, im, 2)); got != "mtsr 0, at" {
		t.Fatalf("ei[2] = %q", got)
	}
	// di's ALU step masks out the IE bit.
	i, _ := isa.Decode(word(t, im, 4))
	if i.Op != isa.ANDI || uint32(i.Imm) != 0xfffe {
		t.Fatalf("di[1] = %v", i)
	}
}

func TestMfsrSymbolicNames(t *testing.T) {
	im := assemble(t, `
_start:
    mfsr a0, epc
    mtsr ivec, a1
    halt
`)
	i, _ := isa.Decode(word(t, im, 0))
	if i.Op != isa.MFSR || i.Imm != isa.SREPC {
		t.Fatalf("mfsr = %v", i)
	}
	i, _ = isa.Decode(word(t, im, 1))
	if i.Op != isa.MTSR || i.Imm != isa.SRIVec {
		t.Fatalf("mtsr = %v", i)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"    bogus a0, a1\n",
		"    addi a0\n",
		"    addi a0, zero, 100000\n",
		"    lw a0, nothing\n",
		"dup:\ndup:\n    nop\n",
		".equ x, 1\n.equ x, 2\n",
		".word\n",
		".align 3\n",
		".asciz unquoted\n",
		".badattr 1\n",
		"    addi a0, zero, undefined_symbol\n",
	}
	for _, src := range bad {
		if _, err := Assemble(Options{}, Source{Name: "bad.s", Text: src}); err == nil {
			t.Errorf("Assemble(%q) succeeded, want error", src)
		} else if !strings.Contains(err.Error(), "bad.s") {
			t.Errorf("error %q lacks file position", err)
		}
	}
}

func TestRoundTripThroughDisassembler(t *testing.T) {
	// Property: assembling the disassembly of an encodable instruction
	// reproduces the same machine word.
	f := func(rd, rs1, rs2 uint8, imm int16) bool {
		insts := []isa.Inst{
			{Op: isa.ADD, Rd: rd % 32, Rs1: rs1 % 32, Rs2: rs2 % 32},
			{Op: isa.ADDI, Rd: rd % 32, Rs1: rs1 % 32, Imm: int32(imm)},
			{Op: isa.LW, Rd: rd % 32, Rs1: rs1 % 32, Imm: int32(imm)},
			{Op: isa.SW, Rd: rd % 32, Rs1: rs1 % 32, Imm: int32(imm)},
		}
		for _, inst := range insts {
			w, err := isa.Encode(inst)
			if err != nil {
				return false
			}
			src := "_start:\n    " + isa.Disassemble(w) + "\n"
			im, err := Assemble(Options{}, Source{Name: "rt.s", Text: src})
			if err != nil {
				return false
			}
			d := im.Segments[0].Data
			got := uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
			if got != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHereSymbol(t *testing.T) {
	im := assemble(t, `
_start:
    nop
here: .word .
`)
	if im.Segments[0].Data[4] != 4 {
		t.Fatalf(".word . = % x", im.Segments[0].Data[4:8])
	}
}

func TestTotalBytes(t *testing.T) {
	im := assemble(t, "_start:\n    nop\n    nop\n")
	if im.TotalBytes() != 8 {
		t.Fatalf("TotalBytes = %d", im.TotalBytes())
	}
}
