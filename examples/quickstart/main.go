// Quickstart: the smallest complete ISS–SystemC co-simulation.
//
// A bare-metal FV32 guest program doubles whatever the hardware model
// hands it. The hardware side is a thread in the SystemC-like kernel;
// the two are coupled with the paper's GDB-Kernel scheme: breakpoints
// on the guest's variable accesses, serviced by a hook inside the
// simulation kernel.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cosim/internal/asm"
	"cosim/internal/core"
	"cosim/internal/iss"
	"cosim/internal/sim"
)

// guestSrc is the software side, in FV32 assembly. The breakpoint
// labels mark the co-simulation touchpoints (§3.2 of the paper):
// bp_req is the line that *reads* the request variable (the kernel
// pokes it first), bp_resp is the line *after* the store of the
// response (the kernel reads it then).
const guestSrc = `
_start:
    la   s0, req
    la   s1, resp
loop:
bp_req:
    lw   a0, 0(s0)
    add  a1, a0, a0
    sw   a1, 0(s1)
bp_resp:
    nop
    j    loop
.data
.align 4
req:  .word 0
resp: .word 0
`

func main() {
	// 1. Build the guest and boot an ISS with it.
	im, err := asm.Assemble(asm.Options{DataBase: 0x10000},
		asm.Source{Name: "guest.s", Text: guestSrc})
	if err != nil {
		log.Fatal(err)
	}
	ram := iss.NewRAM(1 << 20)
	if err := im.LoadInto(ram); err != nil {
		log.Fatal(err)
	}
	cpu := iss.New(iss.NewSystemBus(ram))
	cpu.Reset(im.Entry)

	// 2. Serve the ISS behind a GDB remote-protocol stub (its own
	// goroutine — the "software simulator process").
	target, err := core.StartGDBTarget(cpu, core.TransportPipe)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Create the hardware simulation kernel and attach the
	// GDB-Kernel co-simulation scheme.
	k := sim.NewKernel("quickstart")
	sim.NewClock(k, "clk", 10*sim.NS)
	scheme, err := core.Attach(k, core.Config{
		Scheme: "gdb-kernel",
		Common: core.CommonOptions{CPUPeriod: sim.NS, SkewBound: sim.US},
		Conn:   target.HostConn,
		Image:  im,
		Bindings: []core.VarBinding{
			{Port: "req", Var: "req", Size: 4, Dir: core.ToISS, Label: "bp_req"},
			{Port: "resp", Var: "resp", Size: 4, Dir: core.ToSystemC, Label: "bp_resp"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. The hardware model: a thread feeding the CPU work.
	req, _ := k.IssOutPort("req")
	resp, _ := k.IssInPort("resp")
	k.Thread("hw", func(c *sim.Ctx) {
		for i := uint32(1); i <= 5; i++ {
			req.WriteUint32(i)
			c.Wait(resp.Event())
			fmt.Printf("t=%-8v  hw sent %d, cpu answered %d\n", c.Now(), i, resp.Uint32())
		}
		k.Stop()
	})

	// 5. Run.
	if err := k.Run(sim.MaxTime); err != nil {
		log.Fatal(err)
	}
	k.Shutdown()
	if err := scheme.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("guest executed %d instructions; co-sim stats: %+v\n",
		cpu.Instructions(), scheme.Stats())
}
